// Wire-format round trips and defensive decoding for every LIGLO
// protocol message (the liglo_test suite covers the behavioural side).

#include <gtest/gtest.h>

#include "liglo/liglo_protocol.h"

namespace bestpeer::liglo {
namespace {

TEST(LigloWireTest, RegisterRequestRoundTrip) {
  RegisterRequest m;
  m.request_id = 42;
  m.ip = 0x0A000005;
  auto back = RegisterRequest::Decode(m.Encode()).value();
  EXPECT_EQ(back.request_id, 42u);
  EXPECT_EQ(back.ip, 0x0A000005u);
}

TEST(LigloWireTest, RegisterResponseRoundTrip) {
  RegisterResponse m;
  m.request_id = 7;
  m.accepted = true;
  m.bpid = Bpid{3, 9};
  m.peers.push_back(PeerEntry{Bpid{3, 1}, 100});
  m.peers.push_back(PeerEntry{Bpid{3, 2}, 200});
  auto back = RegisterResponse::Decode(m.Encode()).value();
  EXPECT_TRUE(back.accepted);
  EXPECT_EQ(back.bpid, (Bpid{3, 9}));
  ASSERT_EQ(back.peers.size(), 2u);
  EXPECT_EQ(back.peers[1].ip, 200u);
}

TEST(LigloWireTest, RejectionRoundTrip) {
  RegisterResponse m;
  m.request_id = 8;
  m.accepted = false;
  auto back = RegisterResponse::Decode(m.Encode()).value();
  EXPECT_FALSE(back.accepted);
  EXPECT_TRUE(back.peers.empty());
}

TEST(LigloWireTest, UpdateRoundTrip) {
  UpdateRequest req;
  req.request_id = 1;
  req.bpid = Bpid{5, 6};
  req.ip = 777;
  req.online = false;
  auto req_back = UpdateRequest::Decode(req.Encode()).value();
  EXPECT_EQ(req_back.bpid, (Bpid{5, 6}));
  EXPECT_FALSE(req_back.online);

  UpdateResponse resp;
  resp.request_id = 1;
  resp.ok = true;
  EXPECT_TRUE(UpdateResponse::Decode(resp.Encode()).value().ok);
}

TEST(LigloWireTest, ResolveRoundTrip) {
  ResolveRequest req;
  req.request_id = 2;
  req.bpid = Bpid{1, 2};
  EXPECT_EQ(ResolveRequest::Decode(req.Encode()).value().bpid, (Bpid{1, 2}));

  ResolveResponse resp;
  resp.request_id = 2;
  resp.state = PeerState::kOffline;
  resp.ip = 0;
  auto back = ResolveResponse::Decode(resp.Encode()).value();
  EXPECT_EQ(back.state, PeerState::kOffline);
}

TEST(LigloWireTest, ResolveResponseRejectsBadState) {
  ResolveResponse resp;
  Bytes encoded = resp.Encode();
  encoded[8] = 9;  // State byte after the u64 request id.
  EXPECT_FALSE(ResolveResponse::Decode(encoded).ok());
}

TEST(LigloWireTest, PingPongRoundTrip) {
  PingMessage ping;
  ping.nonce = 0xABCD;
  EXPECT_EQ(PingMessage::Decode(ping.Encode()).value().nonce, 0xABCDu);

  PongMessage pong;
  pong.nonce = 0xABCD;
  pong.bpid = Bpid{4, 4};
  pong.ip = 44;
  auto back = PongMessage::Decode(pong.Encode()).value();
  EXPECT_EQ(back.nonce, 0xABCDu);
  EXPECT_EQ(back.bpid, (Bpid{4, 4}));
  EXPECT_EQ(back.ip, 44u);
}

TEST(LigloWireTest, PeersRoundTrip) {
  PeersRequest req;
  req.request_id = 3;
  req.requester = Bpid{9, 1};
  auto req_back = PeersRequest::Decode(req.Encode()).value();
  EXPECT_EQ(req_back.requester, (Bpid{9, 1}));

  PeersResponse resp;
  resp.request_id = 3;
  resp.peers.push_back(PeerEntry{Bpid{9, 2}, 22});
  auto resp_back = PeersResponse::Decode(resp.Encode()).value();
  ASSERT_EQ(resp_back.peers.size(), 1u);
  EXPECT_EQ(resp_back.peers[0].ip, 22u);
}

TEST(LigloWireTest, AllDecodersRejectTruncation) {
  RegisterResponse full;
  full.request_id = 1;
  full.accepted = true;
  full.bpid = Bpid{1, 1};
  full.peers.push_back(PeerEntry{Bpid{1, 2}, 3});
  Bytes encoded = full.Encode();
  for (size_t cut = 1; cut < encoded.size(); cut += 3) {
    Bytes truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(RegisterResponse::Decode(truncated).ok())
        << "cut at " << cut;
  }
  EXPECT_FALSE(UpdateRequest::Decode(Bytes{1, 2}).ok());
  EXPECT_FALSE(ResolveRequest::Decode(Bytes{}).ok());
  EXPECT_FALSE(PongMessage::Decode(Bytes{0}).ok());
  EXPECT_FALSE(PeersRequest::Decode(Bytes{9}).ok());
}

TEST(LigloWireTest, PeersResponseRejectsTruncation) {
  PeersResponse full;
  full.request_id = 4;
  full.peers.push_back(PeerEntry{Bpid{1, 2}, 33});
  full.peers.push_back(PeerEntry{Bpid{1, 3}, 44});
  Bytes encoded = full.Encode();
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(PeersResponse::Decode(truncated).ok()) << "cut at " << cut;
  }
}

TEST(LigloWireTest, RejectsOverstatedPeerCounts) {
  // The peer list is the trailing field, so the last byte of a zero-peer
  // encoding is its varint count. Claiming peers that are not present
  // must fail instead of reading past the buffer.
  RegisterResponse reg;
  reg.request_id = 1;
  reg.accepted = true;
  Bytes reg_encoded = reg.Encode();
  reg_encoded.back() = 5;
  EXPECT_FALSE(RegisterResponse::Decode(reg_encoded).ok());

  PeersResponse peers;
  peers.request_id = 2;
  Bytes peers_encoded = peers.Encode();
  peers_encoded.back() = 3;
  EXPECT_FALSE(PeersResponse::Decode(peers_encoded).ok());
}

TEST(LigloWireTest, AllDecodersRejectGarbage) {
  Bytes garbage(5, 0xEE);
  EXPECT_FALSE(RegisterRequest::Decode(garbage).ok());
  EXPECT_FALSE(RegisterResponse::Decode(garbage).ok());
  EXPECT_FALSE(UpdateRequest::Decode(garbage).ok());
  EXPECT_FALSE(UpdateResponse::Decode(garbage).ok());
  EXPECT_FALSE(ResolveRequest::Decode(garbage).ok());
  EXPECT_FALSE(ResolveResponse::Decode(garbage).ok());
  EXPECT_FALSE(PeersRequest::Decode(garbage).ok());
  EXPECT_FALSE(PeersResponse::Decode(garbage).ok());
}

}  // namespace
}  // namespace bestpeer::liglo
