#include <gtest/gtest.h>

#include "core/active_object.h"
#include "core/messages.h"
#include "core/peer_list.h"
#include "core/session.h"

namespace bestpeer::core {
namespace {

// ---------------------------------------------------------------- PeerList

TEST(PeerListTest, CapacityEnforcedForOutgoingAdds) {
  PeerList peers(2);
  PeerInfo a;
  a.node = 1;
  PeerInfo b;
  b.node = 2;
  PeerInfo c;
  c.node = 3;
  EXPECT_TRUE(peers.Add(a));
  EXPECT_TRUE(peers.Add(b));
  EXPECT_FALSE(peers.Add(c)) << "outgoing adds respect capacity";
  EXPECT_TRUE(peers.Add(c, /*enforce_capacity=*/false))
      << "inbound accepts may exceed it";
  EXPECT_EQ(peers.size(), 3u);
}

TEST(PeerListTest, ReAddRefreshesIdentityKeepsStats) {
  PeerList peers(4);
  PeerInfo info;
  info.node = 7;
  info.total_answers = 42;
  peers.Add(info);
  PeerInfo update;
  update.node = 7;
  update.ip = 999;
  update.total_answers = 0;  // Must not clobber accumulated stats.
  EXPECT_TRUE(peers.Add(update));
  EXPECT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers.Find(7)->ip, 999u);
  EXPECT_EQ(peers.Find(7)->total_answers, 42u);
}

TEST(PeerListTest, RemoveAndNodes) {
  PeerList peers(4);
  for (NodeId n : {5, 3, 9}) {
    PeerInfo info;
    info.node = n;
    peers.Add(info);
  }
  EXPECT_EQ(peers.Nodes(), (std::vector<NodeId>{3, 5, 9}));
  EXPECT_TRUE(peers.Remove(5));
  EXPECT_FALSE(peers.Remove(5));
  EXPECT_FALSE(peers.Contains(5));
  EXPECT_EQ(peers.Snapshot().size(), 2u);
}

// ---------------------------------------------------------------- Session

TEST(SessionTest, AnswerAccountingPerMode) {
  QuerySession direct(1, "kw", AnswerMode::kDirect, 1000);
  direct.RecordResult({2000, 5, 1, 10});
  direct.RecordResult({3000, 6, 2, 7});
  EXPECT_EQ(direct.total_answers(), 17u);
  EXPECT_EQ(direct.total_indicated(), 17u);
  EXPECT_EQ(direct.responder_count(), 2u);
  EXPECT_EQ(direct.completion_time(), 2000);

  QuerySession indicate(2, "kw", AnswerMode::kIndicate, 1000);
  indicate.RecordResult({2000, 5, 1, 10});
  indicate.RecordFetch({4000, 5, 0, 10});
  EXPECT_EQ(indicate.total_indicated(), 10u);
  EXPECT_EQ(indicate.total_answers(), 10u);  // From fetches.
  EXPECT_EQ(indicate.completion_time(), 3000);
}

TEST(SessionTest, ObservationsMergeMultipleMessages) {
  QuerySession session(1, "kw", AnswerMode::kDirect, 0);
  session.RecordResult({100, 5, 3, 4});
  session.RecordResult({200, 5, 2, 6});  // Same node answers again.
  session.RecordResult({150, 9, 1, 2});
  auto obs = session.Observations();
  ASSERT_EQ(obs.size(), 2u);
  EXPECT_EQ(obs[0].node, 5u);
  EXPECT_EQ(obs[0].answers, 10u);
  EXPECT_EQ(obs[0].hops, 2);  // Minimum hops observed.
  EXPECT_EQ(obs[1].node, 9u);
}

TEST(SessionTest, EmptySessionIsZero) {
  QuerySession session(1, "kw", AnswerMode::kDirect, 500);
  EXPECT_EQ(session.total_answers(), 0u);
  EXPECT_EQ(session.completion_time(), 0);
  EXPECT_TRUE(session.Observations().empty());
}

// ---------------------------------------------------------------- messages

TEST(MessagesTest, SearchResultRoundTrip) {
  SearchResultMessage m;
  m.query_id = 77;
  m.hops = 3;
  m.mode = 2;
  m.responder_object_count = 1000;
  m.items.push_back({42, "obj-42", ToBytes("payload")});
  m.items.push_back({43, "obj-43", {}});
  auto back = SearchResultMessage::Decode(m.Encode()).value();
  EXPECT_EQ(back.query_id, 77u);
  EXPECT_EQ(back.hops, 3);
  EXPECT_EQ(back.mode, 2);
  EXPECT_EQ(back.responder_object_count, 1000u);
  ASSERT_EQ(back.items.size(), 2u);
  EXPECT_EQ(back.items[0].name, "obj-42");
  EXPECT_EQ(ToString(back.items[0].content), "payload");
  EXPECT_TRUE(back.items[1].content.empty());
}

TEST(MessagesTest, FetchRoundTrip) {
  FetchRequestMessage req;
  req.query_id = 9;
  req.ids = {1, 2, 3};
  auto req_back = FetchRequestMessage::Decode(req.Encode()).value();
  EXPECT_EQ(req_back.ids, req.ids);

  FetchResponseMessage resp;
  resp.query_id = 9;
  resp.items.push_back({1, "a", ToBytes("x")});
  auto resp_back = FetchResponseMessage::Decode(resp.Encode()).value();
  EXPECT_EQ(resp_back.items.size(), 1u);
}

TEST(MessagesTest, DataShipRoundTrip) {
  DataShipRequest req;
  req.query_id = 11;
  EXPECT_EQ(DataShipRequest::Decode(req.Encode()).value().query_id, 11u);

  DataShipResponse resp;
  resp.query_id = 11;
  resp.items.push_back({5, "n", ToBytes("content")});
  auto back = DataShipResponse::Decode(resp.Encode()).value();
  EXPECT_EQ(back.query_id, 11u);
  ASSERT_EQ(back.items.size(), 1u);
}

TEST(MessagesTest, ActiveObjectMessagesRoundTrip) {
  ActiveObjectRequest req;
  req.request_id = 4;
  req.object_name = "report";
  req.access_level = 2;
  auto req_back = ActiveObjectRequest::Decode(req.Encode()).value();
  EXPECT_EQ(req_back.object_name, "report");
  EXPECT_EQ(req_back.access_level, 2);

  ActiveObjectResponse resp;
  resp.request_id = 4;
  resp.ok = true;
  resp.content = ToBytes("rendered");
  auto resp_back = ActiveObjectResponse::Decode(resp.Encode()).value();
  EXPECT_TRUE(resp_back.ok);
  EXPECT_EQ(ToString(resp_back.content), "rendered");
}

TEST(MessagesTest, DecodeRejectsGarbage) {
  Bytes junk{1, 2, 3};
  EXPECT_FALSE(SearchResultMessage::Decode(junk).ok());
  EXPECT_FALSE(FetchRequestMessage::Decode(junk).ok());
  EXPECT_FALSE(ActiveObjectRequest::Decode(junk).ok());
}

// ---------------------------------------------------------------- ActiveObject

TEST(ActiveObjectTest, RenderConcatenatesElements) {
  ActiveNodeRegistry registry;
  ActiveObject object;
  object.AddDataElement(ToBytes("a"));
  object.AddDataElement(ToBytes("b"));
  EXPECT_EQ(ToString(object.Render(AccessLevel::kPublic, registry).value()),
            "ab");
}

TEST(ActiveObjectTest, MissingActiveNodeFailsRender) {
  ActiveNodeRegistry registry;
  ActiveObject object;
  object.AddActiveElement("ghost", ToBytes("x"));
  EXPECT_TRUE(
      object.Render(AccessLevel::kPublic, registry).status().IsNotFound());
}

TEST(ActiveObjectTest, SerializationRoundTrip) {
  ActiveObject object;
  object.AddDataElement(ToBytes("intro "));
  object.AddActiveElement("redact-secrets",
                          ToBytes("x [SECRET]y[/SECRET] z"));
  auto back = ActiveObject::Decode(object.Encode()).value();
  ASSERT_EQ(back.element_count(), 2u);
  EXPECT_FALSE(back.elements()[0].active);
  EXPECT_TRUE(back.elements()[1].active);
  EXPECT_EQ(back.elements()[1].active_node, "redact-secrets");

  // The decoded object renders identically.
  ActiveNodeRegistry registry;
  registry.Register("redact-secrets", RedactSecretsActiveNode).ok();
  EXPECT_EQ(object.Render(AccessLevel::kPublic, registry).value(),
            back.Render(AccessLevel::kPublic, registry).value());
}

TEST(ActiveObjectTest, DecodeRejectsTrailingBytes) {
  ActiveObject object;
  object.AddDataElement(ToBytes("a"));
  Bytes encoded = object.Encode();
  encoded.push_back(0);
  EXPECT_FALSE(ActiveObject::Decode(encoded).ok());
}

TEST(RedactSecretsTest, EdgeCases) {
  // Unterminated secret: everything from the marker is dropped.
  auto r = RedactSecretsActiveNode(ToBytes("a [SECRET]b"),
                                   AccessLevel::kPublic);
  EXPECT_EQ(ToString(r.value()), "a ");
  // Multiple secrets.
  auto r2 = RedactSecretsActiveNode(
      ToBytes("[SECRET]a[/SECRET]x[SECRET]b[/SECRET]"),
      AccessLevel::kMember);
  EXPECT_EQ(ToString(r2.value()), "[REDACTED]x[REDACTED]");
  // Owner sees everything.
  auto r3 = RedactSecretsActiveNode(ToBytes("[SECRET]a[/SECRET]"),
                                    AccessLevel::kOwner);
  EXPECT_EQ(ToString(r3.value()), "[SECRET]a[/SECRET]");
}

}  // namespace
}  // namespace bestpeer::core
