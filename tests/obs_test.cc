// Tests for the post-hoc analysis layer: flight recorder ring semantics,
// observability determinism (ISSUE 3 satellite), timeseries sampling,
// the JSON reader, the bench regression gate, and the critical-path
// acceptance criterion (components sum to measured end-to-end latency).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/bench_diff.h"
#include "obs/critical_path.h"
#include "obs/flight_recorder.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/timeseries.h"
#include "util/metrics.h"
#include "workload/churn.h"
#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer {
namespace {

using obs::DropCause;
using obs::EventType;
using obs::FlightEvent;
using obs::FlightRecorder;
using obs::FlightRecorderOptions;

FlightEvent Ev(SimTime ts, EventType type = EventType::kMsgSend) {
  FlightEvent e;
  e.ts = ts;
  e.type = type;
  e.node = 1;
  e.peer = 2;
  return e;
}

TEST(FlightRecorderTest, RingOverflowKeepsNewestAndCountsDrops) {
  FlightRecorderOptions options;
  options.capacity = 4;
  FlightRecorder recorder(options);
  for (SimTime t = 0; t < 10; ++t) recorder.Record(Ev(t));

  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped_events(), 6u);
  std::vector<FlightEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, static_cast<SimTime>(6 + i));
  }
}

TEST(FlightRecorderTest, NdjsonHeaderReportsRingState) {
  FlightRecorderOptions options;
  options.capacity = 2;
  FlightRecorder recorder(options);
  recorder.Record(Ev(1));
  recorder.Record(Ev(2));
  recorder.Record(Ev(3));
  recorder.TripAnomaly(4, "test \"anomaly\"");

  const std::string dump = recorder.ToNdjson();
  auto header_end = dump.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  auto header = obs::ParseJson(dump.substr(0, header_end));
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->Find("capacity")->AsNumber(), 2);
  EXPECT_EQ(header->Find("recorded")->AsNumber(), 4);  // 3 events + anomaly.
  EXPECT_EQ(header->Find("dropped")->AsNumber(), 2);
  ASSERT_EQ(header->Find("anomalies")->AsArray().size(), 1u);
  EXPECT_EQ(header->Find("anomalies")->AsArray()[0].AsString(),
            "test \"anomaly\"");
  // Every line must parse as JSON.
  size_t start = 0;
  int lines = 0;
  while (start < dump.size()) {
    size_t end = dump.find('\n', start);
    if (end == std::string::npos) end = dump.size();
    auto line = obs::ParseJson(dump.substr(start, end - start));
    EXPECT_TRUE(line.ok()) << dump.substr(start, end - start);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 3);  // Header + the 2 newest events.
}

// --- timeseries sampler ---------------------------------------------------

TEST(TimeSeriesSamplerTest, DeltasAndLevels) {
  metrics::Registry registry;
  metrics::Counter* bytes = registry.GetCounter("test.bytes");
  metrics::Gauge* depth = registry.GetGauge("test.depth");

  obs::TimeSeriesSampler sampler(&registry, 10);
  sampler.AddDelta("bytes", "test.bytes");
  sampler.AddLevel("depth", "test.depth");

  bytes->Add(100);
  depth->Set(3);
  sampler.Sample(0);
  bytes->Add(40);
  depth->Set(7);
  sampler.Sample(10);
  sampler.Sample(10);  // Same timestamp: deduped.
  sampler.Sample(20);  // No activity: zero delta, level holds.

  obs::TimeSeries ts = sampler.Take();
  ASSERT_EQ(ts.timestamps.size(), 3u);
  ASSERT_EQ(ts.columns.size(), 2u);  // ts_us is added at serialization.
  EXPECT_EQ(ts.points[0][0], 100);   // First sample: everything so far.
  EXPECT_EQ(ts.points[0][1], 3);
  EXPECT_EQ(ts.points[1][0], 40);  // Delta since previous sample.
  EXPECT_EQ(ts.points[1][1], 7);   // Level, not delta.
  EXPECT_EQ(ts.points[2][0], 0);
  EXPECT_EQ(ts.points[2][1], 7);

  auto parsed = obs::ParseJson(ts.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("points")->AsArray().size(), 3u);
}

// --- JSON reader ----------------------------------------------------------

TEST(JsonReaderTest, ParsesNestedDocument) {
  auto v = obs::ParseJson(
      R"({"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  ASSERT_TRUE(v->is_object());
  const auto& a = v->Find("a")->AsArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].AsNumber(), 1);
  EXPECT_EQ(a[1].AsNumber(), 2.5);
  EXPECT_EQ(a[2].AsNumber(), -300);
  EXPECT_EQ(v->Find("b")->Find("c")->AsString(), "x\ny");
  EXPECT_TRUE(v->Find("b")->Find("d")->AsBool());
  EXPECT_TRUE(v->Find("b")->Find("e")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonReaderTest, UnicodeEscapes) {
  auto v = obs::ParseJson(R"("Aé")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "A\xc3\xa9");
}

TEST(JsonReaderTest, RejectsMalformedInput) {
  EXPECT_FALSE(obs::ParseJson("{").ok());
  EXPECT_FALSE(obs::ParseJson("[1,]").ok());
  EXPECT_FALSE(obs::ParseJson("nope").ok());
  EXPECT_FALSE(obs::ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(obs::ParseJson("\"unterminated").ok());
}

TEST(JsonReaderTest, RoundTripsWriterEscapes) {
  const std::string ugly = "line\nbreak \"quoted\" back\\slash \t";
  auto v = obs::ParseJson(obs::JsonQuoted(ugly));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->AsString(), ugly);
  // Non-finite numbers become null, keeping documents parseable.
  EXPECT_EQ(obs::JsonNumber(std::nan("")), "null");
  EXPECT_EQ(obs::JsonNumber(1.0 / 0.0), "null");
}

// --- bench diff -----------------------------------------------------------

obs::JsonValue Report(double wire_bytes, double row_value) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), R"({
    "figure": "test_fig",
    "columns": ["n", "latency"],
    "rows": [{"label": "8", "values": [%g]}],
    "summary": {"wire_bytes": %g}
  })",
                row_value, wire_bytes);
  auto v = obs::ParseJson(buf);
  EXPECT_TRUE(v.ok());
  return std::move(v).value();
}

TEST(BenchDiffTest, FlagsWireBytesRegressionOverTenPercent) {
  obs::BenchDiff diff =
      obs::CompareReports(Report(1000, 5.0), Report(1111, 5.0));
  EXPECT_FALSE(diff.ok());
  ASSERT_EQ(diff.violations(), 1u);
  bool found = false;
  for (const auto& e : diff.entries) {
    if (e.metric == "summary.wire_bytes") {
      found = true;
      EXPECT_TRUE(e.regression);
      EXPECT_NEAR(e.rel_change, 0.111, 1e-3);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(diff.FormatText().find("FAIL"), std::string::npos);
}

TEST(BenchDiffTest, AcceptsChangesWithinThreshold) {
  obs::BenchDiff diff =
      obs::CompareReports(Report(1000, 5.0), Report(1050, 5.2));
  EXPECT_TRUE(diff.ok()) << diff.FormatText();
  EXPECT_EQ(diff.figure, "test_fig");
}

TEST(BenchDiffTest, PerMetricThresholdOverride) {
  obs::DiffOptions options;
  options.thresholds["summary.wire_bytes"] = 0.02;
  obs::BenchDiff diff =
      obs::CompareReports(Report(1000, 5.0), Report(1050, 5.0), options);
  EXPECT_FALSE(diff.ok());  // 5% move, 2% limit.
}

TEST(BenchDiffTest, MissingRowIsStructuralError) {
  auto base = obs::ParseJson(R"({
    "figure": "f", "columns": ["n", "x"],
    "rows": [{"label": "a", "values": [1]},
             {"label": "b", "values": [2]}],
    "summary": {}
  })");
  auto cur = obs::ParseJson(R"({
    "figure": "f", "columns": ["n", "x"],
    "rows": [{"label": "a", "values": [1]}],
    "summary": {}
  })");
  ASSERT_TRUE(base.ok() && cur.ok());
  obs::BenchDiff diff = obs::CompareReports(base.value(), cur.value());
  EXPECT_FALSE(diff.ok());
  EXPECT_FALSE(diff.structure_errors.empty());
}

// --- observability determinism (same seed + faults) -----------------------

workload::ChurnOptions FaultyChurn(metrics::Registry* registry) {
  workload::ChurnOptions o;
  o.node_count = 12;
  o.starter_peers = 2;
  o.objects_per_node = 30;
  o.matches_per_node = 3;
  o.rounds = 3;
  o.fault.message_loss = 0.15;
  o.fault.liglo_retries = 2;
  o.fault.query_deadline = Seconds(1);
  o.seed = 7;
  o.metrics = registry;
  o.trace = true;
  o.sample_interval = Millis(5);
  o.flight_capacity = 4096;
  return o;
}

TEST(ObsDeterminismTest, SameSeedSameFaultsBitIdenticalDumps) {
  metrics::Registry r1;
  auto a = workload::RunChurnExperiment(FaultyChurn(&r1));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  metrics::Registry r2;
  auto b = workload::RunChurnExperiment(FaultyChurn(&r2));
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  ASSERT_NE(a->flight, nullptr);
  ASSERT_NE(b->flight, nullptr);
  EXPECT_GT(a->flight->recorded(), 0u);
  EXPECT_EQ(a->flight->ToNdjson(), b->flight->ToNdjson());

  ASSERT_FALSE(a->timeseries.empty());
  EXPECT_EQ(a->timeseries.ToJson(), b->timeseries.ToJson());
}

TEST(ObsDeterminismTest, RecorderAndSamplerDoNotPerturbTheSchedule) {
  metrics::Registry r1;
  workload::ChurnOptions with = FaultyChurn(&r1);
  metrics::Registry r2;
  workload::ChurnOptions without = FaultyChurn(&r2);
  without.trace = false;
  without.sample_interval = 0;
  without.flight_capacity = 0;

  auto a = workload::RunChurnExperiment(with);
  auto b = workload::RunChurnExperiment(without);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->rounds.size(), b->rounds.size());
  for (size_t i = 0; i < a->rounds.size(); ++i) {
    EXPECT_EQ(a->rounds[i].received_answers, b->rounds[i].received_answers);
    EXPECT_EQ(a->rounds[i].completion, b->rounds[i].completion);
  }
  EXPECT_EQ(b->flight, nullptr);
  EXPECT_TRUE(b->timeseries.empty());
}

// --- critical path --------------------------------------------------------

/// Acceptance criterion: the per-component attribution of every query
/// sums to its measured end-to-end latency (±1 µs of rounding; the walk
/// is integer, so it is exact here).
TEST(CriticalPathTest, ComponentsSumToEndToEndLatency) {
  workload::ExperimentOptions options;
  options.topology = workload::MakeLine(6);
  options.scheme = workload::Scheme::kBpr;
  options.objects_per_node = 40;
  options.matches_per_node = 4;
  options.queries = 3;
  options.ttl = 16;
  options.trace = true;
  options.flight_capacity = 4096;
  auto result = workload::RunExperiment(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->trace, nullptr);

  obs::CriticalPathReport report =
      obs::AnalyzeCriticalPaths(*result->trace, result->flight.get());
  ASSERT_EQ(report.queries.size(), options.queries);

  std::vector<SimTime> measured;
  for (const auto& q : result->queries) measured.push_back(q.completion);
  std::sort(measured.begin(), measured.end());
  std::vector<SimTime> analyzed;
  for (const auto& q : report.queries) {
    EXPECT_LE(std::llabs(static_cast<long long>(q.ComponentSum()) -
                         static_cast<long long>(q.total)),
              1)
        << "flow " << q.flow;
    EXPECT_FALSE(q.hops.empty());
    analyzed.push_back(q.total);
  }
  std::sort(analyzed.begin(), analyzed.end());
  EXPECT_EQ(analyzed, measured);

  // The aggregate stats cover every attributed component and the report
  // serializes to valid JSON.
  auto parsed = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("queries")->AsNumber(),
            static_cast<double>(options.queries));
  double share = 0;
  for (const auto& [name, comp] : parsed->Find("components")->AsObject()) {
    share += comp.Find("share")->AsNumber();
  }
  EXPECT_NEAR(share, 1.0, 1e-6);
}

TEST(CriticalPathTest, EmptyTraceYieldsEmptyReport) {
  trace::TraceRecorder recorder;
  obs::CriticalPathReport report = obs::AnalyzeCriticalPaths(recorder);
  EXPECT_TRUE(report.empty());
  auto parsed = obs::ParseJson(report.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Find("queries")->AsNumber(), 0);
}

}  // namespace
}  // namespace bestpeer
