// Gossip anti-entropy plane tests: BPG1 codec hardening (round-trip,
// truncation sweep at every cut, crafted corruption), rumor convergence
// and quiescence on the simulated wire (including under seeded loss and
// partition/heal), duplicate suppression and the pull half of a round,
// lease-digest lifecycle, node-level pre-probe cache invalidation, and
// the gossip-off bit-identical schedule contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/node.h"
#include "gossip/gossip.h"
#include "gossip/gossip_frame.h"
#include "net/sim_transport.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/bytes.h"
#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::gossip {
namespace {

// --- BPG1 codec -----------------------------------------------------------

GossipFrame SampleFrame() {
  GossipFrame frame;
  frame.sender = 7;
  frame.round = 42;
  frame.items.push_back(
      {ItemKind::kIndexEpoch, /*origin=*/3, /*subject=*/0, /*holder=*/0,
       /*version=*/9, /*payload=*/9});
  frame.items.push_back(
      {ItemKind::kLeaseGrant, /*origin=*/3, /*subject=*/0xABCDEF, /*holder=*/5,
       /*version=*/2, /*payload=*/9});
  frame.items.push_back(
      {ItemKind::kLeaseExpire, /*origin=*/5, /*subject=*/0xABCDEF,
       /*holder=*/5, /*version=*/4, /*payload=*/1});
  return frame;
}

TEST(GossipFrameTest, RoundTripAllKindsAndResponseFlag) {
  GossipFrame frame = SampleFrame();
  frame.flags = GossipFrame::kFlagResponse;

  auto decoded = DecodeGossipFrame(EncodeGossipFrame(frame));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sender, 7u);
  EXPECT_EQ(decoded->round, 42u);
  EXPECT_EQ(decoded->flags, GossipFrame::kFlagResponse);
  ASSERT_EQ(decoded->items.size(), frame.items.size());
  for (size_t i = 0; i < frame.items.size(); ++i) {
    EXPECT_EQ(decoded->items[i].kind, frame.items[i].kind) << "item " << i;
    EXPECT_EQ(decoded->items[i].origin, frame.items[i].origin) << "item " << i;
    EXPECT_EQ(decoded->items[i].subject, frame.items[i].subject)
        << "item " << i;
    EXPECT_EQ(decoded->items[i].holder, frame.items[i].holder) << "item " << i;
    EXPECT_EQ(decoded->items[i].version, frame.items[i].version)
        << "item " << i;
    EXPECT_EQ(decoded->items[i].payload, frame.items[i].payload)
        << "item " << i;
  }
}

TEST(GossipFrameTest, EveryTruncationFailsToDecode) {
  const Bytes wire = EncodeGossipFrame(SampleFrame());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(), wire.begin() + cut);
    EXPECT_FALSE(DecodeGossipFrame(truncated).ok())
        << "decode accepted a frame cut at byte " << cut;
  }
}

TEST(GossipFrameTest, TrailingBytesRejected) {
  Bytes wire = EncodeGossipFrame(SampleFrame());
  wire.push_back(0x00);
  EXPECT_FALSE(DecodeGossipFrame(wire).ok());
}

/// Hand-writes a frame header (everything up to the item count) so each
/// corruption case states exactly which field it poisons.
void WriteHeader(BinaryWriter* w, uint32_t magic, uint16_t version,
                 uint8_t flags) {
  w->WriteU32(magic);
  w->WriteU16(version);
  w->WriteU32(/*sender=*/1);
  w->WriteU64(/*round=*/1);
  w->WriteU8(flags);
}

void WriteItem(BinaryWriter* w, uint8_t kind) {
  w->WriteU8(kind);
  w->WriteU32(/*origin=*/1);
  w->WriteU64(/*subject=*/0);
  w->WriteU32(/*holder=*/0);
  w->WriteU64(/*version=*/1);
  w->WriteU64(/*payload=*/1);
}

TEST(GossipFrameTest, CraftedCorruptionRejected) {
  {
    BinaryWriter w;  // Bad magic.
    WriteHeader(&w, 0xDEADBEEF, kGossipFrameVersion, 0);
    w.WriteVarint(0);
    EXPECT_FALSE(DecodeGossipFrame(w.buffer()).ok());
  }
  {
    BinaryWriter w;  // Unknown format version.
    WriteHeader(&w, kGossipFrameMagic, kGossipFrameVersion + 1, 0);
    w.WriteVarint(0);
    EXPECT_FALSE(DecodeGossipFrame(w.buffer()).ok());
  }
  {
    BinaryWriter w;  // Unknown flag bit beyond kFlagResponse.
    WriteHeader(&w, kGossipFrameMagic, kGossipFrameVersion, 0x02);
    w.WriteVarint(0);
    EXPECT_FALSE(DecodeGossipFrame(w.buffer()).ok());
  }
  {
    BinaryWriter w;  // Unknown item kind.
    WriteHeader(&w, kGossipFrameMagic, kGossipFrameVersion, 0);
    w.WriteVarint(1);
    WriteItem(&w, /*kind=*/9);
    EXPECT_FALSE(DecodeGossipFrame(w.buffer()).ok());
  }
  {
    BinaryWriter w;  // Item count past the corruption limit: must be an
                     // error, never an allocation attempt.
    WriteHeader(&w, kGossipFrameMagic, kGossipFrameVersion, 0);
    w.WriteVarint(kGossipFrameMaxItems + 1);
    EXPECT_FALSE(DecodeGossipFrame(w.buffer()).ok());
  }
}

// --- raw agents on the simulated wire -------------------------------------

std::vector<std::pair<size_t, size_t>> Star(size_t count) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 1; i < count; ++i) edges.emplace_back(0, i);
  return edges;
}

std::vector<std::pair<size_t, size_t>> FullMesh(size_t count) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i < count; ++i)
    for (size_t j = i + 1; j < count; ++j) edges.emplace_back(i, j);
  return edges;
}

class GossipAgentFixture : public ::testing::Test {
 protected:
  /// Must run before Build: the injector hooks SimNetwork::Send.
  void WithFaults(const sim::FaultOptions& options) {
    injector_ = sim_.EnableFaults(options);
  }

  void Build(size_t count,
             const std::vector<std::pair<size_t, size_t>>& edges,
             GossipOptions options = {}) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    peers_.resize(count);
    for (size_t i = 0; i < count; ++i) {
      net::SimTransport* transport = fleet_->AddNode();
      ids_.push_back(transport->local());
      auto agent = std::make_unique<GossipAgent>(transport, options);
      GossipAgent* raw = agent.get();
      transport->SetHandler([raw](const net::Message& msg) {
        if (msg.type == kGossipMsgType) raw->OnMessage(msg);
      });
      agents_.push_back(std::move(agent));
    }
    for (const auto& [a, b] : edges) {
      peers_[a].push_back(ids_[b]);
      peers_[b].push_back(ids_[a]);
    }
    for (size_t i = 0; i < count; ++i) {
      const std::vector<NodeId>* mine = &peers_[i];
      agents_[i]->SetPeerProvider([mine] { return *mine; });
    }
  }

  /// An extra transport that records every frame it receives — the
  /// "remote prober" used to inject crafted frames at an agent.
  net::SimTransport* AddProbe(std::vector<net::Message>* sink) {
    net::SimTransport* transport = fleet_->AddNode();
    transport->SetHandler(
        [sink](const net::Message& msg) { sink->push_back(msg); });
    return transport;
  }

  sim::Simulator sim_;
  sim::FaultInjector* injector_ = nullptr;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::vector<std::unique_ptr<GossipAgent>> agents_;
  std::vector<std::vector<NodeId>> peers_;
  std::vector<NodeId> ids_;
};

TEST_F(GossipAgentFixture, StarConvergesAndGoesQuiescent) {
  // On a star every rumor funnels through the hub, so the hub's fanout
  // must cover its leaves: fanout 2 at hot_rounds 3 draws only 6 of the
  // 4 leaves' shuffle slots and can leave a leaf unvisited before the
  // rumors go cold (epidemic coverage, not a protocol defect).
  GossipOptions options;
  options.fanout = 4;
  Build(5, Star(5), options);
  for (size_t i = 0; i < agents_.size(); ++i) {
    agents_[i]->AnnounceEpoch(10 * (i + 1));
  }
  sim_.RunUntilIdle();

  for (size_t i = 0; i < agents_.size(); ++i) {
    for (size_t j = 0; j < agents_.size(); ++j) {
      EXPECT_EQ(agents_[i]->EpochOf(ids_[j]), 10 * (j + 1))
          << "agent " << i << " missing epoch of node " << j;
    }
    EXPECT_TRUE(agents_[i]->quiescent())
        << "agent " << i << " left a round timer armed after convergence";
    EXPECT_EQ(agents_[i]->decode_errors(), 0u);
  }
  EXPECT_GT(agents_[0]->frames_sent(), 0u);
}

TEST_F(GossipAgentFixture, DuplicateAndStaleVersionsSuppressed) {
  Build(2, {{0, 1}});
  agents_[0]->AnnounceEpoch(5);
  sim_.RunUntilIdle();
  ASSERT_EQ(agents_[1]->EpochOf(ids_[0]), 5u);

  std::vector<net::Message> sink;
  net::SimTransport* probe = AddProbe(&sink);
  const uint64_t applied_before = agents_[0]->items_applied();
  const uint64_t duplicates_before = agents_[0]->duplicates();

  // A stale and an exactly-current replay of agent 0's own epoch, flagged
  // as a response so no pull-back is owed.
  GossipFrame replay;
  replay.sender = probe->local();
  replay.flags = GossipFrame::kFlagResponse;
  replay.items.push_back(
      {ItemKind::kIndexEpoch, ids_[0], 0, 0, /*version=*/3, /*payload=*/3});
  replay.items.push_back(
      {ItemKind::kIndexEpoch, ids_[0], 0, 0, /*version=*/5, /*payload=*/5});
  probe->Send(ids_[0], kGossipMsgType, EncodeGossipFrame(replay));
  sim_.RunUntilIdle();

  EXPECT_EQ(agents_[0]->EpochOf(ids_[0]), 5u)
      << "a stale replay must never roll the version vector back";
  EXPECT_EQ(agents_[0]->items_applied(), applied_before);
  EXPECT_EQ(agents_[0]->duplicates(), duplicates_before + 2);
  EXPECT_TRUE(sink.empty()) << "a response frame must not earn a reply";
}

TEST_F(GossipAgentFixture, PullHalfCorrectsStaleSender) {
  Build(2, {{0, 1}});
  agents_[0]->AnnounceEpoch(5);
  agents_[0]->AnnounceLeaseGrant(/*object_id=*/0xAB, /*holder=*/ids_[1],
                                 /*source_epoch=*/5);
  sim_.RunUntilIdle();

  // A push (not a response) offering a stale epoch: the agent owes the
  // sender its newer version of that key — and only that key.
  std::vector<net::Message> sink;
  net::SimTransport* probe = AddProbe(&sink);
  GossipFrame push;
  push.sender = probe->local();
  push.items.push_back(
      {ItemKind::kIndexEpoch, ids_[0], 0, 0, /*version=*/3, /*payload=*/3});
  probe->Send(ids_[0], kGossipMsgType, EncodeGossipFrame(push));
  sim_.RunUntilIdle();

  ASSERT_EQ(sink.size(), 1u) << "one push earns exactly one pull-back";
  auto reply = DecodeGossipFrame(sink[0].payload);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->flags, GossipFrame::kFlagResponse);
  ASSERT_EQ(reply->items.size(), 1u)
      << "the pull-back covers offered keys only, never unrelated state";
  EXPECT_EQ(reply->items[0].kind, ItemKind::kIndexEpoch);
  EXPECT_EQ(reply->items[0].origin, ids_[0]);
  EXPECT_EQ(reply->items[0].version, 5u);
}

TEST_F(GossipAgentFixture, LeaseDigestLifecyclePropagates) {
  Build(3, {{0, 1}, {1, 2}});
  agents_[0]->AnnounceLeaseGrant(/*object_id=*/0xBEEF, /*holder=*/ids_[2],
                                 /*source_epoch=*/1);
  sim_.RunUntilIdle();
  for (size_t i = 0; i < agents_.size(); ++i) {
    EXPECT_TRUE(agents_[i]->LeaseLive(0xBEEF, ids_[2])) << "agent " << i;
  }

  // The holder's expiry digest ends the lease everywhere.
  agents_[2]->AnnounceLeaseExpire(/*object_id=*/0xBEEF, /*generation=*/1);
  sim_.RunUntilIdle();
  for (size_t i = 0; i < agents_.size(); ++i) {
    EXPECT_FALSE(agents_[i]->LeaseLive(0xBEEF, ids_[2])) << "agent " << i;
    EXPECT_TRUE(agents_[i]->quiescent()) << "agent " << i;
  }
}

TEST_F(GossipAgentFixture, ConvergesUnderSeededLoss) {
  sim::FaultOptions faults;
  faults.seed = 7;
  faults.message_loss = 0.25;
  WithFaults(faults);

  GossipOptions options;
  options.hot_rounds = 8;  // Extra redundancy against the lossy wire.
  Build(5, FullMesh(5), options);
  for (size_t i = 0; i < agents_.size(); ++i) {
    agents_[i]->AnnounceEpoch(100 + i);
  }
  sim_.RunUntilIdle();

  for (size_t i = 0; i < agents_.size(); ++i) {
    for (size_t j = 0; j < agents_.size(); ++j) {
      EXPECT_EQ(agents_[i]->EpochOf(ids_[j]), 100 + j)
          << "agent " << i << " failed to converge on node " << j
          << " despite hot-round redundancy";
    }
    EXPECT_EQ(agents_[i]->decode_errors(), 0u);
  }
}

TEST_F(GossipAgentFixture, PartitionHealsViaReannounce) {
  WithFaults(sim::FaultOptions{});  // Zero probabilities: partitions only.
  Build(4, FullMesh(4));
  injector_->Partition({ids_[0], ids_[1]}, {ids_[2], ids_[3]});

  agents_[0]->AnnounceEpoch(5);
  sim_.RunUntilIdle();
  EXPECT_EQ(agents_[1]->EpochOf(ids_[0]), 5u);
  EXPECT_EQ(agents_[2]->EpochOf(ids_[0]), 0u)
      << "the cut must stop the rumor";
  EXPECT_EQ(agents_[3]->EpochOf(ids_[0]), 0u);

  injector_->Heal();
  agents_[0]->AnnounceEpoch(6);  // The next bump re-arms the rounds.
  sim_.RunUntilIdle();
  for (size_t i = 0; i < agents_.size(); ++i) {
    EXPECT_EQ(agents_[i]->EpochOf(ids_[0]), 6u)
        << "agent " << i << " still stale after heal + re-announce";
  }
}

TEST_F(GossipAgentFixture, IsolatedRumorSurvivesUntilPeersArrive) {
  Build(2, /*edges=*/{});  // Both nodes start with no direct peers.
  agents_[0]->AnnounceEpoch(7);
  sim_.RunUntilIdle();
  EXPECT_EQ(agents_[0]->frames_sent(), 0u);
  EXPECT_EQ(agents_[1]->EpochOf(ids_[0]), 0u);

  peers_[0].push_back(ids_[1]);
  peers_[1].push_back(ids_[0]);
  agents_[0]->NotifyPeersChanged();
  sim_.RunUntilIdle();
  EXPECT_EQ(agents_[1]->EpochOf(ids_[0]), 7u)
      << "the pending rumor must spread once a peer shows up";
  EXPECT_TRUE(agents_[0]->quiescent());
}

}  // namespace
}  // namespace bestpeer::gossip

// --- node-level: gossiped epochs beat the probe ---------------------------

namespace bestpeer::core {
namespace {

class GossipNodeFixture : public ::testing::Test {
 protected:
  void Build(const BestPeerConfig& config, const std::vector<size_t>& matches,
             const std::vector<std::pair<size_t, size_t>>& edges) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<SharedInfra>();
    for (size_t i = 0; i < matches.size(); ++i) {
      auto node =
          BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config)
              .value();
      ASSERT_TRUE(node->InitStorage({}).ok());
      for (size_t m = 0; m < matches[i]; ++m) {
        std::string text = "needle gossip data";
        text.resize(256, ' ');
        Bytes content(text.begin(), text.end());
        ids_[i].push_back((static_cast<uint64_t>(i) << 24) | m);
        ASSERT_TRUE(node->ShareObject(ids_[i].back(), content).ok());
      }
      nodes_.push_back(std::move(node));
    }
    for (const auto& [a, b] : edges) {
      nodes_[a]->AddDirectPeerLocal(nodes_[b]->node());
      nodes_[b]->AddDirectPeerLocal(nodes_[a]->node());
    }
  }

  const QuerySession* Query() {
    uint64_t query_id = nodes_[0]->IssueSearch("needle").value();
    sim_.RunUntilIdle();
    return nodes_[0]->FindSession(query_id);
  }

  uint64_t TotalStaleProbes() const {
    uint64_t total = 0;
    for (const auto& node : nodes_) total += node->cache_stale_probes();
    return total;
  }

  uint64_t TotalGossipInvalidations() const {
    uint64_t total = 0;
    for (const auto& node : nodes_) total += node->gossip_invalidations();
    return total;
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<SharedInfra> infra_;
  std::vector<std::unique_ptr<BestPeerNode>> nodes_;
  std::map<size_t, std::vector<storm::ObjectId>> ids_;
};

BestPeerConfig GossipCacheConfig(bool gossip) {
  BestPeerConfig config;
  config.max_direct_peers = 4;
  config.enable_result_cache = true;
  config.count_stale_probes = true;
  config.enable_gossip = gossip;
  return config;
}

/// The tentpole contract at node level: with gossip on, an epoch bump
/// reaches cache holders before the next probe, so the stale entry is
/// dropped pre-probe (gossip_invalidations) and the stale-probe round
/// trip never happens. The gossip-off control pays it.
TEST_F(GossipNodeFixture, GossipedEpochBumpInvalidatesBeforeProbe) {
  for (bool gossip : {false, true}) {
    nodes_.clear();
    ids_.clear();
    network_.reset();
    Build(GossipCacheConfig(gossip), {0, 0, 3}, {{0, 1}, {1, 2}});

    const QuerySession* warm = Query();
    ASSERT_NE(warm, nullptr);
    EXPECT_EQ(warm->unique_answers(), 3u);

    ASSERT_TRUE(nodes_[2]->UnshareObject(ids_[2][0]).ok());
    sim_.RunUntilIdle();  // Gossip rounds (if enabled) drain here.

    const QuerySession* after = Query();
    ASSERT_NE(after, nullptr);
    EXPECT_EQ(after->unique_answers(), 2u)
        << "stale cached answer served after the unshare (gossip="
        << gossip << ")";
    if (gossip) {
      ASSERT_NE(nodes_[2]->gossip_agent(), nullptr);
      EXPECT_GT(TotalGossipInvalidations(), 0u)
          << "the epoch bump must drop the cached slice ahead of the probe";
      EXPECT_EQ(TotalStaleProbes(), 0u)
          << "with gossip on, no probe should ever find a moved epoch";
    } else {
      EXPECT_EQ(nodes_[0]->gossip_agent(), nullptr);
      EXPECT_GE(TotalStaleProbes(), 1u)
          << "the control arm must pay the stale-probe round trip";
      EXPECT_EQ(TotalGossipInvalidations(), 0u);
    }
  }
}

}  // namespace
}  // namespace bestpeer::core

// --- workload level: schedules and answers --------------------------------

namespace bestpeer::workload {
namespace {

ExperimentOptions MutatingZipfWorkload() {
  ExperimentOptions options;
  options.topology = MakeTree(7, 2);
  options.scheme = Scheme::kBps;
  options.objects_per_node = 60;
  options.object_size = 256;
  options.matches_per_node = 2;
  options.queries = 12;
  options.ttl = 16;
  options.seed = 3;
  options.query_pool = 3;
  options.query_zipf_skew = 1.2;
  options.mutate_every = 2;
  options.enable_result_cache = true;
  options.enable_replication = true;
  options.replica_hot_threshold = 3;
  return options;
}

/// Gossip off must leave the schedule bit-identical no matter how the
/// gossip knobs are cranked — the flag, not the knobs, gates every code
/// path (the same contract the byte-identical baseline CI step enforces).
TEST(GossipWorkloadTest, GossipOffScheduleIsBitIdentical) {
  ExperimentOptions plain = MutatingZipfWorkload();
  auto plain_result = RunExperiment(plain);
  ASSERT_TRUE(plain_result.ok()) << plain_result.status().ToString();

  ExperimentOptions cranked = plain;
  cranked.enable_gossip = false;
  cranked.gossip_fanout = 7;
  cranked.gossip_interval = Millis(1);
  cranked.count_stale_probes = true;  // Observational; must not perturb.
  auto cranked_result = RunExperiment(cranked);
  ASSERT_TRUE(cranked_result.ok()) << cranked_result.status().ToString();

  EXPECT_EQ(cranked_result->wire_bytes, plain_result->wire_bytes);
  ASSERT_EQ(cranked_result->queries.size(), plain_result->queries.size());
  for (size_t q = 0; q < plain_result->queries.size(); ++q) {
    EXPECT_EQ(cranked_result->queries[q].completion,
              plain_result->queries[q].completion)
        << "query " << q;
    EXPECT_EQ(cranked_result->queries[q].unique_answers,
              plain_result->queries[q].unique_answers)
        << "query " << q;
  }
  EXPECT_EQ(cranked_result->metrics.Value("gossip.frames_sent"), 0.0);
}

/// With a lossless wire, gossip changes *when* caches are invalidated but
/// never *what* a query answers: per-query answer sets match the
/// gossip-off run exactly, while the stale-probe round trips disappear.
TEST(GossipWorkloadTest, GossipOnKeepsAnswersAndKillsStaleProbes) {
  ExperimentOptions off = MutatingZipfWorkload();
  off.count_stale_probes = true;
  auto off_result = RunExperiment(off);
  ASSERT_TRUE(off_result.ok()) << off_result.status().ToString();

  ExperimentOptions on = off;
  on.enable_gossip = true;
  auto on_result = RunExperiment(on);
  ASSERT_TRUE(on_result.ok()) << on_result.status().ToString();

  ASSERT_EQ(on_result->queries.size(), off_result->queries.size());
  for (size_t q = 0; q < on_result->queries.size(); ++q) {
    EXPECT_EQ(on_result->queries[q].unique_answers,
              off_result->queries[q].unique_answers)
        << "gossip changed the answer set of query " << q;
  }
  EXPECT_GT(on_result->metrics.Value("core.gossip_invalidations"), 0.0);
  EXPECT_LT(on_result->metrics.Value("core.cache_stale_probes"),
            off_result->metrics.Value("core.cache_stale_probes"))
      << "pre-probe invalidation must cut stale probes";
}

}  // namespace
}  // namespace bestpeer::workload
