#include <gtest/gtest.h>

#include "workload/churn.h"

namespace bestpeer::workload {
namespace {

ChurnOptions SmallChurn() {
  ChurnOptions o;
  o.node_count = 12;
  o.objects_per_node = 30;
  o.matches_per_node = 3;
  o.rounds = 4;
  return o;
}

TEST(ChurnTest, NoChurnGivesFullRecall) {
  ChurnOptions o = SmallChurn();
  o.leave_fraction = 0.0;
  o.rejoin_fraction = 0.0;
  auto result = RunChurnExperiment(o).value();
  ASSERT_EQ(result.rounds.size(), 4u);
  for (const auto& round : result.rounds) {
    EXPECT_EQ(round.online_nodes, 11u);
    EXPECT_EQ(round.received_answers, round.available_answers);
    EXPECT_DOUBLE_EQ(round.Recall(), 1.0);
    EXPECT_GT(round.completion, 0);
  }
}

TEST(ChurnTest, DeparturesReduceAvailability) {
  ChurnOptions o = SmallChurn();
  o.leave_fraction = 0.3;
  o.rejoin_fraction = 0.0;
  auto result = RunChurnExperiment(o).value();
  EXPECT_LT(result.rounds.back().online_nodes,
            result.rounds.front().online_nodes);
  for (const auto& round : result.rounds) {
    EXPECT_LE(round.received_answers, round.available_answers);
  }
}

TEST(ChurnTest, RejoinsRestoreAvailability) {
  ChurnOptions o = SmallChurn();
  o.rounds = 8;
  o.leave_fraction = 0.3;
  o.rejoin_fraction = 1.0;  // Everyone who left comes straight back.
  auto result = RunChurnExperiment(o).value();
  // Availability oscillates but never collapses: by the end, rejoins
  // balance departures.
  EXPECT_GE(result.rounds.back().online_nodes, 7u);
  EXPECT_GT(result.MeanRecall(), 0.6);
}

TEST(ChurnTest, ReconfigurationImprovesRecallUnderChurn) {
  ChurnOptions bpr = SmallChurn();
  bpr.node_count = 16;
  bpr.rounds = 6;
  bpr.leave_fraction = 0.25;
  bpr.rejoin_fraction = 0.5;
  bpr.reconfigure = true;
  ChurnOptions bps = bpr;
  bps.reconfigure = false;
  auto bpr_result = RunChurnExperiment(bpr).value();
  auto bps_result = RunChurnExperiment(bps).value();
  // A self-configuring node re-adopts answering peers, so it must do at
  // least as well as the static layout on the same churn sequence.
  EXPECT_GE(bpr_result.MeanRecall() + 1e-9, bps_result.MeanRecall());
}

TEST(ChurnTest, VictimsCannotRejoinInTheSameRound) {
  // With everyone leaving and everyone rejoining each round, the rejoin
  // pool must hold only *previous*-round victims: online counts oscillate
  // 11 -> 0 -> 11 -> 0. A same-round rejoin bug would pin them at 11.
  ChurnOptions o = SmallChurn();
  o.rounds = 6;
  o.leave_fraction = 1.0;
  o.rejoin_fraction = 1.0;
  auto result = RunChurnExperiment(o).value();
  ASSERT_EQ(result.rounds.size(), 6u);
  for (size_t i = 0; i < result.rounds.size(); ++i) {
    EXPECT_EQ(result.rounds[i].online_nodes, i % 2 == 0 ? 11u : 0u)
        << "round " << i;
  }
}

TEST(ChurnTest, DeterministicPerSeed) {
  ChurnOptions o = SmallChurn();
  o.leave_fraction = 0.3;
  o.rejoin_fraction = 0.5;
  auto a = RunChurnExperiment(o).value();
  auto b = RunChurnExperiment(o).value();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].received_answers, b.rounds[i].received_answers);
    EXPECT_EQ(a.rounds[i].completion, b.rounds[i].completion);
  }
}

TEST(ChurnTest, LossyRunWithRecoveryIsDeterministic) {
  ChurnOptions o = SmallChurn();
  o.leave_fraction = 0.25;
  o.rejoin_fraction = 0.5;
  o.fault.message_loss = 0.1;
  o.fault.liglo_retries = 2;
  o.fault.query_deadline = 1000000;  // 1s in sim microseconds.
  o.fault.peer_failure_threshold = 2;
  auto a = RunChurnExperiment(o).value();
  auto b = RunChurnExperiment(o).value();
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].online_nodes, b.rounds[i].online_nodes);
    EXPECT_EQ(a.rounds[i].received_answers, b.rounds[i].received_answers);
    EXPECT_EQ(a.rounds[i].completion, b.rounds[i].completion);
  }
}

TEST(ChurnTest, RejectsDegenerateOptions) {
  ChurnOptions o;
  o.node_count = 1;
  EXPECT_FALSE(RunChurnExperiment(o).ok());
}

}  // namespace
}  // namespace bestpeer::workload
