#include "util/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::workload {
namespace {

/// Small star-topology BestPeer experiment with tracing on: one base, three
/// leaves, each leaf holding matches, the query issued twice.
ExperimentOptions TracedStar() {
  ExperimentOptions o;
  o.topology = MakeStar(4);
  o.scheme = Scheme::kBps;
  o.objects_per_node = 20;
  o.object_size = 256;
  o.matches_per_node = 2;
  o.queries = 2;
  o.max_direct_peers = 4;
  o.ttl = 4;
  o.trace = true;
  return o;
}

TEST(TraceE2eTest, TracingOffByDefault) {
  ExperimentOptions options = TracedStar();
  options.trace = false;
  auto result = RunExperiment(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().trace, nullptr);
}

TEST(TraceE2eTest, StarQueryProducesNestedSpans) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  const auto& run = result.value();
  ASSERT_NE(run.trace, nullptr);
  const auto& spans = run.trace->spans();
  ASSERT_FALSE(spans.empty());

  // One top-level "query" span per issued query.
  std::vector<const trace::Span*> queries;
  for (const auto& s : spans) {
    if (s.cat == "query") queries.push_back(&s);
  }
  ASSERT_EQ(queries.size(), 2u);

  for (const trace::Span* query : queries) {
    ASSERT_NE(query->flow, 0u);
    // The query's agent migrated to the leaves: at least one wire span
    // and one remote execution (scan) carry the query's flow id.
    std::vector<const trace::Span*> migrations, scans;
    for (const auto& s : spans) {
      if (s.flow != query->flow) continue;
      if (s.name == "agent.migrate" && s.cat == "net") migrations.push_back(&s);
      if (s.name == "agent.execute" && s.cat == "cpu") scans.push_back(&s);
    }
    EXPECT_GE(migrations.size(), 3u);  // Base fans out to 3 leaves.
    ASSERT_FALSE(scans.empty());

    // Nesting: migrations start at/after the query launch, and every
    // remote scan starts only after a migration delivered the agent to
    // that node.
    for (const trace::Span* m : migrations) {
      EXPECT_GE(m->ts, query->ts);
    }
    for (const trace::Span* scan : scans) {
      auto carried = std::find_if(
          migrations.begin(), migrations.end(), [&](const trace::Span* m) {
            return m->tid == scan->tid && m->ts + m->dur <= scan->ts;
          });
      EXPECT_NE(carried, migrations.end())
          << "scan on node " << scan->tid << " has no preceding migration";
    }
    // Answers returned to the base within the measured query window.
    bool answer_seen = false;
    for (const auto& s : spans) {
      if (s.flow == query->flow && s.cat == "net" && s.name == "search.result") {
        answer_seen = true;
        EXPECT_LE(s.ts + s.dur, query->ts + query->dur);
      }
    }
    EXPECT_TRUE(answer_seen);
  }
}

TEST(TraceE2eTest, NetSpansAccountForAllWireBytes) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  const auto& run = result.value();
  ASSERT_NE(run.trace, nullptr);
  uint64_t traced_wire = 0;
  for (const auto& s : run.trace->spans()) {
    if (s.cat != "net") continue;
    for (const auto& [key, value] : s.args) {
      if (key == "wire") traced_wire += value;
    }
  }
  // Every sent message produced exactly one wire span (delivered or
  // dropped), so the spans account for 100% of the wire bytes.
  EXPECT_EQ(traced_wire, run.wire_bytes);
}

TEST(TraceE2eTest, ChromeJsonExportIsLoadable) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.value().trace, nullptr);
  const std::string json = result.value().trace->ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"agent.migrate\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  // Balanced JSON delimiters (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string path = ::testing::TempDir() + "bp_trace_test.json";
  ASSERT_TRUE(result.value().trace->WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  const std::string flat = result.value().trace->ToFlatText();
  EXPECT_NE(flat.find("agent.migrate"), std::string::npos);
}

}  // namespace
}  // namespace bestpeer::workload
