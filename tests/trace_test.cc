#include "util/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>

#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::workload {
namespace {

/// Small star-topology BestPeer experiment with tracing on: one base, three
/// leaves, each leaf holding matches, the query issued twice.
ExperimentOptions TracedStar() {
  ExperimentOptions o;
  o.topology = MakeStar(4);
  o.scheme = Scheme::kBps;
  o.objects_per_node = 20;
  o.object_size = 256;
  o.matches_per_node = 2;
  o.queries = 2;
  o.max_direct_peers = 4;
  o.ttl = 4;
  o.trace = true;
  return o;
}

TEST(TraceE2eTest, TracingOffByDefault) {
  ExperimentOptions options = TracedStar();
  options.trace = false;
  auto result = RunExperiment(options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().trace, nullptr);
}

TEST(TraceE2eTest, StarQueryProducesNestedSpans) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  const auto& run = result.value();
  ASSERT_NE(run.trace, nullptr);
  const auto spans = run.trace->Spans();
  ASSERT_FALSE(spans.empty());

  // One top-level "query" span per issued query.
  std::vector<const trace::Span*> queries;
  for (const auto& s : spans) {
    if (s.cat == "query") queries.push_back(&s);
  }
  ASSERT_EQ(queries.size(), 2u);

  for (const trace::Span* query : queries) {
    ASSERT_NE(query->flow, 0u);
    // The query's agent migrated to the leaves: at least one wire span
    // and one remote execution (scan) carry the query's flow id.
    std::vector<const trace::Span*> migrations, scans;
    for (const auto& s : spans) {
      if (s.flow != query->flow) continue;
      if (s.name == "agent.migrate" && s.cat == "net") migrations.push_back(&s);
      if (s.name == "agent.execute" && s.cat == "cpu") scans.push_back(&s);
    }
    EXPECT_GE(migrations.size(), 3u);  // Base fans out to 3 leaves.
    ASSERT_FALSE(scans.empty());

    // Nesting: migrations start at/after the query launch, and every
    // remote scan starts only after a migration delivered the agent to
    // that node.
    for (const trace::Span* m : migrations) {
      EXPECT_GE(m->ts, query->ts);
    }
    for (const trace::Span* scan : scans) {
      auto carried = std::find_if(
          migrations.begin(), migrations.end(), [&](const trace::Span* m) {
            return m->tid == scan->tid && m->ts + m->dur <= scan->ts;
          });
      EXPECT_NE(carried, migrations.end())
          << "scan on node " << scan->tid << " has no preceding migration";
    }
    // Answers returned to the base within the measured query window.
    bool answer_seen = false;
    for (const auto& s : spans) {
      if (s.flow == query->flow && s.cat == "net" && s.name == "search.result") {
        answer_seen = true;
        EXPECT_LE(s.ts + s.dur, query->ts + query->dur);
      }
    }
    EXPECT_TRUE(answer_seen);
  }
}

TEST(TraceE2eTest, NetSpansAccountForAllWireBytes) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  const auto& run = result.value();
  ASSERT_NE(run.trace, nullptr);
  uint64_t traced_wire = 0;
  for (const auto& s : run.trace->Spans()) {
    if (s.cat != "net") continue;
    for (const auto& [key, value] : s.args) {
      if (key == "wire") traced_wire += value;
    }
  }
  // Every sent message produced exactly one wire span (delivered or
  // dropped), so the spans account for 100% of the wire bytes.
  EXPECT_EQ(traced_wire, run.wire_bytes);
}

TEST(TraceE2eTest, ChromeJsonExportIsLoadable) {
  auto result = RunExperiment(TracedStar());
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result.value().trace, nullptr);
  const std::string json = result.value().trace->ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"agent.migrate\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
  // Balanced JSON delimiters (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  const std::string path = ::testing::TempDir() + "bp_trace_test.json";
  ASSERT_TRUE(result.value().trace->WriteChromeJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  const std::string flat = result.value().trace->ToFlatText();
  EXPECT_NE(flat.find("agent.migrate"), std::string::npos);
}

trace::Span MakeSpan(uint64_t seq) {
  trace::Span s;
  s.name = "s" + std::to_string(seq);
  s.cat = "cpu";
  s.tid = 1;
  s.ts = static_cast<SimTime>(seq);
  s.dur = 1;
  s.flow = seq;
  return s;
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  trace::TraceRecorderOptions options;
  options.ring_capacity = 4;
  trace::TraceRecorder rec(options);
  for (uint64_t i = 0; i < 10; ++i) rec.RecordSpan(MakeSpan(i));

  EXPECT_EQ(rec.capacity(), 4u);
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 10u);
  EXPECT_EQ(rec.spans_dropped(), 6u);

  // The ring holds the newest four spans, oldest first, and every
  // export path sees the same order.
  const auto spans = rec.Spans();
  ASSERT_EQ(spans.size(), 4u);
  for (uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[i].name, "s" + std::to_string(6 + i));
  }
  std::vector<std::string> visited;
  rec.ForEachSpan([&](const trace::Span& s) { visited.push_back(s.name); });
  EXPECT_EQ(visited, (std::vector<std::string>{"s6", "s7", "s8", "s9"}));
  const std::string flat = rec.ToFlatText();
  EXPECT_EQ(flat.find("s5"), std::string::npos);
  EXPECT_LT(flat.find("s6"), flat.find("s9"));
}

TEST(TraceRecorderTest, SpansSinceActsAsDrainCursor) {
  trace::TraceRecorderOptions options;
  options.ring_capacity = 8;
  trace::TraceRecorder rec(options);
  for (uint64_t i = 0; i < 3; ++i) rec.RecordSpan(MakeSpan(i));

  uint64_t cursor = 0;
  auto batch = rec.SpansSince(cursor, &cursor);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(cursor, 3u);

  // Nothing new: empty batch, cursor unchanged.
  batch = rec.SpansSince(cursor, &cursor);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(cursor, 3u);

  // Overflow past the cursor: spans that fell out of the ring are
  // silently absent, the cursor still lands at recorded().
  for (uint64_t i = 3; i < 15; ++i) rec.RecordSpan(MakeSpan(i));
  batch = rec.SpansSince(cursor, &cursor);
  ASSERT_EQ(batch.size(), 8u);  // Ring capacity, not 12.
  EXPECT_EQ(batch.front().name, "s7");
  EXPECT_EQ(batch.back().name, "s14");
  EXPECT_EQ(cursor, 15u);
}

TEST(TraceRecorderTest, SamplingIsDeterministicPerFlow) {
  trace::TraceRecorderOptions options;
  options.sample_rate = 0.25;
  trace::TraceRecorder a(options);
  trace::TraceRecorder b(options);

  // Two independent recorders (two "processes") agree on every flow, and
  // a realistic rate samples neither none nor all.
  size_t sampled = 0;
  for (uint64_t flow = 1; flow <= 1000; ++flow) {
    const bool va = a.Sampled(flow);
    EXPECT_EQ(va, b.Sampled(flow)) << "flow " << flow;
    if (va) ++sampled;
  }
  EXPECT_GT(sampled, 100u);
  EXPECT_LT(sampled, 500u);
  EXPECT_EQ(a.flows_sampled(), sampled);

  // The verdict is sticky and first_sighting fires exactly once.
  for (uint64_t flow = 1; flow <= 1000; ++flow) {
    bool first = true;
    const bool verdict = a.Sampled(flow, &first);
    EXPECT_EQ(verdict, b.Sampled(flow));
    EXPECT_FALSE(first);
  }
  EXPECT_EQ(a.flows_sampled(), sampled);
}

TEST(TraceRecorderTest, RateZeroSamplesNothingAndForceSampleOverrides) {
  trace::TraceRecorderOptions options;
  options.sample_rate = 0.0;
  trace::TraceRecorder rec(options);
  EXPECT_FALSE(rec.sample_all());
  for (uint64_t flow = 1; flow <= 100; ++flow) {
    EXPECT_FALSE(rec.Sampled(flow));
  }
  EXPECT_EQ(rec.flows_sampled(), 0u);

  // The wire-propagated decision wins over the local rate.
  EXPECT_TRUE(rec.ForceSample(42));
  EXPECT_FALSE(rec.ForceSample(42));  // Only the first sighting reports.
  EXPECT_TRUE(rec.Sampled(42));
  EXPECT_EQ(rec.flows_sampled(), 1u);
  const auto flows = rec.SampledFlows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0], 42u);

  // Flow 0 has no identity: never sampled below rate 1.0, never forced.
  EXPECT_FALSE(rec.Sampled(0));
  EXPECT_FALSE(rec.ForceSample(0));
}

TEST(TraceRecorderTest, DefaultRecorderSamplesEverything) {
  trace::TraceRecorder rec;
  EXPECT_TRUE(rec.sample_all());
  EXPECT_EQ(rec.sample_rate(), 1.0);
  EXPECT_TRUE(rec.Sampled(7));
  EXPECT_TRUE(rec.Sampled(0));  // Rate 1.0 covers unaffiliated spans too.
}

}  // namespace
}  // namespace bestpeer::workload
