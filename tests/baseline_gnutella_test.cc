#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/gnutella.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

namespace bestpeer::baseline {
namespace {

TEST(GnutellaWireTest, DescriptorRoundTrip) {
  GnutellaDescriptor d;
  d.guid.fill(0xAB);
  d.function = GnutellaFunction::kQuery;
  d.ttl = 7;
  d.hops = 2;
  d.payload = Bytes{1, 2, 3};
  auto back = GnutellaDescriptor::Decode(d.Encode()).value();
  EXPECT_EQ(back.guid, d.guid);
  EXPECT_EQ(back.function, GnutellaFunction::kQuery);
  EXPECT_EQ(back.ttl, 7);
  EXPECT_EQ(back.hops, 2);
  EXPECT_EQ(back.payload, d.payload);
}

TEST(GnutellaWireTest, RejectsUnknownFunction) {
  GnutellaDescriptor d;
  Bytes encoded = d.Encode();
  encoded[16] = 0x42;  // Function byte.
  EXPECT_FALSE(GnutellaDescriptor::Decode(encoded).ok());
}

TEST(GnutellaWireTest, QueryAndHitRoundTrip) {
  GnutellaQuery q;
  q.min_speed = 56;
  q.keywords = "needle";
  auto qb = GnutellaQuery::Decode(q.Encode()).value();
  EXPECT_EQ(qb.keywords, "needle");
  EXPECT_EQ(qb.min_speed, 56);

  GnutellaQueryHit h;
  h.responder = 9;
  h.files.push_back({1, 1024, "needle-1.txt"});
  h.files.push_back({2, 2048, "needle-2.txt"});
  auto hb = GnutellaQueryHit::Decode(h.Encode()).value();
  EXPECT_EQ(hb.responder, 9u);
  ASSERT_EQ(hb.files.size(), 2u);
  EXPECT_EQ(hb.files[1].size, 2048u);
}

class GnutellaFixture : public ::testing::Test {
 protected:
  void Build(size_t count,
             const std::vector<std::pair<size_t, size_t>>& edges,
             GnutellaConfig config = {}) {
    nodes_.clear();
    ids_.clear();
    fleet_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    network_ =
        std::make_unique<sim::SimNetwork>(sim_.get(), sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    for (size_t i = 0; i < count; ++i) ids_.push_back(network_->AddNode());
    for (size_t i = 0; i < count; ++i) {
      nodes_.push_back(
          GnutellaNode::Create(fleet_->For(ids_[i]), config).value());
    }
    for (auto [a, b] : edges) {
      nodes_[a]->AddNeighborLocal(ids_[b]);
      nodes_[b]->AddNeighborLocal(ids_[a]);
    }
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::vector<NodeId> ids_;
  std::vector<std::unique_ptr<GnutellaNode>> nodes_;
};

TEST_F(GnutellaFixture, QueryFindsFilesByName) {
  Build(3, {{0, 1}, {1, 2}});
  nodes_[1]->ShareFile("needle-doc.txt");
  nodes_[1]->ShareFile("other.txt");
  nodes_[2]->ShareFile("needle-song.mp3.txt");
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  const GnutellaSession* session = nodes_[0]->FindSession(key);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->total_files(), 2u);
  EXPECT_EQ(session->responder_count(), 2u);
}

TEST_F(GnutellaFixture, QueryHitsRouteAlongReversePath) {
  Build(3, {{0, 1}, {1, 2}});
  nodes_[2]->ShareFile("needle.txt");
  bool hit_through_middle = false;
  network_->SetTrace([&](const net::Message& m, SimTime, SimTime) {
    if (m.type != kGnutellaDescriptorType) return;
    auto d = GnutellaDescriptor::Decode(m.payload);
    if (d.ok() && d->function == GnutellaFunction::kQueryHit &&
        m.src == ids_[1] && m.dst == ids_[0]) {
      hit_through_middle = true;
    }
  });
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(key)->total_files(), 1u);
  EXPECT_TRUE(hit_through_middle)
      << "QueryHit must be relayed hop-by-hop along the reverse path";
  EXPECT_GE(nodes_[1]->descriptors_routed(), 1u);
}

TEST_F(GnutellaFixture, TtlLimitsFlood) {
  GnutellaConfig config;
  config.default_ttl = 2;
  Build(4, {{0, 1}, {1, 2}, {2, 3}}, config);
  for (size_t i = 1; i < 4; ++i) nodes_[i]->ShareFile("needle.txt");
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  // TTL 2 reaches nodes 1 and 2 but not 3.
  EXPECT_EQ(nodes_[0]->FindSession(key)->responder_count(), 2u);
}

TEST_F(GnutellaFixture, DuplicatesDroppedOnCycles) {
  Build(3, {{0, 1}, {1, 2}, {0, 2}});
  nodes_[1]->ShareFile("needle.txt");
  nodes_[2]->ShareFile("needle.txt");
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  // Each responder reports exactly once despite the cycle.
  EXPECT_EQ(nodes_[0]->FindSession(key)->total_files(), 2u);
  EXPECT_GE(nodes_[1]->duplicates_dropped() + nodes_[2]->duplicates_dropped(),
            1u);
}

TEST_F(GnutellaFixture, RepeatedQueriesSamePathSameTime) {
  Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  nodes_[4]->ShareFile("needle.txt");
  for (size_t i = 0; i < 5; ++i) {
    for (int f = 0; f < 50; ++f) {
      nodes_[i]->ShareFile("junk-" + std::to_string(f) + ".txt");
    }
  }
  uint64_t k1 = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  SimTime t1 = nodes_[0]->FindSession(k1)->completion_time();
  uint64_t k2 = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  SimTime t2 = nodes_[0]->FindSession(k2)->completion_time();
  // Fixed peers, same search path every run (paper §4.6).
  EXPECT_EQ(t1, t2);
}

TEST_F(GnutellaFixture, PingPongDiscovery) {
  Build(3, {{0, 1}, {1, 2}});
  nodes_[1]->ShareFile("a.txt");
  nodes_[2]->ShareFile("b.txt");
  nodes_[0]->SendPing();
  sim_->RunUntilIdle();
  // Pongs from both reachable servants arrive at the initiator.
  EXPECT_EQ(nodes_[0]->pongs_received(), 2u);
}

TEST_F(GnutellaFixture, PushRoutesAlongHitPathAndOpensUpload) {
  // 0 - 1 - 2: the responder (2) is "firewalled"; 0 sends a Push that
  // must be routed via 1, after which 2 opens the upload to 0 directly.
  Build(3, {{0, 1}, {1, 2}});
  nodes_[2]->ShareFile("needle.txt", 2048);
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  ASSERT_EQ(nodes_[0]->FindSession(key)->total_files(), 1u);

  ASSERT_TRUE(nodes_[0]->SendPush(key, ids_[2], 0).ok());
  sim_->RunUntilIdle();
  EXPECT_EQ(nodes_[2]->pushes_served(), 1u);
  EXPECT_EQ(nodes_[0]->push_opens_received(), 1u);
  EXPECT_GE(nodes_[1]->descriptors_routed(), 2u)
      << "the middle servant routed both the hit and the push";
}

TEST_F(GnutellaFixture, PushWithoutHitRouteFails) {
  Build(2, {{0, 1}});
  nodes_[1]->ShareFile("other.txt");
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  EXPECT_TRUE(nodes_[0]->SendPush(key, ids_[1], 0).IsNotFound())
      << "no QueryHit was received from that servent";
  EXPECT_TRUE(nodes_[0]->SendPush(9999, ids_[1], 0).IsNotFound())
      << "unknown query key";
}

TEST_F(GnutellaFixture, NoMatchNoHits) {
  Build(2, {{0, 1}});
  nodes_[1]->ShareFile("nothing-here.txt");
  uint64_t key = nodes_[0]->IssueQuery("needle").value();
  sim_->RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(key)->total_files(), 0u);
  EXPECT_EQ(nodes_[0]->FindSession(key)->completion_time(), 0);
}

}  // namespace
}  // namespace bestpeer::baseline
