// End-to-end tests for the result cache and hot-answer replication on the
// simulated network: not-modified replies on repeat queries, the no-stale
// invalidation contract under store mutation, replica promotion serving
// answers closer to the base, TTL expiry (including across a crash), and
// the determinism / transparency guarantees (cache off is bit-stable;
// observability does not perturb a cache-on schedule).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/fault.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::core {
namespace {

BestPeerConfig CacheConfig() {
  BestPeerConfig config;
  config.max_direct_peers = 4;
  config.enable_result_cache = true;
  return config;
}

std::vector<std::pair<size_t, size_t>> Line(size_t count) {
  std::vector<std::pair<size_t, size_t>> edges;
  for (size_t i = 0; i + 1 < count; ++i) edges.emplace_back(i, i + 1);
  return edges;
}

class CacheFixture : public ::testing::Test {
 protected:
  /// `matches[i]` matching objects at node i (ids i<<24 | m).
  void Build(const BestPeerConfig& config, const std::vector<size_t>& matches,
             const std::vector<std::pair<size_t, size_t>>& edges) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<SharedInfra>();
    for (size_t i = 0; i < matches.size(); ++i) {
      auto node =
          BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config)
              .value();
      ASSERT_TRUE(node->InitStorage({}).ok());
      for (size_t m = 0; m < matches[i]; ++m) {
        std::string text = "needle cached data";
        text.resize(256, ' ');
        Bytes content(text.begin(), text.end());
        ids_[i].push_back((static_cast<uint64_t>(i) << 24) | m);
        ASSERT_TRUE(node->ShareObject(ids_[i].back(), content).ok());
      }
      nodes_.push_back(std::move(node));
    }
    for (const auto& [a, b] : edges) {
      nodes_[a]->AddDirectPeerLocal(nodes_[b]->node());
      nodes_[b]->AddDirectPeerLocal(nodes_[a]->node());
    }
  }

  /// Issues `keyword` from node 0, drains the sim, returns the session.
  const QuerySession* Query(const std::string& keyword = "needle") {
    uint64_t query_id = nodes_[0]->IssueSearch(keyword).value();
    sim_.RunUntilIdle();
    return nodes_[0]->FindSession(query_id);
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<SharedInfra> infra_;
  std::vector<std::unique_ptr<BestPeerNode>> nodes_;
  std::map<size_t, std::vector<storm::ObjectId>> ids_;
};

TEST_F(CacheFixture, RepeatQueryBecomesNotModifiedAndSavesWire) {
  Build(CacheConfig(), {0, 2, 2}, {{0, 1}, {0, 2}});

  const QuerySession* first = Query();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->unique_answers(), 4u);
  EXPECT_EQ(nodes_[0]->cache_remote_hits(), 0u);
  const uint64_t wire_first = network_->total_wire_bytes();

  const QuerySession* second = Query();
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->unique_answers(), 4u)
      << "cached answers must match the fresh ones";
  EXPECT_EQ(second->responder_count(), 2u);
  EXPECT_EQ(nodes_[0]->cache_remote_hits(), 2u)
      << "both responders should reply not-modified";
  EXPECT_EQ(nodes_[0]->cache_notmod_orphans(), 0u);
  for (size_t i : {1u, 2u}) {
    EXPECT_GE(nodes_[i]->result_cache()->hits(), 1u);
  }
  const uint64_t wire_second = network_->total_wire_bytes() - wire_first;
  EXPECT_LT(wire_second, wire_first)
      << "not-modified replies must be cheaper than full answers";
}

TEST_F(CacheFixture, StoreMutationInvalidatesAndNeverServesStale) {
  Build(CacheConfig(), {0, 2, 2}, {{0, 1}, {0, 2}});

  ASSERT_EQ(Query()->unique_answers(), 4u);
  ASSERT_EQ(Query()->unique_answers(), 4u);  // Warm: served not-modified.

  // Delete one matching object at node 1: the epoch bump must force a
  // fresh scan, and the unshared object must never appear again.
  ASSERT_TRUE(nodes_[1]->UnshareObject(ids_[1][0]).ok());
  const QuerySession* after_delete = Query();
  EXPECT_EQ(after_delete->unique_answers(), 3u)
      << "a stale cached answer leaked past the mutation";
  EXPECT_GE(nodes_[1]->result_cache()->invalidations(), 1u)
      << "node 1 must drop its stale slice instead of serving it";

  // Warm again, then *add* a matching object at node 2: the cache must
  // not mask the new answer either.
  ASSERT_EQ(Query()->unique_answers(), 3u);
  std::string text = "needle cached data";
  text.resize(256, ' ');
  Bytes content(text.begin(), text.end());
  ASSERT_TRUE(nodes_[2]->ShareObject((2ull << 24) | 9, content).ok());
  EXPECT_EQ(Query()->unique_answers(), 4u)
      << "a cached result hid a newly shared object";
}

TEST_F(CacheFixture, HotAnswersReplicateTowardTheBase) {
  BestPeerConfig config = CacheConfig();
  config.enable_replication = true;
  config.replica_hot_threshold = 3;
  config.replica_ttl = 0;  // Keep replicas for the whole test.
  config.replica_cooldown = Millis(1);
  Build(config, {0, 0, 0, 0, 3}, Line(5));

  const QuerySession* cold = Query();
  ASSERT_EQ(cold->unique_answers(), 3u);
  const uint16_t hops_before = cold->responses().front().hops;
  const SimTime first_before =
      cold->responses().front().time - cold->start_time();

  // Two more serves push the key past the hot threshold at node 4.
  Query();
  Query();
  EXPECT_GE(nodes_[4]->replica_pushes(), 1u);
  for (storm::ObjectId id : ids_[4]) {
    EXPECT_TRUE(nodes_[3]->storage()->Contains(id))
        << "the hot answers should now be replicated at node 3";
  }

  const QuerySession* warm = Query();
  const uint16_t hops_after = warm->responses().front().hops;
  const SimTime first_after =
      warm->responses().front().time - warm->start_time();
  EXPECT_LT(hops_after, hops_before)
      << "the replica holder is closer to the base";
  EXPECT_LT(first_after, first_before);
  EXPECT_EQ(warm->unique_answers(), 3u)
      << "replication must not change the unique answer set";
}

TEST_F(CacheFixture, ReplicaTtlExpiresTheCopyAndItsBookkeeping) {
  BestPeerConfig config = CacheConfig();
  config.enable_replication = true;
  config.replica_hot_threshold = 1;  // Promote on the first serve.
  config.replica_ttl = Millis(50);
  Build(config, {0, 0, 2}, Line(3));

  ASSERT_EQ(Query()->unique_answers(), 2u);
  // RunUntilIdle drained the TTL timer too: the replica pushed to node 1
  // must already be stored, expired, and deleted again.
  EXPECT_EQ(nodes_[1]->replicas_stored(), 2u);
  EXPECT_EQ(nodes_[1]->replicas_expired(), 2u);
  EXPECT_EQ(nodes_[1]->replica_manager()->replica_count(), 0u);
  for (storm::ObjectId id : ids_[2]) {
    EXPECT_FALSE(nodes_[1]->storage()->Contains(id));
  }
  // The expiry deletion bumped node 1's epoch, so a repeat query gets
  // fresh (and correct) answers rather than anything replica-tainted.
  EXPECT_EQ(Query()->unique_answers(), 2u);
}

TEST_F(CacheFixture, ReplicaPushDroppedByCrashThenRecoversAndExpires) {
  BestPeerConfig config = CacheConfig();
  config.enable_replication = true;
  config.replica_hot_threshold = 1;
  config.replica_ttl = Millis(50);
  config.replica_cooldown = Millis(100);
  // The injector must exist before the network is built (the network
  // binds it at construction).
  sim::FaultInjector* faults = sim_.EnableFaults(sim::FaultOptions{});
  // Triangle: answers at node 1, which pushes to both 0 and 2.
  Build(config, {0, 2, 0}, {{0, 1}, {1, 2}, {0, 2}});

  // Node 2 is down for the whole first query: the push to it vanishes.
  faults->ScheduleCrash(nodes_[2]->node(), /*crash_at=*/1,
                        /*down_for=*/Seconds(1));
  ASSERT_EQ(Query()->unique_answers(), 2u);
  EXPECT_EQ(nodes_[2]->replicas_stored(), 0u)
      << "a crashed receiver must simply miss the push";
  EXPECT_EQ(nodes_[2]->replica_manager()->replica_count(), 0u);

  // After the restart a re-promotion pushes again; this time node 2
  // stores the copies and its TTL lease cleans them up.
  ASSERT_EQ(Query()->unique_answers(), 2u);
  EXPECT_EQ(nodes_[2]->replicas_stored(), 2u);
  EXPECT_EQ(nodes_[2]->replicas_expired(), 2u);
  EXPECT_EQ(nodes_[2]->replica_manager()->replica_count(), 0u);
  for (storm::ObjectId id : ids_[1]) {
    EXPECT_FALSE(nodes_[2]->storage()->Contains(id));
  }
}

// --- workload-level behaviour ---------------------------------------------

workload::ExperimentOptions ZipfWorkload() {
  workload::ExperimentOptions options;
  options.topology = workload::MakeTree(7, 2);
  options.scheme = workload::Scheme::kBps;
  options.objects_per_node = 60;
  options.object_size = 256;
  options.matches_per_node = 2;
  options.queries = 12;
  options.ttl = 16;
  options.seed = 3;
  options.query_pool = 3;
  options.query_zipf_skew = 1.2;
  return options;
}

TEST(CacheWorkloadTest, ZipfRepeatsHitAndCutWireBytes) {
  workload::ExperimentOptions off = ZipfWorkload();
  auto off_result = workload::RunExperiment(off);
  ASSERT_TRUE(off_result.ok()) << off_result.status().ToString();
  EXPECT_EQ(off_result->metrics.Value("cache.hits"), 0.0);

  workload::ExperimentOptions on = off;
  on.enable_result_cache = true;
  auto on_result = workload::RunExperiment(on);
  ASSERT_TRUE(on_result.ok()) << on_result.status().ToString();

  const double hits = on_result->metrics.Value("cache.hits");
  const double misses = on_result->metrics.Value("cache.misses");
  ASSERT_GT(hits + misses, 0.0);
  EXPECT_GE(hits / (hits + misses), 0.4)
      << "the Zipf-repeat workload must reach the target hit rate";
  EXPECT_LT(on_result->wire_bytes, off_result->wire_bytes)
      << "not-modified replies must shrink total wire traffic";

  // The cache is transparent: same answers, query by query.
  ASSERT_EQ(on_result->queries.size(), off_result->queries.size());
  for (size_t q = 0; q < on_result->queries.size(); ++q) {
    EXPECT_EQ(on_result->queries[q].unique_answers,
              off_result->queries[q].unique_answers)
        << "query " << q;
    EXPECT_EQ(on_result->queries[q].total_answers,
              off_result->queries[q].total_answers)
        << "query " << q;
  }
}

TEST(CacheWorkloadTest, MidWorkloadMutationsStayTransparent) {
  workload::ExperimentOptions off = ZipfWorkload();
  off.query_pool = 0;  // Single keyword: every query repeats.
  off.queries = 8;
  off.mutate_every = 2;
  auto off_result = workload::RunExperiment(off);
  ASSERT_TRUE(off_result.ok()) << off_result.status().ToString();

  workload::ExperimentOptions on = off;
  on.enable_result_cache = true;
  auto on_result = workload::RunExperiment(on);
  ASSERT_TRUE(on_result.ok()) << on_result.status().ToString();

  EXPECT_GT(on_result->metrics.Value("cache.hits"), 0.0);
  EXPECT_GT(on_result->metrics.Value("cache.invalidations"), 0.0)
      << "each mutation must invalidate the responder's slice";
  ASSERT_EQ(on_result->queries.size(), off_result->queries.size());
  for (size_t q = 0; q < on_result->queries.size(); ++q) {
    EXPECT_EQ(on_result->queries[q].unique_answers,
              off_result->queries[q].unique_answers)
        << "stale cached answer after a mutation, query " << q;
  }
  // The unshares must actually bite: the answer set shrinks over the run.
  EXPECT_LT(on_result->queries.back().unique_answers,
            on_result->queries.front().unique_answers);
}

TEST(CacheWorkloadTest, CacheRunsAreDeterministic) {
  workload::ExperimentOptions options = ZipfWorkload();
  options.enable_result_cache = true;
  options.enable_replication = true;
  options.replica_hot_threshold = 3;
  auto a = workload::RunExperiment(options);
  auto b = workload::RunExperiment(options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->wire_bytes, b->wire_bytes);
  ASSERT_EQ(a->queries.size(), b->queries.size());
  for (size_t q = 0; q < a->queries.size(); ++q) {
    EXPECT_EQ(a->queries[q].completion, b->queries[q].completion);
    EXPECT_EQ(a->queries[q].unique_answers, b->queries[q].unique_answers);
  }
}

TEST(CacheWorkloadTest, ObservabilityDoesNotPerturbCacheSchedule) {
  workload::ExperimentOptions plain = ZipfWorkload();
  plain.enable_result_cache = true;
  workload::ExperimentOptions instrumented = plain;
  instrumented.trace = true;
  instrumented.sample_interval = Millis(5);
  instrumented.flight_capacity = 4096;

  auto a = workload::RunExperiment(plain);
  auto b = workload::RunExperiment(instrumented);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->wire_bytes, b->wire_bytes);
  ASSERT_EQ(a->queries.size(), b->queries.size());
  for (size_t q = 0; q < a->queries.size(); ++q) {
    EXPECT_EQ(a->queries[q].completion, b->queries[q].completion);
    EXPECT_EQ(a->queries[q].unique_answers, b->queries[q].unique_answers);
  }
  ASSERT_NE(b->flight, nullptr);
  EXPECT_GT(b->flight->recorded(), 0u);
}

}  // namespace
}  // namespace bestpeer::core
