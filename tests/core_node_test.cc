#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/active_object.h"
#include "core/messages.h"
#include "core/node.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "util/strings.h"

namespace bestpeer::core {
namespace {

/// Builds a small BestPeer network over a given edge list.
class CoreNodeFixture : public ::testing::Test {
 protected:
  void Build(size_t count, const std::vector<std::pair<size_t, size_t>>& edges,
             BestPeerConfig config = {}) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<SharedInfra>();
    for (size_t i = 0; i < count; ++i) ids_.push_back(network_->AddNode());
    for (size_t i = 0; i < count; ++i) {
      auto node =
          BestPeerNode::Create(fleet_->For(ids_[i]), infra_.get(), config)
              .value();
      ASSERT_TRUE(node->InitStorage({}).ok());
      nodes_.push_back(std::move(node));
    }
    for (auto [a, b] : edges) {
      nodes_[a]->AddDirectPeerLocal(ids_[b]);
      nodes_[b]->AddDirectPeerLocal(ids_[a]);
    }
  }

  /// Shares `count` objects at node `idx`; `matches` of them match.
  void Fill(size_t idx, size_t count, size_t matches) {
    for (size_t i = 0; i < count; ++i) {
      std::string text = i < matches ? "needle content here"
                                     : "ordinary content here";
      Bytes content(text.begin(), text.end());
      content.resize(256, ' ');
      storm::ObjectId id = (static_cast<uint64_t>(idx) << 24) | i;
      ASSERT_TRUE(nodes_[idx]->ShareObject(id, content).ok());
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<SharedInfra> infra_;
  std::vector<NodeId> ids_;
  std::vector<std::unique_ptr<BestPeerNode>> nodes_;
};

TEST_F(CoreNodeFixture, SearchFindsRemoteMatches) {
  // Line: 0 - 1 - 2.
  Build(3, {{0, 1}, {1, 2}});
  Fill(1, 20, 3);
  Fill(2, 20, 5);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->total_answers(), 8u);
  EXPECT_EQ(session->responder_count(), 2u);
  EXPECT_GT(session->completion_time(), 0);
}

TEST_F(CoreNodeFixture, NoMatchesMeansNoResponses) {
  Build(2, {{0, 1}});
  Fill(1, 10, 0);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(qid)->responder_count(), 0u);
}

TEST_F(CoreNodeFixture, HopsArePiggybackedWithAnswers) {
  Build(4, {{0, 1}, {1, 2}, {2, 3}});
  Fill(3, 10, 2);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const auto& responses = nodes_[0]->FindSession(qid)->responses();
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].hops, 3);
  EXPECT_EQ(responses[0].node, ids_[3]);
}

TEST_F(CoreNodeFixture, AnswersReturnDirectlyNotAlongPath) {
  // Track message flow: node 1 (the intermediate) must never carry a
  // search-result message.
  Build(3, {{0, 1}, {1, 2}});
  Fill(2, 10, 2);
  bool relay_saw_result = false;
  network_->SetTrace([&](const net::Message& m, SimTime, SimTime) {
    if (m.type == kSearchResultType && m.dst == ids_[1]) {
      relay_saw_result = true;
    }
  });
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_FALSE(relay_saw_result)
      << "results must go out-of-network, straight to the base node";
}

TEST_F(CoreNodeFixture, ModeTwoFetchesContentOutOfNetwork) {
  BestPeerConfig config;
  config.answer_mode = AnswerMode::kIndicate;
  config.auto_fetch = true;
  Build(3, {{0, 1}, {1, 2}}, config);
  Fill(2, 10, 4);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  EXPECT_EQ(session->total_indicated(), 4u);  // Descriptors.
  EXPECT_EQ(session->total_answers(), 4u);    // Fetched contents.
  ASSERT_EQ(session->fetches().size(), 1u);
  EXPECT_GT(session->fetches()[0].time, session->responses()[0].time);
}

TEST_F(CoreNodeFixture, ModeTwoWithoutAutoFetchOnlyIndicates) {
  BestPeerConfig config;
  config.answer_mode = AnswerMode::kIndicate;
  config.auto_fetch = false;
  Build(2, {{0, 1}}, config);
  Fill(1, 10, 4);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  EXPECT_EQ(session->total_indicated(), 4u);
  EXPECT_EQ(session->total_answers(), 0u);
  EXPECT_TRUE(session->fetches().empty());
}

TEST_F(CoreNodeFixture, DeadlineFinalizesSessionWithPartialAnswers) {
  BestPeerConfig config;
  config.query_deadline = Seconds(1);
  Build(3, {{0, 1}, {0, 2}}, config);
  Fill(1, 10, 3);
  Fill(2, 10, 5);
  network_->SetOnline(ids_[2], false);  // Crashed: its answers never come.
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->finalized());
  EXPECT_EQ(session->total_answers(), 3u);  // The live peer's share.
  EXPECT_EQ(nodes_[0]->sessions_finalized(), 1u);
}

TEST_F(CoreNodeFixture, ResultsAfterDeadlineAreDroppedAndCounted) {
  BestPeerConfig config;
  config.query_deadline = Millis(1);  // Below one agent round trip.
  Build(2, {{0, 1}}, config);
  Fill(1, 10, 4);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(session->finalized());
  EXPECT_EQ(session->total_answers(), 0u);
  EXPECT_GE(nodes_[0]->late_results(), 1u);
}

TEST_F(CoreNodeFixture, SilentPeersAreEvictedAtFailureThreshold) {
  BestPeerConfig config;
  config.query_deadline = Seconds(1);
  config.peer_failure_threshold = 2;
  Build(3, {{0, 1}, {0, 2}}, config);
  Fill(1, 10, 3);
  Fill(2, 10, 3);
  network_->SetOnline(ids_[2], false);  // Silently dead from the start.

  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  // One missed deadline: still on probation.
  EXPECT_TRUE(nodes_[0]->peers().Contains(ids_[2]));
  EXPECT_EQ(nodes_[0]->peer_evictions(), 0u);

  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  // Second consecutive miss crosses the threshold.
  EXPECT_FALSE(nodes_[0]->peers().Contains(ids_[2]));
  EXPECT_TRUE(nodes_[0]->peers().Contains(ids_[1]));  // Responder survives.
  EXPECT_EQ(nodes_[0]->peer_evictions(), 1u);
}

TEST_F(CoreNodeFixture, RespondingPeerResetsFailureStreak) {
  BestPeerConfig config;
  config.query_deadline = Seconds(1);
  config.peer_failure_threshold = 2;
  Build(2, {{0, 1}}, config);
  Fill(1, 10, 3);
  network_->SetOnline(ids_[1], false);
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();  // Miss #1.
  network_->SetOnline(ids_[1], true);
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();  // Answers: streak resets.
  network_->SetOnline(ids_[1], false);
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();  // Miss #1 again — not #3.
  EXPECT_TRUE(nodes_[0]->peers().Contains(ids_[1]));
  EXPECT_EQ(nodes_[0]->peer_evictions(), 0u);
}

TEST_F(CoreNodeFixture, ReconfigureAdoptsAnswerers) {
  // Star around node 1; base is node 0 with k=2: 0-1, 1-2, 1-3.
  BestPeerConfig config;
  config.max_direct_peers = 2;
  config.strategy = "maxcount";
  Build(4, {{0, 1}, {1, 2}, {1, 3}}, config);
  Fill(2, 10, 6);
  Fill(3, 10, 2);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  ASSERT_TRUE(nodes_[0]->Reconfigure(qid).ok());
  sim_.RunUntilIdle();
  auto peers = nodes_[0]->DirectPeerNodes();
  // Top answerers are 2 (6 answers) and 3 (2 answers); node 1 answered 0.
  EXPECT_EQ(peers, (std::vector<NodeId>{ids_[2], ids_[3]}));
  EXPECT_EQ(nodes_[0]->reconfigurations(), 1u);
  // The dropped peer's side is updated via the disconnect notice.
  EXPECT_FALSE(nodes_[1]->peers().Contains(ids_[0]));
  // The adopted peers' sides accepted the connect notice.
  EXPECT_TRUE(nodes_[2]->peers().Contains(ids_[0]));
  EXPECT_TRUE(nodes_[3]->peers().Contains(ids_[0]));
}

TEST_F(CoreNodeFixture, StaticStrategyNeverChangesPeers) {
  BestPeerConfig config;
  config.strategy = "none";
  config.max_direct_peers = 1;
  Build(3, {{0, 1}, {1, 2}}, config);
  Fill(2, 10, 5);
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  ASSERT_TRUE(nodes_[0]->Reconfigure(qid).ok());
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->DirectPeerNodes(), (std::vector<NodeId>{ids_[1]}));
  EXPECT_EQ(nodes_[0]->reconfigurations(), 0u);
}

TEST_F(CoreNodeFixture, SecondQueryFasterAfterReconfigure) {
  // Line 0-1-2-3 with all answers at 3: after reconfig, 3 is adjacent.
  BestPeerConfig config;
  config.max_direct_peers = 2;
  Build(4, {{0, 1}, {1, 2}, {2, 3}}, config);
  Fill(3, 50, 10);
  uint64_t q1 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  SimTime t1 = nodes_[0]->FindSession(q1)->completion_time();
  ASSERT_TRUE(nodes_[0]->Reconfigure(q1).ok());
  sim_.RunUntilIdle();
  uint64_t q2 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  SimTime t2 = nodes_[0]->FindSession(q2)->completion_time();
  EXPECT_EQ(nodes_[0]->FindSession(q2)->total_answers(), 10u);
  EXPECT_LT(t2, t1) << "reconfiguration should cut the path to answers";
}

TEST_F(CoreNodeFixture, JoinViaLigloAdoptsPeers) {
  // Node 0 runs a LIGLO server; nodes 1..3 are BestPeer nodes that join.
  network_ = std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
  fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
  infra_ = std::make_unique<SharedInfra>();
  net::SimTransport* server_transport = fleet_->AddNode();
  NodeId server_id = server_transport->local();
  net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServer server(server_transport, &server_dispatcher,
                            &infra_->ip_directory, {});
  BestPeerConfig config;
  config.max_direct_peers = 4;
  for (size_t i = 0; i < 3; ++i) {
    net::SimTransport* transport = fleet_->AddNode();
    ids_.push_back(transport->local());
    nodes_.push_back(
        BestPeerNode::Create(transport, infra_.get(), config).value());
  }
  int joined = 0;
  for (size_t i = 0; i < 3; ++i) {
    liglo::IpAddress ip =
        infra_->ip_directory.AssignFresh(ids_[i]);
    nodes_[i]->JoinNetwork(
        server_id, ip,
        [&joined](Result<liglo::LigloClient::RegisterOutcome> r) {
          ASSERT_TRUE(r.ok());
          ++joined;
        });
    sim_.RunUntilIdle();
  }
  EXPECT_EQ(joined, 3);
  EXPECT_TRUE(nodes_[0]->bpid().IsValid());
  // Node 1 was handed node 0 as a starter peer; node 2 got 0 and 1.
  EXPECT_TRUE(nodes_[1]->peers().Contains(ids_[0]));
  EXPECT_TRUE(nodes_[2]->peers().Contains(ids_[0]));
  EXPECT_TRUE(nodes_[2]->peers().Contains(ids_[1]));
  // Connect notices made the links bidirectional.
  EXPECT_TRUE(nodes_[0]->peers().Contains(ids_[1]));
  EXPECT_EQ(server.member_count(), 3u);
}

TEST_F(CoreNodeFixture, WatchPeerDeliversStoreChangeNotifications) {
  Build(2, {{0, 1}});
  struct Seen {
    UpdateNotifyMessage::Kind kind;
    storm::ObjectId id;
  };
  std::vector<Seen> events;
  nodes_[0]->WatchPeer(
      ids_[1], [&](NodeId provider, UpdateNotifyMessage::Kind kind,
                   storm::ObjectId id) {
        EXPECT_EQ(provider, ids_[1]);
        events.push_back({kind, id});
      });
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[1]->watcher_count(), 1u);

  nodes_[1]->ShareObject(100, ToBytes("v1 content")).ok();
  nodes_[1]->UpdateObject(100, ToBytes("v2 content")).ok();
  nodes_[1]->UnshareObject(100).ok();
  sim_.RunUntilIdle();

  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, UpdateNotifyMessage::Kind::kAdded);
  EXPECT_EQ(events[0].id, 100u);
  EXPECT_EQ(events[1].kind, UpdateNotifyMessage::Kind::kUpdated);
  EXPECT_EQ(events[2].kind, UpdateNotifyMessage::Kind::kRemoved);
}

TEST_F(CoreNodeFixture, UnwatchStopsNotifications) {
  Build(2, {{0, 1}});
  int events = 0;
  nodes_[0]->WatchPeer(ids_[1],
                       [&](NodeId, UpdateNotifyMessage::Kind,
                           storm::ObjectId) { ++events; });
  sim_.RunUntilIdle();
  nodes_[1]->ShareObject(1, ToBytes("a")).ok();
  sim_.RunUntilIdle();
  EXPECT_EQ(events, 1);
  nodes_[0]->UnwatchPeer(ids_[1]);
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[1]->watcher_count(), 0u);
  nodes_[1]->ShareObject(2, ToBytes("b")).ok();
  sim_.RunUntilIdle();
  EXPECT_EQ(events, 1) << "no notifications after unwatch";
}

TEST_F(CoreNodeFixture, LigloFailureDoesNotBreakPeering) {
  // Paper §3.4, advantage 1: "if a peer A registered with LIGLO A finds
  // that LIGLO A is down, it can still communicate with other peers that
  // it has. In addition, other peers that registered with other LIGLO
  // server will not be affected at all."
  network_ = std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
  fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
  infra_ = std::make_unique<SharedInfra>();

  net::SimTransport* t1 = fleet_->AddNode();
  net::SimTransport* t2 = fleet_->AddNode();
  NodeId server1 = t1->local();
  net::Dispatcher d1(t1);
  net::Dispatcher d2(t2);
  liglo::LigloServer liglo1(t1, &d1, &infra_->ip_directory, {});
  liglo::LigloServer liglo2(t2, &d2, &infra_->ip_directory, {});

  BestPeerConfig config;
  auto a = BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config)
               .value();
  auto b = BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config)
               .value();
  a->InitStorage({}).ok();
  b->InitStorage({}).ok();
  a->JoinNetwork(server1, infra_->ip_directory.AssignFresh(a->node()),
                 nullptr);
  b->JoinNetwork(t2->local(), infra_->ip_directory.AssignFresh(b->node()),
                 nullptr);
  sim_.RunUntilIdle();
  // Wire the peering (they registered with different LIGLOs, so neither
  // appeared in the other's starter list).
  a->AddDirectPeerLocal(b->node());
  b->AddDirectPeerLocal(a->node());
  Bytes content = ToBytes("needle payload");
  content.resize(128, ' ');
  b->ShareObject(1, content).ok();

  // LIGLO 1 dies.
  network_->SetOnline(server1, false);

  // A can still search through its existing peers...
  uint64_t qid = a->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(a->FindSession(qid)->total_answers(), 1u);

  // ...and peers of the *other* LIGLO are unaffected: B resolves A's
  // BPID fine? No — A is registered with the dead server; resolving A
  // fails. But resolving members of LIGLO 2 still works.
  Status resolve_dead = Status::OK();
  b->liglo_client().Resolve(a->bpid(), [&](auto r) {
    resolve_dead = r.status();
  });
  Result<liglo::LigloClient::ResolveOutcome> resolve_alive =
      Status::Internal("unset");
  a->liglo_client().Resolve(b->bpid(), [&](auto r) {
    resolve_alive = std::move(r);
  });
  sim_.RunUntilIdle();
  EXPECT_TRUE(resolve_dead.IsUnavailable())
      << "the dead LIGLO's names are temporarily unresolvable";
  ASSERT_TRUE(resolve_alive.ok());
  EXPECT_EQ(resolve_alive->state, liglo::PeerState::kOnline)
      << "the other LIGLO's members are unaffected";
}

TEST_F(CoreNodeFixture, ComputeAgentFiltersAtProvider) {
  Build(2, {{0, 1}});
  // Provider stores CSV-ish rows; requester ships a "grep" filter.
  std::string rows = "alpha,1\nbeta,2\nalpha,3\n";
  Bytes content(rows.begin(), rows.end());
  ASSERT_TRUE(nodes_[1]->ShareObject(1, content).ok());
  // Both nodes know the filter algorithm (its "code" is registered).
  for (auto& node : nodes_) {
    ASSERT_TRUE(node->mutable_filters()
                    .Register("grep-rows",
                              [](const Bytes& object, const Bytes& params)
                                  -> Result<Bytes> {
                                std::string needle = ToString(params);
                                std::string text = ToString(object);
                                std::string out;
                                for (const auto& line :
                                     Split(text, '\n')) {
                                  if (line.find(needle) !=
                                      std::string::npos) {
                                    out += line + "\n";
                                  }
                                }
                                return ToBytes(out);
                              })
                    .ok());
  }
  uint64_t qid =
      nodes_[0]->IssueCompute("grep-rows", ToBytes("alpha")).value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  ASSERT_EQ(session->responses().size(), 1u);
  EXPECT_EQ(session->total_answers(), 1u);  // One object passed the filter.
}

TEST_F(CoreNodeFixture, ActiveObjectRendersPerAccessLevel) {
  Build(2, {{0, 1}});
  ASSERT_TRUE(nodes_[1]
                  ->active_nodes()
                  .Register("redact-secrets", RedactSecretsActiveNode)
                  .ok());
  ActiveObject report;
  report.AddDataElement(ToBytes("Public intro. "));
  report.AddActiveElement("redact-secrets",
                          ToBytes("Data: [SECRET]key=42[/SECRET] end."));
  nodes_[1]->ShareActiveObject("report", report);

  std::string public_view, owner_view;
  nodes_[0]->RequestActiveObject(ids_[1], "report", AccessLevel::kPublic,
                                 [&](Result<Bytes> r) {
                                   ASSERT_TRUE(r.ok());
                                   public_view = ToString(r.value());
                                 });
  nodes_[0]->RequestActiveObject(ids_[1], "report", AccessLevel::kOwner,
                                 [&](Result<Bytes> r) {
                                   ASSERT_TRUE(r.ok());
                                   owner_view = ToString(r.value());
                                 });
  sim_.RunUntilIdle();
  EXPECT_EQ(public_view, "Public intro. Data: [REDACTED] end.");
  EXPECT_EQ(owner_view,
            "Public intro. Data: [SECRET]key=42[/SECRET] end.");
}

TEST_F(CoreNodeFixture, UnknownActiveObjectReportsError) {
  Build(2, {{0, 1}});
  Status status = Status::OK();
  nodes_[0]->RequestActiveObject(ids_[1], "ghost", AccessLevel::kPublic,
                                 [&](Result<Bytes> r) {
                                   status = r.status();
                                 });
  sim_.RunUntilIdle();
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(CoreNodeFixture, ShareFileIsSearchable) {
  Build(2, {{0, 1}});
  ASSERT_TRUE(
      nodes_[1]->ShareFile("doc.txt", ToBytes("has the needle token")).ok());
  EXPECT_TRUE(nodes_[1]->LookupFile("doc.txt").ok());
  EXPECT_FALSE(nodes_[1]->LookupFile("other.txt").ok());
  EXPECT_TRUE(
      nodes_[1]->ShareFile("doc.txt", ToBytes("x")).IsAlreadyExists());
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(qid)->total_answers(), 1u);
}

TEST_F(CoreNodeFixture, MultiKeywordSearchEndToEnd) {
  Build(3, {{0, 1}, {1, 2}});
  // Node 1: objects with both terms; node 2: only one term.
  ASSERT_TRUE(nodes_[1]->ShareObject(
      1, ToBytes("mobile agents in peer networks")).ok());
  ASSERT_TRUE(nodes_[1]->ShareObject(2, ToBytes("peer only")).ok());
  ASSERT_TRUE(nodes_[2]->ShareObject(3, ToBytes("agents only")).ok());
  ASSERT_TRUE(nodes_[2]->ShareObject(4, ToBytes("gamma rays")).ok());

  uint64_t and_query = nodes_[0]->IssueSearch("peer agents").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(and_query)->total_answers(), 1u);

  uint64_t or_query =
      nodes_[0]->IssueSearch("peer agents OR gamma").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->FindSession(or_query)->total_answers(), 2u);
}

TEST_F(CoreNodeFixture, QueryCacheSpeedsRepeatedSearches) {
  Build(2, {{0, 1}});
  // Rebuild node 1's storage with the query cache on.
  storm::StormOptions store;
  store.enable_query_cache = true;
  ASSERT_TRUE(nodes_[1]->InitStorage(store).ok());
  Fill(1, 100, 5);

  uint64_t q1 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  SimTime t1 = nodes_[0]->FindSession(q1)->completion_time();
  uint64_t q2 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  SimTime t2 = nodes_[0]->FindSession(q2)->completion_time();
  EXPECT_EQ(nodes_[0]->FindSession(q2)->total_answers(), 5u);
  EXPECT_LT(t2, t1) << "cached scan should skip the per-object CPU";
  EXPECT_EQ(nodes_[1]->storage()->query_cache_hits(), 1u);
}

TEST_F(CoreNodeFixture, HistoryWeightStabilizesPeerSet) {
  // Node 2 is a consistently good answerer; node 3 answers only once
  // (its objects are deleted after the first query). With history
  // weighting, node 2 must stay a direct peer even in the round where a
  // one-off outlier (node 3) happens to answer more.
  BestPeerConfig config;
  config.max_direct_peers = 1;
  config.strategy = "maxcount";
  config.history_weight = 0.8;
  Build(4, {{0, 1}, {1, 2}, {1, 3}}, config);
  Fill(2, 20, 5);
  Fill(3, 20, 8);

  // Query 1: node 3 answers more and would win a memory-less ranking in
  // every round; run a couple of rounds to accumulate history for 2.
  for (int round = 0; round < 2; ++round) {
    uint64_t qid = nodes_[0]->IssueSearch("needle").value();
    sim_.RunUntilIdle();
    ASSERT_TRUE(nodes_[0]->Reconfigure(qid).ok());
    sim_.RunUntilIdle();
  }
  // Node 3 goes silent: delete its matching objects.
  for (size_t i = 0; i < 8; ++i) {
    nodes_[3]->storage()->Delete((static_cast<uint64_t>(3) << 24) | i).ok();
  }
  // Two more rounds: history decays 3's score; 2 takes over and stays.
  for (int round = 0; round < 2; ++round) {
    uint64_t qid = nodes_[0]->IssueSearch("needle").value();
    sim_.RunUntilIdle();
    ASSERT_TRUE(nodes_[0]->Reconfigure(qid).ok());
    sim_.RunUntilIdle();
  }
  EXPECT_EQ(nodes_[0]->DirectPeerNodes(), (std::vector<NodeId>{ids_[2]}));
}

TEST_F(CoreNodeFixture, CompressionShrinksWireBytes) {
  BestPeerConfig lzss;
  lzss.codec = "lzss";
  Build(2, {{0, 1}}, lzss);
  Fill(1, 50, 20);
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  uint64_t compressed_bytes = network_->total_wire_bytes();

  // Fresh identical network without compression.
  ids_.clear();
  nodes_.clear();
  BestPeerConfig null_codec;
  null_codec.codec = "null";
  Build(2, {{0, 1}}, null_codec);
  Fill(1, 50, 20);
  nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  uint64_t raw_bytes = network_->total_wire_bytes();
  EXPECT_LT(compressed_bytes, raw_bytes);
}

}  // namespace
}  // namespace bestpeer::core
