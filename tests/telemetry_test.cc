// Tests for the live telemetry plane: the HTTP/1.0 request parser's
// hostile-input behavior, the TelemetryServer end to end on a real
// reactor, the stat-frame codec under truncation, and the fleet
// collector's merge/stale semantics.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "obs/json_reader.h"
#include "obs/stat_frame.h"
#include "obs/telemetry_server.h"
#include "util/metrics.h"

namespace bestpeer::obs {
namespace {

void Feed(HttpRequestParser* parser, std::string_view text) {
  parser->Feed(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

// ------------------------------------------------------------ HTTP parser

TEST(HttpParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  Feed(&parser, "GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n");
  HttpRequest req;
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "");
  EXPECT_EQ(req.version, "HTTP/1.0");
  ASSERT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(req.headers[0].first, "Host");
  EXPECT_EQ(req.headers[0].second, "localhost");
}

TEST(HttpParserTest, SplitsQueryString) {
  HttpRequestParser parser;
  Feed(&parser, "GET /flight?n=16&fmt=json HTTP/1.1\r\n\r\n");
  HttpRequest req;
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(req.path, "/flight");
  EXPECT_EQ(req.query, "n=16&fmt=json");
  EXPECT_EQ(QueryParam(req.query, "n"), "16");
  EXPECT_EQ(QueryParam(req.query, "fmt"), "json");
  EXPECT_EQ(QueryParam(req.query, "absent"), "");
}

TEST(HttpParserTest, IncrementalFeedByteAtATime) {
  HttpRequestParser parser;
  const std::string text = "GET /healthz HTTP/1.0\r\nA: b\r\n\r\n";
  HttpRequest req;
  for (size_t i = 0; i < text.size(); ++i) {
    auto r = parser.Next(&req);
    ASSERT_TRUE(r.ok()) << "at byte " << i;
    EXPECT_FALSE(r.value()) << "complete before all bytes fed, byte " << i;
    Feed(&parser, text.substr(i, 1));
  }
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(req.path, "/healthz");
}

TEST(HttpParserTest, ToleratesBareLfLineEndings) {
  HttpRequestParser parser;
  Feed(&parser, "GET / HTTP/1.0\nX: y\n\n");
  HttpRequest req;
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(req.path, "/");
  ASSERT_EQ(req.headers.size(), 1u);
  EXPECT_EQ(req.headers[0].second, "y");
}

TEST(HttpParserTest, MalformedRequestLinesPoison) {
  const char* bad[] = {
      "junk\r\n\r\n",                      // No spaces at all.
      "GET /x\r\n\r\n",                    // Missing version.
      "GET /x HTTP/1.0 extra\r\n\r\n",     // Four fields.
      "GET nopath HTTP/1.0\r\n\r\n",       // Target not starting with '/'.
      " GET /x HTTP/1.0\r\n\r\n",          // Leading space (empty method).
      "GET /x FTP/1.0\r\n\r\n",            // Bad version prefix.
      "G\x01T /x HTTP/1.0\r\n\r\n",        // Control byte in method.
  };
  for (const char* input : bad) {
    HttpRequestParser parser;
    Feed(&parser, input);
    HttpRequest req;
    auto r = parser.Next(&req);
    EXPECT_FALSE(r.ok()) << "accepted: " << input;
    EXPECT_TRUE(parser.poisoned()) << input;
    // Poison is sticky: feeding a now-valid request changes nothing.
    Feed(&parser, "GET / HTTP/1.0\r\n\r\n");
    EXPECT_FALSE(parser.Next(&req).ok()) << input;
  }
}

TEST(HttpParserTest, OversizedRequestLinePoisons) {
  HttpRequestParser parser({.max_request_line = 64});
  // No newline in sight and already over the limit: can never be valid.
  Feed(&parser, "GET /" + std::string(100, 'a'));
  HttpRequest req;
  EXPECT_FALSE(parser.Next(&req).ok());
  EXPECT_TRUE(parser.poisoned());
}

TEST(HttpParserTest, OversizedHeaderBlockPoisons) {
  HttpRequestParser parser({.max_header_bytes = 64});
  Feed(&parser, "GET / HTTP/1.0\r\nX: " + std::string(100, 'h') +
                    "\r\n\r\n");
  HttpRequest req;
  EXPECT_FALSE(parser.Next(&req).ok());
  EXPECT_TRUE(parser.poisoned());
}

TEST(HttpParserTest, TooManyHeadersPoison) {
  HttpRequestParser parser({.max_headers = 4});
  std::string text = "GET / HTTP/1.0\r\n";
  for (int i = 0; i < 6; ++i) {
    text += "H" + std::to_string(i) + ": v\r\n";
  }
  text += "\r\n";
  Feed(&parser, text);
  HttpRequest req;
  EXPECT_FALSE(parser.Next(&req).ok());
}

TEST(HttpParserTest, HeaderWithoutColonPoisons) {
  HttpRequestParser parser;
  Feed(&parser, "GET / HTTP/1.0\r\nnocolonhere\r\n\r\n");
  HttpRequest req;
  EXPECT_FALSE(parser.Next(&req).ok());
}

TEST(HttpParserTest, RequestBodiesRejected) {
  {
    HttpRequestParser parser;
    Feed(&parser, "GET / HTTP/1.0\r\nContent-Length: 5\r\n\r\nhello");
    HttpRequest req;
    EXPECT_FALSE(parser.Next(&req).ok());
  }
  {
    HttpRequestParser parser;
    Feed(&parser, "GET / HTTP/1.0\r\nTransfer-Encoding: chunked\r\n\r\n");
    HttpRequest req;
    EXPECT_FALSE(parser.Next(&req).ok());
  }
  {
    // Content-Length: 0 is a no-op body and stays acceptable.
    HttpRequestParser parser;
    Feed(&parser, "GET / HTTP/1.0\r\ncontent-length: 0\r\n\r\n");
    HttpRequest req;
    auto r = parser.Next(&req);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value());
  }
}

TEST(HttpParserTest, TruncatedRequestIsJustIncomplete) {
  HttpRequestParser parser;
  Feed(&parser, "GET /metrics HTTP/1.0\r\nHost: x");
  HttpRequest req;
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());  // Needs more bytes, not an error.
  EXPECT_FALSE(parser.poisoned());
}

TEST(HttpParserTest, PipelinedJunkAfterRequestIgnored) {
  HttpRequestParser parser;
  Feed(&parser,
       "GET /a HTTP/1.0\r\n\r\n\x00\xff garbage not http at all");
  HttpRequest req;
  auto r = parser.Next(&req);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r.value());
  EXPECT_EQ(req.path, "/a");
}

TEST(ParseHostPortTest, SplitsAndValidates) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:9464", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9464);
  EXPECT_FALSE(ParseHostPort("nocolon", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort(":123", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:70000", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("h:12x", &host, &port).ok());
}

// ------------------------------------------------------- live server e2e

class TelemetryServerTest : public ::testing::Test {
 protected:
  void SetUp() override { reactor_.Start(); }
  void TearDown() override { reactor_.Stop(); }
  net::Reactor reactor_;
};

TEST_F(TelemetryServerTest, ServesRegisteredHandler) {
  TelemetryServer server(&reactor_);
  server.AddHandler("/hello", [](const HttpRequest& req) {
    HttpResponse r;
    r.body = "hi " + QueryParam(req.query, "who") + "\n";
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto got = HttpGet("127.0.0.1", server.port(), "/hello?who=bp");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got.value().status, 200);
  EXPECT_EQ(got.value().body, "hi bp\n");
  EXPECT_EQ(server.requests_served(), 1u);

  auto missing = HttpGet("127.0.0.1", server.port(), "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().status, 404);
  server.Stop();
}

TEST_F(TelemetryServerTest, NonGetAnswered405) {
  TelemetryServer server(&reactor_);
  server.AddHandler("/x", [](const HttpRequest&) { return HttpResponse{}; });
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char req[] = "DELETE /x HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(fd, req, sizeof(req) - 1),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("405"), std::string::npos) << response;
  server.Stop();
}

TEST_F(TelemetryServerTest, MalformedRequestGets400ThenClose) {
  TelemetryServer server(&reactor_);
  ASSERT_TRUE(server.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char junk[] = "this is not http\r\n\r\n";
  ASSERT_EQ(::write(fd, junk, sizeof(junk) - 1),
            static_cast<ssize_t>(sizeof(junk) - 1));
  std::string response;
  char buf[1024];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);  // read() hit EOF: the server closed after the 400.
  EXPECT_NE(response.find("400"), std::string::npos) << response;
  server.Stop();
}

TEST_F(TelemetryServerTest, StopWithoutStartIsSafe) {
  TelemetryServer server(&reactor_);
  server.Stop();  // No Start(): nothing to do, no crash.
}

TEST_F(TelemetryServerTest, ServesPrometheusFromRegistry) {
  metrics::Registry registry;
  registry.GetCounter("demo.count")->Add(3);
  registry.GetHistogram("demo.lat", {}, {1, 10})->Observe(5);

  TelemetryServer server(&reactor_);
  server.AddHandler("/metrics", [&](const HttpRequest&) {
    HttpResponse r;
    // The registry belongs to the reactor thread in production; handlers
    // run there, so this snapshot is the supported pattern.
    r.body = registry.TakeSnapshot().ToPrometheus();
    return r;
  });
  ASSERT_TRUE(server.Start().ok());
  auto got = HttpGet("127.0.0.1", server.port(), "/metrics");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value().status, 200);
  EXPECT_TRUE(metrics::LintPrometheusText(got.value().body).ok());
  EXPECT_NE(got.value().body.find("demo_count 3"), std::string::npos);
  server.Stop();
}

// ------------------------------------------------------ HttpGet failures
//
// The client side of the plane (bptop, bpstitch, the loopback tests) has
// to survive a hostile or half-dead server: refused connections, garbage
// instead of a status line, truncated headers, unbounded bodies, and
// servers that accept and then go silent.

/// A raw TCP server that runs `conduct` once on the first accepted
/// connection and closes. No HTTP anywhere — the point is byte-level
/// control over what HttpGet reads.
class OneShotServer {
 public:
  explicit OneShotServer(std::function<void(int fd)> conduct) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 1) != 0) {
      return;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this, conduct = std::move(conduct)]() {
      int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      // Drain the client's request first and end with a graceful FIN —
      // closing with unread bytes in the receive buffer would RST the
      // connection and turn every scripted scenario into ECONNRESET.
      timeval tv{2, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      char buf[1024];
      std::string request;
      while (request.find("\r\n\r\n") == std::string::npos) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n <= 0) break;
        request.append(buf, static_cast<size_t>(n));
      }
      conduct(fd);
      ::shutdown(fd, SHUT_WR);
      while (::read(fd, buf, sizeof(buf)) > 0) {
      }
      ::close(fd);
    });
  }

  ~OneShotServer() {
    // Unblock accept() if nothing ever connected.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    if (thread_.joinable()) thread_.join();
  }

  uint16_t port() const { return port_; }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

void SendAll(int fd, std::string_view text) {
  size_t off = 0;
  while (off < text.size()) {
    // MSG_NOSIGNAL: the client hanging up early must fail the send, not
    // SIGPIPE the test binary.
    const ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

TEST(HttpGetTest, ConnectionRefused) {
  // Bind a port, learn its number, close it: nothing listens there now.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  const uint16_t dead_port = ntohs(addr.sin_port);
  ::close(fd);

  auto r = HttpGet("127.0.0.1", dead_port, "/metrics", 1000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("connect"), std::string::npos)
      << r.status().ToString();
}

TEST(HttpGetTest, BadHostRejectedBeforeConnecting) {
  auto r = HttpGet("not an ip", 80, "/");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("bad host"), std::string::npos);
}

TEST(HttpGetTest, GarbageStatusLineIsAnError) {
  OneShotServer server(
      [](int fd) { SendAll(fd, "SMTP-ish greeting, not http\r\n\r\nhi"); });
  ASSERT_NE(server.port(), 0);
  auto r = HttpGet("127.0.0.1", server.port(), "/", 2000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("malformed response status line"),
            std::string::npos)
      << r.status().ToString();
}

TEST(HttpGetTest, TruncatedHeadersAreAnError) {
  // A valid status line, then the connection dies mid-header: no
  // \r\n\r\n terminator ever arrives.
  OneShotServer server(
      [](int fd) { SendAll(fd, "HTTP/1.0 200 OK\r\nContent-Type: te"); });
  ASSERT_NE(server.port(), 0);
  auto r = HttpGet("127.0.0.1", server.port(), "/", 2000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("no header terminator"),
            std::string::npos)
      << r.status().ToString();
}

TEST(HttpGetTest, OversizedBodyAbortsInsteadOfBuffering) {
  // Stream >64 MiB: the client must give up with ResourceExhausted, not
  // buffer whatever a runaway server emits.
  OneShotServer server([](int fd) {
    SendAll(fd, "HTTP/1.0 200 OK\r\n\r\n");
    const std::string chunk(1u << 20, 'x');
    for (int i = 0; i < 66; ++i) SendAll(fd, chunk);
  });
  ASSERT_NE(server.port(), 0);
  auto r = HttpGet("127.0.0.1", server.port(), "/", 10000);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("response over 64 MiB"),
            std::string::npos)
      << r.status().ToString();
}

TEST(HttpGetTest, SilentServerHitsReadTimeout) {
  // Accepts, sends a partial response, then goes quiet without closing.
  std::atomic<bool> done{false};
  OneShotServer server([&done](int fd) {
    SendAll(fd, "HTTP/1.0 200 OK\r\n");
    while (!done.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  ASSERT_NE(server.port(), 0);
  auto r = HttpGet("127.0.0.1", server.port(), "/", 200);
  done.store(true);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().ToString().find("read timeout"), std::string::npos)
      << r.status().ToString();
}

TEST(HttpGetTest, SlowDribbleStillCompletes) {
  // Bytes arriving in tiny bursts with pauses well under the deadline:
  // each poll() round succeeds and the response assembles normally.
  OneShotServer server([](int fd) {
    const std::string response = "HTTP/1.0 200 OK\r\n\r\ndribble";
    for (char c : response) {
      SendAll(fd, std::string_view(&c, 1));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  ASSERT_NE(server.port(), 0);
  auto r = HttpGet("127.0.0.1", server.port(), "/", 2000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().status, 200);
  EXPECT_EQ(r.value().body, "dribble");
}

// ------------------------------------------------------- stat frame codec

metrics::Snapshot DemoSnapshot() {
  metrics::Registry registry;
  registry.GetCounter("queries", {{"node", "7"}})->Add(41);
  registry.GetGauge("depth")->Set(2.5);
  metrics::Histogram* h =
      registry.GetHistogram("rtt", {{"node", "7"}}, {1, 10, 100});
  h->Observe(0.5);
  h->Observe(55);
  h->Observe(1e6);
  return registry.TakeSnapshot();
}

TEST(StatFrameTest, RoundTripsSnapshot) {
  StatFrame frame;
  frame.node = 7;
  frame.sent_at_us = 123456789;
  frame.snapshot = DemoSnapshot();

  Bytes wire = EncodeStatFrame(frame);
  auto decoded = DecodeStatFrame(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().node, 7u);
  EXPECT_EQ(decoded.value().sent_at_us, 123456789);
  const auto& entries = decoded.value().snapshot.entries;
  ASSERT_EQ(entries.size(), frame.snapshot.entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].name, frame.snapshot.entries[i].name);
    EXPECT_EQ(entries[i].labels, frame.snapshot.entries[i].labels);
    EXPECT_EQ(entries[i].kind, frame.snapshot.entries[i].kind);
    EXPECT_EQ(entries[i].value, frame.snapshot.entries[i].value);
    EXPECT_EQ(entries[i].count, frame.snapshot.entries[i].count);
    EXPECT_EQ(entries[i].bounds, frame.snapshot.entries[i].bounds);
    EXPECT_EQ(entries[i].buckets, frame.snapshot.entries[i].buckets);
  }
}

TEST(StatFrameTest, TruncationAtEveryCutIsAnErrorNotUb) {
  StatFrame frame;
  frame.node = 3;
  frame.sent_at_us = 99;
  frame.snapshot = DemoSnapshot();
  Bytes wire = EncodeStatFrame(frame);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    auto r = DecodeStatFrame(prefix);
    EXPECT_FALSE(r.ok()) << "cut at " << cut << " of " << wire.size();
  }
}

TEST(StatFrameTest, RejectsBadMagicVersionAndTrailingBytes) {
  StatFrame frame;
  frame.snapshot = DemoSnapshot();
  Bytes wire = EncodeStatFrame(frame);

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(DecodeStatFrame(bad_magic).ok());

  Bytes bad_version = wire;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(DecodeStatFrame(bad_version).ok());

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeStatFrame(trailing).ok());
}

TEST(StatFrameTest, EmptySnapshotRoundTrips) {
  StatFrame frame;
  frame.node = 1;
  Bytes wire = EncodeStatFrame(frame);
  auto decoded = DecodeStatFrame(wire);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().snapshot.entries.empty());
}

// -------------------------------------------------------- fleet collector

StatFrame FrameFor(uint32_t node, int64_t sent_at, double count) {
  StatFrame frame;
  frame.node = node;
  frame.sent_at_us = sent_at;
  metrics::SnapshotEntry e;
  e.name = "queries";
  e.kind = metrics::InstrumentKind::kCounter;
  e.value = count;
  frame.snapshot.entries.push_back(e);
  return frame;
}

TEST(FleetCollectorTest, MergesLatestFramePerNode) {
  FleetCollector collector;
  collector.Absorb(FrameFor(1, 100, 5), 110);
  collector.Absorb(FrameFor(2, 100, 7), 111);
  collector.Absorb(FrameFor(1, 200, 6), 210);  // Replaces node 1.
  EXPECT_EQ(collector.node_count(), 2u);
  EXPECT_EQ(collector.frames_received(), 3u);
  EXPECT_EQ(collector.stale_dropped(), 0u);
  metrics::Snapshot merged = collector.Rollup();
  EXPECT_DOUBLE_EQ(merged.Value("queries"), 13.0);  // 6 + 7, not 5.
}

TEST(FleetCollectorTest, DropsStaleFrames) {
  FleetCollector collector;
  collector.Absorb(FrameFor(1, 200, 6), 210);
  collector.Absorb(FrameFor(1, 100, 5), 220);  // Older sender clock.
  EXPECT_EQ(collector.stale_dropped(), 1u);
  EXPECT_DOUBLE_EQ(collector.Rollup().Value("queries"), 6.0);
}

TEST(FleetCollectorTest, ToJsonIsValidJson) {
  FleetCollector collector;
  collector.Absorb(FrameFor(1, 100, 5), 150);
  collector.Absorb(FrameFor(2, 120, 9), 160);
  auto parsed = ParseJson(collector.ToJson(1000));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& fleet = parsed.value();
  ASSERT_NE(fleet.Find("nodes"), nullptr);
  EXPECT_DOUBLE_EQ(fleet.Find("nodes")->AsNumber(), 2);
  const JsonValue* per_node = fleet.Find("per_node");
  ASSERT_NE(per_node, nullptr);
  const JsonValue* one = per_node->Find("1");
  ASSERT_NE(one, nullptr);
  EXPECT_DOUBLE_EQ(one->Find("age_us")->AsNumber(), 850);
  const JsonValue* merged = fleet.Find("merged");
  ASSERT_NE(merged, nullptr);
  EXPECT_DOUBLE_EQ(merged->Find("queries")->AsNumber(), 14);
}

TEST(FleetCollectorTest, EmptyCollectorSerializes) {
  FleetCollector collector;
  auto parsed = ParseJson(collector.ToJson(0));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_DOUBLE_EQ(parsed.value().Find("nodes")->AsNumber(), 0);
}

}  // namespace
}  // namespace bestpeer::obs
