#include <gtest/gtest.h>

#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::workload {
namespace {

/// Integration tests asserting the *shape* of the paper's evaluation
/// (Section 4): who wins on which topology, and why. These are the
/// invariants the benchmark harness then reports quantitatively.

ExperimentOptions Base(Topology topology, Scheme scheme) {
  ExperimentOptions o;
  o.topology = std::move(topology);
  o.scheme = scheme;
  o.objects_per_node = 200;  // Scaled-down store, same cost model.
  o.matches_per_node = 5;
  o.queries = 4;
  o.max_direct_peers = 8;
  return o;
}

double MeanMs(const ExperimentOptions& o) {
  return RunExperiment(o).value().MeanCompletionMs();
}

// Fig. 5(a): on Star, SCS is by far the worst; MCS is slightly better
// than BP (no code-shipping overhead); BPS == BPR.
TEST(Figure5Shape, StarScsWorstMcsBest) {
  Topology star = MakeStar(16);
  double scs = MeanMs(Base(star, Scheme::kScs));
  double mcs = MeanMs(Base(star, Scheme::kMcs));
  double bps = MeanMs(Base(star, Scheme::kBps));
  double bpr = MeanMs(Base(star, Scheme::kBpr));
  EXPECT_GT(scs, 2 * mcs) << "SCS must degrade badly on a star";
  EXPECT_LT(mcs, bps) << "plain queries beat code shipping on a star";
  EXPECT_NEAR(bps, bpr, bps * 0.25)
      << "reconfiguration cannot help on a star";
}

// Fig. 5(b): on a deep tree, CS degenerates (path-relayed answers) while
// BP returns answers out-of-network; BPR beats BPS.
TEST(Figure5Shape, DeepTreeBpBeatsCs) {
  Topology tree = MakeTree(31, 2);  // 4 levels deep.
  double cs = MeanMs(Base(tree, Scheme::kMcs));
  double bps = MeanMs(Base(tree, Scheme::kBps));
  double bpr = MeanMs(Base(tree, Scheme::kBpr));
  EXPECT_GT(cs, bps) << "CS must degrade with depth";
  EXPECT_LT(bpr, bps) << "reconfiguration must pay off on a tree";
}

// Fig. 5(b) level 1: a flat tree is a star, where CS wins.
TEST(Figure5Shape, ShallowTreeCsWins) {
  Topology tree = MakeTree(9, 8);  // Root + 8 children = 1 level.
  double cs = MeanMs(Base(tree, Scheme::kMcs));
  double bps = MeanMs(Base(tree, Scheme::kBps));
  EXPECT_LT(cs, bps);
}

// Fig. 5(c): on a line, BPR is the best overall.
TEST(Figure5Shape, LineBprBest) {
  Topology line = MakeLine(16);
  double cs = MeanMs(Base(line, Scheme::kMcs));
  double bps = MeanMs(Base(line, Scheme::kBps));
  double bpr = MeanMs(Base(line, Scheme::kBpr));
  EXPECT_LT(bpr, bps);
  EXPECT_LT(bpr, cs);
}

// Fig. 6/7: CS returns its first answers sooner (no code shipping), but
// BP finishes collecting all answers earlier on a deep topology.
TEST(Figure6And7Shape, CsFastStartBpFastFinish) {
  Topology tree = MakeTree(31, 2);
  auto cs = RunExperiment(Base(tree, Scheme::kMcs)).value();
  auto bpr = RunExperiment(Base(tree, Scheme::kBpr)).value();
  ASSERT_FALSE(cs.queries[0].responses.empty());
  ASSERT_FALSE(bpr.queries[0].responses.empty());
  SimTime cs_first = cs.queries[0].responses.front().time;
  SimTime bpr_first = bpr.queries[0].responses.front().time;
  EXPECT_LT(cs_first, bpr_first)
      << "CS first answers arrive before agent-based answers";
  EXPECT_LT(bpr.queries.back().completion, cs.queries.back().completion)
      << "BP must finish collecting all answers first";
}

// Fig. 8(a): BP's first run is its slowest; subsequent runs are much
// faster thanks to reconfiguration; Gnutella is flat across runs and
// slower than reconfigured BP.
TEST(Figure8Shape, BpLearnsGnutellaDoesNot) {
  Rng rng(7);
  Topology random = MakeRandom(24, 8, rng);
  auto matches = FarHotPlacement(random, 3, 10);

  ExperimentOptions bp = Base(random, Scheme::kBpr);
  bp.matches_per_node_vec = matches;
  bp.answer_mode = core::AnswerMode::kIndicate;  // Names only, like Fig 8.
  bp.auto_fetch = false;
  auto bp_result = RunExperiment(bp).value();

  ExperimentOptions gnut = Base(random, Scheme::kGnutella);
  gnut.matches_per_node_vec = matches;
  gnut.files_per_node = 200;
  auto gnut_result = RunExperiment(gnut).value();

  // Every scheme found all the answers.
  EXPECT_EQ(bp_result.queries[0].total_answers, 30u);
  EXPECT_EQ(gnut_result.queries[0].total_answers, 30u);

  // BP: first run slowest, later runs much faster.
  EXPECT_GT(bp_result.queries[0].completion,
            bp_result.queries[1].completion);
  EXPECT_LT(bp_result.queries[3].completion,
            bp_result.queries[0].completion);

  // Gnutella: flat across runs.
  EXPECT_EQ(gnut_result.queries[0].completion,
            gnut_result.queries[3].completion);

  // Reconfigured BP beats Gnutella.
  EXPECT_LT(bp_result.queries[3].completion,
            gnut_result.queries[3].completion);
}

// BPR must never lose answers relative to BPS (recall preserved).
TEST(ReconfigurationSafety, AnswersPreservedAcrossRuns) {
  Topology tree = MakeTree(15, 2);
  auto bpr = RunExperiment(Base(tree, Scheme::kBpr)).value();
  size_t expected = 14u * 5u;
  for (const auto& q : bpr.queries) {
    EXPECT_EQ(q.total_answers, expected)
        << "reconfiguration lost answers";
  }
}

// MinHops is a valid strategy too: answers preserved, completion helped.
TEST(ReconfigurationSafety, MinHopsWorks) {
  ExperimentOptions o = Base(MakeLine(12), Scheme::kBpr);
  o.strategy = "minhops";
  auto result = RunExperiment(o).value();
  for (const auto& q : result.queries) {
    EXPECT_EQ(q.total_answers, 11u * 5u);
  }
  EXPECT_LE(result.queries.back().completion,
            result.queries.front().completion);
}

}  // namespace
}  // namespace bestpeer::workload
