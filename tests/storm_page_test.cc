#include <gtest/gtest.h>

#include <cstring>

#include "storm/page.h"
#include "util/rng.h"

namespace bestpeer::storm {
namespace {

Bytes Rec(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::string Str(const std::pair<const uint8_t*, uint16_t>& view) {
  return std::string(reinterpret_cast<const char*>(view.first), view.second);
}

TEST(PageTest, InitFormatsEmptyPage) {
  Page page;
  EXPECT_FALSE(page.IsFormatted());
  page.Init(7);
  EXPECT_TRUE(page.IsFormatted());
  EXPECT_EQ(page.page_id(), 7u);
  EXPECT_EQ(page.slot_count(), 0u);
  EXPECT_EQ(page.FreeSpace(),
            Page::kPageSize - Page::kHeaderSize - Page::kSlotEntrySize);
}

TEST(PageTest, InsertAndRead) {
  Page page;
  page.Init(1);
  Bytes rec = Rec("hello");
  auto slot = page.Insert(rec.data(), rec.size());
  ASSERT_TRUE(slot.ok());
  auto view = page.Read(slot.value());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(Str(view.value()), "hello");
}

TEST(PageTest, MultipleRecordsKeepDistinctSlots) {
  Page page;
  page.Init(1);
  uint16_t s1 = page.Insert(Rec("one").data(), 3).value();
  uint16_t s2 = page.Insert(Rec("two").data(), 3).value();
  uint16_t s3 = page.Insert(Rec("three").data(), 5).value();
  EXPECT_NE(s1, s2);
  EXPECT_NE(s2, s3);
  EXPECT_EQ(Str(page.Read(s1).value()), "one");
  EXPECT_EQ(Str(page.Read(s2).value()), "two");
  EXPECT_EQ(Str(page.Read(s3).value()), "three");
  EXPECT_EQ(page.slot_count(), 3u);
}

TEST(PageTest, DeleteTombstonesSlot) {
  Page page;
  page.Init(1);
  uint16_t s = page.Insert(Rec("x").data(), 1).value();
  EXPECT_TRUE(page.SlotLive(s));
  ASSERT_TRUE(page.Delete(s).ok());
  EXPECT_FALSE(page.SlotLive(s));
  EXPECT_TRUE(page.Read(s).status().IsNotFound());
  EXPECT_TRUE(page.Delete(s).IsNotFound());
}

TEST(PageTest, DeleteOutOfRangeFails) {
  Page page;
  page.Init(1);
  EXPECT_TRUE(page.Delete(0).IsOutOfRange());
  EXPECT_TRUE(page.Read(3).status().IsOutOfRange());
}

TEST(PageTest, TombstoneSlotIsReused) {
  Page page;
  page.Init(1);
  uint16_t s1 = page.Insert(Rec("aaa").data(), 3).value();
  page.Insert(Rec("bbb").data(), 3).value();
  ASSERT_TRUE(page.Delete(s1).ok());
  uint16_t s3 = page.Insert(Rec("ccc").data(), 3).value();
  EXPECT_EQ(s3, s1);  // Reuses the tombstone slot.
  EXPECT_EQ(page.slot_count(), 2u);
}

TEST(PageTest, FullPageRejectsInsert) {
  Page page;
  page.Init(1);
  Bytes big(Page::kMaxRecordSize, 0xAA);
  ASSERT_TRUE(page.Insert(big.data(), big.size()).ok());
  Bytes tiny(1, 0xBB);
  auto r = page.Insert(tiny.data(), 1);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(PageTest, CompactReclaimsDeletedSpace) {
  Page page;
  page.Init(1);
  Bytes chunk(1000, 0xCC);
  uint16_t s1 = page.Insert(chunk.data(), chunk.size()).value();
  uint16_t s2 = page.Insert(chunk.data(), chunk.size()).value();
  uint16_t s3 = page.Insert(chunk.data(), chunk.size()).value();
  ASSERT_TRUE(page.Delete(s2).ok());
  EXPECT_EQ(page.FragmentedSpace(), 1000u);
  size_t before = page.FreeSpace();
  page.Compact();
  EXPECT_EQ(page.FragmentedSpace(), 0u);
  EXPECT_GE(page.FreeSpace(), before + 1000);
  // Surviving records still readable at the same slots.
  EXPECT_EQ(page.Read(s1).value().second, 1000);
  EXPECT_EQ(page.Read(s3).value().second, 1000);
  EXPECT_FALSE(page.SlotLive(s2));
}

TEST(PageTest, ChecksumDetectsCorruption) {
  Page page;
  page.Init(1);
  Bytes rec = Rec("checksummed");
  page.Insert(rec.data(), rec.size()).value();
  page.UpdateChecksum();
  EXPECT_TRUE(page.VerifyChecksum());
  page.raw()[100] ^= 0xFF;
  EXPECT_FALSE(page.VerifyChecksum());
}

TEST(PageTest, FreeSpaceAccountsForSlotEntry) {
  Page page;
  page.Init(1);
  size_t before = page.FreeSpace();
  Bytes rec(100, 0x01);
  page.Insert(rec.data(), rec.size()).value();
  size_t after = page.FreeSpace();
  // 100 bytes of data + (already counted) slot entry for the next insert.
  EXPECT_EQ(before - after, 100u + Page::kSlotEntrySize);
}

// Property: fill a page with random records, delete a random subset,
// compact, verify all survivors byte-for-byte.
class PagePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PagePropertyTest, RandomFillDeleteCompact) {
  bestpeer::Rng rng(GetParam());
  Page page;
  page.Init(1);
  struct Live {
    uint16_t slot;
    Bytes data;
  };
  std::vector<Live> live;
  // Fill until full.
  for (;;) {
    size_t len = rng.NextBounded(300) + 1;
    Bytes rec(len);
    for (auto& b : rec) b = static_cast<uint8_t>(rng.NextBounded(256));
    auto slot = page.Insert(rec.data(), rec.size());
    if (!slot.ok()) break;
    live.push_back({slot.value(), rec});
  }
  ASSERT_GT(live.size(), 5u);
  // Delete ~half.
  std::vector<Live> survivors;
  for (auto& item : live) {
    if (rng.NextBool()) {
      ASSERT_TRUE(page.Delete(item.slot).ok());
    } else {
      survivors.push_back(item);
    }
  }
  page.Compact();
  for (const auto& item : survivors) {
    auto view = page.Read(item.slot);
    ASSERT_TRUE(view.ok());
    ASSERT_EQ(view->second, item.data.size());
    EXPECT_EQ(0, std::memcmp(view->first, item.data.data(), view->second));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PagePropertyTest,
                         ::testing::Values(1, 7, 42, 1234, 99999));

}  // namespace
}  // namespace bestpeer::storm
