// End-to-end parity check between the two transport backends: the same
// LIGLO + BestPeer configuration is run once over real loopback TCP
// (net::TcpNet) and once in the simulator (net::SimTransportFleet), and
// both must achieve identical, full recall on the keyword workload.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/node.h"
#include "core/search_agent.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "workload/corpus.h"

namespace bestpeer {
namespace {

constexpr size_t kNodes = 8;
constexpr size_t kObjectsPerNode = 16;
constexpr size_t kMatchesPerNode = 2;
constexpr size_t kQueries = 2;
constexpr uint64_t kSeed = 7;
constexpr size_t kExpectedAnswers = (kNodes - 1) * kMatchesPerNode;

core::BestPeerConfig MakeConfig() {
  core::BestPeerConfig config;
  config.max_direct_peers = 6;
  config.strategy = "none";
  config.default_ttl = kNodes;
  return config;
}

liglo::LigloServerOptions MakeServerOptions() {
  liglo::LigloServerOptions options;
  options.initial_peer_count = 4;
  options.sample_seed = kSeed ^ 0x5EED;
  return options;
}

/// Shares the experiment corpus into node `i` (matches only off-base).
void Populate(core::BestPeerNode* node, size_t i,
              workload::CorpusGenerator& corpus) {
  ASSERT_TRUE(node->InitStorage({}).ok());
  for (size_t o = 0; o < kObjectsPerNode; ++o) {
    bool match = i != 0 && o < kMatchesPerNode;
    ASSERT_TRUE(node->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                                  corpus.MakeObject(match))
                    .ok());
  }
}

/// Answer counts per query for the simulated run of the configuration.
std::vector<size_t> RunSimulated() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, {});
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  net::SimTransport* server_transport = fleet.AddNode();
  net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServer liglo_server(server_transport, &server_dispatcher,
                                  &infra.ip_directory, MakeServerOptions());

  workload::CorpusGenerator corpus({512, 300, 0.8}, kSeed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    auto node =
        core::BestPeerNode::Create(fleet.AddNode(), &infra, MakeConfig());
    Populate(node.value().get(), i, corpus);
    infra.code_cache.Load(node.value()->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }
  for (auto& node : nodes) {
    liglo::IpAddress ip = infra.ip_directory.AssignFresh(node->node());
    node->JoinNetwork(server_transport->local(), ip, nullptr);
    simulator.RunUntilIdle();
  }

  std::vector<size_t> answers;
  for (size_t q = 0; q < kQueries; ++q) {
    uint64_t query_id =
        nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle).value();
    simulator.RunUntilIdle();
    const core::QuerySession* session = nodes[0]->FindSession(query_id);
    answers.push_back(session == nullptr ? 0 : session->total_answers());
  }
  return answers;
}

/// The same configuration over real loopback TCP sockets.
std::vector<size_t> RunOverTcp() {
  net::TcpNet tcpnet;
  core::SharedInfra infra;

  net::TcpTransport* server_transport = tcpnet.AddNode().value();
  net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServer liglo_server(server_transport, &server_dispatcher,
                                  &infra.ip_directory, MakeServerOptions());

  workload::CorpusGenerator corpus({512, 300, 0.8}, kSeed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    auto node = core::BestPeerNode::Create(tcpnet.AddNode().value(), &infra,
                                           MakeConfig());
    Populate(node.value().get(), i, corpus);
    infra.code_cache.Load(node.value()->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }

  tcpnet.Start();
  auto wait_until = [&](const std::function<bool()>& done_on_reactor) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  for (auto& node : nodes) {
    bool joined = false;
    tcpnet.Run([&]() {
      liglo::IpAddress ip = infra.ip_directory.AssignFresh(node->node());
      node->JoinNetwork(server_transport->local(), ip,
                        [&joined](auto) { joined = true; });
    });
    EXPECT_TRUE(wait_until([&]() { return joined; }));
  }

  std::vector<size_t> answers;
  for (size_t q = 0; q < kQueries; ++q) {
    uint64_t query_id = 0;
    tcpnet.Run([&]() {
      query_id =
          nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle).value();
    });
    wait_until([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      return s != nullptr && s->total_answers() >= kExpectedAnswers;
    });
    size_t got = 0;
    tcpnet.Run([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      if (s != nullptr) got = s->total_answers();
    });
    answers.push_back(got);
  }
  tcpnet.Stop();
  return answers;
}

TEST(NetLoopbackTest, TcpKeywordWorkloadMatchesSimulatedRecall) {
  std::vector<size_t> sim_answers = RunSimulated();
  ASSERT_EQ(sim_answers.size(), kQueries);
  for (size_t a : sim_answers) EXPECT_EQ(a, kExpectedAnswers);

  std::vector<size_t> tcp_answers = RunOverTcp();
  EXPECT_EQ(tcp_answers, sim_answers);
}

}  // namespace
}  // namespace bestpeer
