#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "storm/storm.h"
#include "storm/wal.h"

namespace bestpeer::storm {
namespace {

class TempPath {
 public:
  explicit TempPath(const std::string& tag)
      : path_("/tmp/bp_wal_test_" + tag + "_" + std::to_string(::getpid())) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  const std::string& str() const { return path_; }

 private:
  std::string path_;
};

Bytes Content(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------- raw WAL

TEST(WalTest, AppendAndReplay) {
  TempPath wal_path("basic");
  auto wal = WriteAheadLog::Open(wal_path.str()).value();
  ASSERT_TRUE(wal->AppendPut(1, Content("one")).ok());
  ASSERT_TRUE(wal->AppendPut(2, Content("two")).ok());
  ASSERT_TRUE(wal->AppendDelete(1).ok());
  EXPECT_EQ(wal->records_appended(), 3u);

  std::vector<WriteAheadLog::Record> seen;
  auto visited = wal->Replay([&](const WriteAheadLog::Record& r) {
    seen.push_back(r);
    return Status::OK();
  });
  ASSERT_TRUE(visited.ok());
  EXPECT_EQ(visited.value(), 3u);
  EXPECT_EQ(seen[0].type, WriteAheadLog::RecordType::kPut);
  EXPECT_EQ(seen[0].object_id, 1u);
  EXPECT_EQ(seen[0].content, Content("one"));
  EXPECT_EQ(seen[2].type, WriteAheadLog::RecordType::kDelete);
  EXPECT_EQ(seen[2].object_id, 1u);
}

TEST(WalTest, ReplaySurvivesReopen) {
  TempPath wal_path("reopen");
  {
    auto wal = WriteAheadLog::Open(wal_path.str()).value();
    ASSERT_TRUE(wal->AppendPut(7, Content("persisted")).ok());
  }
  auto wal = WriteAheadLog::Open(wal_path.str()).value();
  size_t count = 0;
  ASSERT_TRUE(wal->Replay([&](const WriteAheadLog::Record&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 1u);
}

TEST(WalTest, TornTailIsIgnored) {
  TempPath wal_path("torn");
  {
    auto wal = WriteAheadLog::Open(wal_path.str()).value();
    ASSERT_TRUE(wal->AppendPut(1, Content("intact")).ok());
    ASSERT_TRUE(wal->AppendPut(2, Content("will be torn")).ok());
  }
  // Chop a few bytes off the end, simulating a crash mid-write.
  {
    std::FILE* f = std::fopen(wal_path.str().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    ASSERT_TRUE(::truncate(wal_path.str().c_str(), size - 5) == 0);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(wal_path.str()).value();
  std::vector<ObjectId> ids;
  ASSERT_TRUE(wal->Replay([&](const WriteAheadLog::Record& r) {
                   ids.push_back(r.object_id);
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(ids, (std::vector<ObjectId>{1}))
      << "only the intact prefix replays";
}

TEST(WalTest, CorruptMiddleStopsReplay) {
  TempPath wal_path("corrupt");
  {
    auto wal = WriteAheadLog::Open(wal_path.str()).value();
    ASSERT_TRUE(wal->AppendPut(1, Content("aaaa")).ok());
    ASSERT_TRUE(wal->AppendPut(2, Content("bbbb")).ok());
  }
  {
    std::FILE* f = std::fopen(wal_path.str().c_str(), "r+b");
    std::fseek(f, 6, SEEK_SET);  // Inside the first record body.
    std::fputc(0xFF, f);
    std::fclose(f);
  }
  auto wal = WriteAheadLog::Open(wal_path.str()).value();
  size_t count = 0;
  ASSERT_TRUE(wal->Replay([&](const WriteAheadLog::Record&) {
                   ++count;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(count, 0u) << "checksum mismatch stops replay";
}

TEST(WalTest, CheckpointTruncates) {
  TempPath wal_path("checkpoint");
  auto wal = WriteAheadLog::Open(wal_path.str()).value();
  ASSERT_TRUE(wal->AppendPut(1, Content("x")).ok());
  EXPECT_GT(wal->SizeBytes().value(), 0u);
  ASSERT_TRUE(wal->Checkpoint().ok());
  EXPECT_EQ(wal->SizeBytes().value(), 0u);
}

// ------------------------------------------------------------- Storm + WAL

TEST(StormWalTest, CrashRecoveryOverMemoryPager) {
  TempPath wal_path("storm_mem");
  StormOptions options;
  options.wal_path = wal_path.str();
  {
    // "Crash": the in-memory pager loses everything at destruction; no
    // Flush is ever called.
    auto storm = Storm::Open(options).value();
    ASSERT_TRUE(storm->Put(1, Content("needle survives")).ok());
    ASSERT_TRUE(storm->Put(2, Content("also survives")).ok());
    ASSERT_TRUE(storm->Put(3, Content("deleted later")).ok());
    ASSERT_TRUE(storm->Delete(3).ok());
  }
  auto storm = Storm::Open(options).value();
  EXPECT_EQ(storm->object_count(), 2u);
  EXPECT_EQ(storm->Get(1).value(), Content("needle survives"));
  EXPECT_FALSE(storm->Contains(3));
  // The rebuilt index works too.
  EXPECT_EQ(storm->IndexSearch("needle").value(),
            (std::vector<ObjectId>{1}));
}

TEST(StormWalTest, CheckpointThenMoreWrites) {
  TempPath wal_path("storm_ckpt");
  TempPath db_path("storm_ckpt_db");
  StormOptions options;
  options.path = db_path.str();
  options.wal_path = wal_path.str();
  {
    auto storm = Storm::Open(options).value();
    ASSERT_TRUE(storm->Put(1, Content("before checkpoint")).ok());
    ASSERT_TRUE(storm->Checkpoint().ok());
    EXPECT_EQ(storm->wal()->SizeBytes().value(), 0u);
    ASSERT_TRUE(storm->Put(2, Content("after checkpoint")).ok());
    // Crash: no flush after the second put.
  }
  auto storm = Storm::Open(options).value();
  EXPECT_EQ(storm->object_count(), 2u);
  EXPECT_EQ(storm->Get(1).value(), Content("before checkpoint"));
  EXPECT_EQ(storm->Get(2).value(), Content("after checkpoint"));
}

TEST(StormWalTest, ReplayIsIdempotentWithFlushedBase) {
  TempPath wal_path("storm_idem");
  TempPath db_path("storm_idem_db");
  StormOptions options;
  options.path = db_path.str();
  options.wal_path = wal_path.str();
  {
    auto storm = Storm::Open(options).value();
    ASSERT_TRUE(storm->Put(1, Content("flushed AND logged")).ok());
    ASSERT_TRUE(storm->Flush().ok());  // Base now contains object 1 too.
  }
  // Reopen: the WAL still holds the Put; replay must not double-apply.
  auto storm = Storm::Open(options).value();
  EXPECT_EQ(storm->object_count(), 1u);
  EXPECT_EQ(storm->Get(1).value(), Content("flushed AND logged"));
}

TEST(StormWalTest, WalDisabledByDefault) {
  auto storm = Storm::Open({}).value();
  EXPECT_EQ(storm->wal(), nullptr);
}

}  // namespace
}  // namespace bestpeer::storm
