#include <gtest/gtest.h>

#include <set>

#include "util/bytes.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/strings.h"

namespace bestpeer {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoryCodesMatch) {
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("").IsOutOfRange());
  EXPECT_TRUE(Status::ResourceExhausted("").IsResourceExhausted());
  EXPECT_TRUE(Status::FailedPrecondition("").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("").IsUnavailable());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_TRUE(Status::IoError("").IsIoError());
  EXPECT_TRUE(Status::Unimplemented("").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("").IsInternal());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    BP_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsCorruption());
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnBindsValue) {
  auto get = []() -> Result<int> { return 7; };
  auto use = [&]() -> Result<int> {
    BP_ASSIGN_OR_RETURN(int v, get());
    return v + 1;
  };
  auto r = use();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 8);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto get = []() -> Result<int> { return Status::IoError("disk"); };
  auto use = [&]() -> Result<int> {
    BP_ASSIGN_OR_RETURN(int v, get());
    return v;
  };
  EXPECT_TRUE(use().status().IsIoError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Bytes

TEST(BytesTest, FixedWidthRoundTrip) {
  BinaryWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFULL);
  w.WriteI64(-42);

  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,    1,        127,        128,
                            255,  16383,    16384,      (1ULL << 32),
                            ~0ULL};
  for (uint64_t v : cases) {
    BinaryWriter w;
    w.WriteVarint(v);
    BinaryReader r(w.buffer());
    auto back = r.ReadVarint();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v) << v;
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BytesTest, StringAndBlobRoundTrip) {
  BinaryWriter w;
  w.WriteString("hello world");
  w.WriteString("");
  w.WriteBytes(Bytes{1, 2, 3});
  BinaryReader r(w.buffer());
  EXPECT_EQ(r.ReadString().value(), "hello world");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadBytes().value(), (Bytes{1, 2, 3}));
}

TEST(BytesTest, TruncatedReadsFailGracefully) {
  BinaryWriter w;
  w.WriteU32(7);
  Bytes buf = w.Take();
  buf.resize(2);
  BinaryReader r(buf);
  auto v = r.ReadU32();
  EXPECT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsOutOfRange());
}

TEST(BytesTest, TruncatedStringFails) {
  BinaryWriter w;
  w.WriteString("a long enough string");
  Bytes buf = w.Take();
  buf.resize(buf.size() - 5);
  BinaryReader r(buf);
  EXPECT_FALSE(r.ReadString().ok());
}

TEST(BytesTest, MalformedVarintFails) {
  Bytes buf(11, 0xFF);  // 11 continuation bytes: varint too long.
  BinaryReader r(buf);
  EXPECT_TRUE(r.ReadVarint().status().IsCorruption());
}

// Property: any sequence of writes reads back identically.
class BytesPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesPropertyTest, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<uint64_t> varints;
    std::vector<std::string> strings;
    BinaryWriter w;
    int ops = static_cast<int>(rng.NextBounded(20)) + 1;
    std::vector<int> kinds;
    for (int i = 0; i < ops; ++i) {
      if (rng.NextBool()) {
        uint64_t v = rng.NextU64() >> rng.NextBounded(64);
        varints.push_back(v);
        w.WriteVarint(v);
        kinds.push_back(0);
      } else {
        std::string s;
        size_t len = rng.NextBounded(64);
        for (size_t j = 0; j < len; ++j) {
          s += static_cast<char>('a' + rng.NextBounded(26));
        }
        strings.push_back(s);
        w.WriteString(s);
        kinds.push_back(1);
      }
    }
    BinaryReader r(w.buffer());
    size_t vi = 0, si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        ASSERT_EQ(r.ReadVarint().value(), varints[vi++]);
      } else {
        ASSERT_EQ(r.ReadString().value(), strings[si++]);
      }
    }
    EXPECT_TRUE(r.AtEnd());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(10), 10u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RngTest, ExponentialIsPositiveWithRoughMean) {
  Rng rng(21);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextExponential(10.0);
    EXPECT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(31);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  EXPECT_GT(counts[0], counts[50] * 2);
  EXPECT_GT(counts[0], 0);
}

TEST(ZipfTest, ZeroSkewIsRoughlyUniform) {
  Rng rng(37);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  for (int c : counts) EXPECT_NEAR(c, 2000, 350);
}

// ---------------------------------------------------------------- Hash

TEST(HashTest, Fnv1aKnownProperties) {
  EXPECT_EQ(Fnv1a64("", 0), 0xCBF29CE484222325ULL);
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
}

TEST(HashTest, Mix64Avalanches) {
  EXPECT_NE(Mix64(1), Mix64(2));
  EXPECT_EQ(Mix64(0), 0u);  // fmix64 fixes 0; callers must not rely on it.
  EXPECT_NE(Mix64(1), 1u);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, ","), "a,b,,c");
}

TEST(StringsTest, Tokenize) {
  auto toks = TokenizeKeywords("Hello, World! 42-foo");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[0], "hello");
  EXPECT_EQ(toks[1], "world");
  EXPECT_EQ(toks[2], "42");
  EXPECT_EQ(toks[3], "foo");
}

TEST(StringsTest, ContainsKeywordWholeTokenOnly) {
  EXPECT_TRUE(ContainsKeyword("the needle is here", "needle"));
  EXPECT_TRUE(ContainsKeyword("NEEDLE!", "needle"));
  EXPECT_TRUE(ContainsKeyword("a,needle,b", "Needle"));
  EXPECT_FALSE(ContainsKeyword("needles are different", "needle"));
  EXPECT_FALSE(ContainsKeyword("pineedle", "needle"));
  EXPECT_FALSE(ContainsKeyword("", "needle"));
  EXPECT_FALSE(ContainsKeyword("anything", ""));
}

TEST(StringsTest, ContainsKeywordAtBoundaries) {
  EXPECT_TRUE(ContainsKeyword("needle", "needle"));
  EXPECT_TRUE(ContainsKeyword("needle at start", "needle"));
  EXPECT_TRUE(ContainsKeyword("ends with needle", "needle"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, SummaryBasics) {
  Summary s;
  s.Add(1);
  s.Add(2);
  s.Add(3);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 2.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 3.0);
}

TEST(StatsTest, SummaryMerge) {
  Summary a, b;
  a.Add(1);
  b.Add(3);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(StatsTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
}

TEST(StatsTest, PercentileSingleSample) {
  Summary s;
  s.Add(7);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 7.0);
}

TEST(StatsTest, PercentileInterpolatesBetweenRanks) {
  Summary s;
  s.Add(40);
  s.Add(10);
  s.Add(30);
  s.Add(20);
  EXPECT_DOUBLE_EQ(s.Percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(25), 17.5);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 25.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 40.0);
  // Out-of-range ranks clamp to the extremes.
  EXPECT_DOUBLE_EQ(s.Percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.Percentile(200), 40.0);
}

TEST(StatsTest, PercentileEmptyIsZeroAtAllRanks) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100), 0.0);
}

TEST(StatsTest, MergeDisjointSummaries) {
  Summary lo, hi;
  lo.Add(1);
  lo.Add(2);
  lo.Add(3);
  hi.Add(101);
  hi.Add(102);
  hi.Add(103);
  lo.Merge(hi);
  EXPECT_EQ(lo.count(), 6u);
  EXPECT_DOUBLE_EQ(lo.min(), 1.0);
  EXPECT_DOUBLE_EQ(lo.max(), 103.0);
  EXPECT_DOUBLE_EQ(lo.mean(), 52.0);
  EXPECT_DOUBLE_EQ(lo.Percentile(0), 1.0);
  // Median falls in the gap: halfway between 3 and 101.
  EXPECT_DOUBLE_EQ(lo.Percentile(50), 52.0);
  EXPECT_DOUBLE_EQ(lo.Percentile(100), 103.0);
}

TEST(StatsTest, HistogramBucketsAndOverflow) {
  Histogram h(10.0, 5);  // Buckets of width 2 + overflow.
  h.Add(0.5);
  h.Add(3.0);
  h.Add(9.9);
  h.Add(100.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.bucket(5), 1u);  // Overflow bucket.
  EXPECT_EQ(h.CumulativeAt(1), 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, ParseLogLevelAcceptsKnownNamesAnyCase) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownAndLeavesOutput) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("warned", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(LoggingTest, FilteredMessagesDoNotEvaluateOperands) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto touch = [&evaluations]() {
    ++evaluations;
    return "side effect";
  };
  BP_LOG(Debug) << touch();
  BP_LOG(Info) << touch();
  BP_LOG(Warn) << touch();
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(saved);
}

TEST(LoggingTest, SetLogLevelControlsFiltering) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

// -------------------------------------------------------------- Quantiles

TEST(PercentileOfSortedTest, InclusiveInterpolation) {
  const std::vector<double> sorted = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 100), 4.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 50), 2.5);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 25), 1.75);
  // Clamped, not extrapolated.
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, -5), 1.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted(sorted, 150), 4.0);
}

TEST(PercentileOfSortedTest, EdgeSizes) {
  EXPECT_DOUBLE_EQ(PercentileOfSorted({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({7}, 0), 7.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({7}, 99), 7.0);
  EXPECT_DOUBLE_EQ(PercentileOfSorted({1, 2}, 50), 1.5);
}

TEST(PercentileOfSortedTest, MatchesSummaryPercentile) {
  // Summary::Percentile routes through the same shared routine; spot-check
  // they agree so the BENCH and bench_micro_net numbers stay comparable.
  Summary summary;
  std::vector<double> sorted;
  for (int i = 1; i <= 17; ++i) {
    summary.Add(i * 1.5);
    sorted.push_back(i * 1.5);
  }
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(summary.Percentile(p), PercentileOfSorted(sorted, p))
        << "p=" << p;
  }
}

TEST(HistogramPercentileTest, InterpolatesWithinBucket) {
  // 10 samples uniformly in (0,10], 10 in (10,20].
  const std::vector<double> bounds = {10, 20};
  const std::vector<uint64_t> buckets = {10, 10, 0};
  EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, buckets, 50), 10.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, buckets, 25), 5.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, buckets, 75), 15.0);
}

TEST(HistogramPercentileTest, OverflowBucketReadsAsLowerBound) {
  const std::vector<double> bounds = {10};
  const std::vector<uint64_t> buckets = {0, 5};  // All samples above 10.
  EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, buckets, 50), 10.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile(bounds, buckets, 99), 10.0);
}

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(HistogramPercentile({10, 20}, {0, 0, 0}, 50), 0.0);
  EXPECT_DOUBLE_EQ(HistogramPercentile({}, {}, 50), 0.0);
}

// ---------------------------------------------------------------- SimTime

TEST(SimTimeTest, UnitsAndFormat) {
  EXPECT_EQ(Millis(3), 3000);
  EXPECT_EQ(Seconds(2), 2000000);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(5)), 5.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(5)), 5.0);
  EXPECT_EQ(FormatSimTime(Micros(50)), "50us");
  EXPECT_EQ(FormatSimTime(Millis(12) + Micros(500)), "12.50ms");
  EXPECT_EQ(FormatSimTime(Seconds(3)), "3.000s");
}

}  // namespace
}  // namespace bestpeer
