#include "util/metrics.h"

#include <gtest/gtest.h>

namespace bestpeer::metrics {
namespace {

// ---------------------------------------------------------------- Instruments

TEST(CounterTest, AddAndIncrement) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-2.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Observe(2);
  h.Observe(10);
  h.Observe(6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(HistogramTest, BucketsSplitAtBounds) {
  Histogram h({10.0, 100.0});
  h.Observe(5);     // Bucket 0: value < 10.
  h.Observe(10);    // Bucket 1: first bound above 10 is 100.
  h.Observe(50);    // Bucket 1.
  h.Observe(5000);  // Overflow.
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(NoopTest, SharedSinksAcceptWrites) {
  Counter::Noop()->Increment();
  Gauge::Noop()->Set(1);
  Histogram::Noop()->Observe(1);
  // Same pointer every time — components can compare against it.
  EXPECT_EQ(Counter::Noop(), Counter::Noop());
}

// ---------------------------------------------------------------- Registry

TEST(RegistryTest, HandlesAreStablePerNameAndLabels) {
  Registry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  Counter* labeled = reg.GetCounter("x", {{"node", "1"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(RegistryTest, LabelOrderDoesNotMatter) {
  Registry reg;
  Counter* a = reg.GetCounter("x", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("x", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
}

TEST(RegistryTest, KindMismatchReturnsNoop) {
  Registry reg;
  reg.GetCounter("x");
  EXPECT_EQ(reg.GetGauge("x"), Gauge::Noop());
  EXPECT_EQ(reg.GetHistogram("x"), Histogram::Noop());
  EXPECT_EQ(reg.instrument_count(), 1u);
}

// ---------------------------------------------------------------- Snapshot

TEST(SnapshotTest, CapturesCountersGaugesHistograms) {
  Registry reg;
  reg.GetCounter("c")->Add(5);
  reg.GetGauge("g")->Set(2.5);
  Histogram* h = reg.GetHistogram("h");
  h->Observe(1);
  h->Observe(3);

  Snapshot snap = reg.TakeSnapshot();
  EXPECT_EQ(snap.entries.size(), 3u);
  EXPECT_DOUBLE_EQ(snap.Value("c"), 5.0);
  EXPECT_DOUBLE_EQ(snap.Value("g"), 2.5);
  EXPECT_DOUBLE_EQ(snap.Value("h"), 4.0);  // Histogram value = sum.
  EXPECT_EQ(snap.CountOf("h"), 2u);
  EXPECT_DOUBLE_EQ(snap.Value("absent"), 0.0);
}

TEST(SnapshotTest, ValueSumsAcrossLabelCombinations) {
  Registry reg;
  reg.GetCounter("bytes", {{"node", "0"}})->Add(10);
  reg.GetCounter("bytes", {{"node", "1"}})->Add(32);
  Snapshot snap = reg.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.Value("bytes"), 42.0);
}

TEST(SnapshotTest, MergeSumsCountersAndAppendsUnmatched) {
  Registry a, b;
  a.GetCounter("c")->Add(1);
  a.GetGauge("g")->Set(1);
  b.GetCounter("c")->Add(2);
  b.GetGauge("g")->Set(9);
  b.GetCounter("only_b")->Add(7);

  Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_DOUBLE_EQ(merged.Value("c"), 3.0);     // Counters sum.
  EXPECT_DOUBLE_EQ(merged.Value("g"), 9.0);     // Gauges take the newer value.
  EXPECT_DOUBLE_EQ(merged.Value("only_b"), 7.0);  // Unmatched appends.
}

TEST(SnapshotTest, MergeSumsHistogramsAndWidensBounds) {
  Registry a, b;
  Histogram* ha = a.GetHistogram("h");
  ha->Observe(1);
  ha->Observe(2);
  Histogram* hb = b.GetHistogram("h");
  hb->Observe(100);

  Snapshot merged = a.TakeSnapshot();
  merged.Merge(b.TakeSnapshot());
  EXPECT_EQ(merged.CountOf("h"), 3u);
  EXPECT_DOUBLE_EQ(merged.Value("h"), 103.0);
  ASSERT_EQ(merged.entries.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.entries[0].min, 1.0);
  EXPECT_DOUBLE_EQ(merged.entries[0].max, 100.0);
}

TEST(SnapshotTest, ToJsonEmitsLabeledKeys) {
  Registry reg;
  reg.GetCounter("plain")->Add(3);
  reg.GetCounter("tagged", {{"node", "7"}})->Add(1);
  reg.GetHistogram("dist")->Observe(4);
  std::string json = reg.TakeSnapshot().ToJson();
  EXPECT_NE(json.find("\"plain\""), std::string::npos);
  EXPECT_NE(json.find("tagged{node=7}"), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
  EXPECT_NE(json.find("\"mean\""), std::string::npos);
}

}  // namespace
}  // namespace bestpeer::metrics
