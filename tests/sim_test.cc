#include <gtest/gtest.h>

#include <vector>

#include "sim/cpu.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace bestpeer::sim {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Push(30, [&]() { fired.push_back(3); });
  q.Push(10, [&]() { fired.push_back(1); });
  q.Push(20, [&]() { fired.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&fired, i]() { fired.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, PeekTime) {
  EventQueue q;
  q.Push(42, []() {});
  EXPECT_EQ(q.PeekTime(), 42);
  EXPECT_EQ(q.size(), 1u);
}

// ---------------------------------------------------------------- Simulator

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleAt(100, [&]() { seen = sim.now(); });
  EXPECT_EQ(sim.now(), 0);
  sim.RunUntilIdle();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, ScheduleAfterIsRelative) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleAt(50, [&]() {
    sim.ScheduleAfter(25, [&]() { times.push_back(sim.now()); });
  });
  sim.RunUntilIdle();
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 75);
}

TEST(SimulatorTest, EventsCanCascade) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&]() {
    if (++count < 5) sim.ScheduleAfter(10, chain);
  };
  sim.ScheduleAfter(10, chain);
  sim.RunUntilIdle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(10, [&]() { ++fired; });
  sim.ScheduleAt(100, [&]() { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, MaxEventsBound) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.ScheduleAt(i, []() {});
  size_t n = sim.RunUntilIdle(3);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(sim.pending(), 7u);
}

// ---------------------------------------------------------------- CpuModel

TEST(CpuModelTest, SingleThreadSerializesTasks) {
  Simulator sim;
  CpuModel cpu(&sim, 1);
  std::vector<SimTime> done;
  cpu.Submit(100, [&]() { done.push_back(sim.now()); });
  cpu.Submit(50, [&]() { done.push_back(sim.now()); });
  sim.RunUntilIdle();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 150);  // Queued behind the first task.
  EXPECT_EQ(cpu.total_busy(), 150);
}

TEST(CpuModelTest, MultiThreadOverlapsTasks) {
  Simulator sim;
  CpuModel cpu(&sim, 2);
  std::vector<SimTime> done;
  cpu.Submit(100, [&]() { done.push_back(sim.now()); });
  cpu.Submit(100, [&]() { done.push_back(sim.now()); });
  cpu.Submit(100, [&]() { done.push_back(sim.now()); });
  sim.RunUntilIdle();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 100);
  EXPECT_EQ(done[2], 200);  // Third waits for a free thread.
}

TEST(CpuModelTest, LaterSubmissionStartsAtNow) {
  Simulator sim;
  CpuModel cpu(&sim, 1);
  std::vector<SimTime> done;
  sim.ScheduleAt(500, [&]() {
    cpu.Submit(10, [&]() { done.push_back(sim.now()); });
  });
  sim.RunUntilIdle();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0], 510);
}

TEST(CpuModelTest, ZeroCostTaskCompletesImmediately) {
  Simulator sim;
  CpuModel cpu(&sim, 1);
  bool ran = false;
  cpu.Submit(0, [&]() { ran = true; });
  sim.RunUntilIdle();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 0);
}

// ---------------------------------------------------------------- SimNetwork

NetworkOptions FastNet() {
  NetworkOptions o;
  o.latency = Micros(500);
  o.bytes_per_us = 1.25;
  o.header_overhead = 0;
  return o;
}

TEST(SimNetworkTest, DeliversWithLatencyAndBandwidth) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  SimTime delivered = -1;
  net.SetHandler(b, [&](const SimMessage& m) {
    EXPECT_EQ(m.src, a);
    EXPECT_EQ(m.type, 7u);
    delivered = sim.now();
  });
  net.Send(a, b, 7, Bytes(1250, 0));  // 1250 bytes = 1000us per NIC.
  sim.RunUntilIdle();
  // uplink 1000 + latency 500 + downlink 1000.
  EXPECT_EQ(delivered, 2500);
}

TEST(SimNetworkTest, UplinkSerializesConcurrentSends) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  std::vector<SimTime> deliveries;
  auto handler = [&](const SimMessage&) { deliveries.push_back(sim.now()); };
  net.SetHandler(b, handler);
  net.SetHandler(c, handler);
  net.Send(a, b, 1, Bytes(1250, 0));
  net.Send(a, c, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2500);
  EXPECT_EQ(deliveries[1], 3500);  // Second waits for the uplink.
}

TEST(SimNetworkTest, DownlinkSerializesConcurrentReceives) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  std::vector<SimTime> deliveries;
  net.SetHandler(c, [&](const SimMessage&) { deliveries.push_back(sim.now()); });
  net.Send(a, c, 1, Bytes(1250, 0));
  net.Send(b, c, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2500);
  // Second arrives at c's NIC at 1500 but must wait until 2500 to start.
  EXPECT_EQ(deliveries[1], 3500);
}

TEST(SimNetworkTest, LinkProfileSlowsOneNodeBothWays) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  LinkProfile slow;
  slow.bytes_per_us = 0.625;  // Half the default rate: 1250 bytes = 2000us.
  slow.extra_latency = Micros(100);
  net.SetLinkProfile(b, slow);
  std::vector<SimTime> deliveries;
  auto handler = [&](const SimMessage&) { deliveries.push_back(sim.now()); };
  net.SetHandler(b, handler);
  net.SetHandler(c, handler);
  // Into the slow node: uplink 1000 @ a + latency 500+100 + downlink 2000 @ b.
  net.Send(a, b, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  // Out of the slow node: uplink 2000 @ b + latency 500+100 + downlink 1000 @ c.
  net.Send(b, c, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 3600);
  EXPECT_EQ(deliveries[1], 3600 + 3600);
  EXPECT_EQ(net.NodeTxTime(b, 1250), 2000);
  EXPECT_EQ(net.NodeTxTime(a, 1250), net.TxTime(1250));
}

TEST(SimNetworkTest, DefaultLinkProfileChangesNothing) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  // A default-constructed profile must leave the schedule identical to
  // DeliversWithLatencyAndBandwidth — the scenario engine's homogeneous
  // fleets rely on this for byte-identical baselines.
  net.SetLinkProfile(a, LinkProfile{});
  net.SetLinkProfile(b, LinkProfile{});
  SimTime delivered = -1;
  net.SetHandler(b, [&](const SimMessage&) { delivered = sim.now(); });
  net.Send(a, b, 7, Bytes(1250, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 2500);
}

TEST(SimNetworkTest, QueueWaitChargesSenderUplink) {
  metrics::Registry registry;
  Simulator sim;
  NetworkOptions options = FastNet();
  options.metrics = &registry;
  SimNetwork net(&sim, options);
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net.SetHandler(b, [](const SimMessage&) {});
  net.Send(a, b, 1, Bytes(1250, 0));  // Uplink busy 0-1000.
  net.Send(a, b, 1, Bytes(1250, 0));  // Must wait until 1000.
  sim.RunUntilIdle();
  EXPECT_EQ(net.node_queue_wait(a), 1000);
  // Back-to-back arrivals hit a free downlink: 1st rx 1500-2500, 2nd
  // arrives at 2500 exactly as the NIC frees.
  EXPECT_EQ(net.node_queue_wait(b), 0);
  auto snapshot = registry.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.Value("net.queue_wait_us"), 1000.0);
}

TEST(SimNetworkTest, QueueWaitChargesReceiverDownlink) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  std::vector<SimTime> deliveries;
  net.SetHandler(c, [&](const SimMessage&) { deliveries.push_back(sim.now()); });
  net.Send(a, c, 1, Bytes(1250, 0));
  net.Send(b, c, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  // Both arrive at 1500; the second serializes 2500-3500, so it waited
  // 1000 behind the first — charged to the receiver.
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[1], 3500);
  EXPECT_EQ(net.node_queue_wait(c), 1000);
  EXPECT_EQ(net.node_queue_wait(a), 0);
  EXPECT_EQ(net.node_queue_wait(b), 0);
}

TEST(SimNetworkTest, ExtraWireBytesChargeTheWireOnly) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  size_t payload_seen = 0;
  SimTime delivered = 0;
  net.SetHandler(b, [&](const SimMessage& m) {
    payload_seen = m.payload.size();
    delivered = sim.now();
  });
  net.Send(a, b, 1, Bytes(125, 0), /*extra_wire_bytes=*/1125);
  sim.RunUntilIdle();
  EXPECT_EQ(payload_seen, 125u);
  EXPECT_EQ(delivered, 2500);  // Charged as 1250 bytes.
}

TEST(SimNetworkTest, OfflineNodeDropsMessages) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  int received = 0;
  net.SetHandler(b, [&](const SimMessage&) { ++received; });
  net.SetOnline(b, false);
  net.Send(a, b, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.SetOnline(b, true);
  net.Send(a, b, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

TEST(SimNetworkTest, TxTimeIsCeilingWithOneMicrosecondFloor) {
  Simulator sim;
  NetworkOptions o;
  o.bytes_per_us = 12.5;  // Default 100 Mbit/s NIC.
  SimNetwork net(&sim, o);
  EXPECT_EQ(net.TxTime(0), 0);
  // Regression: llround used to serialize anything under 6.25 bytes in
  // 0 us — an infinite-bandwidth NIC for small control messages.
  EXPECT_EQ(net.TxTime(1), 1);
  EXPECT_EQ(net.TxTime(6), 1);
  EXPECT_EQ(net.TxTime(13), 2);   // ceil(1.04), was llround -> 1.
  EXPECT_EQ(net.TxTime(125), 10);  // Exact multiples are unchanged.
}

TEST(SimNetworkTest, ReceiverDyingMidReceiveIsNotCharged) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  std::vector<SimTime> deliveries;
  net.SetHandler(c, [&](const SimMessage&) { deliveries.push_back(sim.now()); });
  // Both arrive at c's NIC at 1500; first serializes 1500-2500, second
  // queues and would finish at 3500.
  net.Send(a, c, 1, Bytes(1250, 0));
  net.Send(b, c, 1, Bytes(1250, 0));
  // c dies after the first delivery but before the second finishes its
  // downlink serialization.
  sim.ScheduleAt(2600, [&]() { net.SetOnline(c, false); });
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 2500);
  EXPECT_EQ(net.messages_dropped(), 1u);
  // Regression: the second message reserved the downlink at 2500 with a
  // 1000us queue wait, but was never delivered — the receiver must not
  // be charged wait or bytes for it.
  EXPECT_EQ(net.node_queue_wait(c), 0);
  EXPECT_EQ(net.node_bytes_received(c), 1250u);
}

TEST(SimNetworkTest, OfflineSenderTransmitsNothing) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  int received = 0;
  net.SetHandler(b, [&](const SimMessage&) { ++received; });
  net.SetOnline(a, false);
  net.Send(a, b, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.node_bytes_sent(a), 0u);
}

TEST(SimNetworkTest, GoingOfflineReleasesNicReservations) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  std::vector<SimTime> deliveries;
  net.SetHandler(c, [&](const SimMessage&) { deliveries.push_back(sim.now()); });
  net.Send(a, c, 1, Bytes(1250, 0));  // Reserves c's downlink 1500-2500.
  // A fast offline/online blip at 1600 releases the reservation.
  sim.ScheduleAt(1600, [&]() {
    net.SetOnline(c, false);
    net.SetOnline(c, true);
  });
  // Second message arrives at c at 2000 (sent 500: uplink to 1500 +
  // latency). Against the stale 2500 reservation it would queue 500us;
  // after the release it starts its downlink immediately.
  sim.ScheduleAt(500, [&]() { net.Send(b, c, 1, Bytes(1250, 0)); });
  sim.RunUntilIdle();
  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0], 2500);  // The blip was too fast to kill it.
  EXPECT_EQ(deliveries[1], 3000);  // 2000 arrival + 1000 rx, no queueing.
  EXPECT_EQ(net.node_queue_wait(c), 0);
}

TEST(SimNetworkTest, CountsBytes) {
  Simulator sim;
  NetworkOptions o = FastNet();
  o.header_overhead = 64;
  SimNetwork net(&sim, o);
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net.SetHandler(b, [](const SimMessage&) {});
  net.Send(a, b, 1, Bytes(100, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(net.node_bytes_sent(a), 164u);
  EXPECT_EQ(net.node_bytes_received(b), 164u);
  EXPECT_EQ(net.total_wire_bytes(), 164u);
  EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(SimNetworkTest, TraceHookFires) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net.SetHandler(b, [](const SimMessage&) {});
  int traces = 0;
  net.SetTrace([&](const SimMessage& m, SimTime sent, SimTime delivered) {
    EXPECT_EQ(m.src, a);
    EXPECT_EQ(sent, 0);
    EXPECT_GT(delivered, sent);
    ++traces;
  });
  net.Send(a, b, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(traces, 1);
}

// ---------------------------------------------------------------- Dispatcher

TEST(DispatcherTest, RoutesByType) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net::SimTransport transport(&net, b);
  net::Dispatcher dispatcher(&transport);
  int ones = 0, twos = 0, other = 0;
  dispatcher.Register(1, [&](const net::Message&) { ++ones; });
  dispatcher.Register(2, [&](const net::Message&) { ++twos; });
  dispatcher.RegisterDefault([&](const net::Message&) { ++other; });
  net.Send(a, b, 1, Bytes{});
  net.Send(a, b, 2, Bytes{});
  net.Send(a, b, 3, Bytes{});
  sim.RunUntilIdle();
  EXPECT_EQ(ones, 1);
  EXPECT_EQ(twos, 1);
  EXPECT_EQ(other, 1);
}

TEST(DispatcherTest, CountsUnhandled) {
  Simulator sim;
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net::SimTransport transport(&net, b);
  net::Dispatcher dispatcher(&transport);
  net.Send(a, b, 99, Bytes{});
  sim.RunUntilIdle();
  EXPECT_EQ(dispatcher.unhandled_count(), 1u);
}

}  // namespace
}  // namespace bestpeer::sim
