// Distributed-tracing tests for the TCP backend: span recording on the
// real reactor (cpu + net spans for sampled flows), the trace-frame codec
// under truncation, the collector's clock reconciliation and flow
// eviction, and the wire propagation of the sampling decision between two
// TcpNets that model two fleet processes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "obs/flight_recorder.h"
#include "obs/json_reader.h"
#include "obs/trace_frame.h"
#include "util/bytes.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace bestpeer {
namespace {

/// Polls `done_on_reactor` (run on the net's reactor) until it holds.
bool WaitUntil(net::TcpNet* net, const std::function<bool()>& done_on_reactor,
               int budget_ms = 10000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_ms);
  for (;;) {
    bool done = false;
    net->Run([&]() { done = done_on_reactor(); });
    if (done) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// --------------------------------------------------- span recording (TCP)

TEST(TraceTcpTest, RecordsCpuAndNetSpansForSampledFlows) {
  metrics::Registry registry;
  trace::TraceRecorder recorder(
      {.ring_capacity = 1024, .sample_rate = 1.0, .metrics = &registry});
  net::TcpOptions options;
  options.trace = &recorder;
  options.metrics = &registry;
  net::TcpNet tcpnet(options);
  net::TcpTransport* t0 = tcpnet.AddNode().value();
  net::TcpTransport* t1 = tcpnet.AddNode().value();
  EXPECT_EQ(t0->trace(), &recorder);
  t1->RegisterTypeName(0x1234, "test.msg");

  std::atomic<bool> delivered{false};
  t1->SetHandler([&](const net::Message&) { delivered.store(true); });
  tcpnet.Start();

  constexpr FlowId kFlow = 77;
  bool cpu_done = false;
  tcpnet.Run([&]() {
    t0->Send(t1->local(), 0x1234, Bytes{1, 2, 3}, /*extra_wire_bytes=*/32,
             kFlow);
    t0->RunCpu(Micros(100), [&cpu_done]() { cpu_done = true; }, "test.cpu",
               kFlow, {{"answers", 9}});
  });
  ASSERT_TRUE(WaitUntil(&tcpnet, [&]() { return delivered.load(); }));
  ASSERT_TRUE(WaitUntil(&tcpnet, [&]() { return cpu_done; }));

  std::vector<trace::Span> spans;
  tcpnet.Run([&]() { spans = recorder.Spans(); });
  tcpnet.Stop();

  const trace::Span* cpu = nullptr;
  const trace::Span* rx = nullptr;
  for (const trace::Span& s : spans) {
    if (s.cat == "cpu" && s.name == "test.cpu") cpu = &s;
    if (s.cat == "net" && s.name == "test.msg") rx = &s;
  }
  ASSERT_NE(cpu, nullptr);
  EXPECT_EQ(cpu->flow, kFlow);
  EXPECT_EQ(cpu->tid, t0->local());
  EXPECT_EQ(cpu->dur, Micros(100));
  ASSERT_EQ(cpu->args.size(), 1u);
  EXPECT_EQ(cpu->args[0].first, "answers");

  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->flow, kFlow);
  EXPECT_EQ(rx->tid, t1->local());
  // Same process: the receive span covers [sent, received] on the shared
  // reactor clock.
  EXPECT_GE(rx->dur, 0);
  uint64_t wire = 0, src = 0, sent_us = 0;
  for (const auto& [k, v] : rx->args) {
    if (k == "wire") wire = v;
    if (k == "src") src = v;
    if (k == "sent_us") sent_us = v;
  }
  EXPECT_EQ(src, t0->local());
  EXPECT_EQ(wire, net::kFrameOverheadBytes + 3 + 32);
  EXPECT_GT(sent_us, 0u);

  // The recorder surfaced its counters through the shared registry.
  metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_GE(snap.Value("trace.spans_recorded"), 2.0);
  EXPECT_GE(snap.Value("trace.flows_sampled"), 1.0);
}

TEST(TraceTcpTest, UnsampledFlowsRecordNothing) {
  trace::TraceRecorder recorder({.ring_capacity = 64, .sample_rate = 0.0});
  net::TcpOptions options;
  options.trace = &recorder;
  net::TcpNet tcpnet(options);
  net::TcpTransport* t0 = tcpnet.AddNode().value();
  net::TcpTransport* t1 = tcpnet.AddNode().value();

  std::atomic<bool> delivered{false};
  t1->SetHandler([&](const net::Message&) { delivered.store(true); });
  tcpnet.Start();
  bool cpu_done = false;
  tcpnet.Run([&]() {
    t0->Send(t1->local(), 0x42, Bytes{9}, 0, /*flow=*/123);
    t0->RunCpu(Micros(10), [&cpu_done]() { cpu_done = true; }, "quiet.cpu",
               123);
  });
  ASSERT_TRUE(WaitUntil(&tcpnet, [&]() { return delivered.load(); }));
  ASSERT_TRUE(WaitUntil(&tcpnet, [&]() { return cpu_done; }));
  size_t recorded = 0;
  tcpnet.Run([&]() { recorded = recorder.size(); });
  tcpnet.Stop();
  EXPECT_EQ(recorded, 0u);
  EXPECT_EQ(recorder.flows_sampled(), 0u);
}

// ------------------------------------------------------ trace frame codec

obs::TraceFrame DemoFrame() {
  obs::TraceFrame frame;
  frame.node = 5;
  frame.sent_at_us = 123456;
  frame.spans_dropped = 3;
  trace::Span a;
  a.name = "agent.execute";
  a.cat = "cpu";
  a.tid = 6;
  a.ts = 1000;
  a.dur = 250;
  a.flow = 42;
  a.args = {{"qwait", 17}, {"answers", 2}};
  trace::Span b;
  b.name = "search.result";
  b.cat = "net";
  b.tid = 7;
  b.ts = 1300;
  b.dur = 0;
  b.flow = 42;
  b.args = {{"src", 6}, {"dst", 7}, {"wire", 128}, {"sent_us", 999}};
  frame.spans = {a, b};
  return frame;
}

TEST(TraceFrameTest, RoundTrips) {
  obs::TraceFrame frame = DemoFrame();
  Bytes wire = obs::EncodeTraceFrame(frame);
  auto decoded = obs::DecodeTraceFrame(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().node, 5u);
  EXPECT_EQ(decoded.value().sent_at_us, 123456);
  EXPECT_EQ(decoded.value().spans_dropped, 3u);
  ASSERT_EQ(decoded.value().spans.size(), 2u);
  const trace::Span& a = decoded.value().spans[0];
  EXPECT_EQ(a.name, "agent.execute");
  EXPECT_EQ(a.cat, "cpu");
  EXPECT_EQ(a.tid, 6u);
  EXPECT_EQ(a.ts, 1000);
  EXPECT_EQ(a.dur, 250);
  EXPECT_EQ(a.flow, 42u);
  ASSERT_EQ(a.args.size(), 2u);
  EXPECT_EQ(a.args[0].first, "qwait");
  EXPECT_EQ(a.args[0].second, 17u);
  const trace::Span& b = decoded.value().spans[1];
  EXPECT_EQ(b.name, "search.result");
  ASSERT_EQ(b.args.size(), 4u);
  EXPECT_EQ(b.args[3].first, "sent_us");
}

TEST(TraceFrameTest, TruncationAtEveryCutIsAnErrorNotUb) {
  Bytes wire = obs::EncodeTraceFrame(DemoFrame());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes prefix(wire.begin(), wire.begin() + static_cast<long>(cut));
    auto r = obs::DecodeTraceFrame(prefix);
    EXPECT_FALSE(r.ok()) << "cut at " << cut << " of " << wire.size();
  }
}

TEST(TraceFrameTest, RejectsBadMagicVersionTrailingAndOverLimits) {
  Bytes wire = obs::EncodeTraceFrame(DemoFrame());

  Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(obs::DecodeTraceFrame(bad_magic).ok());

  Bytes bad_version = wire;
  bad_version[4] ^= 0xFF;
  EXPECT_FALSE(obs::DecodeTraceFrame(bad_version).ok());

  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(obs::DecodeTraceFrame(trailing).ok());

  // A span count over the hard limit is corruption, not an allocation.
  obs::TraceFrame huge;
  huge.spans.resize(1);
  Bytes huge_wire = obs::EncodeTraceFrame(huge);
  // Patch the span-count varint (last varint before span data). Easier:
  // build a frame that lies about its count via a legitimate encoder is
  // impossible, so decode a hand-grown one: header + dropped=0 +
  // count=kTraceFrameMaxSpans+1 and nothing else must fail fast.
  BinaryWriter w;
  w.WriteU32(obs::kTraceFrameMagic);
  w.WriteU16(obs::kTraceFrameVersion);
  w.WriteU32(1);
  w.WriteI64(0);
  w.WriteVarint(0);
  w.WriteVarint(obs::kTraceFrameMaxSpans + 1);
  EXPECT_FALSE(obs::DecodeTraceFrame(w.Take()).ok());
}

// --------------------------------------------------------- trace collector

TEST(TraceCollectorTest, ShiftsSenderClocksOntoCollectorClock) {
  obs::TraceCollector collector;
  obs::TraceFrame frame = DemoFrame();  // sent_at_us = 123456, spans @1000+.
  collector.Absorb(frame, /*received_at_us=*/123956);  // Offset +500.
  EXPECT_EQ(collector.frames_received(), 1u);
  EXPECT_EQ(collector.span_count(), 2u);
  EXPECT_EQ(collector.sender_spans_dropped(), 3u);

  obs::TraceExportContext ctx;
  ctx.now_us = 200000;
  ctx.wall_us = 1700000000000000;
  ctx.node_base = 0;
  ctx.node_count = 3;
  auto parsed = obs::ParseJson(collector.ToJson(ctx));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& doc = parsed.value();
  EXPECT_DOUBLE_EQ(doc.Find("mono_us")->AsNumber(), 200000);
  EXPECT_DOUBLE_EQ(doc.Find("local_nodes")->AsNumber(), 3);
  const obs::JsonValue* flows = doc.Find("flows");
  ASSERT_NE(flows, nullptr);
  const obs::JsonValue* flow = flows->Find("42");
  ASSERT_NE(flow, nullptr);
  ASSERT_EQ(flow->AsArray().size(), 2u);
  EXPECT_DOUBLE_EQ(flow->AsArray()[0].Find("ts")->AsNumber(), 1500);
  EXPECT_DOUBLE_EQ(flow->AsArray()[1].Find("ts")->AsNumber(), 1800);
}

TEST(TraceCollectorTest, IgnoresFlowZeroSpans) {
  obs::TraceCollector collector;
  obs::TraceFrame frame;
  frame.node = 1;
  trace::Span s;
  s.name = "reconfig";
  s.cat = "cpu";
  s.flow = 0;
  frame.spans = {s};
  collector.Absorb(frame, 100);
  EXPECT_EQ(collector.span_count(), 0u);
  EXPECT_EQ(collector.flow_count(), 0u);
}

TEST(TraceCollectorTest, EvictsWholeOldestFlowsUnderPressure) {
  obs::TraceCollector collector(/*max_spans=*/4);
  for (uint64_t flow = 1; flow <= 3; ++flow) {
    obs::TraceFrame frame;
    frame.node = 1;
    for (int i = 0; i < 2; ++i) {
      trace::Span s;
      s.name = "x";
      s.cat = "cpu";
      s.flow = flow;
      s.ts = static_cast<int64_t>(flow * 10 + i);
      frame.spans.push_back(s);
    }
    collector.Absorb(frame, 0);
  }
  // 6 spans against a budget of 4: the oldest flow goes, wholesale.
  EXPECT_EQ(collector.flows_forgotten(), 1u);
  EXPECT_EQ(collector.flow_count(), 2u);
  EXPECT_EQ(collector.span_count(), 4u);
}

TEST(TraceCollectorTest, FlowJsonExplainsFlowsWithAQueryRoot) {
  obs::TraceCollector collector;
  obs::TraceFrame frame;
  frame.node = 0;
  trace::Span root;
  root.name = "query";
  root.cat = "query";
  root.tid = 1;
  root.ts = 0;
  root.dur = 1000;
  root.flow = 5;
  trace::Span work;
  work.name = "agent.execute";
  work.cat = "cpu";
  work.tid = 2;
  work.ts = 100;
  work.dur = 400;
  work.flow = 5;
  frame.spans = {root, work};
  collector.Absorb(frame, 0);

  obs::TraceExportContext ctx;
  auto parsed = obs::ParseJson(collector.FlowJson(ctx, 5));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_NE(parsed.value().Find("explain"), nullptr);
  ASSERT_NE(parsed.value().Find("spans"), nullptr);
  EXPECT_EQ(parsed.value().Find("spans")->AsArray().size(), 2u);

  // Unknown flows serialize as an empty span list, no explain.
  auto missing = obs::ParseJson(collector.FlowJson(ctx, 999));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing.value().Find("spans")->AsArray().size(), 0u);
  EXPECT_EQ(missing.value().Find("explain"), nullptr);
}

// ------------------------------------------------- cross-process sampling

/// Two TcpNets with a shared port plan stand in for two fleet processes:
/// net A owns global nodes 0..1, net B owns 2..3. They only share
/// 127.0.0.1.
TEST(TraceTcpTest, SampledBitPropagatesAcrossProcessBoundary) {
  // The sender samples everything; the receiver samples nothing locally,
  // so any span it records for the flow proves the wire bit forced it.
  trace::TraceRecorder send_recorder(
      {.ring_capacity = 64, .sample_rate = 1.0});
  trace::TraceRecorder recv_recorder(
      {.ring_capacity = 64, .sample_rate = 0.0});
  obs::FlightRecorder recv_flight({.capacity = 64});

  std::unique_ptr<net::TcpNet> net_a;
  std::unique_ptr<net::TcpNet> net_b;
  net::TcpTransport* a0 = nullptr;
  net::TcpTransport* b0 = nullptr;
  // Fixed ports can race other CI jobs; walk a few bases before giving up.
  for (uint16_t base : {26140, 27440, 28740, 29940}) {
    net::TcpOptions options_a;
    options_a.trace = &send_recorder;
    options_a.node_base = 0;
    options_a.port_base = base;
    net_a = std::make_unique<net::TcpNet>(options_a);
    auto ra0 = net_a->AddNode();
    auto ra1 = net_a->AddNode();

    net::TcpOptions options_b;
    options_b.trace = &recv_recorder;
    options_b.flight = &recv_flight;
    options_b.node_base = 2;
    options_b.port_base = base;
    net_b = std::make_unique<net::TcpNet>(options_b);
    auto rb0 = net_b->AddNode();
    auto rb1 = net_b->AddNode();
    if (ra0.ok() && ra1.ok() && rb0.ok() && rb1.ok()) {
      a0 = ra0.value();
      b0 = rb0.value();
      break;
    }
    net_a.reset();
    net_b.reset();
  }
  ASSERT_NE(a0, nullptr) << "no free port base";
  ASSERT_EQ(b0->local(), 2u);

  // Each net can address the other's nodes through the port plan.
  EXPECT_TRUE(net_a->Addressable(2));
  EXPECT_FALSE(net_a->IsLocal(2));
  EXPECT_TRUE(net_b->IsLocal(2));

  std::atomic<bool> delivered{false};
  b0->SetHandler([&](const net::Message&) { delivered.store(true); });
  net_a->Start();
  net_b->Start();

  constexpr FlowId kFlow = 918273;
  net_a->Run([&]() { a0->Send(2, 0x77, Bytes{4, 5}, 0, kFlow); });
  ASSERT_TRUE(WaitUntil(net_b.get(), [&]() { return delivered.load(); }));

  std::vector<trace::Span> spans;
  std::vector<obs::FlightEvent> events;
  net_b->Run([&]() {
    spans = recv_recorder.Spans();
    events = recv_flight.Events();
  });
  net_a->Stop();
  net_b->Stop();

  // The receiver was forced onto the flow and recorded the arrival as a
  // point event carrying the sender's clock for bpstitch.
  EXPECT_EQ(recv_recorder.flows_sampled(), 1u);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].cat, "net");
  EXPECT_EQ(spans[0].flow, kFlow);
  EXPECT_EQ(spans[0].tid, 2u);
  EXPECT_EQ(spans[0].dur, 0);  // Cross-process: clocks don't mix.
  uint64_t sent_us = 0;
  for (const auto& [k, v] : spans[0].args) {
    if (k == "sent_us") sent_us = v;
  }
  EXPECT_GT(sent_us, 0u);

  // The forced decision is cross-linked into the flight recorder.
  bool saw_trace_sampled = false;
  for (const obs::FlightEvent& e : events) {
    if (e.type == obs::EventType::kTraceSampled) {
      EXPECT_EQ(e.flow, kFlow);
      EXPECT_EQ(e.a, 1u);  // Forced by the wire, not decided locally.
      saw_trace_sampled = true;
    }
  }
  EXPECT_TRUE(saw_trace_sampled);
}

}  // namespace
}  // namespace bestpeer
