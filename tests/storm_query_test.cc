#include <gtest/gtest.h>

#include "storm/query_expr.h"
#include "storm/storm.h"
#include "util/rng.h"
#include "util/strings.h"

namespace bestpeer::storm {
namespace {

Bytes Content(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ---------------------------------------------------------------- parsing

TEST(QueryExprTest, SingleTerm) {
  auto expr = QueryExpr::Parse("needle").value();
  EXPECT_EQ(expr.branch_count(), 1u);
  EXPECT_EQ(expr.term_count(), 1u);
  EXPECT_EQ(expr.ToString(), "needle");
}

TEST(QueryExprTest, ImplicitAnd) {
  auto expr = QueryExpr::Parse("peer  agents").value();
  EXPECT_EQ(expr.branch_count(), 1u);
  EXPECT_EQ(expr.term_count(), 2u);
  EXPECT_EQ(expr.ToString(), "peer agents");
}

TEST(QueryExprTest, OrBranches) {
  auto expr = QueryExpr::Parse("mp3 beatles OR flac").value();
  EXPECT_EQ(expr.branch_count(), 2u);
  EXPECT_EQ(expr.term_count(), 3u);
  EXPECT_EQ(expr.ToString(), "mp3 beatles OR flac");
}

TEST(QueryExprTest, TermsAreLowercased) {
  auto expr = QueryExpr::Parse("NeedLe").value();
  EXPECT_EQ(expr.dnf()[0][0], "needle");
}

TEST(QueryExprTest, RejectsEmptyAndDangling) {
  EXPECT_FALSE(QueryExpr::Parse("").ok());
  EXPECT_FALSE(QueryExpr::Parse("   ").ok());
  EXPECT_FALSE(QueryExpr::Parse("a OR").ok());
  EXPECT_FALSE(QueryExpr::Parse("OR b").ok());
  EXPECT_FALSE(QueryExpr::Parse("a OR OR b").ok());
}

// ---------------------------------------------------------------- matching

TEST(QueryExprTest, AndSemantics) {
  auto expr = QueryExpr::Parse("peer agents").value();
  EXPECT_TRUE(expr.Matches("mobile agents in peer networks"));
  EXPECT_FALSE(expr.Matches("mobile agents only"));
  EXPECT_FALSE(expr.Matches("peer networks only"));
}

TEST(QueryExprTest, OrSemantics) {
  auto expr = QueryExpr::Parse("alpha beta OR gamma").value();
  EXPECT_TRUE(expr.Matches("alpha and beta here"));
  EXPECT_TRUE(expr.Matches("just gamma"));
  EXPECT_FALSE(expr.Matches("alpha without the second"));
}

TEST(QueryExprTest, WholeTokenMatching) {
  auto expr = QueryExpr::Parse("needle").value();
  EXPECT_FALSE(expr.Matches("needles"));
  EXPECT_TRUE(expr.Matches("a NEEDLE!"));
}

// ------------------------------------------------------- storm integration

TEST(StormQueryTest, MultiKeywordScan) {
  auto storm = Storm::Open({}).value();
  storm->Put(1, Content("alpha beta gamma")).ok();
  storm->Put(2, Content("alpha delta")).ok();
  storm->Put(3, Content("gamma only")).ok();

  auto both = storm->ScanSearch("alpha beta").value();
  EXPECT_EQ(both.matches, (std::vector<ObjectId>{1}));
  auto either = storm->ScanSearch("beta OR delta").value();
  EXPECT_EQ(either.matches, (std::vector<ObjectId>{1, 2}));
  EXPECT_FALSE(storm->ScanSearch("").ok());
}

TEST(StormQueryTest, IndexMatchesScanOnRandomQueries) {
  StormOptions options;
  options.build_index = true;
  auto storm = Storm::Open(options).value();
  bestpeer::Rng rng(5);
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (ObjectId id = 0; id < 60; ++id) {
    std::string text;
    for (int w = 0; w < 3; ++w) {
      text += words[rng.NextBounded(5)];
      text += ' ';
    }
    storm->Put(id, Content(text)).ok();
  }
  const char* queries[] = {"alpha",          "alpha beta",
                           "alpha OR beta",  "gamma delta OR epsilon",
                           "beta gamma",     "epsilon OR alpha beta"};
  for (const char* q : queries) {
    auto scan = storm->ScanSearch(q).value();
    auto indexed = storm->IndexSearch(q).value();
    EXPECT_EQ(scan.matches, indexed) << "query: " << q;
  }
}

// ---------------------------------------------------------------- caching

TEST(StormQueryTest, CacheHitsSkipTheScan) {
  StormOptions options;
  options.enable_query_cache = true;
  auto storm = Storm::Open(options).value();
  for (ObjectId id = 0; id < 20; ++id) {
    storm->Put(id, Content(id % 4 == 0 ? "needle x" : "hay x")).ok();
  }
  auto first = storm->ScanSearch("needle").value();
  EXPECT_FALSE(first.from_cache);
  EXPECT_EQ(first.objects_scanned, 20u);
  auto second = storm->ScanSearch("needle").value();
  EXPECT_TRUE(second.from_cache);
  EXPECT_EQ(second.objects_scanned, 0u);
  EXPECT_EQ(second.matches, first.matches);
  EXPECT_EQ(storm->query_cache_hits(), 1u);
  EXPECT_EQ(storm->query_cache_misses(), 1u);
}

TEST(StormQueryTest, MutationInvalidatesCache) {
  StormOptions options;
  options.enable_query_cache = true;
  auto storm = Storm::Open(options).value();
  storm->Put(1, Content("needle")).ok();
  storm->ScanSearch("needle").value();
  storm->Put(2, Content("another needle")).ok();
  auto after = storm->ScanSearch("needle").value();
  EXPECT_FALSE(after.from_cache) << "Put must invalidate";
  EXPECT_EQ(after.matches.size(), 2u);
  storm->Delete(1).ok();
  auto after_delete = storm->ScanSearch("needle").value();
  EXPECT_FALSE(after_delete.from_cache) << "Delete must invalidate";
  EXPECT_EQ(after_delete.matches, (std::vector<ObjectId>{2}));
}

TEST(StormQueryTest, CacheNormalizesQueryText) {
  StormOptions options;
  options.enable_query_cache = true;
  auto storm = Storm::Open(options).value();
  storm->Put(1, Content("alpha beta")).ok();
  storm->ScanSearch("Alpha  Beta").value();
  auto second = storm->ScanSearch("alpha beta").value();
  EXPECT_TRUE(second.from_cache)
      << "case/spacing variants share one cache entry";
}

TEST(StormQueryTest, CacheEvictsLru) {
  StormOptions options;
  options.enable_query_cache = true;
  options.query_cache_entries = 2;
  auto storm = Storm::Open(options).value();
  storm->Put(1, Content("a b c")).ok();
  storm->ScanSearch("a").value();   // Cache: {a}
  storm->ScanSearch("b").value();   // Cache: {a, b}
  storm->ScanSearch("a").value();   // Touch a.
  storm->ScanSearch("c").value();   // Evicts b.
  EXPECT_TRUE(storm->ScanSearch("a").value().from_cache);
  EXPECT_FALSE(storm->ScanSearch("b").value().from_cache);
}

TEST(StormQueryTest, CacheDisabledByDefault) {
  auto storm = Storm::Open({}).value();
  storm->Put(1, Content("needle")).ok();
  storm->ScanSearch("needle").value();
  auto second = storm->ScanSearch("needle").value();
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(second.objects_scanned, 1u);
}

}  // namespace
}  // namespace bestpeer::storm
