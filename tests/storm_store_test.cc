#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "storm/object_store.h"
#include "storm/storm.h"
#include "util/rng.h"

namespace bestpeer::storm {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/bp_storm_test_" + tag + "_" +
              std::to_string(::getpid()) + ".db") {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

Bytes Content(const std::string& s) { return Bytes(s.begin(), s.end()); }

std::unique_ptr<ObjectStore> MakeStore(MemPager* pager, BufferPool** pool_out,
                                       std::unique_ptr<BufferPool>* pool) {
  *pool = BufferPool::Create(pager, {.frames = 16, .policy = "lru"}).value();
  *pool_out = pool->get();
  return ObjectStore::Open(pool->get()).value();
}

TEST(ObjectStoreTest, PutGetDelete) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);

  ASSERT_TRUE(store->Put(1, Content("hello")).ok());
  EXPECT_TRUE(store->Contains(1));
  EXPECT_EQ(store->Get(1).value(), Content("hello"));
  ASSERT_TRUE(store->Delete(1).ok());
  EXPECT_FALSE(store->Contains(1));
  EXPECT_TRUE(store->Get(1).status().IsNotFound());
  EXPECT_TRUE(store->Delete(1).IsNotFound());
}

TEST(ObjectStoreTest, DuplicatePutRejected) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);
  ASSERT_TRUE(store->Put(1, Content("a")).ok());
  EXPECT_TRUE(store->Put(1, Content("b")).IsAlreadyExists());
}

TEST(ObjectStoreTest, EmptyObject) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);
  ASSERT_TRUE(store->Put(5, Bytes{}).ok());
  EXPECT_EQ(store->Get(5).value(), Bytes{});
}

TEST(ObjectStoreTest, LargeObjectSpansChunks) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);
  Rng rng(1);
  Bytes big(ObjectStore::kChunkDataSize * 3 + 17);
  for (auto& b : big) b = static_cast<uint8_t>(rng.NextBounded(256));
  ASSERT_TRUE(store->Put(9, big).ok());
  EXPECT_EQ(store->Get(9).value(), big);
  ASSERT_TRUE(store->Delete(9).ok());
  EXPECT_FALSE(store->Contains(9));
}

TEST(ObjectStoreTest, ListIdsSorted) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);
  for (ObjectId id : {5, 1, 9, 3}) {
    ASSERT_TRUE(store->Put(id, Content("x")).ok());
  }
  EXPECT_EQ(store->ListIds(), (std::vector<ObjectId>{1, 3, 5, 9}));
  EXPECT_EQ(store->object_count(), 4u);
}

TEST(ObjectStoreTest, SpaceReusedAfterDelete) {
  MemPager pager;
  std::unique_ptr<BufferPool> pool;
  BufferPool* raw;
  auto store = MakeStore(&pager, &raw, &pool);
  Bytes obj(1024, 0xAB);
  for (ObjectId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store->Put(id, obj).ok());
  }
  PageId pages_before = pager.page_count();
  for (ObjectId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store->Delete(id).ok());
  }
  for (ObjectId id = 100; id < 150; ++id) {
    ASSERT_TRUE(store->Put(id, obj).ok());
  }
  // Deleted space must be reused: no significant page growth.
  EXPECT_LE(pager.page_count(), pages_before + 1);
}

TEST(ObjectStoreTest, DirectoryRebuiltOnReopen) {
  MemPager pager;
  {
    auto pool = BufferPool::Create(&pager, {.frames = 16, .policy = "lru"}).value();
    auto store = ObjectStore::Open(pool.get()).value();
    ASSERT_TRUE(store->Put(1, Content("persisted")).ok());
    Bytes big(ObjectStore::kChunkDataSize * 2, 0x5A);
    ASSERT_TRUE(store->Put(2, big).ok());
    ASSERT_TRUE(pool->FlushAll().ok());
  }
  {
    auto pool = BufferPool::Create(&pager, {.frames = 16, .policy = "lru"}).value();
    auto store = ObjectStore::Open(pool.get()).value();
    EXPECT_EQ(store->object_count(), 2u);
    EXPECT_EQ(store->Get(1).value(), Content("persisted"));
    EXPECT_EQ(store->Get(2).value().size(), ObjectStore::kChunkDataSize * 2);
  }
}

// ---------------------------------------------------------------- Storm

TEST(StormTest, InMemoryBasics) {
  StormOptions options;
  auto storm = Storm::Open(options).value();
  ASSERT_TRUE(storm->Put(1, Content("alpha needle beta")).ok());
  ASSERT_TRUE(storm->Put(2, Content("gamma delta")).ok());
  EXPECT_EQ(storm->object_count(), 2u);

  auto scan = storm->ScanSearch("needle").value();
  EXPECT_EQ(scan.objects_scanned, 2u);
  EXPECT_EQ(scan.matches, (std::vector<ObjectId>{1}));

  EXPECT_EQ(storm->IndexSearch("needle").value(),
            (std::vector<ObjectId>{1}));
  EXPECT_EQ(storm->IndexSearch("delta").value(),
            (std::vector<ObjectId>{2}));
  EXPECT_TRUE(storm->IndexSearch("nothing").value().empty());
}

TEST(StormTest, IndexTracksDeletes) {
  StormOptions options;
  auto storm = Storm::Open(options).value();
  ASSERT_TRUE(storm->Put(1, Content("needle here")).ok());
  ASSERT_TRUE(storm->Delete(1).ok());
  EXPECT_TRUE(storm->IndexSearch("needle").value().empty());
  EXPECT_TRUE(storm->ScanSearch("needle").value().matches.empty());
}

TEST(StormTest, IndexDisabled) {
  StormOptions options;
  options.build_index = false;
  auto storm = Storm::Open(options).value();
  ASSERT_TRUE(storm->Put(1, Content("needle")).ok());
  EXPECT_TRUE(storm->IndexSearch("needle").status().IsFailedPrecondition());
  EXPECT_EQ(storm->ScanSearch("needle").value().matches.size(), 1u);
}

TEST(StormTest, PersistsAcrossReopen) {
  TempFile file("storm_reopen");
  {
    StormOptions options;
    options.path = file.path();
    auto storm = Storm::Open(options).value();
    ASSERT_TRUE(storm->Put(7, Content("needle persists")).ok());
    ASSERT_TRUE(storm->Put(8, Content("other data")).ok());
    ASSERT_TRUE(storm->Flush().ok());
  }
  {
    StormOptions options;
    options.path = file.path();
    auto storm = Storm::Open(options).value();
    EXPECT_EQ(storm->object_count(), 2u);
    EXPECT_EQ(storm->Get(7).value(), Content("needle persists"));
    // Index is rebuilt from the persisted objects.
    EXPECT_EQ(storm->IndexSearch("needle").value(),
              (std::vector<ObjectId>{7}));
  }
}

TEST(StormTest, FilePagerDetectsCorruption) {
  TempFile file("storm_corrupt");
  {
    StormOptions options;
    options.path = file.path();
    auto storm = Storm::Open(options).value();
    ASSERT_TRUE(storm->Put(1, Bytes(2000, 0x11)).ok());
    ASSERT_TRUE(storm->Flush().ok());
  }
  // Flip a byte in the middle of the first page.
  {
    std::FILE* f = std::fopen(file.path().c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 200, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, 200, SEEK_SET);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  StormOptions options;
  options.path = file.path();
  auto storm = Storm::Open(options);
  EXPECT_FALSE(storm.ok());
  EXPECT_TRUE(storm.status().IsCorruption());
}

TEST(StormTest, UpdateReplacesContentAndIndex) {
  auto storm = Storm::Open({}).value();
  ASSERT_TRUE(storm->Put(1, Content("needle old")).ok());
  ASSERT_TRUE(storm->Update(1, Content("fresh text")).ok());
  EXPECT_EQ(storm->Get(1).value(), Content("fresh text"));
  EXPECT_TRUE(storm->IndexSearch("needle").value().empty());
  EXPECT_EQ(storm->IndexSearch("fresh").value(),
            (std::vector<ObjectId>{1}));
  EXPECT_TRUE(storm->Update(99, Content("x")).IsNotFound());
  EXPECT_EQ(storm->object_count(), 1u);
}

TEST(StormTest, UpdateIsOneAtomicMutation) {
  auto storm = Storm::Open({}).value();
  ASSERT_TRUE(storm->Put(1, Content("needle old")).ok());

  size_t listener_fires = 0;
  uint64_t last_epoch = 0;
  storm->SetMutationListener([&](uint64_t epoch) {
    ++listener_fires;
    last_epoch = epoch;
  });

  const uint64_t before = storm->mutation_epoch();
  ASSERT_TRUE(storm->Update(1, Content("fresh text")).ok());
  EXPECT_EQ(storm->mutation_epoch(), before + 1)
      << "Update must bump the epoch exactly once, not delete+put twice";
  EXPECT_EQ(listener_fires, 1u);
  EXPECT_EQ(last_epoch, before + 1);

  // A miss mutates nothing and stays silent.
  EXPECT_TRUE(storm->Update(99, Content("x")).IsNotFound());
  EXPECT_EQ(storm->mutation_epoch(), before + 1);
  EXPECT_EQ(listener_fires, 1u);
}

TEST(StormTest, UpdateFailurePathKeepsOldObject) {
  auto storm = Storm::Open({}).value();
  ASSERT_TRUE(storm->Put(1, Content("needle old")).ok());
  size_t listener_fires = 0;
  storm->SetMutationListener([&](uint64_t) { ++listener_fires; });
  const uint64_t before = storm->mutation_epoch();

  // Oversized payload: more chunks than a record header can count. The
  // update must fail cleanly with the old object fully retained and no
  // epoch bump / listener fire (the old code lost the object here).
  Bytes huge(ObjectStore::kChunkDataSize * 0x10000, 0);
  Status update = storm->Update(1, huge);
  EXPECT_TRUE(update.IsInvalidArgument()) << update.ToString();
  EXPECT_TRUE(storm->Contains(1));
  EXPECT_EQ(storm->Get(1).value(), Content("needle old"));
  EXPECT_EQ(storm->IndexSearch("needle").value(),
            (std::vector<ObjectId>{1}));
  EXPECT_EQ(storm->mutation_epoch(), before);
  EXPECT_EQ(listener_fires, 0u);
}

TEST(StormTest, QueryCacheDropsStaleEntriesEagerly) {
  StormOptions options;
  options.enable_query_cache = true;
  options.query_cache_entries = 4;
  auto storm = Storm::Open(options).value();
  ASSERT_TRUE(storm->Put(1, Content("needle one")).ok());

  // Fill the cache to capacity with distinct queries.
  for (const char* q : {"needle", "one", "ghost", "gone"}) {
    ASSERT_TRUE(storm->ScanSearch(q).ok());
  }
  EXPECT_EQ(storm->query_cache_size(), 4u);

  // Any mutation makes every entry unreachable; they must be purged, not
  // left to consume query_cache_entries capacity.
  ASSERT_TRUE(storm->Put(2, Content("needle two")).ok());
  EXPECT_EQ(storm->query_cache_size(), 0u);

  // The freed capacity must serve fresh entries: four new queries all
  // fit and all hit on repeat (with stale entries occupying slots, the
  // O(n) LRU scan would have evicted fresh ones instead).
  for (const char* q : {"needle", "one", "two", "fresh"}) {
    ASSERT_TRUE(storm->ScanSearch(q).ok());
  }
  EXPECT_EQ(storm->query_cache_size(), 4u);
  const uint64_t hits_before = storm->query_cache_hits();
  for (const char* q : {"needle", "one", "two", "fresh"}) {
    auto repeat = storm->ScanSearch(q);
    ASSERT_TRUE(repeat.ok());
    EXPECT_TRUE(repeat->from_cache) << q;
  }
  EXPECT_EQ(storm->query_cache_hits(), hits_before + 4);
}

TEST(StormTest, ThousandObjectWorkload) {
  // The paper's per-node setup: 1000 objects of 1 KB.
  StormOptions options;
  options.buffer_frames = 32;
  auto storm = Storm::Open(options).value();
  Bytes obj(1024, 0);
  for (ObjectId id = 0; id < 1000; ++id) {
    std::string text = (id % 100 == 0) ? "needle payload" : "plain payload";
    Bytes content(text.begin(), text.end());
    content.resize(1024, ' ');
    ASSERT_TRUE(storm->Put(id, content).ok());
  }
  auto scan = storm->ScanSearch("needle").value();
  EXPECT_EQ(scan.objects_scanned, 1000u);
  EXPECT_EQ(scan.matches.size(), 10u);
  EXPECT_GT(storm->buffer_pool().evictions(), 0u)
      << "workload must exceed the buffer pool";
}

}  // namespace
}  // namespace bestpeer::storm
