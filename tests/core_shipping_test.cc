#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/node.h"
#include "core/search_agent.h"
#include "core/shipping.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace bestpeer::core {
namespace {

// ---------------------------------------------------------------- cost model

TEST(ShippingCostTest, TinyStoreFavorsDataShipping) {
  BestPeerConfig config;
  net::LinkProfile link;
  ShippingCostInputs inputs;
  inputs.remote_objects = 2;
  inputs.object_size = 1024;
  inputs.class_cached = true;
  EXPECT_EQ(ChooseShippingStrategy(inputs, config, link),
            ShippingStrategy::kDataShipping);
}

TEST(ShippingCostTest, LargeStoreFavorsCodeShipping) {
  BestPeerConfig config;
  net::LinkProfile link;
  ShippingCostInputs inputs;
  inputs.remote_objects = 1000;
  inputs.object_size = 1024;
  inputs.class_cached = true;
  EXPECT_EQ(ChooseShippingStrategy(inputs, config, link),
            ShippingStrategy::kCodeShipping);
}

TEST(ShippingCostTest, UnknownStoreDefaultsToCode) {
  BestPeerConfig config;
  net::LinkProfile link;
  ShippingCostInputs inputs;
  inputs.remote_objects = 0;
  EXPECT_EQ(ChooseShippingStrategy(inputs, config, link),
            ShippingStrategy::kCodeShipping);
}

TEST(ShippingCostTest, ColdClassCacheShiftsCrossover) {
  BestPeerConfig config;
  net::LinkProfile link;
  // Find a store size where the warm-cache choice is code shipping but
  // the cold-cache choice (16 KB class + 8 ms load) is data shipping.
  bool found = false;
  for (size_t objects = 1; objects <= 200; ++objects) {
    ShippingCostInputs warm;
    warm.remote_objects = objects;
    warm.class_cached = true;
    ShippingCostInputs cold = warm;
    cold.class_cached = false;
    if (ChooseShippingStrategy(warm, config, link) ==
            ShippingStrategy::kCodeShipping &&
        ChooseShippingStrategy(cold, config, link) ==
            ShippingStrategy::kDataShipping) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "class shipping cost should move the crossover";
}

TEST(ShippingCostTest, EstimatesAreMonotonicInStoreSize) {
  BestPeerConfig config;
  net::LinkProfile link;
  SimTime prev_code = 0, prev_data = 0;
  for (size_t objects : {1, 10, 100, 1000}) {
    ShippingCostInputs inputs;
    inputs.remote_objects = objects;
    SimTime code = EstimateCodeShippingCost(inputs, config, link);
    SimTime data = EstimateDataShippingCost(inputs, config, link);
    EXPECT_GT(code, prev_code);
    EXPECT_GT(data, prev_data);
    prev_code = code;
    prev_data = data;
  }
}

TEST(ShippingCostTest, Names) {
  EXPECT_EQ(ShippingStrategyName(ShippingStrategy::kCodeShipping), "code");
  EXPECT_EQ(ShippingStrategyName(ShippingStrategy::kDataShipping), "data");
  EXPECT_EQ(ShippingModeName(ShippingMode::kAdaptive), "adaptive");
}

// ---------------------------------------------------------------- end to end

class ShippingFixture : public ::testing::Test {
 protected:
  void Build(const std::vector<size_t>& store_sizes) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<core::SharedInfra>();
    BestPeerConfig config;
    config.max_direct_peers = 8;
    for (size_t i = 0; i < store_sizes.size(); ++i) {
      auto node =
          BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config);
      nodes_.push_back(std::move(node).value());
      nodes_.back()->InitStorage({}).ok();
      bestpeer::Rng rng(1234 + i);
      for (size_t o = 0; o < store_sizes[i]; ++o) {
        std::string text = o == 0 ? "needle text " : "plain text ";
        Bytes content(text.begin(), text.end());
        // Poorly compressible filler so wire-byte comparisons are about
        // payload volume, not codec luck.
        while (content.size() < 512) {
          content.push_back(static_cast<uint8_t>(
              'A' + rng.NextBounded(26) + (rng.NextBool() ? 32 : 0)));
          if (rng.NextBool(0.1)) content.push_back(' ');
        }
        nodes_.back()
            ->ShareObject((static_cast<uint64_t>(i) << 24) | o, content)
            .ok();
      }
    }
    // Star around node 0.
    for (size_t i = 1; i < nodes_.size(); ++i) {
      nodes_[0]->AddDirectPeerLocal(nodes_[i]->node());
      nodes_[i]->AddDirectPeerLocal(nodes_[0]->node());
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<core::SharedInfra> infra_;
  std::vector<std::unique_ptr<BestPeerNode>> nodes_;
};

TEST_F(ShippingFixture, AlwaysDataPullsStoresAndFindsMatches) {
  Build({0, 5, 8});
  uint64_t qid = nodes_[0]
                     ->IssueDirectSearch("needle", ShippingMode::kAlwaysData)
                     .value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->total_indicated(), 2u);  // One match per peer store.
  EXPECT_EQ(session->responder_count(), 2u);
  // Hints learned from the shipped stores.
  EXPECT_EQ(nodes_[0]->StoreSizeHint(nodes_[1]->node()), 5u);
  EXPECT_EQ(nodes_[0]->StoreSizeHint(nodes_[2]->node()), 8u);
}

TEST_F(ShippingFixture, AlwaysCodeUsesAgents) {
  Build({0, 5, 8});
  uint64_t qid = nodes_[0]
                     ->IssueDirectSearch("needle", ShippingMode::kAlwaysCode)
                     .value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  EXPECT_EQ(session->total_indicated(), 2u);
  EXPECT_EQ(nodes_[1]->agent_runtime().agents_executed(), 1u);
  EXPECT_EQ(nodes_[2]->agent_runtime().agents_executed(), 1u);
  // Hints learned from result metadata too.
  EXPECT_EQ(nodes_[0]->StoreSizeHint(nodes_[1]->node()), 5u);
}

TEST_F(ShippingFixture, AdaptiveDefaultsToCodeThenLearns) {
  Build({0, 3, 400});
  // Round 1: no hints — both peers interrogated by agent.
  uint64_t q1 = nodes_[0]
                    ->IssueDirectSearch("needle", ShippingMode::kAdaptive)
                    .value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[1]->agent_runtime().agents_executed(), 1u);
  EXPECT_EQ(nodes_[2]->agent_runtime().agents_executed(), 1u);
  EXPECT_EQ(nodes_[0]->FindSession(q1)->total_indicated(), 2u);

  // Round 2: the 3-object store is now known to be tiny -> data shipped;
  // the 400-object store stays on code shipping.
  uint64_t q2 = nodes_[0]
                    ->IssueDirectSearch("needle", ShippingMode::kAdaptive)
                    .value();
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[1]->agent_runtime().agents_executed(), 1u)
      << "tiny store should be data-shipped on round 2";
  EXPECT_EQ(nodes_[2]->agent_runtime().agents_executed(), 2u)
      << "large store should still be code-shipped";
  EXPECT_EQ(nodes_[0]->FindSession(q2)->total_indicated(), 2u);
}

TEST_F(ShippingFixture, DataShippingMovesMoreBytes) {
  Build({0, 50});
  // Pre-load the agent class so code shipping is measured warm (the
  // one-off 16 KB class transfer is not what this test compares).
  for (const auto& node : nodes_) {
    infra_->code_cache.Load(node->node(), kSearchAgentClass);
  }
  uint64_t before = network_->total_wire_bytes();
  nodes_[0]->IssueDirectSearch("needle", ShippingMode::kAlwaysData).value();
  sim_.RunUntilIdle();
  uint64_t data_bytes = network_->total_wire_bytes() - before;

  before = network_->total_wire_bytes();
  nodes_[0]->IssueDirectSearch("needle", ShippingMode::kAlwaysCode).value();
  sim_.RunUntilIdle();
  uint64_t code_bytes = network_->total_wire_bytes() - before;
  EXPECT_GT(data_bytes, code_bytes * 3)
      << "pulling a 50-object store must dwarf agent traffic";
}

}  // namespace
}  // namespace bestpeer::core
