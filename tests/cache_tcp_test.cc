// The result cache and hot-answer replication over real loopback TCP
// sockets (net::TcpNet): repeat queries must keep full recall while
// responders switch to not-modified replies, replicas must be pushed to
// the reactor-driven receiver, and their TTL leases must expire on the
// real-time clock. Runs under the TSan job to shake out races between
// the reactor thread and timer-driven cache/replica state.

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cache/result_cache.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "net/tcp_transport.h"
#include "workload/corpus.h"

namespace bestpeer {
namespace {

constexpr size_t kNodes = 5;  // Star: 0 is the base, 1..4 are leaves.
constexpr size_t kObjectsPerNode = 16;
constexpr size_t kMatchesPerNode = 2;
constexpr size_t kQueries = 5;
constexpr size_t kExpectedUnique = (kNodes - 1) * kMatchesPerNode;

TEST(CacheTcpTest, RepeatQueriesReplicateAndExpireOverRealSockets) {
  net::TcpNet tcpnet;
  core::SharedInfra infra;
  core::BestPeerConfig config;
  config.max_direct_peers = kNodes;
  config.strategy = "none";
  config.default_ttl = 4;
  config.enable_result_cache = true;
  config.enable_replication = true;
  config.replica_hot_threshold = 2;
  config.replica_cooldown = Millis(5);
  config.replica_ttl = Millis(20);

  workload::CorpusGenerator corpus({512, 300, 0.8}, 7);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    auto node =
        core::BestPeerNode::Create(tcpnet.AddNode().value(), &infra, config);
    ASSERT_TRUE(node.ok());
    ASSERT_TRUE((*node)->InitStorage({}).ok());
    for (size_t o = 0; o < kObjectsPerNode; ++o) {
      bool match = i != 0 && o < kMatchesPerNode;
      ASSERT_TRUE((*node)
                      ->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                                    corpus.MakeObject(match))
                      .ok());
    }
    infra.code_cache.Load((*node)->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }
  for (size_t i = 1; i < kNodes; ++i) {
    nodes[0]->AddDirectPeerLocal(nodes[i]->node());
    nodes[i]->AddDirectPeerLocal(nodes[0]->node());
  }

  tcpnet.Start();
  auto wait_until = [&](const std::function<bool()>& done_on_reactor) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  for (size_t q = 0; q < kQueries; ++q) {
    uint64_t query_id = 0;
    tcpnet.Run([&]() {
      query_id =
          nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle).value();
    });
    ASSERT_TRUE(wait_until([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      return s != nullptr && s->unique_answers() >= kExpectedUnique;
    })) << "query " << q << " never reached full recall";
    size_t unique = 0;
    tcpnet.Run([&]() {
      unique = nodes[0]->FindSession(query_id)->unique_answers();
    });
    EXPECT_EQ(unique, kExpectedUnique) << "query " << q;
  }

  // Leaves crossed the hot threshold, so their answers were pushed to
  // the base; each lease then expires on the reactor's real-time clock.
  EXPECT_TRUE(wait_until([&]() {
    return nodes[0]->replicas_stored() > 0 &&
           nodes[0]->replicas_expired() == nodes[0]->replicas_stored();
  })) << "replica leases never expired";

  uint64_t responder_hits = 0;
  uint64_t remote_hits = 0;
  uint64_t replica_count = 0;
  tcpnet.Run([&]() {
    for (const auto& node : nodes) {
      if (cache::ResultCache* rc = node->result_cache()) {
        responder_hits += rc->hits();
      }
    }
    remote_hits = nodes[0]->cache_remote_hits();
    replica_count = nodes[0]->replica_manager()->replica_count();
  });
  tcpnet.Stop();

  EXPECT_GT(responder_hits, 0u)
      << "repeat queries must hit the responder caches";
  EXPECT_GT(remote_hits, 0u)
      << "the base must materialize not-modified replies";
  EXPECT_EQ(replica_count, 0u) << "expired leases must be forgotten";
}

}  // namespace
}  // namespace bestpeer
