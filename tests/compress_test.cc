#include <gtest/gtest.h>

#include "compress/codec.h"
#include "compress/lzss_codec.h"
#include "util/rng.h"

namespace bestpeer {
namespace {

Bytes RandomBytes(Rng& rng, size_t n) {
  Bytes b(n);
  for (auto& x : b) x = static_cast<uint8_t>(rng.NextBounded(256));
  return b;
}

Bytes RepetitiveText(size_t n) {
  std::string s;
  while (s.size() < n) s += "the quick brown fox jumps over the lazy dog ";
  s.resize(n);
  return ToBytes(s);
}

TEST(NullCodecTest, Identity) {
  NullCodec codec;
  Bytes data = ToBytes("payload");
  EXPECT_EQ(codec.Compress(data).value(), data);
  EXPECT_EQ(codec.Decompress(data).value(), data);
  EXPECT_EQ(codec.name(), "null");
}

TEST(LzssCodecTest, EmptyInput) {
  LzssCodec codec;
  Bytes compressed = codec.Compress({}).value();
  EXPECT_EQ(codec.Decompress(compressed).value(), Bytes{});
}

TEST(LzssCodecTest, SingleByte) {
  LzssCodec codec;
  Bytes data{42};
  EXPECT_EQ(codec.Decompress(codec.Compress(data).value()).value(), data);
}

TEST(LzssCodecTest, TextRoundTripAndShrinks) {
  LzssCodec codec;
  Bytes data = RepetitiveText(4096);
  Bytes compressed = codec.Compress(data).value();
  EXPECT_LT(compressed.size(), data.size() / 2)
      << "repetitive text should compress well";
  EXPECT_EQ(codec.Decompress(compressed).value(), data);
}

TEST(LzssCodecTest, AllSameByte) {
  LzssCodec codec;
  Bytes data(10000, 0x77);
  Bytes compressed = codec.Compress(data).value();
  EXPECT_LT(compressed.size(), 2000u);
  EXPECT_EQ(codec.Decompress(compressed).value(), data);
}

TEST(LzssCodecTest, IncompressibleRandomStillRoundTrips) {
  Rng rng(99);
  LzssCodec codec;
  Bytes data = RandomBytes(rng, 8192);
  Bytes compressed = codec.Compress(data).value();
  EXPECT_EQ(codec.Decompress(compressed).value(), data);
}

TEST(LzssCodecTest, LongRangeMatchesBeyondWindowAreSafe) {
  // Pattern repeats with period > window: matches cannot reach back.
  LzssCodec codec;
  Bytes data;
  for (int rep = 0; rep < 4; ++rep) {
    Rng rng(5);  // Same stream each rep → repeats at distance ~5000.
    Bytes chunk = RandomBytes(rng, 5000);
    data.insert(data.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(codec.Decompress(codec.Compress(data).value()).value(), data);
}

TEST(LzssCodecTest, DecompressRejectsTruncation) {
  LzssCodec codec;
  Bytes compressed = codec.Compress(RepetitiveText(1000)).value();
  compressed.resize(compressed.size() / 2);
  EXPECT_FALSE(codec.Decompress(compressed).ok());
}

TEST(LzssCodecTest, EveryStrictPrefixFailsToDecode) {
  // The stream is self-delimiting (declared length + token stream), so no
  // strict prefix of a valid stream may decode successfully — a cut
  // anywhere must surface as an error, never as silently short output.
  Rng rng(4242);
  LzssCodec codec;
  const std::vector<Bytes> corpora = {
      Bytes{},                  // Header-only stream.
      Bytes{42},                // Single literal.
      RepetitiveText(600),      // Match-heavy stream.
      RandomBytes(rng, 600),    // Literal-heavy (incompressible) stream.
  };
  for (const Bytes& data : corpora) {
    Bytes compressed = codec.Compress(data).value();
    ASSERT_EQ(codec.Decompress(compressed).value(), data);
    for (size_t cut = 0; cut < compressed.size(); ++cut) {
      Bytes prefix(compressed.begin(),
                   compressed.begin() + static_cast<ptrdiff_t>(cut));
      EXPECT_FALSE(codec.Decompress(prefix).ok())
          << "prefix of " << cut << "/" << compressed.size()
          << " bytes decoded (input size " << data.size() << ")";
    }
  }
}

TEST(LzssCodecTest, DecompressRejectsBadDistance) {
  // Token stream claiming a match before any output exists.
  BinaryWriter w;
  w.WriteVarint(10);   // Declared length.
  w.WriteU8(0x01);     // First token is a match.
  w.WriteU8(0xFF);     // Packed: large distance.
  w.WriteU8(0xFF);
  LzssCodec codec;
  auto r = codec.Decompress(w.Take());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(LzssCodecTest, DecompressRejectsTrailingGarbage) {
  LzssCodec codec;
  Bytes compressed = codec.Compress(ToBytes("abc")).value();
  compressed.push_back(0x00);
  auto r = codec.Decompress(compressed);
  EXPECT_FALSE(r.ok());
}

TEST(MakeCodecTest, Registry) {
  EXPECT_EQ(MakeCodec("null").value()->name(), "null");
  EXPECT_EQ(MakeCodec("lzss").value()->name(), "lzss");
  EXPECT_FALSE(MakeCodec("gzip9000").ok());
}

// Robustness: decompressing arbitrary garbage must never crash or hang —
// it either errors out or produces some bounded output.
class LzssFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzssFuzzTest, DecompressGarbageNeverCrashes) {
  Rng rng(GetParam());
  LzssCodec codec;
  for (int iter = 0; iter < 200; ++iter) {
    Bytes garbage = RandomBytes(rng, rng.NextBounded(512));
    auto result = codec.Decompress(garbage);
    if (result.ok()) {
      // Whatever it decoded must re-compress/round-trip consistently.
      auto again = codec.Compress(result.value());
      ASSERT_TRUE(again.ok());
    }
  }
}

TEST_P(LzssFuzzTest, BitFlippedCompressedDataIsHandled) {
  Rng rng(GetParam() ^ 0xF00D);
  LzssCodec codec;
  Bytes original = RepetitiveText(2048);
  Bytes compressed = codec.Compress(original).value();
  for (int iter = 0; iter < 100; ++iter) {
    Bytes mutated = compressed;
    size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
    auto result = codec.Decompress(mutated);
    if (result.ok()) {
      // A lucky flip may still decode; output length is bounded by the
      // declared length varint (or it would have errored).
      ASSERT_LE(result->size(), original.size() * 2 + 16);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzssFuzzTest, ::testing::Values(11, 22, 33));

// Property: round trip holds across sizes and seeds, mixed content.
struct LzssParam {
  uint64_t seed;
  size_t size;
};

class LzssPropertyTest : public ::testing::TestWithParam<LzssParam> {};

TEST_P(LzssPropertyTest, RoundTrip) {
  const auto& p = GetParam();
  Rng rng(p.seed);
  LzssCodec codec;
  // Mix random and repetitive regions to hit literals and matches.
  Bytes data;
  while (data.size() < p.size) {
    if (rng.NextBool(0.5)) {
      Bytes r = RandomBytes(rng, rng.NextBounded(200) + 1);
      data.insert(data.end(), r.begin(), r.end());
    } else {
      size_t n = rng.NextBounded(300) + 3;
      uint8_t b = static_cast<uint8_t>(rng.NextBounded(256));
      data.insert(data.end(), n, b);
    }
  }
  data.resize(p.size);
  auto compressed = codec.Compress(data);
  ASSERT_TRUE(compressed.ok());
  auto back = codec.Decompress(compressed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, LzssPropertyTest,
    ::testing::Values(LzssParam{1, 1}, LzssParam{2, 17}, LzssParam{3, 256},
                      LzssParam{4, 1024}, LzssParam{5, 4095},
                      LzssParam{6, 4096}, LzssParam{7, 4097},
                      LzssParam{8, 20000}, LzssParam{9, 65536}));

}  // namespace
}  // namespace bestpeer
