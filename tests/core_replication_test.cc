#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

namespace bestpeer::core {
namespace {

class ReplicationFixture : public ::testing::Test {
 protected:
  /// Line overlay of `count` nodes; node `owner` holds `matches` matching
  /// objects (ids owner<<24 | i).
  void Build(size_t count, size_t owner, size_t matches) {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<SharedInfra>();
    BestPeerConfig config;
    config.max_direct_peers = 4;
    for (size_t i = 0; i < count; ++i) {
      auto node =
          BestPeerNode::Create(fleet_->AddNode(), infra_.get(), config)
              .value();
      node->InitStorage({}).ok();
      nodes_.push_back(std::move(node));
    }
    for (size_t i = 0; i + 1 < count; ++i) {
      nodes_[i]->AddDirectPeerLocal(nodes_[i + 1]->node());
      nodes_[i + 1]->AddDirectPeerLocal(nodes_[i]->node());
    }
    for (size_t m = 0; m < matches; ++m) {
      std::string text = "needle replicated data";
      Bytes content(text.begin(), text.end());
      content.resize(256, ' ');
      owner_ids_.push_back((static_cast<uint64_t>(owner) << 24) | m);
      nodes_[owner]->ShareObject(owner_ids_.back(), content).ok();
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<SharedInfra> infra_;
  std::vector<std::unique_ptr<BestPeerNode>> nodes_;
  std::vector<storm::ObjectId> owner_ids_;
};

TEST_F(ReplicationFixture, PushStoresCopiesAtPeers) {
  Build(3, 1, 4);
  ASSERT_TRUE(nodes_[1]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->replicas_stored(), 4u);
  EXPECT_EQ(nodes_[2]->replicas_stored(), 4u);
  for (storm::ObjectId id : owner_ids_) {
    EXPECT_TRUE(nodes_[0]->storage()->Contains(id));
    EXPECT_TRUE(nodes_[2]->storage()->Contains(id));
  }
}

TEST_F(ReplicationFixture, RepushIsIdempotent) {
  Build(2, 1, 2);
  ASSERT_TRUE(nodes_[1]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();
  ASSERT_TRUE(nodes_[1]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();
  EXPECT_EQ(nodes_[0]->replicas_stored(), 2u) << "duplicates must be kept once";
  EXPECT_EQ(nodes_[0]->storage()->object_count(), 2u);
}

TEST_F(ReplicationFixture, ReplicateUnknownObjectFails) {
  Build(2, 1, 1);
  EXPECT_FALSE(nodes_[1]->ReplicateObjects({0xDEAD}).ok());
}

TEST_F(ReplicationFixture, QueriesDeduplicateReplicatedAnswers) {
  // Owner at the far end of a 4-line; replicate toward the base.
  Build(4, 3, 5);
  ASSERT_TRUE(nodes_[3]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();
  // Now nodes 2 and 3 both hold the objects. A query sees 10 raw answers
  // but 5 unique ones.
  uint64_t qid = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(qid);
  EXPECT_EQ(session->total_answers(), 10u);
  EXPECT_EQ(session->unique_answers(), 5u);
  EXPECT_EQ(session->responder_count(), 2u);
}

TEST_F(ReplicationFixture, ReplicasAnswerCloserAndFaster) {
  // All unique answers at the end of a 6-line; the first response
  // arrives earlier once replicas exist nearer to the base.
  Build(6, 5, 5);
  uint64_t q1 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  SimTime first_before =
      nodes_[0]->FindSession(q1)->responses().front().time -
      nodes_[0]->FindSession(q1)->start_time();

  ASSERT_TRUE(nodes_[5]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();
  // Node 4 now also holds the answers; a second replication round from
  // node 4 pushes them to node 3.
  ASSERT_TRUE(nodes_[4]->ReplicateObjects(owner_ids_).ok());
  sim_.RunUntilIdle();

  uint64_t q2 = nodes_[0]->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const QuerySession* session = nodes_[0]->FindSession(q2);
  SimTime first_after =
      session->responses().front().time - session->start_time();
  EXPECT_LT(first_after, first_before)
      << "replicas closer to the base must answer sooner";
  EXPECT_EQ(session->unique_answers(), 5u)
      << "replication must not change the unique answer set";
}

}  // namespace
}  // namespace bestpeer::core
