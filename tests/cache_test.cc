// Unit tests for the query-result cache subsystem: the TinyLFU frequency
// sketch, ResultCache admission/eviction/epoch-invalidation semantics,
// ReplicaManager promotion rate-limiting and expiry generations, and the
// shared query-normalization helper both cache layers key on.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cache/frequency_sketch.h"
#include "cache/replica_manager.h"
#include "cache/result_cache.h"
#include "storm/query_expr.h"
#include "storm/storm.h"
#include "util/hash.h"
#include "util/metrics.h"

namespace bestpeer::cache {
namespace {

// --- frequency sketch -----------------------------------------------------

TEST(FrequencySketchTest, EstimateTracksRecordings) {
  FrequencySketch sketch(1024);
  const uint64_t hot = Fnv1a64("hot");
  const uint64_t cold = Fnv1a64("cold");
  EXPECT_EQ(sketch.Estimate(hot), 0u);
  for (int i = 0; i < 5; ++i) sketch.Record(hot);
  EXPECT_GE(sketch.Estimate(hot), 5u);
  EXPECT_EQ(sketch.Estimate(cold), 0u);
  EXPECT_EQ(sketch.recordings(), 5u);
}

TEST(FrequencySketchTest, CountersSaturateAtFifteen) {
  FrequencySketch sketch(1024);
  const uint64_t h = Fnv1a64("saturate");
  for (int i = 0; i < 100; ++i) sketch.Record(h);
  EXPECT_EQ(sketch.Estimate(h), 15u);
}

TEST(FrequencySketchTest, AgingHalvesEstimates) {
  FrequencySketch sketch(16);  // Small width => sample period 160.
  const uint64_t hot = Fnv1a64("hot");
  for (int i = 0; i < 30; ++i) sketch.Record(hot);
  ASSERT_EQ(sketch.Estimate(hot), 15u);
  // Flood with distinct keys until the sample period trips.
  for (int i = 0; i < 200 && sketch.agings() == 0; ++i) {
    sketch.Record(Fnv1a64("filler" + std::to_string(i)));
  }
  ASSERT_GE(sketch.agings(), 1u) << "sample period never tripped";
  EXPECT_LE(sketch.Estimate(hot), 7u)
      << "halving must decay a saturated counter";
}

// --- result cache ---------------------------------------------------------

CachedSlice Slice(uint64_t source, uint64_t epoch, size_t n_ids = 4) {
  CachedSlice s;
  s.source = source;
  s.epoch = epoch;
  s.hops = 2;
  for (size_t i = 0; i < n_ids; ++i) s.ids.push_back(100 + i);
  return s;
}

TEST(ResultCacheTest, MissThenInsertThenHit) {
  ResultCache rc({});
  EXPECT_EQ(rc.ProbeSlice("needle", 7, 1), nullptr);
  EXPECT_EQ(rc.misses(), 1u);

  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, 1)));
  const CachedSlice* hit = rc.ProbeSlice("needle", 7, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->source, 7u);
  EXPECT_EQ(hit->ids.size(), 4u);
  EXPECT_EQ(rc.hits(), 1u);
  EXPECT_EQ(rc.insertions(), 1u);
  EXPECT_GT(rc.bytes_used(), 0u);
}

TEST(ResultCacheTest, StaleEpochIsDroppedNeverServed) {
  ResultCache rc({});
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, /*epoch=*/1)));
  // The producer's store mutated: probing at the new epoch must not
  // return the old slice, and must drop it.
  EXPECT_EQ(rc.ProbeSlice("needle", 7, /*current_epoch=*/2), nullptr);
  EXPECT_EQ(rc.invalidations(), 1u);
  // The stale slice is gone even for a probe at the original epoch.
  EXPECT_EQ(rc.ProbeSlice("needle", 7, 1), nullptr);
  EXPECT_EQ(rc.hits(), 0u);
  EXPECT_EQ(rc.slice_count(), 0u);
  EXPECT_EQ(rc.bytes_used(), 0u);
}

TEST(ResultCacheTest, ByteBudgetEvictsLruWhenAdmissionDisabled) {
  ResultCacheOptions options;
  // Each slice accounts key(2) + 4 ids (32) + 64 overhead = 98 bytes, so
  // three entries fit a 300-byte budget and a fourth forces an eviction.
  options.byte_budget = 300;
  options.lru_only = true;
  ResultCache rc(options);
  ASSERT_TRUE(rc.InsertSlice("q0", Slice(1, 1)));
  ASSERT_TRUE(rc.InsertSlice("q1", Slice(1, 1)));
  ASSERT_TRUE(rc.InsertSlice("q2", Slice(1, 1)));
  EXPECT_EQ(rc.evictions(), 0u);
  ASSERT_NE(rc.SlicesFor("q0"), nullptr);  // Touch: q1 becomes the LRU.

  ASSERT_TRUE(rc.InsertSlice("q3", Slice(1, 1)));
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_LE(rc.bytes_used(), options.byte_budget);
  EXPECT_EQ(rc.SlicesFor("q1"), nullptr) << "LRU entry must go first";
  EXPECT_NE(rc.SlicesFor("q0"), nullptr);
  EXPECT_NE(rc.SlicesFor("q3"), nullptr);
}

TEST(ResultCacheTest, TinyLfuRejectsColdAdmitsHot) {
  ResultCacheOptions options;
  options.byte_budget = 300;
  ResultCache rc(options);
  for (const char* key : {"q0", "q1", "q2"}) {
    for (int i = 0; i < 3; ++i) rc.RecordAccess(key);
    ASSERT_TRUE(rc.InsertSlice(key, Slice(1, 1)));
  }

  // A never-accessed key must not displace a resident hot one.
  EXPECT_FALSE(rc.InsertSlice("q9", Slice(1, 1)));
  EXPECT_EQ(rc.admission_rejected(), 1u);
  EXPECT_EQ(rc.entry_count(), 3u);
  EXPECT_EQ(rc.evictions(), 0u);

  // Once the sketch sees it as hotter than the LRU victim, it gets in.
  for (int i = 0; i < 5; ++i) rc.RecordAccess("q9");
  EXPECT_TRUE(rc.InsertSlice("q9", Slice(1, 1)));
  EXPECT_EQ(rc.entry_count(), 3u);
  EXPECT_EQ(rc.evictions(), 1u);
  EXPECT_NE(rc.SlicesFor("q9"), nullptr);
}

TEST(ResultCacheTest, LruOnlyModeSkipsAdmission) {
  ResultCacheOptions options;
  options.byte_budget = 300;
  options.lru_only = true;
  ResultCache rc(options);
  for (const char* key : {"q0", "q1", "q2"}) {
    for (int i = 0; i < 3; ++i) rc.RecordAccess(key);
    ASSERT_TRUE(rc.InsertSlice(key, Slice(1, 1)));
  }
  // Same cold insert as above: pure LRU lets it straight in.
  EXPECT_TRUE(rc.InsertSlice("q9", Slice(1, 1)));
  EXPECT_EQ(rc.admission_rejected(), 0u);
  EXPECT_EQ(rc.evictions(), 1u);
}

TEST(ResultCacheTest, OversizeInsertIsRejected) {
  ResultCacheOptions options;
  options.byte_budget = 100;
  ResultCache rc(options);
  EXPECT_FALSE(rc.InsertSlice("big", Slice(1, 1, /*n_ids=*/20)));
  EXPECT_EQ(rc.entry_count(), 0u);
  EXPECT_EQ(rc.bytes_used(), 0u);
}

TEST(ResultCacheTest, ReinsertSameSourceReplacesAndReaccounts) {
  ResultCache rc({});
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, 1, 4)));
  const size_t before = rc.bytes_used();
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, 2, 8)));
  EXPECT_EQ(rc.slice_count(), 1u);
  EXPECT_EQ(rc.bytes_used(), before + 4 * sizeof(uint64_t));
  const CachedSlice* hit = rc.ProbeSlice("needle", 7, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->ids.size(), 8u);
}

TEST(ResultCacheTest, SlicesForCollectsPerSourceAndDropRemoves) {
  ResultCache rc({});
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, 1)));
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(8, 3)));
  const auto* slices = rc.SlicesFor("needle");
  ASSERT_NE(slices, nullptr);
  EXPECT_EQ(slices->size(), 2u);
  EXPECT_EQ(slices->at(8).epoch, 3u);

  rc.DropSlice("needle", 7);
  EXPECT_EQ(rc.slice_count(), 1u);
  rc.DropSlice("needle", 8);
  EXPECT_EQ(rc.entry_count(), 0u);
  EXPECT_EQ(rc.bytes_used(), 0u);
  rc.DropSlice("needle", 8);  // No-op when absent.
}

TEST(ResultCacheTest, ExportsMetrics) {
  metrics::Registry registry;
  ResultCacheOptions options;
  options.metrics = &registry;
  ResultCache rc(options);
  rc.ProbeSlice("needle", 7, 1);
  ASSERT_TRUE(rc.InsertSlice("needle", Slice(7, 1)));
  rc.ProbeSlice("needle", 7, 1);
  rc.ProbeSlice("needle", 7, 2);  // Stale: invalidation.

  auto snapshot = registry.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.Value("cache.hits"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("cache.misses"), 2.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("cache.insertions"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("cache.invalidations"), 1.0);
  EXPECT_DOUBLE_EQ(snapshot.Value("cache.bytes"), 0.0);
}

// --- replica manager ------------------------------------------------------

TEST(ReplicaManagerTest, PromotionNeedsThresholdAndRespectsCooldown) {
  ReplicaManagerOptions options;
  options.hot_threshold = 3;
  options.cooldown = Millis(10);
  ReplicaManager mgr(options);

  EXPECT_FALSE(mgr.ShouldPromote("needle", 2, 0));
  EXPECT_TRUE(mgr.ShouldPromote("needle", 3, 0));
  EXPECT_FALSE(mgr.ShouldPromote("needle", 15, Millis(5)))
      << "within the cooldown window";
  EXPECT_TRUE(mgr.ShouldPromote("needle", 15, Millis(10)));
  EXPECT_EQ(mgr.promotions(), 2u);
}

TEST(ReplicaManagerTest, TopKSlotsAgeOutStaleKeys) {
  ReplicaManagerOptions options;
  options.hot_threshold = 1;
  options.top_k = 1;
  options.cooldown = Millis(10);
  ReplicaManager mgr(options);

  EXPECT_TRUE(mgr.ShouldPromote("a", 5, 0));
  EXPECT_FALSE(mgr.ShouldPromote("b", 5, Millis(1)))
      << "the single slot is held by a";
  // Past 4x cooldown without a re-promotion, a's slot is reclaimed.
  EXPECT_TRUE(mgr.ShouldPromote("b", 5, Millis(41)));
}

TEST(ReplicaManagerTest, ExpiryGenerationGuard) {
  ReplicaManager mgr({});
  const uint64_t gen1 = mgr.NoteStored(0xAB);
  const uint64_t gen2 = mgr.NoteStored(0xAB);  // Re-push re-arms the lease.
  EXPECT_NE(gen1, gen2);
  EXPECT_FALSE(mgr.ShouldExpire(0xAB, gen1))
      << "an orphaned timer from the first push must not fire";
  EXPECT_TRUE(mgr.ShouldExpire(0xAB, gen2));
  EXPECT_TRUE(mgr.Tracks(0xAB));

  mgr.Remove(0xAB);
  EXPECT_FALSE(mgr.Tracks(0xAB));
  EXPECT_FALSE(mgr.ShouldExpire(0xAB, gen2));
  EXPECT_EQ(mgr.replica_count(), 0u);
}

TEST(ReplicaManagerTest, QosScoreOrdersByBenefitRttAndFailures) {
  PeerQoS base;  // Neutral: no history, default bandwidth.
  const double neutral = ReplicaManager::Score(base);
  EXPECT_GT(neutral, 0.0);

  PeerQoS good = base;
  good.benefit = 4;
  EXPECT_GT(ReplicaManager::Score(good), neutral)
      << "answer-benefit must raise the placement score";

  PeerQoS slow = base;
  slow.rtt_us = 5000;
  EXPECT_LT(ReplicaManager::Score(slow), neutral)
      << "observed RTT must lower the placement score";

  PeerQoS flaky = base;
  flaky.failures = 1;
  PeerQoS flakier = base;
  flakier.failures = 2;
  EXPECT_LT(ReplicaManager::Score(flaky), neutral);
  // The penalty is quadratic in consecutive failures.
  EXPECT_LT(ReplicaManager::Score(flakier) * 2,
            ReplicaManager::Score(flaky));

  PeerQoS narrow = base;
  narrow.bandwidth_bytes_per_us = base.bandwidth_bytes_per_us / 4;
  EXPECT_LT(ReplicaManager::Score(narrow), neutral);
}

TEST(ReplicaManagerTest, SelectTargetsIsDeterministicTopByScore) {
  PeerQoS strong;
  strong.benefit = 10;
  PeerQoS weak;
  weak.rtt_us = 20000;
  weak.failures = 3;
  PeerQoS neutral;

  std::vector<std::pair<NodeId, PeerQoS>> candidates = {
      {9, weak}, {4, neutral}, {2, strong}, {7, neutral}};
  std::vector<NodeId> picked =
      ReplicaManager::SelectTargets(candidates, /*fanout=*/3);
  // Best score first; the equal-score pair breaks the tie by node id.
  ASSERT_EQ(picked.size(), 3u);
  EXPECT_EQ(picked[0], 2u);
  EXPECT_EQ(picked[1], 4u);
  EXPECT_EQ(picked[2], 7u);

  // Input order must not matter, and fanout may exceed the pool.
  std::vector<std::pair<NodeId, PeerQoS>> shuffled = {
      {7, neutral}, {2, strong}, {9, weak}, {4, neutral}};
  EXPECT_EQ(ReplicaManager::SelectTargets(shuffled, 3), picked);
  EXPECT_EQ(ReplicaManager::SelectTargets(candidates, 99).size(), 4u);
  EXPECT_TRUE(ReplicaManager::SelectTargets({}, 2).empty());
}

TEST(ReplicaManagerTest, RevokeFromDropsOnlyThatSourcesLeases) {
  ReplicaManager mgr({});
  mgr.NoteStored(0xA1, /*source=*/5);
  const uint64_t b_gen = mgr.NoteStored(0xB2, /*source=*/6);
  mgr.NoteStored(0xC3, /*source=*/5);

  std::vector<uint64_t> revoked = mgr.RevokeFrom(5);
  ASSERT_EQ(revoked.size(), 2u);
  EXPECT_EQ(mgr.leases_revoked(), 2u);
  EXPECT_FALSE(mgr.Tracks(0xA1));
  EXPECT_FALSE(mgr.Tracks(0xC3));
  EXPECT_TRUE(mgr.Tracks(0xB2))
      << "a different pusher's lease must survive the revocation";
  EXPECT_TRUE(mgr.ShouldExpire(0xB2, b_gen));

  // Re-pushing a revoked object from a new source re-arms it cleanly.
  const uint64_t regen = mgr.NoteStored(0xA1, /*source=*/6);
  EXPECT_TRUE(mgr.ShouldExpire(0xA1, regen));
  EXPECT_TRUE(mgr.RevokeFrom(5).empty());
  EXPECT_EQ(mgr.leases_revoked(), 2u);
}

// --- query normalization (the shared cache key) ---------------------------

TEST(QueryNormalizationTest, OrderCaseAndDuplicatesCollapse) {
  using storm::QueryExpr;
  const std::string canonical = QueryExpr::NormalizeQuery("a b").value();
  EXPECT_EQ(QueryExpr::NormalizeQuery("b a").value(), canonical);
  EXPECT_EQ(QueryExpr::NormalizeQuery("B  A").value(), canonical);
  EXPECT_EQ(QueryExpr::NormalizeQuery("a b a").value(), canonical);
  EXPECT_EQ(QueryExpr::NormalizeQuery("x OR y").value(),
            QueryExpr::NormalizeQuery("y OR x").value());
  EXPECT_NE(QueryExpr::NormalizeQuery("a").value(), canonical);
  EXPECT_FALSE(QueryExpr::NormalizeQuery("").ok());
  EXPECT_FALSE(QueryExpr::NormalizeQuery("a OR").ok());
}

TEST(QueryNormalizationTest, StormQueryCacheSharesOneEntryAcrossVariants) {
  storm::StormOptions options;
  options.enable_query_cache = true;
  auto storm = storm::Storm::Open(options).value();
  const std::string text = "alpha beta";
  storm->Put(1, Bytes(text.begin(), text.end())).ok();
  auto first = storm->ScanSearch("beta alpha").value();
  EXPECT_FALSE(first.from_cache);
  auto second = storm->ScanSearch("Alpha Beta").value();
  EXPECT_TRUE(second.from_cache)
      << "keyword order and case variants must share one cache key";
  EXPECT_EQ(second.matches, first.matches);
}

}  // namespace
}  // namespace bestpeer::cache
