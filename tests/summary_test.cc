#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "storm/content_summary.h"
#include "storm/keyword_index.h"
#include "storm/query_expr.h"
#include "util/bytes.h"
#include "util/strings.h"

namespace bestpeer {
namespace {

using storm::ContentSummary;
using storm::KeywordIndex;
using storm::QueryExpr;

KeywordIndex SmallIndex() {
  KeywordIndex index;
  index.Add(1, "alpha beta gamma");
  index.Add(2, "alpha delta");
  index.Add(3, "alpha");
  return index;
}

// ---------------------------------------------------------------- digest

TEST(ContentSummaryTest, NoFalseNegatives) {
  KeywordIndex index = SmallIndex();
  ContentSummary summary = ContentSummary::Build(index, 7);
  EXPECT_EQ(summary.epoch(), 7u);
  EXPECT_EQ(summary.keyword_count(), 4u);
  for (const char* kw : {"alpha", "beta", "gamma", "delta"}) {
    EXPECT_TRUE(summary.MayContain(kw)) << kw;
    // Lookups fold case exactly like the index does.
    EXPECT_TRUE(summary.MayContain(ToLower(kw)));
  }
  // Bloom filters admit false positives but at 10 bits/key they must be
  // rare; a large sample of absent keywords stays overwhelmingly negative.
  size_t false_positives = 0;
  for (int i = 0; i < 200; ++i) {
    if (summary.MayContain("absent" + std::to_string(i))) ++false_positives;
  }
  EXPECT_LT(false_positives, 10u);
}

TEST(ContentSummaryTest, EmptyIndexContainsNothing) {
  KeywordIndex index;
  ContentSummary summary = ContentSummary::Build(index, 1);
  EXPECT_FALSE(summary.MayContain("anything"));
  EXPECT_FALSE(summary.MayMatch(QueryExpr::Parse("anything").value()));
  // Default-constructed (no summary received yet) behaves the same.
  EXPECT_FALSE(ContentSummary().MayContain("anything"));
}

TEST(ContentSummaryTest, MayMatchFollowsDnfBranches) {
  ContentSummary summary = ContentSummary::Build(SmallIndex(), 1);
  // Single AND branch: all terms present -> may match.
  EXPECT_TRUE(summary.MayMatch(QueryExpr::Parse("alpha beta").value()));
  // One definitely-absent term kills the branch.
  EXPECT_FALSE(summary.MayMatch(QueryExpr::Parse("alpha zzqqxx9").value()));
  // ...but OR only needs one viable branch.
  EXPECT_TRUE(summary.MayMatch(QueryExpr::Parse("alpha zzqqxx9 OR delta").value()));
  EXPECT_FALSE(summary.MayMatch(QueryExpr::Parse("zzqqxx9 OR qqzzyy8").value()));
}

TEST(ContentSummaryTest, TopKeywordsRankByPostingCount) {
  ContentSummary summary = ContentSummary::Build(SmallIndex(), 1);
  ASSERT_FALSE(summary.top_keywords().empty());
  EXPECT_EQ(summary.top_keywords().front().first, "alpha");
  EXPECT_EQ(summary.top_keywords().front().second, 3u);
  // Counts never increase down the list.
  for (size_t i = 1; i < summary.top_keywords().size(); ++i) {
    EXPECT_GE(summary.top_keywords()[i - 1].second,
              summary.top_keywords()[i].second);
  }
}

// ---------------------------------------------------------------- codec

TEST(ContentSummaryCodecTest, RoundTrip) {
  ContentSummary original = ContentSummary::Build(SmallIndex(), 42);
  Bytes encoded = original.Encode();
  auto decoded = ContentSummary::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch(), 42u);
  EXPECT_EQ(decoded->keyword_count(), original.keyword_count());
  EXPECT_EQ(decoded->filter_bits(), original.filter_bits());
  EXPECT_EQ(decoded->top_keywords(), original.top_keywords());
  for (const char* kw : {"alpha", "beta", "gamma", "delta", "nothere"}) {
    EXPECT_EQ(decoded->MayContain(kw), original.MayContain(kw)) << kw;
  }
  // Re-encoding is byte-stable.
  EXPECT_EQ(decoded->Encode(), encoded);
}

TEST(ContentSummaryCodecTest, EveryTruncationFailsToDecode) {
  Bytes encoded = ContentSummary::Build(SmallIndex(), 42).Encode();
  ASSERT_GT(encoded.size(), 8u);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<long>(cut));
    EXPECT_FALSE(ContentSummary::Decode(truncated).ok())
        << "decode unexpectedly succeeded at cut " << cut << " of "
        << encoded.size();
  }
}

TEST(ContentSummaryCodecTest, TrailingBytesRejected) {
  Bytes encoded = ContentSummary::Build(SmallIndex(), 42).Encode();
  encoded.push_back(0x00);
  auto decoded = ContentSummary::Decode(encoded);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// Hand-built encodings probing each decoder cap.
Bytes Craft(uint64_t epoch, uint64_t keyword_count, uint8_t num_hashes,
            uint64_t words, uint64_t top_count) {
  BinaryWriter writer;
  writer.WriteVarint(epoch);
  writer.WriteVarint(keyword_count);
  writer.WriteU8(num_hashes);
  writer.WriteVarint(words);
  for (uint64_t w = 0; w < words; ++w) writer.WriteU64(0xAAAAAAAAAAAAAAAAULL);
  writer.WriteVarint(top_count);
  for (uint64_t t = 0; t < top_count; ++t) {
    writer.WriteString("kw" + std::to_string(t));
    writer.WriteVarint(t + 1);
  }
  return writer.Take();
}

TEST(ContentSummaryCodecTest, MalformedEncodingsRejected) {
  // Control: a crafted-but-valid encoding decodes.
  ASSERT_TRUE(ContentSummary::Decode(Craft(1, 4, 6, 2, 1)).ok());
  // Zero hash functions.
  EXPECT_FALSE(ContentSummary::Decode(Craft(1, 4, 0, 2, 1)).ok());
  // More hash functions than the cap.
  EXPECT_FALSE(ContentSummary::Decode(Craft(1, 4, 17, 2, 1)).ok());
  // Empty filter with a nonzero keyword count.
  EXPECT_FALSE(ContentSummary::Decode(Craft(1, 4, 6, 0, 1)).ok());
  // Filter word count over the cap (declared, not materialized: the
  // reader must fail on the cap check or truncation, never allocate).
  {
    BinaryWriter writer;
    writer.WriteVarint(1);
    writer.WriteVarint(4);
    writer.WriteU8(6);
    writer.WriteVarint((1ULL << 16) + 1);
    EXPECT_FALSE(ContentSummary::Decode(writer.Take()).ok());
  }
  // Top-keyword count over the cap.
  EXPECT_FALSE(ContentSummary::Decode(Craft(1, 4, 6, 2, 65)).ok());
}

// ---------------------------------------------------------------- fleet

class SummaryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<core::SharedInfra>();
  }

  std::unique_ptr<core::BestPeerNode> MakeNode(bool summaries) {
    core::BestPeerConfig config;
    config.enable_content_summaries = summaries;
    auto node = core::BestPeerNode::Create(fleet_->AddNode(), infra_.get(),
                                           config)
                    .value();
    EXPECT_TRUE(node->InitStorage({}).ok());
    return node;
  }

  // Star: base in the middle, bidirectional local edges.
  void Wire(core::BestPeerNode* base,
            const std::vector<core::BestPeerNode*>& peers) {
    for (core::BestPeerNode* p : peers) {
      base->AddDirectPeerLocal(p->node());
      p->AddDirectPeerLocal(base->node());
    }
  }

  Bytes Content(const std::string& s) { return Bytes(s.begin(), s.end()); }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<core::SharedInfra> infra_;
};

TEST_F(SummaryFixture, BaseSkipsProvablyEmptyPeersWithoutLosingAnswers) {
  auto base = MakeNode(true);
  auto hot = MakeNode(true);     // Holds the needle.
  auto cold1 = MakeNode(true);   // Filler only.
  auto cold2 = MakeNode(true);
  Wire(base.get(), {hot.get(), cold1.get(), cold2.get()});

  ASSERT_TRUE(hot->ShareObject(1, Content("needle document")).ok());
  ASSERT_TRUE(cold1->ShareObject(2, Content("filler text")).ok());
  ASSERT_TRUE(cold2->ShareObject(3, Content("other filler")).ok());
  sim_.RunUntilIdle();  // Drain the debounced summary broadcasts.

  EXPECT_EQ(base->peer_summary_count(), 3u);
  uint64_t qid = base->IssueSearch("needle").value();
  sim_.RunUntilIdle();

  const core::QuerySession* session = base->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->total_answers(), 1u) << "recall must be preserved";
  EXPECT_EQ(base->summary_skips(), 2u);
  EXPECT_EQ(hot->agent_runtime().agents_executed(), 1u);
  EXPECT_EQ(cold1->agent_runtime().agents_executed(), 0u)
      << "summary-excluded peer must not be visited";
  EXPECT_EQ(cold2->agent_runtime().agents_executed(), 0u);
}

TEST_F(SummaryFixture, SameAnswersAsSummariesOffRun) {
  for (bool summaries : {false, true}) {
    sim::Simulator sim;
    sim::SimNetwork network(&sim, sim::NetworkOptions{});
    net::SimTransportFleet fleet(&network);
    core::SharedInfra infra;
    core::BestPeerConfig config;
    config.enable_content_summaries = summaries;
    auto make = [&]() {
      auto n = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                   .value();
      EXPECT_TRUE(n->InitStorage({}).ok());
      return n;
    };
    auto base = make();
    auto a = make();
    auto b = make();
    base->AddDirectPeerLocal(a->node());
    a->AddDirectPeerLocal(base->node());
    base->AddDirectPeerLocal(b->node());
    b->AddDirectPeerLocal(base->node());
    ASSERT_TRUE(a->ShareObject(1, Content("needle one")).ok());
    ASSERT_TRUE(a->ShareObject(2, Content("needle two")).ok());
    ASSERT_TRUE(b->ShareObject(3, Content("chaff")).ok());
    sim.RunUntilIdle();
    uint64_t qid = base->IssueSearch("needle").value();
    sim.RunUntilIdle();
    EXPECT_EQ(base->FindSession(qid)->total_answers(), 2u)
        << "summaries=" << summaries;
  }
}

TEST_F(SummaryFixture, SummariesRefreshAfterMutation) {
  auto base = MakeNode(true);
  auto peer = MakeNode(true);
  Wire(base.get(), {peer.get()});

  ASSERT_TRUE(peer->ShareObject(1, Content("boring filler")).ok());
  sim_.RunUntilIdle();

  uint64_t q1 = base->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(base->FindSession(q1)->total_answers(), 0u);
  EXPECT_EQ(base->summary_skips(), 1u);
  EXPECT_EQ(peer->agent_runtime().agents_executed(), 0u);

  // The peer's store changes; its refreshed summary must reach the base
  // before the next query so the peer is visited again.
  ASSERT_TRUE(peer->ShareObject(2, Content("needle arrives")).ok());
  sim_.RunUntilIdle();

  uint64_t q2 = base->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(base->FindSession(q2)->total_answers(), 1u);
  EXPECT_EQ(base->summary_skips(), 1u) << "no new skip after refresh";
  EXPECT_EQ(peer->agent_runtime().agents_executed(), 1u);
}

TEST_F(SummaryFixture, DisconnectDropsPeerSummary) {
  auto base = MakeNode(true);
  auto peer = MakeNode(true);
  Wire(base.get(), {peer.get()});
  ASSERT_TRUE(peer->ShareObject(1, Content("something")).ok());
  sim_.RunUntilIdle();
  ASSERT_EQ(base->peer_summary_count(), 1u);

  // A disconnect notice (as sent by departing or evicting peers) must
  // drop the stored summary so a stale digest never suppresses visits.
  auto codec = MakeCodec("lzss").value();
  network_->Send(peer->node(), base->node(), core::kPeerDisconnectType,
                 codec->Compress(Bytes{}).value());
  sim_.RunUntilIdle();
  EXPECT_EQ(base->peer_summary_count(), 0u);
}

}  // namespace
}  // namespace bestpeer
