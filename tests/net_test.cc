#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/backoff.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/tcp_transport.h"
#include "util/metrics.h"

namespace bestpeer::net {
namespace {

Bytes SamplePayload(size_t n) {
  Bytes payload(n);
  for (size_t i = 0; i < n; ++i) payload[i] = static_cast<uint8_t>(i * 7);
  return payload;
}

// ---------------------------------------------------------------- frame

TEST(FrameTest, RoundTrip) {
  FrameHeader h;
  h.type = 0x1234;
  h.src = 7;
  h.dst = 9;
  h.flow = 0xABCDEF0102030405ull;
  h.extra_wire = 5000;
  Bytes payload = SamplePayload(100);
  Bytes wire = EncodeFrame(h, payload);
  ASSERT_EQ(wire.size(), kFrameOverheadBytes + payload.size());

  auto back = DecodeFrameHeader(wire.data(), wire.size()).value();
  EXPECT_EQ(back.type, h.type);
  EXPECT_EQ(back.src, h.src);
  EXPECT_EQ(back.dst, h.dst);
  EXPECT_EQ(back.flow, h.flow);
  EXPECT_EQ(back.extra_wire, h.extra_wire);
  EXPECT_EQ(back.payload_len, payload.size());
}

TEST(FrameTest, HeaderOccupiesExactlySharedOverheadConstant) {
  // The simulator charges kFrameOverheadBytes per message; the TCP header
  // must occupy exactly that many bytes so byte counts stay comparable.
  Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
  EXPECT_EQ(wire.size(), kFrameOverheadBytes);
}

TEST(FrameTest, RejectsTruncatedHeader) {
  Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
  for (size_t cut = 0; cut < kFrameOverheadBytes; cut += 7) {
    EXPECT_FALSE(DecodeFrameHeader(wire.data(), cut).ok()) << "cut=" << cut;
  }
}

TEST(FrameTest, RejectsBadMagic) {
  Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
  wire[0] ^= 0xFF;
  EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok());
}

TEST(FrameTest, RejectsBadVersion) {
  Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
  wire[4] = 0x7F;
  EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok());
}

TEST(FrameTest, RejectsUnknownFlags) {
  // Every flag bit outside kFrameFlagsMask is reserved for future
  // extensions and must be treated as corruption today.
  for (int bit = 0; bit < 16; ++bit) {
    const uint16_t flag = static_cast<uint16_t>(1u << bit);
    if ((flag & kFrameFlagsMask) != 0) continue;
    Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
    wire[6] = static_cast<uint8_t>(flag);
    wire[7] = static_cast<uint8_t>(flag >> 8);
    EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok())
        << "bit " << bit;
  }
}

TEST(FrameTest, SampledFlagAndTimestampRoundTrip) {
  FrameHeader h;
  h.type = 0x77;
  h.src = 1;
  h.dst = 2;
  h.flow = 99;
  h.flags = kFrameFlagSampled;
  h.sent_at_us = 123456789;
  Bytes wire = EncodeFrame(h, Bytes{});
  auto back = DecodeFrameHeader(wire.data(), wire.size()).value();
  EXPECT_TRUE(back.sampled());
  EXPECT_EQ(back.sent_at_us, 123456789);
  EXPECT_EQ(back.flow, 99u);
}

TEST(FrameTest, UnsampledFrameCarriesNoTimestampBytes) {
  // Tracing-off frames must stay byte-identical to pre-tracing frames:
  // the encoder ignores sent_at_us when the sampled flag is clear, and
  // the decoder treats a nonzero timestamp without the flag as
  // corruption.
  FrameHeader h;
  h.sent_at_us = 42;  // Set but not sampled: must not hit the wire.
  Bytes wire = EncodeFrame(h, Bytes{});
  for (size_t i = 36; i < 44; ++i) EXPECT_EQ(wire[i], 0u) << "byte " << i;
  EXPECT_EQ(DecodeFrameHeader(wire.data(), wire.size()).value().sent_at_us,
            0);

  wire[36] = 0xAA;  // Timestamp bytes without the flag.
  EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok());
}

TEST(FrameTest, RejectsNonzeroReservedBytes) {
  for (size_t i = 36; i < kFrameOverheadBytes; ++i) {
    Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
    wire[i] = 0xAA;
    EXPECT_FALSE(DecodeFrameHeader(wire.data(), wire.size()).ok())
        << "byte " << i;
  }
}

TEST(FrameTest, RejectsOversizedPayloadLength) {
  Bytes wire = EncodeFrame(FrameHeader{}, Bytes{});
  // payload_len lives at offset 28 (little-endian): claim 2 MiB against a
  // 1 MiB cap.
  wire[28] = 0;
  wire[29] = 0;
  wire[30] = 0x20;
  wire[31] = 0;
  EXPECT_FALSE(
      DecodeFrameHeader(wire.data(), wire.size(), 1 << 20).ok());
}

TEST(FrameDecoderTest, ByteByByteFeedYieldsEveryFrame) {
  Bytes stream;
  for (uint32_t i = 0; i < 3; ++i) {
    FrameHeader h;
    h.type = i;
    h.src = 1;
    h.dst = 2;
    Bytes wire = EncodeFrame(h, SamplePayload(i * 17));
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  FrameDecoder decoder;
  std::vector<FrameHeader> seen;
  for (uint8_t byte : stream) {
    decoder.Feed(&byte, 1);
    FrameHeader h;
    Bytes payload;
    for (;;) {
      auto next = decoder.Next(&h, &payload);
      ASSERT_TRUE(next.ok());
      if (!next.value()) break;
      EXPECT_EQ(payload.size(), h.payload_len);
      EXPECT_EQ(payload, SamplePayload(h.type * 17));
      seen.push_back(h);
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  for (uint32_t i = 0; i < 3; ++i) EXPECT_EQ(seen[i].type, i);
}

TEST(FrameDecoderTest, PoisonedAfterMalformedHeader) {
  FrameDecoder decoder;
  Bytes garbage(kFrameOverheadBytes, 0x5A);
  decoder.Feed(garbage.data(), garbage.size());
  FrameHeader h;
  Bytes payload;
  EXPECT_FALSE(decoder.Next(&h, &payload).ok());
  // Feeding a perfectly valid frame afterwards cannot resynchronize a
  // corrupted byte stream; the decoder must stay in error.
  Bytes good = EncodeFrame(FrameHeader{}, Bytes{});
  decoder.Feed(good.data(), good.size());
  EXPECT_FALSE(decoder.Next(&h, &payload).ok());
}

TEST(FrameDecoderTest, PartialPayloadIsNotDelivered) {
  FrameHeader h;
  h.payload_len = 0;  // EncodeFrame sets the real value.
  Bytes wire = EncodeFrame(h, SamplePayload(64));
  FrameDecoder decoder;
  decoder.Feed(wire.data(), wire.size() - 1);
  FrameHeader out;
  Bytes payload;
  auto next = decoder.Next(&out, &payload);
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next.value());
  decoder.Feed(wire.data() + wire.size() - 1, 1);
  next = decoder.Next(&out, &payload);
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next.value());
  EXPECT_EQ(payload, SamplePayload(64));
}

// ---------------------------------------------------------------- backoff

TEST(BackoffTest, DoublesUpToCapAndResets) {
  Backoff backoff(Millis(10), Millis(100));
  EXPECT_EQ(backoff.Next(), Millis(10));
  EXPECT_EQ(backoff.Next(), Millis(20));
  EXPECT_EQ(backoff.Next(), Millis(40));
  EXPECT_EQ(backoff.Next(), Millis(80));
  EXPECT_EQ(backoff.Next(), Millis(100));
  EXPECT_EQ(backoff.Next(), Millis(100));
  EXPECT_EQ(backoff.attempts(), 6);
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_EQ(backoff.Next(), Millis(10));
}

// ---------------------------------------------------------------- reactor

TEST(ReactorTest, RunExecutesOnReactorThread) {
  Reactor reactor;
  reactor.Start();
  bool on_thread = false;
  reactor.Run([&]() { on_thread = reactor.OnReactorThread(); });
  EXPECT_TRUE(on_thread);
  EXPECT_FALSE(reactor.OnReactorThread());
  reactor.Stop();
}

TEST(ReactorTest, TimersFireInDeadlineOrderWithFifoTies) {
  Reactor reactor;
  reactor.Start();
  std::vector<int> order;
  std::atomic<bool> done{false};
  reactor.Run([&]() {
    int64_t t = reactor.now_us() + 2000;
    reactor.AddTimerAt(t + 1000, [&]() { order.push_back(3); });
    reactor.AddTimerAt(t, [&]() { order.push_back(1); });
    reactor.AddTimerAt(t, [&]() { order.push_back(2); });
    reactor.AddTimerAt(t + 2000, [&]() {
      order.push_back(4);
      done.store(true);
    });
  });
  while (!done.load()) {
  }
  reactor.Stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

// ---------------------------------------------------------------- tcp

TEST(TcpTransportTest, SendsBothWaysOverLoopback) {
  metrics::Registry registry;
  TcpOptions options;
  options.metrics = &registry;
  TcpNet net(options);
  TcpTransport* a = net.AddNode().value();
  TcpTransport* b = net.AddNode().value();

  std::atomic<int> got_at_b{0};
  std::atomic<int> got_at_a{0};
  b->SetHandler([&](const Message& msg) {
    EXPECT_EQ(msg.src, a->local());
    EXPECT_EQ(msg.dst, b->local());
    EXPECT_EQ(msg.type, 42u);
    EXPECT_EQ(msg.payload, SamplePayload(33));
    // wire_size = payload + frame header + modelled extra bytes.
    EXPECT_EQ(msg.wire_size, 33 + kFrameOverheadBytes + 1000);
    got_at_b.fetch_add(1);
    b->Send(msg.src, 43, Bytes{9});
  });
  a->SetHandler([&](const Message& msg) {
    EXPECT_EQ(msg.type, 43u);
    got_at_a.fetch_add(1);
  });

  net.Start();
  a->Send(b->local(), 42, SamplePayload(33), /*extra_wire_bytes=*/1000);
  for (int spin = 0; spin < 2000 && got_at_a.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net.Stop();

  EXPECT_EQ(got_at_b.load(), 1);
  EXPECT_EQ(got_at_a.load(), 1);
  metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.Value("net.tx_msgs"), 2);
  EXPECT_EQ(snap.Value("net.rx_msgs"), 2);
  EXPECT_EQ(snap.Value("net.frame_errors"), 0);
  // Both directions charge payload + header (+ extra on the first send).
  EXPECT_EQ(snap.Value("net.tx_bytes"),
            (33 + kFrameOverheadBytes + 1000) + (1 + kFrameOverheadBytes));
  EXPECT_EQ(snap.Value("net.rx_bytes"), snap.Value("net.tx_bytes"));
}

TEST(TcpTransportTest, ManyMessagesArriveInSendOrder) {
  TcpNet net;
  TcpTransport* a = net.AddNode().value();
  TcpTransport* b = net.AddNode().value();
  std::vector<uint32_t> types;
  std::atomic<int> count{0};
  b->SetHandler([&](const Message& msg) {
    types.push_back(msg.type);
    count.fetch_add(1);
  });
  net.Start();
  net.Run([&]() {
    for (uint32_t i = 0; i < 500; ++i) {
      a->Send(b->local(), i, SamplePayload(i % 97));
    }
  });
  for (int spin = 0; spin < 5000 && count.load() < 500; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net.Stop();
  ASSERT_EQ(types.size(), 500u);
  for (uint32_t i = 0; i < 500; ++i) EXPECT_EQ(types[i], i);
}

TEST(TcpTransportTest, OfflineDestinationDropsAndCounts) {
  TcpNet net;
  TcpTransport* a = net.AddNode().value();
  TcpTransport* b = net.AddNode().value();
  std::atomic<int> got{0};
  b->SetHandler([&](const Message&) { got.fetch_add(1); });
  net.Start();
  net.SetOnline(b->local(), false);
  EXPECT_FALSE(a->IsOnline(b->local()));
  net.Run([&]() { a->Send(b->local(), 1, Bytes{1}); });
  net.Run([]() {});  // One more round trip: the drop happened inline.
  EXPECT_EQ(a->tx_dropped(), 1u);
  net.SetOnline(b->local(), true);
  net.Run([&]() { a->Send(b->local(), 2, Bytes{2}); });
  for (int spin = 0; spin < 2000 && got.load() == 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net.Stop();
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(b->rx_messages(), 1u);
}

TEST(TcpTransportTest, RunCpuSerializesPerNode) {
  TcpNet net;
  TcpTransport* a = net.AddNode().value();
  net.Start();
  std::vector<int> order;
  std::atomic<bool> done{false};
  net.Run([&]() {
    // Submitted back to back: the second must wait for the first even
    // though both were scheduled at the same instant.
    a->RunCpu(Millis(5), [&]() { order.push_back(1); });
    a->RunCpu(Micros(1), [&]() {
      order.push_back(2);
      done.store(true);
    });
  });
  for (int spin = 0; spin < 2000 && !done.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net.Stop();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TcpTransportTest, ClockTimersFire) {
  TcpNet net;
  net.AddNode().value();
  net.Start();
  std::atomic<bool> fired{false};
  net.clock().ScheduleAfter(Millis(2), [&]() { fired.store(true); });
  for (int spin = 0; spin < 2000 && !fired.load(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  net.Stop();
  EXPECT_TRUE(fired.load());
}

}  // namespace
}  // namespace bestpeer::net
