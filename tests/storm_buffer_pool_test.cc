#include <gtest/gtest.h>

#include "storm/buffer_pool.h"
#include "storm/pager.h"

namespace bestpeer::storm {
namespace {

// Writes a marker byte into a page so identity survives eviction.
void Mark(Page* page, uint8_t marker) { page->raw()[100] = marker; }
uint8_t GetMark(const Page* page) { return page->raw()[100]; }

TEST(BufferPoolTest, NewPinsAndFetchHits) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 4, .policy = "lru"}).value();
  auto guard = pool->New().value();
  PageId id = guard.id();
  guard.Release();
  auto again = pool->Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(pool->hits(), 1u);
  EXPECT_EQ(pool->misses(), 0u);
}

TEST(BufferPoolTest, ZeroFramesRejected) {
  MemPager pager;
  EXPECT_FALSE(BufferPool::Create(&pager, {.frames = 0, .policy = "lru"}).ok());
}

TEST(BufferPoolTest, UnknownPolicyRejected) {
  MemPager pager;
  EXPECT_FALSE(BufferPool::Create(&pager, {.frames = 4, .policy = "mystery"}).ok());
}

TEST(BufferPoolTest, EvictionWritesBackDirtyPages) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 2, .policy = "lru"}).value();
  // Create 3 pages through a 2-frame pool; the first must be evicted.
  PageId ids[3];
  for (int i = 0; i < 3; ++i) {
    auto guard = pool->New().value();
    Mark(guard.page(), static_cast<uint8_t>(0x10 + i));
    guard.MarkDirty();
    ids[i] = guard.id();
  }
  EXPECT_GE(pool->evictions(), 1u);
  EXPECT_GE(pool->writebacks(), 1u);
  // Refetch the evicted page: data must have survived through the pager.
  auto back = pool->Fetch(ids[0]).value();
  EXPECT_EQ(GetMark(back.page()), 0x10);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 2, .policy = "lru"}).value();
  auto g1 = pool->New().value();
  auto g2 = pool->New().value();
  // Both frames pinned: a third page cannot be brought in.
  auto g3 = pool->New();
  EXPECT_FALSE(g3.ok());
  EXPECT_TRUE(g3.status().IsResourceExhausted());
  g1.Release();
  auto g4 = pool->New();
  EXPECT_TRUE(g4.ok());
}

TEST(BufferPoolTest, MultiplePinsOnSamePage) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 2, .policy = "lru"}).value();
  auto g1 = pool->New().value();
  PageId id = g1.id();
  auto g2 = pool->Fetch(id).value();
  g1.Release();
  // Still pinned once: cannot be evicted by filling the pool.
  auto o1 = pool->New().value();
  auto blocked = pool->New();
  EXPECT_FALSE(blocked.ok());
  g2.Release();
  EXPECT_TRUE(pool->New().ok());
  (void)o1;
}

TEST(BufferPoolTest, FlushAllPersistsDirtyPages) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 4, .policy = "lru"}).value();
  auto guard = pool->New().value();
  Mark(guard.page(), 0x55);
  guard.MarkDirty();
  PageId id = guard.id();
  guard.Release();
  ASSERT_TRUE(pool->FlushAll().ok());
  // Read the page straight from the pager, bypassing the pool.
  Page direct;
  ASSERT_TRUE(pager.Read(id, &direct).ok());
  EXPECT_EQ(GetMark(&direct), 0x55);
}

TEST(BufferPoolTest, FetchUnknownPageFails) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 4, .policy = "lru"}).value();
  EXPECT_FALSE(pool->Fetch(42).ok());
}

TEST(BufferPoolTest, MoveGuardTransfersPin) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 1, .policy = "lru"}).value();
  auto g1 = pool->New().value();
  PageGuard g2 = std::move(g1);
  EXPECT_FALSE(g1.valid());
  EXPECT_TRUE(g2.valid());
  g2.Release();
  EXPECT_TRUE(pool->New().ok());  // Frame was freed exactly once.
}

// The same workload must behave correctly under every policy.
class PolicyParamTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PolicyParamTest, WorkloadSurvivesEvictionChurn) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 4, .policy = GetParam()}).value();
  EXPECT_EQ(pool->policy_name(), GetParam());
  // 16 pages, each marked, through a 4-frame pool.
  std::vector<PageId> ids;
  for (int i = 0; i < 16; ++i) {
    auto guard = pool->New().value();
    Mark(guard.page(), static_cast<uint8_t>(i));
    guard.MarkDirty();
    ids.push_back(guard.id());
  }
  // Random-ish access pattern with rereads.
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < ids.size(); i += (round + 1)) {
      auto guard = pool->Fetch(ids[i]).value();
      ASSERT_EQ(GetMark(guard.page()), static_cast<uint8_t>(i))
          << "policy " << GetParam();
    }
  }
  EXPECT_GT(pool->evictions(), 0u);
  ASSERT_TRUE(pool->FlushAll().ok());
}

TEST_P(PolicyParamTest, EvictionOrderRespectsPins) {
  MemPager pager;
  auto pool = BufferPool::Create(&pager, {.frames = 3, .policy = GetParam()}).value();
  auto pinned = pool->New().value();
  Mark(pinned.page(), 0xEE);
  PageId pinned_id = pinned.id();
  for (int i = 0; i < 10; ++i) {
    auto guard = pool->New().value();
    guard.MarkDirty();
  }
  // The pinned page must still be resident with its data.
  EXPECT_EQ(GetMark(pinned.page()), 0xEE);
  pinned.Release();
  auto back = pool->Fetch(pinned_id).value();
  EXPECT_EQ(GetMark(back.page()), 0xEE);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyParamTest,
                         ::testing::Values("lru", "fifo", "clock", "lfu"));

// Policy-specific behavioural checks.
TEST(LruPolicyTest, EvictsLeastRecentlyUnpinned) {
  LruPolicy lru;
  lru.OnEvictable(1);
  lru.OnEvictable(2);
  lru.OnEvictable(3);
  // Touch 1 again: moves to the back.
  lru.OnEvictable(1);
  EXPECT_EQ(lru.ChooseVictim().value(), 2u);
  EXPECT_EQ(lru.ChooseVictim().value(), 3u);
  EXPECT_EQ(lru.ChooseVictim().value(), 1u);
  EXPECT_FALSE(lru.ChooseVictim().has_value());
}

TEST(FifoPolicyTest, ReinsertKeepsOriginalOrder) {
  FifoPolicy fifo;
  fifo.OnEvictable(1);
  fifo.OnEvictable(2);
  fifo.OnEvictable(1);  // No-op: keeps queue position.
  EXPECT_EQ(fifo.ChooseVictim().value(), 1u);
  EXPECT_EQ(fifo.ChooseVictim().value(), 2u);
}

TEST(ClockPolicyTest, SecondChanceSparesReferencedFrames) {
  ClockPolicy clock;
  clock.OnEvictable(1);
  clock.OnEvictable(2);
  // Re-mark 1 as referenced.
  clock.OnEvictable(1);
  // Victim scan clears 1's bit (second chance) and takes 2 first... or
  // takes whichever entered with a cleared bit first; either way both
  // eventually come out exactly once.
  auto v1 = clock.ChooseVictim();
  auto v2 = clock.ChooseVictim();
  ASSERT_TRUE(v1.has_value() && v2.has_value());
  EXPECT_NE(v1.value(), v2.value());
  EXPECT_FALSE(clock.ChooseVictim().has_value());
}

TEST(LfuPolicyTest, EvictsLeastFrequentlyUsed) {
  LfuPolicy lfu;
  // Frame 1: 3 uses; frame 2: 1 use.
  lfu.OnEvictable(1);
  lfu.OnPinned(1);
  lfu.OnEvictable(1);
  lfu.OnPinned(1);
  lfu.OnEvictable(1);
  lfu.OnEvictable(2);
  EXPECT_EQ(lfu.ChooseVictim().value(), 2u);
  EXPECT_EQ(lfu.ChooseVictim().value(), 1u);
}

TEST(PolicyRegistryTest, MakeByName) {
  EXPECT_EQ(MakeReplacementPolicy("lru").value()->name(), "lru");
  EXPECT_EQ(MakeReplacementPolicy("fifo").value()->name(), "fifo");
  EXPECT_EQ(MakeReplacementPolicy("clock").value()->name(), "clock");
  EXPECT_EQ(MakeReplacementPolicy("lfu").value()->name(), "lfu");
  EXPECT_FALSE(MakeReplacementPolicy("arc").ok());
}

}  // namespace
}  // namespace bestpeer::storm
