// Tests for the scenario engine (ISSUE 10): hostile parsing of scenario
// specs and NDJSON query traces (clean errors, never a partial spec),
// arrival-process math and determinism, runner determinism (same seed +
// spec => identical results), trace record/replay answer-count equality,
// heterogeneous link profiles, free-rider classes and churn waves.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "scenario/arrival.h"
#include "scenario/query_trace.h"
#include "scenario/runner.h"
#include "scenario/spec.h"
#include "util/rng.h"

namespace bestpeer::scenario {
namespace {

Result<ScenarioSpec> Parse(const std::string& text) {
  Result<obs::JsonValue> doc = obs::ParseJson(text);
  if (!doc.ok()) return doc.status();
  return ParseScenario(doc.value());
}

void ExpectParseFails(const std::string& text, const std::string& needle) {
  Result<ScenarioSpec> spec = Parse(text);
  ASSERT_FALSE(spec.ok()) << "expected rejection: " << text;
  EXPECT_NE(spec.status().message().find(needle), std::string::npos)
      << "error was: " << spec.status().message();
}

// A minimal valid spec the hostile tests mutate one field at a time.
std::string BaseSpec() {
  return R"({
    "name": "base",
    "seed": 1,
    "classes": [
      {"name": "a", "count": 4, "objects_per_node": 20, "matches_per_node": 2},
      {"name": "b", "count": 4, "objects_per_node": 20, "matches_per_node": 2}
    ],
    "phases": [
      {"name": "p0", "duration_ms": 300,
       "arrival": {"process": "constant", "rate_per_s": 20}}
    ]
  })";
}

std::string Replaced(std::string text, const std::string& from,
                     const std::string& to) {
  const size_t pos = text.find(from);
  EXPECT_NE(pos, std::string::npos) << from;
  return text.replace(pos, from.size(), to);
}

// ---------------------------------------------------------------------------
// Hostile spec parsing.

TEST(ScenarioSpecTest, BaseSpecParses) {
  Result<ScenarioSpec> spec = Parse(BaseSpec());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().name, "base");
  EXPECT_EQ(spec.value().TotalNodes(), 8u);
  EXPECT_EQ(spec.value().ClassOffset(1), 4u);
  EXPECT_EQ(spec.value().ClassOf(3), 0u);
  EXPECT_EQ(spec.value().ClassOf(4), 1u);
  EXPECT_EQ(spec.value().TotalDuration(), MsToSimTime(300));
}

TEST(ScenarioSpecTest, TruncatedDocumentIsRejected) {
  std::string text = BaseSpec();
  text.resize(text.size() / 2);
  EXPECT_FALSE(Parse(text).ok());
}

TEST(ScenarioSpecTest, NonObjectRootIsRejected) {
  ExpectParseFails("[1, 2, 3]", "object");
}

TEST(ScenarioSpecTest, WrongTypedSeedIsRejected) {
  ExpectParseFails(Replaced(BaseSpec(), "\"seed\": 1", "\"seed\": \"one\""),
                   "seed");
}

TEST(ScenarioSpecTest, WrongTypedClassListIsRejected) {
  Result<ScenarioSpec> spec =
      Parse(Replaced(BaseSpec(), BaseSpec().substr(
                                     BaseSpec().find("\"classes\""),
                                     BaseSpec().find("],") + 1 -
                                         BaseSpec().find("\"classes\"")),
                     "\"classes\": 7"));
  EXPECT_FALSE(spec.ok());
}

TEST(ScenarioSpecTest, UnknownTopLevelKeyIsFatal) {
  ExpectParseFails(Replaced(BaseSpec(), "\"seed\": 1",
                            "\"seed\": 1, \"sede\": 2"),
                   "unknown key 'sede'");
}

TEST(ScenarioSpecTest, UnknownClassKeyIsFatal) {
  ExpectParseFails(Replaced(BaseSpec(), "\"count\": 4",
                            "\"count\": 4, \"bandwith_mbps\": 10"),
                   "unknown key 'bandwith_mbps'");
}

TEST(ScenarioSpecTest, DuplicateJsonKeyIsFatal) {
  ExpectParseFails(Replaced(BaseSpec(), "\"seed\": 1",
                            "\"seed\": 1, \"seed\": 2"),
                   "duplicate key 'seed'");
}

TEST(ScenarioSpecTest, OutOfRangeValuesAreRejected) {
  ExpectParseFails(Replaced(BaseSpec(), "\"seed\": 1",
                            "\"seed\": 1, \"fault\": {\"message_loss\": 0.95}"),
                   "message_loss");
  ExpectParseFails(
      Replaced(BaseSpec(), "\"rate_per_s\": 20", "\"rate_per_s\": -3"),
      "rate_per_s");
  ExpectParseFails(
      Replaced(BaseSpec(), "\"duration_ms\": 300", "\"duration_ms\": 0"),
      "duration_ms");
}

TEST(ScenarioSpecTest, FractionalCountIsRejected) {
  ExpectParseFails(Replaced(BaseSpec(), "\"count\": 4", "\"count\": 4.5"),
                   "integer");
}

TEST(ScenarioSpecTest, DuplicateClassNamesAreRejected) {
  ExpectParseFails(Replaced(BaseSpec(), "\"name\": \"b\"", "\"name\": \"a\""),
                   "duplicate class");
}

TEST(ScenarioSpecTest, BadScenarioNameIsRejected) {
  ExpectParseFails(
      Replaced(BaseSpec(), "\"name\": \"base\"", "\"name\": \"Base Spec!\""),
      "name");
}

TEST(ScenarioSpecTest, FreeRiderWithMatchesIsRejected) {
  ExpectParseFails(
      Replaced(BaseSpec(), "\"matches_per_node\": 2},",
               "\"matches_per_node\": 2, \"free_rider\": true},"),
      "free_rider");
}

TEST(ScenarioSpecTest, NoQueryingClassIsRejected) {
  std::string text = BaseSpec();
  text = Replaced(text, "\"matches_per_node\": 2}",
                  "\"matches_per_node\": 2, \"issues_queries\": false}");
  text = Replaced(text, "\"matches_per_node\": 2}",
                  "\"matches_per_node\": 2, \"issues_queries\": false}");
  ExpectParseFails(text, "issues queries");
}

TEST(ScenarioSpecTest, ChurnTargetingUnknownClassIsRejected) {
  ExpectParseFails(
      Replaced(BaseSpec(), "\"seed\": 1",
               "\"seed\": 1, \"churn\": [{\"at_ms\": 100, \"class\": \"ghost\","
               " \"fraction\": 0.5}]"),
      "ghost");
}

TEST(ScenarioSpecTest, FlashSpikePastPhaseEndIsRejected) {
  ExpectParseFails(
      Replaced(BaseSpec(), "{\"process\": \"constant\", \"rate_per_s\": 20}",
               "{\"process\": \"flash\", \"rate_per_s\": 20, \"multiplier\": 4,"
               " \"spike_start_ms\": 100, \"spike_end_ms\": 400}"),
      "spike");
}

TEST(ScenarioSpecTest, MissingFileIsCleanError) {
  EXPECT_FALSE(LoadScenarioFile("/nonexistent/spec.json").ok());
}

// ---------------------------------------------------------------------------
// Arrival processes.

TEST(ArrivalTest, ConstantProcessIsEvenlySpacedAndDeterministic) {
  PhaseSpec phase;
  phase.duration_ms = 1000;
  phase.arrival.process = ArrivalProcess::kConstant;
  phase.arrival.rate_per_s = 10;
  Rng rng(7);
  std::vector<SimTime> times = GenerateArrivalTimes(phase, 5000, rng);
  // One interval in, evenly spaced, strictly inside the phase: the
  // k = 10 candidate lands exactly on the phase end and is dropped.
  ASSERT_EQ(times.size(), 9u);
  for (size_t k = 0; k < times.size(); ++k) {
    EXPECT_EQ(times[k], 5000 + MsToSimTime(100.0 * (k + 1)));
  }
}

TEST(ArrivalTest, StochasticProcessesAreSeedDeterministic) {
  PhaseSpec phase;
  phase.duration_ms = 2000;
  phase.arrival.process = ArrivalProcess::kFlash;
  phase.arrival.rate_per_s = 20;
  phase.arrival.multiplier = 5;
  phase.arrival.spike_start_ms = 500;
  phase.arrival.spike_end_ms = 1000;
  Rng a(1234), b(1234), c(99);
  std::vector<SimTime> ta = GenerateArrivalTimes(phase, 0, a);
  std::vector<SimTime> tb = GenerateArrivalTimes(phase, 0, b);
  std::vector<SimTime> tc = GenerateArrivalTimes(phase, 0, c);
  EXPECT_EQ(ta, tb);
  EXPECT_NE(ta, tc);
  ASSERT_FALSE(ta.empty());
  for (size_t i = 1; i < ta.size(); ++i) EXPECT_GE(ta[i], ta[i - 1]);
  EXPECT_LT(ta.back(), MsToSimTime(phase.duration_ms));
}

TEST(ArrivalTest, RateAtFollowsTheDeclaredShape) {
  ArrivalSpec flash;
  flash.process = ArrivalProcess::kFlash;
  flash.rate_per_s = 10;
  flash.multiplier = 8;
  flash.spike_start_ms = 300;
  flash.spike_end_ms = 800;
  EXPECT_DOUBLE_EQ(RateAt(flash, 100), 10);
  EXPECT_DOUBLE_EQ(RateAt(flash, 300), 80);
  EXPECT_DOUBLE_EQ(RateAt(flash, 799), 80);
  EXPECT_DOUBLE_EQ(RateAt(flash, 800), 10);

  ArrivalSpec diurnal;
  diurnal.process = ArrivalProcess::kDiurnal;
  diurnal.rate_per_s = 10;
  diurnal.amplitude = 0.5;
  diurnal.period_ms = 1000;
  EXPECT_NEAR(RateAt(diurnal, 250), 15, 1e-9);   // sin peak.
  EXPECT_NEAR(RateAt(diurnal, 750), 5, 1e-9);    // sin trough.
  EXPECT_NEAR(RateAt(diurnal, 1000), 10, 1e-9);  // full period.
}

TEST(ArrivalTest, ExpectedArrivalsIntegratesTheRate) {
  ArrivalSpec constant;
  constant.process = ArrivalProcess::kConstant;
  constant.rate_per_s = 10;
  EXPECT_DOUBLE_EQ(ExpectedArrivals(constant, 1000), 10);

  ArrivalSpec flash;
  flash.process = ArrivalProcess::kFlash;
  flash.rate_per_s = 10;
  flash.multiplier = 8;
  flash.spike_start_ms = 300;
  flash.spike_end_ms = 800;
  // 1s of base rate outside the spike + 0.5s at 80/s inside it.
  EXPECT_DOUBLE_EQ(ExpectedArrivals(flash, 1500), 10.0 * 1.0 + 80.0 * 0.5);

  // Over a whole period the sine integrates away.
  ArrivalSpec diurnal;
  diurnal.process = ArrivalProcess::kDiurnal;
  diurnal.rate_per_s = 10;
  diurnal.amplitude = 0.8;
  diurnal.period_ms = 2000;
  EXPECT_NEAR(ExpectedArrivals(diurnal, 2000), 20, 1e-9);
}

// ---------------------------------------------------------------------------
// Query-trace round trip and hostile NDJSON.

std::string TracePath(const char* name) {
  return testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

TEST(QueryTraceTest, RoundTripPreservesEverything) {
  QueryTrace trace;
  trace.scenario = "roundtrip";
  trace.seed = 99;
  trace.queries = {{1000, 3, "needle0"}, {2500, 7, "needle5"},
                   {2500, 1, "needle2"}};
  const std::string path = TracePath("trace_roundtrip.ndjson");
  ASSERT_TRUE(WriteQueryTrace(trace, path).ok());
  Result<QueryTrace> back = ReadQueryTrace(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().scenario, "roundtrip");
  EXPECT_EQ(back.value().seed, 99u);
  ASSERT_EQ(back.value().queries.size(), 3u);
  EXPECT_EQ(back.value().queries[1].at, 2500);
  EXPECT_EQ(back.value().queries[1].node, 7u);
  EXPECT_EQ(back.value().queries[1].keyword, "needle5");
}

TEST(QueryTraceTest, TruncatedTraceIsRejected) {
  const std::string path = TracePath("trace_truncated.ndjson");
  WriteFile(path,
            "{\"v\":1,\"scenario\":\"t\",\"seed\":1,\"queries\":3}\n"
            "{\"at_us\":100,\"node\":0,\"keyword\":\"needle0\"}\n");
  Result<QueryTrace> trace = ReadQueryTrace(path);
  ASSERT_FALSE(trace.ok());
  EXPECT_NE(trace.status().message().find("truncated"), std::string::npos);
}

TEST(QueryTraceTest, WrongTypedFieldIsRejected) {
  const std::string path = TracePath("trace_wrongtype.ndjson");
  WriteFile(path,
            "{\"v\":1,\"scenario\":\"t\",\"seed\":1,\"queries\":1}\n"
            "{\"at_us\":\"soon\",\"node\":0,\"keyword\":\"needle0\"}\n");
  EXPECT_FALSE(ReadQueryTrace(path).ok());
}

TEST(QueryTraceTest, UnknownKeyIsRejected) {
  const std::string path = TracePath("trace_unknown.ndjson");
  WriteFile(path,
            "{\"v\":1,\"scenario\":\"t\",\"seed\":1,\"queries\":1}\n"
            "{\"at_us\":100,\"node\":0,\"keyword\":\"needle0\",\"x\":1}\n");
  EXPECT_FALSE(ReadQueryTrace(path).ok());
}

TEST(QueryTraceTest, OutOfOrderTimesAreRejected) {
  const std::string path = TracePath("trace_order.ndjson");
  WriteFile(path,
            "{\"v\":1,\"scenario\":\"t\",\"seed\":1,\"queries\":2}\n"
            "{\"at_us\":200,\"node\":0,\"keyword\":\"needle0\"}\n"
            "{\"at_us\":100,\"node\":1,\"keyword\":\"needle1\"}\n");
  EXPECT_FALSE(ReadQueryTrace(path).ok());
}

TEST(QueryTraceTest, WrongVersionOrMissingHeaderIsRejected) {
  const std::string v2 = TracePath("trace_v2.ndjson");
  WriteFile(v2, "{\"v\":2,\"scenario\":\"t\",\"seed\":1,\"queries\":0}\n");
  EXPECT_FALSE(ReadQueryTrace(v2).ok());

  const std::string headless = TracePath("trace_headless.ndjson");
  WriteFile(headless, "{\"at_us\":100,\"node\":0,\"keyword\":\"needle0\"}\n");
  EXPECT_FALSE(ReadQueryTrace(headless).ok());
}

// ---------------------------------------------------------------------------
// Runner: determinism, replay, heterogeneity, free riders, churn.

ScenarioSpec SmallFleet() {
  ScenarioSpec spec;
  spec.name = "unit";
  spec.seed = 1234;
  spec.topology.kind = "tree";
  spec.topology.fanout = 3;
  spec.query_pool = 4;
  NodeClassSpec a;
  a.name = "a";
  a.count = 5;
  a.objects_per_node = 24;
  a.matches_per_node = 3;
  NodeClassSpec b;
  b.name = "b";
  b.count = 5;
  b.objects_per_node = 24;
  b.matches_per_node = 3;
  spec.classes = {a, b};
  PhaseSpec phase;
  phase.name = "p0";
  phase.duration_ms = 400;
  phase.arrival.process = ArrivalProcess::kPoisson;
  phase.arrival.rate_per_s = 25;
  spec.phases = {phase};
  return spec;
}

TEST(ScenarioRunnerTest, SameSeedAndSpecAreIdentical) {
  const ScenarioSpec spec = SmallFleet();
  ScenarioRunOptions options;
  Result<ScenarioResult> r1 = RunScenario(spec, options);
  Result<ScenarioResult> r2 = RunScenario(spec, options);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1.value().queries.size(), r2.value().queries.size());
  ASSERT_FALSE(r1.value().queries.empty());
  for (size_t i = 0; i < r1.value().queries.size(); ++i) {
    const ScenarioQueryStats& qa = r1.value().queries[i];
    const ScenarioQueryStats& qb = r2.value().queries[i];
    EXPECT_EQ(qa.at, qb.at);
    EXPECT_EQ(qa.issuer, qb.issuer);
    EXPECT_EQ(qa.keyword, qb.keyword);
    EXPECT_EQ(qa.answers, qb.answers);
    EXPECT_EQ(qa.responders, qb.responders);
    EXPECT_EQ(qa.completion, qb.completion);
  }
  EXPECT_EQ(r1.value().wire_bytes, r2.value().wire_bytes);

  ScenarioSpec other = spec;
  other.seed = 4321;
  Result<ScenarioResult> r3 = RunScenario(other, options);
  ASSERT_TRUE(r3.ok());
  bool differs = r3.value().queries.size() != r1.value().queries.size();
  for (size_t i = 0; !differs && i < r1.value().queries.size(); ++i) {
    differs = r1.value().queries[i].at != r3.value().queries[i].at;
  }
  EXPECT_TRUE(differs) << "different seeds produced an identical schedule";
}

TEST(ScenarioRunnerTest, ReplayReproducesAnswerCountsExactly) {
  const ScenarioSpec spec = SmallFleet();
  ScenarioRunOptions record;
  Result<ScenarioResult> recorded = RunScenario(spec, record);
  ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  ASSERT_FALSE(recorded.value().issued.queries.empty());

  ScenarioRunOptions replay;
  replay.replay = &recorded.value().issued;
  Result<ScenarioResult> replayed = RunScenario(spec, replay);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ASSERT_EQ(replayed.value().queries.size(), recorded.value().queries.size());
  for (size_t i = 0; i < recorded.value().queries.size(); ++i) {
    const ScenarioQueryStats& qr = recorded.value().queries[i];
    const ScenarioQueryStats& qp = replayed.value().queries[i];
    EXPECT_EQ(qr.at, qp.at);
    EXPECT_EQ(qr.issuer, qp.issuer);
    EXPECT_EQ(qr.keyword, qp.keyword);
    EXPECT_EQ(qr.answers, qp.answers) << "query " << i;
    EXPECT_EQ(qr.unique_answers, qp.unique_answers) << "query " << i;
    EXPECT_EQ(qr.responders, qp.responders) << "query " << i;
    EXPECT_EQ(qr.completion, qp.completion) << "query " << i;
  }
  EXPECT_EQ(replayed.value().wire_bytes, recorded.value().wire_bytes);
}

TEST(ScenarioRunnerTest, ReplayAgainstWrongSpecIsRejected) {
  const ScenarioSpec spec = SmallFleet();
  ScenarioRunOptions record;
  Result<ScenarioResult> recorded = RunScenario(spec, record);
  ASSERT_TRUE(recorded.ok());

  ScenarioSpec other = spec;
  other.seed = 77;
  ScenarioRunOptions replay;
  replay.replay = &recorded.value().issued;
  EXPECT_FALSE(RunScenario(other, replay).ok());
}

TEST(ScenarioRunnerTest, StoreScaleNeverDropsBelowMatches) {
  ScenarioSpec spec = SmallFleet();
  ScenarioRunOptions full, fast;
  fast.store_scale = 0.25;
  Result<ScenarioResult> rf = RunScenario(spec, full);
  Result<ScenarioResult> rq = RunScenario(spec, fast);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rq.ok());
  // Matches are scale-invariant, so answer totals agree across scales.
  ASSERT_EQ(rf.value().queries.size(), rq.value().queries.size());
  size_t af = 0, aq = 0;
  for (const ScenarioQueryStats& q : rf.value().queries) af += q.answers;
  for (const ScenarioQueryStats& q : rq.value().queries) aq += q.answers;
  EXPECT_EQ(af, aq);
}

TEST(ScenarioRunnerTest, SlowClassCompletesSlower) {
  ScenarioSpec spec = SmallFleet();
  spec.classes[1].bandwidth_mbps = 4;     // vs the 100 Mbit/s default.
  spec.classes[1].extra_latency_ms = 20;  // each way.
  spec.phases[0].arrival.process = ArrivalProcess::kConstant;
  spec.phases[0].arrival.rate_per_s = 50;
  spec.phases[0].duration_ms = 600;
  Result<ScenarioResult> result = RunScenario(spec, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  double fast_sum = 0, slow_sum = 0;
  size_t fast_n = 0, slow_n = 0;
  for (const ScenarioQueryStats& q : result.value().queries) {
    if (q.completion == 0) continue;
    if (spec.ClassOf(q.issuer) == 0) {
      fast_sum += static_cast<double>(q.completion);
      ++fast_n;
    } else {
      slow_sum += static_cast<double>(q.completion);
      ++slow_n;
    }
  }
  ASSERT_GT(fast_n, 0u);
  ASSERT_GT(slow_n, 0u);
  EXPECT_GT(slow_sum / static_cast<double>(slow_n),
            fast_sum / static_cast<double>(fast_n));
}

TEST(ScenarioRunnerTest, FreeRidersServeNothing) {
  ScenarioSpec spec = SmallFleet();
  // Both classes free-ride: every query must come back empty, proving
  // free-rider stores contribute zero answers.
  for (NodeClassSpec& cls : spec.classes) {
    cls.matches_per_node = 0;
    cls.free_rider = true;
  }
  Result<ScenarioResult> result = RunScenario(spec, {});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().queries.empty());
  for (const ScenarioQueryStats& q : result.value().queries) {
    EXPECT_EQ(q.answers, 0u);
  }
}

TEST(ScenarioRunnerTest, ChurnWaveReducesAnswers) {
  ScenarioSpec spec = SmallFleet();
  spec.classes[1].issues_queries = false;  // b only serves.
  PhaseSpec p1 = spec.phases[0];
  p1.name = "p1";
  spec.phases.push_back(p1);

  Result<ScenarioResult> calm = RunScenario(spec, {});
  ASSERT_TRUE(calm.ok());

  ChurnWaveSpec wave;
  wave.at_ms = 400;  // start of phase p1.
  wave.target_class = "b";
  wave.fraction = 1.0;
  wave.down_for_ms = 0;  // down for the rest of the run.
  spec.churn = {wave};
  Result<ScenarioResult> churned = RunScenario(spec, {});
  ASSERT_TRUE(churned.ok());

  ASSERT_EQ(calm.value().phases.size(), 2u);
  ASSERT_EQ(churned.value().phases.size(), 2u);
  // Identical first phase (the wave hasn't hit yet), fewer answers after
  // every serving node vanishes.
  EXPECT_EQ(churned.value().phases[0].answers, calm.value().phases[0].answers);
  EXPECT_LT(churned.value().phases[1].answers, calm.value().phases[1].answers);
}

}  // namespace
}  // namespace bestpeer::scenario
