#include <gtest/gtest.h>

#include <map>
#include <set>

#include "agent/agent_message.h"
#include "agent/agent_registry.h"
#include "agent/agent_runtime.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

namespace bestpeer::agent {
namespace {

// A test agent that counts its visits by reporting to the origin node.
constexpr uint32_t kVisitReportType = 0x54560001;

class VisitAgent : public Agent {
 public:
  VisitAgent() = default;
  explicit VisitAgent(std::string tag) : tag_(std::move(tag)) {}

  std::string_view class_name() const override { return "VisitAgent"; }

  void SaveState(BinaryWriter& writer) const override {
    writer.WriteString(tag_);
  }
  Status LoadState(BinaryReader& reader) override {
    BP_ASSIGN_OR_RETURN(tag_, reader.ReadString());
    return Status::OK();
  }
  Status Execute(AgentContext& ctx) override {
    ctx.ChargeCpu(Millis(1));
    BinaryWriter w;
    w.WriteU32(ctx.current_node());
    w.WriteU16(ctx.hops());
    w.WriteString(tag_);
    ctx.SendMessage(ctx.origin_node(), kVisitReportType, w.Take());
    return Status::OK();
  }

 private:
  std::string tag_;
};

class NullHost : public AgentHost {
 public:
  explicit NullHost(NodeId node) : node_(node) {}
  storm::Storm* storage() override { return nullptr; }
  NodeId host_node() const override { return node_; }

 private:
  NodeId node_;
};

// ---------------------------------------------------------------- registry

TEST(AgentRegistryTest, RegisterCreateAndCodeSize) {
  AgentRegistry registry;
  ASSERT_TRUE(registry
                  .Register("VisitAgent", 1234,
                            []() { return std::make_unique<VisitAgent>(); })
                  .ok());
  EXPECT_TRUE(registry.Contains("VisitAgent"));
  EXPECT_EQ(registry.CodeSize("VisitAgent").value(), 1234u);
  auto agent = registry.Create("VisitAgent");
  ASSERT_TRUE(agent.ok());
  EXPECT_EQ(agent.value()->class_name(), "VisitAgent");
  EXPECT_FALSE(registry.Create("Other").ok());
  EXPECT_FALSE(registry.CodeSize("Other").ok());
  EXPECT_TRUE(registry
                  .Register("VisitAgent", 1,
                            []() { return std::make_unique<VisitAgent>(); })
                  .IsAlreadyExists());
}

TEST(CodeCacheTest, TracksResidency) {
  CodeCache cache;
  EXPECT_FALSE(cache.Has(1, "A"));
  cache.Load(1, "A");
  EXPECT_TRUE(cache.Has(1, "A"));
  EXPECT_FALSE(cache.Has(2, "A"));
  cache.Load(1, "B");
  EXPECT_EQ(cache.total_loaded(), 2u);
  cache.EvictNode(1);
  EXPECT_FALSE(cache.Has(1, "A"));
}

// ---------------------------------------------------------------- message

TEST(AgentMessageTest, RoundTrip) {
  AgentMessage m;
  m.agent_id = 99;
  m.class_name = "VisitAgent";
  m.origin = 3;
  m.ttl = 5;
  m.hops = 2;
  m.state = Bytes{1, 2, 3};
  auto back = AgentMessage::Decode(m.Encode()).value();
  EXPECT_EQ(back.agent_id, 99u);
  EXPECT_EQ(back.class_name, "VisitAgent");
  EXPECT_EQ(back.origin, 3u);
  EXPECT_EQ(back.ttl, 5);
  EXPECT_EQ(back.hops, 2);
  EXPECT_EQ(back.state, (Bytes{1, 2, 3}));
}

TEST(AgentMessageTest, RejectsTrailingBytes) {
  AgentMessage m;
  m.class_name = "X";
  Bytes encoded = m.Encode();
  encoded.push_back(0);
  EXPECT_FALSE(AgentMessage::Decode(encoded).ok());
}

TEST(AgentMessageTest, RejectsTruncationAtEveryCut) {
  AgentMessage m;
  m.agent_id = 7;
  m.class_name = "StormSearchAgent";
  m.origin = 2;
  m.ttl = 3;
  m.hops = 1;
  m.state = Bytes{1, 2, 3, 4, 5};
  Bytes encoded = m.Encode();
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    Bytes truncated(encoded.begin(), encoded.begin() + cut);
    EXPECT_FALSE(AgentMessage::Decode(truncated).ok()) << "cut at " << cut;
  }
}

TEST(AgentMessageTest, RejectsCorruptedLengthPrefixes) {
  AgentMessage m;
  m.class_name = "A";
  m.state = Bytes{9};
  Bytes encoded = m.Encode();
  // The class-name length prefix follows the u64 agent id. Inflating it
  // makes the string run past the end of the buffer.
  Bytes bad_name = encoded;
  bad_name[8] = 0xFF;
  EXPECT_FALSE(AgentMessage::Decode(bad_name).ok());
  // Corrupting the final state-length prefix the same way.
  Bytes bad_state = encoded;
  bad_state[encoded.size() - 2] = 0xFF;
  EXPECT_FALSE(AgentMessage::Decode(bad_state).ok());
}

TEST(AgentMessageTest, RejectsEmptyAndGarbageBuffers) {
  EXPECT_FALSE(AgentMessage::Decode(Bytes{}).ok());
  EXPECT_FALSE(AgentMessage::Decode(Bytes(3, 0xAB)).ok());
}

// ---------------------------------------------------------------- runtime

/// Fixture wiring a line overlay 0-1-2-3-4 of agent runtimes, with visit
/// reports collected at every node.
class AgentRuntimeTest : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 5;

  void SetUp() override {
    network_ = std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    ASSERT_TRUE(registry_
                    .Register("VisitAgent", 16 * 1024,
                              []() { return std::make_unique<VisitAgent>(); })
                    .ok());
    for (size_t i = 0; i < kNodes; ++i) {
      net::SimTransport* transport = fleet_->AddNode();
      NodeId id = transport->local();
      ids_.push_back(id);
      transports_.push_back(transport);
      hosts_.push_back(std::make_unique<NullHost>(id));
      dispatchers_.push_back(std::make_unique<net::Dispatcher>(transport));
    }
    for (size_t i = 0; i < kNodes; ++i) {
      size_t idx = i;
      AgentRuntimeOptions options;
      runtimes_.push_back(std::make_unique<AgentRuntime>(
          transports_[i], &registry_, &cache_, hosts_[i].get(),
          [this, idx]() { return neighbors_[idx]; }, options));
      dispatchers_[i]->Register(
          kAgentTransferType, [this, idx](const net::Message& m) {
            runtimes_[idx]->OnMessage(m).ok();
          });
      dispatchers_[i]->Register(
          kVisitReportType, [this, idx](const net::Message& m) {
            // Reports are compressed by the runtime codec (null here).
            BinaryReader r(m.payload);
            uint32_t node = r.ReadU32().value();
            uint16_t hops = r.ReadU16().value();
            reports_[idx].emplace_back(node, hops);
          });
    }
    neighbors_.resize(kNodes);
    // Line overlay.
    for (size_t i = 0; i < kNodes; ++i) {
      if (i > 0) neighbors_[i].push_back(ids_[i - 1]);
      if (i + 1 < kNodes) neighbors_[i].push_back(ids_[i + 1]);
    }
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::vector<net::SimTransport*> transports_;
  AgentRegistry registry_;
  CodeCache cache_;
  std::vector<NodeId> ids_;
  std::vector<std::unique_ptr<NullHost>> hosts_;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers_;
  std::vector<std::unique_ptr<AgentRuntime>> runtimes_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::map<size_t, std::vector<std::pair<uint32_t, uint16_t>>> reports_;
};

TEST_F(AgentRuntimeTest, PropagatesAlongLineWithHops) {
  VisitAgent agent("t");
  ASSERT_TRUE(
      runtimes_[0]->Launch(1, agent, /*ttl=*/10, /*execute_locally=*/false)
          .ok());
  sim_.RunUntilIdle();
  // Origin (index 0) receives one report from each other node.
  auto& reports = reports_[0];
  ASSERT_EQ(reports.size(), kNodes - 1);
  std::map<uint32_t, uint16_t> hops_by_node;
  for (auto& [node, hops] : reports) hops_by_node[node] = hops;
  EXPECT_EQ(hops_by_node[ids_[1]], 1);
  EXPECT_EQ(hops_by_node[ids_[2]], 2);
  EXPECT_EQ(hops_by_node[ids_[3]], 3);
  EXPECT_EQ(hops_by_node[ids_[4]], 4);
}

TEST_F(AgentRuntimeTest, TtlLimitsReach) {
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, /*ttl=*/2, false).ok());
  sim_.RunUntilIdle();
  // TTL 2: reaches nodes 1 and 2 only.
  EXPECT_EQ(reports_[0].size(), 2u);
}

TEST_F(AgentRuntimeTest, TtlZeroNeverLeaves) {
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, /*ttl=*/0, false).ok());
  sim_.RunUntilIdle();
  EXPECT_TRUE(reports_[0].empty());
}

TEST_F(AgentRuntimeTest, ExecuteLocallyRunsAtOrigin) {
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, /*ttl=*/1, true).ok());
  sim_.RunUntilIdle();
  // Local execution + node 1.
  ASSERT_EQ(reports_[0].size(), 2u);
}

TEST_F(AgentRuntimeTest, DuplicateDropOnCycles) {
  // Make the overlay a triangle among 0,1,2.
  neighbors_[0] = {ids_[1], ids_[2]};
  neighbors_[1] = {ids_[0], ids_[2]};
  neighbors_[2] = {ids_[0], ids_[1]};
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, /*ttl=*/10, false).ok());
  sim_.RunUntilIdle();
  // Each of nodes 1 and 2 executes exactly once despite the cycle.
  EXPECT_EQ(reports_[0].size(), 2u);
  EXPECT_GE(runtimes_[1]->duplicates_dropped() +
                runtimes_[2]->duplicates_dropped(),
            1u);
}

TEST_F(AgentRuntimeTest, SeenTableExpiryForgetsOldAgents) {
  // Rebuild the runtimes with a tiny dup-table expiry; the dispatcher
  // hooks read runtimes_[idx], so they pick up the replacements.
  AgentRuntimeOptions options;
  options.seen_expiry = Micros(1);
  for (size_t i = 0; i < kNodes; ++i) {
    size_t idx = i;
    runtimes_[i] = std::make_unique<AgentRuntime>(
        transports_[i], &registry_, &cache_, hosts_[i].get(),
        [this, idx]() { return neighbors_[idx]; }, options);
  }
  // Triangle among 0,1,2: nodes 1 and 2 cross-forward, so each receives
  // the other's clone a few ms after its own first sighting.
  neighbors_[0] = {ids_[1], ids_[2]};
  neighbors_[1] = {ids_[0], ids_[2]};
  neighbors_[2] = {ids_[0], ids_[1]};
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, /*ttl=*/10, false).ok());
  sim_.RunUntilIdle();
  // The cross-forwarded copies arrive after the 1 µs expiry, so instead
  // of duplicate drops (compare DuplicateDropOnCycles) both nodes have
  // forgotten the agent and execute it a second time.
  EXPECT_EQ(reports_[0].size(), 4u);  // Nodes 1 and 2, twice each.
  EXPECT_EQ(runtimes_[1]->duplicates_dropped(), 0u);
  EXPECT_EQ(runtimes_[2]->duplicates_dropped(), 0u);
  EXPECT_GE(runtimes_[1]->seen_expired() + runtimes_[2]->seen_expired(), 2u);
}

TEST_F(AgentRuntimeTest, CodeShippedOnlyOnFirstVisit) {
  VisitAgent agent("a");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, 10, false).ok());
  sim_.RunUntilIdle();
  uint64_t bytes_first = network_->total_wire_bytes();
  // Second launch: classes are cached everywhere, so much less traffic.
  VisitAgent agent2("b");
  ASSERT_TRUE(runtimes_[0]->Launch(2, agent2, 10, false).ok());
  sim_.RunUntilIdle();
  uint64_t bytes_second = network_->total_wire_bytes() - bytes_first;
  EXPECT_LT(bytes_second, bytes_first / 2)
      << "cached classes should not be re-shipped";
  for (size_t i = 0; i < kNodes; ++i) {
    EXPECT_TRUE(cache_.Has(ids_[i], "VisitAgent"));
  }
}

TEST_F(AgentRuntimeTest, UnregisteredClassFailsLaunch) {
  class StrangerAgent : public VisitAgent {
   public:
    std::string_view class_name() const override { return "Stranger"; }
  };
  StrangerAgent agent;
  EXPECT_TRUE(
      runtimes_[0]->Launch(1, agent, 1, false).IsFailedPrecondition());
}

TEST_F(AgentRuntimeTest, LaunchToTargetsOnlySelectedNodes) {
  VisitAgent agent("t");
  // Target only node 2 (skipping neighbour 1) with ttl 1: exactly one
  // execution, no onward cloning.
  ASSERT_TRUE(
      runtimes_[0]->LaunchTo(1, agent, /*ttl=*/1, {ids_[2]}).ok());
  sim_.RunUntilIdle();
  ASSERT_EQ(reports_[0].size(), 1u);
  EXPECT_EQ(reports_[0][0].first, ids_[2]);
  EXPECT_EQ(reports_[0][0].second, 1);  // Hops = 1 for a direct send.
  EXPECT_EQ(runtimes_[1]->agents_received(), 0u);
}

TEST_F(AgentRuntimeTest, LaunchToWithLargerTtlClonesOnward) {
  VisitAgent agent("t");
  // Target node 1 with ttl 3: it forwards along the line to 2 and 3.
  ASSERT_TRUE(runtimes_[0]->LaunchTo(1, agent, 3, {ids_[1]}).ok());
  sim_.RunUntilIdle();
  EXPECT_EQ(reports_[0].size(), 3u);
}

TEST_F(AgentRuntimeTest, LaunchToRejectsZeroTtl) {
  VisitAgent agent("t");
  EXPECT_TRUE(
      runtimes_[0]->LaunchTo(1, agent, 0, {ids_[1]}).IsInvalidArgument());
}

TEST_F(AgentRuntimeTest, StatsCountReceiptsAndExecutions) {
  VisitAgent agent("t");
  ASSERT_TRUE(runtimes_[0]->Launch(1, agent, 10, false).ok());
  sim_.RunUntilIdle();
  EXPECT_EQ(runtimes_[1]->agents_received(), 1u);
  EXPECT_EQ(runtimes_[1]->agents_executed(), 1u);
  EXPECT_GE(runtimes_[1]->clones_sent(), 1u);
}

}  // namespace
}  // namespace bestpeer::agent
