#include <gtest/gtest.h>

#include "liglo/bpid.h"
#include "liglo/ip_directory.h"
#include "liglo/liglo_client.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace bestpeer::liglo {
namespace {

// ---------------------------------------------------------------- Bpid

TEST(BpidTest, ToStringAndParse) {
  Bpid bpid{3, 17};
  EXPECT_EQ(bpid.ToString(), "3/17");
  auto parsed = Bpid::Parse("3/17").value();
  EXPECT_EQ(parsed, bpid);
  EXPECT_FALSE(Bpid::Parse("3").ok());
  EXPECT_FALSE(Bpid::Parse("a/b").ok());
  EXPECT_FALSE(Bpid::Parse("3/17/9").ok());
  EXPECT_FALSE(Bpid::Parse("/17").ok());
}

TEST(BpidTest, EncodeDecode) {
  Bpid bpid{7, 1234};
  BinaryWriter w;
  bpid.EncodeTo(w);
  BinaryReader r(w.buffer());
  EXPECT_EQ(Bpid::DecodeFrom(r).value(), bpid);
}

TEST(BpidTest, Validity) {
  EXPECT_FALSE(Bpid{}.IsValid());
  EXPECT_TRUE((Bpid{1, 0}).IsValid());
}

// ---------------------------------------------------------------- IpDirectory

TEST(IpDirectoryTest, AssignResolveRelease) {
  IpDirectory dir;
  ASSERT_TRUE(dir.Assign(100, 5).ok());
  EXPECT_EQ(dir.Resolve(100).value(), 5u);
  EXPECT_EQ(dir.AddressOf(5), 100u);
  // Reassign the node to a new address.
  ASSERT_TRUE(dir.Assign(200, 5).ok());
  EXPECT_FALSE(dir.Resolve(100).ok());
  EXPECT_EQ(dir.Resolve(200).value(), 5u);
  // Another node cannot steal the address.
  EXPECT_TRUE(dir.Assign(200, 6).IsAlreadyExists());
  dir.Release(5);
  EXPECT_FALSE(dir.Resolve(200).ok());
  EXPECT_EQ(dir.AddressOf(5), kInvalidIp);
}

TEST(IpDirectoryTest, FreshAddressesAreUnique) {
  IpDirectory dir;
  IpAddress a = dir.AssignFresh(1);
  IpAddress b = dir.AssignFresh(2);
  EXPECT_NE(a, b);
  EXPECT_EQ(dir.Resolve(a).value(), 1u);
  EXPECT_EQ(dir.Resolve(b).value(), 2u);
}

TEST(IpDirectoryTest, InvalidAddressRejected) {
  IpDirectory dir;
  EXPECT_FALSE(dir.Assign(kInvalidIp, 1).ok());
}

// ---------------------------------------------------------------- protocol

class LigloFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    server_transport_ = fleet_->AddNode();
    server_node_ = server_transport_->local();
    server_dispatcher_ = std::make_unique<net::Dispatcher>(server_transport_);
  }

  void MakeServer(LigloServerOptions options = {}) {
    server_ = std::make_unique<LigloServer>(server_transport_,
                                            server_dispatcher_.get(),
                                            &ips_, options);
  }

  struct ClientBundle {
    NodeId node;
    net::SimTransport* transport;
    std::unique_ptr<net::Dispatcher> dispatcher;
    std::unique_ptr<LigloClient> client;
    IpAddress ip;
  };

  ClientBundle MakeClient(LigloClientOptions options = {}) {
    ClientBundle b;
    b.transport = fleet_->AddNode();
    b.node = b.transport->local();
    b.dispatcher = std::make_unique<net::Dispatcher>(b.transport);
    b.client = std::make_unique<LigloClient>(b.transport, b.dispatcher.get(),
                                             &ips_, options);
    b.ip = ips_.AssignFresh(b.node);
    return b;
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  net::SimTransport* server_transport_ = nullptr;
  NodeId server_node_ = kInvalidNode;
  std::unique_ptr<net::Dispatcher> server_dispatcher_;
  std::unique_ptr<LigloServer> server_;
  IpDirectory ips_;
};

TEST_F(LigloFixture, RegisterAssignsBpidAndPeers) {
  MakeServer();
  auto c1 = MakeClient();
  auto c2 = MakeClient();

  Result<LigloClient::RegisterOutcome> first = Status::Internal("unset");
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        first = std::move(r);
                      });
  sim_.RunUntilIdle();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->bpid.liglo_id, server_node_);
  EXPECT_TRUE(first->peers.empty());  // First member gets no peers.
  EXPECT_TRUE(c1.client->registered());

  Result<LigloClient::RegisterOutcome> second = Status::Internal("unset");
  c2.client->Register(server_node_, c2.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        second = std::move(r);
                      });
  sim_.RunUntilIdle();
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->peers.size(), 1u);
  EXPECT_EQ(second->peers[0].bpid, first->bpid);
  EXPECT_EQ(second->peers[0].ip, c1.ip);
  EXPECT_NE(second->bpid, first->bpid);
  EXPECT_EQ(server_->member_count(), 2u);
  EXPECT_EQ(server_->registrations(), 2u);
}

TEST_F(LigloFixture, CapacityLimitRejects) {
  LigloServerOptions options;
  options.capacity = 1;
  MakeServer(options);
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  Status second_status = Status::OK();
  c1.client->Register(server_node_, c1.ip, nullptr);
  sim_.RunUntilIdle();
  c2.client->Register(server_node_, c2.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        second_status = r.status();
                      });
  sim_.RunUntilIdle();
  EXPECT_TRUE(second_status.IsResourceExhausted());
  EXPECT_EQ(server_->member_count(), 1u);
  EXPECT_EQ(server_->rejections(), 1u);
}

TEST_F(LigloFixture, ResolveReturnsCurrentAddress) {
  MakeServer();
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  Bpid bpid1;
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid1 = r->bpid;
                      });
  c2.client->Register(server_node_, c2.ip, nullptr);
  sim_.RunUntilIdle();

  Result<LigloClient::ResolveOutcome> res = Status::Internal("unset");
  c2.client->Resolve(bpid1, [&](Result<LigloClient::ResolveOutcome> r) {
    res = std::move(r);
  });
  sim_.RunUntilIdle();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->state, PeerState::kOnline);
  EXPECT_EQ(res->ip, c1.ip);
}

TEST_F(LigloFixture, ResolveUnknownBpid) {
  MakeServer();
  auto c1 = MakeClient();
  c1.client->Register(server_node_, c1.ip, nullptr);
  sim_.RunUntilIdle();
  Result<LigloClient::ResolveOutcome> res = Status::Internal("unset");
  c1.client->Resolve(Bpid{server_node_, 999},
                     [&](Result<LigloClient::ResolveOutcome> r) {
                       res = std::move(r);
                     });
  sim_.RunUntilIdle();
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->state, PeerState::kUnknown);
}

TEST_F(LigloFixture, UpdateAddressChangesResolution) {
  MakeServer();
  auto c1 = MakeClient();
  Bpid bpid1;
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid1 = r->bpid;
                      });
  sim_.RunUntilIdle();

  // Simulate reconnection with a new address.
  IpAddress new_ip = ips_.AssignFresh(c1.node);
  Status update = Status::Internal("unset");
  c1.client->UpdateAddress(new_ip, true, [&](Status s) { update = s; });
  sim_.RunUntilIdle();
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(server_->MemberIp(bpid1).value(), new_ip);
}

TEST_F(LigloFixture, GracefulOfflineReportedByResolve) {
  MakeServer();
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  Bpid bpid1;
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid1 = r->bpid;
                      });
  c2.client->Register(server_node_, c2.ip, nullptr);
  sim_.RunUntilIdle();
  c1.client->UpdateAddress(c1.ip, /*online=*/false, nullptr);
  sim_.RunUntilIdle();

  Result<LigloClient::ResolveOutcome> res = Status::Internal("unset");
  c2.client->Resolve(bpid1, [&](Result<LigloClient::ResolveOutcome> r) {
    res = std::move(r);
  });
  sim_.RunUntilIdle();
  EXPECT_EQ(res->state, PeerState::kOffline);
}

TEST_F(LigloFixture, RejoinRefreshesPeers) {
  MakeServer();
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  auto c3 = MakeClient();
  Bpid bpid2, bpid3;
  c1.client->Register(server_node_, c1.ip, nullptr);
  c2.client->Register(server_node_, c2.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid2 = r->bpid;
                      });
  c3.client->Register(server_node_, c3.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid3 = r->bpid;
                      });
  sim_.RunUntilIdle();

  // c2 changes address; c3 goes offline.
  IpAddress c2_new = ips_.AssignFresh(c2.node);
  c2.client->UpdateAddress(c2_new, true, nullptr);
  c3.client->UpdateAddress(c3.ip, false, nullptr);
  sim_.RunUntilIdle();

  Result<LigloClient::RejoinOutcome> rejoin = Status::Internal("unset");
  c1.client->Rejoin(c1.ip, {bpid2, bpid3},
                    [&](Result<LigloClient::RejoinOutcome> r) {
                      rejoin = std::move(r);
                    });
  sim_.RunUntilIdle();
  ASSERT_TRUE(rejoin.ok());
  ASSERT_EQ(rejoin->peers.size(), 2u);
  EXPECT_EQ(rejoin->peers[0].state, PeerState::kOnline);
  EXPECT_EQ(rejoin->peers[0].ip, c2_new);
  EXPECT_EQ(rejoin->peers[1].state, PeerState::kOffline);
}

TEST_F(LigloFixture, RequestToDeadServerTimesOut) {
  MakeServer();
  auto c1 = MakeClient();
  network_->SetOnline(server_node_, false);
  Status status = Status::OK();
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        status = r.status();
                      });
  sim_.RunUntilIdle();
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(c1.client->timeouts(), 1u);
}

TEST_F(LigloFixture, RetryRecoversFromTransientServerOutage) {
  MakeServer();
  LigloClientOptions retrying;
  retrying.max_retries = 2;
  auto c1 = MakeClient(retrying);
  network_->SetOnline(server_node_, false);
  // The server comes back after the first attempt has already timed out
  // (timeout 2s) but before the backed-off resend (~200ms later) lands.
  sim_.ScheduleAt(Seconds(2) + Millis(50), [&]() {
    network_->SetOnline(server_node_, true);
  });

  Result<LigloClient::RegisterOutcome> outcome = Status::Internal("unset");
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        outcome = std::move(r);
                      });
  sim_.RunUntilIdle();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(c1.client->registered());
  EXPECT_EQ(c1.client->timeouts(), 1u);
  EXPECT_EQ(c1.client->retries(), 1u);
}

TEST_F(LigloFixture, ExhaustedRetriesFailUnavailable) {
  MakeServer();
  LigloClientOptions retrying;
  retrying.max_retries = 2;
  auto c1 = MakeClient(retrying);
  network_->SetOnline(server_node_, false);  // And it stays dead.
  Status status = Status::OK();
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        status = r.status();
                      });
  sim_.RunUntilIdle();
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(c1.client->timeouts(), 3u);  // Original + 2 resends.
  EXPECT_EQ(c1.client->retries(), 2u);
}

TEST_F(LigloFixture, UpdateRequestsAreNeverRetried) {
  MakeServer();
  LigloClientOptions retrying;
  retrying.max_retries = 3;
  auto c1 = MakeClient(retrying);
  c1.client->Register(server_node_, c1.ip, nullptr);
  sim_.RunUntilIdle();
  network_->SetOnline(server_node_, false);
  Status status = Status::OK();
  c1.client->UpdateAddress(c1.ip, true, [&](Status s) { status = s; });
  sim_.RunUntilIdle();
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_EQ(c1.client->timeouts(), 1u);  // Fire-once: no resends.
  EXPECT_EQ(c1.client->retries(), 0u);
}

TEST_F(LigloFixture, LateReplyAfterTimeoutIsCountedAndIgnored) {
  MakeServer();
  LigloClientOptions impatient;
  impatient.request_timeout = Micros(100);  // Far below one RTT.
  auto c1 = MakeClient(impatient);
  Status status = Status::OK();
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        status = r.status();
                      });
  sim_.RunUntilIdle();
  // The request timed out before the (successful) response arrived; the
  // straggler must be counted and must not resurrect the callback.
  EXPECT_TRUE(status.IsUnavailable());
  EXPECT_FALSE(c1.client->registered());
  EXPECT_EQ(c1.client->timeouts(), 1u);
  EXPECT_EQ(c1.client->late_replies(), 1u);
}

TEST(LigloRetryUnderLossTest, RetryUntilSuccessUnderMessageLoss) {
  sim::Simulator sim;
  sim::FaultOptions fault_options;
  fault_options.seed = 11;
  fault_options.message_loss = 0.3;
  sim::FaultInjector* faults = sim.EnableFaults(fault_options);
  sim::SimNetwork network(&sim, sim::NetworkOptions{});
  net::SimTransportFleet fleet(&network);
  IpDirectory ips;

  net::SimTransport* server_transport = fleet.AddNode();
  NodeId server_node = server_transport->local();
  net::Dispatcher server_dispatcher(server_transport);
  LigloServer server(server_transport, &server_dispatcher, &ips, {});

  net::SimTransport* client_transport = fleet.AddNode();
  NodeId client_node = client_transport->local();
  net::Dispatcher client_dispatcher(client_transport);
  LigloClientOptions retrying;
  retrying.max_retries = 10;
  LigloClient client(client_transport, &client_dispatcher, &ips, retrying);
  IpAddress ip = ips.AssignFresh(client_node);

  Result<LigloClient::RegisterOutcome> outcome = Status::Internal("unset");
  client.Register(server_node, ip,
                  [&](Result<LigloClient::RegisterOutcome> r) {
                    outcome = std::move(r);
                  });
  sim.RunUntilIdle();
  // At 30% loss a round trip fails roughly half the time; with 10
  // deterministic retries this seed registers.
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(client.registered());
  EXPECT_GT(faults->drops(), 0u);
  EXPECT_EQ(client.retries(), client.timeouts());
}

TEST_F(LigloFixture, SweepMarksSilentMembersOffline) {
  LigloServerOptions options;
  options.sweep_interval = Millis(100);
  options.ping_timeout = Millis(20);
  MakeServer(options);
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  Bpid bpid1, bpid2;
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid1 = r->bpid;
                      });
  c2.client->Register(server_node_, c2.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid2 = r->bpid;
                      });
  sim_.RunUntilIdle();
  EXPECT_EQ(server_->online_count(), 2u);

  // c2 silently disappears (no graceful offline notice).
  network_->SetOnline(c2.node, false);
  server_->StartSweep();
  sim_.RunUntil(sim_.now() + Millis(500));
  server_->StopSweep();
  sim_.RunUntilIdle();

  EXPECT_EQ(server_->MemberState(bpid1).value(), PeerState::kOnline);
  EXPECT_EQ(server_->MemberState(bpid2).value(), PeerState::kOffline);
}

TEST_F(LigloFixture, DiscoverPeersSamplesOnlineMembers) {
  MakeServer();
  std::vector<ClientBundle> clients;
  for (int i = 0; i < 5; ++i) clients.push_back(MakeClient());
  for (auto& c : clients) {
    c.client->Register(server_node_, c.ip, nullptr);
    sim_.RunUntilIdle();
  }
  // Member 4 asks for peers: gets up to initial_peer_count (4) entries,
  // never itself.
  Result<std::vector<PeerEntry>> peers = Status::Internal("unset");
  clients[4].client->DiscoverPeers(
      [&](Result<std::vector<PeerEntry>> r) { peers = std::move(r); });
  sim_.RunUntilIdle();
  ASSERT_TRUE(peers.ok());
  EXPECT_EQ(peers->size(), 4u);
  for (const auto& entry : peers.value()) {
    EXPECT_NE(entry.bpid, clients[4].client->bpid());
  }
}

TEST_F(LigloFixture, DiscoverPeersRequiresRegistration) {
  MakeServer();
  auto c = MakeClient();
  Status status = Status::OK();
  c.client->DiscoverPeers(
      [&](Result<std::vector<PeerEntry>> r) { status = r.status(); });
  EXPECT_TRUE(status.IsFailedPrecondition());
}

TEST_F(LigloFixture, DiscoverPeersExcludesOfflineMembers) {
  MakeServer();
  auto c1 = MakeClient();
  auto c2 = MakeClient();
  auto c3 = MakeClient();
  for (auto* c : {&c1, &c2, &c3}) {
    c->client->Register(server_node_, c->ip, nullptr);
    sim_.RunUntilIdle();
  }
  c2.client->UpdateAddress(c2.ip, /*online=*/false, nullptr);
  sim_.RunUntilIdle();
  Result<std::vector<PeerEntry>> peers = Status::Internal("unset");
  c3.client->DiscoverPeers(
      [&](Result<std::vector<PeerEntry>> r) { peers = std::move(r); });
  sim_.RunUntilIdle();
  ASSERT_TRUE(peers.ok());
  ASSERT_EQ(peers->size(), 1u);
  EXPECT_EQ(peers->front().bpid, c1.client->bpid());
}

TEST_F(LigloFixture, RegisterWithFallbackSkipsFullServer) {
  LigloServerOptions tiny;
  tiny.capacity = 1;
  MakeServer(tiny);  // First server: capacity 1.
  net::SimTransport* server2_transport = fleet_->AddNode();
  NodeId server2_node = server2_transport->local();
  net::Dispatcher dispatcher2(server2_transport);
  LigloServer server2(server2_transport, &dispatcher2, &ips_, {});

  auto c1 = MakeClient();
  auto c2 = MakeClient();
  c1.client->Register(server_node_, c1.ip, nullptr);
  sim_.RunUntilIdle();

  Result<LigloClient::RegisterOutcome> outcome = Status::Internal("unset");
  c2.client->RegisterWithFallback(
      {server_node_, server2_node}, c2.ip,
      [&](Result<LigloClient::RegisterOutcome> r) { outcome = std::move(r); });
  sim_.RunUntilIdle();
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->bpid.liglo_id, server2_node)
      << "the full first server must be skipped";
  EXPECT_EQ(server2.member_count(), 1u);
}

TEST_F(LigloFixture, RegisterWithFallbackExhaustsAllServers) {
  LigloServerOptions tiny;
  tiny.capacity = 0;
  MakeServer(tiny);
  auto filler = MakeClient();
  auto c2 = MakeClient();
  // Make the only server full.
  LigloServerOptions full;
  full.capacity = 1;
  server_ = std::make_unique<LigloServer>(server_transport_,
                                          server_dispatcher_.get(), &ips_,
                                          full);
  filler.client->Register(server_node_, filler.ip, nullptr);
  sim_.RunUntilIdle();

  Status status = Status::OK();
  c2.client->RegisterWithFallback(
      {server_node_}, c2.ip,
      [&](Result<LigloClient::RegisterOutcome> r) { status = r.status(); });
  sim_.RunUntilIdle();
  EXPECT_TRUE(status.IsResourceExhausted());
}

TEST_F(LigloFixture, MultipleServersIndependentNamespaces) {
  MakeServer();
  // Second server on its own node.
  net::SimTransport* server2_transport = fleet_->AddNode();
  NodeId server2_node = server2_transport->local();
  net::Dispatcher dispatcher2(server2_transport);
  LigloServer server2(server2_transport, &dispatcher2, &ips_, {});

  auto c1 = MakeClient();
  auto c2 = MakeClient();
  Bpid bpid1, bpid2;
  c1.client->Register(server_node_, c1.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid1 = r->bpid;
                      });
  c2.client->Register(server2_node, c2.ip,
                      [&](Result<LigloClient::RegisterOutcome> r) {
                        bpid2 = r->bpid;
                      });
  sim_.RunUntilIdle();
  // Same node_id may repeat across servers; liglo_id disambiguates.
  EXPECT_EQ(bpid1.node_id, bpid2.node_id);
  EXPECT_NE(bpid1.liglo_id, bpid2.liglo_id);
  // Cross-resolution works: c1 resolves c2 via server 2.
  Result<LigloClient::ResolveOutcome> res = Status::Internal("unset");
  c1.client->Resolve(bpid2, [&](Result<LigloClient::ResolveOutcome> r) {
    res = std::move(r);
  });
  sim_.RunUntilIdle();
  EXPECT_EQ(res->state, PeerState::kOnline);
  EXPECT_EQ(res->ip, c2.ip);
}

}  // namespace
}  // namespace bestpeer::liglo
