#include <gtest/gtest.h>

#include "util/strings.h"
#include "workload/corpus.h"
#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::workload {
namespace {

// ---------------------------------------------------------------- topology

TEST(TopologyTest, Star) {
  Topology t = MakeStar(5);
  EXPECT_EQ(t.node_count, 5u);
  EXPECT_EQ(t.edges.size(), 4u);
  EXPECT_EQ(t.Degree(0), 4u);
  EXPECT_EQ(t.Degree(1), 1u);
  EXPECT_TRUE(t.Connected());
}

TEST(TopologyTest, Line) {
  Topology t = MakeLine(4);
  EXPECT_EQ(t.edges.size(), 3u);
  EXPECT_EQ(t.Degree(0), 1u);
  EXPECT_EQ(t.Degree(1), 2u);
  auto dist = t.Distances(0);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_TRUE(t.Connected());
}

TEST(TopologyTest, TreeLevels) {
  EXPECT_EQ(TreeNodeCount(0, 3), 1u);
  EXPECT_EQ(TreeNodeCount(1, 3), 4u);
  EXPECT_EQ(TreeNodeCount(2, 3), 13u);
  EXPECT_EQ(TreeNodeCount(3, 2), 15u);
  Topology t = MakeTree(13, 3);
  EXPECT_TRUE(t.Connected());
  EXPECT_EQ(t.Degree(0), 3u);  // Root has fanout children.
  auto dist = t.Distances(0);
  size_t max_depth = 0;
  for (size_t d : dist) max_depth = std::max(max_depth, d);
  EXPECT_EQ(max_depth, 2u);
}

TEST(TopologyTest, PartialTreeLastLevel) {
  // 48 nodes with fanout 2 (the paper's level-5 tree uses 48 of 63).
  Topology t = MakeTree(48, 2);
  EXPECT_EQ(t.node_count, 48u);
  EXPECT_TRUE(t.Connected());
  auto dist = t.Distances(0);
  size_t max_depth = 0;
  for (size_t d : dist) max_depth = std::max(max_depth, d);
  EXPECT_EQ(max_depth, 5u);
}

TEST(TopologyTest, SingleNodeTopologies) {
  EXPECT_TRUE(MakeStar(1).Connected());
  EXPECT_TRUE(MakeLine(1).Connected());
  EXPECT_TRUE(MakeTree(1, 2).Connected());
  EXPECT_EQ(MakeStar(1).edges.size(), 0u);
}

class RandomTopologyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomTopologyTest, ConnectedAndDegreeBounded) {
  Rng rng(GetParam());
  for (size_t n : {2, 8, 32}) {
    for (size_t deg : {2, 4, 8}) {
      Topology t = MakeRandom(n, deg, rng);
      EXPECT_TRUE(t.Connected()) << "n=" << n << " deg=" << deg;
      // Soft cap: spanning edges may exceed it by a small constant.
      for (size_t i = 0; i < n; ++i) {
        EXPECT_LE(t.Degree(i), deg + 2) << "n=" << n << " deg=" << deg;
      }
      // No self loops or duplicate edges.
      std::set<std::pair<size_t, size_t>> seen;
      for (auto e : t.edges) {
        EXPECT_NE(e.first, e.second);
        EXPECT_TRUE(seen.insert(e).second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTopologyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------- corpus

TEST(CorpusTest, MatchingObjectsContainNeedle) {
  CorpusGenerator corpus({1024, 500, 0.8}, 7);
  for (int i = 0; i < 20; ++i) {
    Bytes match = corpus.MakeObject(true);
    EXPECT_EQ(match.size(), 1024u);
    EXPECT_TRUE(ContainsKeyword(ToString(match), CorpusGenerator::kNeedle));
    Bytes plain = corpus.MakeObject(false);
    EXPECT_FALSE(ContainsKeyword(ToString(plain), CorpusGenerator::kNeedle));
  }
}

TEST(CorpusTest, FileNamesFollowMatchFlag) {
  CorpusGenerator corpus({1024, 500, 0.8}, 7);
  EXPECT_TRUE(ContainsKeyword(corpus.MakeFileName(true, 0),
                              CorpusGenerator::kNeedle));
  EXPECT_FALSE(ContainsKeyword(corpus.MakeFileName(false, 0),
                               CorpusGenerator::kNeedle));
}

TEST(CorpusTest, DeterministicPerSeed) {
  CorpusGenerator a({256, 100, 0.8}, 42);
  CorpusGenerator b({256, 100, 0.8}, 42);
  EXPECT_EQ(a.MakeObject(false), b.MakeObject(false));
}

// ---------------------------------------------------------------- placement

TEST(PlacementTest, FarHotPlacementPicksDistantNodes) {
  Topology line = MakeLine(6);
  auto matches = FarHotPlacement(line, 2, 10);
  ASSERT_EQ(matches.size(), 6u);
  EXPECT_EQ(matches[5], 10u);
  EXPECT_EQ(matches[4], 10u);
  EXPECT_EQ(matches[0], 0u);  // Base never holds answers.
  size_t total = 0;
  for (size_t m : matches) total += m;
  EXPECT_EQ(total, 20u);
}

// ---------------------------------------------------------------- runner

TEST(ExperimentTest, SmallBestPeerRun) {
  ExperimentOptions options;
  options.topology = MakeLine(4);
  options.scheme = Scheme::kBpr;
  options.objects_per_node = 50;
  options.matches_per_node = 2;
  options.queries = 2;
  options.max_direct_peers = 2;
  auto result = RunExperiment(options).value();
  ASSERT_EQ(result.queries.size(), 2u);
  // 3 non-base nodes x 2 matches.
  EXPECT_EQ(result.queries[0].total_answers, 6u);
  EXPECT_GT(result.queries[0].completion, 0);
  // Reconfiguration strictly helps on a line.
  EXPECT_LT(result.queries[1].completion, result.queries[0].completion);
}

TEST(ExperimentTest, SmallCsRun) {
  ExperimentOptions options;
  options.topology = MakeStar(4);
  options.scheme = Scheme::kMcs;
  options.objects_per_node = 50;
  options.matches_per_node = 3;
  options.queries = 1;
  auto result = RunExperiment(options).value();
  EXPECT_EQ(result.queries[0].total_answers, 9u);
  EXPECT_EQ(result.queries[0].responders, 3u);
}

TEST(ExperimentTest, SmallGnutellaRun) {
  ExperimentOptions options;
  options.topology = MakeLine(4);
  options.scheme = Scheme::kGnutella;
  options.files_per_node = 50;
  options.matches_per_node = 2;
  options.queries = 2;
  auto result = RunExperiment(options).value();
  EXPECT_EQ(result.queries[0].total_answers, 6u);
  // Gnutella never reconfigures: identical repeated runs.
  EXPECT_EQ(result.queries[0].completion, result.queries[1].completion);
}

TEST(ExperimentTest, PlacementVectorControlsAnswers) {
  ExperimentOptions options;
  options.topology = MakeLine(4);
  options.scheme = Scheme::kBps;
  options.objects_per_node = 30;
  options.matches_per_node_vec = {0, 0, 0, 5};
  options.queries = 1;
  auto result = RunExperiment(options).value();
  EXPECT_EQ(result.queries[0].total_answers, 5u);
  EXPECT_EQ(result.queries[0].responders, 1u);
}

TEST(ExperimentTest, ValidatesPlacementSize) {
  ExperimentOptions options;
  options.topology = MakeLine(3);
  options.matches_per_node_vec = {1, 2};  // Wrong length.
  EXPECT_FALSE(RunExperiment(options).ok());
}

TEST(ExperimentTest, DeterministicAcrossRuns) {
  ExperimentOptions options;
  options.topology = MakeTree(7, 2);
  options.scheme = Scheme::kBpr;
  options.objects_per_node = 30;
  options.matches_per_node = 1;
  options.queries = 2;
  auto r1 = RunExperiment(options).value();
  auto r2 = RunExperiment(options).value();
  ASSERT_EQ(r1.queries.size(), r2.queries.size());
  for (size_t i = 0; i < r1.queries.size(); ++i) {
    EXPECT_EQ(r1.queries[i].completion, r2.queries[i].completion);
    EXPECT_EQ(r1.queries[i].total_answers, r2.queries[i].total_answers);
  }
}

TEST(ExperimentTest, AveragedRunsMerge) {
  ExperimentOptions options;
  options.topology = MakeLine(3);
  options.scheme = Scheme::kMcs;
  options.objects_per_node = 20;
  options.matches_per_node = 1;
  options.queries = 1;
  auto avg = RunAveraged(options, {1, 2, 3}).value();
  ASSERT_EQ(avg.queries.size(), 1u);
  EXPECT_EQ(avg.queries[0].total_answers, 2u);
  EXPECT_GT(avg.queries[0].completion, 0);
}

}  // namespace
}  // namespace bestpeer::workload
