// Edge cases and defensive behaviours across modules that the per-module
// suites don't reach: self-sends, storage-less nodes, empty overlays,
// protocol messages from strangers, and cost-model boundaries.

#include <gtest/gtest.h>

#include <memory>

#include "core/node.h"
#include "core/search_agent.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "storm/keyword_index.h"
#include "storm/pager.h"
#include "util/logging.h"

namespace bestpeer {
namespace {

// ---------------------------------------------------------------- sim

TEST(SimEdgeTest, SelfSendDelivers) {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  NodeId a = network.AddNode();
  int received = 0;
  network.SetHandler(a, [&](const net::Message& m) {
    EXPECT_EQ(m.src, a);
    ++received;
  });
  network.Send(a, a, 1, Bytes(10, 0));
  simulator.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

TEST(SimEdgeTest, CpuEarliestFreeTracksBacklog) {
  sim::Simulator simulator;
  sim::CpuModel cpu(&simulator, 1);
  EXPECT_EQ(cpu.EarliestFree(), 0);
  cpu.Submit(Millis(5), []() {});
  EXPECT_EQ(cpu.EarliestFree(), Millis(5));
  cpu.Submit(Millis(5), []() {});
  EXPECT_EQ(cpu.EarliestFree(), Millis(10));
  simulator.RunUntilIdle();
  EXPECT_EQ(cpu.EarliestFree(), Millis(10));  // Clamped to >= now.
}

TEST(SimEdgeTest, ZeroByteMessageStillPaysHeader) {
  sim::Simulator simulator;
  sim::NetworkOptions options;
  options.header_overhead = 64;
  sim::SimNetwork network(&simulator, options);
  NodeId a = network.AddNode();
  NodeId b = network.AddNode();
  network.SetHandler(b, [](const net::Message&) {});
  network.Send(a, b, 1, Bytes{});
  simulator.RunUntilIdle();
  EXPECT_EQ(network.node_bytes_sent(a), 64u);
}

// ---------------------------------------------------------------- storm

TEST(StormEdgeTest, FilePagerRejectsMisalignedFile) {
  std::string path = "/tmp/bp_misaligned_" + std::to_string(::getpid());
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a page multiple", f);
    std::fclose(f);
  }
  auto pager = storm::FilePager::Open(path);
  EXPECT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(StormEdgeTest, KeywordIndexPostingCounts) {
  storm::KeywordIndex index;
  index.Add(1, "alpha beta alpha");
  index.Add(2, "alpha");
  EXPECT_EQ(index.PostingCount("alpha"), 2u);
  EXPECT_EQ(index.PostingCount("ALPHA"), 2u);
  EXPECT_EQ(index.PostingCount("beta"), 1u);
  EXPECT_EQ(index.PostingCount("ghost"), 0u);
  index.Remove(1);
  EXPECT_EQ(index.PostingCount("alpha"), 1u);
  EXPECT_EQ(index.PostingCount("beta"), 0u);
  EXPECT_EQ(index.keyword_count(), 1u);
}

TEST(StormEdgeTest, MemPagerOutOfRange) {
  storm::MemPager pager;
  storm::Page page;
  EXPECT_TRUE(pager.Read(0, &page).IsOutOfRange());
  EXPECT_TRUE(pager.Write(0, page).IsOutOfRange());
}

// ---------------------------------------------------------------- core

class EdgeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ =
        std::make_unique<sim::SimNetwork>(&sim_, sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    infra_ = std::make_unique<core::SharedInfra>();
  }

  std::unique_ptr<core::BestPeerNode> MakeNode(
      core::BestPeerConfig config = {}) {
    return core::BestPeerNode::Create(fleet_->AddNode(), infra_.get(),
                                      config)
        .value();
  }

  sim::Simulator sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::unique_ptr<core::SharedInfra> infra_;
};

TEST_F(EdgeFixture, SearchWithNoPeersCompletesEmpty) {
  auto loner = MakeNode();
  loner->InitStorage({}).ok();
  uint64_t qid = loner->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  const core::QuerySession* session = loner->FindSession(qid);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->total_answers(), 0u);
  EXPECT_EQ(session->completion_time(), 0);
  // Reconfiguring an empty session is a no-op, not an error.
  EXPECT_TRUE(loner->Reconfigure(qid).ok());
}

TEST_F(EdgeFixture, StoragelessPeerIsSilentlySkipped) {
  auto base = MakeNode();
  auto empty = MakeNode();  // Never calls InitStorage.
  base->InitStorage({}).ok();
  base->AddDirectPeerLocal(empty->node());
  empty->AddDirectPeerLocal(base->node());
  uint64_t qid = base->IssueSearch("needle").value();
  sim_.RunUntilIdle();
  EXPECT_EQ(base->FindSession(qid)->responder_count(), 0u);
  EXPECT_EQ(empty->agent_runtime().agents_executed(), 1u)
      << "the agent still executes; it just finds no store";
}

TEST_F(EdgeFixture, ShareBeforeInitStorageFails) {
  auto node = MakeNode();
  EXPECT_TRUE(node->ShareObject(1, Bytes{1}).IsFailedPrecondition());
  EXPECT_TRUE(node->UnshareObject(1).IsFailedPrecondition());
  EXPECT_TRUE(node->ReplicateObjects({1}).IsFailedPrecondition());
}

TEST_F(EdgeFixture, InvalidConfigRejectedAtCreate) {
  core::BestPeerConfig bad_strategy;
  bad_strategy.strategy = "sorcery";
  EXPECT_FALSE(core::BestPeerNode::Create(fleet_->AddNode(), infra_.get(),
                                          bad_strategy)
                   .ok());
  core::BestPeerConfig bad_codec;
  bad_codec.codec = "zip2000";
  EXPECT_FALSE(core::BestPeerNode::Create(fleet_->AddNode(), infra_.get(),
                                          bad_codec)
                   .ok());
}

TEST_F(EdgeFixture, ForeignResultsAreIgnored) {
  auto a = MakeNode();
  auto b = MakeNode();
  a->InitStorage({}).ok();
  b->InitStorage({}).ok();
  // Hand-craft a result for a query `b` never issued.
  core::SearchResultMessage bogus;
  bogus.query_id = 0xDEADBEEF;
  bogus.items.push_back({1, "x", Bytes{1}});
  auto codec = MakeCodec("lzss").value();
  network_->Send(a->node(), b->node(), core::kSearchResultType,
                 codec->Compress(bogus.Encode()).value());
  sim_.RunUntilIdle();
  EXPECT_EQ(b->results_received(), 0u);
}

TEST_F(EdgeFixture, GarbagePayloadsDoNotCrashHandlers) {
  auto a = MakeNode();
  auto b = MakeNode();
  b->InitStorage({}).ok();
  for (uint32_t type :
       {core::kSearchResultType, core::kFetchReqType, core::kFetchRespType,
        core::kActiveObjReqType, core::kActiveObjRespType,
        core::kDataShipReqType, core::kDataShipRespType,
        core::kReplicatePushType, core::kWatchReqType,
        core::kUpdateNotifyType, agent::kAgentTransferType}) {
    network_->Send(a->node(), b->node(), type, Bytes{0xFF, 0x00, 0xAB});
  }
  sim_.RunUntilIdle();  // Must not crash; malformed input is dropped.
  EXPECT_EQ(b->results_received(), 0u);
}

TEST_F(EdgeFixture, IssueDirectSearchWithNoPeers) {
  auto loner = MakeNode();
  loner->InitStorage({}).ok();
  uint64_t qid =
      loner->IssueDirectSearch("needle", core::ShippingMode::kAdaptive)
          .value();
  sim_.RunUntilIdle();
  EXPECT_EQ(loner->FindSession(qid)->total_indicated(), 0u);
}

// ---------------------------------------------------------------- logging

TEST(LoggingTest, LevelGateWorks) {
  LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  // These compile into gated statements; nothing to assert beyond "no
  // crash", but the macro must evaluate its stream lazily.
  BP_LOG(Debug) << "suppressed";
  BP_LOG(Warn) << "suppressed";
  SetLogLevel(before);
}

}  // namespace
}  // namespace bestpeer
