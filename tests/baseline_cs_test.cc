#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/cs_node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

namespace bestpeer::baseline {
namespace {

class CsFixture : public ::testing::Test {
 protected:
  /// (Re)builds a CS network; callable multiple times per test.
  void Build(size_t count,
             const std::vector<std::pair<size_t, size_t>>& edges,
             bool single_thread) {
    nodes_.clear();
    ids_.clear();
    fleet_.reset();
    network_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    network_ =
        std::make_unique<sim::SimNetwork>(sim_.get(), sim::NetworkOptions{});
    fleet_ = std::make_unique<net::SimTransportFleet>(network_.get());
    CsConfig config;
    config.single_thread = single_thread;
    for (size_t i = 0; i < count; ++i) ids_.push_back(network_->AddNode());
    for (size_t i = 0; i < count; ++i) {
      auto node = CsNode::Create(fleet_->For(ids_[i]), config).value();
      ASSERT_TRUE(node->InitStorage({}).ok());
      nodes_.push_back(std::move(node));
    }
    for (auto [a, b] : edges) {
      nodes_[a]->AddNeighborLocal(ids_[b]);
      nodes_[b]->AddNeighborLocal(ids_[a]);
    }
  }

  void Fill(size_t idx, size_t count, size_t matches) {
    for (size_t i = 0; i < count; ++i) {
      std::string text =
          i < matches ? "needle content" : "ordinary content";
      Bytes content(text.begin(), text.end());
      content.resize(256, ' ');
      ASSERT_TRUE(nodes_[idx]
                      ->ShareObject((static_cast<uint64_t>(idx) << 24) | i,
                                    content)
                      .ok());
    }
  }

  SimTime RunQuery(size_t base, size_t* answers = nullptr,
                   size_t* responders = nullptr) {
    uint64_t qid = nodes_[base]->IssueQuery("needle").value();
    sim_->RunUntilIdle();
    const CsSession* session = nodes_[base]->FindSession(qid);
    EXPECT_NE(session, nullptr);
    EXPECT_TRUE(session->complete());
    if (answers != nullptr) *answers = session->total_answers();
    if (responders != nullptr) *responders = session->responder_count();
    return session->completion_time();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<sim::SimNetwork> network_;
  std::unique_ptr<net::SimTransportFleet> fleet_;
  std::vector<NodeId> ids_;
  std::vector<std::unique_ptr<CsNode>> nodes_;
};

TEST_F(CsFixture, CollectsAnswersOnStar) {
  Build(4, {{0, 1}, {0, 2}, {0, 3}}, /*single_thread=*/false);
  Fill(1, 10, 2);
  Fill(2, 10, 3);
  Fill(3, 10, 0);
  size_t answers = 0, responders = 0;
  SimTime t = RunQuery(0, &answers, &responders);
  EXPECT_EQ(answers, 5u);
  EXPECT_EQ(responders, 2u);
  EXPECT_GT(t, 0);
}

TEST_F(CsFixture, AnswersAreRelayedAlongPath) {
  // Line 0-1-2: node 2's answers must pass through node 1.
  Build(3, {{0, 1}, {1, 2}}, false);
  Fill(2, 10, 3);
  bool relay_carried_answer = false;
  network_->SetTrace([&](const net::Message& m, SimTime, SimTime) {
    if (m.type == kCsAnswerType && m.src == ids_[1] && m.dst == ids_[0]) {
      relay_carried_answer = true;
    }
  });
  size_t answers = 0;
  RunQuery(0, &answers);
  EXPECT_EQ(answers, 3u);
  EXPECT_TRUE(relay_carried_answer)
      << "CS must return answers along the query path";
  EXPECT_EQ(nodes_[1]->relayed_answers(), 1u);
}

TEST_F(CsFixture, ScsSlowerThanMcsOnStar) {
  std::vector<std::pair<size_t, size_t>> star = {
      {0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}};
  Build(6, star, /*single_thread=*/true);
  for (size_t i = 1; i < 6; ++i) Fill(i, 50, 5);
  SimTime scs_time = RunQuery(0);

  Build(6, star, /*single_thread=*/false);
  for (size_t i = 1; i < 6; ++i) Fill(i, 50, 5);
  SimTime mcs_time = RunQuery(0);

  EXPECT_GT(scs_time, mcs_time * 2)
      << "sequential connections must dominate on a star";
}

TEST_F(CsFixture, DeepLineSlowerThanStarPerNode) {
  Build(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}}, false);
  for (size_t i = 1; i < 5; ++i) Fill(i, 20, 5);
  SimTime star_time = RunQuery(0);

  Build(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}}, false);
  for (size_t i = 1; i < 5; ++i) Fill(i, 20, 5);
  SimTime line_time = RunQuery(0);
  EXPECT_GT(line_time, star_time);
}

TEST_F(CsFixture, DuplicateQueryOnCycleResolves) {
  // Triangle 0-1-2-0: done-wave must still close.
  Build(3, {{0, 1}, {1, 2}, {0, 2}}, false);
  Fill(1, 10, 1);
  Fill(2, 10, 1);
  size_t answers = 0;
  SimTime t = RunQuery(0, &answers);
  EXPECT_EQ(answers, 2u);
  EXPECT_GT(t, 0);
}

TEST_F(CsFixture, RepeatedQueriesBehaveIdentically) {
  Build(4, {{0, 1}, {1, 2}, {2, 3}}, false);
  Fill(3, 20, 4);
  SimTime t1 = RunQuery(0);
  SimTime t2 = RunQuery(0);
  // No reconfiguration in CS: same path, same time (up to a few bytes of
  // codec jitter from the differing query ids).
  EXPECT_NEAR(static_cast<double>(t1), static_cast<double>(t2), 100.0);
}

TEST_F(CsFixture, SingleNodeCompletesTrivially) {
  Build(1, {}, false);
  size_t answers = 0;
  SimTime t = RunQuery(0, &answers);
  EXPECT_EQ(answers, 0u);
  EXPECT_EQ(t, 0);
}

TEST_F(CsFixture, ScsSerializesSubtreesOnLine) {
  // On a line even SCS only has one child per node, so SCS == MCS.
  Build(4, {{0, 1}, {1, 2}, {2, 3}}, true);
  for (size_t i = 1; i < 4; ++i) Fill(i, 20, 2);
  SimTime scs_time = RunQuery(0);
  Build(4, {{0, 1}, {1, 2}, {2, 3}}, false);
  for (size_t i = 1; i < 4; ++i) Fill(i, 20, 2);
  SimTime mcs_time = RunQuery(0);
  EXPECT_EQ(scs_time, mcs_time);
}

}  // namespace
}  // namespace bestpeer::baseline
