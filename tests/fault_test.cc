#include "sim/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "util/metrics.h"

namespace bestpeer::sim {
namespace {

NetworkOptions FastNet() {
  NetworkOptions o;
  o.latency = Micros(500);
  o.bytes_per_us = 1.25;
  o.header_overhead = 0;
  return o;
}

/// Sends `count` sequenced messages a->b and returns which sequence
/// numbers were delivered, in order.
std::vector<uint32_t> DeliveredUnderLoss(uint64_t seed, int count,
                                         uint64_t* drops) {
  Simulator sim;
  FaultOptions options;
  options.seed = seed;
  options.message_loss = 0.3;
  FaultInjector* faults = sim.EnableFaults(options);
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  std::vector<uint32_t> delivered;
  net.SetHandler(b, [&](const SimMessage& m) { delivered.push_back(m.type); });
  for (int i = 0; i < count; ++i) {
    net.Send(a, b, static_cast<uint32_t>(i), Bytes(10, 0));
  }
  sim.RunUntilIdle();
  *drops = faults->drops();
  return delivered;
}

TEST(FaultInjectorTest, SameSeedSameDropSchedule) {
  uint64_t drops1 = 0, drops2 = 0;
  auto run1 = DeliveredUnderLoss(7, 200, &drops1);
  auto run2 = DeliveredUnderLoss(7, 200, &drops2);
  EXPECT_EQ(run1, run2);
  EXPECT_EQ(drops1, drops2);
  // At 30% loss over 200 messages, both outcomes must actually occur.
  EXPECT_GT(drops1, 0u);
  EXPECT_GT(run1.size(), 0u);
  EXPECT_EQ(run1.size() + drops1, 200u);

  uint64_t drops3 = 0;
  auto run3 = DeliveredUnderLoss(8, 200, &drops3);
  EXPECT_NE(run1, run3);  // A different seed gives a different schedule.
}

TEST(FaultInjectorTest, QuietInjectorLeavesScheduleIdentical) {
  auto run = [](bool with_injector) {
    Simulator sim;
    if (with_injector) sim.EnableFaults(FaultOptions{});  // All probs 0.
    SimNetwork net(&sim, FastNet());
    NodeId a = net.AddNode();
    NodeId b = net.AddNode();
    std::vector<SimTime> deliveries;
    net.SetHandler(b,
                   [&](const SimMessage&) { deliveries.push_back(sim.now()); });
    for (int i = 0; i < 20; ++i) net.Send(a, b, 1, Bytes(1250, 0));
    sim.RunUntilIdle();
    return deliveries;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FaultInjectorTest, PartitionDropsBothDirectionsAndHeals) {
  Simulator sim;
  FaultInjector* faults = sim.EnableFaults(FaultOptions{});
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  NodeId c = net.AddNode();
  int at_a = 0, at_b = 0, at_c = 0;
  net.SetHandler(a, [&](const SimMessage&) { ++at_a; });
  net.SetHandler(b, [&](const SimMessage&) { ++at_b; });
  net.SetHandler(c, [&](const SimMessage&) { ++at_c; });

  faults->Partition({a}, {b});
  EXPECT_TRUE(faults->Partitioned(a, b));
  EXPECT_TRUE(faults->Partitioned(b, a));  // Cuts are symmetric.
  EXPECT_FALSE(faults->Partitioned(a, c));

  net.Send(a, b, 1, Bytes(10, 0));
  net.Send(b, a, 1, Bytes(10, 0));
  net.Send(a, c, 1, Bytes(10, 0));  // Unaffected third party.
  sim.RunUntilIdle();
  EXPECT_EQ(at_a, 0);
  EXPECT_EQ(at_b, 0);
  EXPECT_EQ(at_c, 1);
  EXPECT_EQ(faults->partition_drops(), 2u);

  faults->Heal();
  net.Send(a, b, 1, Bytes(10, 0));
  net.Send(b, a, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(at_a, 1);
  EXPECT_EQ(at_b, 1);
}

TEST(FaultInjectorTest, CrashDropsInFlightAndRestartRecovers) {
  Simulator sim;
  FaultInjector* faults = sim.EnableFaults(FaultOptions{});
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  std::vector<SimTime> deliveries;
  net.SetHandler(b,
                 [&](const SimMessage&) { deliveries.push_back(sim.now()); });

  // Message in flight when the crash hits: rx_done at 2500, crash at
  // 2000 — dropped under the usual offline semantics.
  faults->ScheduleCrash(b, /*crash_at=*/2000, /*down_for=*/3000);
  net.Send(a, b, 1, Bytes(1250, 0));
  // While down (restart is at 5000), everything to b vanishes.
  sim.ScheduleAt(3000, [&]() { net.Send(a, b, 2, Bytes(10, 0)); });
  // After the restart, delivery works again.
  sim.ScheduleAt(6000, [&]() { net.Send(a, b, 3, Bytes(1250, 0)); });
  sim.RunUntilIdle();

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_EQ(deliveries[0], 8500);  // 6000 + uplink 1000 + 500 + rx 1000.
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(faults->crashes(), 1u);
  EXPECT_EQ(faults->restarts(), 1u);
  EXPECT_TRUE(net.IsOnline(b));
}

TEST(FaultInjectorTest, LatencySpikeDelaysDelivery) {
  Simulator sim;
  FaultOptions options;
  options.latency_spike_prob = 1.0;
  options.latency_spike = Millis(50);
  FaultInjector* faults = sim.EnableFaults(options);
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  SimTime delivered = -1;
  net.SetHandler(b, [&](const SimMessage&) { delivered = sim.now(); });
  net.Send(a, b, 1, Bytes(1250, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(delivered, 2500 + Millis(50));
  EXPECT_EQ(faults->latency_spikes(), 1u);
}

TEST(FaultInjectorTest, ExportsMetrics) {
  metrics::Registry registry;
  Simulator sim;
  FaultOptions options;
  options.seed = 3;
  options.message_loss = 1.0;
  options.metrics = &registry;
  FaultInjector* faults = sim.EnableFaults(options);
  SimNetwork net(&sim, FastNet());
  NodeId a = net.AddNode();
  NodeId b = net.AddNode();
  net.SetHandler(b, [](const SimMessage&) {});
  net.Send(a, b, 1, Bytes(10, 0));
  sim.RunUntilIdle();
  EXPECT_EQ(faults->drops(), 1u);
  auto snapshot = registry.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.Value("fault.drops"), 1.0);
}

TEST(FaultInjectorTest, EnableFaultsIsIdempotent) {
  Simulator sim;
  FaultInjector* first = sim.EnableFaults(FaultOptions{});
  FaultInjector* second = sim.EnableFaults(FaultOptions{});
  EXPECT_EQ(first, second);
  EXPECT_EQ(sim.fault(), first);
}

}  // namespace
}  // namespace bestpeer::sim
