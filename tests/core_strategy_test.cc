#include <gtest/gtest.h>

#include <algorithm>

#include "core/reconfig_strategy.h"
#include "util/rng.h"

namespace bestpeer::core {
namespace {

PeerObservation Obs(NodeId node, uint64_t answers, uint16_t hops) {
  PeerObservation o;
  o.node = node;
  o.answers = answers;
  o.hops = hops;
  return o;
}

TEST(MaxCountTest, KeepsTopAnswerers) {
  MaxCountStrategy s;
  std::vector<PeerObservation> obs = {Obs(10, 5, 2), Obs(11, 50, 3),
                                      Obs(12, 20, 1)};
  auto result = s.SelectPeers(obs, {1, 2}, 2);
  EXPECT_EQ(result, (std::vector<NodeId>{11, 12}));
}

TEST(MaxCountTest, FigureTwoScenario) {
  // Fig. 2: X has peers A, B; answers come from C and E; k = 4 keeps all.
  MaxCountStrategy s;
  std::vector<PeerObservation> obs = {Obs(/*C=*/3, 7, 2), Obs(/*E=*/5, 4, 3)};
  auto result = s.SelectPeers(obs, {/*A=*/1, /*B=*/2}, 4);
  EXPECT_EQ(result, (std::vector<NodeId>{1, 2, 3, 5}));
}

TEST(MaxCountTest, NonRespondingPeersRankLast) {
  MaxCountStrategy s;
  // One answering stranger beats silent current peers when k=1.
  auto result = s.SelectPeers({Obs(9, 1, 4)}, {1, 2, 3}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{9}));
}

TEST(MaxCountTest, TieBrokenByNodeId) {
  MaxCountStrategy s;
  auto result = s.SelectPeers({Obs(5, 10, 1), Obs(3, 10, 1)}, {}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{3}));
}

TEST(MaxCountTest, CurrentPeerStatsCombineWithObservation) {
  MaxCountStrategy s;
  // Current peer 1 also answered: its observation wins over the default 0.
  auto result = s.SelectPeers({Obs(1, 9, 1), Obs(2, 3, 2)}, {1}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{1}));
}

TEST(MinHopsTest, PrefersFartherNodes) {
  MinHopsStrategy s;
  std::vector<PeerObservation> obs = {Obs(10, 5, 1), Obs(11, 5, 4),
                                      Obs(12, 5, 2)};
  auto result = s.SelectPeers(obs, {}, 2);
  EXPECT_EQ(result, (std::vector<NodeId>{11, 12}));
}

TEST(MinHopsTest, TieBrokenByAnswers) {
  MinHopsStrategy s;
  std::vector<PeerObservation> obs = {Obs(10, 5, 3), Obs(11, 50, 3)};
  auto result = s.SelectPeers(obs, {}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{11}));
}

TEST(MinHopsTest, SilentCurrentPeersTreatedAsOneHop) {
  MinHopsStrategy s;
  auto result = s.SelectPeers({Obs(9, 1, 2)}, {1}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{9}));
}

TEST(FastestResponseTest, PrefersEarliestResponders) {
  FastestResponseStrategy s;
  PeerObservation slow = Obs(10, 5, 1);
  slow.first_response = 9000;
  PeerObservation fast = Obs(11, 5, 1);
  fast.first_response = 1000;
  PeerObservation mid = Obs(12, 5, 1);
  mid.first_response = 5000;
  auto result = s.SelectPeers({slow, fast, mid}, {}, 2);
  EXPECT_EQ(result, (std::vector<NodeId>{11, 12}));
}

TEST(FastestResponseTest, RespondersBeatSilentPeers) {
  FastestResponseStrategy s;
  PeerObservation responder = Obs(9, 1, 3);
  responder.first_response = 50000;  // Slow, but it answered.
  auto result = s.SelectPeers({responder}, {1, 2}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{9}));
}

TEST(FastestResponseTest, TieBrokenByAnswers) {
  FastestResponseStrategy s;
  PeerObservation a = Obs(5, 2, 1);
  a.first_response = 1000;
  PeerObservation b = Obs(6, 9, 1);
  b.first_response = 1000;
  auto result = s.SelectPeers({a, b}, {}, 1);
  EXPECT_EQ(result, (std::vector<NodeId>{6}));
}

TEST(NoReconfigTest, KeepsCurrentPeers) {
  NoReconfigStrategy s;
  auto result =
      s.SelectPeers({Obs(9, 100, 5)}, {1, 2, 3}, 3);
  EXPECT_EQ(result, (std::vector<NodeId>{1, 2, 3}));
}

TEST(NoReconfigTest, TruncatesToCapacity) {
  NoReconfigStrategy s;
  auto result = s.SelectPeers({}, {1, 2, 3, 4}, 2);
  EXPECT_EQ(result.size(), 2u);
}

TEST(StrategyRegistryTest, MakeByName) {
  EXPECT_EQ(MakeReconfigStrategy("maxcount").value()->name(), "maxcount");
  EXPECT_EQ(MakeReconfigStrategy("minhops").value()->name(), "minhops");
  EXPECT_EQ(MakeReconfigStrategy("fastest").value()->name(), "fastest");
  EXPECT_EQ(MakeReconfigStrategy("none").value()->name(), "none");
  EXPECT_FALSE(MakeReconfigStrategy("best").ok());
}

// Property tests over random observation sets.
class StrategyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyPropertyTest, SelectionInvariants) {
  bestpeer::Rng rng(GetParam());
  for (const char* name : {"maxcount", "minhops", "fastest", "none"}) {
    auto strategy = MakeReconfigStrategy(name).value();
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<PeerObservation> obs;
      size_t nobs = rng.NextBounded(10);
      for (size_t i = 0; i < nobs; ++i) {
        obs.push_back(Obs(static_cast<NodeId>(rng.NextBounded(20)),
                          rng.NextBounded(100),
                          static_cast<uint16_t>(rng.NextBounded(8))));
      }
      std::vector<NodeId> current;
      size_t ncur = rng.NextBounded(5);
      for (size_t i = 0; i < ncur; ++i) {
        current.push_back(static_cast<NodeId>(rng.NextBounded(20)));
      }
      std::sort(current.begin(), current.end());
      current.erase(std::unique(current.begin(), current.end()),
                    current.end());
      size_t k = rng.NextBounded(6) + 1;

      auto selected = strategy->SelectPeers(obs, current, k);
      // Never exceeds capacity.
      EXPECT_LE(selected.size(), k) << name;
      // No duplicates.
      auto sorted = selected;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
                  sorted.end())
          << name;
      // Every selected node is a known candidate.
      for (auto node : selected) {
        bool known = std::any_of(obs.begin(), obs.end(),
                                 [node](const PeerObservation& o) {
                                   return o.node == node;
                                 }) ||
                     std::find(current.begin(), current.end(), node) !=
                         current.end();
        EXPECT_TRUE(known) << name << " selected unknown node " << node;
      }
    }
  }
}

TEST_P(StrategyPropertyTest, MaxCountIsGreedyOptimal) {
  bestpeer::Rng rng(GetParam() ^ 0xABCDEF);
  MaxCountStrategy s;
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<PeerObservation> obs;
    size_t nobs = rng.NextBounded(15) + 1;
    for (size_t i = 0; i < nobs; ++i) {
      obs.push_back(Obs(static_cast<NodeId>(i), rng.NextBounded(100),
                        1));
    }
    size_t k = rng.NextBounded(nobs) + 1;
    auto selected = s.SelectPeers(obs, {}, k);
    // The minimum selected answer count must be >= the maximum excluded.
    uint64_t min_sel = UINT64_MAX;
    for (auto node : selected) min_sel = std::min(min_sel, obs[node].answers);
    for (const auto& o : obs) {
      bool in = std::find(selected.begin(), selected.end(), o.node) !=
                selected.end();
      if (!in) EXPECT_LE(o.answers, min_sel);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace bestpeer::core
