#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "storm/keyword_index.h"
#include "storm/storm.h"
#include "util/rng.h"

namespace bestpeer::storm {
namespace {

Bytes Content(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ------------------------------------------------------------ KeywordIndex

TEST(KeywordIndexTest, PostingListsStaySorted) {
  KeywordIndex index;
  for (ObjectId id : {9, 3, 7, 1, 5}) index.Add(id, "alpha");
  const std::vector<ObjectId>* postings = index.Postings("alpha");
  ASSERT_NE(postings, nullptr);
  EXPECT_EQ(*postings, (std::vector<ObjectId>{1, 3, 5, 7, 9}));
  EXPECT_EQ(index.Postings("ghost"), nullptr);
  EXPECT_EQ(index.document_count(), 5u);
}

TEST(KeywordIndexTest, RemoveByIdDropsEveryPosting) {
  KeywordIndex index;
  index.Add(1, "alpha beta gamma");
  index.Add(2, "alpha");
  index.Remove(1);
  EXPECT_EQ(index.PostingCount("alpha"), 1u);
  EXPECT_EQ(index.PostingCount("beta"), 0u);
  EXPECT_EQ(index.PostingCount("gamma"), 0u);
  EXPECT_EQ(index.keyword_count(), 1u);
  EXPECT_EQ(index.document_count(), 1u);
  index.Remove(42);  // Unknown id: no-op.
  EXPECT_EQ(index.PostingCount("alpha"), 1u);
}

TEST(KeywordIndexTest, ReAddReplacesOldTokens) {
  // The historical leak: Remove(id, new_text) left tokens of the *old*
  // text indexed forever. The index now records its own token sets, so
  // re-adding with changed content fully replaces the old postings.
  KeywordIndex index;
  index.Add(1, "alpha beta");
  index.Add(1, "gamma delta");
  EXPECT_EQ(index.PostingCount("alpha"), 0u);
  EXPECT_EQ(index.PostingCount("beta"), 0u);
  EXPECT_EQ(index.PostingCount("gamma"), 1u);
  EXPECT_EQ(index.PostingCount("delta"), 1u);
  index.Remove(1);
  EXPECT_EQ(index.keyword_count(), 0u);
  EXPECT_EQ(index.document_count(), 0u);
}

TEST(KeywordIndexTest, IntersectGallops) {
  std::vector<ObjectId> small = {5, 500, 900};
  std::vector<ObjectId> large;
  for (ObjectId id = 0; id < 1000; ++id) large.push_back(id);
  std::vector<ObjectId> out;
  size_t probes = 0;
  KeywordIndex::Intersect(small, large, &out, &probes);
  EXPECT_EQ(out, small);
  EXPECT_GT(probes, 0u);
  // Galloping touches O(|small| * log |large|) postings, far fewer than
  // a full walk of the larger list.
  EXPECT_LT(probes, large.size() / 2);

  // Argument order must not matter.
  std::vector<ObjectId> swapped;
  KeywordIndex::Intersect(large, small, &swapped, nullptr);
  EXPECT_EQ(swapped, small);

  // Disjoint and empty edge cases.
  KeywordIndex::Intersect({1, 3}, {2, 4}, &out, nullptr);
  EXPECT_TRUE(out.empty());
  KeywordIndex::Intersect({}, large, &out, nullptr);
  EXPECT_TRUE(out.empty());
}

// --------------------------------------------------------------- IndexSearch

TEST(IndexSearchTest, CountsPostingsTouched) {
  StormOptions options;  // build_index defaults to true.
  auto storm = Storm::Open(options).value();
  for (ObjectId id = 0; id < 100; ++id) {
    std::string text = (id % 10 == 0) ? "needle common" : "common filler";
    ASSERT_TRUE(storm->Put(id, Content(text)).ok());
  }
  size_t touched = 0;
  auto matches = storm->IndexSearch("needle common", &touched);
  ASSERT_TRUE(matches.ok());
  EXPECT_EQ(matches->size(), 10u);
  EXPECT_GT(touched, 0u);
  // Smallest-first: the 10-posting "needle" list anchors the gallop into
  // the 100-posting "common" list; nowhere near a 100-object scan.
  EXPECT_LT(touched, 100u);

  // A query with an unindexed term touches nothing at all.
  size_t ghost_touched = 77;
  auto ghost = storm->IndexSearch("ghost common", &ghost_touched);
  ASSERT_TRUE(ghost.ok());
  EXPECT_TRUE(ghost->empty());
  EXPECT_EQ(ghost_touched, 0u);
}

TEST(IndexSearchTest, DisabledIndexFailsPrecondition) {
  StormOptions options;
  options.build_index = false;
  auto storm = Storm::Open(options).value();
  ASSERT_TRUE(storm->Put(1, Content("needle")).ok());
  EXPECT_TRUE(storm->IndexSearch("needle").status().IsFailedPrecondition());
}

// Randomized equivalence property: for random stores, mutations and DNF
// queries, IndexSearch match sets equal ScanSearch match sets at every
// epoch. This is the contract that lets the agent path switch between
// the two without changing answers.
TEST(IndexSearchTest, EquivalentToScanAcrossRandomMutations) {
  const std::vector<std::string> vocab = {"alpha", "beta",  "gamma", "delta",
                                          "omega", "sigma", "kappa", "zeta"};
  Rng rng(20260807);
  auto storm = Storm::Open({}).value();

  auto random_text = [&]() {
    std::string text;
    const size_t words = 1 + rng.NextBounded(5);
    for (size_t w = 0; w < words; ++w) {
      if (!text.empty()) text += ' ';
      text += vocab[rng.NextBounded(vocab.size())];
    }
    return text;
  };
  auto random_query = [&]() {
    std::string query;
    const size_t branches = 1 + rng.NextBounded(3);
    for (size_t b = 0; b < branches; ++b) {
      if (!query.empty()) query += " OR ";
      const size_t terms = 1 + rng.NextBounded(3);
      for (size_t t = 0; t < terms; ++t) {
        if (t > 0) query += ' ';
        // Occasionally pick a word no object can contain.
        query += rng.NextBounded(8) == 0 ? "ghost"
                                         : vocab[rng.NextBounded(vocab.size())];
      }
    }
    return query;
  };

  std::set<ObjectId> live;
  for (size_t round = 0; round < 60; ++round) {
    // Random mutation: put / delete / update.
    const uint64_t kind = rng.NextBounded(3);
    if (kind == 0 || live.empty()) {
      ObjectId id = rng.NextBounded(40);
      if (live.count(id) == 0) {
        ASSERT_TRUE(storm->Put(id, Content(random_text())).ok());
        live.insert(id);
      } else {
        ASSERT_TRUE(storm->Update(id, Content(random_text())).ok());
      }
    } else if (kind == 1) {
      ObjectId id = *std::next(live.begin(),
                               static_cast<long>(rng.NextBounded(live.size())));
      ASSERT_TRUE(storm->Delete(id).ok());
      live.erase(id);
    } else {
      ObjectId id = *std::next(live.begin(),
                               static_cast<long>(rng.NextBounded(live.size())));
      ASSERT_TRUE(storm->Update(id, Content(random_text())).ok());
    }

    // At this epoch, several random DNF queries must agree exactly.
    for (size_t q = 0; q < 4; ++q) {
      const std::string query = random_query();
      auto scan = storm->ScanSearch(query);
      ASSERT_TRUE(scan.ok()) << query;
      auto indexed = storm->IndexSearch(query);
      ASSERT_TRUE(indexed.ok()) << query;
      std::vector<ObjectId> scan_sorted = scan->matches;
      std::sort(scan_sorted.begin(), scan_sorted.end());
      EXPECT_EQ(indexed.value(), scan_sorted)
          << "query \"" << query << "\" diverged at epoch "
          << storm->mutation_epoch();
    }
  }
}

}  // namespace
}  // namespace bestpeer::storm
