// bestpeerd: the BestPeer loopback runtime. Boots a LIGLO server plus N
// BestPeer nodes on 127.0.0.1, each with its own TCP listener on the
// shared reactor (net::TcpNet), joins everyone through LIGLO, runs a
// keyword-search workload and reports recall, latency and net.* counters.
//
//   bestpeerd --nodes=8 --objects=32 --matches=2 --queries=4
//
// This is the same protocol stack the simulator drives — only the
// transport differs — so recall here should match an equivalent
// simulated configuration exactly.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/node.h"
#include "core/search_agent.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/tcp_transport.h"
#include "util/metrics.h"
#include "workload/corpus.h"

namespace {

using namespace bestpeer;  // NOLINT: small tool binary.

struct Flags {
  size_t nodes = 8;
  size_t objects = 32;
  size_t matches = 2;
  size_t queries = 4;
  uint64_t seed = 1;
  int64_t timeout_ms = 10000;
};

bool ParseFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atol(arg + len + 1);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes=N>=2] [--objects=N] [--matches=N] "
               "[--queries=N] [--seed=N] [--timeout-ms=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseFlag(argv[i], "--nodes", &v)) {
      flags.nodes = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      flags.objects = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--matches", &v)) {
      flags.matches = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = static_cast<uint64_t>(v);
    } else if (ParseFlag(argv[i], "--timeout-ms", &v)) {
      flags.timeout_ms = v;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.nodes < 2 || flags.matches > flags.objects) return Usage(argv[0]);

  // The registry is only touched from the reactor thread once traffic
  // flows; all instrument creation happens below, before Start().
  metrics::Registry registry;
  net::TcpOptions tcp_options;
  tcp_options.metrics = &registry;
  net::TcpNet tcpnet(tcp_options);

  auto server_transport = tcpnet.AddNode();
  if (!server_transport.ok()) {
    std::fprintf(stderr, "bestpeerd: %s\n",
                 server_transport.status().ToString().c_str());
    return 1;
  }
  std::vector<net::TcpTransport*> transports;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto t = tcpnet.AddNode();
    if (!t.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", t.status().ToString().c_str());
      return 1;
    }
    transports.push_back(t.value());
  }

  core::SharedInfra infra;
  net::Dispatcher server_dispatcher(server_transport.value());
  liglo::LigloServerOptions server_options;
  server_options.initial_peer_count = 4;
  server_options.sample_seed = flags.seed ^ 0x5EED;
  liglo::LigloServer liglo_server(server_transport.value(),
                                  &server_dispatcher, &infra.ip_directory,
                                  server_options);

  core::BestPeerConfig config;
  config.max_direct_peers = server_options.initial_peer_count + 2;
  config.strategy = "none";
  config.default_ttl = static_cast<uint16_t>(flags.nodes);
  config.metrics = &registry;

  workload::CorpusGenerator corpus({512, 300, 0.8}, flags.seed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto node = core::BestPeerNode::Create(transports[i], &infra, config);
    if (!node.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    Status st = node.value()->InitStorage({});
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
      return 1;
    }
    for (size_t o = 0; o < flags.objects; ++o) {
      // Node 0 issues the queries; matches live on everyone else.
      bool match = i != 0 && o < flags.matches;
      st = node.value()->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                                     corpus.MakeObject(match));
      if (!st.ok()) {
        std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    infra.code_cache.Load(node.value()->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }

  std::printf("bestpeerd: liglo on 127.0.0.1:%u, %zu nodes on ports %u..%u\n",
              server_transport.value()->port(), flags.nodes,
              transports.front()->port(), transports.back()->port());

  tcpnet.Start();

  auto wait_until = [&](const std::function<bool()>& done_on_reactor,
                        int64_t budget_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Sequential joins, like a real deployment: each node registers with
  // LIGLO and adopts a sample of the members already present.
  for (auto& node : nodes) {
    bool joined = false;
    tcpnet.Run([&]() {
      liglo::IpAddress ip = infra.ip_directory.AssignFresh(node->node());
      node->JoinNetwork(server_transport.value()->local(), ip,
                        [&joined](auto outcome) {
                          (void)outcome;
                          joined = true;
                        });
    });
    if (!wait_until([&]() { return joined; }, flags.timeout_ms)) {
      std::fprintf(stderr, "bestpeerd: node %u join timed out\n",
                   node->node());
      tcpnet.Stop();
      return 1;
    }
  }
  std::printf("bestpeerd: %zu nodes joined\n", flags.nodes);

  const size_t expected = (flags.nodes - 1) * flags.matches;
  size_t received_total = 0;
  double latency_sum_ms = 0, latency_max_ms = 0;
  bool all_complete = true;
  for (size_t q = 0; q < flags.queries; ++q) {
    uint64_t query_id = 0;
    bool issued = false;
    tcpnet.Run([&]() {
      auto r = nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle);
      if (r.ok()) {
        query_id = r.value();
        issued = true;
      }
    });
    if (!issued) {
      std::fprintf(stderr, "bestpeerd: IssueSearch failed\n");
      tcpnet.Stop();
      return 1;
    }
    bool complete = wait_until(
        [&]() {
          const core::QuerySession* s = nodes[0]->FindSession(query_id);
          return s != nullptr && s->total_answers() >= expected;
        },
        flags.timeout_ms);
    size_t answers = 0;
    double latency_ms = 0;
    tcpnet.Run([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      if (s != nullptr) {
        answers = s->total_answers();
        latency_ms =
            ToMillis(s->completion_time() > 0
                         ? s->completion_time()
                         : tcpnet.clock().now() - s->start_time());
      }
    });
    received_total += answers;
    latency_sum_ms += latency_ms;
    if (latency_ms > latency_max_ms) latency_max_ms = latency_ms;
    all_complete = all_complete && complete;
    std::printf("query %zu: answers=%zu/%zu latency=%.2fms%s\n", q, answers,
                expected, latency_ms, complete ? "" : " (timeout)");
  }

  tcpnet.Stop();

  double recall = expected == 0
                      ? 1.0
                      : static_cast<double>(received_total) /
                            static_cast<double>(expected * flags.queries);
  std::printf("recall=%.4f mean_latency=%.2fms max_latency=%.2fms\n", recall,
              flags.queries > 0 ? latency_sum_ms /
                                      static_cast<double>(flags.queries)
                                : 0.0,
              latency_max_ms);

  metrics::Snapshot snap = registry.TakeSnapshot();
  std::printf(
      "net: tx_msgs=%.0f tx_bytes=%.0f rx_msgs=%.0f rx_bytes=%.0f "
      "connects=%.0f reconnects=%.0f tx_dropped=%.0f rx_dropped=%.0f "
      "frame_errors=%.0f\n",
      snap.Value("net.tx_msgs"), snap.Value("net.tx_bytes"),
      snap.Value("net.rx_msgs"), snap.Value("net.rx_bytes"),
      snap.Value("net.connects"), snap.Value("net.reconnects"),
      snap.Value("net.tx_dropped"), snap.Value("net.rx_dropped"),
      snap.Value("net.frame_errors"));

  return all_complete && recall >= 1.0 ? 0 : 1;
}
