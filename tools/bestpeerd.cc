// bestpeerd: the BestPeer loopback runtime. Boots a LIGLO server plus N
// BestPeer nodes on 127.0.0.1, each with its own TCP listener on the
// shared reactor (net::TcpNet), joins everyone through LIGLO, runs a
// keyword-search workload and reports recall, latency and net.* counters.
//
//   bestpeerd --nodes=8 --objects=32 --matches=2 --queries=4
//
// This is the same protocol stack the simulator drives — only the
// transport differs — so recall here should match an equivalent
// simulated configuration exactly.
//
// The live telemetry plane is opt-in via BP_TELEMETRY_ADDR=host:port:
// an HTTP/1.0 server on the shared reactor serves /metrics (Prometheus),
// /healthz, /peers, /cache, /gossip, /flight?n=K, /fleet, /traces and
// /trace?flow=K; every node pushes a compact stat frame to the LIGLO
// node (the collector) every BP_TELEMETRY_PUSH_MS milliseconds. --serve
// keeps the workload running until SIGINT/SIGTERM, which drains cleanly:
// final metrics printed, flight ring dumped to BP_FLIGHT_DUMP (when
// set), exit 0.
//
// Distributed tracing is opt-in via BP_TRACE_SAMPLE=rate (0..1): the
// process owns one trace::TraceRecorder (ring bounded by BP_TRACE_RING
// spans), the transport stamps sampled flows into the BPF1 frame flags,
// and the push timer drains new spans into the collector — locally on
// the driver, as kTraceFrameMsgType pushes to global node 0 from
// followers. tools/bpstitch scrapes /traces from every process and
// stitches one Perfetto trace per flow (DESIGN.md §12).
//
// A fleet can span processes: --port-base=P pins node k's listener to
// port P+k so any process can dial any node, --node-base=K starts this
// process's node ids at K, and --fleet-size=F tells everyone how many
// global nodes exist (node 0 = LIGLO + collector, 1..F-1 = BestPeer
// nodes) so join-time IP resolution works without coordination.
// --node-base=0 (the default) makes this process the driver: it hosts
// LIGLO, the collectors and the query workload. --node-base>0 makes it
// a follower: it hosts --nodes BestPeer nodes that join the driver's
// LIGLO and serve agents until a signal arrives.
//
//   bestpeerd --nodes=4 --port-base=24100 --fleet-size=9 --serve &
//   bestpeerd --nodes=4 --node-base=5 --port-base=24100 --fleet-size=9

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/node.h"
#include "core/search_agent.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/tcp_transport.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/stat_frame.h"
#include "obs/telemetry_server.h"
#include "obs/trace_frame.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/corpus.h"

namespace {

using namespace bestpeer;  // NOLINT: small tool binary.

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

struct Flags {
  size_t nodes = 8;
  size_t objects = 32;
  size_t matches = 2;
  size_t queries = 4;
  uint64_t seed = 1;
  int64_t timeout_ms = 10000;
  bool serve = false;   ///< Keep issuing queries until SIGINT/SIGTERM.
  bool cache = false;   ///< Enable the result cache + hot replication.
  bool gossip = false;  ///< Enable the gossip anti-entropy plane.
  // Multi-process fleet plan (all three set together, or none).
  uint32_t node_base = 0;   ///< First global node id in this process.
  uint16_t port_base = 0;   ///< Node k listens on port_base + k.
  uint32_t fleet_size = 0;  ///< Global node count incl. the LIGLO node.
};

bool ParseFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atol(arg + len + 1);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes=N>=2] [--objects=N] [--matches=N] "
               "[--queries=N] [--seed=N] [--timeout-ms=N] [--serve] "
               "[--cache] [--gossip]\n"
               "       [--node-base=K --port-base=P --fleet-size=F]  "
               "multi-process fleet (K=0: driver, K>0: follower)\n"
               "env: BP_TELEMETRY_ADDR=host:port  enable the telemetry "
               "plane\n"
               "     BP_GOSSIP_INTERVAL_MS=N      gossip round period "
               "(default 25)\n"
               "     BP_GOSSIP_FANOUT=N           peers pushed per round "
               "(default 2)\n"
               "     BP_GOSSIP_HOT_ROUNDS=N       rounds an item stays hot "
               "(default 3)\n"
               "     BP_TELEMETRY_PUSH_MS=N       stat-frame push period "
               "(default 1000)\n"
               "     BP_FLIGHT_DUMP=path          write the flight ring as "
               "NDJSON on exit\n"
               "     BP_TRACE_SAMPLE=R            record spans for fraction "
               "R of flows (0..1)\n"
               "     BP_TRACE_RING=N              span ring capacity "
               "(default 1048576)\n",
               argv0);
  return 2;
}

/// JSON for the /peers endpoint: every node's TelemetrySnapshot.
std::string PeersJson(
    const std::vector<std::unique_ptr<core::BestPeerNode>>& nodes) {
  std::string out = "{\n";
  bool first_node = true;
  for (const auto& node : nodes) {
    core::NodeTelemetry t = node->TelemetrySnapshot();
    if (!first_node) out += ",\n";
    first_node = false;
    out += "  \"" + obs::JsonNumber(node->node()) + "\": {\"bpid\": " +
           obs::JsonQuoted(node->bpid().ToString()) +
           ", \"capacity\": " + obs::JsonNumber(t.peer_capacity) +
           ", \"sessions_inflight\": " + obs::JsonNumber(t.sessions_inflight) +
           ", \"peer_evictions\": " + obs::JsonNumber(t.peer_evictions) +
           ", \"reconfigurations\": " + obs::JsonNumber(t.reconfigurations) +
           ", \"replica_leases\": " + obs::JsonNumber(t.replica_leases) +
           ", \"replica_promotions\": " +
           obs::JsonNumber(t.replica_promotions) +
           ", \"replica_pushes\": " + obs::JsonNumber(t.replica_pushes) +
           ", \"replicas_stored\": " + obs::JsonNumber(t.replicas_stored) +
           ",\n    \"peers\": [";
    bool first_peer = true;
    for (const core::PeerTelemetry& p : t.peers) {
      out += first_peer ? "\n" : ",\n";
      first_peer = false;
      out += "      {\"node\": " + obs::JsonNumber(p.info.node) +
             ", \"bpid\": " + obs::JsonQuoted(p.info.bpid.ToString()) +
             ", \"total_answers\": " + obs::JsonNumber(p.info.total_answers) +
             ", \"last_answers\": " + obs::JsonNumber(p.info.last_answers) +
             ", \"last_hops\": " + obs::JsonNumber(p.info.last_hops) +
             ", \"consecutive_failures\": " +
             obs::JsonNumber(p.info.consecutive_failures) +
             ", \"benefit_score\": " + obs::JsonNumber(p.benefit_score) +
             ", \"store_size_hint\": " + obs::JsonNumber(p.store_size_hint) +
             "}";
    }
    out += first_peer ? "]}" : "\n    ]}";
  }
  out += "\n}\n";
  return out;
}

/// JSON for the /cache endpoint: every node's result-cache occupancy and
/// hit rate (nodes without a cache report enabled=false).
std::string CacheJson(
    const std::vector<std::unique_ptr<core::BestPeerNode>>& nodes) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& node : nodes) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + obs::JsonNumber(node->node()) + "\": ";
    cache::ResultCache* cache = node->result_cache();
    if (cache == nullptr) {
      out += "{\"enabled\": false}";
      continue;
    }
    const uint64_t probes = cache->hits() + cache->misses();
    out += "{\"enabled\": true, \"hits\": " + obs::JsonNumber(cache->hits()) +
           ", \"misses\": " + obs::JsonNumber(cache->misses()) +
           ", \"hit_rate\": " +
           obs::JsonNumber(probes == 0 ? 0.0
                                       : static_cast<double>(cache->hits()) /
                                             static_cast<double>(probes)) +
           ", \"insertions\": " + obs::JsonNumber(cache->insertions()) +
           ", \"evictions\": " + obs::JsonNumber(cache->evictions()) +
           ", \"invalidations\": " + obs::JsonNumber(cache->invalidations()) +
           ", \"admission_rejected\": " +
           obs::JsonNumber(cache->admission_rejected()) +
           ", \"bytes_used\": " + obs::JsonNumber(cache->bytes_used()) +
           ", \"entries\": " + obs::JsonNumber(cache->entry_count()) +
           ", \"slices\": " + obs::JsonNumber(cache->slice_count()) +
           ", \"remote_hits\": " + obs::JsonNumber(node->cache_remote_hits()) +
           "}";
  }
  out += "\n}\n";
  return out;
}

/// JSON for the /gossip endpoint: every node's anti-entropy agent state —
/// round/frame/apply counters plus the epoch map it has converged on
/// (nodes without an agent report enabled=false).
std::string GossipJson(
    const std::vector<std::unique_ptr<core::BestPeerNode>>& nodes) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& node : nodes) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + obs::JsonNumber(node->node()) + "\": ";
    const gossip::GossipAgent* agent = node->gossip_agent();
    if (agent == nullptr) {
      out += "{\"enabled\": false}";
      continue;
    }
    out += "{\"enabled\": true, \"rounds\": " +
           obs::JsonNumber(agent->rounds()) +
           ", \"frames_sent\": " + obs::JsonNumber(agent->frames_sent()) +
           ", \"frames_received\": " +
           obs::JsonNumber(agent->frames_received()) +
           ", \"items_applied\": " + obs::JsonNumber(agent->items_applied()) +
           ", \"duplicates\": " + obs::JsonNumber(agent->duplicates()) +
           ", \"decode_errors\": " + obs::JsonNumber(agent->decode_errors()) +
           ", \"known_items\": " + obs::JsonNumber(agent->known_items()) +
           ", \"quiescent\": " +
           std::string(agent->quiescent() ? "true" : "false") +
           ",\n    \"epochs\": {";
    bool first_epoch = true;
    for (const auto& [origin, epoch] : agent->KnownEpochs()) {
      if (!first_epoch) out += ", ";
      first_epoch = false;
      out += "\"" + obs::JsonNumber(origin) + "\": " + obs::JsonNumber(epoch);
    }
    out += "}}";
  }
  out += "\n}\n";
  return out;
}

/// JSON for /flight?n=K: the newest K events of the ring, oldest first.
std::string FlightJson(const obs::FlightRecorder& flight, size_t n) {
  std::vector<obs::FlightEvent> events = flight.Events();
  const size_t start = events.size() > n ? events.size() - n : 0;
  std::string out = "{\"recorded\": " + obs::JsonNumber(flight.recorded()) +
                    ", \"dropped\": " + obs::JsonNumber(
                        flight.dropped_events()) +
                    ", \"returned\": " +
                    obs::JsonNumber(events.size() - start) +
                    ", \"events\": [";
  for (size_t i = start; i < events.size(); ++i) {
    const obs::FlightEvent& e = events[i];
    out += i == start ? "\n" : ",\n";
    out += "  {\"ts\": " + obs::JsonNumber(e.ts) + ", \"type\": " +
           obs::JsonQuoted(obs::EventTypeName(e.type)) + ", \"cause\": " +
           obs::JsonQuoted(obs::DropCauseName(e.cause)) +
           ", \"msg_type\": " + obs::JsonNumber(e.msg_type) +
           ", \"node\": " + obs::JsonNumber(e.node) +
           ", \"peer\": " + obs::JsonNumber(e.peer) +
           ", \"flow\": " + obs::JsonNumber(e.flow) +
           ", \"a\": " + obs::JsonNumber(e.a) +
           ", \"b\": " + obs::JsonNumber(e.b) + "}";
  }
  out += events.size() > start ? "\n]}\n" : "]}\n";
  return out;
}

/// One node's contribution to the fleet rollup. The registry is shared by
/// every node in this process, so per-node frames are synthesized from
/// node-level state with a {node="N"} label — exactly what a one-node-
/// per-process deployment would push from its own registry.
obs::StatFrame BuildStatFrame(core::BestPeerNode* node, int64_t now_us) {
  obs::StatFrame frame;
  frame.node = node->node();
  frame.sent_at_us = now_us;
  const metrics::LabelSet labels = {
      {"node", std::to_string(node->node())}};
  core::NodeTelemetry t = node->TelemetrySnapshot();
  auto gauge = [&](const char* name, double value) {
    metrics::SnapshotEntry e;
    e.name = name;
    e.labels = labels;
    e.kind = metrics::InstrumentKind::kGauge;
    e.value = value;
    frame.snapshot.entries.push_back(std::move(e));
  };
  auto counter = [&](const char* name, double value) {
    metrics::SnapshotEntry e;
    e.name = name;
    e.labels = labels;
    e.kind = metrics::InstrumentKind::kCounter;
    e.value = value;
    frame.snapshot.entries.push_back(std::move(e));
  };
  gauge("bp.node.direct_peers", static_cast<double>(t.peers.size()));
  gauge("bp.node.sessions_inflight",
        static_cast<double>(t.sessions_inflight));
  gauge("bp.node.replica_leases", static_cast<double>(t.replica_leases));
  counter("bp.node.results_received",
          static_cast<double>(node->results_received()));
  counter("bp.node.peer_evictions", static_cast<double>(t.peer_evictions));
  counter("bp.node.reconfigurations",
          static_cast<double>(t.reconfigurations));
  counter("bp.node.replica_pushes", static_cast<double>(t.replica_pushes));
  counter("bp.node.replicas_stored",
          static_cast<double>(t.replicas_stored));
  if (cache::ResultCache* cache = node->result_cache()) {
    counter("bp.node.cache_hits", static_cast<double>(cache->hits()));
    counter("bp.node.cache_misses", static_cast<double>(cache->misses()));
    gauge("bp.node.cache_bytes", static_cast<double>(cache->bytes_used()));
    gauge("bp.node.cache_entries",
          static_cast<double>(cache->entry_count()));
  }
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseFlag(argv[i], "--nodes", &v)) {
      flags.nodes = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      flags.objects = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--matches", &v)) {
      flags.matches = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = static_cast<uint64_t>(v);
    } else if (ParseFlag(argv[i], "--timeout-ms", &v)) {
      flags.timeout_ms = v;
    } else if (ParseFlag(argv[i], "--node-base", &v)) {
      flags.node_base = static_cast<uint32_t>(v);
    } else if (ParseFlag(argv[i], "--port-base", &v)) {
      flags.port_base = static_cast<uint16_t>(v);
    } else if (ParseFlag(argv[i], "--fleet-size", &v)) {
      flags.fleet_size = static_cast<uint32_t>(v);
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      flags.serve = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      flags.cache = true;
    } else if (std::strcmp(argv[i], "--gossip") == 0) {
      flags.gossip = true;
    } else {
      return Usage(argv[0]);
    }
  }
  // A follower hosts only BestPeer nodes; the driver also hosts the
  // LIGLO/collector node, so its local node count is flags.nodes + 1.
  const bool follower = flags.node_base > 0;
  const size_t local_nodes = flags.nodes + (follower ? 0 : 1);
  if (flags.nodes < (follower ? 1u : 2u) || flags.matches > flags.objects) {
    return Usage(argv[0]);
  }
  if (flags.node_base != 0 || flags.port_base != 0 ||
      flags.fleet_size != 0) {
    // Fleet mode: all three knobs are required and the plan must have
    // room for this process's nodes.
    if (flags.port_base == 0 || flags.fleet_size == 0 ||
        flags.fleet_size < flags.node_base + local_nodes) {
      return Usage(argv[0]);
    }
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const char* telemetry_addr = std::getenv("BP_TELEMETRY_ADDR");
  const char* flight_dump = std::getenv("BP_FLIGHT_DUMP");
  int64_t push_ms = 1000;
  if (const char* env = std::getenv("BP_TELEMETRY_PUSH_MS")) {
    push_ms = std::atol(env);
    if (push_ms <= 0) push_ms = 1000;
  }

  // The registry is only touched from the reactor thread once traffic
  // flows; all instrument creation happens below, before Start().
  metrics::Registry registry;

  // Distributed tracing (opt-in): one recorder per process, owned here
  // and wired into the transport. Head-based sampling keyed on the flow
  // id hash means every fleet process reaches the same verdict per
  // query; the BPF1 sampled flag enforces it for mismatched rates.
  std::unique_ptr<trace::TraceRecorder> tracer;
  if (const char* env = std::getenv("BP_TRACE_SAMPLE")) {
    const double rate = std::atof(env);
    if (rate > 0) {
      trace::TraceRecorderOptions trace_options;
      trace_options.sample_rate = rate;
      trace_options.metrics = &registry;
      if (const char* ring = std::getenv("BP_TRACE_RING")) {
        const long want = std::atol(ring);
        if (want > 0) {
          trace_options.ring_capacity = static_cast<size_t>(want);
        }
      }
      tracer = std::make_unique<trace::TraceRecorder>(trace_options);
    }
  }

  // The flight recorder exists only when someone will read it (the
  // /flight endpoint or a final dump); otherwise the transport's
  // instrumentation stays a null-pointer test.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (telemetry_addr != nullptr ||
      (flight_dump != nullptr && flight_dump[0] != '\0')) {
    flight = std::make_unique<obs::FlightRecorder>(
        obs::FlightRecorderOptions{.capacity = 8192, .auto_dump_path = ""});
    flight->RegisterTypeName(obs::kStatFrameMsgType, "stat_frame");
    flight->RegisterTypeName(obs::kTraceFrameMsgType, "trace_frame");
  }

  net::TcpOptions tcp_options;
  tcp_options.metrics = &registry;
  tcp_options.flight = flight.get();
  tcp_options.trace = tracer.get();
  tcp_options.node_base = flags.node_base;
  tcp_options.port_base = flags.port_base;
  net::TcpNet tcpnet(tcp_options);

  // Global node 0 is the LIGLO server + collector; it lives in the
  // driver process. Followers dial it by its fleet port.
  constexpr NodeId kLigloNode = 0;
  net::TcpTransport* server_transport = nullptr;
  if (!follower) {
    auto st = tcpnet.AddNode();
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n",
                   st.status().ToString().c_str());
      return 1;
    }
    server_transport = st.value();
  }
  std::vector<net::TcpTransport*> transports;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto t = tcpnet.AddNode();
    if (!t.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", t.status().ToString().c_str());
      return 1;
    }
    transports.push_back(t.value());
  }

  core::SharedInfra infra;
  // Fleet IP plan: every process derives the same NodeId <-> IpAddress
  // mapping (10.0.0.1 + id), so a peer entry minted by any process
  // resolves in every other one without a directory exchange.
  if (flags.fleet_size != 0) {
    for (uint32_t id = 1; id < flags.fleet_size; ++id) {
      Status st = infra.ip_directory.Assign(0x0A000001u + id, id);
      if (!st.ok()) {
        std::fprintf(stderr, "bestpeerd: ip plan: %s\n",
                     st.ToString().c_str());
        return 1;
      }
    }
  }

  constexpr uint32_t kInitialPeerCount = 4;
  std::unique_ptr<net::Dispatcher> server_dispatcher;
  std::unique_ptr<liglo::LigloServer> liglo_server;
  obs::FleetCollector collector;
  obs::TraceCollector trace_collector;
  if (!follower) {
    server_dispatcher = std::make_unique<net::Dispatcher>(server_transport);
    liglo::LigloServerOptions server_options;
    server_options.initial_peer_count = kInitialPeerCount;
    server_options.sample_seed = flags.seed ^ 0x5EED;
    liglo_server = std::make_unique<liglo::LigloServer>(
        server_transport, server_dispatcher.get(), &infra.ip_directory,
        server_options);

    // The LIGLO node doubles as the fleet collector: nodes push stat and
    // trace frames to it over the same transport their protocol traffic
    // uses — from followers that means real cross-process BPF1 frames.
    server_dispatcher->Register(
        obs::kStatFrameMsgType, [&](const net::Message& msg) {
          auto frame = obs::DecodeStatFrame(msg.payload);
          if (frame.ok()) {
            collector.Absorb(std::move(frame).value(),
                             tcpnet.reactor().now_us());
          }
        });
    server_dispatcher->Register(
        obs::kTraceFrameMsgType, [&](const net::Message& msg) {
          auto frame = obs::DecodeTraceFrame(msg.payload);
          if (frame.ok()) {
            trace_collector.Absorb(std::move(frame).value(),
                                   tcpnet.reactor().now_us());
          }
        });
  }

  core::BestPeerConfig config;
  // In fleet mode leave room for every global peer: with the static
  // "none" strategy an evicted back-link is never re-learned, which
  // would strand the evictee outside the search graph.
  config.max_direct_peers =
      flags.fleet_size != 0
          ? std::max<size_t>(kInitialPeerCount + 2, flags.fleet_size - 1)
          : kInitialPeerCount + 2;
  config.strategy = "none";
  // In fleet mode the query must be able to cross every global node, not
  // just the ones in this process.
  config.default_ttl = static_cast<uint16_t>(
      flags.fleet_size != 0 ? flags.fleet_size : flags.nodes);
  config.metrics = &registry;
  if (flags.cache) {
    config.enable_result_cache = true;
    config.enable_replication = true;
  }
  if (flags.gossip) {
    config.enable_gossip = true;
    config.gossip_seed = flags.seed;
    // Live-runtime pacing: the reactor clock ticks in real microseconds,
    // so the simulator's 2ms default would spin; 25ms converges a small
    // fleet well inside one telemetry push period.
    config.gossip_interval = Millis(25);
    if (const char* env = std::getenv("BP_GOSSIP_INTERVAL_MS")) {
      const long v = std::atol(env);
      if (v > 0) config.gossip_interval = Millis(v);
    }
    if (const char* env = std::getenv("BP_GOSSIP_FANOUT")) {
      const long v = std::atol(env);
      if (v > 0) config.gossip_fanout = static_cast<size_t>(v);
    }
    if (const char* env = std::getenv("BP_GOSSIP_HOT_ROUNDS")) {
      const long v = std::atol(env);
      if (v > 0) config.gossip_hot_rounds = static_cast<uint32_t>(v);
    }
  }

  workload::CorpusGenerator corpus({512, 300, 0.8}, flags.seed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto node = core::BestPeerNode::Create(transports[i], &infra, config);
    if (!node.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    Status st = node.value()->InitStorage({});
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
      return 1;
    }
    for (size_t o = 0; o < flags.objects; ++o) {
      // The driver's first BestPeer node issues the queries; matches live
      // on every other node in the fleet. Object ids are derived from the
      // global node id so they never collide across processes.
      bool match = !(!follower && i == 0) && o < flags.matches;
      st = node.value()->ShareObject(
          (static_cast<uint64_t>(node.value()->node()) << 24) | o,
          corpus.MakeObject(match));
      if (!st.ok()) {
        std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    infra.code_cache.Load(node.value()->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }

  // Workload counters for bptop: queries/s and recall come from here.
  metrics::Counter* queries_done_c = registry.GetCounter("bestpeerd.queries");
  metrics::Counter* answers_c = registry.GetCounter("bestpeerd.answers");
  metrics::Counter* expected_c =
      registry.GetCounter("bestpeerd.answers_expected");

  if (follower) {
    std::printf(
        "bestpeerd: follower nodes %u..%u on ports %u..%u (fleet of %u)\n",
        flags.node_base,
        flags.node_base + static_cast<uint32_t>(flags.nodes) - 1,
        transports.front()->port(), transports.back()->port(),
        flags.fleet_size);
  } else {
    std::printf(
        "bestpeerd: liglo on 127.0.0.1:%u, %zu nodes on ports %u..%u\n",
        server_transport->port(), flags.nodes, transports.front()->port(),
        transports.back()->port());
  }

  tcpnet.Start();

  // --- telemetry plane (opt-in) --------------------------------------------
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (telemetry_addr != nullptr) {
    obs::TelemetryServerOptions opts;
    opts.address = telemetry_addr;
    telemetry =
        std::make_unique<obs::TelemetryServer>(&tcpnet.reactor(), opts);
    telemetry->AddHandler("/healthz", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.body = "ok\n";
      return r;
    });
    telemetry->AddHandler("/metrics", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = registry.TakeSnapshot().ToPrometheus();
      return r;
    });
    telemetry->AddHandler("/peers", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = PeersJson(nodes);
      return r;
    });
    telemetry->AddHandler("/cache", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = CacheJson(nodes);
      return r;
    });
    telemetry->AddHandler("/gossip", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = GossipJson(nodes);
      return r;
    });
    telemetry->AddHandler("/fleet", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = collector.ToJson(tcpnet.reactor().now_us());
      return r;
    });
    telemetry->AddHandler("/flight", [&](const obs::HttpRequest& req) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      size_t n = 64;
      const std::string param = obs::QueryParam(req.query, "n");
      if (!param.empty()) {
        long want = std::atol(param.c_str());
        if (want > 0) n = static_cast<size_t>(want);
      }
      r.body = FlightJson(*flight, n);
      return r;
    });
    // The trace endpoints serve this process's collector: the driver's
    // holds the whole fleet's spans, a follower's only its own — bpstitch
    // scrapes all of them and dedups by the local node-id range.
    auto export_ctx = [&tcpnet, &flags, local_nodes]() {
      obs::TraceExportContext ctx;
      ctx.now_us = tcpnet.reactor().now_us();
      ctx.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
      ctx.node_base = flags.node_base;
      ctx.node_count = static_cast<uint32_t>(local_nodes);
      return ctx;
    };
    telemetry->AddHandler("/traces", [&, export_ctx](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = trace_collector.ToJson(export_ctx());
      return r;
    });
    telemetry->AddHandler(
        "/trace", [&, export_ctx](const obs::HttpRequest& req) {
          obs::HttpResponse r;
          r.content_type = "application/json";
          const std::string param = obs::QueryParam(req.query, "flow");
          if (param.empty()) {
            r.status = 400;
            r.content_type = "text/plain";
            r.body = "missing ?flow=K\n";
            return r;
          }
          r.body = trace_collector.FlowJson(
              export_ctx(), std::strtoull(param.c_str(), nullptr, 10));
          return r;
        });
    Status st = telemetry->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: telemetry: %s\n",
                   st.ToString().c_str());
      tcpnet.Stop();
      return 1;
    }
    std::printf("bestpeerd: telemetry on %s:%u\n",
                telemetry->host().c_str(), telemetry->port());

    // Recurring push: every node sends its stat frame to the collector
    // (global node 0), and the process drains freshly recorded trace
    // spans — into the local collector always, and as trace frames to the
    // driver when this process is a follower.
    const int64_t push_us = push_ms * 1000;
    auto push = std::make_shared<std::function<void()>>();
    auto trace_cursor = std::make_shared<uint64_t>(0);
    *push = [&, push_us, push, trace_cursor]() {
      const int64_t now = tcpnet.reactor().now_us();
      for (size_t i = 0; i < nodes.size(); ++i) {
        obs::StatFrame frame = BuildStatFrame(nodes[i].get(), now);
        transports[i]->Send(kLigloNode, obs::kStatFrameMsgType,
                            obs::EncodeStatFrame(frame));
      }
      if (tracer != nullptr) {
        uint64_t next = *trace_cursor;
        std::vector<trace::Span> fresh =
            tracer->SpansSince(*trace_cursor, &next);
        *trace_cursor = next;
        for (size_t off = 0; off < fresh.size();
             off += obs::kTraceFrameMaxSpans) {
          const size_t end =
              std::min(fresh.size(), off + obs::kTraceFrameMaxSpans);
          obs::TraceFrame frame;
          frame.node = flags.node_base;
          frame.sent_at_us = now;
          frame.spans_dropped = tracer->spans_dropped();
          frame.spans.assign(fresh.begin() + off, fresh.begin() + end);
          if (follower) {
            transports[0]->Send(kLigloNode, obs::kTraceFrameMsgType,
                                obs::EncodeTraceFrame(frame));
          }
          trace_collector.Absorb(std::move(frame), now);
        }
      }
      tcpnet.reactor().AddTimerAt(now + push_us, [push]() { (*push)(); });
    };
    tcpnet.Run([&]() { (*push)(); });
  }

  auto wait_until = [&](const std::function<bool()>& done_on_reactor,
                        int64_t budget_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (g_signal != 0) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Sequential joins, like a real deployment: each node registers with
  // LIGLO (global node 0, possibly in another process) and adopts a
  // sample of the members already present. In fleet mode the node's IP
  // comes from the shared plan; standalone keeps minting fresh ones.
  for (auto& node : nodes) {
    bool joined = false;
    tcpnet.Run([&]() {
      liglo::IpAddress ip =
          flags.fleet_size != 0
              ? infra.ip_directory.AddressOf(node->node())
              : infra.ip_directory.AssignFresh(node->node());
      node->JoinNetwork(kLigloNode, ip, [&joined](auto outcome) {
        (void)outcome;
        joined = true;
      });
    });
    if (!wait_until([&]() { return joined; }, flags.timeout_ms)) {
      if (g_signal != 0) break;
      std::fprintf(stderr, "bestpeerd: node %u join timed out\n",
                   node->node());
      tcpnet.Stop();
      return 1;
    }
  }
  if (g_signal == 0) std::printf("bestpeerd: %zu nodes joined\n", flags.nodes);

  // A follower's job ends here: its nodes serve agent traffic (and push
  // stat/trace frames) until a signal arrives.
  if (follower) {
    while (g_signal == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  // The fleet driver waits for every remote node to register before
  // issuing queries, so recall is measured against the whole fleet.
  if (!follower && flags.fleet_size != 0 && g_signal == 0) {
    const size_t want = flags.fleet_size - 1;
    if (!wait_until(
            [&]() { return liglo_server->registrations() >= want; },
            flags.timeout_ms)) {
      if (g_signal == 0) {
        std::fprintf(stderr, "bestpeerd: fleet join timed out\n");
        tcpnet.Stop();
        return 1;
      }
    } else {
      std::printf("bestpeerd: fleet of %zu nodes registered\n", want);
      // Registration precedes peer adoption by a round trip; give the
      // last joiner's back-links a moment before measuring recall.
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }
  }

  // Every BestPeer node except the issuer holds `matches` matching
  // objects; in fleet mode that spans all processes.
  const size_t expected =
      (flags.fleet_size != 0 ? flags.fleet_size - 2 : flags.nodes - 1) *
      flags.matches;
  size_t received_total = 0;
  size_t queries_run = 0;
  double latency_sum_ms = 0, latency_max_ms = 0;
  bool all_complete = true;
  // Fixed budget of queries; --serve keeps going until a signal arrives.
  for (size_t q = 0; (q < flags.queries || flags.serve) && g_signal == 0;
       ++q) {
    uint64_t query_id = 0;
    bool issued = false;
    tcpnet.Run([&]() {
      auto r = nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle);
      if (r.ok()) {
        query_id = r.value();
        issued = true;
      }
    });
    if (!issued) {
      std::fprintf(stderr, "bestpeerd: IssueSearch failed\n");
      tcpnet.Stop();
      return 1;
    }
    bool complete = wait_until(
        [&]() {
          const core::QuerySession* s = nodes[0]->FindSession(query_id);
          return s != nullptr && s->total_answers() >= expected;
        },
        flags.timeout_ms);
    size_t answers = 0;
    double latency_ms = 0;
    tcpnet.Run([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      if (s != nullptr) {
        answers = s->total_answers();
        latency_ms =
            ToMillis(s->completion_time() > 0
                         ? s->completion_time()
                         : tcpnet.clock().now() - s->start_time());
        // Root span for the distributed trace: the same name/cat/flow
        // convention the simulator's experiment driver uses, so the
        // critical-path explain and bpstitch find their anchor.
        if (tracer != nullptr && tracer->Sampled(query_id)) {
          trace::Span span;
          span.name = "query";
          span.cat = "query";
          span.tid = nodes[0]->node();
          span.ts = s->start_time();
          span.dur = s->completion_time() > 0
                         ? s->completion_time()
                         : tcpnet.clock().now() - s->start_time();
          span.flow = query_id;
          tracer->RecordSpan(std::move(span));
        }
      }
      queries_done_c->Increment();
      answers_c->Add(answers);
      expected_c->Add(expected);
    });
    received_total += answers;
    ++queries_run;
    latency_sum_ms += latency_ms;
    if (latency_ms > latency_max_ms) latency_max_ms = latency_ms;
    if (g_signal == 0) {
      all_complete = all_complete && complete;
      if (!flags.serve || !complete) {
        std::printf("query %zu: answers=%zu/%zu latency=%.2fms%s\n", q,
                    answers, expected, latency_ms,
                    complete ? "" : " (timeout)");
      }
    }
    if (flags.serve && q + 1 >= flags.queries) {
      // Steady-state pacing so a served fleet isn't a busy loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  const bool interrupted = g_signal != 0;
  if (interrupted) {
    std::printf("bestpeerd: signal received, draining\n");
  }

  // Drain order: stop accepting telemetry requests while the reactor is
  // still alive, then tear the fabric down.
  if (telemetry != nullptr) telemetry->Stop();
  tcpnet.Stop();

  double recall = expected == 0 || queries_run == 0
                      ? 1.0
                      : static_cast<double>(received_total) /
                            static_cast<double>(expected * queries_run);
  std::printf("recall=%.4f mean_latency=%.2fms max_latency=%.2fms\n", recall,
              queries_run > 0
                  ? latency_sum_ms / static_cast<double>(queries_run)
                  : 0.0,
              latency_max_ms);

  metrics::Snapshot snap = registry.TakeSnapshot();
  std::printf(
      "net: tx_msgs=%.0f tx_bytes=%.0f rx_msgs=%.0f rx_bytes=%.0f "
      "connects=%.0f reconnects=%.0f tx_dropped=%.0f rx_dropped=%.0f "
      "frame_errors=%.0f\n",
      snap.Value("net.tx_msgs"), snap.Value("net.tx_bytes"),
      snap.Value("net.rx_msgs"), snap.Value("net.rx_bytes"),
      snap.Value("net.connects"), snap.Value("net.reconnects"),
      snap.Value("net.tx_dropped"), snap.Value("net.rx_dropped"),
      snap.Value("net.frame_errors"));
  if (telemetry_addr != nullptr) {
    std::printf("telemetry: requests=%llu rejected=%llu fleet_nodes=%zu "
                "fleet_frames=%llu\n",
                static_cast<unsigned long long>(
                    telemetry->requests_served()),
                static_cast<unsigned long long>(
                    telemetry->connections_rejected()),
                collector.node_count(),
                static_cast<unsigned long long>(collector.frames_received()));
  }
  if (tracer != nullptr) {
    std::printf("trace: spans=%llu dropped=%llu flows_sampled=%llu "
                "collected_flows=%zu collected_spans=%zu\n",
                static_cast<unsigned long long>(tracer->recorded()),
                static_cast<unsigned long long>(tracer->spans_dropped()),
                static_cast<unsigned long long>(tracer->flows_sampled()),
                trace_collector.flow_count(), trace_collector.span_count());
  }
  if (flight != nullptr && flight_dump != nullptr &&
      flight_dump[0] != '\0') {
    Status st = flight->WriteNdjson(flight_dump);
    if (st.ok()) {
      std::printf("flight: %llu events -> %s\n",
                  static_cast<unsigned long long>(flight->recorded()),
                  flight_dump);
    } else {
      std::fprintf(stderr, "bestpeerd: flight dump: %s\n",
                   st.ToString().c_str());
    }
  }

  // A signal-driven exit is a clean drain, not a failure.
  if (interrupted) return 0;
  return all_complete && recall >= 1.0 ? 0 : 1;
}
