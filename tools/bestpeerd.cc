// bestpeerd: the BestPeer loopback runtime. Boots a LIGLO server plus N
// BestPeer nodes on 127.0.0.1, each with its own TCP listener on the
// shared reactor (net::TcpNet), joins everyone through LIGLO, runs a
// keyword-search workload and reports recall, latency and net.* counters.
//
//   bestpeerd --nodes=8 --objects=32 --matches=2 --queries=4
//
// This is the same protocol stack the simulator drives — only the
// transport differs — so recall here should match an equivalent
// simulated configuration exactly.
//
// The live telemetry plane is opt-in via BP_TELEMETRY_ADDR=host:port:
// an HTTP/1.0 server on the shared reactor serves /metrics (Prometheus),
// /healthz, /peers, /cache, /flight?n=K and /fleet; every node pushes a
// compact stat frame to the LIGLO node (the collector) every
// BP_TELEMETRY_PUSH_MS milliseconds. --serve keeps the workload running
// until SIGINT/SIGTERM, which drains cleanly: final metrics printed,
// flight ring dumped to BP_FLIGHT_DUMP (when set), exit 0.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/node.h"
#include "core/search_agent.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/tcp_transport.h"
#include "obs/flight_recorder.h"
#include "obs/json_writer.h"
#include "obs/stat_frame.h"
#include "obs/telemetry_server.h"
#include "util/metrics.h"
#include "workload/corpus.h"

namespace {

using namespace bestpeer;  // NOLINT: small tool binary.

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

struct Flags {
  size_t nodes = 8;
  size_t objects = 32;
  size_t matches = 2;
  size_t queries = 4;
  uint64_t seed = 1;
  int64_t timeout_ms = 10000;
  bool serve = false;  ///< Keep issuing queries until SIGINT/SIGTERM.
  bool cache = false;  ///< Enable the result cache + hot replication.
};

bool ParseFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atol(arg + len + 1);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--nodes=N>=2] [--objects=N] [--matches=N] "
               "[--queries=N] [--seed=N] [--timeout-ms=N] [--serve] "
               "[--cache]\n"
               "env: BP_TELEMETRY_ADDR=host:port  enable the telemetry "
               "plane\n"
               "     BP_TELEMETRY_PUSH_MS=N       stat-frame push period "
               "(default 1000)\n"
               "     BP_FLIGHT_DUMP=path          write the flight ring as "
               "NDJSON on exit\n",
               argv0);
  return 2;
}

/// JSON for the /peers endpoint: every node's TelemetrySnapshot.
std::string PeersJson(
    const std::vector<std::unique_ptr<core::BestPeerNode>>& nodes) {
  std::string out = "{\n";
  bool first_node = true;
  for (const auto& node : nodes) {
    core::NodeTelemetry t = node->TelemetrySnapshot();
    if (!first_node) out += ",\n";
    first_node = false;
    out += "  \"" + obs::JsonNumber(node->node()) + "\": {\"bpid\": " +
           obs::JsonQuoted(node->bpid().ToString()) +
           ", \"capacity\": " + obs::JsonNumber(t.peer_capacity) +
           ", \"sessions_inflight\": " + obs::JsonNumber(t.sessions_inflight) +
           ", \"peer_evictions\": " + obs::JsonNumber(t.peer_evictions) +
           ", \"reconfigurations\": " + obs::JsonNumber(t.reconfigurations) +
           ", \"replica_leases\": " + obs::JsonNumber(t.replica_leases) +
           ", \"replica_promotions\": " +
           obs::JsonNumber(t.replica_promotions) +
           ", \"replica_pushes\": " + obs::JsonNumber(t.replica_pushes) +
           ", \"replicas_stored\": " + obs::JsonNumber(t.replicas_stored) +
           ",\n    \"peers\": [";
    bool first_peer = true;
    for (const core::PeerTelemetry& p : t.peers) {
      out += first_peer ? "\n" : ",\n";
      first_peer = false;
      out += "      {\"node\": " + obs::JsonNumber(p.info.node) +
             ", \"bpid\": " + obs::JsonQuoted(p.info.bpid.ToString()) +
             ", \"total_answers\": " + obs::JsonNumber(p.info.total_answers) +
             ", \"last_answers\": " + obs::JsonNumber(p.info.last_answers) +
             ", \"last_hops\": " + obs::JsonNumber(p.info.last_hops) +
             ", \"consecutive_failures\": " +
             obs::JsonNumber(p.info.consecutive_failures) +
             ", \"benefit_score\": " + obs::JsonNumber(p.benefit_score) +
             ", \"store_size_hint\": " + obs::JsonNumber(p.store_size_hint) +
             "}";
    }
    out += first_peer ? "]}" : "\n    ]}";
  }
  out += "\n}\n";
  return out;
}

/// JSON for the /cache endpoint: every node's result-cache occupancy and
/// hit rate (nodes without a cache report enabled=false).
std::string CacheJson(
    const std::vector<std::unique_ptr<core::BestPeerNode>>& nodes) {
  std::string out = "{\n";
  bool first = true;
  for (const auto& node : nodes) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + obs::JsonNumber(node->node()) + "\": ";
    cache::ResultCache* cache = node->result_cache();
    if (cache == nullptr) {
      out += "{\"enabled\": false}";
      continue;
    }
    const uint64_t probes = cache->hits() + cache->misses();
    out += "{\"enabled\": true, \"hits\": " + obs::JsonNumber(cache->hits()) +
           ", \"misses\": " + obs::JsonNumber(cache->misses()) +
           ", \"hit_rate\": " +
           obs::JsonNumber(probes == 0 ? 0.0
                                       : static_cast<double>(cache->hits()) /
                                             static_cast<double>(probes)) +
           ", \"insertions\": " + obs::JsonNumber(cache->insertions()) +
           ", \"evictions\": " + obs::JsonNumber(cache->evictions()) +
           ", \"invalidations\": " + obs::JsonNumber(cache->invalidations()) +
           ", \"admission_rejected\": " +
           obs::JsonNumber(cache->admission_rejected()) +
           ", \"bytes_used\": " + obs::JsonNumber(cache->bytes_used()) +
           ", \"entries\": " + obs::JsonNumber(cache->entry_count()) +
           ", \"slices\": " + obs::JsonNumber(cache->slice_count()) +
           ", \"remote_hits\": " + obs::JsonNumber(node->cache_remote_hits()) +
           "}";
  }
  out += "\n}\n";
  return out;
}

/// JSON for /flight?n=K: the newest K events of the ring, oldest first.
std::string FlightJson(const obs::FlightRecorder& flight, size_t n) {
  std::vector<obs::FlightEvent> events = flight.Events();
  const size_t start = events.size() > n ? events.size() - n : 0;
  std::string out = "{\"recorded\": " + obs::JsonNumber(flight.recorded()) +
                    ", \"dropped\": " + obs::JsonNumber(
                        flight.dropped_events()) +
                    ", \"returned\": " +
                    obs::JsonNumber(events.size() - start) +
                    ", \"events\": [";
  for (size_t i = start; i < events.size(); ++i) {
    const obs::FlightEvent& e = events[i];
    out += i == start ? "\n" : ",\n";
    out += "  {\"ts\": " + obs::JsonNumber(e.ts) + ", \"type\": " +
           obs::JsonQuoted(obs::EventTypeName(e.type)) + ", \"cause\": " +
           obs::JsonQuoted(obs::DropCauseName(e.cause)) +
           ", \"msg_type\": " + obs::JsonNumber(e.msg_type) +
           ", \"node\": " + obs::JsonNumber(e.node) +
           ", \"peer\": " + obs::JsonNumber(e.peer) +
           ", \"flow\": " + obs::JsonNumber(e.flow) +
           ", \"a\": " + obs::JsonNumber(e.a) +
           ", \"b\": " + obs::JsonNumber(e.b) + "}";
  }
  out += events.size() > start ? "\n]}\n" : "]}\n";
  return out;
}

/// One node's contribution to the fleet rollup. The registry is shared by
/// every node in this process, so per-node frames are synthesized from
/// node-level state with a {node="N"} label — exactly what a one-node-
/// per-process deployment would push from its own registry.
obs::StatFrame BuildStatFrame(core::BestPeerNode* node, int64_t now_us) {
  obs::StatFrame frame;
  frame.node = node->node();
  frame.sent_at_us = now_us;
  const metrics::LabelSet labels = {
      {"node", std::to_string(node->node())}};
  core::NodeTelemetry t = node->TelemetrySnapshot();
  auto gauge = [&](const char* name, double value) {
    metrics::SnapshotEntry e;
    e.name = name;
    e.labels = labels;
    e.kind = metrics::InstrumentKind::kGauge;
    e.value = value;
    frame.snapshot.entries.push_back(std::move(e));
  };
  auto counter = [&](const char* name, double value) {
    metrics::SnapshotEntry e;
    e.name = name;
    e.labels = labels;
    e.kind = metrics::InstrumentKind::kCounter;
    e.value = value;
    frame.snapshot.entries.push_back(std::move(e));
  };
  gauge("bp.node.direct_peers", static_cast<double>(t.peers.size()));
  gauge("bp.node.sessions_inflight",
        static_cast<double>(t.sessions_inflight));
  gauge("bp.node.replica_leases", static_cast<double>(t.replica_leases));
  counter("bp.node.results_received",
          static_cast<double>(node->results_received()));
  counter("bp.node.peer_evictions", static_cast<double>(t.peer_evictions));
  counter("bp.node.reconfigurations",
          static_cast<double>(t.reconfigurations));
  counter("bp.node.replica_pushes", static_cast<double>(t.replica_pushes));
  counter("bp.node.replicas_stored",
          static_cast<double>(t.replicas_stored));
  if (cache::ResultCache* cache = node->result_cache()) {
    counter("bp.node.cache_hits", static_cast<double>(cache->hits()));
    counter("bp.node.cache_misses", static_cast<double>(cache->misses()));
    gauge("bp.node.cache_bytes", static_cast<double>(cache->bytes_used()));
    gauge("bp.node.cache_entries",
          static_cast<double>(cache->entry_count()));
  }
  return frame;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseFlag(argv[i], "--nodes", &v)) {
      flags.nodes = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--objects", &v)) {
      flags.objects = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--matches", &v)) {
      flags.matches = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      flags.queries = static_cast<size_t>(v);
    } else if (ParseFlag(argv[i], "--seed", &v)) {
      flags.seed = static_cast<uint64_t>(v);
    } else if (ParseFlag(argv[i], "--timeout-ms", &v)) {
      flags.timeout_ms = v;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      flags.serve = true;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      flags.cache = true;
    } else {
      return Usage(argv[0]);
    }
  }
  if (flags.nodes < 2 || flags.matches > flags.objects) return Usage(argv[0]);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  const char* telemetry_addr = std::getenv("BP_TELEMETRY_ADDR");
  const char* flight_dump = std::getenv("BP_FLIGHT_DUMP");
  int64_t push_ms = 1000;
  if (const char* env = std::getenv("BP_TELEMETRY_PUSH_MS")) {
    push_ms = std::atol(env);
    if (push_ms <= 0) push_ms = 1000;
  }

  // The registry is only touched from the reactor thread once traffic
  // flows; all instrument creation happens below, before Start().
  metrics::Registry registry;

  // The flight recorder exists only when someone will read it (the
  // /flight endpoint or a final dump); otherwise the transport's
  // instrumentation stays a null-pointer test.
  std::unique_ptr<obs::FlightRecorder> flight;
  if (telemetry_addr != nullptr ||
      (flight_dump != nullptr && flight_dump[0] != '\0')) {
    flight = std::make_unique<obs::FlightRecorder>(
        obs::FlightRecorderOptions{.capacity = 8192, .auto_dump_path = ""});
    flight->RegisterTypeName(obs::kStatFrameMsgType, "stat_frame");
  }

  net::TcpOptions tcp_options;
  tcp_options.metrics = &registry;
  tcp_options.flight = flight.get();
  net::TcpNet tcpnet(tcp_options);

  auto server_transport = tcpnet.AddNode();
  if (!server_transport.ok()) {
    std::fprintf(stderr, "bestpeerd: %s\n",
                 server_transport.status().ToString().c_str());
    return 1;
  }
  std::vector<net::TcpTransport*> transports;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto t = tcpnet.AddNode();
    if (!t.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", t.status().ToString().c_str());
      return 1;
    }
    transports.push_back(t.value());
  }

  core::SharedInfra infra;
  net::Dispatcher server_dispatcher(server_transport.value());
  liglo::LigloServerOptions server_options;
  server_options.initial_peer_count = 4;
  server_options.sample_seed = flags.seed ^ 0x5EED;
  liglo::LigloServer liglo_server(server_transport.value(),
                                  &server_dispatcher, &infra.ip_directory,
                                  server_options);

  // The LIGLO node doubles as the fleet collector: nodes push stat frames
  // to it over the same transport their protocol traffic uses.
  obs::FleetCollector collector;
  server_dispatcher.Register(
      obs::kStatFrameMsgType, [&](const net::Message& msg) {
        auto frame = obs::DecodeStatFrame(msg.payload);
        if (frame.ok()) {
          collector.Absorb(std::move(frame).value(),
                           tcpnet.reactor().now_us());
        }
      });

  core::BestPeerConfig config;
  config.max_direct_peers = server_options.initial_peer_count + 2;
  config.strategy = "none";
  config.default_ttl = static_cast<uint16_t>(flags.nodes);
  config.metrics = &registry;
  if (flags.cache) {
    config.enable_result_cache = true;
    config.enable_replication = true;
  }

  workload::CorpusGenerator corpus({512, 300, 0.8}, flags.seed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < flags.nodes; ++i) {
    auto node = core::BestPeerNode::Create(transports[i], &infra, config);
    if (!node.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    Status st = node.value()->InitStorage({});
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
      return 1;
    }
    for (size_t o = 0; o < flags.objects; ++o) {
      // Node 0 issues the queries; matches live on everyone else.
      bool match = i != 0 && o < flags.matches;
      st = node.value()->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                                     corpus.MakeObject(match));
      if (!st.ok()) {
        std::fprintf(stderr, "bestpeerd: %s\n", st.ToString().c_str());
        return 1;
      }
    }
    infra.code_cache.Load(node.value()->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }

  // Workload counters for bptop: queries/s and recall come from here.
  metrics::Counter* queries_done_c = registry.GetCounter("bestpeerd.queries");
  metrics::Counter* answers_c = registry.GetCounter("bestpeerd.answers");
  metrics::Counter* expected_c =
      registry.GetCounter("bestpeerd.answers_expected");

  std::printf("bestpeerd: liglo on 127.0.0.1:%u, %zu nodes on ports %u..%u\n",
              server_transport.value()->port(), flags.nodes,
              transports.front()->port(), transports.back()->port());

  tcpnet.Start();

  // --- telemetry plane (opt-in) --------------------------------------------
  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (telemetry_addr != nullptr) {
    obs::TelemetryServerOptions opts;
    opts.address = telemetry_addr;
    telemetry =
        std::make_unique<obs::TelemetryServer>(&tcpnet.reactor(), opts);
    telemetry->AddHandler("/healthz", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.body = "ok\n";
      return r;
    });
    telemetry->AddHandler("/metrics", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "text/plain; version=0.0.4; charset=utf-8";
      r.body = registry.TakeSnapshot().ToPrometheus();
      return r;
    });
    telemetry->AddHandler("/peers", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = PeersJson(nodes);
      return r;
    });
    telemetry->AddHandler("/cache", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = CacheJson(nodes);
      return r;
    });
    telemetry->AddHandler("/fleet", [&](const obs::HttpRequest&) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      r.body = collector.ToJson(tcpnet.reactor().now_us());
      return r;
    });
    telemetry->AddHandler("/flight", [&](const obs::HttpRequest& req) {
      obs::HttpResponse r;
      r.content_type = "application/json";
      size_t n = 64;
      const std::string param = obs::QueryParam(req.query, "n");
      if (!param.empty()) {
        long want = std::atol(param.c_str());
        if (want > 0) n = static_cast<size_t>(want);
      }
      r.body = FlightJson(*flight, n);
      return r;
    });
    Status st = telemetry->Start();
    if (!st.ok()) {
      std::fprintf(stderr, "bestpeerd: telemetry: %s\n",
                   st.ToString().c_str());
      tcpnet.Stop();
      return 1;
    }
    std::printf("bestpeerd: telemetry on %s:%u\n",
                telemetry->host().c_str(), telemetry->port());

    // Recurring stat push: every node sends its frame to the collector.
    const int64_t push_us = push_ms * 1000;
    auto push = std::make_shared<std::function<void()>>();
    *push = [&nodes, &transports, &tcpnet, server_node =
                 server_transport.value()->local(), push_us, push]() {
      const int64_t now = tcpnet.reactor().now_us();
      for (size_t i = 0; i < nodes.size(); ++i) {
        obs::StatFrame frame = BuildStatFrame(nodes[i].get(), now);
        transports[i]->Send(server_node, obs::kStatFrameMsgType,
                            obs::EncodeStatFrame(frame));
      }
      tcpnet.reactor().AddTimerAt(now + push_us, [push]() { (*push)(); });
    };
    tcpnet.Run([&]() { (*push)(); });
  }

  auto wait_until = [&](const std::function<bool()>& done_on_reactor,
                        int64_t budget_ms) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(budget_ms);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (g_signal != 0) return false;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Sequential joins, like a real deployment: each node registers with
  // LIGLO and adopts a sample of the members already present.
  for (auto& node : nodes) {
    bool joined = false;
    tcpnet.Run([&]() {
      liglo::IpAddress ip = infra.ip_directory.AssignFresh(node->node());
      node->JoinNetwork(server_transport.value()->local(), ip,
                        [&joined](auto outcome) {
                          (void)outcome;
                          joined = true;
                        });
    });
    if (!wait_until([&]() { return joined; }, flags.timeout_ms)) {
      if (g_signal != 0) break;
      std::fprintf(stderr, "bestpeerd: node %u join timed out\n",
                   node->node());
      tcpnet.Stop();
      return 1;
    }
  }
  if (g_signal == 0) std::printf("bestpeerd: %zu nodes joined\n", flags.nodes);

  const size_t expected = (flags.nodes - 1) * flags.matches;
  size_t received_total = 0;
  size_t queries_run = 0;
  double latency_sum_ms = 0, latency_max_ms = 0;
  bool all_complete = true;
  // Fixed budget of queries; --serve keeps going until a signal arrives.
  for (size_t q = 0; (q < flags.queries || flags.serve) && g_signal == 0;
       ++q) {
    uint64_t query_id = 0;
    bool issued = false;
    tcpnet.Run([&]() {
      auto r = nodes[0]->IssueSearch(workload::CorpusGenerator::kNeedle);
      if (r.ok()) {
        query_id = r.value();
        issued = true;
      }
    });
    if (!issued) {
      std::fprintf(stderr, "bestpeerd: IssueSearch failed\n");
      tcpnet.Stop();
      return 1;
    }
    bool complete = wait_until(
        [&]() {
          const core::QuerySession* s = nodes[0]->FindSession(query_id);
          return s != nullptr && s->total_answers() >= expected;
        },
        flags.timeout_ms);
    size_t answers = 0;
    double latency_ms = 0;
    tcpnet.Run([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      if (s != nullptr) {
        answers = s->total_answers();
        latency_ms =
            ToMillis(s->completion_time() > 0
                         ? s->completion_time()
                         : tcpnet.clock().now() - s->start_time());
      }
      queries_done_c->Increment();
      answers_c->Add(answers);
      expected_c->Add(expected);
    });
    received_total += answers;
    ++queries_run;
    latency_sum_ms += latency_ms;
    if (latency_ms > latency_max_ms) latency_max_ms = latency_ms;
    if (g_signal == 0) {
      all_complete = all_complete && complete;
      if (!flags.serve || !complete) {
        std::printf("query %zu: answers=%zu/%zu latency=%.2fms%s\n", q,
                    answers, expected, latency_ms,
                    complete ? "" : " (timeout)");
      }
    }
    if (flags.serve && q + 1 >= flags.queries) {
      // Steady-state pacing so a served fleet isn't a busy loop.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  const bool interrupted = g_signal != 0;
  if (interrupted) {
    std::printf("bestpeerd: signal received, draining\n");
  }

  // Drain order: stop accepting telemetry requests while the reactor is
  // still alive, then tear the fabric down.
  if (telemetry != nullptr) telemetry->Stop();
  tcpnet.Stop();

  double recall = expected == 0 || queries_run == 0
                      ? 1.0
                      : static_cast<double>(received_total) /
                            static_cast<double>(expected * queries_run);
  std::printf("recall=%.4f mean_latency=%.2fms max_latency=%.2fms\n", recall,
              queries_run > 0
                  ? latency_sum_ms / static_cast<double>(queries_run)
                  : 0.0,
              latency_max_ms);

  metrics::Snapshot snap = registry.TakeSnapshot();
  std::printf(
      "net: tx_msgs=%.0f tx_bytes=%.0f rx_msgs=%.0f rx_bytes=%.0f "
      "connects=%.0f reconnects=%.0f tx_dropped=%.0f rx_dropped=%.0f "
      "frame_errors=%.0f\n",
      snap.Value("net.tx_msgs"), snap.Value("net.tx_bytes"),
      snap.Value("net.rx_msgs"), snap.Value("net.rx_bytes"),
      snap.Value("net.connects"), snap.Value("net.reconnects"),
      snap.Value("net.tx_dropped"), snap.Value("net.rx_dropped"),
      snap.Value("net.frame_errors"));
  if (telemetry_addr != nullptr) {
    std::printf("telemetry: requests=%llu rejected=%llu fleet_nodes=%zu "
                "fleet_frames=%llu\n",
                static_cast<unsigned long long>(
                    telemetry->requests_served()),
                static_cast<unsigned long long>(
                    telemetry->connections_rejected()),
                collector.node_count(),
                static_cast<unsigned long long>(collector.frames_received()));
  }
  if (flight != nullptr && flight_dump != nullptr &&
      flight_dump[0] != '\0') {
    Status st = flight->WriteNdjson(flight_dump);
    if (st.ok()) {
      std::printf("flight: %llu events -> %s\n",
                  static_cast<unsigned long long>(flight->recorded()),
                  flight_dump);
    } else {
      std::fprintf(stderr, "bestpeerd: flight dump: %s\n",
                   st.ToString().c_str());
    }
  }

  // A signal-driven exit is a clean drain, not a failure.
  if (interrupted) return 0;
  return all_complete && recall >= 1.0 ? 0 : 1;
}
