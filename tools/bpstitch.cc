// bpstitch: stitches the distributed traces of a bestpeerd fleet into
// per-flow Perfetto files. Scrapes /traces from every process's telemetry
// endpoint, reconciles their clocks (each export carries a matching
// monotonic/wall timestamp pair), dedups spans by the exporter's local
// node-id range (every span is taken only from the process that recorded
// it), and writes one Chrome trace_event JSON per flow — loadable in
// ui.perfetto.dev or chrome://tracing. For flows that carry a root
// "query" span it also prints a critical-path explain: where every
// microsecond of the query's latency went, via the same
// AnalyzeCriticalPaths walker the simulator benches use.
//
//   bpstitch --out=traces 127.0.0.1:24090 127.0.0.1:24091
//   bpstitch --out=traces --flow=4294967297 127.0.0.1:24090
//
// Exit 0 when every scrape succeeded and at least one flow was written.

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "obs/telemetry_server.h"
#include "util/trace.h"

namespace {

using namespace bestpeer;  // NOLINT: small tool binary.

struct Flags {
  std::string out = "traces";
  uint64_t flow = 0;  ///< 0 = every flow the fleet collected.
  size_t top = 3;     ///< Hops printed per explain.
  std::vector<std::string> addrs;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out=DIR] [--flow=K] [--top=N] host:port "
               "[host:port ...]\n"
               "scrapes /traces from each bestpeerd telemetry endpoint and "
               "writes one\nPerfetto trace_event JSON per flow to DIR, plus "
               "a critical-path explain.\n",
               argv0);
  return 2;
}

/// One process's export: who it is, its clock anchor, and its spans.
struct ProcessTrace {
  std::string addr;
  uint32_t node_base = 0;
  uint32_t local_nodes = 0;
  /// Adding this to a span ts puts it on the shared wall clock.
  int64_t wall_offset_us = 0;
  std::map<uint64_t, std::vector<trace::Span>> flows;
};

uint64_t ArgOf(const trace::Span& s, const char* key) {
  for (const auto& [k, v] : s.args) {
    if (k == key) return v;
  }
  return 0;
}

/// Parses one /traces document. Numbers arrive as doubles; every id this
/// tool handles (node ids, µs timestamps, flow sequence numbers) is far
/// below 2^53, so the round trip is exact.
bool ParseProcess(const std::string& addr, const obs::JsonValue& doc,
                  ProcessTrace* out) {
  const obs::JsonValue* mono = doc.Find("mono_us");
  const obs::JsonValue* wall = doc.Find("wall_us");
  const obs::JsonValue* base = doc.Find("node_base");
  const obs::JsonValue* count = doc.Find("local_nodes");
  const obs::JsonValue* flows = doc.Find("flows");
  if (mono == nullptr || wall == nullptr || base == nullptr ||
      count == nullptr || flows == nullptr || !flows->is_object()) {
    return false;
  }
  out->addr = addr;
  out->node_base = static_cast<uint32_t>(base->AsNumber());
  out->local_nodes = static_cast<uint32_t>(count->AsNumber());
  out->wall_offset_us = static_cast<int64_t>(wall->AsNumber()) -
                        static_cast<int64_t>(mono->AsNumber());
  for (const auto& [flow_key, span_list] : flows->AsObject()) {
    if (!span_list.is_array()) continue;
    const uint64_t flow = std::strtoull(flow_key.c_str(), nullptr, 10);
    if (flow == 0) continue;
    std::vector<trace::Span>& spans = out->flows[flow];
    for (const obs::JsonValue& sj : span_list.AsArray()) {
      trace::Span s;
      if (const obs::JsonValue* v = sj.Find("name")) s.name = v->AsString();
      if (const obs::JsonValue* v = sj.Find("cat")) s.cat = v->AsString();
      if (const obs::JsonValue* v = sj.Find("tid")) {
        s.tid = static_cast<uint32_t>(v->AsNumber());
      }
      if (const obs::JsonValue* v = sj.Find("ts")) {
        s.ts = static_cast<int64_t>(v->AsNumber());
      }
      if (const obs::JsonValue* v = sj.Find("dur")) {
        s.dur = static_cast<int64_t>(v->AsNumber());
      }
      s.flow = flow;
      if (const obs::JsonValue* args = sj.Find("args");
          args != nullptr && args->is_object()) {
        for (const auto& [k, v] : args->AsObject()) {
          if (v.is_number()) {
            s.args.emplace_back(k, static_cast<uint64_t>(v.AsNumber()));
          }
        }
      }
      spans.push_back(std::move(s));
    }
  }
  return true;
}

/// True when `tid` is one of the exporter's own nodes — the dedup rule:
/// every span was recorded by exactly one process, and that process's
/// export is the authoritative copy.
bool OwnsSpan(const ProcessTrace& p, uint32_t tid) {
  return tid >= p.node_base && tid < p.node_base + p.local_nodes;
}

std::string ChromeJson(const std::vector<trace::Span>& spans) {
  std::string out = "{\"traceEvents\": [";
  char buf[128];
  for (size_t i = 0; i < spans.size(); ++i) {
    const trace::Span& s = spans[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"name\": \"";
    obs::AppendJsonEscaped(&out, s.name);
    out += "\", \"cat\": \"";
    obs::AppendJsonEscaped(&out, s.cat);
    std::snprintf(buf, sizeof(buf),
                  "\", \"ph\": \"X\", \"pid\": 0, \"tid\": %u, \"ts\": %" PRId64
                  ", \"dur\": %" PRId64,
                  s.tid, s.ts, s.dur);
    out += buf;
    out += ", \"args\": {";
    std::snprintf(buf, sizeof(buf), "\"flow\": %" PRIu64, s.flow);
    out += buf;
    for (const auto& [key, value] : s.args) {
      out += ", \"";
      obs::AppendJsonEscaped(&out, key);
      std::snprintf(buf, sizeof(buf), "\": %" PRIu64, value);
      out += buf;
    }
    out += "}}";
  }
  out += spans.empty() ? "]}\n" : "\n]}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      flags.out = arg + 6;
    } else if (std::strncmp(arg, "--flow=", 7) == 0) {
      flags.flow = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--top=", 6) == 0) {
      long v = std::atol(arg + 6);
      if (v > 0) flags.top = static_cast<size_t>(v);
    } else if (arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      flags.addrs.push_back(arg);
    }
  }
  if (flags.addrs.empty()) return Usage(argv[0]);
  if (mkdir(flags.out.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "bpstitch: mkdir %s: %s\n", flags.out.c_str(),
                 std::strerror(errno));
    return 1;
  }

  // Scrape every process. A fleet with an unreachable member yields a
  // partial trace, which is worse than no trace — fail loudly instead.
  std::vector<ProcessTrace> processes;
  for (const std::string& addr : flags.addrs) {
    std::string host;
    uint16_t port = 0;
    Status st = obs::ParseHostPort(addr, &host, &port);
    if (!st.ok()) {
      std::fprintf(stderr, "bpstitch: %s: %s\n", addr.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    auto r = obs::HttpGet(host, port, "/traces");
    if (!r.ok() || r.value().status != 200) {
      std::fprintf(stderr, "bpstitch: %s/traces unreachable (%s)\n",
                   addr.c_str(),
                   r.ok() ? "non-200" : r.status().ToString().c_str());
      return 1;
    }
    auto doc = obs::ParseJson(r.value().body);
    if (!doc.ok()) {
      std::fprintf(stderr, "bpstitch: %s/traces: %s\n", addr.c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    ProcessTrace p;
    if (!ParseProcess(addr, doc.value(), &p)) {
      std::fprintf(stderr, "bpstitch: %s/traces: not a trace export\n",
                   addr.c_str());
      return 1;
    }
    std::printf("bpstitch: %s node_base=%u local_nodes=%u flows=%zu\n",
                addr.c_str(), p.node_base, p.local_nodes, p.flows.size());
    processes.push_back(std::move(p));
  }

  // Merge: per flow, take each process's own spans shifted onto the wall
  // clock. The driver's collector also holds copies of follower spans
  // (shipped as trace frames); the ownership rule drops those duplicates.
  std::map<uint64_t, std::vector<trace::Span>> merged;
  for (const ProcessTrace& p : processes) {
    for (const auto& [flow, spans] : p.flows) {
      if (flags.flow != 0 && flow != flags.flow) continue;
      std::vector<trace::Span>& out = merged[flow];
      for (const trace::Span& s : spans) {
        if (!OwnsSpan(p, s.tid)) continue;
        trace::Span shifted = s;
        shifted.ts += p.wall_offset_us;
        out.push_back(std::move(shifted));
      }
    }
  }

  // Cross-process receive spans are point events on the receiver's clock
  // (the sender's timestamp came from another monotonic clock). Now that
  // both ends sit on the wall clock, stretch them back over the wire
  // interval using the sent_us arg so the gap reads as transmission, not
  // mystery.
  for (auto& [flow, spans] : merged) {
    for (trace::Span& s : spans) {
      if (s.cat != "net" || s.dur != 0) continue;
      const uint64_t sent_us = ArgOf(s, "sent_us");
      if (sent_us == 0) continue;
      const uint32_t src = static_cast<uint32_t>(ArgOf(s, "src"));
      for (const ProcessTrace& p : processes) {
        if (!OwnsSpan(p, src)) continue;
        const int64_t sent_wall =
            static_cast<int64_t>(sent_us) + p.wall_offset_us;
        if (sent_wall < s.ts) {
          s.dur = s.ts - sent_wall;
          s.ts = sent_wall;
        }
        break;
      }
    }
  }

  int written = 0;
  for (auto& [flow, spans] : merged) {
    if (spans.empty()) continue;
    // Normalize the flow to t=0 — Perfetto is happier and the explain's
    // microsecond arithmetic stays far from overflow.
    int64_t min_ts = spans.front().ts;
    for (const trace::Span& s : spans) min_ts = std::min(min_ts, s.ts);
    std::sort(spans.begin(), spans.end(),
              [](const trace::Span& a, const trace::Span& b) {
                return a.ts < b.ts;
              });
    bool has_root = false;
    for (trace::Span& s : spans) {
      s.ts -= min_ts;
      if (s.cat == "query") has_root = true;
    }

    char path[512];
    std::snprintf(path, sizeof(path), "%s/flow_%" PRIu64 ".json",
                  flags.out.c_str(), flow);
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bpstitch: %s: %s\n", path, std::strerror(errno));
      return 1;
    }
    const std::string json = ChromeJson(spans);
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    ++written;

    uint32_t procs = 0;
    for (const ProcessTrace& p : processes) {
      for (const trace::Span& s : spans) {
        if (OwnsSpan(p, s.tid)) {
          ++procs;
          break;
        }
      }
    }
    std::printf("flow %" PRIu64 ": %zu spans from %u process%s -> %s\n",
                flow, spans.size(), procs, procs == 1 ? "" : "es", path);

    if (!has_root) continue;
    // Replay through the simulator's critical-path walker: same spans,
    // same component attribution as the BENCH_*.json explain sections.
    trace::TraceRecorderOptions opts;
    opts.ring_capacity = std::max<size_t>(spans.size(), 1);
    trace::TraceRecorder replay(opts);
    for (const trace::Span& s : spans) replay.RecordSpan(s);
    obs::CriticalPathReport report =
        obs::AnalyzeCriticalPaths(replay, nullptr, flags.top);
    for (const obs::QueryBreakdown& q : report.queries) {
      std::printf("  explain: total=%" PRId64 "us", q.total);
      for (size_t c = 0; c < obs::kPathComponentCount; ++c) {
        if (q.components[c] == 0) continue;
        std::printf(" %s=%" PRId64 "us",
                    std::string(obs::PathComponentName(
                                    static_cast<obs::PathComponent>(c)))
                        .c_str(),
                    q.components[c]);
      }
      std::printf("\n");
      const size_t hop_count = std::min(q.hops.size(), flags.top);
      for (size_t h = 0; h < hop_count; ++h) {
        const obs::PathHop& hop = q.hops[q.hops.size() - hop_count + h];
        std::printf("    %s on node %u: +%" PRId64 "us (%s)\n",
                    hop.name.c_str(), hop.node, hop.dur,
                    std::string(obs::PathComponentName(hop.component))
                        .c_str());
      }
    }
  }

  if (written == 0) {
    std::fprintf(stderr, "bpstitch: no flows collected%s\n",
                 flags.flow != 0 ? " matching --flow" : "");
    return 1;
  }
  std::printf("bpstitch: wrote %d flow trace%s to %s/\n", written,
              written == 1 ? "" : "s", flags.out.c_str());
  return 0;
}
