// promlint: validates Prometheus text exposition with the repo's
// metrics::LintPrometheusText — the same checks CI applies to a live
// /metrics scrape (TYPE lines, name charset, label escaping, monotone
// histogram buckets, +Inf == _count).
//
//   promlint scrape.txt     # lint a file
//   curl .../metrics | promlint   # lint stdin
//
// Exit 0 when clean, 1 on the first violation (printed with its line).

#include <cstdio>
#include <string>

#include "util/metrics.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc > 2) {
    std::fprintf(stderr, "usage: %s [file]\n", argv[0]);
    return 2;
  }
  std::FILE* in = stdin;
  if (argc == 2) {
    in = std::fopen(argv[1], "rb");
    if (in == nullptr) {
      std::fprintf(stderr, "promlint: cannot open %s\n", argv[1]);
      return 2;
    }
  }
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    text.append(buf, n);
  }
  if (in != stdin) std::fclose(in);

  bestpeer::Status st = bestpeer::metrics::LintPrometheusText(text);
  if (!st.ok()) {
    std::fprintf(stderr, "promlint: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("promlint: ok (%zu bytes)\n", text.size());
  return 0;
}
