// bptop: terminal dashboard for a running bestpeerd. Polls the telemetry
// plane (/metrics for fabric counters, /fleet for the per-node rollup)
// and redraws a compact table every interval: per node the direct-peer
// count, in-flight sessions, results/s, cache hit %, plus a fabric
// header with queries/s, recall and tx/rx byte rates.
//
//   BP_TELEMETRY_ADDR=127.0.0.1:9464 bestpeerd --serve &
//   bptop --addr=127.0.0.1:9464
//
// --iterations=N bounds the run (0 = until interrupted), which is what
// CI uses to smoke the dashboard without a TTY.

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_reader.h"
#include "obs/telemetry_server.h"

namespace {

using namespace bestpeer;  // NOLINT: small tool binary.

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

struct Flags {
  std::string addr = "127.0.0.1:9464";
  int64_t interval_ms = 1000;
  long iterations = 0;  ///< 0 = run until SIGINT/SIGTERM.
  bool ansi = true;     ///< Clear-screen escapes (off when not a TTY).
};

/// Flat view of one Prometheus scrape: "name" or "name{labels}" -> value.
/// Keys use the exposition's sanitized names (dots already underscores).
using Scrape = std::map<std::string, double>;

/// Minimal exposition parse — bptop only needs sample lines, and only
/// the ones bestpeerd emits (no escaping inside its label values).
Scrape ParseMetrics(const std::string& text) {
  Scrape out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string_view line =
        std::string_view(text).substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string_view::npos || sp == 0) continue;
    char* end = nullptr;
    const double value = std::strtod(line.data() + sp + 1, &end);
    if (end == line.data() + sp + 1) continue;
    out[std::string(line.substr(0, sp))] = value;
  }
  return out;
}

double Get(const Scrape& scrape, const std::string& key) {
  auto it = scrape.find(key);
  return it == scrape.end() ? 0.0 : it->second;
}

/// Positive per-second rate between two scrapes of a counter.
double Rate(const Scrape& now, const Scrape& prev, const std::string& key,
            double dt_s) {
  if (dt_s <= 0) return 0;
  const double delta = Get(now, key) - Get(prev, key);
  return delta > 0 ? delta / dt_s : 0;
}

struct NodeRow {
  uint32_t node = 0;
  double age_us = 0;
  double peers = 0;
  double sessions = 0;
  double results = 0;  ///< Counter; rate computed against the last poll.
  double cache_hits = 0;
  double cache_misses = 0;
  double replica_leases = 0;
};

/// Per-node rows out of the /fleet JSON (metric keys carry the
/// synthesized {node="N"} label, so they're looked up fully qualified).
std::vector<NodeRow> ParseFleet(const obs::JsonValue& fleet) {
  std::vector<NodeRow> rows;
  const obs::JsonValue* per_node = fleet.Find("per_node");
  if (per_node == nullptr || !per_node->is_object()) return rows;
  for (const auto& [id, entry] : per_node->AsObject()) {
    NodeRow row;
    row.node = static_cast<uint32_t>(std::atol(id.c_str()));
    if (const obs::JsonValue* age = entry.Find("age_us")) {
      row.age_us = age->AsNumber();
    }
    const obs::JsonValue* metrics = entry.Find("metrics");
    if (metrics == nullptr || !metrics->is_object()) continue;
    const std::string tag = "{node=" + id + "}";
    auto value = [&](const char* name) {
      const obs::JsonValue* v = metrics->Find(name + tag);
      return v != nullptr && v->is_number() ? v->AsNumber() : 0.0;
    };
    row.peers = value("bp.node.direct_peers");
    row.sessions = value("bp.node.sessions_inflight");
    row.results = value("bp.node.results_received");
    row.cache_hits = value("bp.node.cache_hits");
    row.cache_misses = value("bp.node.cache_misses");
    row.replica_leases = value("bp.node.replica_leases");
    rows.push_back(row);
  }
  return rows;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--addr=host:port] [--interval-ms=N] "
               "[--iterations=N] [--no-ansi]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--addr=", 7) == 0) {
      flags.addr = arg + 7;
    } else if (std::strncmp(arg, "--interval-ms=", 14) == 0) {
      flags.interval_ms = std::atol(arg + 14);
      if (flags.interval_ms <= 0) flags.interval_ms = 1000;
    } else if (std::strncmp(arg, "--iterations=", 13) == 0) {
      flags.iterations = std::atol(arg + 13);
    } else if (std::strcmp(arg, "--no-ansi") == 0) {
      flags.ansi = false;
    } else {
      return Usage(argv[0]);
    }
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  std::string host;
  uint16_t port = 0;
  Status st = obs::ParseHostPort(flags.addr, &host, &port);
  if (!st.ok()) {
    std::fprintf(stderr, "bptop: %s\n", st.ToString().c_str());
    return 2;
  }

  Scrape prev;
  std::map<uint32_t, double> prev_results;
  bool have_prev = false;
  const double dt_s = static_cast<double>(flags.interval_ms) / 1000.0;

  for (long iter = 0; (flags.iterations == 0 || iter < flags.iterations) &&
                      g_signal == 0;
       ++iter) {
    auto metrics_r = obs::HttpGet(host, port, "/metrics");
    auto fleet_r = obs::HttpGet(host, port, "/fleet");
    if (!metrics_r.ok() || metrics_r.value().status != 200) {
      std::fprintf(stderr, "bptop: %s/metrics unreachable (%s)\n",
                   flags.addr.c_str(),
                   metrics_r.ok() ? "non-200"
                                  : metrics_r.status().ToString().c_str());
      return 1;
    }
    Scrape scrape = ParseMetrics(metrics_r.value().body);

    std::vector<NodeRow> rows;
    if (fleet_r.ok() && fleet_r.value().status == 200) {
      auto fleet = obs::ParseJson(fleet_r.value().body);
      if (fleet.ok()) rows = ParseFleet(fleet.value());
    }

    if (flags.ansi) std::printf("\x1b[2J\x1b[H");
    const double queries = Get(scrape, "bestpeerd_queries");
    const double answers = Get(scrape, "bestpeerd_answers");
    const double expected = Get(scrape, "bestpeerd_answers_expected");
    std::printf("bptop %s  queries=%.0f q/s=%.2f recall=%.4f\n",
                flags.addr.c_str(), queries,
                have_prev ? Rate(scrape, prev, "bestpeerd_queries", dt_s)
                          : 0.0,
                expected > 0 ? answers / expected : 1.0);
    if (Get(scrape, "gossip_rounds") > 0) {
      std::printf(
          "gossip rounds=%.0f frames=%.0f applied=%.0f dups=%.0f "
          "known=%.0f frames/s=%.0f\n",
          Get(scrape, "gossip_rounds"), Get(scrape, "gossip_frames_sent"),
          Get(scrape, "gossip_items_applied"),
          Get(scrape, "gossip_duplicates"),
          Get(scrape, "gossip_known_items"),
          have_prev ? Rate(scrape, prev, "gossip_frames_sent", dt_s) : 0.0);
    }
    if (Get(scrape, "trace_spans_recorded") > 0 ||
        Get(scrape, "trace_flows_sampled") > 0) {
      std::printf(
          "trace flows_sampled=%.0f spans=%.0f spans/s=%.0f dropped=%.0f\n",
          Get(scrape, "trace_flows_sampled"),
          Get(scrape, "trace_spans_recorded"),
          have_prev ? Rate(scrape, prev, "trace_spans_recorded", dt_s) : 0.0,
          Get(scrape, "trace_spans_dropped"));
    }
    std::printf(
        "net   tx=%.0fB rx=%.0fB tx/s=%.0fB rx/s=%.0fB drops=%.0f "
        "frame_errs=%.0f\n",
        Get(scrape, "net_tx_bytes"), Get(scrape, "net_rx_bytes"),
        have_prev ? Rate(scrape, prev, "net_tx_bytes", dt_s) : 0.0,
        have_prev ? Rate(scrape, prev, "net_rx_bytes", dt_s) : 0.0,
        Get(scrape, "net_tx_dropped") + Get(scrape, "net_rx_dropped"),
        Get(scrape, "net_frame_errors"));
    std::printf("%6s %6s %9s %9s %10s %7s %8s %9s\n", "node", "peers",
                "sessions", "results/s", "cache-hit%", "leases", "age-ms",
                "results");
    for (const NodeRow& row : rows) {
      double results_rate = 0;
      auto it = prev_results.find(row.node);
      if (it != prev_results.end() && dt_s > 0 &&
          row.results > it->second) {
        results_rate = (row.results - it->second) / dt_s;
      }
      const double probes = row.cache_hits + row.cache_misses;
      std::printf("%6u %6.0f %9.0f %9.2f %9.1f%% %7.0f %8.1f %9.0f\n",
                  row.node, row.peers, row.sessions, results_rate,
                  probes > 0 ? 100.0 * row.cache_hits / probes : 0.0,
                  row.replica_leases, row.age_us / 1000.0, row.results);
      prev_results[row.node] = row.results;
    }
    if (rows.empty()) {
      std::printf("(no fleet frames yet — nodes push every "
                  "BP_TELEMETRY_PUSH_MS ms)\n");
    }
    std::fflush(stdout);

    prev = std::move(scrape);
    have_prev = true;
    if (flags.iterations != 0 && iter + 1 >= flags.iterations) break;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(flags.interval_ms));
  }
  return 0;
}
