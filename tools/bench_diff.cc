// bench_diff: the bench regression gate.
//
// Compares BENCH_*.json reports against committed baselines and exits
// nonzero when a gated metric moved more than its threshold, so CI can
// fail the build on a wire-bytes or latency regression.
//
// Usage:
//   bench_diff [flags] <baseline.json> <current.json>
//   bench_diff [flags] <baseline_dir> <current_dir>
//
// Directory mode diffs every BENCH_*.json found in the baseline
// directory against the file of the same name in the current directory;
// a baseline with no current counterpart fails (the bench silently
// stopped producing its report).
//
// Flags:
//   --threshold=<frac>          default relative threshold (default 0.10)
//   --metric=<name>=<frac>      per-metric override, e.g.
//                               --metric=summary.wire_bytes=0.02
//   --verbose                   print every compared metric, not just
//                               violations
//
// Exit codes: 0 all within thresholds, 1 regression or structural
// mismatch, 2 usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/bench_diff.h"

namespace fs = std::filesystem;
using bestpeer::obs::BenchDiff;
using bestpeer::obs::CompareReportFiles;
using bestpeer::obs::DiffOptions;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff [--threshold=F] [--metric=NAME=F] "
               "[--verbose] <baseline> <current>\n"
               "       (two report files, or two directories of "
               "BENCH_*.json)\n");
  return 2;
}

/// Diffs one report pair; returns 1 on regression, 2 on I/O error.
int DiffOne(const std::string& baseline, const std::string& current,
            const DiffOptions& options, bool verbose) {
  auto diff = CompareReportFiles(baseline, current, options);
  if (!diff.ok()) {
    std::fprintf(stderr, "bench_diff: %s\n",
                 diff.status().ToString().c_str());
    return 2;
  }
  const BenchDiff& d = diff.value();
  std::string text = d.FormatText(verbose);
  if (!text.empty()) std::fputs(text.c_str(), stdout);
  if (d.ok()) {
    std::printf("%s: ok (%zu metrics within thresholds)\n",
                d.figure.empty() ? current.c_str() : d.figure.c_str(),
                d.entries.size());
    return 0;
  }
  std::printf("%s: FAIL (%zu regressions, %zu structural errors)\n",
              d.figure.empty() ? current.c_str() : d.figure.c_str(),
              d.violations(), d.structure_errors.size());
  return 1;
}

bool IsReportName(const std::string& name) {
  return name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
         name.substr(name.size() - 5) == ".json";
}

}  // namespace

int main(int argc, char** argv) {
  DiffOptions options;
  bool verbose = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg.rfind("--threshold=", 0) == 0) {
      options.default_threshold = std::atof(arg.c_str() + 12);
    } else if (arg.rfind("--metric=", 0) == 0) {
      const std::string spec = arg.substr(9);
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) return Usage();
      options.thresholds[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else {
      paths.push_back(std::move(arg));
    }
  }
  if (paths.size() != 2) return Usage();

  std::error_code ec;
  const bool dir_mode = fs::is_directory(paths[0], ec);
  if (!dir_mode) return DiffOne(paths[0], paths[1], options, verbose);

  if (!fs::is_directory(paths[1], ec)) {
    std::fprintf(stderr, "bench_diff: %s is a directory but %s is not\n",
                 paths[0].c_str(), paths[1].c_str());
    return 2;
  }
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(paths[0], ec)) {
    const std::string name = entry.path().filename().string();
    if (IsReportName(name)) names.push_back(name);
  }
  if (ec) {
    std::fprintf(stderr, "bench_diff: cannot list %s: %s\n",
                 paths[0].c_str(), ec.message().c_str());
    return 2;
  }
  if (names.empty()) {
    std::fprintf(stderr, "bench_diff: no BENCH_*.json under %s\n",
                 paths[0].c_str());
    return 2;
  }
  std::sort(names.begin(), names.end());

  int worst = 0;
  for (const std::string& name : names) {
    const std::string baseline = paths[0] + "/" + name;
    const std::string current = paths[1] + "/" + name;
    if (!fs::exists(current)) {
      std::fprintf(stderr,
                   "%s: FAIL (baseline exists but no current report)\n",
                   name.c_str());
      worst = std::max(worst, 1);
      continue;
    }
    worst = std::max(worst, DiffOne(baseline, current, options, verbose));
  }
  if (worst == 0) {
    std::printf("bench_diff: %zu report(s) within thresholds\n",
                names.size());
  }
  return worst;
}
