// scnlint: validates scenario files and prints each one's resolved
// timeline — classes with their link/CPU/store profiles, the phase
// schedule with expected arrival counts (the exact integral of the
// declared rate function), and churn waves. CI runs it over every
// committed scenarios/*.json; any schema, type, range or unknown-key
// problem is a nonzero exit.
//
//   scnlint <spec.json> [<spec.json> ...]
#include <cstdio>
#include <string>

#include "scenario/arrival.h"
#include "scenario/spec.h"

using namespace bestpeer;
using namespace bestpeer::scenario;

namespace {

int LintOne(const std::string& path) {
  auto spec_result = LoadScenarioFile(path);
  if (!spec_result.ok()) {
    std::fprintf(stderr, "%s: FAIL: %s\n", path.c_str(),
                 spec_result.status().ToString().c_str());
    return 1;
  }
  const ScenarioSpec spec = std::move(spec_result).value();

  std::printf("%s: OK\n", path.c_str());
  std::printf("  scenario '%s' seed=%llu topology=%s nodes=%zu ttl=%u "
              "pool=%zu reconfigure=%s\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(spec.seed),
              spec.topology.kind.c_str(), spec.TotalNodes(), spec.ttl,
              spec.query_pool,
              spec.reconfigure_each_phase ? "phase" : "off");
  size_t offset = 0;
  for (const NodeClassSpec& cls : spec.classes) {
    std::printf("  class %-10s nodes [%zu, %zu)", cls.name.c_str(), offset,
                offset + cls.count);
    if (cls.bandwidth_mbps > 0) {
      std::printf(" %.0f Mbit/s", cls.bandwidth_mbps);
    }
    if (cls.extra_latency_ms > 0) {
      std::printf(" +%.0fms", cls.extra_latency_ms);
    }
    if (cls.cpu_threads > 0) std::printf(" %d threads", cls.cpu_threads);
    std::printf(" store=%zu matches=%zu%s%s\n", cls.objects_per_node,
                cls.matches_per_node, cls.issues_queries ? "" : " silent",
                cls.free_rider ? " FREE-RIDER" : "");
    offset += cls.count;
  }
  double start_ms = 0;
  double expected_total = 0;
  for (const PhaseSpec& phase : spec.phases) {
    const double expected =
        ExpectedArrivals(phase.arrival, phase.duration_ms);
    expected_total += expected;
    std::printf("  phase %-10s [%7.0fms, %7.0fms) %-8s rate=%.1f/s",
                phase.name.c_str(), start_ms,
                start_ms + phase.duration_ms,
                ArrivalProcessName(phase.arrival.process),
                phase.arrival.rate_per_s);
    if (phase.arrival.process == ArrivalProcess::kFlash) {
      std::printf(" x%.0f in [%.0fms, %.0fms)", phase.arrival.multiplier,
                  start_ms + phase.arrival.spike_start_ms,
                  start_ms + phase.arrival.spike_end_ms);
    }
    if (phase.arrival.process == ArrivalProcess::kDiurnal) {
      std::printf(" amp=%.2f period=%.0fms", phase.arrival.amplitude,
                  phase.arrival.period_ms);
    }
    std::printf(" expect ~%.0f queries\n", expected);
    start_ms += phase.duration_ms;
  }
  for (const ChurnWaveSpec& wave : spec.churn) {
    std::printf("  churn at %.0fms: %.0f%% of '%s' leave, %s\n", wave.at_ms,
                wave.fraction * 100, wave.target_class.c_str(),
                wave.down_for_ms > 0
                    ? ("back after " + std::to_string(
                           static_cast<long long>(wave.down_for_ms)) + "ms")
                          .c_str()
                    : "for good");
  }
  if (spec.fault.message_loss > 0) {
    std::printf("  fault: %.1f%% message loss", spec.fault.message_loss * 100);
    if (spec.fault.query_deadline > 0) {
      std::printf(", %.0fms query deadline",
                  ToMillis(spec.fault.query_deadline));
    }
    std::printf("\n");
  }
  std::printf("  total: %.0fms, ~%.0f queries expected\n", start_ms,
              expected_total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: scnlint <spec.json> [<spec.json> ...]\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) failures += LintOne(argv[i]);
  return failures > 0 ? 1 : 0;
}
