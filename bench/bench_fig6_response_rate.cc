// Regenerates Figure 6: the rate at which answers are returned — points
// (K, T) meaning K nodes have responded after T time units. 32 nodes,
// Tree topology, the query issued 4 times and response times averaged
// (paper §4.4).
//
// Paper shape: BPR best (reconfigures toward promising nodes), BPS next;
// CS returns answers much slower except for the first few nodes.

#include <algorithm>
#include <map>

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

namespace {

/// Averages the k-th response time across all query repetitions.
std::vector<double> ResponseCurveMs(const ExperimentResult& result) {
  std::vector<std::vector<double>> per_run;
  for (const auto& q : result.queries) {
    std::vector<double> times;
    for (const auto& e : q.responses) times.push_back(ToMillis(e.time));
    std::sort(times.begin(), times.end());
    per_run.push_back(std::move(times));
  }
  size_t max_k = 0;
  for (const auto& run : per_run) max_k = std::max(max_k, run.size());
  std::vector<double> curve;
  for (size_t k = 0; k < max_k; ++k) {
    double sum = 0;
    size_t n = 0;
    for (const auto& run : per_run) {
      if (k < run.size()) {
        sum += run[k];
        ++n;
      }
    }
    curve.push_back(n == 0 ? 0 : sum / static_cast<double>(n));
  }
  return curve;
}

}  // namespace

int main() {
  PrintTitle(
      "Figure 6: rate at which answers are returned — K nodes responded "
      "after T ms (32 nodes, tree, query issued 4 times)");
  Topology tree = MakeTree(32, 2);

  BenchReport report("fig6_response_rate");
  std::map<std::string, std::vector<double>> curves;
  curves["CS"] =
      ResponseCurveMs(report.Run(SearchPhaseOptions(tree, Scheme::kMcs)));
  curves["BPS"] =
      ResponseCurveMs(report.Run(SearchPhaseOptions(tree, Scheme::kBps)));
  curves["BPR"] =
      ResponseCurveMs(report.Run(SearchPhaseOptions(tree, Scheme::kBpr)));

  size_t max_k = 0;
  for (const auto& [name, curve] : curves) {
    max_k = std::max(max_k, curve.size());
  }
  report.SetColumns({"K nodes", "CS (ms)", "BPS (ms)", "BPR (ms)"});
  PrintRowHeader({"K nodes", "CS (ms)", "BPS (ms)", "BPR (ms)"});
  for (size_t k = 0; k < max_k; ++k) {
    std::vector<double> row;
    for (const char* name : {"CS", "BPS", "BPR"}) {
      const auto& curve = curves[name];
      row.push_back(k < curve.size() ? curve[k] : 0.0);
    }
    PrintRow(std::to_string(k + 1), row);
    report.AddRow(std::to_string(k + 1), row);
  }
  std::printf(
      "\nExpected shape: CS reaches the first few nodes sooner, but BPR/"
      "BPS reach *all* responders earlier; BPR <= BPS.\n");
  return report.Close();
}
