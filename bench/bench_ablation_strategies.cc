// Ablation: the two reconfiguration strategies of §3.3 (MaxCount,
// MinHops) against no reconfiguration, on tree and line overlays.
// Reports per-run completion so the learning effect is visible.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

namespace {

void RunCase(const std::string& label, Topology topology) {
  PrintTitle("Reconfiguration strategies on " + label +
             " — completion time (ms) per run");
  PrintRowHeader({"strategy", "run 1", "run 2", "run 3", "run 4"});
  for (const char* strategy : {"none", "maxcount", "minhops", "fastest"}) {
    ExperimentOptions o = PaperOptions(topology, Scheme::kBpr);
    o.strategy = strategy;
    if (std::string(strategy) == "none") o.scheme = Scheme::kBps;
    auto result = MustRun(o);
    std::vector<double> row;
    for (size_t run = 0; run < result.queries.size(); ++run) {
      row.push_back(result.CompletionMs(run));
    }
    PrintRow(strategy, row);
  }
}

}  // namespace

int main() {
  RunCase("tree (31 nodes, fanout 2)", MakeTree(31, 2));
  RunCase("line (16 nodes)", MakeLine(16));
  // Sparse answers far from the base: where the strategies differ most.
  Topology line = MakeLine(16);
  PrintTitle(
      "Strategies with answers only at the 3 farthest nodes (line 16)");
  PrintRowHeader({"strategy", "run 1", "run 2", "run 3", "run 4"});
  for (const char* strategy : {"none", "maxcount", "minhops", "fastest"}) {
    ExperimentOptions o = PaperOptions(line, Scheme::kBpr);
    o.strategy = strategy;
    if (std::string(strategy) == "none") o.scheme = Scheme::kBps;
    o.matches_per_node_vec = FarHotPlacement(line, 3, 10);
    auto result = MustRun(o);
    std::vector<double> row;
    for (size_t run = 0; run < result.queries.size(); ++run) {
      row.push_back(result.CompletionMs(run));
    }
    PrintRow(strategy, row);
  }
  std::printf(
      "\nExpected: both strategies beat 'none' after run 1; MinHops "
      "pulls far answerers close, MaxCount favours heavy answerers.\n");
  return 0;
}
