// Result-cache & hot-answer replication benchmark: a Zipf-repeat keyword
// workload (pooled "needle<rank>" queries, skewed repetition) on a tree
// overlay, run in three sim arms at the same seed — cache off, cache on,
// cache + replication — reporting the responder-side hit rate, total wire
// bytes and bytes saved vs the cache-off arm. A fourth arm repeats the
// cache-on workload over real loopback TCP sockets; it is print-only
// (host-dependent timing) and skipped in fast mode unless BP_CACHE_TCP=1.

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <chrono>
#include <thread>

#include "bench/bench_common.h"
#include "cache/result_cache.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "net/tcp_transport.h"
#include "util/rng.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

workload::ExperimentOptions CacheWorkload() {
  const BenchScale scale = Scale();
  workload::ExperimentOptions o;
  o.topology = workload::MakeTree(13, 3);
  o.scheme = workload::Scheme::kBps;
  o.objects_per_node = scale.objects_per_node;
  o.object_size = 1024;
  // Hot answers live at 4 far leaves only — the placement where pushing
  // replicas toward the base can actually shorten the answer path.
  o.matches_per_node_vec = workload::FarHotPlacement(o.topology, 4, 4);
  o.queries = FastMode() ? 16 : 32;
  o.answer_mode = core::AnswerMode::kDirect;
  o.ttl = 64;
  o.seed = 1;
  // The cacheable workload: 6 pooled keywords, Zipf-skewed repetition.
  o.query_pool = 6;
  o.query_zipf_skew = 1.2;
  return o;
}

struct ArmOutcome {
  double hit_rate_pct = 0;
  double remote_hits = 0;  // Not-modified replies materialized at the base.
  double wire_kb = 0;
  double saved_pct = 0;
  double first_ms = 0;  // Mean time-to-first-answer (replication's win).
  double mean_ms = 0;
  double unique_answers = 0;
  uint64_t wire_bytes = 0;
};

ArmOutcome Summarize(const workload::ExperimentResult& result,
                     uint64_t baseline_wire) {
  ArmOutcome out;
  const double hits = result.metrics.Value("cache.hits");
  const double misses = result.metrics.Value("cache.misses");
  const double probes = hits + misses;
  out.hit_rate_pct = probes == 0 ? 0 : 100.0 * hits / probes;
  out.remote_hits = result.metrics.Value("core.cache_remote_hits");
  out.wire_bytes = result.wire_bytes;
  out.wire_kb = static_cast<double>(result.wire_bytes) / 1024.0;
  if (baseline_wire > 0) {
    out.saved_pct = 100.0 *
                    (static_cast<double>(baseline_wire) -
                     static_cast<double>(result.wire_bytes)) /
                    static_cast<double>(baseline_wire);
  }
  out.mean_ms = result.MeanCompletionMs();
  size_t timed = 0;
  for (const auto& q : result.queries) {
    out.unique_answers += static_cast<double>(q.unique_answers);
    if (!q.responses.empty()) {
      out.first_ms += ToMillis(q.responses.front().time);
      ++timed;
    }
  }
  if (timed > 0) out.first_ms /= static_cast<double>(timed);
  return out;
}

// ------------------------------------------------------------------- TCP arm

/// The cache-on workload over real sockets: a star of 7 nodes repeats one
/// keyword 8 times; from the second query on every responder should serve
/// from its cache and reply "not modified".
void RunTcpArm() {
  constexpr size_t kNodes = 7;
  constexpr size_t kObjects = 32;
  constexpr size_t kMatches = 2;
  constexpr size_t kQueries = 8;
  constexpr size_t kExpected = (kNodes - 1) * kMatches;

  net::TcpNet tcpnet;
  core::SharedInfra infra;
  core::BestPeerConfig config;
  config.max_direct_peers = kNodes;
  config.strategy = "none";
  config.default_ttl = 4;
  config.enable_result_cache = true;

  workload::CorpusGenerator corpus({512, 300, 0.8}, 7);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < kNodes; ++i) {
    auto node =
        core::BestPeerNode::Create(tcpnet.AddNode().value(), &infra, config);
    if (!node.ok() || !node.value()->InitStorage({}).ok()) {
      std::printf("tcp arm: node setup failed\n");
      return;
    }
    for (size_t o = 0; o < kObjects; ++o) {
      bool match = i != 0 && o < kMatches;
      (*node)->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                           corpus.MakeObject(match))
          .ok();
    }
    infra.code_cache.Load((*node)->node(), core::kSearchAgentClass);
    nodes.push_back(std::move(*node));
  }
  for (size_t i = 1; i < kNodes; ++i) {
    nodes[0]->AddDirectPeerLocal(nodes[i]->node());
    nodes[i]->AddDirectPeerLocal(nodes[0]->node());
  }

  tcpnet.Start();
  auto wait_until = [&](const std::function<bool()>& done_on_reactor) {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      bool done = false;
      tcpnet.Run([&]() { done = done_on_reactor(); });
      if (done) return true;
      if (std::chrono::steady_clock::now() >= deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  size_t answers = 0;
  bool timed_out = false;
  for (size_t q = 0; q < kQueries; ++q) {
    uint64_t query_id = 0;
    tcpnet.Run([&]() {
      query_id = nodes[0]
                     ->IssueSearch(workload::CorpusGenerator::kNeedle)
                     .value();
    });
    if (!wait_until([&]() {
          const core::QuerySession* s = nodes[0]->FindSession(query_id);
          return s != nullptr && s->total_answers() >= kExpected;
        })) {
      timed_out = true;
      break;
    }
    tcpnet.Run([&]() {
      const core::QuerySession* s = nodes[0]->FindSession(query_id);
      if (s != nullptr) answers += s->total_answers();
    });
  }
  tcpnet.Stop();

  uint64_t hits = 0;
  uint64_t misses = 0;
  for (const auto& node : nodes) {
    if (cache::ResultCache* rc = node->result_cache()) {
      hits += rc->hits();
      misses += rc->misses();
    }
  }
  const uint64_t probes = hits + misses;
  std::printf(
      "TCP arm (%zu nodes, %zu queries): answers=%zu remote_hits=%llu "
      "responder hit rate=%.1f%%%s\n",
      kNodes, kQueries, answers,
      static_cast<unsigned long long>(nodes[0]->cache_remote_hits()),
      probes == 0 ? 0.0
                  : 100.0 * static_cast<double>(hits) /
                        static_cast<double>(probes),
      timed_out ? " [TIMED OUT]" : "");
}

}  // namespace

int main() {
  BenchReport report("cache_hitrate");
  PrintTitle(
      "Query-result cache & hot-answer replication — Zipf-repeat pool "
      "(6 keywords, skew 1.2) on a 13-node tree, mode-1 answers");
  const std::vector<std::string> columns = {
      "arm",     "hit %",    "notmod",  "wire KB",
      "saved %", "first ms", "mean ms", "unique"};
  report.SetColumns(columns);
  PrintRowHeader(columns);

  workload::ExperimentOptions off = CacheWorkload();
  workload::ExperimentResult off_result = report.Run(off);
  ArmOutcome off_out = Summarize(off_result, 0);

  workload::ExperimentOptions on = off;
  on.enable_result_cache = true;
  workload::ExperimentResult on_result = report.Run(on);
  ArmOutcome on_out = Summarize(on_result, off_out.wire_bytes);

  workload::ExperimentOptions repl = on;
  repl.enable_replication = true;
  repl.replica_hot_threshold = 3;
  repl.replica_top_k = 8;
  workload::ExperimentResult repl_result = report.Run(repl);
  ArmOutcome repl_out = Summarize(repl_result, off_out.wire_bytes);

  for (const auto& [label, out] :
       std::initializer_list<std::pair<const char*, const ArmOutcome*>>{
           {"cache-off", &off_out},
           {"cache-on", &on_out},
           {"cache+repl", &repl_out}}) {
    std::vector<double> values = {
        out->hit_rate_pct, out->remote_hits, out->wire_kb, out->saved_pct,
        out->first_ms,     out->mean_ms,     out->unique_answers};
    PrintRow(label, values);
    report.AddRow(label, values);
  }

  std::printf(
      "\nExpected: cache-on turns repeat queries into probe hits and "
      "not-modified replies (wire bytes fall vs cache-off); replication "
      "trades extra wire (pushes + duplicate answers) for a shorter path "
      "to the first answer (dedup keeps unique answers constant).\n\n");

  if (!FastMode() || std::getenv("BP_CACHE_TCP") != nullptr) {
    RunTcpArm();
  } else {
    std::printf("TCP arm skipped in fast mode (set BP_CACHE_TCP=1).\n");
  }
  return report.Close();
}
