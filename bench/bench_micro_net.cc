// Micro-benchmark of the real TCP backend: one-way throughput and
// round-trip latency (p50/p99) between two loopback TcpTransport nodes,
// across payload sizes. Writes BENCH_micro_net.json. Numbers depend on
// the host kernel and scheduler, so this report is informational and is
// deliberately NOT part of the bench-gate baselines.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/tcp_transport.h"
#include "util/stats.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

constexpr uint32_t kPingType = 1;
constexpr uint32_t kPongType = 2;

struct NetStats {
  double msgs_per_sec = 0;
  double rtt_p50_us = 0;
  double rtt_p99_us = 0;
};

/// One-way burst throughput + ping/pong RTT at the given payload size.
NetStats Measure(size_t payload_size, size_t burst, size_t pings,
                 metrics::Registry* registry) {
  // RTT distribution captured as a registry histogram so the BENCH json
  // carries it alongside the row percentiles.
  metrics::Histogram* rtt_h = registry->GetHistogram(
      "net.rtt_us", {{"payload", std::to_string(payload_size)}},
      {10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000});
  metrics::Histogram* tput_h = registry->GetHistogram(
      "net.throughput_msgs_per_sec",
      {{"payload", std::to_string(payload_size)}},
      {1e3, 1e4, 1e5, 2e5, 5e5, 1e6, 2e6, 5e6});
  net::TcpOptions options;
  options.max_queue_msgs = burst + 16;
  options.metrics = registry;
  net::TcpNet tcpnet(options);
  net::TcpTransport* a = tcpnet.AddNode().value();
  net::TcpTransport* b = tcpnet.AddNode().value();

  std::atomic<size_t> received{0};
  b->SetHandler([&](const net::Message& msg) {
    received.fetch_add(1, std::memory_order_relaxed);
    if (msg.type == kPingType) b->Send(msg.src, kPongType, Bytes{});
  });
  std::atomic<size_t> pongs{0};
  a->SetHandler([&](const net::Message&) {
    pongs.fetch_add(1, std::memory_order_relaxed);
  });
  tcpnet.Start();

  NetStats stats;
  Bytes payload(payload_size, 0xB7);

  // --- throughput: burst of one-way sends, timed to last delivery.
  auto start = std::chrono::steady_clock::now();
  tcpnet.Run([&]() {
    for (size_t i = 0; i < burst; ++i) {
      a->Send(b->local(), /*type=*/3, payload);
    }
  });
  while (received.load(std::memory_order_relaxed) < burst) {
    std::this_thread::yield();
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  stats.msgs_per_sec = static_cast<double>(burst) / secs;

  // --- RTT: serial ping/pong, one in flight at a time.
  std::vector<double> rtts;
  rtts.reserve(pings);
  for (size_t i = 0; i < pings; ++i) {
    size_t before = pongs.load(std::memory_order_relaxed);
    auto t0 = std::chrono::steady_clock::now();
    a->Send(b->local(), kPingType, payload);
    while (pongs.load(std::memory_order_relaxed) == before) {
      std::this_thread::yield();
    }
    rtts.push_back(std::chrono::duration<double, std::micro>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  tcpnet.Stop();

  // The reactor thread is joined; the registry is ours again.
  for (double rtt : rtts) rtt_h->Observe(rtt);
  tput_h->Observe(stats.msgs_per_sec);

  std::sort(rtts.begin(), rtts.end());
  stats.rtt_p50_us = PercentileOfSorted(rtts, 50);
  stats.rtt_p99_us = PercentileOfSorted(rtts, 99);
  return stats;
}

}  // namespace

int main() {
  PrintTitle(
      "micro_net: loopback TcpTransport throughput and ping/pong RTT");
  const size_t burst = FastMode() ? 2000 : 20000;
  const size_t pings = FastMode() ? 200 : 2000;
  const std::vector<size_t> payload_sizes = {16, 512, 4096, 65536};

  metrics::Registry registry;
  BenchReport report("micro_net");
  std::vector<std::string> header = {"payload_bytes", "msgs_per_sec",
                                     "rtt_p50_us", "rtt_p99_us"};
  report.SetColumns(header);
  PrintRowHeader(header);
  for (size_t size : payload_sizes) {
    NetStats stats = Measure(size, burst, pings, &registry);
    std::vector<double> row = {static_cast<double>(size),
                               stats.msgs_per_sec, stats.rtt_p50_us,
                               stats.rtt_p99_us};
    PrintRow(std::to_string(size), {row.begin() + 1, row.end()});
    report.AddRow(std::to_string(size), {row.begin() + 1, row.end()});
  }
  report.Absorb(registry.TakeSnapshot());
  return report.Close();
}
