// Regenerates Figure 5(a): completion time vs number of nodes on the
// Star topology for SCS, MCS, BPS and BPR (paper §4.3).
//
// Paper shape: SCS degrades sharply with network size (one connection at
// a time); MCS and BP-based schemes stay close, with MCS slightly ahead
// (no code-shipping overhead); BPS == BPR on a star.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  PrintTitle(
      "Figure 5(a): Star topology — completion time (ms) vs number of "
      "nodes");
  const std::vector<size_t> sizes = {2, 4, 8, 16, 24, 32};
  const std::vector<Scheme> schemes = {Scheme::kScs, Scheme::kMcs,
                                       Scheme::kBps, Scheme::kBpr};
  BenchReport report("fig5a_star");
  std::vector<std::string> header = {"nodes"};
  for (auto s : schemes) header.push_back(SchemeName(s));
  report.SetColumns(header);
  PrintRowHeader(header);
  for (size_t n : sizes) {
    std::vector<double> row;
    for (Scheme scheme : schemes) {
      auto options = SearchPhaseOptions(MakeStar(n), scheme);
      // On a star every node is directly connected to the base; the
      // base's peer capacity covers the whole network (paper Fig. 4(a)).
      options.max_direct_peers = n;
      auto result = report.Run(options);
      row.push_back(result.MeanCompletionMs());
    }
    PrintRow(std::to_string(n), row);
    report.AddRow(std::to_string(n), row);
  }
  std::printf(
      "\nExpected shape: SCS grows linearly and is worst; MCS <= BPS ~= "
      "BPR.\n");
  return report.Close();
}
