// Flooding-cost study: coverage vs TTL for the two flooding protocols in
// this repository — BestPeer's agent cloning and Gnutella's Query flood.
// Both use TTL/Hops expiry with duplicate dropping (§3.1), so the
// trade-off is the classic one: higher TTL reaches more of the overlay
// but multiplies redundant transmissions on cyclic topologies.

#include <cstdio>
#include <memory>

#include "baseline/gnutella.h"
#include "bench/bench_common.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

struct FloodOutcome {
  size_t responders;   // Distinct nodes whose answers arrived.
  uint64_t messages;   // Total messages on the wire.
  double coverage;     // responders / (nodes - 1).
};

FloodOutcome BpFlood(const workload::Topology& topo, uint16_t ttl) {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;
  core::BestPeerConfig config;
  config.max_direct_peers = 16;
  config.default_ttl = ttl;
  config.answer_mode = core::AnswerMode::kIndicate;
  config.auto_fetch = false;

  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (size_t i = 0; i < topo.node_count; ++i) {
    auto node = core::BestPeerNode::Create(fleet.AddNode(),
                                           &infra, config)
                    .value();
    node->InitStorage({}).ok();
    infra.code_cache.Load(node->node(), core::kSearchAgentClass);
    // One matching object everywhere so every reached node answers.
    std::string text = "needle marker";
    Bytes content(text.begin(), text.end());
    content.resize(128, ' ');
    node->ShareObject(static_cast<storm::ObjectId>(i), content).ok();
    nodes.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddDirectPeerLocal(nodes[b]->node());
    nodes[b]->AddDirectPeerLocal(nodes[a]->node());
  }
  uint64_t query = nodes[topo.base]->IssueSearch("needle").value();
  simulator.RunUntilIdle();
  const core::QuerySession* session = nodes[topo.base]->FindSession(query);
  FloodOutcome out;
  out.responders = session->responder_count();
  out.messages = network.messages_sent();
  out.coverage = static_cast<double>(out.responders) /
                 static_cast<double>(topo.node_count - 1);
  return out;
}

FloodOutcome GnutellaFlood(const workload::Topology& topo, uint8_t ttl) {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  net::SimTransportFleet fleet(&network);
  baseline::GnutellaConfig config;
  config.default_ttl = ttl;

  std::vector<std::unique_ptr<baseline::GnutellaNode>> nodes;
  for (size_t i = 0; i < topo.node_count; ++i) {
    nodes.push_back(
        baseline::GnutellaNode::Create(fleet.AddNode(), config)
            .value());
    nodes.back()->ShareFile("needle-" + std::to_string(i) + ".txt");
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddNeighborLocal(nodes[b]->node());
    nodes[b]->AddNeighborLocal(nodes[a]->node());
  }
  uint64_t key = nodes[topo.base]->IssueQuery("needle").value();
  simulator.RunUntilIdle();
  const baseline::GnutellaSession* session =
      nodes[topo.base]->FindSession(key);
  FloodOutcome out;
  out.responders = session->responder_count();
  out.messages = network.messages_sent();
  out.coverage = static_cast<double>(out.responders) /
                 static_cast<double>(topo.node_count - 1);
  return out;
}

}  // namespace

int main() {
  Rng rng(77);
  workload::Topology topo = workload::MakeRandom(32, 4, rng);
  PrintTitle(
      "Coverage and message cost vs TTL (32 nodes, random overlay, "
      "degree <= 4)");
  PrintRowHeader({"TTL", "BP coverage", "BP msgs", "Gnut coverage",
                  "Gnut msgs"});
  for (uint16_t ttl = 1; ttl <= 8; ++ttl) {
    auto bp = BpFlood(topo, ttl);
    auto gnut = GnutellaFlood(topo, static_cast<uint8_t>(ttl));
    PrintRow(std::to_string(ttl),
             {bp.coverage, static_cast<double>(bp.messages), gnut.coverage,
              static_cast<double>(gnut.messages)});
  }
  std::printf(
      "\nExpected: coverage saturates near the overlay diameter while "
      "message cost keeps growing — the flooding overhead both systems "
      "pay, and the reason BestPeer pulls good peers close instead of "
      "searching deeper.\n");
  return 0;
}
