// Ablation of BestPeer's transport choices (DESIGN.md §3):
//  - answer mode 1 (ship contents) vs mode 2 (indicate, then fetch) §2;
//  - GZIP-style compression on vs off (§4.2);
//  - cold vs warm agent-class cache (code-shipping cost, §3.1/§4.3).

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  Topology tree = MakeTree(31, 2);

  PrintTitle("Answer modes (tree 31) — completion & traffic");
  PrintRowHeader({"mode", "mean ms", "answers/query", "wire KB"});
  {
    ExperimentOptions mode1 = PaperOptions(tree, Scheme::kBpr);
    auto r1 = MustRun(mode1);
    PrintRow("1 (direct)",
             {r1.MeanCompletionMs(),
              static_cast<double>(r1.queries[0].total_answers),
              static_cast<double>(r1.wire_bytes) / 1024.0});

    ExperimentOptions mode2 = PaperOptions(tree, Scheme::kBpr);
    mode2.answer_mode = core::AnswerMode::kIndicate;
    mode2.auto_fetch = true;
    auto r2 = MustRun(mode2);
    PrintRow("2 (fetch)",
             {r2.MeanCompletionMs(),
              static_cast<double>(r2.queries[0].total_answers),
              static_cast<double>(r2.wire_bytes) / 1024.0});

    ExperimentOptions names = PaperOptions(tree, Scheme::kBpr);
    names.answer_mode = core::AnswerMode::kIndicate;
    names.auto_fetch = false;
    auto r3 = MustRun(names);
    PrintRow("2 (names only)",
             {r3.MeanCompletionMs(),
              static_cast<double>(r3.queries[0].total_answers),
              static_cast<double>(r3.wire_bytes) / 1024.0});
  }

  PrintTitle("Compression (tree 31, mode 1)");
  PrintRowHeader({"codec", "mean ms", "wire KB"});
  for (const char* codec : {"lzss", "null"}) {
    ExperimentOptions o = PaperOptions(tree, Scheme::kBpr);
    o.codec = codec;
    auto r = MustRun(o);
    PrintRow(codec, {r.MeanCompletionMs(),
                     static_cast<double>(r.wire_bytes) / 1024.0});
  }

  PrintTitle(
      "StorM query cache (tree 31, BPS) — repeated queries skip the scan");
  PrintRowHeader({"cache", "run 1 ms", "run 2 ms", "run 4 ms"});
  for (bool cache : {false, true}) {
    ExperimentOptions o = PaperOptions(tree, Scheme::kBps);
    o.enable_query_cache = cache;
    auto r = MustRun(o);
    PrintRow(cache ? "on" : "off",
             {r.CompletionMs(0), r.CompletionMs(1), r.CompletionMs(3)});
  }

  PrintTitle("Agent-class cache (tree 31, BPS) — run 1 pays code shipping");
  PrintRowHeader({"cache", "run 1 ms", "run 2 ms", "run 4 ms", "wire KB"});
  for (bool warm : {false, true}) {
    ExperimentOptions o = PaperOptions(tree, Scheme::kBps);
    o.prewarm_code_cache = warm;
    auto r = MustRun(o);
    PrintRow(warm ? "warm" : "cold",
             {r.CompletionMs(0), r.CompletionMs(1), r.CompletionMs(3),
              static_cast<double>(r.wire_bytes) / 1024.0});
  }
  std::printf(
      "\nExpected: mode 2 saves wire bytes when only names are needed; "
      "compression cuts traffic; a cold cache penalizes only run 1.\n");
  return 0;
}
