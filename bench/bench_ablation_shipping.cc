// Ablation of the §6 future-work feature implemented here: per-peer
// runtime choice between code shipping (send the agent) and data
// shipping (pull the store, scan locally). Sweeps the remote store size
// to expose the crossover, and shows that adaptive mode converges to the
// better side once it has learned store sizes.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "core/shipping.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

struct RunOutcome {
  double completion_ms;
  double wire_kb;
};

RunOutcome RunDirectSearch(size_t store_objects, core::ShippingMode mode,
                           size_t rounds) {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;
  core::BestPeerConfig config;

  auto requester =
      core::BestPeerNode::Create(fleet.AddNode(), &infra, config).value();
  auto provider =
      core::BestPeerNode::Create(fleet.AddNode(), &infra, config).value();
  requester->InitStorage({}).ok();
  provider->InitStorage({}).ok();
  requester->AddDirectPeerLocal(provider->node());
  provider->AddDirectPeerLocal(requester->node());
  infra.code_cache.Load(provider->node(), core::kSearchAgentClass);
  infra.code_cache.Load(requester->node(), core::kSearchAgentClass);

  workload::CorpusGenerator corpus({1024, 500, 0.8}, 7);
  for (size_t i = 0; i < store_objects; ++i) {
    provider->ShareObject(i, corpus.MakeObject(i < 3)).ok();
  }

  RunOutcome out{0, 0};
  uint64_t last_query = 0;
  for (size_t r = 0; r < rounds; ++r) {
    last_query = requester
                     ->IssueDirectSearch(
                         workload::CorpusGenerator::kNeedle, mode)
                     .value();
    simulator.RunUntilIdle();
  }
  const core::QuerySession* session = requester->FindSession(last_query);
  out.completion_ms = ToMillis(session->completion_time());
  out.wire_kb = static_cast<double>(network.total_wire_bytes()) / 1024.0 /
                static_cast<double>(rounds);
  return out;
}

}  // namespace

int main() {
  PrintTitle(
      "Code-shipping vs data-shipping vs adaptive — one provider, store "
      "size sweep (steady-state round of 3; wire KB averaged per round)");
  PrintRowHeader({"objects", "code ms", "code KB", "data ms", "data KB",
                  "adaptive ms", "adaptive KB"});
  for (size_t objects : {1, 5, 10, 25, 50, 100, 250, 1000}) {
    auto code =
        RunDirectSearch(objects, core::ShippingMode::kAlwaysCode, 3);
    auto data =
        RunDirectSearch(objects, core::ShippingMode::kAlwaysData, 3);
    auto adaptive =
        RunDirectSearch(objects, core::ShippingMode::kAdaptive, 3);
    PrintRow(std::to_string(objects),
             {code.completion_ms, code.wire_kb, data.completion_ms,
              data.wire_kb, adaptive.completion_ms, adaptive.wire_kb});
  }
  std::printf(
      "\nExpected: data shipping wins for tiny stores, code shipping for "
      "large ones; adaptive tracks the winner after learning the store "
      "size on round 1.\n");
  return 0;
}
