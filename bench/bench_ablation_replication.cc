// Ablation of the §6 replication direction: unique answers live at the
// far end of a line overlay; each "replication round" pushes copies one
// overlay hop closer to the base. Reports time-to-first-answer and
// completion as replicas spread, with answer dedup keeping the result
// set constant.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "core/node.h"
#include "core/search_agent.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

struct Outcome {
  double first_ms;
  double completion_ms;
  size_t unique_answers;
  size_t raw_answers;
};

Outcome RunWithReplicationRounds(size_t rounds) {
  const size_t kNodes = 10;
  const size_t kMatches = 5;
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;
  core::BestPeerConfig config;
  config.max_direct_peers = 4;
  config.default_ttl = 32;

  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  workload::CorpusGenerator corpus({1024, 500, 0.8}, 7);
  for (size_t i = 0; i < kNodes; ++i) {
    auto node = core::BestPeerNode::Create(fleet.AddNode(),
                                           &infra, config)
                    .value();
    node->InitStorage({}).ok();
    infra.code_cache.Load(node->node(), core::kSearchAgentClass);
    size_t objects = FastMode() ? 50 : 200;
    for (size_t o = 0; o < objects; ++o) {
      bool match = i == kNodes - 1 && o < kMatches;
      node->ShareObject((static_cast<uint64_t>(i) << 24) | o,
                        corpus.MakeObject(match))
          .ok();
    }
    nodes.push_back(std::move(node));
  }
  for (size_t i = 0; i + 1 < kNodes; ++i) {
    nodes[i]->AddDirectPeerLocal(nodes[i + 1]->node());
    nodes[i + 1]->AddDirectPeerLocal(nodes[i]->node());
  }

  // Replication rounds: the holder pushes to its peers; each round moves
  // copies one hop closer to the base.
  std::vector<storm::ObjectId> ids;
  for (size_t m = 0; m < kMatches; ++m) {
    ids.push_back((static_cast<uint64_t>(kNodes - 1) << 24) | m);
  }
  for (size_t r = 0; r < rounds; ++r) {
    size_t holder = kNodes - 1 - r;
    if (holder == 0) break;
    nodes[holder]->ReplicateObjects(ids).ok();
    simulator.RunUntilIdle();
  }

  uint64_t query = nodes[0]->IssueSearch(
      workload::CorpusGenerator::kNeedle).value();
  simulator.RunUntilIdle();
  const core::QuerySession* session = nodes[0]->FindSession(query);
  Outcome out;
  out.first_ms =
      session->responses().empty()
          ? 0
          : ToMillis(session->responses().front().time -
                     session->start_time());
  out.completion_ms = ToMillis(session->completion_time());
  out.unique_answers = session->unique_answers();
  out.raw_answers = session->total_answers();
  return out;
}

}  // namespace

int main() {
  PrintTitle(
      "Replication toward the requester (10-node line, answers at the "
      "far end) — copies move one hop per round");
  PrintRowHeader({"rounds", "first ms", "complete ms", "unique", "raw"});
  for (size_t rounds : {0, 1, 2, 4, 6, 8}) {
    Outcome out = RunWithReplicationRounds(rounds);
    PrintRow(std::to_string(rounds),
             {out.first_ms, out.completion_ms,
              static_cast<double>(out.unique_answers),
              static_cast<double>(out.raw_answers)});
  }
  std::printf(
      "\nExpected: first-answer time falls as replicas approach the "
      "base; unique answers stay constant while raw answers grow "
      "(dedup absorbs the redundancy).\n");
  return 0;
}
