// Replica-placement ablation: the same mutation-heavy Zipf-repeat
// workload (pooled keywords, skewed repetition, a StorM mutation every
// other query, probabilistic message loss) run in three arms at the same
// seeds —
//   freq-broadcast: PR-5 behavior, every promotion broadcast to all
//                   direct peers, epochs probe-discovered;
//   qos-placement:  promotions go to the replica_fanout best peers by
//                   the QoS score (RTT / benefit / failures / bandwidth);
//   qos+gossip:     QoS placement plus the gossip anti-entropy plane, so
//                   epoch bumps invalidate cached slices *before* the
//                   next probe (no stale-probe round trips).
// Replication must pay for itself here: the QoS arms should push fewer
// replicas and spend fewer total wire bytes than the broadcast arm at
// identical recall, and gossip should drive stale probes toward zero.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

workload::ExperimentOptions PlacementWorkload() {
  const BenchScale scale = Scale();
  workload::ExperimentOptions o;
  o.topology = workload::MakeTree(13, 3);
  o.scheme = workload::Scheme::kBps;
  o.objects_per_node = scale.objects_per_node;
  o.object_size = 1024;
  // Hot answers at 4 far leaves: the placement where replica pushes can
  // shorten the answer path — and where pushing to *every* neighbor
  // visibly overspends wire.
  o.matches_per_node_vec = workload::FarHotPlacement(o.topology, 4, 4);
  o.queries = FastMode() ? 16 : 32;
  o.answer_mode = core::AnswerMode::kDirect;
  o.ttl = 64;
  o.seed = 1;
  // Zipf-repeat pool: the skewed repetition gives the cache something to
  // hit and the promotion sketch something to promote.
  o.query_pool = 6;
  o.query_zipf_skew = 1.2;
  // Mutation-heavy: a StorM unshare every other query keeps epochs
  // moving, so probe-discovered invalidation pays a round trip each time.
  o.mutate_every = 2;
  // Faults on: the lossy wire every arm must survive.
  o.fault.message_loss = 0.02;
  // All arms run cache + replication; the arms differ only in placement
  // and epoch dissemination.
  o.enable_result_cache = true;
  o.enable_replication = true;
  o.replica_hot_threshold = 3;
  o.replica_top_k = 8;
  o.count_stale_probes = true;
  return o;
}

struct ArmOutcome {
  double wire_kb = 0;
  double saved_pct = 0;
  double pushes = 0;
  double stale_probes = 0;
  double remote_hits = 0;
  double gossip_invalidations = 0;
  double unique_answers = 0;
  uint64_t wire_bytes = 0;
};

ArmOutcome Summarize(const workload::ExperimentResult& result,
                     uint64_t baseline_wire) {
  ArmOutcome out;
  out.wire_bytes = result.wire_bytes;
  out.wire_kb = static_cast<double>(result.wire_bytes) / 1024.0;
  if (baseline_wire > 0) {
    out.saved_pct = 100.0 *
                    (static_cast<double>(baseline_wire) -
                     static_cast<double>(result.wire_bytes)) /
                    static_cast<double>(baseline_wire);
  }
  out.pushes = result.metrics.Value("core.replica_pushes");
  out.stale_probes = result.metrics.Value("core.cache_stale_probes");
  out.remote_hits = result.metrics.Value("core.cache_remote_hits");
  out.gossip_invalidations =
      result.metrics.Value("core.gossip_invalidations");
  for (const auto& q : result.queries) {
    out.unique_answers += static_cast<double>(q.unique_answers);
  }
  if (std::getenv("BP_BENCH_DEBUG") != nullptr) {
    for (const char* name :
         {"gossip.frames_sent", "gossip.items_sent", "net.messages_sent",
          "cache.hits", "cache.misses", "cache.invalidations",
          "cache.insertions", "core.answers_received", "agent.migrations",
          "core.queries_issued", "fault.drops"}) {
      std::printf("  %-24s %.0f\n", name, result.metrics.Value(name));
    }
  }
  return out;
}

}  // namespace

int main() {
  BenchReport report("ablation_replication");
  PrintTitle(
      "Replica placement ablation — mutation-heavy Zipf pool on a "
      "13-node tree, 2% message loss: broadcast vs QoS placement vs "
      "QoS + gossiped epochs");
  const std::vector<std::string> columns = {
      "arm",   "wire KB", "saved %", "pushes",
      "stale", "notmod",  "ginval",  "unique"};
  report.SetColumns(columns);
  PrintRowHeader(columns);

  workload::ExperimentOptions freq = PlacementWorkload();
  workload::ExperimentResult freq_result = report.Run(freq);
  ArmOutcome freq_out = Summarize(freq_result, 0);

  workload::ExperimentOptions qos = freq;
  qos.qos_replica_placement = true;
  qos.replica_fanout = 2;
  workload::ExperimentResult qos_result = report.Run(qos);
  ArmOutcome qos_out = Summarize(qos_result, freq_out.wire_bytes);

  workload::ExperimentOptions gossip = qos;
  gossip.enable_gossip = true;
  workload::ExperimentResult gossip_result = report.Run(gossip);
  ArmOutcome gossip_out = Summarize(gossip_result, freq_out.wire_bytes);

  for (const auto& [label, out] :
       std::initializer_list<std::pair<const char*, const ArmOutcome*>>{
           {"freq-broadcast", &freq_out},
           {"qos-placement", &qos_out},
           {"qos+gossip", &gossip_out}}) {
    std::vector<double> values = {out->wire_kb,      out->saved_pct,
                                  out->pushes,       out->stale_probes,
                                  out->remote_hits,  out->gossip_invalidations,
                                  out->unique_answers};
    PrintRow(label, values);
    report.AddRow(label, values);
  }

  std::printf(
      "\nExpected: QoS placement pushes to the best 2 peers instead of "
      "every neighbor (pushes and wire KB fall); adding gossip turns "
      "probe-discovered staleness into pre-probe invalidations (stale "
      "probes fall toward zero, ginval rises), keeping total wire below "
      "the broadcast arm. Recall is identical across arms modulo loss "
      "noise — each dropped answer message loses its answers, and the "
      "arms see different drop schedules; at message_loss = 0 all three "
      "arms return exactly the same unique-answer count.\n");
  return report.Close();
}
