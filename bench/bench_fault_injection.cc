// Fault-injection study: recall and completion under deterministic
// message loss, with and without the recovery stack (LIGLO retry with
// backoff, per-query deadlines, peer-health eviction). Loss silently
// kills agent clones, result messages and — most damaging — the LIGLO
// traffic that lets churned nodes rejoin; the recovery arm shows how much
// of the gap retries and overlay repair win back.
//
// Knobs (env):
//   BP_FAULT_LOSS=0.1    run a single loss rate instead of the sweep
//   BP_FAULT_SEED=7      experiment seed (default 42)
//   BP_FAULT_ROUNDS=8    query rounds per run
//   BP_BENCH_FAST=1      smaller stores for quick iteration
//
// Emits BENCH_fault_injection.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "util/metrics.h"
#include "workload/churn.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atof(env) : fallback;
}

long EnvLong(const char* name, long fallback) {
  const char* env = std::getenv(name);
  return env != nullptr ? std::atol(env) : fallback;
}

ChurnOptions BaseOptions() {
  ChurnOptions o;
  o.node_count = 24;
  // Sparse overlay: loss-induced disconnection actually shows up here
  // (see bench_churn for why k=2).
  o.starter_peers = 2;
  o.objects_per_node = FastMode() ? 50 : 200;
  o.matches_per_node = 5;
  o.rounds = static_cast<size_t>(EnvLong("BP_FAULT_ROUNDS", 8));
  o.leave_fraction = 0.25;
  o.rejoin_fraction = 0.5;
  o.reconfigure = true;
  o.seed = static_cast<uint64_t>(EnvLong("BP_FAULT_SEED", 42));
  return o;
}

ChurnOptions WithRecovery(ChurnOptions o) {
  o.fault.liglo_retries = 3;
  o.fault.query_deadline = Seconds(1);
  o.fault.peer_failure_threshold = 2;
  o.fault.agent_seen_expiry = Seconds(10);
  return o;
}

struct RunOutcome {
  ChurnResult churn;
  metrics::Snapshot metrics;
};

RunOutcome Run(ChurnOptions options) {
  metrics::Registry registry;
  options.metrics = &registry;
  // Post-hoc analysis: spans feed the critical-path breakdown, the
  // sampler feeds the timeseries section, and the flight recorder
  // captures drops/retries/reconfigs (auto-dumping when recall collapses
  // and BP_FLIGHT_OUT is set).
  options.trace = true;
  options.sample_interval = Millis(10);
  options.flight_capacity = 8192;
  options.recall_anomaly_threshold = 0.5;
  auto result = RunChurnExperiment(options);
  if (!result.ok()) {
    std::fprintf(stderr, "churn experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return {std::move(result).value(), registry.TakeSnapshot()};
}

double MeanCompletionMs(const ChurnResult& result) {
  if (result.rounds.empty()) return 0;
  double sum = 0;
  for (const auto& r : result.rounds) {
    sum += static_cast<double>(r.completion) / 1000.0;
  }
  return sum / static_cast<double>(result.rounds.size());
}

}  // namespace

int main() {
  std::vector<double> losses = {0.0, 0.05, 0.1, 0.2, 0.3};
  if (std::getenv("BP_FAULT_LOSS") != nullptr) {
    losses = {EnvDouble("BP_FAULT_LOSS", 0.1)};
  }

  BenchReport report("fault_injection");
  report.SetColumns({"loss", "recall (no recovery)", "min",
                     "recall (recovery)", "min", "ms (recovery)"});

  PrintTitle("Recall under message loss — no recovery vs recovery");
  PrintRowHeader({"loss", "norec mean", "norec min", "rec mean", "rec min",
                  "rec ms"});
  for (double loss : losses) {
    ChurnOptions norec = BaseOptions();
    norec.fault.message_loss = loss;
    RunOutcome plain = Run(norec);

    ChurnOptions rec = WithRecovery(BaseOptions());
    rec.fault.message_loss = loss;
    RunOutcome recovered = Run(rec);
    report.Absorb(recovered.metrics);
    report.AttachObservability(recovered.churn);

    char label[16];
    std::snprintf(label, sizeof(label), "%.2f", loss);
    std::vector<double> row = {
        plain.churn.MeanRecall(),     plain.churn.MinRecall(),
        recovered.churn.MeanRecall(), recovered.churn.MinRecall(),
        MeanCompletionMs(recovered.churn)};
    PrintRow(label, row, "%12.3f");
    report.AddRow(label, {loss, plain.churn.MeanRecall(),
                          plain.churn.MinRecall(),
                          recovered.churn.MeanRecall(),
                          recovered.churn.MinRecall(),
                          MeanCompletionMs(recovered.churn)});

    std::printf(
        "    drops %.0f, liglo retries %.0f, late replies %.0f, "
        "late results %.0f, evictions %.0f\n",
        recovered.metrics.Value("fault.drops"),
        recovered.metrics.Value("liglo.retries"),
        recovered.metrics.Value("liglo.late_replies"),
        recovered.metrics.Value("core.late_results"),
        recovered.metrics.Value("core.peer_evictions"));
  }

  std::printf(
      "\nExpected: recall falls with loss in both arms; the recovery arm "
      "(retried LIGLO joins, deadline-finalized queries, eviction of dead "
      "peers) stays measurably closer to the lossless baseline.\n");
  return report.Close();
}
