// Regenerates Figure 8(a): BestPeer (BPR, names-only answers) vs
// Gnutella — completion time for each of 4 runs of the same query.
// 32 nodes, up to 8 direct peers each, 1000 text files per node, answers
// restricted to a few (far) nodes (paper §4.6).
//
// Paper shape: Gnutella is flat across runs (same search path every
// time); BP's first run is its slowest (it must route through the
// intermediate peers), subsequent runs drop sharply thanks to
// reconfiguration; BP outperforms Gnutella.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  PrintTitle(
      "Figure 8(a): BestPeer vs Gnutella — completion time (ms) per run "
      "of the same query (32 nodes, <= 8 peers, answers at 3 far nodes)");
  Rng rng(2002);
  Topology random = MakeRandom(32, 8, rng);
  auto placement = FarHotPlacement(random, 3, 10);

  BenchReport report("fig8a_gnutella_runs");
  ExperimentOptions bp = PaperOptions(random, Scheme::kBpr);
  bp.matches_per_node_vec = placement;
  bp.answer_mode = core::AnswerMode::kIndicate;  // Names only, like Gnutella.
  bp.auto_fetch = false;
  auto bp_result = report.Run(bp);

  ExperimentOptions gnut = PaperOptions(random, Scheme::kGnutella);
  gnut.matches_per_node_vec = placement;
  auto gnut_result = report.Run(gnut);

  report.SetColumns({"run", "BP (ms)", "Gnutella (ms)"});
  PrintRowHeader({"run", "BP (ms)", "Gnutella (ms)"});
  for (size_t run = 0; run < bp_result.queries.size(); ++run) {
    PrintRow(std::to_string(run + 1),
             {bp_result.CompletionMs(run), gnut_result.CompletionMs(run)});
    report.AddRow(std::to_string(run + 1),
                  {bp_result.CompletionMs(run), gnut_result.CompletionMs(run)});
  }
  std::printf(
      "\nExpected shape: BP run 1 is its slowest, later runs much "
      "faster; Gnutella flat; BP below Gnutella.\n");
  return report.Close();
}
