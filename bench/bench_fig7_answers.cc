// Regenerates Figure 7: number of answers returned over time (same setup
// as Figure 6 — 32 nodes, tree, query issued 4 times, paper §4.5).
//
// Paper shape: CS returns the first few answers faster (no code-shipping
// overhead), but as more answers accumulate BPS/BPR overtake it, and BPR
// is generally better than BPS.

#include <algorithm>

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

namespace {

struct CurvePoint {
  double time_ms;
  double answers;
};

/// Builds the cumulative answers-vs-time curve, averaged across runs by
/// event index.
std::vector<CurvePoint> AnswersCurve(const ExperimentResult& result) {
  std::vector<std::vector<CurvePoint>> per_run;
  for (const auto& q : result.queries) {
    auto events = q.responses;
    std::sort(events.begin(), events.end(),
              [](const core::ResponseEvent& a, const core::ResponseEvent& b) {
                return a.time < b.time;
              });
    std::vector<CurvePoint> curve;
    double cumulative = 0;
    for (const auto& e : events) {
      cumulative += static_cast<double>(e.answers);
      curve.push_back({ToMillis(e.time), cumulative});
    }
    per_run.push_back(std::move(curve));
  }
  size_t max_n = 0;
  for (const auto& run : per_run) max_n = std::max(max_n, run.size());
  std::vector<CurvePoint> avg;
  for (size_t i = 0; i < max_n; ++i) {
    double t = 0, a = 0;
    size_t n = 0;
    for (const auto& run : per_run) {
      if (i < run.size()) {
        t += run[i].time_ms;
        a += run[i].answers;
        ++n;
      }
    }
    if (n > 0) avg.push_back({t / n, a / n});
  }
  return avg;
}

}  // namespace

int main() {
  PrintTitle(
      "Figure 7: number of answers returned over time (32 nodes, tree, "
      "query issued 4 times)");
  Topology tree = MakeTree(32, 2);

  BenchReport report("fig7_answers");
  auto cs = AnswersCurve(report.Run(SearchPhaseOptions(tree, Scheme::kMcs)));
  auto bps = AnswersCurve(report.Run(SearchPhaseOptions(tree, Scheme::kBps)));
  auto bpr = AnswersCurve(report.Run(SearchPhaseOptions(tree, Scheme::kBpr)));

  size_t max_n = std::max({cs.size(), bps.size(), bpr.size()});
  report.SetColumns({"event#", "CS t(ms)", "CS answers", "BPS t(ms)",
                     "BPS answers", "BPR t(ms)", "BPR answers"});
  PrintRowHeader({"event#", "CS t(ms)", "CS answers", "BPS t(ms)",
                  "BPS answers", "BPR t(ms)", "BPR answers"});
  for (size_t i = 0; i < max_n; ++i) {
    std::vector<double> row;
    for (const auto* curve : {&cs, &bps, &bpr}) {
      if (i < curve->size()) {
        row.push_back((*curve)[i].time_ms);
        row.push_back((*curve)[i].answers);
      } else {
        row.push_back(0);
        row.push_back(0);
      }
    }
    PrintRow(std::to_string(i + 1), row);
    report.AddRow(std::to_string(i + 1), row);
  }
  std::printf(
      "\nExpected shape: CS leads for the first answers; BPS/BPR finish "
      "accumulating all answers sooner; BPR generally ahead of BPS.\n");
  return report.Close();
}
