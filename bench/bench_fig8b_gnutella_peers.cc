// Regenerates Figure 8(b): BestPeer vs Gnutella — completion time
// (averaged over 4 runs of the query) as the number of direct peers per
// node grows (paper §4.6).
//
// Paper shape: both improve with more peers; BP remains superior
// because Gnutella traverses the same path every time and returns the
// file lists along the query path.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  PrintTitle(
      "Figure 8(b): BestPeer vs Gnutella — mean completion time (ms) vs "
      "number of direct peers (32 nodes, answers at 3 far nodes)");
  BenchReport report("fig8b_gnutella_peers");
  report.SetColumns({"peers", "BP (ms)", "Gnutella (ms)"});
  PrintRowHeader({"peers", "BP (ms)", "Gnutella (ms)"});
  for (size_t peers = 2; peers <= 8; ++peers) {
    Rng rng(1000 + peers);
    Topology random = MakeRandom(32, peers, rng);
    auto placement = FarHotPlacement(random, 3, 10);

    ExperimentOptions bp = PaperOptions(random, Scheme::kBpr);
    bp.max_direct_peers = peers;
    bp.matches_per_node_vec = placement;
    bp.answer_mode = core::AnswerMode::kIndicate;
    bp.auto_fetch = false;
    auto bp_result = report.Run(bp);

    ExperimentOptions gnut = PaperOptions(random, Scheme::kGnutella);
    gnut.matches_per_node_vec = placement;
    auto gnut_result = report.Run(gnut);

    PrintRow(std::to_string(peers),
             {bp_result.MeanCompletionMs(), gnut_result.MeanCompletionMs()});
    report.AddRow(std::to_string(peers), {bp_result.MeanCompletionMs(),
                                          gnut_result.MeanCompletionMs()});
  }
  std::printf(
      "\nExpected shape: both improve with more peers; BP stays below "
      "Gnutella.\n");
  return report.Close();
}
