// Declarative scenario driver: loads any scenarios/*.json spec, runs it
// through the scenario engine with full observability and writes
// BENCH_scenario_<name>.json. One binary covers every committed scenario
// (flash crowds, diurnal traffic, heterogeneous fleets, free-riders) —
// no per-workload C++ arm needed.
//
//   bench_scenario <spec.json> [--record-trace=PATH] [--replay-trace=PATH]
//
// The spec path may also come from the BP_SCENARIO environment variable.
// --record-trace writes the run's issued-query schedule as NDJSON;
// --replay-trace re-runs that schedule (same spec + seed required) and
// reproduces the generating run's per-query answer counts exactly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_common.h"
#include "scenario/query_trace.h"
#include "scenario/runner.h"
#include "scenario/spec.h"

using namespace bestpeer;

int main(int argc, char** argv) {
  std::string spec_path;
  std::string record_path;
  std::string replay_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--record-trace=", 0) == 0) {
      record_path = arg.substr(std::strlen("--record-trace="));
    } else if (arg.rfind("--replay-trace=", 0) == 0) {
      replay_path = arg.substr(std::strlen("--replay-trace="));
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (spec_path.empty()) {
    if (const char* env = std::getenv("BP_SCENARIO")) spec_path = env;
  }
  if (spec_path.empty()) {
    std::fprintf(stderr,
                 "usage: bench_scenario <spec.json> [--record-trace=PATH] "
                 "[--replay-trace=PATH]\n       (or set BP_SCENARIO)\n");
    return 2;
  }
  if (!record_path.empty() && !replay_path.empty()) {
    std::fprintf(stderr, "--record-trace and --replay-trace are exclusive\n");
    return 2;
  }

  auto spec_result = scenario::LoadScenarioFile(spec_path);
  if (!spec_result.ok()) {
    std::fprintf(stderr, "%s\n", spec_result.status().ToString().c_str());
    return 1;
  }
  const scenario::ScenarioSpec spec = std::move(spec_result).value();

  scenario::ScenarioRunOptions run;
  if (bench::FastMode()) run.store_scale = 0.25;
  scenario::QueryTrace replay;
  if (!replay_path.empty()) {
    auto trace_result = scenario::ReadQueryTrace(replay_path);
    if (!trace_result.ok()) {
      std::fprintf(stderr, "%s\n", trace_result.status().ToString().c_str());
      return 1;
    }
    replay = std::move(trace_result).value();
    run.replay = &replay;
  }

  bench::PrintTitle("Scenario: " + spec.name +
                    (run.replay != nullptr ? " (replay)" : ""));
  auto result_or = scenario::RunScenario(spec, run);
  if (!result_or.ok()) {
    std::fprintf(stderr, "scenario run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const scenario::ScenarioResult result = std::move(result_or).value();

  if (!record_path.empty()) {
    Status s = scenario::WriteQueryTrace(result.issued, record_path);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("recorded %zu queries to %s\n", result.issued.queries.size(),
                record_path.c_str());
  }

  bench::BenchReport report("scenario_" + spec.name);
  const std::vector<std::string> columns = {
      "phase",         "queries",         "answers",
      "mean_answers",  "mean_responders", "mean_completion_ms"};
  report.SetColumns(columns);
  bench::PrintRowHeader(columns);
  size_t total_queries = 0;
  size_t total_answers = 0;
  double total_completion_ms = 0;
  double total_responders = 0;
  for (const scenario::ScenarioPhaseStats& phase : result.phases) {
    report.AddRow(phase.name,
                  {static_cast<double>(phase.queries),
                   static_cast<double>(phase.answers), phase.mean_answers,
                   phase.mean_responders, phase.mean_completion_ms});
    bench::PrintRow(phase.name,
                    {static_cast<double>(phase.queries),
                     static_cast<double>(phase.answers), phase.mean_answers,
                     phase.mean_responders, phase.mean_completion_ms});
    total_queries += phase.queries;
    total_answers += phase.answers;
  }
  for (const scenario::ScenarioQueryStats& q : result.queries) {
    total_completion_ms += ToMillis(q.completion);
    total_responders += static_cast<double>(q.responders);
  }
  const double qn =
      total_queries == 0 ? 1.0 : static_cast<double>(total_queries);
  report.AddRow("total", {static_cast<double>(total_queries),
                          static_cast<double>(total_answers),
                          static_cast<double>(total_answers) / qn,
                          total_responders / qn, total_completion_ms / qn});
  bench::PrintRow("total", {static_cast<double>(total_queries),
                            static_cast<double>(total_answers),
                            static_cast<double>(total_answers) / qn,
                            total_responders / qn, total_completion_ms / qn});
  // Suppressed arrivals go to stdout only: a replay run never has any,
  // and the record/replay reports must stay byte-identical.
  std::printf("\nissued %zu queries (%zu arrivals suppressed: issuer "
              "offline), %llu wire bytes\n",
              total_queries, result.suppressed_arrivals,
              static_cast<unsigned long long>(result.wire_bytes));

  report.Absorb(result.metrics);
  report.AddWireBytes(result.wire_bytes);
  report.AttachObservability(result);
  return report.Close();
}
