// Micro-benchmarks of the mobile-agent machinery: message encode/decode,
// state serialization round trips, and full launch-to-execution cycles
// through the simulated engine (events per wall-clock second bound how
// many agent floods an experiment can run).

#include <benchmark/benchmark.h>

#include "agent/agent_message.h"
#include "agent/agent_registry.h"
#include "agent/agent_runtime.h"
#include "core/search_agent.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

namespace {

using namespace bestpeer;

void BM_AgentMessageEncodeDecode(benchmark::State& state) {
  agent::AgentMessage msg;
  msg.agent_id = 42;
  msg.class_name = "StormSearchAgent";
  msg.origin = 7;
  msg.ttl = 7;
  msg.hops = 3;
  msg.state = Bytes(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    Bytes encoded = msg.Encode();
    auto decoded = agent::AgentMessage::Decode(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AgentMessageEncodeDecode)->Arg(64)->Arg(4096);

void BM_SearchAgentStateRoundTrip(benchmark::State& state) {
  core::SearchAgent agent(99, "some keyword phrase",
                          core::AnswerMode::kDirect, Micros(15), 64);
  for (auto _ : state) {
    BinaryWriter w;
    agent.SaveState(w);
    core::SearchAgent fresh;
    BinaryReader r(w.buffer());
    Status s = fresh.LoadState(r);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SearchAgentStateRoundTrip);

// A full agent flood over a line overlay, through the whole stack
// (encode, compress, NIC, dedup, execute, forward).
void BM_AgentFloodLine(benchmark::State& state) {
  const size_t kNodes = static_cast<size_t>(state.range(0));

  class NoopAgent : public agent::Agent {
   public:
    std::string_view class_name() const override { return "Noop"; }
    void SaveState(BinaryWriter&) const override {}
    Status LoadState(BinaryReader&) override { return Status::OK(); }
    Status Execute(agent::AgentContext&) override { return Status::OK(); }
  };
  class NullHost : public agent::AgentHost {
   public:
    explicit NullHost(NodeId node) : node_(node) {}
    storm::Storm* storage() override { return nullptr; }
    NodeId host_node() const override { return node_; }

   private:
    NodeId node_;
  };

  for (auto _ : state) {
    sim::Simulator simulator;
    sim::SimNetwork network(&simulator, sim::NetworkOptions{});
    net::SimTransportFleet fleet(&network);
    agent::AgentRegistry registry;
    registry.Register("Noop", 1024, []() {
      return std::make_unique<NoopAgent>();
    }).ok();
    agent::CodeCache cache;
    std::vector<std::unique_ptr<NullHost>> hosts;
    std::vector<std::unique_ptr<net::Dispatcher>> dispatchers;
    std::vector<std::unique_ptr<agent::AgentRuntime>> runtimes;
    std::vector<std::vector<NodeId>> neighbors(kNodes);
    std::vector<NodeId> ids;
    for (size_t i = 0; i < kNodes; ++i) {
      ids.push_back(network.AddNode());
      hosts.push_back(std::make_unique<NullHost>(ids[i]));
      dispatchers.push_back(
          std::make_unique<net::Dispatcher>(fleet.For(ids[i])));
    }
    for (size_t i = 0; i < kNodes; ++i) {
      if (i > 0) neighbors[i].push_back(ids[i - 1]);
      if (i + 1 < kNodes) neighbors[i].push_back(ids[i + 1]);
      size_t idx = i;
      runtimes.push_back(std::make_unique<agent::AgentRuntime>(
          fleet.For(ids[i]), &registry, &cache, hosts[i].get(),
          [&neighbors, idx]() { return neighbors[idx]; },
          agent::AgentRuntimeOptions{}));
      dispatchers[i]->Register(agent::kAgentTransferType,
                               [&runtimes, idx](const net::Message& m) {
                                 runtimes[idx]->OnMessage(m).ok();
                               });
    }
    NoopAgent agent;
    runtimes[0]->Launch(1, agent, static_cast<uint16_t>(kNodes), false).ok();
    simulator.RunUntilIdle();
    benchmark::DoNotOptimize(runtimes[kNodes - 1]->agents_executed());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kNodes));
}
BENCHMARK(BM_AgentFloodLine)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
