// Index-backed search benchmark. Arm A is a single paper-scale StorM
// store (1000 x 1 KB objects, 10 matches): the same needle query answered
// by the full scan (charged 15 us per object examined) and by the keyword
// index (charged 1 us per posting touched), reporting the modeled-cost
// speedup. Arm B is a 9-node star fleet where only two peers hold
// answers, run scan / index / index+summaries at the same seed: the
// index cuts responder CPU, and content summaries additionally stop the
// base from launching agents toward provably-empty peers — fewer agent
// executions and fewer wire bytes at identical recall.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/config.h"
#include "storm/storm.h"
#include "workload/corpus.h"

using namespace bestpeer;
using namespace bestpeer::bench;

namespace {

/// Arm A: one store, one query, two cost models.
void RunSingleStoreArm(BenchReport& report) {
  const BenchScale scale = Scale();
  const size_t kMatches = 10;
  const SimTime kPerObjectCost = Micros(15);  // BestPeerConfig default.
  const SimTime kPerPostingCost = Micros(1);

  storm::StormOptions options;
  options.buffer_frames = 128;
  auto storm = storm::Storm::Open(options).value();
  workload::CorpusGenerator corpus({1024, 500, 0.8}, 7);
  for (size_t i = 0; i < scale.objects_per_node; ++i) {
    storm->Put(i, corpus.MakeObject(i < kMatches)).ok();
  }

  auto scan = storm->ScanSearch(workload::CorpusGenerator::kNeedle).value();
  size_t postings_touched = 0;
  auto indexed =
      storm->IndexSearch(workload::CorpusGenerator::kNeedle,
                         &postings_touched)
          .value();

  const double scan_us =
      ToMillis(static_cast<SimTime>(scan.objects_scanned) * kPerObjectCost) *
      1000.0;
  const double index_us =
      ToMillis(static_cast<SimTime>(postings_touched) * kPerPostingCost) *
      1000.0;
  const double speedup = index_us == 0 ? 0 : scan_us / index_us;

  PrintTitle("Arm A: single store, " +
             std::to_string(scale.objects_per_node) +
             " x 1 KB objects, one needle query");
  const std::vector<std::string> columns = {"arm", "touched", "matches",
                                            "cost us", "speedup", "cost ms"};
  PrintRowHeader(columns);
  // Store rows reuse the report's 5-value schema; the last slot (mean ms
  // in the fleet arm) is the modeled cost in ms here.
  std::vector<double> scan_row = {static_cast<double>(scan.objects_scanned),
                                  static_cast<double>(scan.matches.size()),
                                  scan_us, 1.0, scan_us / 1000.0};
  std::vector<double> index_row = {static_cast<double>(postings_touched),
                                   static_cast<double>(indexed.size()),
                                   index_us, speedup, index_us / 1000.0};
  PrintRow("scan", scan_row);
  PrintRow("index", index_row);
  report.AddRow("store-scan", scan_row);
  report.AddRow("store-index", index_row);

  std::printf(
      "\nExpected: the scan touches every object; the index touches a few "
      "postings per query term, a >= 10x modeled-cost drop at paper "
      "scale.\n");
}

/// Arm B: star fleet where answers live at two of eight peers.
workload::ExperimentOptions FleetWorkload() {
  workload::ExperimentOptions o =
      SearchPhaseOptions(workload::MakeStar(9), workload::Scheme::kBps);
  // Only peers 2 and 3 hold answers; the other six peers (and the base)
  // are chaff a summary can prove empty.
  o.matches_per_node_vec.assign(o.topology.node_count, 0);
  o.matches_per_node_vec[2] = 10;
  o.matches_per_node_vec[3] = 10;
  // Enough repetitions that the one-time summary exchange amortizes: the
  // per-query saving is the agents *not* shipped to provably-empty peers.
  o.queries = 32;
  o.seed = 1;
  return o;
}

struct FleetOutcome {
  double wire_kb = 0;
  double agents = 0;
  double skips = 0;
  double answers = 0;
  double mean_ms = 0;
};

FleetOutcome Summarize(const workload::ExperimentResult& result) {
  FleetOutcome out;
  out.wire_kb = static_cast<double>(result.wire_bytes) / 1024.0;
  out.agents = result.metrics.Value("agent.executed");
  out.skips = result.metrics.Value("core.summary_skips");
  out.answers = static_cast<double>(result.TotalAnswers());
  out.mean_ms = result.MeanCompletionMs();
  return out;
}

void RunFleetArm(BenchReport& report) {
  PrintTitle(
      "Arm B: 9-node star, answers at 2 peers only — scan vs index vs "
      "index+summaries");
  const std::vector<std::string> columns = {"arm",   "wire KB", "agents",
                                            "skips", "answers", "mean ms"};
  PrintRowHeader(columns);

  workload::ExperimentOptions scan = FleetWorkload();
  workload::ExperimentOptions index = scan;
  index.use_index_search = true;
  workload::ExperimentOptions pruned = index;
  pruned.enable_content_summaries = true;

  for (const auto& [label, options] :
       std::initializer_list<
           std::pair<const char*, const workload::ExperimentOptions*>>{
           {"scan", &scan}, {"index", &index}, {"index+summ", &pruned}}) {
    FleetOutcome out = Summarize(report.Run(*options));
    std::vector<double> values = {out.wire_kb, out.agents, out.skips,
                                  out.answers, out.mean_ms};
    PrintRow(label, values);
    report.AddRow(label, values);
  }

  std::printf(
      "\nExpected: index matches scan's answers with lower completion "
      "time (cheaper responder CPU); summaries additionally skip the six "
      "provably-empty peers, cutting agent executions and wire bytes at "
      "identical recall.\n");
}

}  // namespace

int main() {
  BenchReport report("index_search");
  // Shared 5-value schema: store rows are (touched, matches, cost us,
  // speedup, cost ms); fleet rows are (wire KB, agents, skips, answers,
  // mean ms). EXPERIMENTS.md documents the mapping.
  report.SetColumns(
      {"arm", "touched|wireKB", "matches|agents", "cost_us|skips",
       "speedup|answers", "cost_ms|mean_ms"});
  RunSingleStoreArm(report);
  RunFleetArm(report);
  return report.Close();
}
