// Micro-benchmarks of the discrete-event kernel: event queue throughput
// and end-to-end message rate through the simulated network. These bound
// how large an overlay the harness can simulate per wall-clock second.

#include <benchmark/benchmark.h>

#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace {

using namespace bestpeer::sim;

void BM_EventQueuePushPop(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    EventQueue q;
    for (size_t i = 0; i < batch; ++i) {
      q.Push(static_cast<bestpeer::SimTime>((i * 2654435761u) % 100000),
             []() {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.Pop());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(65536);

void BM_SimulatorEventCascade(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    int remaining = 100000;
    std::function<void()> chain = [&]() {
      if (--remaining > 0) sim.ScheduleAfter(1, chain);
    };
    sim.ScheduleAfter(1, chain);
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(remaining);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100000);
}
BENCHMARK(BM_SimulatorEventCascade);

void BM_NetworkMessageThroughput(benchmark::State& state) {
  const int kMessages = 10000;
  for (auto _ : state) {
    Simulator sim;
    SimNetwork net(&sim, NetworkOptions{});
    NodeId a = net.AddNode();
    NodeId b = net.AddNode();
    int received = 0;
    net.SetHandler(b, [&](const SimMessage&) { ++received; });
    for (int i = 0; i < kMessages; ++i) {
      net.Send(a, b, 1, bestpeer::Bytes(64, 0));
    }
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(received);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          kMessages);
}
BENCHMARK(BM_NetworkMessageThroughput);

void BM_CpuModelSubmit(benchmark::State& state) {
  const int kTasks = 100000;
  for (auto _ : state) {
    Simulator sim;
    CpuModel cpu(&sim, 4);
    for (int i = 0; i < kTasks; ++i) cpu.Submit(10, []() {});
    sim.RunUntilIdle();
    benchmark::DoNotOptimize(cpu.tasks_submitted());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kTasks);
}
BENCHMARK(BM_CpuModelSubmit);

}  // namespace

BENCHMARK_MAIN();
