// Micro-benchmarks of the StorM storage manager: object put/get, the
// full-scan keyword search path (what every simulated node executes per
// query), and buffer-pool behaviour under each replacement policy.

#include <benchmark/benchmark.h>

#include "storm/storm.h"
#include "workload/corpus.h"

namespace {

using bestpeer::storm::Storm;
using bestpeer::storm::StormOptions;

std::unique_ptr<Storm> MakeLoadedStore(size_t objects, size_t frames,
                                       const std::string& policy) {
  StormOptions options;
  options.buffer_frames = frames;
  options.replacement = policy;
  options.build_index = false;
  auto storm = Storm::Open(options).value();
  bestpeer::workload::CorpusGenerator corpus({1024, 500, 0.8}, 11);
  for (size_t i = 0; i < objects; ++i) {
    storm->Put(i, corpus.MakeObject(i % 100 == 0)).ok();
  }
  return storm;
}

void BM_StormPut(benchmark::State& state) {
  bestpeer::workload::CorpusGenerator corpus({1024, 500, 0.8}, 11);
  auto content = corpus.MakeObject(false);
  StormOptions options;
  options.build_index = false;
  auto storm = Storm::Open(options).value();
  uint64_t id = 0;
  for (auto _ : state) {
    storm->Put(id++, content).ok();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StormPut);

void BM_StormGet(benchmark::State& state) {
  auto storm = MakeLoadedStore(1000, 128, "lru");
  uint64_t id = 0;
  for (auto _ : state) {
    auto content = storm->Get(id % 1000);
    benchmark::DoNotOptimize(content);
    ++id;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StormGet);

// The per-query cost of the paper's search agent: scan 1000 x 1 KB.
void BM_StormScanSearch1000(benchmark::State& state) {
  auto storm = MakeLoadedStore(1000, static_cast<size_t>(state.range(0)),
                               "lru");
  for (auto _ : state) {
    auto scan = storm->ScanSearch("needle");
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
  state.counters["hit_rate"] =
      storm->buffer_pool().hits() == 0
          ? 0.0
          : static_cast<double>(storm->buffer_pool().hits()) /
                static_cast<double>(storm->buffer_pool().hits() +
                                    storm->buffer_pool().misses());
}
BENCHMARK(BM_StormScanSearch1000)->Arg(32)->Arg(128)->Arg(512);

void BM_StormIndexSearch(benchmark::State& state) {
  StormOptions options;
  options.build_index = true;
  auto storm = Storm::Open(options).value();
  bestpeer::workload::CorpusGenerator corpus({1024, 500, 0.8}, 11);
  for (size_t i = 0; i < 1000; ++i) {
    storm->Put(i, corpus.MakeObject(i % 100 == 0)).ok();
  }
  for (auto _ : state) {
    auto hits = storm->IndexSearch("needle");
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StormIndexSearch);

// Scan throughput under each replacement policy with a tight pool.
void BM_StormScanByPolicy(benchmark::State& state) {
  static const char* kPolicies[] = {"lru", "fifo", "clock", "lfu"};
  const char* policy = kPolicies[state.range(0)];
  auto storm = MakeLoadedStore(1000, 64, policy);
  for (auto _ : state) {
    auto scan = storm->ScanSearch("needle");
    benchmark::DoNotOptimize(scan);
  }
  state.SetLabel(policy);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_StormScanByPolicy)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
