// Regenerates Figure 5(c): completion time vs number of nodes on the
// Line topology for CS (= MCS), BPS and BPR (paper §4.3).
//
// Paper shape: same relative performance as the tree — BPR best, BPR
// outperforms CS except at very small sizes.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  PrintTitle(
      "Figure 5(c): Line topology — completion time (ms) vs number of "
      "nodes");
  const std::vector<size_t> sizes = {2, 4, 8, 16, 24, 32};
  const std::vector<Scheme> schemes = {Scheme::kMcs, Scheme::kBps,
                                       Scheme::kBpr};
  BenchReport report("fig5c_line");
  std::vector<std::string> header = {"nodes"};
  for (auto s : schemes)
    header.push_back(s == Scheme::kMcs ? "CS" : SchemeName(s));
  report.SetColumns(header);
  PrintRowHeader(header);
  for (size_t n : sizes) {
    std::vector<double> row;
    for (Scheme scheme : schemes) {
      ExperimentOptions options = SearchPhaseOptions(MakeLine(n), scheme);
      // Post-hoc analysis: spans + flight events feed the critical-path
      // breakdown, the sampler feeds the timeseries section. The last
      // configuration (BPR on the deepest line) is the one attached.
      options.trace = true;
      options.sample_interval = Millis(1);
      options.flight_capacity = 8192;
      auto result = report.Run(options);
      report.AttachObservability(result);
      row.push_back(result.MeanCompletionMs());
    }
    PrintRow(std::to_string(n), row);
    report.AddRow(std::to_string(n), row);
  }
  std::printf(
      "\nExpected shape: BPR best overall; CS loses to BP once the line "
      "is deep enough.\n");
  return report.Close();
}
