#ifndef BESTPEER_BENCH_BENCH_COMMON_H_
#define BESTPEER_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/critical_path.h"
#include "obs/json_writer.h"
#include "obs/timeseries.h"
#include "workload/churn.h"
#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::bench {

/// Paper-scale experiment defaults (§4.2): 1000 objects of 1 KB per node,
/// the same query issued 4 times, results averaged over >= 3 seeds.
/// Set BP_BENCH_FAST=1 to run a scaled-down sweep (same shapes, smaller
/// stores, single seed) for quick iteration.
struct BenchScale {
  size_t objects_per_node = 1000;
  size_t files_per_node = 1000;
  std::vector<uint64_t> seeds = {1, 2, 3};
  size_t queries = 4;
};

inline bool FastMode() {
  const char* env = std::getenv("BP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline BenchScale Scale() {
  BenchScale s;
  if (FastMode()) {
    s.objects_per_node = 200;
    s.files_per_node = 200;
    s.seeds = {1};
  }
  return s;
}

inline workload::ExperimentOptions PaperOptions(workload::Topology topology,
                                                workload::Scheme scheme) {
  const BenchScale scale = Scale();
  workload::ExperimentOptions o;
  o.topology = std::move(topology);
  o.scheme = scheme;
  o.objects_per_node = scale.objects_per_node;
  o.files_per_node = scale.files_per_node;
  o.object_size = 1024;
  o.matches_per_node = 10;
  o.queries = scale.queries;
  o.max_direct_peers = 8;
  // The paper's controlled environment searches every node; a TTL above
  // any overlay diameter used here guarantees full coverage.
  o.ttl = 64;
  return o;
}

/// Options for the *search phase* experiments (Figs. 5-7): the StorM
/// agent returns its array of matching results (small descriptors), and
/// CS servers return the equivalent result lists; object download is a
/// separate out-of-network step in BestPeer and is not part of the
/// measured search. Both schemes therefore ship descriptors here.
inline workload::ExperimentOptions SearchPhaseOptions(
    workload::Topology topology, workload::Scheme scheme) {
  workload::ExperimentOptions o =
      PaperOptions(std::move(topology), scheme);
  o.answer_mode = core::AnswerMode::kIndicate;
  o.auto_fetch = false;
  return o;
}

/// Runs with seed averaging and returns the merged result; dies loudly on
/// error (benches are not expected to fail).
inline workload::ExperimentResult MustRun(
    const workload::ExperimentOptions& options) {
  auto result = workload::RunAveraged(options, Scale().seeds);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Collects one bench binary's result table plus the merged instrument
/// snapshot of every experiment it ran, and writes them as
/// BENCH_<figure>.json (into $BP_BENCH_OUT_DIR when set, else the
/// working directory). The JSON carries the headline observability
/// numbers — wire bytes, agent hops, buffer-pool hit rate, serialize /
/// reconstruct cost — alongside the full metric dump, plus optional
/// `timeseries` and `critical_path` sections (AttachObservability).
///
/// End main() with `return report.Close();` so a failed report write
/// fails the bench (CI must not silently lose a report).
class BenchReport {
 public:
  explicit BenchReport(std::string figure) : figure_(std::move(figure)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { Write(); }

  void SetColumns(std::vector<std::string> columns) {
    columns_ = std::move(columns);
  }

  void AddRow(std::string label, const std::vector<double>& values) {
    rows_.emplace_back(std::move(label), values);
  }

  /// Folds one experiment into the report's aggregate snapshot.
  void Absorb(const workload::ExperimentResult& result) {
    wire_bytes_ += result.wire_bytes;
    metrics_.Merge(result.metrics);
  }

  /// Folds a raw registry snapshot in (for benches that drive a workload
  /// directly instead of going through RunExperiment).
  void Absorb(const metrics::Snapshot& snapshot) {
    metrics_.Merge(snapshot);
  }

  /// MustRun + Absorb in one step.
  workload::ExperimentResult Run(const workload::ExperimentOptions& options) {
    workload::ExperimentResult result = MustRun(options);
    Absorb(result);
    return result;
  }

  /// Attaches the run's `timeseries` and (when tracing was on) a
  /// `critical_path` section computed from its spans. Works for any
  /// result type carrying `timeseries`/`trace`/`flight` members
  /// (experiment, churn, scenario runs). Later attachments replace
  /// earlier ones: benches typically attach their headline
  /// configuration's run.
  template <typename ResultT>
  void AttachObservability(const ResultT& result) {
    if (!result.timeseries.empty()) {
      timeseries_json_ = result.timeseries.ToJson(2);
    }
    if (result.trace != nullptr) {
      obs::CriticalPathReport cp =
          obs::AnalyzeCriticalPaths(*result.trace, result.flight.get());
      if (!cp.empty()) critical_path_json_ = cp.ToJson(2);
    }
  }

  /// Folds wire bytes from a run that doesn't go through Absorb's
  /// ExperimentResult overload (e.g. a scenario run).
  void AddWireBytes(uint64_t bytes) { wire_bytes_ += bytes; }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = "BENCH_" + figure_ + ".json";
    if (const char* dir = std::getenv("BP_BENCH_OUT_DIR")) {
      path = std::string(dir) + "/" + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      write_failed_ = true;
      return;
    }
    std::fprintf(f, "{\n  \"figure\": %s,\n",
                 obs::JsonQuoted(figure_).c_str());
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                   obs::JsonQuoted(columns_[i]).c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {\"label\": %s, \"values\": [",
                   obs::JsonQuoted(rows_[r].first).c_str());
      const auto& values = rows_[r].second;
      for (size_t i = 0; i < values.size(); ++i) {
        std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                     obs::JsonNumber(values[i]).c_str());
      }
      std::fprintf(f, "]}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    const double hits = metrics_.Value("storm.pool_hits");
    const double misses = metrics_.Value("storm.pool_misses");
    const double lookups = hits + misses;
    const uint64_t hop_samples = metrics_.CountOf("agent.hops_at_execute");
    std::fprintf(f, "  ],\n  \"summary\": {\n");
    std::fprintf(f, "    \"wire_bytes\": %llu,\n",
                 static_cast<unsigned long long>(wire_bytes_));
    std::fprintf(f, "    \"net_messages\": %s,\n",
                 obs::JsonNumber(metrics_.Value("net.messages_sent")).c_str());
    std::fprintf(f, "    \"agent_migrations\": %s,\n",
                 obs::JsonNumber(metrics_.Value("agent.migrations")).c_str());
    std::fprintf(
        f, "    \"agent_hops_mean\": %s,\n",
        obs::JsonNumber(hop_samples == 0
                            ? 0.0
                            : metrics_.Value("agent.hops_at_execute") /
                                  static_cast<double>(hop_samples))
            .c_str());
    std::fprintf(
        f, "    \"agent_serialize_bytes\": %s,\n",
        obs::JsonNumber(metrics_.Value("agent.serialize_bytes")).c_str());
    std::fprintf(
        f, "    \"agent_reconstruct_us\": %s,\n",
        obs::JsonNumber(metrics_.Value("agent.reconstruct_us")).c_str());
    std::fprintf(
        f, "    \"buffer_pool_hit_rate\": %s\n",
        obs::JsonNumber(lookups == 0 ? 0.0 : hits / lookups).c_str());
    std::fprintf(f, "  },\n");
    if (!timeseries_json_.empty()) {
      std::fprintf(f, "  \"timeseries\": %s,\n", timeseries_json_.c_str());
    }
    if (!critical_path_json_.empty()) {
      std::fprintf(f, "  \"critical_path\": %s,\n",
                   critical_path_json_.c_str());
    }
    std::fprintf(f, "  \"metrics\": %s\n}\n",
                 CappedMetrics().ToJson(2).c_str());
    if (std::fclose(f) != 0) write_failed_ = true;
    if (!write_failed_) std::printf("\nwrote %s\n", path.c_str());
  }

  /// True once Write() failed to produce the report file.
  bool write_failed() const { return write_failed_; }

  /// Writes the report and returns the process exit code: nonzero when
  /// the report could not be written, so CI can't silently lose it.
  int Close() {
    Write();
    return write_failed_ ? 1 : 0;
  }

 private:
  /// Per-node labeled series (net.node_bytes_sent{node=N}, ...) grow
  /// linearly with the swept topology sizes and swamp the metric dump.
  /// Above a threshold keep the top-k nodes by value plus one aggregate
  /// entry. BP_BENCH_NODE_METRICS=all keeps everything; a number sets
  /// the threshold.
  metrics::Snapshot CappedMetrics() const {
    size_t threshold = 32;
    if (const char* env = std::getenv("BP_BENCH_NODE_METRICS")) {
      if (std::string(env) == "all" || std::string(env) == "full") {
        return metrics_;
      }
      const long v = std::atol(env);
      if (v > 0) threshold = static_cast<size_t>(v);
    }
    constexpr size_t kTopK = 8;

    // Count the per-node entries of each metric name.
    std::vector<std::pair<std::string, size_t>> per_node_counts;
    for (const auto& e : metrics_.entries) {
      bool node_labeled = false;
      for (const auto& [k, v] : e.labels) node_labeled |= k == "node";
      if (!node_labeled) continue;
      bool counted = false;
      for (auto& [name, n] : per_node_counts) {
        if (name == e.name) {
          ++n;
          counted = true;
        }
      }
      if (!counted) per_node_counts.emplace_back(e.name, 1);
    }

    metrics::Snapshot capped;
    for (const auto& [name, n] : per_node_counts) {
      if (n <= threshold) continue;
      // Collect, rank by value, keep kTopK, aggregate the rest.
      std::vector<const metrics::SnapshotEntry*> group;
      for (const auto& e : metrics_.entries) {
        if (e.name != name) continue;
        group.push_back(&e);
      }
      std::stable_sort(group.begin(), group.end(),
                       [](const auto* a, const auto* b) {
                         return a->value > b->value;
                       });
      metrics::SnapshotEntry agg;
      agg.name = name;
      agg.labels = {{"node", "aggregate"}};
      agg.kind = group.front()->kind;
      for (size_t i = 0; i < group.size(); ++i) {
        if (i < kTopK) {
          capped.entries.push_back(*group[i]);
        }
        agg.value += group[i]->value;
        agg.count += group[i]->count;
      }
      capped.entries.push_back(std::move(agg));
    }
    if (capped.entries.empty()) return metrics_;  // Nothing to cap.

    // Keep every metric that wasn't capped, in original order.
    metrics::Snapshot out;
    for (const auto& e : metrics_.entries) {
      bool is_capped = false;
      for (const auto& [name, n] : per_node_counts) {
        if (name == e.name && n > threshold) is_capped = true;
      }
      if (!is_capped) out.entries.push_back(e);
    }
    for (auto& e : capped.entries) out.entries.push_back(std::move(e));
    return out;
  }

  std::string figure_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
  metrics::Snapshot metrics_;
  std::string timeseries_json_;
  std::string critical_path_json_;
  uint64_t wire_bytes_ = 0;
  bool written_ = false;
  bool write_failed_ = false;
};

inline void PrintTitle(const std::string& title) {
  std::printf("\n## %s\n\n", title.c_str());
}

inline void PrintRowHeader(const std::vector<std::string>& columns) {
  std::printf("| %-14s", columns.empty() ? "" : columns[0].c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf(" | %12s", columns[i].c_str());
  }
  std::printf(" |\n|%s", std::string(16, '-').c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf("|%s", std::string(14, '-').c_str());
  }
  std::printf("|\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values,
                     const char* fmt = "%12.2f") {
  std::printf("| %-14s", label.c_str());
  for (double v : values) {
    std::printf(" | ");
    std::printf(fmt, v);
  }
  std::printf(" |\n");
}

}  // namespace bestpeer::bench

#endif  // BESTPEER_BENCH_BENCH_COMMON_H_
