#ifndef BESTPEER_BENCH_BENCH_COMMON_H_
#define BESTPEER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::bench {

/// Paper-scale experiment defaults (§4.2): 1000 objects of 1 KB per node,
/// the same query issued 4 times, results averaged over >= 3 seeds.
/// Set BP_BENCH_FAST=1 to run a scaled-down sweep (same shapes, smaller
/// stores, single seed) for quick iteration.
struct BenchScale {
  size_t objects_per_node = 1000;
  size_t files_per_node = 1000;
  std::vector<uint64_t> seeds = {1, 2, 3};
  size_t queries = 4;
};

inline bool FastMode() {
  const char* env = std::getenv("BP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline BenchScale Scale() {
  BenchScale s;
  if (FastMode()) {
    s.objects_per_node = 200;
    s.files_per_node = 200;
    s.seeds = {1};
  }
  return s;
}

inline workload::ExperimentOptions PaperOptions(workload::Topology topology,
                                                workload::Scheme scheme) {
  const BenchScale scale = Scale();
  workload::ExperimentOptions o;
  o.topology = std::move(topology);
  o.scheme = scheme;
  o.objects_per_node = scale.objects_per_node;
  o.files_per_node = scale.files_per_node;
  o.object_size = 1024;
  o.matches_per_node = 10;
  o.queries = scale.queries;
  o.max_direct_peers = 8;
  // The paper's controlled environment searches every node; a TTL above
  // any overlay diameter used here guarantees full coverage.
  o.ttl = 64;
  return o;
}

/// Options for the *search phase* experiments (Figs. 5-7): the StorM
/// agent returns its array of matching results (small descriptors), and
/// CS servers return the equivalent result lists; object download is a
/// separate out-of-network step in BestPeer and is not part of the
/// measured search. Both schemes therefore ship descriptors here.
inline workload::ExperimentOptions SearchPhaseOptions(
    workload::Topology topology, workload::Scheme scheme) {
  workload::ExperimentOptions o =
      PaperOptions(std::move(topology), scheme);
  o.answer_mode = core::AnswerMode::kIndicate;
  o.auto_fetch = false;
  return o;
}

/// Runs with seed averaging and returns the merged result; dies loudly on
/// error (benches are not expected to fail).
inline workload::ExperimentResult MustRun(
    const workload::ExperimentOptions& options) {
  auto result = workload::RunAveraged(options, Scale().seeds);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline void PrintTitle(const std::string& title) {
  std::printf("\n## %s\n\n", title.c_str());
}

inline void PrintRowHeader(const std::vector<std::string>& columns) {
  std::printf("| %-14s", columns.empty() ? "" : columns[0].c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf(" | %12s", columns[i].c_str());
  }
  std::printf(" |\n|%s", std::string(16, '-').c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf("|%s", std::string(14, '-').c_str());
  }
  std::printf("|\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values,
                     const char* fmt = "%12.2f") {
  std::printf("| %-14s", label.c_str());
  for (double v : values) {
    std::printf(" | ");
    std::printf(fmt, v);
  }
  std::printf(" |\n");
}

}  // namespace bestpeer::bench

#endif  // BESTPEER_BENCH_BENCH_COMMON_H_
