#ifndef BESTPEER_BENCH_BENCH_COMMON_H_
#define BESTPEER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "workload/experiment.h"
#include "workload/topology.h"

namespace bestpeer::bench {

/// Paper-scale experiment defaults (§4.2): 1000 objects of 1 KB per node,
/// the same query issued 4 times, results averaged over >= 3 seeds.
/// Set BP_BENCH_FAST=1 to run a scaled-down sweep (same shapes, smaller
/// stores, single seed) for quick iteration.
struct BenchScale {
  size_t objects_per_node = 1000;
  size_t files_per_node = 1000;
  std::vector<uint64_t> seeds = {1, 2, 3};
  size_t queries = 4;
};

inline bool FastMode() {
  const char* env = std::getenv("BP_BENCH_FAST");
  return env != nullptr && env[0] == '1';
}

inline BenchScale Scale() {
  BenchScale s;
  if (FastMode()) {
    s.objects_per_node = 200;
    s.files_per_node = 200;
    s.seeds = {1};
  }
  return s;
}

inline workload::ExperimentOptions PaperOptions(workload::Topology topology,
                                                workload::Scheme scheme) {
  const BenchScale scale = Scale();
  workload::ExperimentOptions o;
  o.topology = std::move(topology);
  o.scheme = scheme;
  o.objects_per_node = scale.objects_per_node;
  o.files_per_node = scale.files_per_node;
  o.object_size = 1024;
  o.matches_per_node = 10;
  o.queries = scale.queries;
  o.max_direct_peers = 8;
  // The paper's controlled environment searches every node; a TTL above
  // any overlay diameter used here guarantees full coverage.
  o.ttl = 64;
  return o;
}

/// Options for the *search phase* experiments (Figs. 5-7): the StorM
/// agent returns its array of matching results (small descriptors), and
/// CS servers return the equivalent result lists; object download is a
/// separate out-of-network step in BestPeer and is not part of the
/// measured search. Both schemes therefore ship descriptors here.
inline workload::ExperimentOptions SearchPhaseOptions(
    workload::Topology topology, workload::Scheme scheme) {
  workload::ExperimentOptions o =
      PaperOptions(std::move(topology), scheme);
  o.answer_mode = core::AnswerMode::kIndicate;
  o.auto_fetch = false;
  return o;
}

/// Runs with seed averaging and returns the merged result; dies loudly on
/// error (benches are not expected to fail).
inline workload::ExperimentResult MustRun(
    const workload::ExperimentOptions& options) {
  auto result = workload::RunAveraged(options, Scale().seeds);
  if (!result.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Collects one bench binary's result table plus the merged instrument
/// snapshot of every experiment it ran, and writes them as
/// BENCH_<figure>.json (into $BP_BENCH_OUT_DIR when set, else the
/// working directory). The JSON carries the headline observability
/// numbers — wire bytes, agent hops, buffer-pool hit rate, serialize /
/// reconstruct cost — alongside the full metric dump.
class BenchReport {
 public:
  explicit BenchReport(std::string figure) : figure_(std::move(figure)) {}
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;
  ~BenchReport() { Write(); }

  void SetColumns(std::vector<std::string> columns) {
    columns_ = std::move(columns);
  }

  void AddRow(std::string label, const std::vector<double>& values) {
    rows_.emplace_back(std::move(label), values);
  }

  /// Folds one experiment into the report's aggregate snapshot.
  void Absorb(const workload::ExperimentResult& result) {
    wire_bytes_ += result.wire_bytes;
    metrics_.Merge(result.metrics);
  }

  /// Folds a raw registry snapshot in (for benches that drive a workload
  /// directly instead of going through RunExperiment).
  void Absorb(const metrics::Snapshot& snapshot) {
    metrics_.Merge(snapshot);
  }

  /// MustRun + Absorb in one step.
  workload::ExperimentResult Run(const workload::ExperimentOptions& options) {
    workload::ExperimentResult result = MustRun(options);
    Absorb(result);
    return result;
  }

  void Write() {
    if (written_) return;
    written_ = true;
    std::string path = "BENCH_" + figure_ + ".json";
    if (const char* dir = std::getenv("BP_BENCH_OUT_DIR")) {
      path = std::string(dir) + "/" + path;
    }
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n", figure_.c_str());
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                   JsonEscape(columns_[i]).c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {\"label\": \"%s\", \"values\": [",
                   JsonEscape(rows_[r].first).c_str());
      const auto& values = rows_[r].second;
      for (size_t i = 0; i < values.size(); ++i) {
        std::fprintf(f, "%s%.6g", i == 0 ? "" : ", ", values[i]);
      }
      std::fprintf(f, "]}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    const double hits = metrics_.Value("storm.pool_hits");
    const double misses = metrics_.Value("storm.pool_misses");
    const double lookups = hits + misses;
    const uint64_t hop_samples = metrics_.CountOf("agent.hops_at_execute");
    std::fprintf(f, "  ],\n  \"summary\": {\n");
    std::fprintf(f, "    \"wire_bytes\": %llu,\n",
                 static_cast<unsigned long long>(wire_bytes_));
    std::fprintf(f, "    \"net_messages\": %.0f,\n",
                 metrics_.Value("net.messages_sent"));
    std::fprintf(f, "    \"agent_migrations\": %.0f,\n",
                 metrics_.Value("agent.migrations"));
    std::fprintf(f, "    \"agent_hops_mean\": %.6g,\n",
                 hop_samples == 0
                     ? 0.0
                     : metrics_.Value("agent.hops_at_execute") /
                           static_cast<double>(hop_samples));
    std::fprintf(f, "    \"agent_serialize_bytes\": %.0f,\n",
                 metrics_.Value("agent.serialize_bytes"));
    std::fprintf(f, "    \"agent_reconstruct_us\": %.0f,\n",
                 metrics_.Value("agent.reconstruct_us"));
    std::fprintf(f, "    \"buffer_pool_hit_rate\": %.6g\n",
                 lookups == 0 ? 0.0 : hits / lookups);
    std::fprintf(f, "  },\n  \"metrics\": %s\n}\n",
                 metrics_.ToJson(2).c_str());
    std::fclose(f);
    std::printf("\nwrote %s\n", path.c_str());
  }

 private:
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string figure_;
  std::vector<std::string> columns_;
  std::vector<std::pair<std::string, std::vector<double>>> rows_;
  metrics::Snapshot metrics_;
  uint64_t wire_bytes_ = 0;
  bool written_ = false;
};

inline void PrintTitle(const std::string& title) {
  std::printf("\n## %s\n\n", title.c_str());
}

inline void PrintRowHeader(const std::vector<std::string>& columns) {
  std::printf("| %-14s", columns.empty() ? "" : columns[0].c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf(" | %12s", columns[i].c_str());
  }
  std::printf(" |\n|%s", std::string(16, '-').c_str());
  for (size_t i = 1; i < columns.size(); ++i) {
    std::printf("|%s", std::string(14, '-').c_str());
  }
  std::printf("|\n");
}

inline void PrintRow(const std::string& label,
                     const std::vector<double>& values,
                     const char* fmt = "%12.2f") {
  std::printf("| %-14s", label.c_str());
  for (double v : values) {
    std::printf(" | ");
    std::printf(fmt, v);
  }
  std::printf(" |\n");
}

}  // namespace bestpeer::bench

#endif  // BESTPEER_BENCH_BENCH_COMMON_H_
