// Micro-benchmarks of the LZSS codec (the paper's GZIP substitute):
// compression/decompression throughput and achieved ratio on the kinds
// of payloads BestPeer ships (agent state, 1 KB text objects, result
// batches, incompressible data).

#include <benchmark/benchmark.h>

#include "compress/lzss_codec.h"
#include "util/rng.h"
#include "workload/corpus.h"

namespace {

using bestpeer::Bytes;
using bestpeer::LzssCodec;
using bestpeer::Rng;

Bytes TextPayload(size_t size) {
  bestpeer::workload::CorpusGenerator corpus({size, 500, 0.8}, 7);
  return corpus.MakeObject(false);
}

Bytes RandomPayload(size_t size) {
  Rng rng(7);
  Bytes b(size);
  for (auto& x : b) x = static_cast<uint8_t>(rng.NextBounded(256));
  return b;
}

void BM_LzssCompressText(benchmark::State& state) {
  LzssCodec codec;
  Bytes data = TextPayload(static_cast<size_t>(state.range(0)));
  size_t compressed_size = 0;
  for (auto _ : state) {
    auto out = codec.Compress(data);
    compressed_size = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
  state.counters["ratio"] =
      static_cast<double>(compressed_size) / static_cast<double>(data.size());
}
BENCHMARK(BM_LzssCompressText)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_LzssCompressRandom(benchmark::State& state) {
  LzssCodec codec;
  Bytes data = RandomPayload(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto out = codec.Compress(data);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssCompressRandom)->Arg(16384);

void BM_LzssDecompressText(benchmark::State& state) {
  LzssCodec codec;
  Bytes data = TextPayload(static_cast<size_t>(state.range(0)));
  Bytes compressed = codec.Compress(data).value();
  for (auto _ : state) {
    auto out = codec.Decompress(compressed);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_LzssDecompressText)->Arg(1024)->Arg(16384)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
