// Membership-churn study: the dynamic-connectivity scenario LIGLO was
// designed for (§2, §3.4). Nodes silently depart and later rejoin with
// fresh addresses via the rejoin protocol; the base node keeps querying.
// Reports per-round recall (answers reached / answers available) and
// completion for static vs self-reconfiguring BestPeer.

#include <cstdio>

#include "bench/bench_common.h"
#include "workload/churn.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

namespace {

ChurnOptions BaseOptions() {
  ChurnOptions o;
  o.node_count = 24;
  // A sparse overlay (2 starter peers) is where churn actually bites;
  // at 4+ the random overlay stays connected through any realistic
  // departure rate and recall pins at 1.0.
  o.starter_peers = 2;
  o.objects_per_node = FastMode() ? 50 : 200;
  o.matches_per_node = 5;
  o.rounds = 8;
  o.leave_fraction = 0.25;
  o.rejoin_fraction = 0.5;
  return o;
}

void Report(const char* label, const ChurnOptions& options) {
  auto result = RunChurnExperiment(options).value();
  PrintTitle(std::string("Churn rounds — ") + label);
  PrintRowHeader({"round", "online", "available", "received", "recall",
                  "ms"});
  for (size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    PrintRow(std::to_string(i + 1),
             {static_cast<double>(r.online_nodes),
              static_cast<double>(r.available_answers),
              static_cast<double>(r.received_answers), r.Recall(),
              ToMillis(r.completion)});
  }
  std::printf("mean recall %.3f, min recall %.3f\n", result.MeanRecall(),
              result.MinRecall());
}

}  // namespace

int main() {
  ChurnOptions bpr = BaseOptions();
  bpr.reconfigure = true;
  Report("BPR (reconfigure after each round)", bpr);

  ChurnOptions bps = BaseOptions();
  bps.reconfigure = false;
  Report("BPS (static peers)", bps);

  PrintTitle(
      "Churn intensity x overlay connectivity (BPR, mean/min recall over "
      "8 rounds)");
  PrintRowHeader({"leave\\peers", "k=1 mean", "k=1 min", "k=2 mean",
                  "k=2 min", "k=4 mean", "k=4 min"});
  for (double leave : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    std::vector<double> row;
    for (size_t sp : {1, 2, 4}) {
      ChurnOptions o = BaseOptions();
      o.starter_peers = sp;
      o.leave_fraction = leave;
      auto result = RunChurnExperiment(o).value();
      row.push_back(result.MeanRecall());
      row.push_back(result.MinRecall());
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.1f", leave);
    PrintRow(label, row);
  }
  std::printf(
      "\nExpected: recall stays high while rejoins offset departures; "
      "reconfiguration repairs the base's neighbourhood each round.\n");
  return 0;
}
