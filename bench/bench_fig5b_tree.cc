// Regenerates Figure 5(b): completion time vs tree depth (levels 1-5,
// fanout 2, 48 nodes at level 5 as in the paper) for CS (= MCS), BPS and
// BPR (paper §4.3).
//
// Paper shape: CS wins at level 1 (a star), then degenerates with depth
// because answers are relayed along the query path; BPR < BPS.

#include "bench/bench_common.h"

using namespace bestpeer;
using namespace bestpeer::bench;
using namespace bestpeer::workload;

int main() {
  PrintTitle(
      "Figure 5(b): Tree topology — completion time (ms) vs levels "
      "(fanout 2; level 5 truncated to 48 nodes)");
  const std::vector<Scheme> schemes = {Scheme::kMcs, Scheme::kBps,
                                       Scheme::kBpr};
  BenchReport report("fig5b_tree");
  std::vector<std::string> header = {"levels(nodes)"};
  for (auto s : schemes)
    header.push_back(s == Scheme::kMcs ? "CS" : SchemeName(s));
  report.SetColumns(header);
  PrintRowHeader(header);
  for (size_t levels = 1; levels <= 5; ++levels) {
    size_t nodes = TreeNodeCount(levels, 2);
    if (levels == 5) nodes = 48;  // The paper used 48 nodes at level 5.
    std::vector<double> row;
    for (Scheme scheme : schemes) {
      auto result = report.Run(SearchPhaseOptions(MakeTree(nodes, 2), scheme));
      row.push_back(result.MeanCompletionMs());
    }
    std::string label =
        std::to_string(levels) + " (" + std::to_string(nodes) + ")";
    PrintRow(label, row);
    report.AddRow(label, row);
  }
  std::printf(
      "\nExpected shape: CS best at level 1, degrades with depth; BPR < "
      "BPS throughout.\n");
  return report.Close();
}
