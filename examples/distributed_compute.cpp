// Computational-power sharing (§3.2.3): the requester ships an algorithm
// to the data. Five nodes hold daily stock quotes; an analyst sends a
// compute agent carrying a "max close above threshold" filter, and each
// provider runs it over its own store, returning only the few rows that
// matter. The raw datasets never cross the wire.
//
//   ./build/examples/distributed_compute

#include <cstdio>
#include <string>
#include <vector>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "util/strings.h"

using namespace bestpeer;

namespace {

// The shipped algorithm: keep "SYMBOL,close" rows whose close is above
// the threshold carried in the agent parameters.
Result<Bytes> AboveThresholdFilter(const Bytes& object, const Bytes& params) {
  double threshold = std::stod(ToString(params));
  std::string out;
  for (const auto& line : Split(ToString(object), '\n')) {
    auto cols = Split(line, ',');
    if (cols.size() != 2) continue;
    if (std::stod(cols[1]) > threshold) out += line + "\n";
  }
  return ToBytes(out);
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  core::BestPeerConfig config;
  config.max_direct_peers = 8;

  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  for (int i = 0; i < 5; ++i) {
    auto node = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                    .value();
    node->InitStorage({});
    // Every participant knows the algorithm by name; shipping its
    // parameters (and its code on first use) is the agent's job.
    node->mutable_filters().Register("above-threshold", AboveThresholdFilter)
        .ok();
    nodes.push_back(std::move(node));
  }
  // Star overlay around the analyst (node 0).
  for (int i = 1; i < 5; ++i) {
    nodes[0]->AddDirectPeerLocal(nodes[i]->node());
    nodes[i]->AddDirectPeerLocal(nodes[0]->node());
  }

  // The ComputeAgent class ships with the platform: mark it resident so
  // the wire only carries the agent's state (filter name + threshold).
  for (const auto& node : nodes) {
    infra.code_cache.Load(node->node(), core::kComputeAgentClass);
  }

  // Each provider holds ten years of quotes for one symbol.
  const char* symbols[] = {"ACME", "GLOBEX", "INITECH", "UMBRELLA"};
  size_t raw_bytes = 0;
  for (int i = 1; i < 5; ++i) {
    std::string csv;
    for (int day = 0; day < 2500; ++day) {
      double close = 90.0 + (day * 7 + i * 13) % 25;  // 90..114.
      csv += std::string(symbols[i - 1]) + "," + std::to_string(close) +
             "\n";
    }
    raw_bytes += csv.size();
    nodes[i]->ShareObject(static_cast<storm::ObjectId>(i), ToBytes(csv))
        .ok();
  }

  // Ship the filter with threshold 112: only a handful of rows survive.
  uint64_t query =
      nodes[0]->IssueCompute("above-threshold", ToBytes("112")).value();
  simulator.RunUntilIdle();

  const core::QuerySession* session = nodes[0]->FindSession(query);
  std::printf("compute agent returned %zu filtered object(s) from %zu "
              "providers in %s\n",
              session->total_answers(), session->responder_count(),
              FormatSimTime(session->completion_time()).c_str());
  std::printf("wire traffic for the whole job: %llu bytes "
              "(vs %zu bytes of raw data held by providers)\n",
              static_cast<unsigned long long>(network.total_wire_bytes()),
              raw_bytes);
  return 0;
}
