// LIGLO in action (§2, §3.4): peers with *temporary* network addresses
// stay recognizable across sessions. A laptop node disconnects, comes
// back with a different IP, and its peer still finds it by BPID through
// the rejoin protocol. A silently vanished peer is detected by the LIGLO
// server's periodic validity sweep.
//
//   ./build/examples/liglo_dynamic_ips

#include <cstdio>

#include "core/node.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;

int main() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  // A LIGLO server on a machine with a fixed, well-known address.
  bestpeer::net::SimTransport* server_transport = fleet.AddNode();
  NodeId server_id = server_transport->local();
  bestpeer::net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServerOptions server_options;
  server_options.sweep_interval = Millis(200);
  server_options.ping_timeout = Millis(20);
  liglo::LigloServer liglo_server(server_transport, &server_dispatcher,
                                  &infra.ip_directory, server_options);

  core::BestPeerConfig config;
  auto desktop = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                     .value();
  auto laptop = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                    .value();
  desktop->InitStorage({});
  laptop->InitStorage({});

  // Both register; the laptop gets the desktop as a starter peer.
  liglo::IpAddress desktop_ip = infra.ip_directory.AssignFresh(desktop->node());
  desktop->JoinNetwork(server_id, desktop_ip, nullptr);
  simulator.RunUntilIdle();
  liglo::IpAddress laptop_ip = infra.ip_directory.AssignFresh(laptop->node());
  laptop->JoinNetwork(server_id, laptop_ip, nullptr);
  simulator.RunUntilIdle();

  std::printf("desktop BPID=%s  laptop BPID=%s\n",
              desktop->bpid().ToString().c_str(),
              laptop->bpid().ToString().c_str());
  std::printf("laptop's starter peers: %zu (desktop adopted: %s)\n",
              laptop->peers().size(),
              laptop->peers().Contains(desktop->node()) ? "yes" : "no");

  // --- The laptop disconnects and returns with a NEW address. ---------
  network.SetOnline(laptop->node(), false);
  simulator.RunUntil(simulator.now() + Millis(100));
  network.SetOnline(laptop->node(), true);
  liglo::IpAddress new_ip = infra.ip_directory.AssignFresh(laptop->node());
  std::printf("\nlaptop reconnected: ip %u -> %u (BPID unchanged)\n",
              laptop_ip, new_ip);
  laptop->RejoinNetwork(new_ip, [](auto) {});
  simulator.RunUntilIdle();

  // The desktop re-resolves its peer by BPID via the laptop's LIGLO.
  desktop->liglo_client().Resolve(
      laptop->bpid(), [&](Result<liglo::LigloClient::ResolveOutcome> r) {
        if (r.ok() && r->state == liglo::PeerState::kOnline) {
          std::printf("desktop resolved laptop's new address: %u\n", r->ip);
        } else {
          std::printf("desktop could not resolve laptop\n");
        }
      });
  simulator.RunUntilIdle();

  // --- The desktop vanishes silently; the sweep notices. --------------
  std::printf("\ndesktop loses power (no goodbye)...\n");
  network.SetOnline(desktop->node(), false);
  liglo_server.StartSweep();
  simulator.RunUntil(simulator.now() + Seconds(1));
  liglo_server.StopSweep();
  simulator.RunUntilIdle();
  auto state = liglo_server.MemberState(desktop->bpid());
  std::printf("LIGLO's view of the desktop after the validity sweep: %s\n",
              state.ok() && state.value() == liglo::PeerState::kOffline
                  ? "offline"
                  : "online");
  std::printf("members online at the LIGLO server: %zu of %zu\n",
              liglo_server.online_count(), liglo_server.member_count());
  return 0;
}
