// Quickstart: build a small BestPeer network, share a few documents,
// run a keyword search through the mobile-agent engine, and print what
// came back and how fast.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;

int main() {
  // One simulated LAN, one shared infrastructure (agent registry, code
  // cache, address plane).
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  // Three nodes in a line: alice - bob - carol. Only alice issues
  // queries; bob and carol share data.
  core::BestPeerConfig config;
  config.max_direct_peers = 4;
  config.strategy = "maxcount";

  auto alice = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                   .value();
  auto bob = core::BestPeerNode::Create(fleet.AddNode(), &infra,
                                        config)
                 .value();
  auto carol = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                   .value();
  for (auto* node : {alice.get(), bob.get(), carol.get()}) {
    node->InitStorage({});  // In-memory StorM store.
  }
  alice->AddDirectPeerLocal(bob->node());
  bob->AddDirectPeerLocal(alice->node());
  bob->AddDirectPeerLocal(carol->node());
  carol->AddDirectPeerLocal(bob->node());

  // Share some documents.
  bob->ShareFile("p2p-notes.txt",
                 ToBytes("notes about peer to peer systems and agents"));
  bob->ShareFile("recipe.txt", ToBytes("how to cook rice"));
  carol->ShareFile("thesis.txt",
                   ToBytes("mobile agents in peer to peer networks"));
  carol->ShareFile("grocery.txt", ToBytes("milk eggs bread"));

  // Search for "agents": a StorM agent is cloned through the overlay,
  // scans each node's store, and sends matches straight back to alice.
  uint64_t query = alice->IssueSearch("agents").value();
  simulator.RunUntilIdle();

  const core::QuerySession* session = alice->FindSession(query);
  std::printf("query 'agents' finished in %s\n",
              FormatSimTime(session->completion_time()).c_str());
  std::printf("answers: %zu from %zu peers\n", session->total_answers(),
              session->responder_count());
  for (const auto& event : session->responses()) {
    std::printf("  peer %u responded after %s with %zu match(es) "
                "(%u overlay hop(s) away)\n",
                event.node,
                FormatSimTime(event.time - session->start_time()).c_str(),
                event.answers, event.hops);
  }

  // Self-reconfiguration: alice now keeps her best answerers close.
  alice->Reconfigure(query).ok();
  simulator.RunUntilIdle();
  std::printf("alice's direct peers after reconfiguration:");
  for (auto peer : alice->DirectPeerNodes()) std::printf(" %u", peer);
  std::printf("\n");
  return 0;
}
