// File sharing at Napster/Gnutella scale, BestPeer style: 16 peers on a
// sparse overlay, mp3-ish file names, repeated searches for the same
// artist. Demonstrates the headline feature: the network *reconfigures
// itself* so that the peers holding the music end up one hop away, and
// repeated searches get dramatically faster.
//
//   ./build/examples/file_sharing

#include <cstdio>
#include <string>
#include <vector>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"
#include "workload/topology.h"

using namespace bestpeer;

int main() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  // A 16-node line overlay: the worst case for a static network — the
  // record collectors live at the far end.
  const size_t kPeers = 16;
  workload::Topology topo = workload::MakeLine(kPeers);

  core::BestPeerConfig config;
  config.max_direct_peers = 4;
  config.strategy = "maxcount";
  config.answer_mode = core::AnswerMode::kIndicate;  // Names first.
  config.auto_fetch = true;   // Then download out-of-network.
  config.default_ttl = 32;    // Deep line: let the agent reach the end.

  std::vector<std::unique_ptr<core::BestPeerNode>> peers;
  for (size_t i = 0; i < kPeers; ++i) {
    auto node = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                    .value();
    node->InitStorage({});
    peers.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    peers[a]->AddDirectPeerLocal(peers[b]->node());
    peers[b]->AddDirectPeerLocal(peers[a]->node());
  }

  // Everyone shares some files; the two nodes at the far end of the line
  // are the Beatles collectors.
  for (size_t i = 0; i < kPeers; ++i) {
    for (int f = 0; f < 30; ++f) {
      peers[i]->ShareFile(
          "track-" + std::to_string(i) + "-" + std::to_string(f) + ".mp3",
          Bytes(1024, static_cast<uint8_t>(f)));
    }
  }
  for (size_t hot : {kPeers - 1, kPeers - 2}) {
    for (int f = 0; f < 5; ++f) {
      peers[hot]->ShareFile(
          "beatles-track-" + std::to_string(hot) + "-" + std::to_string(f) +
              ".mp3",
          ToBytes("beatles audio data " + std::to_string(f)));
    }
  }

  core::BestPeerNode& me = *peers[0];
  std::printf("searching for 'beatles' four times from peer 0...\n\n");
  for (int round = 1; round <= 4; ++round) {
    uint64_t query = me.IssueSearch("beatles").value();
    simulator.RunUntilIdle();
    const core::QuerySession* session = me.FindSession(query);
    std::printf("round %d: %zu files found and downloaded in %s", round,
                session->total_answers(),
                FormatSimTime(session->completion_time()).c_str());
    std::printf("   direct peers:");
    for (auto p : me.DirectPeerNodes()) std::printf(" %u", p);
    std::printf("\n");
    me.Reconfigure(query).ok();
    simulator.RunUntilIdle();
  }
  std::printf(
      "\nAfter round 1 the collectors (peers %zu, %zu) become direct "
      "peers, so later rounds skip the long overlay walk.\n",
      kPeers - 2, kPeers - 1);
  return 0;
}
