// Surviving churn: a sparse BestPeer overlay under continuous member
// turnover. Nodes silently vanish, others return with fresh addresses via
// the rejoin protocol, the LIGLO sweep keeps the membership view honest,
// isolated nodes replenish their peer lists, and the querying node
// reconfigures after every search. Watch recall stay high while ~25% of
// the network churns every round.
//
//   ./build/examples/network_churn

#include <cstdio>

#include "workload/churn.h"

using namespace bestpeer;
using namespace bestpeer::workload;

int main() {
  ChurnOptions options;
  options.node_count = 20;
  options.starter_peers = 2;  // Sparse: churn actually threatens recall.
  options.objects_per_node = 100;
  options.matches_per_node = 4;
  options.rounds = 10;
  options.leave_fraction = 0.25;
  options.rejoin_fraction = 0.6;
  options.reconfigure = true;
  options.seed = 7;

  auto result = RunChurnExperiment(options).value();

  std::printf("round | online | answers available | found | recall\n");
  std::printf("------+--------+-------------------+-------+-------\n");
  for (size_t i = 0; i < result.rounds.size(); ++i) {
    const auto& r = result.rounds[i];
    std::printf("%5zu | %6zu | %17zu | %5zu | %5.2f\n", i + 1,
                r.online_nodes, r.available_answers, r.received_answers,
                r.Recall());
  }
  std::printf("\nmean recall %.2f, worst round %.2f\n", result.MeanRecall(),
              result.MinRecall());
  std::printf(
      "Departures are silent (no goodbye); recall holds because (a) the "
      "LIGLO sweep detects the dead, (b) rejoiners re-resolve their peers "
      "by BPID and replace the missing ones, and (c) the base node "
      "re-adopts whoever actually answers.\n");
  return 0;
}
