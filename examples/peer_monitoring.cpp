// Peer monitoring (§3.4): "a node may particularly be interested in
// monitoring the updates of a set of peers. These cannot be realized
// with DNS alone." A subscriber watches a publisher's shared store; the
// publisher disconnects and returns with a different IP, but — because
// the subscriber tracks it by BPID through LIGLO — monitoring resumes on
// the same logical peer.
//
//   ./build/examples/peer_monitoring

#include <cstdio>

#include "core/node.h"
#include "liglo/liglo_server.h"
#include "net/dispatcher.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;

namespace {

const char* KindName(core::UpdateNotifyMessage::Kind kind) {
  switch (kind) {
    case core::UpdateNotifyMessage::Kind::kAdded:
      return "added";
    case core::UpdateNotifyMessage::Kind::kUpdated:
      return "updated";
    case core::UpdateNotifyMessage::Kind::kRemoved:
      return "removed";
  }
  return "?";
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  bestpeer::net::SimTransport* server_transport = fleet.AddNode();
  NodeId server_id = server_transport->local();
  bestpeer::net::Dispatcher server_dispatcher(server_transport);
  liglo::LigloServer liglo_server(server_transport, &server_dispatcher,
                                  &infra.ip_directory, {});

  core::BestPeerConfig config;
  auto publisher = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                       .value();
  auto subscriber = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                        .value();
  publisher->InitStorage({});
  subscriber->InitStorage({});
  publisher->JoinNetwork(
      server_id, infra.ip_directory.AssignFresh(publisher->node()), nullptr);
  simulator.RunUntilIdle();
  subscriber->JoinNetwork(
      server_id, infra.ip_directory.AssignFresh(subscriber->node()),
      nullptr);
  simulator.RunUntilIdle();

  // Subscribe to the publisher's store changes.
  subscriber->WatchPeer(
      publisher->node(),
      [&](NodeId, core::UpdateNotifyMessage::Kind kind,
          storm::ObjectId id) {
        std::printf("  [subscriber] object %llu %s at peer %s\n",
                    static_cast<unsigned long long>(id), KindName(kind),
                    publisher->bpid().ToString().c_str());
      });
  simulator.RunUntilIdle();

  std::printf("publisher shares and edits its price list...\n");
  publisher->ShareObject(1, ToBytes("widget price: 10")).ok();
  publisher->UpdateObject(1, ToBytes("widget price: 12")).ok();
  simulator.RunUntilIdle();

  // The publisher reconnects under a new address; its BPID (and the
  // subscription at the application level) survives.
  std::printf("\npublisher reconnects with a new IP...\n");
  liglo::IpAddress new_ip =
      infra.ip_directory.AssignFresh(publisher->node());
  publisher->RejoinNetwork(new_ip, nullptr);
  simulator.RunUntilIdle();
  subscriber->liglo_client().Resolve(
      publisher->bpid(), [&](Result<liglo::LigloClient::ResolveOutcome> r) {
        if (r.ok()) {
          std::printf("  [subscriber] same BPID %s now at ip %u\n",
                      publisher->bpid().ToString().c_str(), r->ip);
        }
      });
  simulator.RunUntilIdle();

  publisher->UpdateObject(1, ToBytes("widget price: 9 (sale!)")).ok();
  publisher->UnshareObject(1).ok();
  simulator.RunUntilIdle();

  std::printf(
      "\nDNS could not have done this: the publisher's address changed, "
      "but the BPID kept it recognizable as the same peer.\n");
  return 0;
}
