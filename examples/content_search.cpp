// Content-based sharing with access control: active objects (§3.2.2).
//
// A hospital node shares a patient report as an *active object*: public
// requesters get a redacted rendering, the owning physician sees
// everything. The owner-defined "active node" (executable black box)
// does the filtering at the provider — requesters never see raw data.
//
//   ./build/examples/content_search

#include <cstdio>

#include "core/node.h"
#include "net/sim_transport.h"
#include "sim/simulator.h"

using namespace bestpeer;

int main() {
  sim::Simulator simulator;
  sim::SimNetwork network(&simulator, sim::NetworkOptions{});
  bestpeer::net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  core::BestPeerConfig config;
  auto hospital = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                      .value();
  auto researcher = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                        .value();
  auto physician = core::BestPeerNode::Create(fleet.AddNode(), &infra, config)
                       .value();
  hospital->InitStorage({});
  hospital->AddDirectPeerLocal(researcher->node());
  researcher->AddDirectPeerLocal(hospital->node());
  hospital->AddDirectPeerLocal(physician->node());
  physician->AddDirectPeerLocal(hospital->node());

  // The owner registers the active node and builds the active object:
  // a mix of plain data elements and a filtered element.
  hospital->active_nodes()
      .Register("redact-secrets", core::RedactSecretsActiveNode)
      .ok();
  core::ActiveObject report;
  report.AddDataElement(ToBytes("PATIENT REPORT 2026-07\n"));
  report.AddDataElement(ToBytes("Diagnosis: seasonal allergy.\n"));
  report.AddActiveElement(
      "redact-secrets",
      ToBytes("Identity: [SECRET]Jane Doe, NRIC S1234567A[/SECRET]\n"));
  report.AddDataElement(ToBytes("Treatment: antihistamines.\n"));
  hospital->ShareActiveObject("report-2026-07", report);

  auto print_view = [](const char* who, Result<Bytes> content) {
    if (!content.ok()) {
      std::printf("%s: error %s\n", who, content.status().ToString().c_str());
      return;
    }
    std::printf("--- view for %s ---\n%s\n", who,
                ToString(content.value()).c_str());
  };

  // A researcher (public access) and the physician (owner access)
  // request the same object; the hospital renders per access level.
  researcher->RequestActiveObject(
      hospital->node(), "report-2026-07", core::AccessLevel::kPublic,
      [&](Result<Bytes> content) {
        print_view("researcher (public)", std::move(content));
      });
  physician->RequestActiveObject(
      hospital->node(), "report-2026-07", core::AccessLevel::kOwner,
      [&](Result<Bytes> content) {
        print_view("physician (owner)", std::move(content));
      });
  simulator.RunUntilIdle();

  std::printf(
      "The provider executed the filtering; the sensitive span never "
      "crossed the wire for the public requester.\n");
  return 0;
}
