#ifndef BESTPEER_NET_DISPATCHER_H_
#define BESTPEER_NET_DISPATCHER_H_

#include <cstdint>
#include <map>

#include "net/transport.h"

namespace bestpeer::net {

/// Routes a node's incoming messages to per-type handlers, so several
/// protocol layers (agent engine, LIGLO client, query protocol, ...) can
/// share one endpoint. Installing the dispatcher claims the transport's
/// handler slot.
class Dispatcher {
 public:
  /// Claims `transport`'s deliver callback (transport must outlive this).
  explicit Dispatcher(Transport* transport);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Registers the handler for one message type (replaces any previous).
  void Register(uint32_t type, Transport::Handler handler);

  /// Handler for messages whose type has no registered handler.
  void RegisterDefault(Transport::Handler handler);

  NodeId node() const { return node_; }
  uint64_t unhandled_count() const { return unhandled_; }

 private:
  void Dispatch(const Message& msg);

  NodeId node_;
  std::map<uint32_t, Transport::Handler> handlers_;
  Transport::Handler default_handler_;
  uint64_t unhandled_ = 0;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_DISPATCHER_H_
