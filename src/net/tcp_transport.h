#ifndef BESTPEER_NET_TCP_TRANSPORT_H_
#define BESTPEER_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/backoff.h"
#include "net/frame.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "util/metrics.h"
#include "util/status.h"

namespace bestpeer::net {

class TcpNet;

/// Tuning knobs for the real TCP backend.
struct TcpOptions {
  /// Per-peer outbound queue bound (messages). Sends beyond this are
  /// dropped and counted in net.tx_dropped — mirroring the simulator's
  /// fire-and-forget drop semantics instead of blocking protocol code.
  size_t max_queue_msgs = 1024;
  size_t max_frame_payload = kMaxFramePayload;
  SimTime reconnect_base = Millis(10);
  SimTime reconnect_max = Seconds(2);
  /// LinkProfile reported by Transport::link(); the shipping cost model
  /// reads it, so keep it at the simulated LAN's parameters for parity.
  LinkProfile link;
  /// Metrics sink (not owned; may be nullptr). Only touched on the
  /// reactor thread — the PR-1 registry is not thread-safe.
  metrics::Registry* metrics = nullptr;
  /// Flight recorder (not owned; may be nullptr). Send/deliver/drop
  /// events are recorded on the reactor thread only, so the ring stays
  /// single-threaded exactly like in the simulator.
  obs::FlightRecorder* flight = nullptr;
  /// Distributed-tracing span recorder (not owned; may be nullptr).
  /// Shared by every node on this fabric and touched only on the reactor
  /// thread. When set, CPU tasks and frame deliveries of sampled flows
  /// record spans, and outgoing frames of sampled flows carry the BPF1
  /// sampled flag so downstream processes record theirs too.
  trace::TraceRecorder* trace = nullptr;
  /// First NodeId this fabric hosts locally. AddNode() hands out
  /// node_base, node_base+1, ... — a multi-process fleet gives each
  /// process a disjoint id range over one shared port plan.
  NodeId node_base = 0;
  /// When nonzero, node k listens on port_base + k and *every* node id —
  /// local or not — is addressable at port_base + id on loopback. Zero
  /// (the default) keeps the single-process behaviour: kernel-assigned
  /// ports, only local nodes addressable.
  uint16_t port_base = 0;
};

/// Transport over real loopback TCP sockets, one listening socket per
/// node, multiplexed on ONE shared reactor thread. Because every
/// delivery, timer and RunCpu completion fires on that single thread,
/// protocol stacks keep the simulator's single-threaded execution model
/// while the bytes travel through the kernel for real.
///
/// Connections are dialed on demand (first Send to a peer), framed with
/// net::Frame (64-byte header + payload), and redialed with exponential
/// backoff after failures; messages queued on a dead peer survive up to
/// the queue bound.
class TcpTransport final : public Transport {
 public:
  NodeId local() const override { return node_; }
  void Send(NodeId dst, uint32_t type, Bytes payload,
            size_t extra_wire_bytes = 0, FlowId flow = 0) override;
  void SetHandler(Handler handler) override;
  Clock& clock() override;
  void RunCpu(SimTime cost, std::function<void()> done,
              const char* name = nullptr, FlowId flow = 0,
              CpuArgs args = {}) override;
  void RegisterTypeName(uint32_t type, std::string name) override;
  bool IsOnline(NodeId node) const override;
  LinkProfile link() const override;
  obs::FlightRecorder* flight() const override;
  trace::TraceRecorder* trace() const override;

  /// The loopback TCP port this node listens on.
  uint16_t port() const { return port_; }
  uint64_t tx_dropped() const {
    return tx_dropped_.load(std::memory_order_relaxed);
  }
  uint64_t rx_messages() const {
    return rx_messages_.load(std::memory_order_relaxed);
  }

 private:
  friend class TcpNet;

  /// One outbound connection (this node dialing `dst`).
  struct PeerConn {
    int fd = -1;
    bool connecting = false;
    std::deque<Bytes> queue;  // Encoded frames awaiting write.
    size_t write_off = 0;     // Progress into queue.front().
    Backoff backoff{Millis(10), Seconds(2)};
    bool retry_scheduled = false;
  };
  /// One accepted inbound connection (byte stream + frame decoder).
  struct InConn {
    int fd = -1;
    FrameDecoder decoder;
    explicit InConn(size_t max_payload) : decoder(max_payload) {}
  };

  TcpTransport(TcpNet* net, NodeId node, uint16_t port, int listen_fd);

  // All private methods below run on the reactor thread.
  void SendOnReactor(NodeId dst, uint32_t type, Bytes payload,
                     size_t extra_wire_bytes, FlowId flow);
  void StartListening();
  void OnAcceptable();
  void OnInboundReadable(int fd);
  void CloseInbound(int fd);
  void EnsureConnected(NodeId dst, PeerConn& peer);
  void OnOutboundWritable(NodeId dst);
  void FlushQueue(NodeId dst, PeerConn& peer);
  void FailOutbound(NodeId dst, PeerConn& peer);
  void CloseAll();
  void Deliver(const FrameHeader& header, Bytes payload);
  void RecordMsgEvent(obs::EventType event, obs::DropCause cause,
                      uint32_t type, NodeId dst, FlowId flow, uint64_t a,
                      uint64_t b);

  TcpNet* net_;
  NodeId node_;
  uint16_t port_;
  int listen_fd_;
  Handler handler_;
  std::map<NodeId, PeerConn> peers_;
  std::map<int, std::unique_ptr<InConn>> inbound_;
  std::map<uint32_t, std::string> type_names_;
  SimTime cpu_free_at_ = 0;
  uint64_t next_msg_id_ = 1;

  std::atomic<uint64_t> tx_dropped_{0};
  std::atomic<uint64_t> rx_messages_{0};

  metrics::Counter* tx_msgs_c_ = metrics::Counter::Noop();
  metrics::Counter* tx_bytes_c_ = metrics::Counter::Noop();
  metrics::Counter* tx_dropped_c_ = metrics::Counter::Noop();
  metrics::Counter* rx_msgs_c_ = metrics::Counter::Noop();
  metrics::Counter* rx_bytes_c_ = metrics::Counter::Noop();
  metrics::Counter* rx_dropped_c_ = metrics::Counter::Noop();
  metrics::Counter* frame_errors_c_ = metrics::Counter::Noop();
  metrics::Counter* connects_c_ = metrics::Counter::Noop();
  metrics::Counter* reconnects_c_ = metrics::Counter::Noop();
};

/// Clock over the shared reactor: real microseconds since TcpNet
/// construction, timers on the reactor's timer heap.
class TcpClock final : public Clock {
 public:
  explicit TcpClock(Reactor* reactor) : reactor_(reactor) {}
  SimTime now() const override { return reactor_->now_us(); }
  void ScheduleAt(SimTime time, std::function<void()> fn) override;
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override;

 private:
  Reactor* reactor_;
};

/// The loopback fabric: owns the reactor thread, the NodeId -> port
/// address book and the shared net.* metrics. Add every node before
/// Start(); drive all post-Start interaction with protocol objects
/// through Run() so it executes on the reactor thread.
class TcpNet {
 public:
  explicit TcpNet(TcpOptions options = {});
  ~TcpNet();
  TcpNet(const TcpNet&) = delete;
  TcpNet& operator=(const TcpNet&) = delete;

  /// Creates a node with a listening socket on 127.0.0.1:0 (kernel-
  /// assigned port). Must be called before Start().
  Result<TcpTransport*> AddNode();

  void Start();
  /// Closes every socket on the reactor thread, then joins it.
  void Stop();

  /// Runs `fn` on the reactor thread and waits — the safe way to touch
  /// protocol objects (issue queries, read sessions) while the net runs.
  void Run(std::function<void()> fn) { reactor_.Run(std::move(fn)); }

  /// Marks a node online/offline. Offline nodes drop traffic in both
  /// directions (counted), like the simulator. Thread-safe; only local
  /// nodes can be toggled — remote fleet nodes are always reported up
  /// (their process drops inbound traffic itself when marked offline).
  void SetOnline(NodeId node, bool online);
  bool IsOnline(NodeId node) const;

  /// True when `node` is hosted by this TcpNet (in
  /// [node_base, node_base + node_count())).
  bool IsLocal(NodeId node) const;
  /// True when this fabric can put bytes on the wire toward `node`:
  /// every local node, plus — under a fleet port plan — every id.
  bool Addressable(NodeId node) const;

  uint16_t PortOf(NodeId node) const;
  NodeId node_base() const { return options_.node_base; }
  size_t node_count() const { return nodes_.size(); }
  Reactor& reactor() { return reactor_; }
  TcpClock& clock() { return clock_; }
  const TcpOptions& options() const { return options_; }
  metrics::Registry* metrics() const { return options_.metrics; }

 private:
  friend class TcpTransport;

  TcpOptions options_;
  Reactor reactor_;
  TcpClock clock_;
  std::vector<std::unique_ptr<TcpTransport>> nodes_;
  // Indexed by NodeId; atomics so main-thread SetOnline/IsOnline race
  // cleanly with reactor-thread drop checks.
  std::deque<std::atomic<bool>> online_;
  bool started_ = false;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_TCP_TRANSPORT_H_
