#ifndef BESTPEER_NET_BACKOFF_H_
#define BESTPEER_NET_BACKOFF_H_

#include <algorithm>

#include "util/sim_time.h"

namespace bestpeer::net {

/// Exponential reconnect backoff: base, 2*base, 4*base, ... capped at
/// `max`. Deterministic (no jitter) — the in-process loopback runtime has
/// no thundering-herd problem, and determinism keeps tests stable.
class Backoff {
 public:
  Backoff(SimTime base, SimTime max) : base_(base), max_(max) {}

  /// Delay to wait before the next attempt; advances the attempt count.
  SimTime Next() {
    SimTime delay = base_;
    // Shift with saturation: attempts beyond the cap all return max_.
    for (int i = 0; i < attempt_ && delay < max_; ++i) delay *= 2;
    ++attempt_;
    return std::min(delay, max_);
  }

  void Reset() { attempt_ = 0; }
  int attempts() const { return attempt_; }

 private:
  SimTime base_;
  SimTime max_;
  int attempt_ = 0;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_BACKOFF_H_
