#ifndef BESTPEER_NET_SIM_TRANSPORT_H_
#define BESTPEER_NET_SIM_TRANSPORT_H_

#include <map>
#include <memory>

#include "net/transport.h"
#include "sim/network.h"

namespace bestpeer::net {

/// Clock adapter over the discrete-event simulator.
class SimClock final : public Clock {
 public:
  explicit SimClock(sim::Simulator* sim) : sim_(sim) {}

  SimTime now() const override { return sim_->now(); }
  void ScheduleAt(SimTime t, std::function<void()> fn) override {
    sim_->ScheduleAt(t, std::move(fn));
  }
  void ScheduleAfter(SimTime delay, std::function<void()> fn) override {
    sim_->ScheduleAfter(delay, std::move(fn));
  }

 private:
  sim::Simulator* sim_;
};

/// A node's endpoint on the simulated LAN: a pure 1:1 forwarding adapter
/// over (SimNetwork, NodeId). Every call maps onto exactly the SimNetwork /
/// Simulator / CpuModel call protocol code made before the transport layer
/// existed — same event ordering, same rng draws — so schedules stay
/// bit-identical to the pre-transport simulator (the parity contract in
/// DESIGN.md §8 that keeps all BENCH baselines unchanged).
class SimTransport final : public Transport {
 public:
  /// `network` must outlive this; `node` must already exist on it.
  SimTransport(sim::SimNetwork* network, NodeId node)
      : network_(network), node_(node), clock_(&network->simulator()) {}

  NodeId local() const override { return node_; }

  void Send(NodeId dst, uint32_t type, Bytes payload,
            size_t extra_wire_bytes = 0, FlowId flow = 0) override {
    network_->Send(node_, dst, type, std::move(payload), extra_wire_bytes,
                   flow);
  }

  void SetHandler(Handler handler) override {
    network_->SetHandler(node_, std::move(handler));
  }

  Clock& clock() override { return clock_; }

  void RunCpu(SimTime cost, std::function<void()> done,
              const char* name = nullptr, FlowId flow = 0,
              CpuArgs args = {}) override {
    network_->Cpu(node_).Submit(cost, std::move(done), name, flow,
                                std::move(args));
  }

  void RegisterTypeName(uint32_t type, std::string name) override {
    network_->RegisterTypeName(type, std::move(name));
  }

  bool IsOnline(NodeId node) const override {
    return network_->IsOnline(node);
  }

  LinkProfile link() const override {
    const sim::NetworkOptions& o = network_->options();
    return LinkProfile{o.latency, o.bytes_per_us, o.header_overhead};
  }

  trace::TraceRecorder* trace() const override {
    return network_->simulator().trace();
  }

  obs::FlightRecorder* flight() const override {
    return network_->simulator().flight();
  }

  sim::SimNetwork* network() { return network_; }

 private:
  sim::SimNetwork* network_;
  NodeId node_;
  SimClock clock_;
};

/// Owns one SimTransport per node, for harness code (experiments, tests,
/// benches) that builds whole topologies: `fleet.AddNode()` adds a node to
/// the network and returns its endpoint in one step.
class SimTransportFleet {
 public:
  explicit SimTransportFleet(sim::SimNetwork* network) : network_(network) {}

  /// Adds a node to the network and returns its transport.
  SimTransport* AddNode(int cpu_threads = 0) {
    return For(network_->AddNode(cpu_threads));
  }

  /// The transport for an existing node (created on first use).
  SimTransport* For(NodeId node) {
    auto& slot = transports_[node];
    if (!slot) slot = std::make_unique<SimTransport>(network_, node);
    return slot.get();
  }

 private:
  sim::SimNetwork* network_;
  std::map<NodeId, std::unique_ptr<SimTransport>> transports_;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_SIM_TRANSPORT_H_
