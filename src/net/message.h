#ifndef BESTPEER_NET_MESSAGE_H_
#define BESTPEER_NET_MESSAGE_H_

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"
#include "util/ids.h"

namespace bestpeer::net {

/// Fixed per-message framing overhead, in bytes. This single constant is
/// used by *both* transports: the simulator adds it to every message's
/// wire_size, and the TCP backend's frame header (see net/frame.h) is laid
/// out to occupy exactly this many bytes on the socket — so simulated and
/// real byte counts stay directly comparable (DESIGN.md §4).
constexpr size_t kFrameOverheadBytes = 64;

/// A datagram as seen by protocol code, independent of the transport that
/// carried it. The simulator's SimMessage is an alias of this type.
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  /// Protocol-defined tag; each stack defines its own message-type enum.
  uint32_t type = 0;
  /// Application payload (already compressed if the protocol compresses).
  Bytes payload;
  /// Bytes charged to the wire (payload + header + any modelled extras
  /// such as shipped agent classes).
  size_t wire_size = 0;
  /// Unique id, assigned by the transport at send time.
  uint64_t id = 0;
  /// Logical flow (query/agent id) the message belongs to; 0 = none.
  /// Carried so trace spans of one query stitch together across nodes.
  FlowId flow = 0;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_MESSAGE_H_
