#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "obs/flight_recorder.h"

namespace bestpeer::net {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---------------------------------------------------------------------------
// TcpClock

void TcpClock::ScheduleAt(SimTime time, std::function<void()> fn) {
  if (reactor_->OnReactorThread()) {
    reactor_->AddTimerAt(time, std::move(fn));
    return;
  }
  reactor_->Post([r = reactor_, time, fn = std::move(fn)]() mutable {
    r->AddTimerAt(time, std::move(fn));
  });
}

void TcpClock::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  if (reactor_->OnReactorThread()) {
    reactor_->AddTimerAt(reactor_->now_us() + delay, std::move(fn));
    return;
  }
  // Deadline is computed on the reactor thread so queueing delay does not
  // shift it twice.
  reactor_->Post([r = reactor_, delay, fn = std::move(fn)]() mutable {
    r->AddTimerAt(r->now_us() + delay, std::move(fn));
  });
}

// ---------------------------------------------------------------------------
// TcpTransport

TcpTransport::TcpTransport(TcpNet* net, NodeId node, uint16_t port,
                           int listen_fd)
    : net_(net), node_(node), port_(port), listen_fd_(listen_fd) {
  if (metrics::Registry* reg = net_->metrics()) {
    // Fabric-wide counters: every transport holds the same handles, and all
    // increments happen on the one reactor thread.
    tx_msgs_c_ = reg->GetCounter("net.tx_msgs");
    tx_bytes_c_ = reg->GetCounter("net.tx_bytes");
    tx_dropped_c_ = reg->GetCounter("net.tx_dropped");
    rx_msgs_c_ = reg->GetCounter("net.rx_msgs");
    rx_bytes_c_ = reg->GetCounter("net.rx_bytes");
    rx_dropped_c_ = reg->GetCounter("net.rx_dropped");
    frame_errors_c_ = reg->GetCounter("net.frame_errors");
    connects_c_ = reg->GetCounter("net.connects");
    reconnects_c_ = reg->GetCounter("net.reconnects");
  }
}

void TcpTransport::Send(NodeId dst, uint32_t type, Bytes payload,
                        size_t extra_wire_bytes, FlowId flow) {
  Reactor& reactor = net_->reactor();
  if (reactor.OnReactorThread()) {
    SendOnReactor(dst, type, std::move(payload), extra_wire_bytes, flow);
    return;
  }
  reactor.Post([this, dst, type, payload = std::move(payload),
                extra_wire_bytes, flow]() mutable {
    SendOnReactor(dst, type, std::move(payload), extra_wire_bytes, flow);
  });
}

void TcpTransport::SetHandler(Handler handler) {
  handler_ = std::move(handler);
}

Clock& TcpTransport::clock() { return net_->clock(); }

void TcpTransport::RunCpu(SimTime cost, std::function<void()> done,
                          const char* name, FlowId flow, CpuArgs args) {
  Reactor& reactor = net_->reactor();
  auto task = [this, cost, done = std::move(done), name, flow,
               args = std::move(args)]() mutable {
    // Serialize CPU work per node like sim::CpuModel: each task starts no
    // earlier than the previous one finished.
    const SimTime now = net_->reactor().now_us();
    SimTime start = std::max(now, cpu_free_at_);
    cpu_free_at_ = start + cost;
    trace::TraceRecorder* recorder = net_->options().trace;
    if (recorder != nullptr && name != nullptr &&
        (flow != 0 ? recorder->Sampled(flow) : recorder->sample_all())) {
      // Same span shape as sim::CpuModel::Submit, so critical-path
      // analysis and bpstitch read both backends identically.
      trace::Span span;
      span.name = name;
      span.cat = "cpu";
      span.tid = node_;
      span.ts = start;
      span.dur = cost;
      span.flow = flow;
      span.args = std::move(args);
      if (start > now) {
        span.args.emplace_back("qwait", static_cast<uint64_t>(start - now));
      }
      recorder->RecordSpan(std::move(span));
    }
    net_->reactor().AddTimerAt(cpu_free_at_, std::move(done));
  };
  if (reactor.OnReactorThread()) {
    task();
  } else {
    reactor.Post(std::move(task));
  }
}

void TcpTransport::RegisterTypeName(uint32_t type, std::string name) {
  type_names_[type] = std::move(name);
}

bool TcpTransport::IsOnline(NodeId node) const {
  return net_->IsOnline(node);
}

LinkProfile TcpTransport::link() const { return net_->options().link; }

obs::FlightRecorder* TcpTransport::flight() const {
  return net_->options().flight;
}

trace::TraceRecorder* TcpTransport::trace() const {
  return net_->options().trace;
}

void TcpTransport::RecordMsgEvent(obs::EventType event, obs::DropCause cause,
                                  uint32_t type, NodeId dst, FlowId flow,
                                  uint64_t a, uint64_t b) {
  obs::FlightRecorder* recorder = net_->options().flight;
  if (recorder == nullptr) return;
  obs::FlightEvent e;
  e.ts = net_->reactor().now_us();
  e.type = event;
  e.cause = cause;
  e.msg_type = type;
  e.node = node_;
  e.peer = dst;
  e.flow = flow;
  e.a = a;
  e.b = b;
  recorder->Record(e);
}

void TcpTransport::SendOnReactor(NodeId dst, uint32_t type, Bytes payload,
                                 size_t extra_wire_bytes, FlowId flow) {
  if (!net_->Addressable(dst) || !net_->IsOnline(dst) ||
      !net_->IsOnline(node_) ||
      payload.size() > net_->options().max_frame_payload) {
    tx_dropped_.fetch_add(1, std::memory_order_relaxed);
    tx_dropped_c_->Increment();
    RecordMsgEvent(obs::EventType::kMsgDrop,
                   !net_->IsOnline(node_) ? obs::DropCause::kSenderOffline
                                          : obs::DropCause::kReceiverOffline,
                   type, dst, flow, payload.size(), 0);
    return;
  }
  FrameHeader header;
  header.type = type;
  header.src = node_;
  header.dst = dst;
  header.flow = flow;
  header.extra_wire = static_cast<uint32_t>(extra_wire_bytes);
  trace::TraceRecorder* recorder = net_->options().trace;
  if (recorder != nullptr && flow != 0) {
    bool first = false;
    if (recorder->Sampled(flow, &first)) {
      // Propagate the head-based decision: the receiving process sees the
      // flag and records spans for this flow too (DESIGN.md §12).
      header.flags |= kFrameFlagSampled;
      header.sent_at_us = net_->reactor().now_us();
      if (first) {
        RecordMsgEvent(obs::EventType::kTraceSampled, obs::DropCause::kNone,
                       type, dst, flow, /*a=*/0, /*b=*/0);
      }
    }
  }
  Bytes frame = EncodeFrame(header, payload);

  auto [it, inserted] = peers_.try_emplace(dst);
  PeerConn& peer = it->second;
  if (inserted) {
    peer.backoff = Backoff(net_->options().reconnect_base,
                           net_->options().reconnect_max);
  }
  if (peer.queue.size() >= net_->options().max_queue_msgs) {
    tx_dropped_.fetch_add(1, std::memory_order_relaxed);
    tx_dropped_c_->Increment();
    // Backpressure drop: neither end is offline, the queue is just full.
    RecordMsgEvent(obs::EventType::kMsgDrop, obs::DropCause::kNone, type,
                   dst, flow, payload.size(), peer.queue.size());
    return;
  }
  tx_msgs_c_->Increment();
  tx_bytes_c_->Add(frame.size() + extra_wire_bytes);
  RecordMsgEvent(obs::EventType::kMsgSend, obs::DropCause::kNone, type, dst,
                 flow, payload.size(), frame.size() + extra_wire_bytes);
  peer.queue.push_back(std::move(frame));
  EnsureConnected(dst, peer);
  if (peer.fd >= 0 && !peer.connecting) FlushQueue(dst, peer);
}

void TcpTransport::StartListening() {
  net_->reactor().AddFd(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                        [this](uint32_t events) {
                          if (events & Reactor::kReadable) OnAcceptable();
                        });
}

void TcpTransport::OnAcceptable() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; epoll re-arms us.
    SetNonBlocking(fd);
    SetNoDelay(fd);
    auto conn = std::make_unique<InConn>(net_->options().max_frame_payload);
    conn->fd = fd;
    inbound_[fd] = std::move(conn);
    net_->reactor().AddFd(fd, /*want_read=*/true, /*want_write=*/false,
                          [this, fd](uint32_t events) {
                            if (events & Reactor::kError) {
                              CloseInbound(fd);
                              return;
                            }
                            if (events & Reactor::kReadable) {
                              OnInboundReadable(fd);
                            }
                          });
  }
}

void TcpTransport::OnInboundReadable(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  InConn* conn = it->second.get();
  uint8_t buf[65536];
  bool closed = false;
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    closed = true;  // EOF or hard error; deliver buffered frames first.
    break;
  }
  FrameHeader header;
  Bytes payload;
  for (;;) {
    auto next = conn->decoder.Next(&header, &payload);
    if (!next.ok()) {
      frame_errors_c_->Increment();
      CloseInbound(fd);
      return;
    }
    if (!next.value()) break;
    if (header.dst != node_) {
      frame_errors_c_->Increment();
      continue;
    }
    if (!net_->IsOnline(node_) || !net_->Addressable(header.src) ||
        !net_->IsOnline(header.src)) {
      rx_dropped_c_->Increment();
      continue;
    }
    Deliver(header, std::move(payload));
    // The handler may have torn connections down; re-check before
    // touching the decoder again.
    if (inbound_.find(fd) == inbound_.end()) return;
  }
  if (closed) CloseInbound(fd);
}

void TcpTransport::CloseInbound(int fd) {
  auto it = inbound_.find(fd);
  if (it == inbound_.end()) return;
  net_->reactor().RemoveFd(fd);
  ::close(fd);
  inbound_.erase(it);
}

void TcpTransport::EnsureConnected(NodeId dst, PeerConn& peer) {
  if (peer.fd >= 0 || peer.retry_scheduled) return;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    FailOutbound(dst, peer);
    return;
  }
  SetNonBlocking(fd);
  SetNoDelay(fd);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(net_->PortOf(dst));
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc == 0) {
    peer.fd = fd;
    peer.connecting = false;
    if (peer.backoff.attempts() > 0) reconnects_c_->Increment();
    connects_c_->Increment();
    peer.backoff.Reset();
    net_->reactor().AddFd(fd, /*want_read=*/true, /*want_write=*/false,
                          [this, dst](uint32_t events) {
                            (void)events;
                            OnOutboundWritable(dst);
                          });
    return;
  }
  if (errno != EINPROGRESS) {
    ::close(fd);
    FailOutbound(dst, peer);
    return;
  }
  peer.fd = fd;
  peer.connecting = true;
  net_->reactor().AddFd(fd, /*want_read=*/true, /*want_write=*/true,
                        [this, dst](uint32_t events) {
                          (void)events;
                          OnOutboundWritable(dst);
                        });
}

void TcpTransport::OnOutboundWritable(NodeId dst) {
  auto it = peers_.find(dst);
  if (it == peers_.end()) return;
  PeerConn& peer = it->second;
  if (peer.fd < 0) return;
  if (peer.connecting) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(peer.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      FailOutbound(dst, peer);
      return;
    }
    peer.connecting = false;
    if (peer.backoff.attempts() > 0) reconnects_c_->Increment();
    connects_c_->Increment();
    peer.backoff.Reset();
  }
  // Detect a peer that closed on us: level-triggered readability on an
  // outbound socket means EOF or an error (we never expect data back).
  char probe;
  ssize_t n = ::recv(peer.fd, &probe, 1, MSG_DONTWAIT | MSG_PEEK);
  if (n == 0) {
    FailOutbound(dst, peer);
    return;
  }
  FlushQueue(dst, peer);
}

void TcpTransport::FlushQueue(NodeId dst, PeerConn& peer) {
  while (!peer.queue.empty()) {
    const Bytes& front = peer.queue.front();
    ssize_t n = ::write(peer.fd, front.data() + peer.write_off,
                        front.size() - peer.write_off);
    if (n > 0) {
      peer.write_off += static_cast<size_t>(n);
      if (peer.write_off == front.size()) {
        peer.queue.pop_front();
        peer.write_off = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      net_->reactor().ModFd(peer.fd, /*want_read=*/true, /*want_write=*/true);
      return;
    }
    FailOutbound(dst, peer);
    return;
  }
  net_->reactor().ModFd(peer.fd, /*want_read=*/true, /*want_write=*/false);
}

void TcpTransport::FailOutbound(NodeId dst, PeerConn& peer) {
  if (peer.fd >= 0) {
    net_->reactor().RemoveFd(peer.fd);
    ::close(peer.fd);
    peer.fd = -1;
  }
  peer.connecting = false;
  // A partially written frame never completed on the receiver (it tears the
  // whole connection down on truncation), so resend it from the start.
  peer.write_off = 0;
  if (peer.queue.empty() || peer.retry_scheduled) return;
  peer.retry_scheduled = true;
  SimTime delay = peer.backoff.Next();
  net_->reactor().AddTimerAt(net_->reactor().now_us() + delay,
                             [this, dst]() {
                               auto it = peers_.find(dst);
                               if (it == peers_.end()) return;
                               PeerConn& p = it->second;
                               p.retry_scheduled = false;
                               if (p.queue.empty()) return;
                               EnsureConnected(dst, p);
                               if (p.fd >= 0 && !p.connecting) {
                                 FlushQueue(dst, p);
                               }
                             });
}

void TcpTransport::CloseAll() {
  Reactor& reactor = net_->reactor();
  if (listen_fd_ >= 0) {
    reactor.RemoveFd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& [dst, peer] : peers_) {
    (void)dst;
    if (peer.fd >= 0) {
      reactor.RemoveFd(peer.fd);
      ::close(peer.fd);
      peer.fd = -1;
    }
    peer.queue.clear();
  }
  for (auto& [fd, conn] : inbound_) {
    (void)conn;
    reactor.RemoveFd(fd);
    ::close(fd);
  }
  inbound_.clear();
}

void TcpTransport::Deliver(const FrameHeader& header, Bytes payload) {
  rx_messages_.fetch_add(1, std::memory_order_relaxed);
  rx_msgs_c_->Increment();
  rx_bytes_c_->Add(kFrameOverheadBytes + payload.size() + header.extra_wire);
  if (obs::FlightRecorder* recorder = net_->options().flight) {
    obs::FlightEvent e;
    e.ts = net_->reactor().now_us();
    e.type = obs::EventType::kMsgDeliver;
    e.msg_type = header.type;
    e.node = header.src;  // Convention: primary node is the sender.
    e.peer = node_;
    e.flow = header.flow;
    e.a = payload.size();
    e.b = kFrameOverheadBytes + payload.size() + header.extra_wire;
    recorder->Record(e);
  }
  trace::TraceRecorder* recorder = net_->options().trace;
  if (recorder != nullptr && header.sampled() && header.flow != 0) {
    if (recorder->ForceSample(header.flow)) {
      // First sighting of this sampled flow in this process — cross-link
      // it into the flight recorder (a = 1: forced by an inbound frame).
      RecordMsgEvent(obs::EventType::kTraceSampled, obs::DropCause::kNone,
                     header.type, header.src, header.flow, /*a=*/1, /*b=*/0);
    }
    trace::Span span;
    auto name_it = type_names_.find(header.type);
    if (name_it != type_names_.end()) {
      span.name = name_it->second;
    } else {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "msg:%08x", header.type);
      span.name = buf;
    }
    span.cat = "net";
    span.tid = node_;
    span.flow = header.flow;
    const SimTime now = net_->reactor().now_us();
    if (net_->IsLocal(header.src) && header.sent_at_us > 0 &&
        header.sent_at_us <= now) {
      // Same process, same clock: the span covers queue + wire time.
      span.ts = header.sent_at_us;
      span.dur = now - header.sent_at_us;
    } else {
      // Cross-process: clocks differ, so record a point event at receipt
      // and let bpstitch synthesize wire time from the sent_us arg.
      span.ts = now;
      span.dur = 0;
    }
    span.args = {
        {"src", header.src},
        {"dst", node_},
        {"wire", kFrameOverheadBytes + payload.size() + header.extra_wire},
        {"sent_us", static_cast<uint64_t>(header.sent_at_us)}};
    recorder->RecordSpan(std::move(span));
  }
  if (!handler_) return;
  Message msg;
  msg.src = header.src;
  msg.dst = header.dst;
  msg.type = header.type;
  msg.wire_size =
      payload.size() + kFrameOverheadBytes + header.extra_wire;
  msg.payload = std::move(payload);
  msg.id = next_msg_id_++;
  msg.flow = header.flow;
  handler_(msg);
}

// ---------------------------------------------------------------------------
// TcpNet

TcpNet::TcpNet(TcpOptions options)
    : options_(options), clock_(&reactor_) {}

TcpNet::~TcpNet() {
  Stop();
  // Nodes added but never started still own open listen sockets.
  for (auto& node : nodes_) {
    if (node->listen_fd_ >= 0) {
      ::close(node->listen_fd_);
      node->listen_fd_ = -1;
    }
  }
}

Result<TcpTransport*> TcpNet::AddNode() {
  if (started_) {
    return Status::FailedPrecondition("AddNode after Start");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket() failed");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  const NodeId id = options_.node_base + static_cast<NodeId>(nodes_.size());
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Under a fleet port plan every node's port is a pure function of its
  // id, so other processes can dial it without any exchange; otherwise
  // the kernel assigns one.
  addr.sin_port =
      options_.port_base != 0
          ? htons(static_cast<uint16_t>(options_.port_base + id))
          : 0;
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return Status::IoError("bind(127.0.0.1) failed");
  }
  if (::listen(fd, 128) != 0) {
    ::close(fd);
    return Status::IoError("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    ::close(fd);
    return Status::IoError("getsockname() failed");
  }
  SetNonBlocking(fd);
  nodes_.emplace_back(
      new TcpTransport(this, id, ntohs(addr.sin_port), fd));
  online_.emplace_back(true);
  return nodes_.back().get();
}

void TcpNet::Start() {
  if (started_) return;
  started_ = true;
  reactor_.Start();
  reactor_.Run([this]() {
    for (auto& node : nodes_) node->StartListening();
  });
}

void TcpNet::Stop() {
  if (!started_) return;
  reactor_.Run([this]() {
    for (auto& node : nodes_) node->CloseAll();
  });
  reactor_.Stop();
  started_ = false;
}

void TcpNet::SetOnline(NodeId node, bool online) {
  if (IsLocal(node)) {
    online_[node - options_.node_base].store(online,
                                             std::memory_order_release);
  }
}

bool TcpNet::IsOnline(NodeId node) const {
  if (IsLocal(node)) {
    return online_[node - options_.node_base].load(std::memory_order_acquire);
  }
  // Remote fleet nodes are assumed up; their own process drops inbound
  // traffic when they are marked offline there.
  return options_.port_base != 0;
}

bool TcpNet::IsLocal(NodeId node) const {
  return node >= options_.node_base &&
         node - options_.node_base < nodes_.size();
}

bool TcpNet::Addressable(NodeId node) const {
  return IsLocal(node) || options_.port_base != 0;
}

uint16_t TcpNet::PortOf(NodeId node) const {
  if (IsLocal(node)) return nodes_[node - options_.node_base]->port();
  if (options_.port_base != 0) {
    return static_cast<uint16_t>(options_.port_base + node);
  }
  return 0;
}

}  // namespace bestpeer::net
