#include "net/dispatcher.h"

#include <utility>

#include "util/logging.h"

namespace bestpeer::net {

Dispatcher::Dispatcher(Transport* transport) : node_(transport->local()) {
  transport->SetHandler([this](const Message& msg) { Dispatch(msg); });
}

void Dispatcher::Register(uint32_t type, Transport::Handler handler) {
  handlers_[type] = std::move(handler);
}

void Dispatcher::RegisterDefault(Transport::Handler handler) {
  default_handler_ = std::move(handler);
}

void Dispatcher::Dispatch(const Message& msg) {
  auto it = handlers_.find(msg.type);
  if (it != handlers_.end()) {
    it->second(msg);
    return;
  }
  if (default_handler_) {
    default_handler_(msg);
    return;
  }
  ++unhandled_;
  BP_LOG(Debug) << "node " << node_ << ": unhandled message type 0x"
                << std::hex << msg.type;
}

}  // namespace bestpeer::net
