#include "net/reactor.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <condition_variable>
#include <utility>

#if defined(__linux__)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include "util/logging.h"

namespace bestpeer::net {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

Reactor::Reactor() : epoch_(std::chrono::steady_clock::now()) {
#if defined(__linux__)
  wake_read_fd_ = ::eventfd(0, EFD_NONBLOCK);
  wake_write_fd_ = wake_read_fd_;
  epoll_fd_ = ::epoll_create1(0);
  struct epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.fd = wake_read_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_read_fd_, &ev);
#else
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    SetNonBlocking(fds[0]);
    SetNonBlocking(fds[1]);
    wake_read_fd_ = fds[0];
    wake_write_fd_ = fds[1];
  }
#endif
}

Reactor::~Reactor() {
  Stop();
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0 && wake_write_fd_ != wake_read_fd_) {
    ::close(wake_write_fd_);
  }
#if defined(__linux__)
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

void Reactor::Start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this]() {
    thread_id_.store(std::this_thread::get_id(), std::memory_order_release);
    Loop();
  });
  running_.store(true, std::memory_order_release);
}

void Reactor::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  Wake();
  if (thread_.joinable()) thread_.join();
  thread_id_.store(std::thread::id(), std::memory_order_release);
  running_.store(false, std::memory_order_release);
}

bool Reactor::OnReactorThread() const {
  return std::this_thread::get_id() ==
         thread_id_.load(std::memory_order_acquire);
}

void Reactor::Post(Fn fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  Wake();
}

void Reactor::Run(Fn fn) {
  if (OnReactorThread()) {
    fn();
    return;
  }
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Post([&]() {
    fn();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return done; });
}

int64_t Reactor::now_us() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Reactor::AddTimerAt(int64_t deadline_us, Fn fn) {
  timers_.push(Timer{deadline_us, timer_seq_++, std::move(fn)});
}

void Reactor::AddFd(int fd, bool want_read, bool want_write, FdFn fn) {
  watches_[fd] = Watch{want_read, want_write, std::move(fn)};
#if defined(__linux__)
  struct epoll_event ev = {};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
#endif
  watches_dirty_ = true;
}

void Reactor::ModFd(int fd, bool want_read, bool want_write) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  it->second.want_read = want_read;
  it->second.want_write = want_write;
#if defined(__linux__)
  struct epoll_event ev = {};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
#endif
  watches_dirty_ = true;
}

void Reactor::RemoveFd(int fd) {
  watches_.erase(fd);
#if defined(__linux__)
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
#endif
  watches_dirty_ = true;
}

void Reactor::Wake() {
  if (wake_write_fd_ < 0) return;
  uint64_t one = 1;
  ssize_t n = ::write(wake_write_fd_, &one, sizeof(one));
  (void)n;  // A full pipe already guarantees a pending wakeup.
}

void Reactor::DrainPosted() {
  std::vector<Fn> batch;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    batch.swap(posted_);
  }
  for (Fn& fn : batch) fn();
}

int Reactor::RunTimersAndTimeout() {
  while (!timers_.empty() && timers_.top().deadline_us <= now_us()) {
    Fn fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
  }
  if (timers_.empty()) return 100;  // Idle tick; wakeup fd cuts it short.
  int64_t delta_us = timers_.top().deadline_us - now_us();
  if (delta_us <= 0) return 0;
  int64_t ms = (delta_us + 999) / 1000;
  return ms > 100 ? 100 : static_cast<int>(ms);
}

void Reactor::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    DrainPosted();
    int timeout_ms = RunTimersAndTimeout();

#if defined(__linux__)
    struct epoll_event events[64];
    int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_read_fd_) {
        uint64_t drain;
        while (::read(wake_read_fd_, &drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      auto it = watches_.find(fd);
      if (it == watches_.end()) continue;
      uint32_t mask = 0;
      if (events[i].events & EPOLLIN) mask |= kReadable;
      if (events[i].events & EPOLLOUT) mask |= kWritable;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError;
      if (mask != 0) it->second.fn(mask);
    }
#else
    std::vector<struct pollfd> pfds;
    std::vector<int> order;
    pfds.reserve(watches_.size() + 1);
    pfds.push_back({wake_read_fd_, POLLIN, 0});
    for (const auto& [fd, watch] : watches_) {
      short ev = 0;
      if (watch.want_read) ev |= POLLIN;
      if (watch.want_write) ev |= POLLOUT;
      pfds.push_back({fd, ev, 0});
      order.push_back(fd);
    }
    int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (n > 0) {
      if (pfds[0].revents != 0) {
        char drain[64];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
      }
      for (size_t i = 1; i < pfds.size(); ++i) {
        auto it = watches_.find(order[i - 1]);
        if (it == watches_.end()) continue;  // Removed by a callback.
        uint32_t mask = 0;
        if (pfds[i].revents & POLLIN) mask |= kReadable;
        if (pfds[i].revents & POLLOUT) mask |= kWritable;
        if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) mask |= kError;
        if (mask != 0) it->second.fn(mask);
      }
    }
#endif
  }
  DrainPosted();
}

}  // namespace bestpeer::net
