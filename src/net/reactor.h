#ifndef BESTPEER_NET_REACTOR_H_
#define BESTPEER_NET_REACTOR_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/sim_time.h"

namespace bestpeer::net {

/// A single-threaded I/O event loop: non-blocking sockets multiplexed
/// with epoll (poll(2) fallback on non-Linux), a monotonic timer heap and
/// a cross-thread Post() queue woken through an eventfd/pipe.
///
/// Threading contract: everything except Post()/Run()/Stop()/now_us()
/// must be called on the reactor thread. All registered callbacks fire on
/// the reactor thread, one at a time — which is what lets the protocol
/// stacks (and the PR-1 metrics registry) stay single-threaded on top of
/// real sockets.
class Reactor {
 public:
  using Fn = std::function<void()>;
  /// Bitmask passed to fd callbacks.
  enum : uint32_t { kReadable = 1, kWritable = 2, kError = 4 };
  using FdFn = std::function<void(uint32_t events)>;

  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  void Start();
  /// Idempotent; drains the post queue, closes the wakeup fds, joins.
  void Stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  bool OnReactorThread() const;

  /// Enqueues `fn` to run on the reactor thread. Thread-safe. Callable
  /// before Start(); queued work runs once the loop spins up.
  void Post(Fn fn);
  /// Runs `fn` on the reactor thread and waits for it to finish. Runs
  /// inline when already on the reactor thread.
  void Run(Fn fn);

  /// Microseconds since construction (steady clock). Thread-safe.
  int64_t now_us() const;

  /// Schedules `fn` at an absolute now_us()-relative deadline. Reactor
  /// thread only (route external callers through Post).
  void AddTimerAt(int64_t deadline_us, Fn fn);

  /// Registers interest in `fd`. Reactor thread only.
  void AddFd(int fd, bool want_read, bool want_write, FdFn fn);
  void ModFd(int fd, bool want_read, bool want_write);
  /// Deregisters; does not close the fd.
  void RemoveFd(int fd);

 private:
  struct Timer {
    int64_t deadline_us;
    uint64_t seq;  // FIFO among equal deadlines.
    Fn fn;
    bool operator>(const Timer& other) const {
      return deadline_us != other.deadline_us
                 ? deadline_us > other.deadline_us
                 : seq > other.seq;
    }
  };
  struct Watch {
    bool want_read = false;
    bool want_write = false;
    FdFn fn;
  };

  void Loop();
  void Wake();
  void DrainPosted();
  int RunTimersAndTimeout();  // Fires due timers; poll timeout in ms.

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::atomic<std::thread::id> thread_id_{};

  std::mutex post_mu_;
  std::vector<Fn> posted_;

  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>>
      timers_;
  uint64_t timer_seq_ = 0;

  std::map<int, Watch> watches_;
  bool watches_dirty_ = false;

  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
#if defined(__linux__)
  int epoll_fd_ = -1;
#endif
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_REACTOR_H_
