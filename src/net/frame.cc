#include "net/frame.h"

#include <cstring>

namespace bestpeer::net {

namespace {

void PutU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

Bytes EncodeFrame(const FrameHeader& header, const Bytes& payload) {
  Bytes out(kFrameOverheadBytes + payload.size(), 0);
  uint8_t* p = out.data();
  PutU32(p + 0, kFrameMagic);
  PutU16(p + 4, kFrameVersion);
  PutU16(p + 6, header.flags);
  PutU32(p + 8, header.type);
  PutU32(p + 12, header.src);
  PutU32(p + 16, header.dst);
  PutU64(p + 20, header.flow);
  PutU32(p + 28, static_cast<uint32_t>(payload.size()));
  PutU32(p + 32, header.extra_wire);
  if (header.sampled()) {
    PutU64(p + 36, static_cast<uint64_t>(header.sent_at_us));
  }
  // Bytes 44..63 stay zero (reserved); 36..43 too on unsampled frames.
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameOverheadBytes, payload.data(),
                payload.size());
  }
  return out;
}

Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len,
                                      size_t max_payload) {
  if (len < kFrameOverheadBytes) {
    return Status::InvalidArgument("frame header truncated");
  }
  if (GetU32(data + 0) != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (GetU16(data + 4) != kFrameVersion) {
    return Status::Corruption("unsupported frame version");
  }
  const uint16_t flags = GetU16(data + 6);
  if ((flags & ~kFrameFlagsMask) != 0) {
    return Status::Corruption("unknown frame flags");
  }
  for (size_t i = 44; i < kFrameOverheadBytes; ++i) {
    if (data[i] != 0) return Status::Corruption("nonzero reserved bytes");
  }
  FrameHeader h;
  h.flags = flags;
  h.type = GetU32(data + 8);
  h.src = GetU32(data + 12);
  h.dst = GetU32(data + 16);
  h.flow = GetU64(data + 20);
  h.payload_len = GetU32(data + 28);
  h.extra_wire = GetU32(data + 32);
  h.sent_at_us = static_cast<int64_t>(GetU64(data + 36));
  if (!h.sampled() && h.sent_at_us != 0) {
    // The timestamp field is part of the sampled extension; on plain
    // frames those bytes are still reserved-zero.
    return Status::Corruption("nonzero reserved bytes");
  }
  if (h.payload_len > max_payload) {
    return Status::Corruption("frame payload length over limit");
  }
  return h;
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  // Compact leading consumed bytes before growing; keeps the buffer at
  // roughly one frame regardless of how long the connection lives.
  if (pos_ > 0 && pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  } else if (pos_ > kFrameOverheadBytes + max_payload_) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

Result<bool> FrameDecoder::Next(FrameHeader* out_header, Bytes* out_payload) {
  if (poisoned_) return Status::Corruption("frame stream out of sync");
  if (!have_header_) {
    if (buf_.size() - pos_ < kFrameOverheadBytes) return false;
    auto header = DecodeFrameHeader(buf_.data() + pos_, kFrameOverheadBytes,
                                    max_payload_);
    if (!header.ok()) {
      poisoned_ = true;
      return header.status();
    }
    header_ = header.value();
    pos_ += kFrameOverheadBytes;
    have_header_ = true;
  }
  if (buf_.size() - pos_ < header_.payload_len) return false;
  *out_header = header_;
  out_payload->assign(buf_.begin() + static_cast<long>(pos_),
                      buf_.begin() + static_cast<long>(pos_ + header_.payload_len));
  pos_ += header_.payload_len;
  have_header_ = false;
  return true;
}

}  // namespace bestpeer::net
