#ifndef BESTPEER_NET_TRANSPORT_H_
#define BESTPEER_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/message.h"
#include "util/ids.h"
#include "util/sim_time.h"
#include "util/trace.h"

namespace bestpeer::obs {
class FlightRecorder;
}  // namespace bestpeer::obs

namespace bestpeer::net {

/// Cost/shape parameters of the link a transport runs over. Protocol-level
/// cost estimators (core/shipping) consume this instead of the simulator's
/// NetworkOptions, so the same code-vs-data shipping decision logic runs
/// against either backend.
struct LinkProfile {
  /// One-way propagation latency per physical hop.
  SimTime latency = Micros(500);
  /// NIC bandwidth in bytes per microsecond.
  double bytes_per_us = 12.5;
  /// Fixed per-message framing overhead added to wire_size.
  size_t frame_overhead = kFrameOverheadBytes;
};

/// Scheduling surface a transport exposes to protocol code. In the
/// simulator this is virtual time; over TCP it is the reactor's monotonic
/// clock (microseconds). Timers fire on the same thread that delivers
/// messages, so protocol state needs no locking in either backend.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds (virtual or monotonic).
  virtual SimTime now() const = 0;

  /// Schedules `fn` at absolute time `t`; `t` must be >= now().
  virtual void ScheduleAt(SimTime t, std::function<void()> fn) = 0;

  /// Schedules `fn` `delay` microseconds from now; delay must be >= 0.
  virtual void ScheduleAfter(SimTime delay, std::function<void()> fn) = 0;
};

/// A node's endpoint on some message-passing substrate. This interface
/// captures exactly what the protocol stacks (core node, agent runtime,
/// LIGLO, baselines) use: an address, fire-and-forget typed sends, one
/// deliver callback, CPU-cost accounting, timers, and peer liveness.
///
/// Contract shared by all backends:
///  - Single-threaded delivery: handlers, timers and RunCpu completions
///    all fire on one logical thread, never concurrently.
///  - Send is fire-and-forget and may drop (offline peer, queue overflow,
///    injected fault); drops are counted, never reported to the caller —
///    protocols recover through their own timeout/retry machinery.
///  - wire_size accounting: every sent message is charged
///    payload + frame_overhead + extra_wire_bytes.
class Transport {
 public:
  using Handler = std::function<void(const Message&)>;
  /// Extra key/value pairs attached to a CPU task's trace span. Build
  /// them behind a trace() != nullptr check so untraced runs pay nothing.
  using CpuArgs = std::vector<std::pair<std::string, uint64_t>>;

  virtual ~Transport() = default;

  /// The address of this endpoint.
  virtual NodeId local() const = 0;

  /// Sends a typed message to `dst`. `extra_wire_bytes` adds modelled
  /// bytes (e.g. a shipped agent class) without materializing them;
  /// `flow` tags the message with its query/agent id for tracing.
  virtual void Send(NodeId dst, uint32_t type, Bytes payload,
                    size_t extra_wire_bytes = 0, FlowId flow = 0) = 0;

  /// Registers the deliver callback (replaces any previous one).
  virtual void SetHandler(Handler handler) = 0;

  /// The transport's scheduling surface.
  virtual Clock& clock() = 0;

  /// Runs `done` after charging `cost` microseconds of CPU time to this
  /// node. In the simulator this queues on the node's CpuModel (creating
  /// contention under load); over TCP it is a timer. `name`/`flow`/`args`
  /// feed the task's trace span exactly as sim::CpuModel::Submit does.
  virtual void RunCpu(SimTime cost, std::function<void()> done,
                      const char* name = nullptr, FlowId flow = 0,
                      CpuArgs args = {}) = 0;

  /// Names a message type for trace spans and debugging.
  virtual void RegisterTypeName(uint32_t type, std::string name) = 0;

  /// Liveness of a peer as far as this transport knows. The simulator
  /// answers authoritatively; TCP answers from connection state.
  virtual bool IsOnline(NodeId node) const = 0;

  /// Cost parameters of the underlying link.
  virtual LinkProfile link() const = 0;

  /// The active span recorder, or nullptr when tracing is disabled.
  virtual trace::TraceRecorder* trace() const { return nullptr; }

  /// The active flight recorder, or nullptr when disabled.
  virtual obs::FlightRecorder* flight() const { return nullptr; }
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_TRANSPORT_H_
