#ifndef BESTPEER_NET_FRAME_H_
#define BESTPEER_NET_FRAME_H_

#include <cstddef>
#include <cstdint>

#include "net/message.h"
#include "util/bytes.h"
#include "util/status.h"

namespace bestpeer::net {

// Wire framing for the real TCP backend. Every message travels as one
// frame: a fixed header of kFrameOverheadBytes (the same constant the
// simulator charges as header_overhead, so simulated and real wire byte
// counts stay comparable) followed by `payload_len` payload bytes.
//
//   offset  size  field
//        0     4  magic        "BPF1" (0x31465042 little-endian)
//        4     2  version      kFrameVersion
//        6     2  flags        bit 0: trace-sampled; other bits must be zero
//        8     4  type         protocol message type tag
//       12     4  src          sender NodeId
//       16     4  dst          destination NodeId
//       20     8  flow         query/agent id for tracing (0 = none)
//       28     4  payload_len  bytes following the header
//       32     4  extra_wire   modelled-but-not-materialized bytes
//       36     8  sent_at_us   sender clock at encode; zero unless sampled
//       44    20  reserved     zero padding up to kFrameOverheadBytes
//
// `extra_wire` carries the simulator's `extra_wire_bytes` accounting
// (e.g. a shipped agent class) across the real wire without sending the
// phantom bytes themselves; receivers add it to their rx byte counters.
//
// The sampled flag propagates the distributed-tracing head decision: the
// process that originates a flow decides once (hash of the flow id vs
// the sample rate) and every downstream process records spans for
// exactly the flagged flows (DESIGN.md §12). `sent_at_us` rides along so
// the receiver can attribute wire time; it must be zero on unsampled
// frames, which keeps tracing-off wire bytes identical to version 1
// frames that predate the field.

constexpr uint32_t kFrameMagic = 0x31465042;  // "BPF1" in LE byte order.
constexpr uint16_t kFrameVersion = 1;
/// Frame flag bit 0: spans for this frame's flow are being recorded;
/// receivers must record theirs too (head-based sampling propagation).
constexpr uint16_t kFrameFlagSampled = 0x0001;
/// Every defined flag; any other bit set is treated as corruption.
constexpr uint16_t kFrameFlagsMask = kFrameFlagSampled;
/// Upper bound on a frame payload; a length field above this is treated
/// as stream corruption rather than an allocation request.
constexpr size_t kMaxFramePayload = 64u * 1024 * 1024;

struct FrameHeader {
  uint32_t type = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FlowId flow = 0;
  uint32_t payload_len = 0;
  uint32_t extra_wire = 0;
  uint16_t flags = 0;
  /// Sender's clock (microseconds) at encode time; only carried on
  /// sampled frames (zero otherwise, enforced by the decoder).
  int64_t sent_at_us = 0;

  bool sampled() const { return (flags & kFrameFlagSampled) != 0; }
};

/// Serializes one message as header + payload.
Bytes EncodeFrame(const FrameHeader& header, const Bytes& payload);

/// Parses a frame header from exactly kFrameOverheadBytes bytes.
/// Rejects bad magic, unknown versions, nonzero flags/reserved bytes and
/// payload lengths above `max_payload`.
Result<FrameHeader> DecodeFrameHeader(const uint8_t* data, size_t len,
                                      size_t max_payload = kMaxFramePayload);

/// Incremental decoder for a TCP byte stream. Feed() appends raw bytes;
/// Next() extracts complete frames. A malformed header poisons the
/// decoder (the stream has lost sync, so the connection must be closed).
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Feed(const uint8_t* data, size_t len);

  /// True: one frame extracted into *out_header / *out_payload.
  /// False: need more bytes. Error: stream is malformed; no further
  /// frames will be produced.
  Result<bool> Next(FrameHeader* out_header, Bytes* out_payload);

  size_t buffered() const { return buf_.size() - pos_; }

 private:
  size_t max_payload_;
  Bytes buf_;
  size_t pos_ = 0;
  bool have_header_ = false;
  FrameHeader header_;
  bool poisoned_ = false;
};

}  // namespace bestpeer::net

#endif  // BESTPEER_NET_FRAME_H_
