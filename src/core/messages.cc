#include "core/messages.h"

namespace bestpeer::core {

namespace {

void EncodeItems(BinaryWriter& w, const std::vector<ResultItem>& items) {
  w.WriteVarint(items.size());
  for (const auto& item : items) {
    w.WriteU64(item.id);
    w.WriteString(item.name);
    w.WriteBytes(item.content);
  }
}

Result<std::vector<ResultItem>> DecodeItems(BinaryReader& r) {
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  std::vector<ResultItem> items;
  items.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ResultItem item;
    BP_ASSIGN_OR_RETURN(item.id, r.ReadU64());
    BP_ASSIGN_OR_RETURN(item.name, r.ReadString());
    BP_ASSIGN_OR_RETURN(item.content, r.ReadBytes());
    items.push_back(std::move(item));
  }
  return items;
}

}  // namespace

Bytes SearchResultMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(query_id);
  w.WriteU16(hops);
  w.WriteU8(mode);
  w.WriteU32(responder_object_count);
  EncodeItems(w, items);
  // Trailing optional section: written only when the result cache is on
  // (epoch is then always nonzero), so cache-off messages stay
  // byte-identical to the pre-cache encoding.
  if (cache_epoch != 0) {
    w.WriteVarint(cache_epoch);
    w.WriteU8(cache_flags);
  }
  return w.Take();
}

Result<SearchResultMessage> SearchResultMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  SearchResultMessage m;
  BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.hops, r.ReadU16());
  BP_ASSIGN_OR_RETURN(m.mode, r.ReadU8());
  BP_ASSIGN_OR_RETURN(m.responder_object_count, r.ReadU32());
  BP_ASSIGN_OR_RETURN(m.items, DecodeItems(r));
  if (!r.AtEnd()) {
    BP_ASSIGN_OR_RETURN(m.cache_epoch, r.ReadVarint());
    BP_ASSIGN_OR_RETURN(m.cache_flags, r.ReadU8());
  }
  return m;
}

Bytes CacheReplicaPushMessage::Encode() const {
  BinaryWriter w;
  w.WriteVarint(source_epoch);
  w.WriteI64(ttl);
  EncodeItems(w, items);
  return w.Take();
}

Result<CacheReplicaPushMessage> CacheReplicaPushMessage::Decode(
    const Bytes& data) {
  BinaryReader r(data);
  CacheReplicaPushMessage m;
  BP_ASSIGN_OR_RETURN(m.source_epoch, r.ReadVarint());
  BP_ASSIGN_OR_RETURN(m.ttl, r.ReadI64());
  BP_ASSIGN_OR_RETURN(m.items, DecodeItems(r));
  return m;
}

Bytes DataShipRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(query_id);
  return w.Take();
}

Result<DataShipRequest> DataShipRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  DataShipRequest m;
  BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
  return m;
}

Bytes DataShipResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(query_id);
  EncodeItems(w, items);
  return w.Take();
}

Result<DataShipResponse> DataShipResponse::Decode(const Bytes& data) {
  BinaryReader r(data);
  DataShipResponse m;
  BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.items, DecodeItems(r));
  return m;
}

Bytes FetchRequestMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(query_id);
  w.WriteVarint(ids.size());
  for (auto id : ids) w.WriteU64(id);
  return w.Take();
}

Result<FetchRequestMessage> FetchRequestMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  FetchRequestMessage m;
  BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  m.ids.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    BP_ASSIGN_OR_RETURN(storm::ObjectId id, r.ReadU64());
    m.ids.push_back(id);
  }
  return m;
}

Bytes FetchResponseMessage::Encode() const {
  BinaryWriter w;
  w.WriteU64(query_id);
  EncodeItems(w, items);
  return w.Take();
}

Result<FetchResponseMessage> FetchResponseMessage::Decode(
    const Bytes& data) {
  BinaryReader r(data);
  FetchResponseMessage m;
  BP_ASSIGN_OR_RETURN(m.query_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.items, DecodeItems(r));
  return m;
}

Bytes WatchRequest::Encode() const {
  BinaryWriter w;
  w.WriteU8(subscribe ? 1 : 0);
  return w.Take();
}

Result<WatchRequest> WatchRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  WatchRequest m;
  BP_ASSIGN_OR_RETURN(uint8_t sub, r.ReadU8());
  m.subscribe = sub != 0;
  return m;
}

Bytes UpdateNotifyMessage::Encode() const {
  BinaryWriter w;
  w.WriteU8(static_cast<uint8_t>(kind));
  w.WriteU64(object_id);
  return w.Take();
}

Result<UpdateNotifyMessage> UpdateNotifyMessage::Decode(const Bytes& data) {
  BinaryReader r(data);
  UpdateNotifyMessage m;
  BP_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > 2) return Status::Corruption("bad update-notify kind");
  m.kind = static_cast<Kind>(kind);
  BP_ASSIGN_OR_RETURN(m.object_id, r.ReadU64());
  return m;
}

Bytes ReplicatePushMessage::Encode() const {
  BinaryWriter w;
  EncodeItems(w, items);
  return w.Take();
}

Result<ReplicatePushMessage> ReplicatePushMessage::Decode(
    const Bytes& data) {
  BinaryReader r(data);
  ReplicatePushMessage m;
  BP_ASSIGN_OR_RETURN(m.items, DecodeItems(r));
  return m;
}

Bytes ActiveObjectRequest::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteString(object_name);
  w.WriteU8(access_level);
  return w.Take();
}

Result<ActiveObjectRequest> ActiveObjectRequest::Decode(const Bytes& data) {
  BinaryReader r(data);
  ActiveObjectRequest m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(m.object_name, r.ReadString());
  BP_ASSIGN_OR_RETURN(m.access_level, r.ReadU8());
  return m;
}

Bytes ActiveObjectResponse::Encode() const {
  BinaryWriter w;
  w.WriteU64(request_id);
  w.WriteU8(ok ? 1 : 0);
  w.WriteBytes(content);
  return w.Take();
}

Result<ActiveObjectResponse> ActiveObjectResponse::Decode(
    const Bytes& data) {
  BinaryReader r(data);
  ActiveObjectResponse m;
  BP_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  BP_ASSIGN_OR_RETURN(uint8_t ok, r.ReadU8());
  m.ok = ok != 0;
  BP_ASSIGN_OR_RETURN(m.content, r.ReadBytes());
  return m;
}

}  // namespace bestpeer::core
