#include "core/shipping.h"

#include <cmath>

namespace bestpeer::core {

namespace {

/// One-hop transfer time of `bytes` over the modelled LAN (uplink +
/// propagation + downlink).
SimTime TransferTime(size_t bytes, const net::LinkProfile& net) {
  double per_nic = static_cast<double>(bytes) / net.bytes_per_us;
  return static_cast<SimTime>(std::llround(2 * per_nic)) + net.latency;
}

}  // namespace

SimTime EstimateCodeShippingCost(const ShippingCostInputs& inputs,
                                 const BestPeerConfig& config,
                                 const net::LinkProfile& net) {
  size_t outbound = inputs.agent_bytes + net.frame_overhead +
                    (inputs.class_cached ? 0 : inputs.class_bytes);
  SimTime cost = TransferTime(outbound, net);
  cost += config.agent_reconstruct_cost;
  if (!inputs.class_cached) cost += config.agent_class_load_cost;
  cost += static_cast<SimTime>(inputs.remote_objects) *
          config.per_object_match_cost;
  // Results come back; assume the small-descriptor case for estimation.
  cost += TransferTime(net.frame_overhead + config.answer_descriptor_bytes,
                       net);
  return cost;
}

SimTime EstimateDataShippingCost(const ShippingCostInputs& inputs,
                                 const BestPeerConfig& config,
                                 const net::LinkProfile& net) {
  size_t store_bytes = inputs.remote_objects * inputs.object_size;
  SimTime cost = TransferTime(net.frame_overhead + 64, net);  // Request.
  cost += static_cast<SimTime>(inputs.remote_objects) *
          config.fetch_per_object_cost;  // Remote read-out.
  cost += TransferTime(store_bytes + net.frame_overhead, net);
  cost += static_cast<SimTime>(inputs.remote_objects) *
          config.per_object_match_cost;  // Local scan.
  return cost;
}

ShippingStrategy ChooseShippingStrategy(const ShippingCostInputs& inputs,
                                        const BestPeerConfig& config,
                                        const net::LinkProfile& net) {
  if (inputs.remote_objects == 0) return ShippingStrategy::kCodeShipping;
  SimTime code = EstimateCodeShippingCost(inputs, config, net);
  SimTime data = EstimateDataShippingCost(inputs, config, net);
  return data < code ? ShippingStrategy::kDataShipping
                     : ShippingStrategy::kCodeShipping;
}

std::string_view ShippingStrategyName(ShippingStrategy strategy) {
  switch (strategy) {
    case ShippingStrategy::kCodeShipping:
      return "code";
    case ShippingStrategy::kDataShipping:
      return "data";
  }
  return "?";
}

std::string_view ShippingModeName(ShippingMode mode) {
  switch (mode) {
    case ShippingMode::kAlwaysCode:
      return "always-code";
    case ShippingMode::kAlwaysData:
      return "always-data";
    case ShippingMode::kAdaptive:
      return "adaptive";
  }
  return "?";
}

}  // namespace bestpeer::core
