#include "core/search_agent.h"

#include "cache/result_cache.h"
#include "storm/query_expr.h"
#include "storm/storm.h"

namespace bestpeer::core {

void SearchAgent::SaveState(BinaryWriter& writer) const {
  writer.WriteU64(query_id_);
  writer.WriteString(keyword_);
  writer.WriteU8(static_cast<uint8_t>(mode_));
  writer.WriteI64(per_object_cost_);
  writer.WriteVarint(descriptor_bytes_);
  // Trailing optional section: written only when some optional feature
  // is armed, so feature-off agent transfers stay byte-identical. The
  // leading byte is a flags bitmask; a cache-probe-only agent encodes
  // exactly as older builds did (flags == 1).
  const uint8_t flags = (cache_probe_ ? kFlagCacheProbe : 0) |
                        (use_index_ ? kFlagIndexSearch : 0);
  if (flags != 0) {
    writer.WriteU8(flags);
    if (cache_probe_) {
      writer.WriteI64(probe_cost_);
      writer.WriteVarint(known_epochs_.size());
      for (const auto& [node, epoch] : known_epochs_) {
        writer.WriteU32(node);
        writer.WriteVarint(epoch);
      }
    }
    if (use_index_) {
      writer.WriteI64(per_posting_cost_);
    }
  }
}

Status SearchAgent::LoadState(BinaryReader& reader) {
  BP_ASSIGN_OR_RETURN(query_id_, reader.ReadU64());
  BP_ASSIGN_OR_RETURN(keyword_, reader.ReadString());
  BP_ASSIGN_OR_RETURN(uint8_t mode, reader.ReadU8());
  if (mode != 1 && mode != 2) return Status::Corruption("bad answer mode");
  mode_ = static_cast<AnswerMode>(mode);
  BP_ASSIGN_OR_RETURN(per_object_cost_, reader.ReadI64());
  BP_ASSIGN_OR_RETURN(uint64_t descr, reader.ReadVarint());
  descriptor_bytes_ = descr;
  cache_probe_ = false;
  known_epochs_.clear();
  use_index_ = false;
  if (!reader.AtEnd()) {
    BP_ASSIGN_OR_RETURN(uint8_t flags, reader.ReadU8());
    if (flags == 0 || (flags & ~(kFlagCacheProbe | kFlagIndexSearch)) != 0) {
      return Status::Corruption("bad agent feature flags");
    }
    cache_probe_ = (flags & kFlagCacheProbe) != 0;
    if (cache_probe_) {
      BP_ASSIGN_OR_RETURN(probe_cost_, reader.ReadI64());
      BP_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
      for (uint64_t i = 0; i < n; ++i) {
        BP_ASSIGN_OR_RETURN(uint32_t node, reader.ReadU32());
        BP_ASSIGN_OR_RETURN(uint64_t epoch, reader.ReadVarint());
        known_epochs_[node] = epoch;
      }
    }
    use_index_ = (flags & kFlagIndexSearch) != 0;
    if (use_index_) {
      BP_ASSIGN_OR_RETURN(per_posting_cost_, reader.ReadI64());
    }
  }
  return Status::OK();
}

Result<std::vector<storm::ObjectId>> SearchAgent::FindMatches(
    agent::AgentContext& ctx, storm::Storm* storage,
    uint32_t* store_size_hint) {
  if (use_index_) {
    size_t touched = 0;
    auto indexed = storage->IndexSearch(keyword_, &touched);
    if (indexed.ok()) {
      ctx.ChargeCpu(static_cast<SimTime>(touched) * per_posting_cost_);
      *store_size_hint = static_cast<uint32_t>(storage->object_count());
      return std::move(indexed).value();
    }
    // No index at this store (mixed fleet): fall through to the scan.
  }
  // "The agent makes a comparison for each object stored in the
  // Shared-StorM database with its query."
  BP_ASSIGN_OR_RETURN(storm::Storm::ScanResult scan,
                      storage->ScanSearch(keyword_));
  ctx.ChargeCpu(static_cast<SimTime>(scan.objects_scanned) *
                per_object_cost_);
  *store_size_hint = static_cast<uint32_t>(scan.objects_scanned);
  return std::move(scan.matches);
}

Status SearchAgent::Execute(agent::AgentContext& ctx) {
  storm::Storm* storage = ctx.host()->storage();
  if (storage == nullptr) return Status::OK();  // Nothing shared here.

  if (!cache_probe_) {
    uint32_t store_size_hint = 0;
    BP_ASSIGN_OR_RETURN(std::vector<storm::ObjectId> matches,
                        FindMatches(ctx, storage, &store_size_hint));
    if (matches.empty()) return Status::OK();

    SearchResultMessage result;
    result.query_id = query_id_;
    result.hops = ctx.hops();
    result.mode = static_cast<uint8_t>(mode_);
    result.responder_object_count = store_size_hint;
    result.items.reserve(matches.size());
    for (storm::ObjectId id : matches) {
      ResultItem item;
      item.id = id;
      item.name = "obj-" + std::to_string(id);
      if (mode_ == AnswerMode::kDirect) {
        BP_ASSIGN_OR_RETURN(item.content, storage->Get(id));
      } else {
        // Mode 2: ship a fixed-size descriptor instead of the content.
        item.name.resize(descriptor_bytes_, ' ');
      }
      result.items.push_back(std::move(item));
    }
    // Results go directly to the base node, never along the query path.
    ctx.SendMessage(ctx.origin_node(), kSearchResultType, result.Encode());
    return Status::OK();
  }

  // Cache-probe hop step. The IndexEpoch is the mutation epoch shifted by
  // one so an armed probe always carries a nonzero epoch on the wire.
  const uint64_t index_epoch = storage->mutation_epoch() + 1;
  std::string norm_key = keyword_;
  if (auto norm = storm::QueryExpr::NormalizeQuery(keyword_); norm.ok()) {
    norm_key = std::move(norm).value();
  }

  cache::ResultCache* rc = ctx.host()->result_cache();
  std::vector<uint64_t> matches;
  bool from_cache = false;
  if (rc != nullptr) {
    rc->RecordAccess(norm_key);
    const cache::CachedSlice* slice =
        rc->ProbeSlice(norm_key, ctx.current_node(), index_epoch);
    if (slice != nullptr) {
      matches = slice->ids;
      from_cache = true;
      ctx.ChargeCpu(probe_cost_);
    }
  }
  if (!from_cache) {
    uint32_t store_size_hint = 0;
    BP_ASSIGN_OR_RETURN(matches, FindMatches(ctx, storage, &store_size_hint));
    if (rc != nullptr) {
      // Cache even empty answer sets: knowing "nothing here at this
      // epoch" saves the next full scan too.
      cache::CachedSlice slice;
      slice.source = ctx.current_node();
      slice.epoch = index_epoch;
      slice.hops = ctx.hops();
      slice.ids = matches;
      rc->InsertSlice(norm_key, std::move(slice));
    }
  }
  if (matches.empty()) return Status::OK();

  SearchResultMessage result;
  result.query_id = query_id_;
  result.hops = ctx.hops();
  result.mode = static_cast<uint8_t>(mode_);
  result.responder_object_count =
      static_cast<uint32_t>(storage->object_count());
  result.cache_epoch = index_epoch;
  auto known = known_epochs_.find(ctx.current_node());
  if (known != known_epochs_.end() && known->second == index_epoch) {
    // Conditional GET, answered "not modified": the base's slice for this
    // responder is provably current (the epoch it knows is the epoch the
    // store is at *right now*), so a header-only reply suffices.
    result.cache_flags = SearchResultMessage::kCacheNotModified;
  } else {
    result.items.reserve(matches.size());
    for (storm::ObjectId id : matches) {
      ResultItem item;
      item.id = id;
      item.name = "obj-" + std::to_string(id);
      if (mode_ == AnswerMode::kDirect) {
        auto content = storage->Get(id);
        // A cached match may race a concurrent delete between epoch
        // check and read; skipping mirrors the fetch path's tolerance.
        if (!content.ok()) continue;
        item.content = std::move(content).value();
      } else {
        item.name.resize(descriptor_bytes_, ' ');
      }
      result.items.push_back(std::move(item));
    }
  }
  ctx.SendMessage(ctx.origin_node(), kSearchResultType, result.Encode());
  ctx.host()->OnAnswerServed(norm_key, matches);
  return Status::OK();
}

}  // namespace bestpeer::core
