#include "core/search_agent.h"

#include "storm/storm.h"

namespace bestpeer::core {

void SearchAgent::SaveState(BinaryWriter& writer) const {
  writer.WriteU64(query_id_);
  writer.WriteString(keyword_);
  writer.WriteU8(static_cast<uint8_t>(mode_));
  writer.WriteI64(per_object_cost_);
  writer.WriteVarint(descriptor_bytes_);
}

Status SearchAgent::LoadState(BinaryReader& reader) {
  BP_ASSIGN_OR_RETURN(query_id_, reader.ReadU64());
  BP_ASSIGN_OR_RETURN(keyword_, reader.ReadString());
  BP_ASSIGN_OR_RETURN(uint8_t mode, reader.ReadU8());
  if (mode != 1 && mode != 2) return Status::Corruption("bad answer mode");
  mode_ = static_cast<AnswerMode>(mode);
  BP_ASSIGN_OR_RETURN(per_object_cost_, reader.ReadI64());
  BP_ASSIGN_OR_RETURN(uint64_t descr, reader.ReadVarint());
  descriptor_bytes_ = descr;
  return Status::OK();
}

Status SearchAgent::Execute(agent::AgentContext& ctx) {
  storm::Storm* storage = ctx.host()->storage();
  if (storage == nullptr) return Status::OK();  // Nothing shared here.

  // "The agent makes a comparison for each object stored in the
  // Shared-StorM database with its query."
  BP_ASSIGN_OR_RETURN(storm::Storm::ScanResult scan,
                      storage->ScanSearch(keyword_));
  ctx.ChargeCpu(static_cast<SimTime>(scan.objects_scanned) *
                per_object_cost_);
  if (scan.matches.empty()) return Status::OK();

  SearchResultMessage result;
  result.query_id = query_id_;
  result.hops = ctx.hops();
  result.mode = static_cast<uint8_t>(mode_);
  result.responder_object_count =
      static_cast<uint32_t>(scan.objects_scanned);
  result.items.reserve(scan.matches.size());
  for (storm::ObjectId id : scan.matches) {
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    if (mode_ == AnswerMode::kDirect) {
      BP_ASSIGN_OR_RETURN(item.content, storage->Get(id));
    } else {
      // Mode 2: ship a fixed-size descriptor instead of the content.
      item.name.resize(descriptor_bytes_, ' ');
    }
    result.items.push_back(std::move(item));
  }
  // Results go directly to the base node, never along the query path.
  ctx.SendMessage(ctx.origin_node(), kSearchResultType, result.Encode());
  return Status::OK();
}

}  // namespace bestpeer::core
