#ifndef BESTPEER_CORE_PEER_LIST_H_
#define BESTPEER_CORE_PEER_LIST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "liglo/bpid.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace bestpeer::core {

/// What a node knows about one directly connected peer.
struct PeerInfo {
  NodeId node = kInvalidNode;
  /// Global identity, when known (peers adopted via LIGLO carry one).
  liglo::Bpid bpid;
  /// Last known address.
  liglo::IpAddress ip = liglo::kInvalidIp;
  /// Answers received from this peer over all queries / the last query.
  uint64_t total_answers = 0;
  uint64_t last_answers = 0;
  /// Hops value piggybacked with the peer's last answers.
  uint16_t last_hops = 0;
  /// When the peer last responded.
  SimTime last_response_time = 0;
  /// Queries in a row this peer missed entirely (reset on any response).
  /// Reaching BestPeerConfig::peer_failure_threshold gets it evicted.
  uint32_t consecutive_failures = 0;
};

/// A node's direct-peer set. Outgoing capacity is bounded by `capacity`
/// (the paper's k); incoming connections from reconfiguring peers are
/// accepted beyond it, mirroring servents that accept inbound links up to
/// a separate limit.
class PeerList {
 public:
  explicit PeerList(size_t capacity) : capacity_(capacity) {}

  /// Adds (or refreshes) a peer. `enforce_capacity` rejects the add when
  /// the list is full (used for outgoing adoption, not inbound accepts).
  bool Add(const PeerInfo& peer, bool enforce_capacity = true);

  /// Removes a peer; returns whether it was present.
  bool Remove(NodeId node);

  bool Contains(NodeId node) const { return peers_.count(node) != 0; }

  /// Mutable access to a peer's record (nullptr if absent).
  PeerInfo* Find(NodeId node);
  const PeerInfo* Find(NodeId node) const;

  /// Node ids of all direct peers (ascending).
  std::vector<NodeId> Nodes() const;

  /// All records.
  std::vector<PeerInfo> Snapshot() const;

  size_t size() const { return peers_.size(); }
  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) { capacity_ = capacity; }

 private:
  size_t capacity_;
  std::map<NodeId, PeerInfo> peers_;
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_PEER_LIST_H_
