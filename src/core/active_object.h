#ifndef BESTPEER_CORE_ACTIVE_OBJECT_H_
#define BESTPEER_CORE_ACTIVE_OBJECT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::core {

/// Access rights a requester can hold on shared content (paper §3.2.2:
/// "different users may have different access rights to the content").
enum class AccessLevel : uint8_t {
  kPublic = 0,
  kMember = 1,
  kOwner = 2,
};

/// An "active node": the black-box executable an active element names. It
/// receives the element's raw data and the requester's access level and
/// returns the content that requester may see.
using ActiveNodeFn =
    std::function<Result<Bytes>(const Bytes& data, AccessLevel level)>;

/// Name -> active node. Owned by each sharing node; the object owner is
/// responsible for the correctness of the filtering (paper §3.2.2).
class ActiveNodeRegistry {
 public:
  Status Register(std::string_view name, ActiveNodeFn fn);
  Result<ActiveNodeFn> Get(std::string_view name) const;
  bool Contains(std::string_view name) const;
  size_t size() const { return nodes_.size(); }

 private:
  std::map<std::string, ActiveNodeFn, std::less<>> nodes_;
};

/// An active object: an ordered list of elements, each either a plain
/// data element or an active element naming an active node that generates
/// its content per-requester. Rendering concatenates element outputs.
class ActiveObject {
 public:
  struct Element {
    bool active = false;
    /// Data element: the literal content. Active element: the input fed
    /// to the active node.
    Bytes data;
    /// Active element only: the registered active-node name.
    std::string active_node;
  };

  ActiveObject() = default;

  /// Appends a plain data element.
  void AddDataElement(Bytes data);

  /// Appends an active element processed by `active_node`.
  void AddActiveElement(std::string active_node, Bytes data);

  /// Renders the object for a requester at `level`, resolving active
  /// nodes through `registry`.
  Result<Bytes> Render(AccessLevel level,
                       const ActiveNodeRegistry& registry) const;

  /// Serializes the object (element structure + data) so active objects
  /// can be persisted in StorM or shipped between owners. Active-node
  /// *names* travel; the executables themselves stay registered code.
  Bytes Encode() const;
  static Result<ActiveObject> Decode(const Bytes& data);

  const std::vector<Element>& elements() const { return elements_; }
  size_t element_count() const { return elements_.size(); }

 private:
  std::vector<Element> elements_;
};

/// Standard active node: redacts text between "[SECRET]" and "[/SECRET]"
/// markers for requesters below kOwner. Registered as
/// "redact-secrets" by BestPeerNode::InitDefaultActiveNodes.
Result<Bytes> RedactSecretsActiveNode(const Bytes& data, AccessLevel level);

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_ACTIVE_OBJECT_H_
