#include "core/peer_list.h"

namespace bestpeer::core {

bool PeerList::Add(const PeerInfo& peer, bool enforce_capacity) {
  auto it = peers_.find(peer.node);
  if (it != peers_.end()) {
    // Refresh identity/address but keep accumulated statistics.
    it->second.bpid = peer.bpid;
    it->second.ip = peer.ip;
    return true;
  }
  if (enforce_capacity && peers_.size() >= capacity_) return false;
  peers_[peer.node] = peer;
  return true;
}

bool PeerList::Remove(NodeId node) { return peers_.erase(node) > 0; }

PeerInfo* PeerList::Find(NodeId node) {
  auto it = peers_.find(node);
  return it == peers_.end() ? nullptr : &it->second;
}

const PeerInfo* PeerList::Find(NodeId node) const {
  auto it = peers_.find(node);
  return it == peers_.end() ? nullptr : &it->second;
}

std::vector<NodeId> PeerList::Nodes() const {
  std::vector<NodeId> nodes;
  nodes.reserve(peers_.size());
  for (const auto& [node, info] : peers_) nodes.push_back(node);
  return nodes;
}

std::vector<PeerInfo> PeerList::Snapshot() const {
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [node, info] : peers_) out.push_back(info);
  return out;
}

}  // namespace bestpeer::core
