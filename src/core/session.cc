#include "core/session.h"

#include <algorithm>
#include <map>

namespace bestpeer::core {

size_t QuerySession::total_answers() const {
  const auto& events = mode_ == AnswerMode::kIndicate ? fetches_ : responses_;
  size_t n = 0;
  for (const auto& e : events) n += e.answers;
  return n;
}

size_t QuerySession::total_indicated() const {
  size_t n = 0;
  for (const auto& e : responses_) n += e.answers;
  return n;
}

size_t QuerySession::responder_count() const {
  std::map<NodeId, bool> seen;
  for (const auto& e : responses_) seen[e.node] = true;
  return seen.size();
}

SimTime QuerySession::completion_time() const {
  SimTime last = start_time_;
  for (const auto& e : responses_) last = std::max(last, e.time);
  for (const auto& e : fetches_) last = std::max(last, e.time);
  return last - start_time_;
}

std::vector<PeerObservation> QuerySession::Observations() const {
  std::map<NodeId, PeerObservation> table;
  for (const auto& e : responses_) {
    auto it = table.find(e.node);
    if (it == table.end()) {
      PeerObservation obs;
      obs.node = e.node;
      obs.answers = e.answers;
      obs.hops = e.hops;
      obs.first_response = e.time;
      table[e.node] = obs;
    } else {
      it->second.answers += e.answers;
      it->second.hops = std::min(it->second.hops, e.hops);
    }
  }
  std::vector<PeerObservation> out;
  out.reserve(table.size());
  for (const auto& [node, obs] : table) out.push_back(obs);
  return out;
}

}  // namespace bestpeer::core
