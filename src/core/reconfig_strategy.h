#ifndef BESTPEER_CORE_RECONFIG_STRATEGY_H_
#define BESTPEER_CORE_RECONFIG_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/result.h"
#include "util/sim_time.h"

namespace bestpeer::core {

/// What one query taught the base node about a responding node.
struct PeerObservation {
  NodeId node = kInvalidNode;
  /// Answers the node returned for the query.
  uint64_t answers = 0;
  /// Hops value piggybacked with the answers (distance from the base).
  uint16_t hops = 0;
  /// Arrival time of the node's first result message.
  SimTime first_response = 0;
};

/// Self-reconfiguration policy (paper §3.3): after a query, choose which
/// nodes to keep as direct peers. Implementations are pure functions of
/// the observations and the current peer set, so strategies are trivially
/// testable and nodes stay autonomous (no peer-to-peer negotiation).
class ReconfigStrategy {
 public:
  virtual ~ReconfigStrategy() = default;

  /// Registered name ("maxcount", "minhops", "fastest", "none").
  virtual std::string_view name() const = 0;

  /// Returns the new direct-peer set, at most `capacity` nodes, drawn
  /// from the observed responders and the current peers. Current peers
  /// that did not respond are treated as answers=0, hops=1 candidates.
  virtual std::vector<NodeId> SelectPeers(
      const std::vector<PeerObservation>& observations,
      const std::vector<NodeId>& current_peers,
      size_t capacity) const = 0;
};

/// MaxCount: keep the k nodes that returned the most answers; a peer that
/// answers a lot is assumed likely to satisfy future queries.
class MaxCountStrategy : public ReconfigStrategy {
 public:
  std::string_view name() const override { return "maxcount"; }
  std::vector<NodeId> SelectPeers(
      const std::vector<PeerObservation>& observations,
      const std::vector<NodeId>& current_peers,
      size_t capacity) const override;
};

/// MinHops: keep the k nodes with the *largest* Hops values (answers
/// break ties). Nearby answerers remain reachable through not-too-distant
/// paths, so pulling far answerers close minimizes total hops to reach
/// all answers.
class MinHopsStrategy : public ReconfigStrategy {
 public:
  std::string_view name() const override { return "minhops"; }
  std::vector<NodeId> SelectPeers(
      const std::vector<PeerObservation>& observations,
      const std::vector<NodeId>& current_peers,
      size_t capacity) const override;
};

/// FastestResponse: keep the k nodes whose first answers arrived
/// earliest (ties prefer more answers). A latency-oriented alternative
/// to the paper's two strategies: it optimizes time-to-first-answer
/// rather than answer volume or hop count.
class FastestResponseStrategy : public ReconfigStrategy {
 public:
  std::string_view name() const override { return "fastest"; }
  std::vector<NodeId> SelectPeers(
      const std::vector<PeerObservation>& observations,
      const std::vector<NodeId>& current_peers,
      size_t capacity) const override;
};

/// No reconfiguration: always keep the current peers (BPS).
class NoReconfigStrategy : public ReconfigStrategy {
 public:
  std::string_view name() const override { return "none"; }
  std::vector<NodeId> SelectPeers(
      const std::vector<PeerObservation>& observations,
      const std::vector<NodeId>& current_peers,
      size_t capacity) const override;
};

/// Creates a strategy by name; InvalidArgument for unknown names.
Result<std::unique_ptr<ReconfigStrategy>> MakeReconfigStrategy(
    std::string_view name);

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_RECONFIG_STRATEGY_H_
