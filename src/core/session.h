#ifndef BESTPEER_CORE_SESSION_H_
#define BESTPEER_CORE_SESSION_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/reconfig_strategy.h"
#include "util/ids.h"
#include "util/sim_time.h"

namespace bestpeer::core {

/// One response-related event observed by the query initiator.
struct ResponseEvent {
  SimTime time = 0;
  NodeId node = kInvalidNode;
  uint16_t hops = 0;
  size_t answers = 0;
};

/// Book-keeping for one query issued by a node: when which peer responded
/// with how many answers. The evaluation metrics of §4 (completion time,
/// response rate, answers-over-time) and the reconfiguration observations
/// of §3.3 all read from here.
class QuerySession {
 public:
  QuerySession() = default;
  QuerySession(uint64_t query_id, std::string keyword, AnswerMode mode,
               SimTime start_time)
      : query_id_(query_id),
        keyword_(std::move(keyword)),
        mode_(mode),
        start_time_(start_time) {}

  /// Records a result message (mode 1: content; mode 2: descriptors).
  void RecordResult(const ResponseEvent& event) {
    responses_.push_back(event);
  }

  /// Records a result message together with the matched object ids, so
  /// answers can be deduplicated across replicas of the same object.
  void RecordResultWithIds(const ResponseEvent& event,
                           const std::vector<uint64_t>& object_ids) {
    responses_.push_back(event);
    for (uint64_t id : object_ids) unique_objects_.insert(id);
  }

  /// Distinct objects reported across all responses (replicas of one
  /// object count once). Zero when responders did not report ids.
  size_t unique_answers() const { return unique_objects_.size(); }

  /// Records a completed mode-2 content fetch.
  void RecordFetch(const ResponseEvent& event) { fetches_.push_back(event); }

  uint64_t query_id() const { return query_id_; }
  const std::string& keyword() const { return keyword_; }
  AnswerMode mode() const { return mode_; }
  SimTime start_time() const { return start_time_; }

  const std::vector<ResponseEvent>& responses() const { return responses_; }
  const std::vector<ResponseEvent>& fetches() const { return fetches_; }

  /// Total answers *received* (mode 1: result items; mode 2: fetched
  /// contents).
  size_t total_answers() const;

  /// Total matches indicated by responders (counts result items in both
  /// modes).
  size_t total_indicated() const;

  /// Distinct responding nodes.
  size_t responder_count() const;

  /// Time from issue to the last relevant event (0 if nothing arrived) —
  /// the paper's completion time, "when all answers have been received".
  SimTime completion_time() const;

  /// Per-responder observations feeding the reconfiguration strategy.
  std::vector<PeerObservation> Observations() const;

  /// Closes the session at its deadline: the answer set is frozen and
  /// later results must be dropped by the caller (counted as late).
  void Finalize() { finalized_ = true; }
  bool finalized() const { return finalized_; }

 private:
  uint64_t query_id_ = 0;
  std::string keyword_;
  AnswerMode mode_ = AnswerMode::kDirect;
  SimTime start_time_ = 0;
  std::vector<ResponseEvent> responses_;
  std::vector<ResponseEvent> fetches_;
  std::set<uint64_t> unique_objects_;
  bool finalized_ = false;
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_SESSION_H_
