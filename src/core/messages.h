#ifndef BESTPEER_CORE_MESSAGES_H_
#define BESTPEER_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"
#include "storm/content_summary.h"
#include "storm/object_store.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::core {

/// BestPeer wire message types (agent transfers use
/// agent::kAgentTransferType).
constexpr uint32_t kSearchResultType = 0x42500001;
constexpr uint32_t kFetchReqType = 0x42500002;
constexpr uint32_t kFetchRespType = 0x42500003;
constexpr uint32_t kActiveObjReqType = 0x42500004;
constexpr uint32_t kActiveObjRespType = 0x42500005;
constexpr uint32_t kPeerConnectType = 0x42500006;
constexpr uint32_t kPeerDisconnectType = 0x42500007;
constexpr uint32_t kDataShipReqType = 0x42500008;
constexpr uint32_t kDataShipRespType = 0x42500009;
constexpr uint32_t kReplicatePushType = 0x4250000A;
constexpr uint32_t kWatchReqType = 0x4250000B;
constexpr uint32_t kUpdateNotifyType = 0x4250000C;
constexpr uint32_t kCacheReplicaPushType = 0x4250000D;
constexpr uint32_t kPeerSummaryType = 0x4250000E;

/// One matched object inside a result or fetch response. Mode-1 results
/// and fetch responses carry content; mode-2 results carry name only.
struct ResultItem {
  storm::ObjectId id = 0;
  std::string name;
  Bytes content;
};

/// A search result sent *directly* to the base node by a peer whose store
/// matched the query (out-of-network return, paper §2). Carries the Hops
/// value piggybacked for the MinHops strategy (§3.3).
struct SearchResultMessage {
  uint64_t query_id = 0;
  uint16_t hops = 0;
  uint8_t mode = 1;
  /// Size of the responder's shared store (objects scanned); the
  /// initiator uses it as the store-size hint for adaptive shipping.
  uint32_t responder_object_count = 0;
  std::vector<ResultItem> items;
  /// Responder's IndexEpoch (storm mutation epoch + 1) at serve time.
  /// 0 = result caching off; the fields below are then absent on the
  /// wire, keeping cache-off encodings byte-identical to older builds.
  uint64_t cache_epoch = 0;
  /// Bit 0 (kCacheNotModified): the base already holds this responder's
  /// answers for this query at exactly `cache_epoch`; `items` is empty
  /// and the base re-materializes the answer from its cached slice.
  uint8_t cache_flags = 0;

  static constexpr uint8_t kCacheNotModified = 0x01;

  Bytes Encode() const;
  static Result<SearchResultMessage> Decode(const Bytes& data);
};

/// Hot-answer replica push (result-cache subsystem): a responder copies
/// the objects behind a frequently served answer to a direct peer, so the
/// next query finds them at hop 1. Distinct from ReplicatePushMessage —
/// these copies carry a TTL and expire at the receiver (churn safety).
struct CacheReplicaPushMessage {
  /// Pusher's IndexEpoch when the objects were read.
  uint64_t source_epoch = 0;
  /// Receiver-side lifetime (0 = no expiry).
  int64_t ttl = 0;
  std::vector<ResultItem> items;

  Bytes Encode() const;
  static Result<CacheReplicaPushMessage> Decode(const Bytes& data);
};

/// Data-shipping request (§6 future work): pull the peer's entire shared
/// store so the requester can scan it locally.
struct DataShipRequest {
  uint64_t query_id = 0;

  Bytes Encode() const;
  static Result<DataShipRequest> Decode(const Bytes& data);
};

/// The peer's store contents, shipped back for local processing.
struct DataShipResponse {
  uint64_t query_id = 0;
  std::vector<ResultItem> items;

  Bytes Encode() const;
  static Result<DataShipResponse> Decode(const Bytes& data);
};

/// Mode-2 follow-up: the initiator asks a responder for object contents.
struct FetchRequestMessage {
  uint64_t query_id = 0;
  std::vector<storm::ObjectId> ids;

  Bytes Encode() const;
  static Result<FetchRequestMessage> Decode(const Bytes& data);
};

/// Contents served for a FetchRequestMessage.
struct FetchResponseMessage {
  uint64_t query_id = 0;
  std::vector<ResultItem> items;

  Bytes Encode() const;
  static Result<FetchResponseMessage> Decode(const Bytes& data);
};

/// Replica push: the owner copies objects to a peer so they can be
/// answered closer to future requesters (the paper's §6 replication
/// direction). Receivers store copies under the same global ids.
struct ReplicatePushMessage {
  std::vector<ResultItem> items;

  Bytes Encode() const;
  static Result<ReplicatePushMessage> Decode(const Bytes& data);
};

/// Watch subscription: the sender wants kUpdateNotifyType messages when
/// the receiver's shared store changes (§3.4: "a node may particularly
/// be interested in monitoring the updates of a set of peers").
struct WatchRequest {
  bool subscribe = true;  // false = unsubscribe.

  Bytes Encode() const;
  static Result<WatchRequest> Decode(const Bytes& data);
};

/// Pushed to watchers when a shared object is added/updated/removed.
struct UpdateNotifyMessage {
  enum class Kind : uint8_t { kAdded = 0, kUpdated = 1, kRemoved = 2 };
  Kind kind = Kind::kAdded;
  storm::ObjectId object_id = 0;

  Bytes Encode() const;
  static Result<UpdateNotifyMessage> Decode(const Bytes& data);
};

/// A peer's content summary (Bloom filter + top keywords over its shared
/// store's keyword index), exchanged at connect/reconfiguration time and
/// re-broadcast when the sender's index epoch moves. The receiving base
/// node skips direct peers whose summary provably excludes every DNF
/// branch of a query.
struct PeerSummaryMessage {
  storm::ContentSummary summary;

  Bytes Encode() const { return summary.Encode(); }
  static Result<PeerSummaryMessage> Decode(const Bytes& data) {
    PeerSummaryMessage msg;
    BP_ASSIGN_OR_RETURN(msg.summary, storm::ContentSummary::Decode(data));
    return msg;
  }
};

/// Request to render a named active object at `level` access.
struct ActiveObjectRequest {
  uint64_t request_id = 0;
  std::string object_name;
  uint8_t access_level = 0;

  Bytes Encode() const;
  static Result<ActiveObjectRequest> Decode(const Bytes& data);
};

/// Rendered active-object content (or an error flag).
struct ActiveObjectResponse {
  uint64_t request_id = 0;
  bool ok = false;
  Bytes content;

  Bytes Encode() const;
  static Result<ActiveObjectResponse> Decode(const Bytes& data);
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_MESSAGES_H_
