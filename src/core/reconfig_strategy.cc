#include "core/reconfig_strategy.h"

#include <algorithm>
#include <map>
#include <string>

namespace bestpeer::core {

namespace {

/// Merges observations with non-responding current peers into one
/// candidate table (current peers default to answers=0, hops=1).
std::vector<PeerObservation> BuildCandidates(
    const std::vector<PeerObservation>& observations,
    const std::vector<NodeId>& current_peers) {
  std::map<NodeId, PeerObservation> table;
  for (NodeId peer : current_peers) {
    PeerObservation obs;
    obs.node = peer;
    obs.answers = 0;
    obs.hops = 1;
    table[peer] = obs;
  }
  for (const auto& obs : observations) {
    auto it = table.find(obs.node);
    if (it == table.end() || it->second.answers < obs.answers) {
      table[obs.node] = obs;
    }
  }
  std::vector<PeerObservation> out;
  out.reserve(table.size());
  for (const auto& [node, obs] : table) out.push_back(obs);
  return out;
}

std::vector<NodeId> TakeTop(std::vector<PeerObservation> candidates,
                                 size_t capacity) {
  if (candidates.size() > capacity) candidates.resize(capacity);
  std::vector<NodeId> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) out.push_back(c.node);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<NodeId> MaxCountStrategy::SelectPeers(
    const std::vector<PeerObservation>& observations,
    const std::vector<NodeId>& current_peers, size_t capacity) const {
  auto candidates = BuildCandidates(observations, current_peers);
  // Most answers first; ties broken deterministically by node id.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const PeerObservation& a, const PeerObservation& b) {
                     if (a.answers != b.answers) return a.answers > b.answers;
                     return a.node < b.node;
                   });
  return TakeTop(std::move(candidates), capacity);
}

std::vector<NodeId> MinHopsStrategy::SelectPeers(
    const std::vector<PeerObservation>& observations,
    const std::vector<NodeId>& current_peers, size_t capacity) const {
  auto candidates = BuildCandidates(observations, current_peers);
  // Larger hops first ("keep nodes that are further away"); ties prefer
  // more answers, then node id.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const PeerObservation& a, const PeerObservation& b) {
                     if (a.hops != b.hops) return a.hops > b.hops;
                     if (a.answers != b.answers) return a.answers > b.answers;
                     return a.node < b.node;
                   });
  return TakeTop(std::move(candidates), capacity);
}

std::vector<NodeId> FastestResponseStrategy::SelectPeers(
    const std::vector<PeerObservation>& observations,
    const std::vector<NodeId>& current_peers, size_t capacity) const {
  auto candidates = BuildCandidates(observations, current_peers);
  // Nodes that actually responded come first, earliest first; silent
  // current peers (first_response == 0, answers == 0) rank last.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const PeerObservation& a, const PeerObservation& b) {
                     bool a_responded = a.answers > 0;
                     bool b_responded = b.answers > 0;
                     if (a_responded != b_responded) return a_responded;
                     if (a.first_response != b.first_response) {
                       return a.first_response < b.first_response;
                     }
                     if (a.answers != b.answers) return a.answers > b.answers;
                     return a.node < b.node;
                   });
  return TakeTop(std::move(candidates), capacity);
}

std::vector<NodeId> NoReconfigStrategy::SelectPeers(
    const std::vector<PeerObservation>& observations,
    const std::vector<NodeId>& current_peers, size_t capacity) const {
  (void)observations;
  std::vector<NodeId> out = current_peers;
  if (out.size() > capacity) out.resize(capacity);
  return out;
}

Result<std::unique_ptr<ReconfigStrategy>> MakeReconfigStrategy(
    std::string_view name) {
  if (name == "maxcount") {
    return std::unique_ptr<ReconfigStrategy>(new MaxCountStrategy);
  }
  if (name == "minhops") {
    return std::unique_ptr<ReconfigStrategy>(new MinHopsStrategy);
  }
  if (name == "fastest") {
    return std::unique_ptr<ReconfigStrategy>(new FastestResponseStrategy);
  }
  if (name == "none") {
    return std::unique_ptr<ReconfigStrategy>(new NoReconfigStrategy);
  }
  return Status::InvalidArgument("unknown reconfiguration strategy: " +
                                 std::string(name));
}

}  // namespace bestpeer::core
