#include "core/compute.h"

#include "storm/storm.h"

namespace bestpeer::core {

Status FilterRegistry::Register(std::string_view name, FilterFn filter) {
  if (filters_.find(name) != filters_.end()) {
    return Status::AlreadyExists("filter " + std::string(name));
  }
  filters_.emplace(std::string(name), std::move(filter));
  return Status::OK();
}

Result<FilterFn> FilterRegistry::Get(std::string_view name) const {
  auto it = filters_.find(name);
  if (it == filters_.end()) {
    return Status::NotFound("filter " + std::string(name));
  }
  return it->second;
}

bool FilterRegistry::Contains(std::string_view name) const {
  return filters_.find(name) != filters_.end();
}

void ComputeAgent::SaveState(BinaryWriter& writer) const {
  writer.WriteU64(query_id_);
  writer.WriteString(filter_name_);
  writer.WriteBytes(params_);
  writer.WriteI64(per_object_cost_);
}

Status ComputeAgent::LoadState(BinaryReader& reader) {
  BP_ASSIGN_OR_RETURN(query_id_, reader.ReadU64());
  BP_ASSIGN_OR_RETURN(filter_name_, reader.ReadString());
  BP_ASSIGN_OR_RETURN(params_, reader.ReadBytes());
  BP_ASSIGN_OR_RETURN(per_object_cost_, reader.ReadI64());
  return Status::OK();
}

Status ComputeAgent::Execute(agent::AgentContext& ctx) {
  storm::Storm* storage = ctx.host()->storage();
  if (storage == nullptr) return Status::OK();
  auto* compute_host = dynamic_cast<ComputeHost*>(ctx.host());
  if (compute_host == nullptr) return Status::OK();

  auto filter = compute_host->filters().Get(filter_name_);
  if (!filter.ok()) {
    // The provider does not know this algorithm; in the full system the
    // code would ship with the agent. Here unknown filters are a no-op.
    return Status::OK();
  }

  SearchResultMessage result;
  result.query_id = query_id_;
  result.hops = ctx.hops();
  result.mode = 1;

  size_t scanned = 0;
  Status status = Status::OK();
  storm::Storm::ScanResult all;  // unused; ForEach drives the scan
  (void)all;
  std::vector<storm::ObjectId> ids = storage->ListIds();
  for (storm::ObjectId id : ids) {
    ++scanned;
    auto content = storage->Get(id);
    if (!content.ok()) {
      status = content.status();
      break;
    }
    auto filtered = filter.value()(content.value(), params_);
    if (!filtered.ok()) continue;  // Filter rejected the object.
    if (filtered->empty()) continue;
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    item.content = std::move(filtered).value();
    result.items.push_back(std::move(item));
  }
  ctx.ChargeCpu(static_cast<SimTime>(scanned) * per_object_cost_);
  if (!status.ok()) return status;
  if (!result.items.empty()) {
    ctx.SendMessage(ctx.origin_node(), kSearchResultType, result.Encode());
  }
  return Status::OK();
}

}  // namespace bestpeer::core
