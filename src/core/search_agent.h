#ifndef BESTPEER_CORE_SEARCH_AGENT_H_
#define BESTPEER_CORE_SEARCH_AGENT_H_

#include <map>
#include <string>
#include <utility>

#include "agent/agent.h"
#include "core/config.h"
#include "core/messages.h"

namespace bestpeer::storm {
class Storm;
}

namespace bestpeer::core {

/// Registered class name of the StorM search agent.
inline constexpr std::string_view kSearchAgentClass = "StormSearchAgent";

/// The paper's StorM agent (§4.2): at each visited node it compares every
/// object in the shared StorM database against the query keyword, then
/// sends the matches straight back to the base node (out-of-network).
///
/// Carried state: query id, keyword, answer mode and the cost constants
/// (an agent's code knows its own costs, so remote nodes need no
/// coordination about them).
class SearchAgent : public agent::Agent {
 public:
  SearchAgent() = default;
  SearchAgent(uint64_t query_id, std::string keyword, AnswerMode mode,
              SimTime per_object_cost, size_t descriptor_bytes)
      : query_id_(query_id),
        keyword_(std::move(keyword)),
        mode_(mode),
        per_object_cost_(per_object_cost),
        descriptor_bytes_(descriptor_bytes) {}

  std::string_view class_name() const override { return kSearchAgentClass; }
  void SaveState(BinaryWriter& writer) const override;
  Status LoadState(BinaryReader& reader) override;
  Status Execute(agent::AgentContext& ctx) override;

  uint64_t query_id() const { return query_id_; }
  const std::string& keyword() const { return keyword_; }

  /// Arms the cache-probe hop step (result-cache subsystem): the agent
  /// carries the base node's last known IndexEpoch per responder. At each
  /// node it first probes the local result cache, and when the base's
  /// known epoch still matches the store it answers with a tiny
  /// "not-modified" reply instead of re-shipping the items.
  void EnableCacheProbe(std::map<uint32_t, uint64_t> known_epochs,
                        SimTime probe_cost) {
    cache_probe_ = true;
    known_epochs_ = std::move(known_epochs);
    probe_cost_ = probe_cost;
  }

  bool cache_probe_enabled() const { return cache_probe_; }

  /// Arms the index-backed search path: at each node the agent answers
  /// from Storm::IndexSearch (CPU charged per posting touched) instead
  /// of the full per-object scan. A node whose store has no index falls
  /// back to the scan path, so mixed fleets stay correct.
  void EnableIndexSearch(SimTime per_posting_cost) {
    use_index_ = true;
    per_posting_cost_ = per_posting_cost;
  }

  bool index_search_enabled() const { return use_index_; }

 private:
  /// Trailing-section flag bits (see SaveState).
  static constexpr uint8_t kFlagCacheProbe = 0x01;
  static constexpr uint8_t kFlagIndexSearch = 0x02;

  /// Runs the local store lookup at the visited node: the index path
  /// when armed and available, else the paper's full scan. Charges CPU
  /// and reports the store-size hint for the result header.
  Result<std::vector<storm::ObjectId>> FindMatches(agent::AgentContext& ctx,
                                                   storm::Storm* storage,
                                                   uint32_t* store_size_hint);

  uint64_t query_id_ = 0;
  std::string keyword_;
  AnswerMode mode_ = AnswerMode::kDirect;
  SimTime per_object_cost_ = Micros(15);
  size_t descriptor_bytes_ = 64;
  /// Optional trailing state, serialized only when armed so cache-off
  /// agent transfers stay byte-identical to older builds.
  bool cache_probe_ = false;
  SimTime probe_cost_ = Micros(5);
  std::map<uint32_t, uint64_t> known_epochs_;
  /// Index-path state (trailing section, bit kFlagIndexSearch).
  bool use_index_ = false;
  SimTime per_posting_cost_ = Micros(1);
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_SEARCH_AGENT_H_
