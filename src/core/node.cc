#include "core/node.h"

#include <utility>

#include "core/search_agent.h"
#include "obs/flight_recorder.h"
#include "storm/query_expr.h"
#include "util/logging.h"
#include "util/strings.h"

namespace bestpeer::core {

Status RegisterBuiltinAgents(agent::AgentRegistry* registry,
                             const BestPeerConfig& config) {
  if (!registry->Contains(kSearchAgentClass)) {
    BP_RETURN_IF_ERROR(registry->Register(
        kSearchAgentClass, config.search_agent_code_bytes,
        []() { return std::make_unique<SearchAgent>(); }));
  }
  if (!registry->Contains(kComputeAgentClass)) {
    BP_RETURN_IF_ERROR(registry->Register(
        kComputeAgentClass, config.search_agent_code_bytes,
        []() { return std::make_unique<ComputeAgent>(); }));
  }
  return Status::OK();
}

BestPeerNode::BestPeerNode(net::Transport* transport, SharedInfra* infra,
                           BestPeerConfig config)
    : transport_(transport),
      node_(transport->local()),
      infra_(infra),
      config_(std::move(config)),
      peers_(config_.max_direct_peers),
      next_file_object_id_((static_cast<uint64_t>(node_) << 32) |
                           0x80000000ULL) {}

Result<std::unique_ptr<BestPeerNode>> BestPeerNode::Create(
    net::Transport* transport, SharedInfra* infra, BestPeerConfig config) {
  auto owned = std::unique_ptr<BestPeerNode>(
      new BestPeerNode(transport, infra, std::move(config)));
  BP_RETURN_IF_ERROR(owned->Init());
  return owned;
}

Status BestPeerNode::Init() {
  BP_ASSIGN_OR_RETURN(codec_, MakeCodec(config_.codec));
  BP_ASSIGN_OR_RETURN(strategy_, MakeReconfigStrategy(config_.strategy));
  BP_RETURN_IF_ERROR(RegisterBuiltinAgents(&infra_->agent_registry, config_));

  if (config_.metrics != nullptr) {
    metrics::Registry* reg = config_.metrics;
    queries_issued_c_ = reg->GetCounter("core.queries_issued");
    results_received_c_ = reg->GetCounter("core.results_received");
    answers_received_c_ = reg->GetCounter("core.answers_received");
    reconfigurations_c_ = reg->GetCounter("core.reconfigurations");
    fetches_issued_c_ = reg->GetCounter("core.fetches_issued");
    late_results_c_ = reg->GetCounter("core.late_results");
    sessions_finalized_c_ = reg->GetCounter("core.sessions_finalized");
    peer_evictions_c_ = reg->GetCounter("core.peer_evictions");
    inflight_sessions_g_ = reg->GetGauge("core.inflight_sessions");
    result_hops_ = reg->GetHistogram("core.result_hops");
    if (config_.enable_result_cache) {
      remote_hits_c_ = reg->GetCounter("core.cache_remote_hits");
      notmod_orphans_c_ = reg->GetCounter("core.cache_notmod_orphans");
      index_epoch_g_ = reg->GetGauge("core.index_epoch");
    }
    if (config_.enable_replication) {
      replica_pushes_c_ = reg->GetCounter("core.replica_pushes");
      replicas_expired_c_ = reg->GetCounter("core.replicas_expired");
    }
    if (config_.enable_content_summaries) {
      summary_skips_c_ = reg->GetCounter("core.summary_skips");
    }
    if (config_.enable_gossip && config_.enable_result_cache) {
      gossip_invalidations_c_ = reg->GetCounter("core.gossip_invalidations");
    }
    if (config_.count_stale_probes) {
      stale_probes_c_ = reg->GetCounter("core.cache_stale_probes");
    }
  }
  if (config_.enable_result_cache) {
    cache::ResultCacheOptions rc;
    rc.byte_budget = config_.result_cache_bytes;
    rc.lru_only = config_.cache_lru_only;
    rc.metrics = config_.metrics;
    rc.flight = transport_->flight();
    rc.node = node_;
    rc.now = [this]() { return transport_->clock().now(); };
    result_cache_ = std::make_unique<cache::ResultCache>(std::move(rc));
    if (config_.enable_replication) {
      cache::ReplicaManagerOptions rm;
      rm.hot_threshold = config_.replica_hot_threshold;
      rm.top_k = config_.replica_top_k;
      rm.cooldown = config_.replica_cooldown;
      rm.metrics = config_.metrics;
      replica_mgr_ = std::make_unique<cache::ReplicaManager>(rm);
    }
  }
  transport_->RegisterTypeName(kSearchResultType, "search.result");
  transport_->RegisterTypeName(kFetchReqType, "fetch.request");
  transport_->RegisterTypeName(kFetchRespType, "fetch.response");
  transport_->RegisterTypeName(kActiveObjReqType, "activeobj.request");
  transport_->RegisterTypeName(kActiveObjRespType, "activeobj.response");
  transport_->RegisterTypeName(kPeerConnectType, "peer.connect");
  transport_->RegisterTypeName(kPeerDisconnectType, "peer.disconnect");
  transport_->RegisterTypeName(kDataShipReqType, "dataship.request");
  transport_->RegisterTypeName(kDataShipRespType, "dataship.response");
  transport_->RegisterTypeName(kReplicatePushType, "replicate.push");
  transport_->RegisterTypeName(kWatchReqType, "watch.request");
  transport_->RegisterTypeName(kUpdateNotifyType, "update.notify");
  transport_->RegisterTypeName(kCacheReplicaPushType, "cache.replica_push");
  transport_->RegisterTypeName(kPeerSummaryType, "peer.summary");

  dispatcher_ = std::make_unique<net::Dispatcher>(transport_);
  liglo::LigloClientOptions liglo_options;
  liglo_options.max_retries = config_.liglo_max_retries;
  liglo_options.retry_backoff = config_.liglo_retry_backoff;
  liglo_options.metrics = config_.metrics;
  liglo_ = std::make_unique<liglo::LigloClient>(
      transport_, dispatcher_.get(), &infra_->ip_directory, liglo_options);

  agent::AgentRuntimeOptions agent_options;
  agent_options.reconstruct_cost = config_.agent_reconstruct_cost;
  agent_options.class_load_cost = config_.agent_class_load_cost;
  agent_options.forward_cost = config_.agent_forward_cost;
  agent_options.seen_expiry = config_.agent_seen_expiry;
  agent_options.codec = codec_;
  agent_options.metrics = config_.metrics;
  runtime_ = std::make_unique<agent::AgentRuntime>(
      transport_, &infra_->agent_registry, &infra_->code_cache, this,
      [this]() { return peers_.Nodes(); }, agent_options);

  dispatcher_->Register(agent::kAgentTransferType,
                        [this](const net::Message& m) {
                          Status s = runtime_->OnMessage(m);
                          if (!s.ok()) {
                            BP_LOG(Warn) << "agent transfer failed at node "
                                         << node_ << ": " << s.ToString();
                          }
                        });
  dispatcher_->Register(kSearchResultType, [this](const net::Message& m) {
    OnSearchResult(m);
  });
  dispatcher_->Register(kFetchReqType, [this](const net::Message& m) {
    OnFetchRequest(m);
  });
  dispatcher_->Register(kFetchRespType, [this](const net::Message& m) {
    OnFetchResponse(m);
  });
  dispatcher_->Register(kActiveObjReqType, [this](const net::Message& m) {
    OnActiveObjectRequest(m);
  });
  dispatcher_->Register(kActiveObjRespType, [this](const net::Message& m) {
    OnActiveObjectResponse(m);
  });
  dispatcher_->Register(kDataShipReqType, [this](const net::Message& m) {
    OnDataShipRequest(m);
  });
  dispatcher_->Register(kReplicatePushType,
                        [this](const net::Message& m) {
                          OnReplicatePush(m);
                        });
  dispatcher_->Register(kCacheReplicaPushType,
                        [this](const net::Message& m) {
                          OnCacheReplicaPush(m);
                        });
  dispatcher_->Register(kWatchReqType, [this](const net::Message& m) {
    OnWatchRequest(m);
  });
  dispatcher_->Register(kUpdateNotifyType,
                        [this](const net::Message& m) {
                          OnUpdateNotify(m);
                        });
  dispatcher_->Register(kDataShipRespType,
                        [this](const net::Message& m) {
                          OnDataShipResponse(m);
                        });
  dispatcher_->Register(kPeerConnectType, [this](const net::Message& m) {
    OnPeerConnect(m);
  });
  dispatcher_->Register(kPeerDisconnectType,
                        [this](const net::Message& m) {
                          OnPeerDisconnect(m);
                        });
  dispatcher_->Register(kPeerSummaryType, [this](const net::Message& m) {
    OnPeerSummary(m);
  });

  if (config_.enable_gossip) {
    transport_->RegisterTypeName(gossip::kGossipMsgType, "gossip.frame");
    gossip::GossipOptions go;
    go.fanout = config_.gossip_fanout;
    go.round_interval = config_.gossip_interval;
    go.hot_rounds = config_.gossip_hot_rounds;
    go.seed = config_.gossip_seed;
    go.metrics = config_.metrics;
    gossip_ = std::make_unique<gossip::GossipAgent>(transport_, go);
    gossip_->SetPeerProvider([this]() { return peers_.Nodes(); });
    gossip_->SetApplyHook(
        [this](const gossip::GossipItem& item) { OnGossipApply(item); });
    dispatcher_->Register(gossip::kGossipMsgType,
                          [this](const net::Message& m) {
                            gossip_->OnMessage(m);
                          });
  }
  return Status::OK();
}

// ---------------------------------------------------------------- storage

Status BestPeerNode::InitStorage(const storm::StormOptions& options) {
  storm::StormOptions opts = options;
  if (opts.metrics == nullptr && config_.metrics != nullptr) {
    opts.metrics = config_.metrics;
    opts.metrics_label = std::to_string(node_);
  }
  // Both the index search path and the summary digest need the inverted
  // index regardless of what the caller's store options say.
  if (config_.use_index_search || config_.enable_content_summaries) {
    opts.build_index = true;
  }
  BP_ASSIGN_OR_RETURN(storage_, storm::Storm::Open(opts));
  if (result_cache_ != nullptr || config_.enable_content_summaries ||
      gossip_ != nullptr) {
    // StorM epoch hook: every insert/delete bumps the mutation epoch, which
    // is what lazily invalidates cached slices (they carry the epoch they
    // were computed at). The gauge makes the bump observable. The summary
    // plane rides the same hook to refresh what peers know about us, and
    // the gossip plane floods the bump so remote caches invalidate ahead
    // of their next probe.
    storage_->SetMutationListener([this](uint64_t epoch) {
      index_epoch_g_->Set(epoch + 1);
      if (config_.enable_content_summaries) ScheduleSummaryRefresh();
      if (gossip_ != nullptr) gossip_->AnnounceEpoch(epoch + 1);
    });
  }
  return Status::OK();
}

Status BestPeerNode::ShareObject(storm::ObjectId id, const Bytes& content) {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("storage not initialized");
  }
  BP_RETURN_IF_ERROR(storage_->Put(id, content));
  NotifyWatchers(UpdateNotifyMessage::Kind::kAdded, id);
  return Status::OK();
}

Status BestPeerNode::UnshareObject(storm::ObjectId id) {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("storage not initialized");
  }
  BP_RETURN_IF_ERROR(storage_->Delete(id));
  NotifyWatchers(UpdateNotifyMessage::Kind::kRemoved, id);
  return Status::OK();
}

Status BestPeerNode::UpdateObject(storm::ObjectId id, const Bytes& content) {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("storage not initialized");
  }
  BP_RETURN_IF_ERROR(storage_->Update(id, content));
  NotifyWatchers(UpdateNotifyMessage::Kind::kUpdated, id);
  return Status::OK();
}

void BestPeerNode::NotifyWatchers(UpdateNotifyMessage::Kind kind,
                                  storm::ObjectId id) {
  if (watchers_.empty()) return;
  UpdateNotifyMessage notify;
  notify.kind = kind;
  notify.object_id = id;
  Bytes encoded = notify.Encode();
  for (NodeId watcher : watchers_) {
    SendCompressed(watcher, kUpdateNotifyType, encoded);
  }
}

void BestPeerNode::WatchPeer(NodeId provider, UpdateCallback callback) {
  watching_[provider] = std::move(callback);
  WatchRequest req;
  req.subscribe = true;
  SendCompressed(provider, kWatchReqType, req.Encode());
}

void BestPeerNode::UnwatchPeer(NodeId provider) {
  watching_.erase(provider);
  WatchRequest req;
  req.subscribe = false;
  SendCompressed(provider, kWatchReqType, req.Encode());
}

void BestPeerNode::OnWatchRequest(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto req = WatchRequest::Decode(payload.value());
  if (!req.ok()) return;
  if (req->subscribe) {
    watchers_.insert(msg.src);
  } else {
    watchers_.erase(msg.src);
  }
}

void BestPeerNode::OnUpdateNotify(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto notify = UpdateNotifyMessage::Decode(payload.value());
  if (!notify.ok()) return;
  auto it = watching_.find(msg.src);
  if (it == watching_.end() || !it->second) return;
  it->second(msg.src, notify->kind, notify->object_id);
}

Status BestPeerNode::ShareFile(const std::string& name,
                               const Bytes& content) {
  if (shared_files_.count(name) != 0) {
    return Status::AlreadyExists("file " + name);
  }
  storm::ObjectId id = next_file_object_id_++;
  BP_RETURN_IF_ERROR(ShareObject(id, content));
  shared_files_[name] = id;
  return Status::OK();
}

Result<storm::ObjectId> BestPeerNode::LookupFile(
    const std::string& name) const {
  auto it = shared_files_.find(name);
  if (it == shared_files_.end()) {
    return Status::NotFound("file " + name);
  }
  return it->second;
}

// ---------------------------------------------------------------- LIGLO

void BestPeerNode::JoinNetwork(NodeId liglo_server, liglo::IpAddress ip,
                               JoinCallback callback) {
  infra_->ip_directory.Assign(ip, node_).ok();
  liglo_->Register(
      liglo_server, ip,
      [this, callback = std::move(callback)](
          Result<liglo::LigloClient::RegisterOutcome> outcome) {
        if (outcome.ok()) {
          // Adopt the starter peers (paper §2: the registration response
          // carries (BPID, IP) pairs of nodes we may talk to directly).
          for (const auto& entry : outcome->peers) {
            if (peers_.size() >= config_.max_direct_peers) break;
            auto peer_node = infra_->ip_directory.Resolve(entry.ip);
            if (!peer_node.ok()) continue;  // Stale address; skip.
            PeerInfo info;
            info.node = peer_node.value();
            info.bpid = entry.bpid;
            info.ip = entry.ip;
            if (peers_.Add(info)) {
              SendCompressed(info.node, kPeerConnectType, Bytes{});
              SendSummaryTo(info.node);
            }
          }
          NoteGossipPeersChanged();
        }
        if (callback) callback(std::move(outcome));
      });
}

void BestPeerNode::RejoinNetwork(liglo::IpAddress ip,
                                 RejoinCallback callback) {
  infra_->ip_directory.Assign(ip, node_).ok();
  // Collect the BPIDs of peers we know globally.
  std::vector<liglo::Bpid> bpids;
  std::vector<NodeId> owners;
  for (const auto& info : peers_.Snapshot()) {
    if (info.bpid.IsValid()) {
      bpids.push_back(info.bpid);
      owners.push_back(info.node);
    }
  }
  liglo_->Rejoin(
      ip, bpids,
      [this, owners, callback = std::move(callback)](
          Result<liglo::LigloClient::RejoinOutcome> outcome) {
        if (outcome.ok()) {
          for (size_t i = 0; i < outcome->peers.size(); ++i) {
            const auto& res = outcome->peers[i];
            PeerInfo* info = peers_.Find(owners[i]);
            if (info == nullptr) continue;
            if (res.state == liglo::PeerState::kOnline) {
              info->ip = res.ip;
              auto where = infra_->ip_directory.Resolve(res.ip);
              if (where.ok()) info->node = where.value();
            } else {
              // Offline or unknown: drop; new peers will be adopted as
              // they are encountered (paper §2).
              peers_.Remove(owners[i]);
            }
          }
          // Replace dropped peers with fresh ones from the LIGLO.
          ReplenishPeersIfIsolated();
        }
        if (callback) callback(std::move(outcome));
      });
}

// ---------------------------------------------------------------- peers

void BestPeerNode::AddDirectPeerLocal(NodeId peer) {
  PeerInfo info;
  info.node = peer;
  peers_.Add(info, /*enforce_capacity=*/false);
  NoteGossipPeersChanged();
}

void BestPeerNode::RemoveDirectPeerLocal(NodeId peer) {
  peers_.Remove(peer);
}

void BestPeerNode::OnPeerConnect(const net::Message& msg) {
  if (!peers_.Contains(msg.src) && peers_.size() >= config_.AcceptCap()) {
    // At the inbound cap: refuse so the other side drops the link too.
    SendCompressed(msg.src, kPeerDisconnectType, Bytes{});
    return;
  }
  PeerInfo info;
  info.node = msg.src;
  if (peers_.Add(info, /*enforce_capacity=*/false)) {
    // Answer with our summary so both link ends can prune (the opener
    // already sent theirs alongside the connect notice).
    SendSummaryTo(msg.src);
    NoteGossipPeersChanged();
  }
}

void BestPeerNode::OnPeerDisconnect(const net::Message& msg) {
  peers_.Remove(msg.src);
  peer_summaries_.erase(msg.src);
  RevokeLeasesFrom(msg.src);
  ReplenishPeersIfIsolated();
}

// ---------------------------------------------------------------- gossip

void BestPeerNode::NoteGossipPeersChanged() {
  if (gossip_ != nullptr) gossip_->NotifyPeersChanged();
}

void BestPeerNode::OnGossipApply(const gossip::GossipItem& item) {
  switch (item.kind) {
    case gossip::ItemKind::kIndexEpoch: {
      if (item.origin == node_) break;
      // The epoch bump arrived ahead of the next query: drop every slice
      // this producer contributed before any probe can discover the
      // staleness the expensive way (a full round trip).
      if (result_cache_ != nullptr) {
        size_t dropped =
            result_cache_->InvalidateSource(item.origin, item.payload);
        if (dropped > 0) {
          gossip_invalidations_ += dropped;
          gossip_invalidations_c_->Add(dropped);
        }
      }
      break;
    }
    case gossip::ItemKind::kLeaseGrant:
      // Grants are informational for third parties; the pusher's own
      // lease book was updated synchronously at push time.
      break;
    case gossip::ItemKind::kLeaseExpire: {
      // The holder's lease ended: stop treating it as freshly covered
      // when scoring placement for the next promotion.
      auto holder_it = lease_book_.find(item.origin);
      if (holder_it != lease_book_.end()) {
        holder_it->second.erase(item.subject);
        if (holder_it->second.empty()) lease_book_.erase(holder_it);
      }
      break;
    }
  }
}

void BestPeerNode::RevokeLeasesFrom(NodeId peer) {
  // Pusher role: forget every lease granted to the lost peer so the next
  // promotion re-places those objects.
  lease_book_.erase(peer);
  // Receiver role: delete the copies the lost peer pushed here — a
  // replica whose source is gone can never be refreshed, only go stale.
  if (replica_mgr_ == nullptr) return;
  std::vector<uint64_t> revoked = replica_mgr_->RevokeFrom(peer);
  for (uint64_t id : revoked) {
    if (storage_ != nullptr) storage_->Delete(id).ok();
    if (auto* flight = transport_->flight()) {
      obs::FlightEvent event;
      event.ts = transport_->clock().now();
      event.type = obs::EventType::kLeaseRevoke;
      event.node = node_;
      event.peer = peer;
      event.a = id;
      flight->Record(event);
    }
    if (gossip_ != nullptr) gossip_->AnnounceLeaseExpire(id, 0);
  }
}

void BestPeerNode::ReplenishPeersIfIsolated(bool below_capacity) {
  // A node whose last peer vanished (or refused the link) replaces it
  // with new peers from its LIGLO (§2: "it can simply replace those
  // peers by new peers that it encounters").
  const bool want_more = below_capacity
                             ? peers_.size() < config_.max_direct_peers
                             : peers_.Nodes().empty();
  if (!want_more || !liglo_->registered() || replenish_in_flight_) {
    return;
  }
  replenish_in_flight_ = true;
  liglo_->DiscoverPeers(
      [this](Result<std::vector<liglo::PeerEntry>> peers) {
        replenish_in_flight_ = false;
        if (!peers.ok()) return;
        for (const auto& entry : peers.value()) {
          if (peers_.size() >= config_.max_direct_peers) break;
          auto peer_node = infra_->ip_directory.Resolve(entry.ip);
          if (!peer_node.ok() || peer_node.value() == node_) continue;
          PeerInfo info;
          info.node = peer_node.value();
          info.bpid = entry.bpid;
          info.ip = entry.ip;
          if (peers_.Add(info)) {
            SendCompressed(info.node, kPeerConnectType, Bytes{});
            SendSummaryTo(info.node);
          }
        }
        NoteGossipPeersChanged();
      });
}

void BestPeerNode::OnPeerSummary(const net::Message& msg) {
  if (!config_.enable_content_summaries) return;
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto decoded = PeerSummaryMessage::Decode(payload.value());
  if (!decoded.ok()) return;
  auto it = peer_summaries_.find(msg.src);
  if (it != peer_summaries_.end() &&
      it->second.epoch() > decoded->summary.epoch()) {
    return;  // Reordered delivery: keep the newer digest.
  }
  peer_summaries_[msg.src] = std::move(decoded->summary);
}

const storm::ContentSummary& BestPeerNode::OwnSummary() {
  const uint64_t index_epoch =
      storage_ != nullptr ? storage_->mutation_epoch() + 1 : 0;
  if (!own_summary_valid_ || own_summary_.epoch() != index_epoch) {
    own_summary_ = storage_ != nullptr
                       ? storm::ContentSummary::Build(storage_->index(),
                                                      index_epoch)
                       : storm::ContentSummary();
    own_summary_valid_ = true;
  }
  return own_summary_;
}

void BestPeerNode::ScheduleSummaryRefresh() {
  if (!config_.enable_content_summaries || summary_push_pending_) return;
  // Debounce: a burst of mutations (store population, replica pushes)
  // yields one broadcast carrying the final epoch, not one per Put.
  summary_push_pending_ = true;
  transport_->clock().ScheduleAfter(0, [this]() {
    summary_push_pending_ = false;
    BroadcastSummary();
  });
}

void BestPeerNode::BroadcastSummary() {
  if (!config_.enable_content_summaries || storage_ == nullptr) return;
  const storm::ContentSummary& summary = OwnSummary();
  if (summary.epoch() == last_broadcast_epoch_) return;
  last_broadcast_epoch_ = summary.epoch();
  PeerSummaryMessage msg;
  msg.summary = summary;
  const Bytes payload = msg.Encode();
  for (NodeId peer : peers_.Nodes()) {
    SendCompressed(peer, kPeerSummaryType, payload);
  }
}

void BestPeerNode::SendSummaryTo(NodeId peer) {
  if (!config_.enable_content_summaries || storage_ == nullptr) return;
  PeerSummaryMessage msg;
  msg.summary = OwnSummary();
  SendCompressed(peer, kPeerSummaryType, msg.Encode());
}

std::vector<NodeId> BestPeerNode::SummarySkipSet(const std::string& keyword) {
  std::vector<NodeId> skip;
  if (!config_.enable_content_summaries || peer_summaries_.empty()) {
    return skip;
  }
  auto expr = storm::QueryExpr::Parse(keyword);
  if (!expr.ok()) return skip;
  for (const auto& [peer, summary] : peer_summaries_) {
    // Bloom filters have no false negatives: !MayMatch proves the peer
    // holds no object satisfying any DNF branch, so the skip is
    // recall-safe at hop 1. (The peer is not probed for its own
    // neighbours either — the pruning trade-off benched in
    // bench_index_search.)
    if (!summary.MayMatch(expr.value())) skip.push_back(peer);
  }
  return skip;
}

// ---------------------------------------------------------------- querying

uint64_t BestPeerNode::NextQueryId() {
  return (static_cast<uint64_t>(node_) << 32) | ++query_counter_;
}

Result<uint64_t> BestPeerNode::LaunchAgent(agent::Agent& agent,
                                           uint64_t query_id,
                                           const std::string& keyword,
                                           uint16_t ttl,
                                           const std::vector<NodeId>* skip) {
  if (ttl == 0) ttl = config_.default_ttl;
  queries_issued_c_->Increment();
  sessions_.emplace(
      query_id, QuerySession(query_id, keyword, config_.answer_mode,
                             transport_->clock().now()));
  inflight_sessions_g_->Add(1);
  BP_RETURN_IF_ERROR(runtime_->Launch(query_id, agent, ttl,
                                      config_.search_local_store, skip));
  ArmSessionDeadline(query_id);
  return query_id;
}

void BestPeerNode::ArmSessionDeadline(uint64_t query_id) {
  if (config_.query_deadline <= 0) return;
  transport_->clock().ScheduleAfter(
      config_.query_deadline,
      [this, query_id]() { FinalizeSession(query_id); });
}

void BestPeerNode::FinalizeSession(uint64_t query_id) {
  auto it = sessions_.find(query_id);
  if (it == sessions_.end() || it->second.finalized()) return;
  it->second.Finalize();
  ++sessions_finalized_;
  sessions_finalized_c_->Increment();
  inflight_sessions_g_->Add(-1);
  if (obs::FlightRecorder* flight = transport_->flight()) {
    obs::FlightEvent e;
    e.ts = transport_->clock().now();
    e.node = node_;
    e.flow = query_id;
    e.type = obs::EventType::kSessionFinalize;
    e.a = it->second.total_answers();
    e.b = it->second.responder_count();
    flight->Record(e);
    if (it->second.responder_count() == 0) {
      // The deadline fired with nothing heard back — the signature of a
      // dead base-node neighborhood or a lost agent.
      e.type = obs::EventType::kDeadlineExpire;
      e.a = 0;
      e.b = 0;
      flight->Record(e);
      flight->TripAnomaly(e.ts, "deadline without responses query=" +
                                    std::to_string(query_id));
    }
  }
  UpdatePeerHealth(it->second);
  probe_snapshots_.erase(query_id);  // Frozen sessions can't use slices.
}

void BestPeerNode::UpdatePeerHealth(const QuerySession& session) {
  std::set<NodeId> responders;
  for (const auto& e : session.responses()) responders.insert(e.node);

  std::vector<NodeId> evicted;
  for (NodeId peer : peers_.Nodes()) {
    PeerInfo* info = peers_.Find(peer);
    if (info == nullptr) continue;
    if (responders.count(peer) != 0) {
      info->consecutive_failures = 0;
      continue;
    }
    if (++info->consecutive_failures >= config_.peer_failure_threshold) {
      evicted.push_back(peer);
    }
  }
  for (NodeId peer : evicted) {
    // The peer missed too many deadlines in a row: treat it as dead and
    // replace it (paper §2: departed peers are "simply replace[d] ...
    // by new peers"). The disconnect notice is best-effort — a crashed
    // peer never sees it.
    peers_.Remove(peer);
    peer_summaries_.erase(peer);
    RevokeLeasesFrom(peer);
    SendCompressed(peer, kPeerDisconnectType, Bytes{});
    ++peer_evictions_;
    peer_evictions_c_->Increment();
  }
  if (!evicted.empty()) ReplenishPeersIfIsolated(/*below_capacity=*/true);
}

Result<uint64_t> BestPeerNode::IssueSearch(const std::string& keyword,
                                           uint16_t ttl) {
  uint64_t query_id = NextQueryId();
  SearchAgent agent(query_id, keyword, config_.answer_mode,
                    config_.per_object_match_cost,
                    config_.answer_descriptor_bytes);
  if (result_cache_ != nullptr) {
    // Arm the cache-probe hop step: the agent carries the epoch this base
    // last saw per responder, and the base keeps the matching slices
    // snapshotted so a "not modified" reply can be materialized locally.
    auto norm = storm::QueryExpr::NormalizeQuery(keyword);
    const std::string key = norm.ok() ? std::move(norm).value() : keyword;
    result_cache_->RecordAccess(key);
    std::map<uint32_t, uint64_t> known;
    std::map<NodeId, cache::CachedSlice> snapshot;
    if (const auto* slices = result_cache_->SlicesFor(key)) {
      for (const auto& [source, slice] : *slices) {
        known.emplace(static_cast<uint32_t>(source), slice.epoch);
        snapshot.emplace(static_cast<NodeId>(source), slice);
      }
    }
    agent.EnableCacheProbe(std::move(known), config_.cache_probe_cost);
    probe_snapshots_[query_id] = std::move(snapshot);
  }
  if (config_.use_index_search) {
    agent.EnableIndexSearch(config_.per_posting_cost);
  }
  std::vector<NodeId> skip = SummarySkipSet(keyword);
  if (!skip.empty()) {
    summary_skips_ += skip.size();
    summary_skips_c_->Add(skip.size());
  }
  return LaunchAgent(agent, query_id, keyword, ttl,
                     skip.empty() ? nullptr : &skip);
}

Result<uint64_t> BestPeerNode::IssueCompute(const std::string& filter_name,
                                            const Bytes& params,
                                            uint16_t ttl) {
  uint64_t query_id = NextQueryId();
  ComputeAgent agent(query_id, filter_name, params,
                     config_.per_object_match_cost * 2);
  return LaunchAgent(agent, query_id, filter_name, ttl);
}

size_t BestPeerNode::StoreSizeHint(NodeId node) const {
  auto it = store_size_hints_.find(node);
  return it == store_size_hints_.end() ? 0 : it->second;
}

Result<uint64_t> BestPeerNode::IssueDirectSearch(const std::string& keyword,
                                                 ShippingMode mode) {
  uint64_t query_id = NextQueryId();
  queries_issued_c_->Increment();
  sessions_.emplace(
      query_id, QuerySession(query_id, keyword, AnswerMode::kIndicate,
                             transport_->clock().now()));
  inflight_sessions_g_->Add(1);
  ArmSessionDeadline(query_id);

  std::vector<NodeId> code_targets;
  std::vector<NodeId> data_targets;
  for (NodeId peer : peers_.Nodes()) {
    ShippingStrategy strategy = ShippingStrategy::kCodeShipping;
    switch (mode) {
      case ShippingMode::kAlwaysCode:
        break;
      case ShippingMode::kAlwaysData:
        strategy = ShippingStrategy::kDataShipping;
        break;
      case ShippingMode::kAdaptive: {
        ShippingCostInputs inputs;
        inputs.remote_objects = StoreSizeHint(peer);
        inputs.class_cached =
            infra_->code_cache.Has(peer, kSearchAgentClass);
        strategy =
            ChooseShippingStrategy(inputs, config_, transport_->link());
        break;
      }
    }
    if (strategy == ShippingStrategy::kDataShipping) {
      data_targets.push_back(peer);
    } else {
      code_targets.push_back(peer);
    }
  }

  if (!code_targets.empty()) {
    SearchAgent agent(query_id, keyword, AnswerMode::kIndicate,
                      config_.per_object_match_cost,
                      config_.answer_descriptor_bytes);
    BP_RETURN_IF_ERROR(
        runtime_->LaunchTo(query_id, agent, /*ttl=*/1, code_targets));
  }
  for (NodeId peer : data_targets) {
    DataShipRequest req;
    req.query_id = query_id;
    SendCompressed(peer, kDataShipReqType, req.Encode(), query_id);
  }
  return query_id;
}

void BestPeerNode::OnDataShipRequest(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto req = DataShipRequest::Decode(payload.value());
  if (!req.ok()) return;
  if (storage_ == nullptr) return;

  auto response = std::make_shared<DataShipResponse>();
  response->query_id = req->query_id;
  SimTime cost = 0;
  for (storm::ObjectId id : storage_->ListIds()) {
    auto content = storage_->Get(id);
    if (!content.ok()) continue;
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    item.content = std::move(content).value();
    response->items.push_back(std::move(item));
    cost += config_.fetch_per_object_cost;
  }
  NodeId requester = msg.src;
  transport_->RunCpu(
      cost,
      [this, requester, response]() {
        SendCompressed(requester, kDataShipRespType, response->Encode(),
                       response->query_id);
      },
      "dataship.serve", response->query_id);
}

void BestPeerNode::OnDataShipResponse(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto resp = DataShipResponse::Decode(payload.value());
  if (!resp.ok()) return;
  auto it = sessions_.find(resp->query_id);
  if (it == sessions_.end()) return;
  if (it->second.finalized()) {
    ++late_results_;
    late_results_c_->Increment();
    return;
  }
  store_size_hints_[msg.src] = resp->items.size();

  // Scan the shipped store locally — this node paid for the data, now it
  // spends its own cycles on the filtering.
  size_t matches = 0;
  const std::string& keyword = it->second.keyword();
  for (const auto& item : resp->items) {
    if (ContainsKeyword(ToString(item.content), keyword)) ++matches;
  }
  SimTime cost = static_cast<SimTime>(resp->items.size()) *
                 config_.per_object_match_cost;
  NodeId responder = msg.src;
  uint64_t query_id = resp->query_id;
  transport_->RunCpu(
      cost,
      [this, query_id, responder, matches]() {
        auto session_it = sessions_.find(query_id);
        if (session_it == sessions_.end()) return;
        if (session_it->second.finalized()) {
          ++late_results_;
          late_results_c_->Increment();
          return;
        }
        ResponseEvent event;
        event.time = transport_->clock().now();
        event.node = responder;
        event.hops = 1;
        event.answers = matches;
        session_it->second.RecordResult(event);
      },
      "dataship.scan", query_id);
}

Status BestPeerNode::ReplicateObjects(
    const std::vector<storm::ObjectId>& ids) {
  if (storage_ == nullptr) {
    return Status::FailedPrecondition("storage not initialized");
  }
  ReplicatePushMessage push;
  for (storm::ObjectId id : ids) {
    BP_ASSIGN_OR_RETURN(Bytes content, storage_->Get(id));
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    item.content = std::move(content);
    push.items.push_back(std::move(item));
  }
  Bytes encoded = push.Encode();
  for (NodeId peer : peers_.Nodes()) {
    SendCompressed(peer, kReplicatePushType, encoded);
  }
  return Status::OK();
}

void BestPeerNode::OnReplicatePush(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto push = ReplicatePushMessage::Decode(payload.value());
  if (!push.ok() || storage_ == nullptr) return;
  SimTime cost = config_.fetch_per_object_cost *
                 static_cast<SimTime>(push->items.size());
  auto items = std::make_shared<std::vector<ResultItem>>(
      std::move(push->items));
  transport_->RunCpu(cost, [this, items]() {
    for (const auto& item : *items) {
      // A replica we already hold (or the original) is simply kept.
      Status s = storage_->Put(item.id, item.content);
      if (s.ok()) ++replicas_stored_;
    }
  });
}

const QuerySession* BestPeerNode::FindSession(uint64_t query_id) const {
  auto it = sessions_.find(query_id);
  return it == sessions_.end() ? nullptr : &it->second;
}

NodeTelemetry BestPeerNode::TelemetrySnapshot() const {
  NodeTelemetry t;
  t.peer_capacity = peers_.capacity();
  for (const PeerInfo& info : peers_.Snapshot()) {
    PeerTelemetry row;
    row.info = info;
    auto score = answer_scores_.find(info.node);
    if (score != answer_scores_.end()) row.benefit_score = score->second;
    auto hint = store_size_hints_.find(info.node);
    if (hint != store_size_hints_.end()) row.store_size_hint = hint->second;
    t.peers.push_back(std::move(row));
  }
  for (const auto& [id, session] : sessions_) {
    if (!session.finalized()) ++t.sessions_inflight;
  }
  t.peer_evictions = peer_evictions_;
  t.reconfigurations = reconfigurations_;
  if (replica_mgr_ != nullptr) {
    t.replica_leases = replica_mgr_->replica_count();
    t.replica_promotions = replica_mgr_->promotions();
  }
  t.replica_pushes = replica_pushes_;
  t.replicas_expired = replicas_expired_;
  t.replicas_stored = replicas_stored_;
  if (replica_mgr_ != nullptr) {
    t.leases_revoked = replica_mgr_->leases_revoked();
  }
  return t;
}

void BestPeerNode::SendCompressed(NodeId dst, uint32_t type,
                                  const Bytes& payload, uint64_t flow) {
  auto compressed = codec_->Compress(payload);
  if (!compressed.ok()) {
    BP_LOG(Error) << "compress failed: " << compressed.status().ToString();
    return;
  }
  transport_->Send(dst, type, std::move(compressed).value(), 0, flow);
}

Result<Bytes> BestPeerNode::DecodePayload(const net::Message& msg) const {
  return codec_->Decompress(msg.payload);
}

void BestPeerNode::OnSearchResult(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto result = SearchResultMessage::Decode(payload.value());
  if (!result.ok()) {
    BP_LOG(Warn) << "bad search result: " << result.status().ToString();
    return;
  }
  auto it = sessions_.find(result->query_id);
  if (it == sessions_.end()) return;  // Not ours (or long forgotten).
  if (it->second.finalized()) {
    // Straggler past the deadline: the answer set is frozen.
    ++late_results_;
    late_results_c_->Increment();
    return;
  }

  // A "not modified" reply is materialized from the slice snapshot taken
  // at launch — and only on an exact epoch match. A slice that was
  // evicted or invalidated mid-flight makes the reply an orphan, which is
  // dropped rather than ever served stale.
  auto cached_ids = std::make_shared<std::vector<uint64_t>>();
  bool from_cache = false;
  if (result->cache_epoch != 0 &&
      (result->cache_flags & SearchResultMessage::kCacheNotModified) != 0) {
    const cache::CachedSlice* slice = nullptr;
    auto snap_it = probe_snapshots_.find(result->query_id);
    if (snap_it != probe_snapshots_.end()) {
      auto s = snap_it->second.find(msg.src);
      if (s != snap_it->second.end() &&
          s->second.epoch == result->cache_epoch) {
        slice = &s->second;
      }
    }
    if (slice == nullptr) {
      ++cache_notmod_orphans_;
      notmod_orphans_c_->Increment();
      return;
    }
    *cached_ids = slice->ids;
    from_cache = true;
    ++cache_remote_hits_;
    remote_hits_c_->Increment();
    if (obs::FlightRecorder* flight = transport_->flight()) {
      obs::FlightEvent e;
      e.ts = transport_->clock().now();
      e.type = obs::EventType::kCacheHit;
      e.node = node_;
      e.peer = msg.src;
      e.flow = result->query_id;
      e.a = cached_ids->size();
      e.b = result->cache_epoch;
      flight->Record(e);
    }
  }

  ++results_received_;
  results_received_c_->Increment();
  answers_received_c_->Add(from_cache ? cached_ids->size()
                                      : result->items.size());
  result_hops_->Observe(static_cast<double>(result->hops));
  if (result->responder_object_count > 0) {
    store_size_hints_[msg.src] = result->responder_object_count;
  }

  // A stale probe: we asked this responder "unchanged since epoch E?"
  // and its answer came back at a different epoch — the conditional
  // round trip was wasted. These are what gossiped epoch bumps eliminate
  // (the slice is invalidated before the query launches, so no probe is
  // armed for it). Counting is observational only.
  if (config_.count_stale_probes && result->cache_epoch != 0 &&
      !from_cache) {
    auto snap_it = probe_snapshots_.find(result->query_id);
    if (snap_it != probe_snapshots_.end()) {
      auto s = snap_it->second.find(msg.src);
      if (s != snap_it->second.end() &&
          s->second.epoch != result->cache_epoch) {
        ++cache_stale_probes_;
        stale_probes_c_->Increment();
      }
    }
  }

  // A full reply from a cache-probing responder refreshes the base's
  // slice for it, so the next query for the same key can go conditional.
  if (result->cache_epoch != 0 && !from_cache && result_cache_ != nullptr) {
    auto norm = storm::QueryExpr::NormalizeQuery(it->second.keyword());
    if (norm.ok()) {
      cache::CachedSlice slice;
      slice.source = msg.src;
      slice.epoch = result->cache_epoch;
      slice.hops = result->hops;
      slice.ids.reserve(result->items.size());
      for (const auto& item : result->items) slice.ids.push_back(item.id);
      result_cache_->InsertSlice(norm.value(), std::move(slice));
    }
  }

  // Charge per-message handling at the base node, then record.
  auto record = std::make_shared<SearchResultMessage>(std::move(*result));
  NodeId responder = msg.src;
  transport_->RunCpu(
      config_.result_handling_cost,
      [this, record, responder, cached_ids, from_cache]() {
        auto session_it = sessions_.find(record->query_id);
        if (session_it == sessions_.end()) return;
        if (session_it->second.finalized()) {
          // Deadline fired while this result sat in the CPU queue.
          ++late_results_;
          late_results_c_->Increment();
          return;
        }
        ResponseEvent event;
        event.time = transport_->clock().now();
        event.node = responder;
        event.hops = record->hops;
        std::vector<uint64_t> ids;
        if (from_cache) {
          ids = *cached_ids;
        } else {
          ids.reserve(record->items.size());
          for (const auto& item : record->items) ids.push_back(item.id);
        }
        event.answers = ids.size();
        session_it->second.RecordResultWithIds(event, ids);

        if (record->mode == static_cast<uint8_t>(AnswerMode::kIndicate) &&
            config_.auto_fetch) {
          FetchObjects(responder, record->query_id, ids);
        }
      },
      "result.handle", record->query_id);
}

// ------------------------------------------------- hot-answer replication

void BestPeerNode::OnAnswerServed(std::string_view key,
                                  const std::vector<uint64_t>& matches) {
  if (replica_mgr_ == nullptr || result_cache_ == nullptr ||
      storage_ == nullptr || matches.empty()) {
    return;
  }
  uint32_t frequency = result_cache_->EstimateFrequency(key);
  if (!replica_mgr_->ShouldPromote(std::string(key), frequency,
                                   transport_->clock().now())) {
    return;
  }
  PushHotReplicas(matches);
}

void BestPeerNode::PushHotReplicas(const std::vector<uint64_t>& ids) {
  CacheReplicaPushMessage push;
  push.source_epoch = storage_->mutation_epoch() + 1;
  push.ttl = config_.replica_ttl;
  for (uint64_t id : ids) {
    auto content = storage_->Get(id);
    if (!content.ok()) continue;  // Deleted since the answer was served.
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    item.content = std::move(content).value();
    push.items.push_back(std::move(item));
  }
  if (push.items.empty()) return;

  std::vector<NodeId> targets;
  if (config_.qos_replica_placement) {
    // Placement-aware path: score candidates by the QoS telemetry the
    // node already keeps per direct peer, and push only to the best
    // `replica_fanout` of them — instead of broadcasting to every
    // direct neighbor. Peers already holding a fresh lease on every
    // object of this push are skipped outright (the gossiped lease book
    // is what keeps that knowledge current across expiries).
    std::vector<std::pair<NodeId, cache::PeerQoS>> candidates;
    for (const PeerInfo& info : peers_.Snapshot()) {
      bool fully_leased = false;
      auto holder_it = lease_book_.find(info.node);
      if (holder_it != lease_book_.end()) {
        fully_leased = true;
        for (const ResultItem& item : push.items) {
          auto lease = holder_it->second.find(item.id);
          if (lease == holder_it->second.end() ||
              lease->second != push.source_epoch) {
            fully_leased = false;
            break;
          }
        }
      }
      if (fully_leased) continue;
      cache::PeerQoS qos;
      qos.rtt_us = static_cast<double>(info.last_response_time);
      auto score = answer_scores_.find(info.node);
      if (score != answer_scores_.end()) qos.benefit = score->second;
      qos.failures = info.consecutive_failures;
      qos.bandwidth_bytes_per_us = transport_->link().bytes_per_us;
      candidates.emplace_back(info.node, qos);
    }
    targets = cache::ReplicaManager::SelectTargets(candidates,
                                                   config_.replica_fanout);
  } else {
    targets = peers_.Nodes();
  }

  Bytes encoded = push.Encode();
  for (NodeId peer : targets) {
    SendCompressed(peer, kCacheReplicaPushType, encoded);
    ++replica_pushes_;
    replica_pushes_c_->Increment();
    if (config_.qos_replica_placement) {
      for (const ResultItem& item : push.items) {
        lease_book_[peer][item.id] = push.source_epoch;
        if (gossip_ != nullptr) {
          gossip_->AnnounceLeaseGrant(item.id, peer, push.source_epoch);
        }
      }
    }
    if (obs::FlightRecorder* flight = transport_->flight()) {
      obs::FlightEvent e;
      e.ts = transport_->clock().now();
      e.type = obs::EventType::kReplicaPush;
      e.node = node_;
      e.peer = peer;
      e.a = push.items.size();
      e.b = push.source_epoch;
      flight->Record(e);
    }
  }
}

void BestPeerNode::OnCacheReplicaPush(const net::Message& msg) {
  // Replication is opt-in on the *receiver* too: without a manager the
  // push is ignored, so a mixed fleet can't grow unmanaged copies.
  if (replica_mgr_ == nullptr || storage_ == nullptr) return;
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto push = CacheReplicaPushMessage::Decode(payload.value());
  if (!push.ok()) return;
  SimTime cost = config_.fetch_per_object_cost *
                 static_cast<SimTime>(push->items.size());
  auto items = std::make_shared<std::vector<ResultItem>>(
      std::move(push->items));
  int64_t ttl = push->ttl;
  NodeId source = msg.src;
  transport_->RunCpu(cost, [this, items, ttl, source]() {
    for (const auto& item : *items) {
      if (storage_->Contains(item.id)) {
        // An object we own outright (the original, or a §6 replica)
        // must never be expired by a lease; only refresh leases on
        // copies this manager planted.
        if (!replica_mgr_->Tracks(item.id)) continue;
      } else {
        if (!storage_->Put(item.id, item.content).ok()) continue;
        ++replicas_stored_;
      }
      uint64_t generation = replica_mgr_->NoteStored(item.id, source);
      if (ttl > 0) {
        storm::ObjectId id = item.id;
        transport_->clock().ScheduleAfter(
            ttl, [this, id, generation]() { ExpireReplica(id, generation); });
      }
    }
  });
}

void BestPeerNode::ExpireReplica(storm::ObjectId id, uint64_t generation) {
  if (replica_mgr_ == nullptr || storage_ == nullptr) return;
  if (!replica_mgr_->ShouldExpire(id, generation)) return;  // Re-leased.
  replica_mgr_->Remove(id);
  // The delete bumps the mutation epoch, so any cached slice naming this
  // replica goes stale with it — expiry can't leave stale answers behind.
  storage_->Delete(id).ok();
  ++replicas_expired_;
  replicas_expired_c_->Increment();
  // Tell the fleet (the pusher above all) that this lease ended, so the
  // next promotion re-places the object instead of assuming coverage.
  if (gossip_ != nullptr) gossip_->AnnounceLeaseExpire(id, generation);
  if (obs::FlightRecorder* flight = transport_->flight()) {
    obs::FlightEvent e;
    e.ts = transport_->clock().now();
    e.type = obs::EventType::kReplicaExpire;
    e.node = node_;
    e.a = id;
    flight->Record(e);
  }
}

void BestPeerNode::FetchObjects(NodeId responder, uint64_t query_id,
                                const std::vector<storm::ObjectId>& ids) {
  fetches_issued_c_->Increment();
  FetchRequestMessage req;
  req.query_id = query_id;
  req.ids = ids;
  SendCompressed(responder, kFetchReqType, req.Encode(), query_id);
}

void BestPeerNode::OnFetchRequest(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto req = FetchRequestMessage::Decode(payload.value());
  if (!req.ok()) return;
  if (storage_ == nullptr) return;

  auto response = std::make_shared<FetchResponseMessage>();
  response->query_id = req->query_id;
  for (storm::ObjectId id : req->ids) {
    auto content = storage_->Get(id);
    // It is possible that the target node "may have removed the desired
    // content or updated it during the period of delay" (paper §2);
    // missing objects are simply skipped.
    if (!content.ok()) continue;
    ResultItem item;
    item.id = id;
    item.name = "obj-" + std::to_string(id);
    item.content = std::move(content).value();
    response->items.push_back(std::move(item));
  }
  SimTime cost = config_.fetch_per_object_cost *
                 static_cast<SimTime>(req->ids.size());
  NodeId requester = msg.src;
  transport_->RunCpu(
      cost,
      [this, requester, response]() {
        SendCompressed(requester, kFetchRespType, response->Encode(),
                       response->query_id);
      },
      "fetch.serve", req->query_id);
}

void BestPeerNode::OnFetchResponse(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto resp = FetchResponseMessage::Decode(payload.value());
  if (!resp.ok()) return;
  auto it = sessions_.find(resp->query_id);
  if (it == sessions_.end()) return;
  if (it->second.finalized()) {
    ++late_results_;
    late_results_c_->Increment();
    return;
  }
  ResponseEvent event;
  event.time = transport_->clock().now();
  event.node = msg.src;
  event.hops = 0;
  event.answers = resp->items.size();
  it->second.RecordFetch(event);
}

// ---------------------------------------------------------------- reconfig

Status BestPeerNode::Reconfigure(uint64_t query_id) {
  auto it = sessions_.find(query_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown query " + std::to_string(query_id));
  }
  auto observations = it->second.Observations();

  if (config_.history_weight > 0) {
    // Blend this query's answers into the per-node EWMA scores and rank
    // by the blended score instead of the raw last-query count.
    std::map<NodeId, bool> seen;
    for (auto& obs : observations) {
      double& score = answer_scores_[obs.node];
      score = static_cast<double>(obs.answers) +
              config_.history_weight * score;
      obs.answers = static_cast<uint64_t>(score);
      seen[obs.node] = true;
    }
    for (auto& [node, score] : answer_scores_) {
      if (seen.count(node) != 0) continue;
      score *= config_.history_weight;  // Stale favourites fade.
      if (score < 0.5) continue;
      PeerObservation ghost;
      ghost.node = node;
      ghost.answers = static_cast<uint64_t>(score);
      ghost.hops = 1;
      observations.push_back(ghost);
    }
  }

  auto new_peers = strategy_->SelectPeers(observations, peers_.Nodes(),
                                          config_.max_direct_peers);
  ApplyPeerSet(new_peers, observations);
  return Status::OK();
}

void BestPeerNode::ApplyPeerSet(
    const std::vector<NodeId>& new_peers,
    const std::vector<PeerObservation>& observations) {
  std::map<NodeId, PeerObservation> by_node;
  for (const auto& obs : observations) by_node[obs.node] = obs;

  bool changed = false;
  uint64_t adopted = 0;
  uint64_t dropped = 0;
  // Drop peers not selected.
  for (NodeId old_peer : peers_.Nodes()) {
    bool keep = false;
    for (NodeId p : new_peers) {
      if (p == old_peer) {
        keep = true;
        break;
      }
    }
    if (!keep) {
      peers_.Remove(old_peer);
      peer_summaries_.erase(old_peer);
      RevokeLeasesFrom(old_peer);
      SendCompressed(old_peer, kPeerDisconnectType, Bytes{});
      changed = true;
      ++dropped;
    }
  }
  // Adopt newly selected nodes.
  for (NodeId p : new_peers) {
    if (p == node_ || peers_.Contains(p)) {
      // Refresh stats on retained peers.
      PeerInfo* info = peers_.Find(p);
      auto obs_it = by_node.find(p);
      if (info != nullptr && obs_it != by_node.end()) {
        info->last_answers = obs_it->second.answers;
        info->total_answers += obs_it->second.answers;
        info->last_hops = obs_it->second.hops;
        info->last_response_time = obs_it->second.first_response;
      }
      continue;
    }
    PeerInfo info;
    info.node = p;
    auto obs_it = by_node.find(p);
    if (obs_it != by_node.end()) {
      info.last_answers = obs_it->second.answers;
      info.total_answers = obs_it->second.answers;
      info.last_hops = obs_it->second.hops;
      info.last_response_time = obs_it->second.first_response;
    }
    peers_.Add(info, /*enforce_capacity=*/false);
    SendCompressed(p, kPeerConnectType, Bytes{});
    SendSummaryTo(p);
    changed = true;
    ++adopted;
  }
  if (adopted > 0) NoteGossipPeersChanged();
  if (changed) {
    ++reconfigurations_;
    reconfigurations_c_->Increment();
    if (obs::FlightRecorder* flight = transport_->flight()) {
      obs::FlightEvent e;
      e.ts = transport_->clock().now();
      e.type = obs::EventType::kReconfig;
      e.node = node_;
      e.a = adopted;
      e.b = dropped;
      flight->Record(e);
    }
  }
}

// ---------------------------------------------------------------- active objects

void BestPeerNode::ShareActiveObject(const std::string& name,
                                     ActiveObject object) {
  active_objects_[name] = std::move(object);
}

void BestPeerNode::RequestActiveObject(NodeId provider,
                                       const std::string& name,
                                       AccessLevel level,
                                       ContentCallback callback) {
  uint64_t id = ++request_counter_;
  pending_content_[id] = std::move(callback);
  ActiveObjectRequest req;
  req.request_id = id;
  req.object_name = name;
  req.access_level = static_cast<uint8_t>(level);
  SendCompressed(provider, kActiveObjReqType, req.Encode());
}

void BestPeerNode::OnActiveObjectRequest(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto req = ActiveObjectRequest::Decode(payload.value());
  if (!req.ok()) return;

  auto response = std::make_shared<ActiveObjectResponse>();
  response->request_id = req->request_id;
  auto it = active_objects_.find(req->object_name);
  if (it != active_objects_.end()) {
    auto rendered = it->second.Render(
        static_cast<AccessLevel>(req->access_level), active_nodes_);
    if (rendered.ok()) {
      response->ok = true;
      response->content = std::move(rendered).value();
    }
  }
  NodeId requester = msg.src;
  transport_->RunCpu(config_.result_handling_cost,
                              [this, requester, response]() {
                                SendCompressed(requester, kActiveObjRespType,
                                               response->Encode());
                              });
}

void BestPeerNode::OnActiveObjectResponse(const net::Message& msg) {
  auto payload = DecodePayload(msg);
  if (!payload.ok()) return;
  auto resp = ActiveObjectResponse::Decode(payload.value());
  if (!resp.ok()) return;
  auto it = pending_content_.find(resp->request_id);
  if (it == pending_content_.end()) return;
  ContentCallback callback = std::move(it->second);
  pending_content_.erase(it);
  if (!callback) return;
  if (resp->ok) {
    callback(std::move(resp->content));
  } else {
    callback(Status::NotFound("active object unavailable"));
  }
}

}  // namespace bestpeer::core
