#ifndef BESTPEER_CORE_COMPUTE_H_
#define BESTPEER_CORE_COMPUTE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "agent/agent.h"
#include "core/messages.h"
#include "util/bytes.h"
#include "util/result.h"

namespace bestpeer::core {

/// Registered class name of the compute agent.
inline constexpr std::string_view kComputeAgentClass = "ComputeAgent";

/// A requester-supplied algorithm that runs over a provider's objects
/// (computational-power sharing, paper §3.2.3: "the requester performs
/// the filtering task at the provider's end").
///
/// A filter receives one object's content plus the requester's parameter
/// blob and returns the (possibly reduced) bytes to ship back — or an
/// empty result to skip the object.
using FilterFn =
    std::function<Result<Bytes>(const Bytes& object, const Bytes& params)>;

/// Name -> filter function. The registry is the safe C++ analogue of
/// shipping executable filter code: the *identity* of the algorithm plus
/// its parameters travel with the agent, and its registered code size is
/// charged to the wire by the agent framework.
class FilterRegistry {
 public:
  Status Register(std::string_view name, FilterFn filter);
  Result<FilterFn> Get(std::string_view name) const;
  bool Contains(std::string_view name) const;
  size_t size() const { return filters_.size(); }

 private:
  std::map<std::string, FilterFn, std::less<>> filters_;
};

/// Agent carrying a filter id + parameters; at each node it runs the
/// filter over every shared object and sends the non-empty outputs back
/// to the base node as a mode-1 result ("only the necessary data is
/// transmitted to the requester").
class ComputeAgent : public agent::Agent {
 public:
  ComputeAgent() = default;
  ComputeAgent(uint64_t query_id, std::string filter_name, Bytes params,
               SimTime per_object_cost)
      : query_id_(query_id),
        filter_name_(std::move(filter_name)),
        params_(std::move(params)),
        per_object_cost_(per_object_cost) {}

  std::string_view class_name() const override { return kComputeAgentClass; }
  void SaveState(BinaryWriter& writer) const override;
  Status LoadState(BinaryReader& reader) override;
  Status Execute(agent::AgentContext& ctx) override;

  uint64_t query_id() const { return query_id_; }

 private:
  uint64_t query_id_ = 0;
  std::string filter_name_;
  Bytes params_;
  SimTime per_object_cost_ = Micros(30);
};

/// Host capability the compute agent needs beyond storage. BestPeerNode
/// implements it; the agent discovers it by dynamic_cast from AgentHost.
class ComputeHost {
 public:
  virtual ~ComputeHost() = default;
  virtual const FilterRegistry& filters() const = 0;
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_COMPUTE_H_
