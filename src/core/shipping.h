#ifndef BESTPEER_CORE_SHIPPING_H_
#define BESTPEER_CORE_SHIPPING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/config.h"
#include "net/transport.h"
#include "util/sim_time.h"

namespace bestpeer::core {

/// How a search interrogates one peer (the paper's §6 future work: "make
/// a node more intelligent by allowing it to determine at runtime which
/// strategy to adopt — code-shipping or data-shipping").
enum class ShippingStrategy : uint8_t {
  /// Send the agent; the peer scans its own store (the default).
  kCodeShipping = 0,
  /// Pull the peer's raw objects and scan them locally.
  kDataShipping = 1,
};

/// Mode of the shipping decision for direct searches.
enum class ShippingMode : uint8_t {
  kAlwaysCode = 0,
  kAlwaysData = 1,
  /// Per-peer cost-based choice using the peer's last known store size.
  kAdaptive = 2,
};

/// Cost model inputs for one peer interrogation.
struct ShippingCostInputs {
  /// Objects in the remote store (0 = unknown; forces code shipping).
  size_t remote_objects = 0;
  /// Average object size in bytes.
  size_t object_size = 1024;
  /// Whether the agent class is already resident at the peer.
  bool class_cached = true;
  /// Serialized agent size (state + envelope) in bytes.
  size_t agent_bytes = 256;
  /// Agent class size in bytes (shipped on a cache miss).
  size_t class_bytes = 16 * 1024;
};

/// Estimated wall-clock to interrogate one peer by shipping the agent.
SimTime EstimateCodeShippingCost(const ShippingCostInputs& inputs,
                                 const BestPeerConfig& config,
                                 const net::LinkProfile& net);

/// Estimated wall-clock to pull the peer's store and scan it locally.
SimTime EstimateDataShippingCost(const ShippingCostInputs& inputs,
                                 const BestPeerConfig& config,
                                 const net::LinkProfile& net);

/// Picks the cheaper strategy; unknown store sizes default to code
/// shipping (never pull an unbounded amount of data blindly).
ShippingStrategy ChooseShippingStrategy(const ShippingCostInputs& inputs,
                                        const BestPeerConfig& config,
                                        const net::LinkProfile& net);

/// Human-readable names for logs and bench rows.
std::string_view ShippingStrategyName(ShippingStrategy strategy);
std::string_view ShippingModeName(ShippingMode mode);

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_SHIPPING_H_
