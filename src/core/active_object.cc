#include "core/active_object.h"

#include <utility>

namespace bestpeer::core {

Status ActiveNodeRegistry::Register(std::string_view name, ActiveNodeFn fn) {
  if (nodes_.find(name) != nodes_.end()) {
    return Status::AlreadyExists("active node " + std::string(name));
  }
  nodes_.emplace(std::string(name), std::move(fn));
  return Status::OK();
}

Result<ActiveNodeFn> ActiveNodeRegistry::Get(std::string_view name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return Status::NotFound("active node " + std::string(name));
  }
  return it->second;
}

bool ActiveNodeRegistry::Contains(std::string_view name) const {
  return nodes_.find(name) != nodes_.end();
}

void ActiveObject::AddDataElement(Bytes data) {
  Element element;
  element.active = false;
  element.data = std::move(data);
  elements_.push_back(std::move(element));
}

void ActiveObject::AddActiveElement(std::string active_node, Bytes data) {
  Element element;
  element.active = true;
  element.active_node = std::move(active_node);
  element.data = std::move(data);
  elements_.push_back(std::move(element));
}

Result<Bytes> ActiveObject::Render(AccessLevel level,
                                   const ActiveNodeRegistry& registry) const {
  Bytes out;
  for (const Element& element : elements_) {
    if (!element.active) {
      out.insert(out.end(), element.data.begin(), element.data.end());
      continue;
    }
    BP_ASSIGN_OR_RETURN(ActiveNodeFn fn, registry.Get(element.active_node));
    BP_ASSIGN_OR_RETURN(Bytes rendered, fn(element.data, level));
    out.insert(out.end(), rendered.begin(), rendered.end());
  }
  return out;
}

Bytes ActiveObject::Encode() const {
  BinaryWriter w;
  w.WriteVarint(elements_.size());
  for (const Element& element : elements_) {
    w.WriteU8(element.active ? 1 : 0);
    w.WriteString(element.active_node);
    w.WriteBytes(element.data);
  }
  return w.Take();
}

Result<ActiveObject> ActiveObject::Decode(const Bytes& data) {
  BinaryReader r(data);
  ActiveObject object;
  BP_ASSIGN_OR_RETURN(uint64_t n, r.ReadVarint());
  for (uint64_t i = 0; i < n; ++i) {
    Element element;
    BP_ASSIGN_OR_RETURN(uint8_t active, r.ReadU8());
    element.active = active != 0;
    BP_ASSIGN_OR_RETURN(element.active_node, r.ReadString());
    BP_ASSIGN_OR_RETURN(element.data, r.ReadBytes());
    object.elements_.push_back(std::move(element));
  }
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes in active object");
  }
  return object;
}

Result<Bytes> RedactSecretsActiveNode(const Bytes& data, AccessLevel level) {
  if (level >= AccessLevel::kOwner) return data;
  static constexpr std::string_view kOpen = "[SECRET]";
  static constexpr std::string_view kClose = "[/SECRET]";
  std::string text(data.begin(), data.end());
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t open = text.find(kOpen, pos);
    if (open == std::string::npos) {
      out.append(text, pos, std::string::npos);
      break;
    }
    out.append(text, pos, open - pos);
    size_t close = text.find(kClose, open + kOpen.size());
    if (close == std::string::npos) {
      // Unterminated secret: redact to end of text.
      break;
    }
    out += "[REDACTED]";
    pos = close + kClose.size();
  }
  return ToBytes(out);
}

}  // namespace bestpeer::core
