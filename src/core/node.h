#ifndef BESTPEER_CORE_NODE_H_
#define BESTPEER_CORE_NODE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "agent/agent_runtime.h"
#include "cache/replica_manager.h"
#include "cache/result_cache.h"
#include "core/active_object.h"
#include "core/compute.h"
#include "core/config.h"
#include "core/messages.h"
#include "core/peer_list.h"
#include "core/reconfig_strategy.h"
#include "core/session.h"
#include "core/shipping.h"
#include "gossip/gossip.h"
#include "liglo/liglo_client.h"
#include "net/dispatcher.h"
#include "net/transport.h"
#include "storm/storm.h"

namespace bestpeer::core {

/// Infrastructure shared by every BestPeer node on one simulated network:
/// the agent class registry, the network-wide code cache and the LAN
/// address plane. Construct one per experiment.
struct SharedInfra {
  agent::AgentRegistry agent_registry;
  agent::CodeCache code_cache;
  liglo::IpDirectory ip_directory;
};

/// Registers the built-in agent classes (StormSearchAgent, ComputeAgent)
/// in `registry` with code sizes from `config`. Idempotent per registry.
Status RegisterBuiltinAgents(agent::AgentRegistry* registry,
                             const BestPeerConfig& config);

/// One row of the telemetry plane's `/peers` endpoint: a direct peer's
/// health record plus what this node has learned about it.
struct PeerTelemetry {
  PeerInfo info;
  /// EWMA answer score — the §3.3 history term the reconfiguration
  /// strategies rank peers by (0 when no history yet).
  double benefit_score = 0.0;
  /// Last known shared-store size (0 = unknown).
  size_t store_size_hint = 0;
};

/// Point-in-time operator view of one node, assembled for `/peers`.
struct NodeTelemetry {
  std::vector<PeerTelemetry> peers;
  size_t peer_capacity = 0;
  size_t sessions_inflight = 0;
  uint64_t peer_evictions = 0;
  uint64_t reconfigurations = 0;
  /// Hot-answer replication state (zeros unless enable_replication).
  size_t replica_leases = 0;
  uint64_t replica_promotions = 0;
  uint64_t replica_pushes = 0;
  uint64_t replicas_expired = 0;
  uint64_t replicas_stored = 0;
  uint64_t leases_revoked = 0;
};

/// A node running the BestPeer software: storage (StorM), an agent
/// engine, a LIGLO client, a self-reconfiguring direct-peer list, and the
/// resource-sharing services of §3.2 (static files, active objects,
/// computational power).
class BestPeerNode : public agent::AgentHost, public ComputeHost {
 public:
  using FetchCallback = std::function<void(const FetchResponseMessage&)>;
  using ContentCallback = std::function<void(Result<Bytes>)>;
  using JoinCallback =
      std::function<void(Result<liglo::LigloClient::RegisterOutcome>)>;
  using RejoinCallback =
      std::function<void(Result<liglo::LigloClient::RejoinOutcome>)>;

  /// Creates a node on `transport`'s endpoint. `infra` and `transport`
  /// must outlive it. Fails on unknown strategy/codec names.
  static Result<std::unique_ptr<BestPeerNode>> Create(
      net::Transport* transport, SharedInfra* infra, BestPeerConfig config);

  ~BestPeerNode() override = default;
  BestPeerNode(const BestPeerNode&) = delete;
  BestPeerNode& operator=(const BestPeerNode&) = delete;

  // --- AgentHost / ComputeHost ------------------------------------------

  storm::Storm* storage() override { return storage_.get(); }
  NodeId host_node() const override { return node_; }
  const FilterRegistry& filters() const override { return filters_; }
  cache::ResultCache* result_cache() override { return result_cache_.get(); }
  void OnAnswerServed(std::string_view key,
                      const std::vector<uint64_t>& matches) override;

  // --- storage ------------------------------------------------------------

  /// Opens this node's StorM instance (in-memory unless options.path set).
  Status InitStorage(const storm::StormOptions& options);

  /// Stores `content` as a shared object.
  Status ShareObject(storm::ObjectId id, const Bytes& content);

  /// Stores a named shared file (content searchable like any object).
  Status ShareFile(const std::string& name, const Bytes& content);

  /// Object id behind a shared file name.
  Result<storm::ObjectId> LookupFile(const std::string& name) const;

  // --- membership (LIGLO, §2) ----------------------------------------------

  /// Registers with a LIGLO server, announcing `ip`, and adopts up to k
  /// of the returned (BPID, IP) entries as direct peers.
  void JoinNetwork(NodeId liglo_server, liglo::IpAddress ip,
                   JoinCallback callback);

  /// Rejoin protocol of §2: report the (new) ip to the home LIGLO, then
  /// re-resolve every direct peer via its home LIGLO; peers reported
  /// offline are dropped, changed addresses are refreshed.
  void RejoinNetwork(liglo::IpAddress ip, RejoinCallback callback);

  /// This node's BPID (invalid until joined).
  const liglo::Bpid& bpid() const { return liglo_->bpid(); }

  // --- direct peers ---------------------------------------------------------

  /// Wires a direct peer locally without any message exchange (used by
  /// topology builders; call on both endpoints for a bidirectional link).
  void AddDirectPeerLocal(NodeId peer);

  /// Drops a peer locally.
  void RemoveDirectPeerLocal(NodeId peer);

  const PeerList& peers() const { return peers_; }
  std::vector<NodeId> DirectPeerNodes() const { return peers_.Nodes(); }

  /// Health, benefit and replication state for the telemetry plane.
  /// Call on the transport's execution thread (it reads protocol state).
  NodeTelemetry TelemetrySnapshot() const;

  // --- querying (§2, §4.2) --------------------------------------------------

  /// Launches a StorM search agent through the overlay. Returns the query
  /// id; progress lands in the query's session.
  Result<uint64_t> IssueSearch(const std::string& keyword, uint16_t ttl = 0);

  /// Launches a compute agent carrying filter `filter_name` + `params`
  /// (computational-power sharing, §3.2.3).
  Result<uint64_t> IssueCompute(const std::string& filter_name,
                                const Bytes& params, uint16_t ttl = 0);

  /// One-hop search over the direct peers, choosing per peer between
  /// code shipping (send the agent) and data shipping (pull the store
  /// and scan locally) — the §6 future-work strategy selector. Adaptive
  /// mode uses each peer's last known store size (learned from earlier
  /// search results); unknown peers default to code shipping.
  Result<uint64_t> IssueDirectSearch(const std::string& keyword,
                                     ShippingMode mode);

  /// Last known shared-store size of `node` (0 = unknown).
  size_t StoreSizeHint(NodeId node) const;

  // --- replication (§6 future work) -----------------------------------------

  /// Pushes replicas of the given local objects to every direct peer.
  /// Receivers store the copies under the same global ids; sessions
  /// deduplicate answers via QuerySession::unique_answers().
  Status ReplicateObjects(const std::vector<storm::ObjectId>& ids);

  /// Replicas this node has accepted from peers.
  uint64_t replicas_stored() const { return replicas_stored_; }

  // --- result cache & hot-answer replication ---------------------------------

  /// Replica bookkeeping (null unless config.enable_replication).
  cache::ReplicaManager* replica_manager() { return replica_mgr_.get(); }

  /// Not-modified replies this base node materialized from its cache.
  uint64_t cache_remote_hits() const { return cache_remote_hits_; }
  /// Not-modified replies dropped because the matching slice was gone.
  uint64_t cache_notmod_orphans() const { return cache_notmod_orphans_; }
  /// Hot-answer replica pushes sent to peers.
  uint64_t replica_pushes() const { return replica_pushes_; }
  /// Replicas this node deleted at their TTL.
  uint64_t replicas_expired() const { return replicas_expired_; }

  // --- gossip anti-entropy plane ---------------------------------------------

  /// The node's gossip agent (null unless config.enable_gossip).
  gossip::GossipAgent* gossip_agent() { return gossip_.get(); }
  const gossip::GossipAgent* gossip_agent() const { return gossip_.get(); }

  /// Cached slices dropped ahead of a probe by a gossiped epoch bump.
  uint64_t gossip_invalidations() const { return gossip_invalidations_; }
  /// Full replies received for a probed source whose epoch had moved —
  /// the stale-probe round trips gossip exists to eliminate (counted
  /// only when config.count_stale_probes).
  uint64_t cache_stale_probes() const { return cache_stale_probes_; }
  /// Leases this node revoked because the pushing peer was lost.
  uint64_t leases_revoked() const {
    return replica_mgr_ ? replica_mgr_->leases_revoked() : 0;
  }

  // --- content summaries -----------------------------------------------------

  /// Search launches that skipped a direct peer because its summary
  /// provably excluded every DNF branch of the query.
  uint64_t summary_skips() const { return summary_skips_; }
  /// Direct peers whose content summary this node currently holds.
  size_t peer_summary_count() const { return peer_summaries_.size(); }

  // --- peer monitoring (§3.4) ------------------------------------------------

  /// Fires at a watcher for every store change at a watched provider.
  using UpdateCallback = std::function<void(
      NodeId provider, UpdateNotifyMessage::Kind kind,
      storm::ObjectId object_id)>;

  /// Subscribes to `provider`'s shared-store changes; notifications call
  /// `callback`. This is what BPIDs make possible: the watched peer stays
  /// the same logical peer across address changes.
  void WatchPeer(NodeId provider, UpdateCallback callback);

  /// Cancels a subscription.
  void UnwatchPeer(NodeId provider);

  /// Subscribers currently watching this node.
  size_t watcher_count() const { return watchers_.size(); }

  /// Removes a shared object and notifies watchers.
  Status UnshareObject(storm::ObjectId id);

  /// Replaces a shared object's content and notifies watchers.
  Status UpdateObject(storm::ObjectId id, const Bytes& content);

  /// The session of a query issued by this node (nullptr if unknown).
  const QuerySession* FindSession(uint64_t query_id) const;

  /// Closes the query at its deadline: the answer set freezes, late
  /// results are dropped (counted), and peers that never responded accrue
  /// a failure — at config.peer_failure_threshold they are evicted and
  /// replaced. Scheduled automatically when config.query_deadline > 0;
  /// callable directly for explicit cutoffs.
  void FinalizeSession(uint64_t query_id);

  /// Results that arrived after their session was finalized (dropped).
  uint64_t late_results() const { return late_results_; }
  /// Sessions closed by a deadline.
  uint64_t sessions_finalized() const { return sessions_finalized_; }
  /// Direct peers evicted for missing peer_failure_threshold deadlines.
  uint64_t peer_evictions() const { return peer_evictions_; }

  /// Explicit mode-2 content fetch from `responder` (auto_fetch does this
  /// automatically on descriptor arrival).
  void FetchObjects(NodeId responder, uint64_t query_id,
                    const std::vector<storm::ObjectId>& ids);

  // --- self-reconfiguration (§3.3) -------------------------------------------

  /// Applies the configured strategy to the query's observations: adopts
  /// the chosen nodes as direct peers (connect messages go out) and drops
  /// the rest. Call when the query is considered complete.
  Status Reconfigure(uint64_t query_id);

  /// Number of times Reconfigure changed the peer set.
  uint64_t reconfigurations() const { return reconfigurations_; }

  // --- active objects (§3.2.2) -----------------------------------------------

  ActiveNodeRegistry& active_nodes() { return active_nodes_; }
  FilterRegistry& mutable_filters() { return filters_; }

  /// Shares an active object under `name`.
  void ShareActiveObject(const std::string& name, ActiveObject object);

  /// Requests the rendering of `provider`'s active object for `level`.
  void RequestActiveObject(NodeId provider, const std::string& name,
                           AccessLevel level, ContentCallback callback);

  // --- misc -------------------------------------------------------------------

  NodeId node() const { return node_; }
  const BestPeerConfig& config() const { return config_; }
  agent::AgentRuntime& agent_runtime() { return *runtime_; }
  liglo::LigloClient& liglo_client() { return *liglo_; }
  uint64_t results_received() const { return results_received_; }

 private:
  BestPeerNode(net::Transport* transport, SharedInfra* infra,
               BestPeerConfig config);

  Status Init();

  uint64_t NextQueryId();
  Result<uint64_t> LaunchAgent(agent::Agent& agent, uint64_t query_id,
                               const std::string& keyword, uint16_t ttl,
                               const std::vector<NodeId>* skip = nullptr);

  /// Arms the query_deadline timer for `query_id` (no-op when disabled).
  void ArmSessionDeadline(uint64_t query_id);

  /// Updates per-peer health from a finalized session: responders reset
  /// their failure streak, silent peers extend it (eviction at the
  /// threshold).
  void UpdatePeerHealth(const QuerySession& session);

  /// Replaces the direct-peer set; sends connect/disconnect notices.
  void ApplyPeerSet(const std::vector<NodeId>& new_peers,
                    const std::vector<PeerObservation>& observations);

  void OnSearchResult(const net::Message& msg);
  void OnFetchRequest(const net::Message& msg);
  void OnFetchResponse(const net::Message& msg);
  void OnDataShipRequest(const net::Message& msg);
  void OnDataShipResponse(const net::Message& msg);
  void OnReplicatePush(const net::Message& msg);
  void OnCacheReplicaPush(const net::Message& msg);
  /// Pushes the objects behind a hot answer to every direct peer.
  void PushHotReplicas(const std::vector<uint64_t>& ids);
  /// Deletes a pushed replica at its TTL (generation-guarded: a re-push
  /// re-arms the lease and orphans older timers).
  void ExpireReplica(storm::ObjectId id, uint64_t generation);
  void OnWatchRequest(const net::Message& msg);
  void OnUpdateNotify(const net::Message& msg);

  /// Sends an update notification to every watcher.
  void NotifyWatchers(UpdateNotifyMessage::Kind kind, storm::ObjectId id);
  void OnActiveObjectRequest(const net::Message& msg);
  void OnActiveObjectResponse(const net::Message& msg);
  void OnPeerConnect(const net::Message& msg);
  void OnPeerDisconnect(const net::Message& msg);
  void OnPeerSummary(const net::Message& msg);

  /// Reacts to a gossiped fact applied from a peer: epoch bumps
  /// pre-invalidate cached slices, lease expiries clear the lease book.
  void OnGossipApply(const gossip::GossipItem& item);
  /// Re-arms the gossip round timer after the peer set gained members.
  void NoteGossipPeersChanged();
  /// Drops every replica lease tied to a lost peer, in both roles: as
  /// receiver, deletes copies `peer` pushed here; as pusher, forgets
  /// leases granted to `peer`.
  void RevokeLeasesFrom(NodeId peer);

  /// This node's content summary at the current index epoch (rebuilt
  /// lazily when the epoch moves).
  const storm::ContentSummary& OwnSummary();
  /// Schedules a (debounced) summary re-broadcast to all direct peers.
  void ScheduleSummaryRefresh();
  /// Sends the current summary to every direct peer (skips when the
  /// epoch already went out).
  void BroadcastSummary();
  /// Sends the current summary to one peer unconditionally (connect and
  /// adoption sites).
  void SendSummaryTo(NodeId peer);
  /// Direct peers whose summary proves no match for any DNF branch of
  /// `keyword` (empty when summaries are off or the query is unparsable).
  std::vector<NodeId> SummarySkipSet(const std::string& keyword);

  /// Fetches replacement peers from the home LIGLO when the direct-peer
  /// list becomes empty — or, with `below_capacity`, whenever there is
  /// room (used after health evictions, which rarely empty the list).
  void ReplenishPeersIfIsolated(bool below_capacity = false);

  /// `flow` tags the message with its query id for tracing (0 = none).
  void SendCompressed(NodeId dst, uint32_t type, const Bytes& payload,
                      uint64_t flow = 0);
  Result<Bytes> DecodePayload(const net::Message& msg) const;

  net::Transport* transport_;
  NodeId node_;
  SharedInfra* infra_;
  BestPeerConfig config_;

  std::shared_ptr<const Codec> codec_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::unique_ptr<liglo::LigloClient> liglo_;
  std::unique_ptr<agent::AgentRuntime> runtime_;
  std::unique_ptr<storm::Storm> storage_;
  std::unique_ptr<ReconfigStrategy> strategy_;
  std::unique_ptr<cache::ResultCache> result_cache_;
  std::unique_ptr<cache::ReplicaManager> replica_mgr_;
  std::unique_ptr<gossip::GossipAgent> gossip_;

  PeerList peers_;
  FilterRegistry filters_;
  ActiveNodeRegistry active_nodes_;
  std::map<std::string, ActiveObject> active_objects_;
  std::map<std::string, storm::ObjectId> shared_files_;

  std::map<uint64_t, QuerySession> sessions_;
  /// Per in-flight query: the cached slices (by responder) the launched
  /// agent's known-epoch map was built from. A not-modified reply is
  /// materialized from here — and only on an exact epoch match, so a
  /// slice evicted or invalidated mid-flight can never produce a stale
  /// answer.
  std::map<uint64_t, std::map<NodeId, cache::CachedSlice>> probe_snapshots_;
  std::map<uint64_t, ContentCallback> pending_content_;
  /// Last known store size per node, learned from search results.
  std::map<NodeId, size_t> store_size_hints_;
  /// EWMA answer score per node (used when history_weight > 0).
  std::map<NodeId, double> answer_scores_;
  uint32_t query_counter_ = 0;
  uint64_t request_counter_ = 0;
  uint64_t results_received_ = 0;
  uint64_t reconfigurations_ = 0;
  uint64_t late_results_ = 0;
  uint64_t sessions_finalized_ = 0;
  uint64_t peer_evictions_ = 0;
  bool replenish_in_flight_ = false;
  uint64_t replicas_stored_ = 0;
  uint64_t cache_remote_hits_ = 0;
  uint64_t cache_notmod_orphans_ = 0;
  uint64_t replica_pushes_ = 0;
  uint64_t replicas_expired_ = 0;
  uint64_t gossip_invalidations_ = 0;
  uint64_t cache_stale_probes_ = 0;
  /// Pusher-side lease book: holder -> object -> source epoch at grant.
  /// QoS placement skips holders already fresh-leased on an object;
  /// gossiped/local expiries and peer loss clear entries.
  std::map<NodeId, std::map<uint64_t, uint64_t>> lease_book_;
  std::set<NodeId> watchers_;
  std::map<NodeId, UpdateCallback> watching_;
  storm::ObjectId next_file_object_id_;

  /// Content-summary plane (all empty/idle unless
  /// config.enable_content_summaries).
  std::map<NodeId, storm::ContentSummary> peer_summaries_;
  storm::ContentSummary own_summary_;
  bool own_summary_valid_ = false;
  uint64_t last_broadcast_epoch_ = 0;
  bool summary_push_pending_ = false;
  uint64_t summary_skips_ = 0;

  metrics::Counter* queries_issued_c_ = metrics::Counter::Noop();
  metrics::Counter* results_received_c_ = metrics::Counter::Noop();
  metrics::Counter* answers_received_c_ = metrics::Counter::Noop();
  metrics::Counter* reconfigurations_c_ = metrics::Counter::Noop();
  metrics::Counter* fetches_issued_c_ = metrics::Counter::Noop();
  metrics::Counter* late_results_c_ = metrics::Counter::Noop();
  metrics::Counter* sessions_finalized_c_ = metrics::Counter::Noop();
  metrics::Counter* peer_evictions_c_ = metrics::Counter::Noop();
  metrics::Gauge* inflight_sessions_g_ = metrics::Gauge::Noop();
  metrics::Histogram* result_hops_ = metrics::Histogram::Noop();
  metrics::Counter* remote_hits_c_ = metrics::Counter::Noop();
  metrics::Counter* notmod_orphans_c_ = metrics::Counter::Noop();
  metrics::Counter* replica_pushes_c_ = metrics::Counter::Noop();
  metrics::Counter* replicas_expired_c_ = metrics::Counter::Noop();
  metrics::Gauge* index_epoch_g_ = metrics::Gauge::Noop();
  metrics::Counter* summary_skips_c_ = metrics::Counter::Noop();
  metrics::Counter* gossip_invalidations_c_ = metrics::Counter::Noop();
  metrics::Counter* stale_probes_c_ = metrics::Counter::Noop();
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_NODE_H_
