#ifndef BESTPEER_CORE_CONFIG_H_
#define BESTPEER_CORE_CONFIG_H_

#include <cstdint>
#include <string>

#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::core {

/// How answers travel back to the query initiator (paper §2).
enum class AnswerMode : uint8_t {
  /// Mode 1: matching nodes return the answers (object contents) directly.
  kDirect = 1,
  /// Mode 2: matching nodes return match descriptors only; the initiator
  /// then fetches the content it wants (out-of-network download).
  kIndicate = 2,
};

/// Per-node BestPeer configuration.
struct BestPeerConfig {
  /// Maximum direct peers (the paper's k; "every BestPeer node has its
  /// own control over the maximum number of direct peers it can have").
  size_t max_direct_peers = 4;

  /// Reconfiguration strategy: "maxcount", "minhops" or "none" (= BPS).
  std::string strategy = "maxcount";

  /// Answer return mode.
  AnswerMode answer_mode = AnswerMode::kDirect;

  /// Default agent TTL for searches.
  uint16_t default_ttl = 7;

  /// Transport codec ("lzss" reproduces the paper's GZIP layer; "null"
  /// turns compression off).
  std::string codec = "lzss";

  /// Whether IssueSearch also runs the agent on the local store.
  bool search_local_store = false;

  /// In mode 2, automatically fetch content for every descriptor received.
  bool auto_fetch = true;

  /// Inbound connection cap: a node accepts peer-connect notices only
  /// while its total peer count is below this. 0 means 2x
  /// max_direct_peers (outgoing adoption is always bounded by k; the
  /// overflow headroom is for inbound links, like a servent's separate
  /// incoming-connection limit).
  size_t max_accepted_peers = 0;

  /// Effective inbound acceptance cap.
  size_t AcceptCap() const {
    return max_accepted_peers != 0 ? max_accepted_peers
                                   : 2 * max_direct_peers;
  }

  /// Weight of accumulated answer history when reconfiguring: the score
  /// fed to the strategy is answers + history_weight * previous_score,
  /// and unobserved nodes decay by the same factor. 0 (default) ranks by
  /// the last query only, as in the paper; values near 1 make the peer
  /// set sticky against one-off outliers.
  double history_weight = 0.0;

  // --- cost model -------------------------------------------------------

  /// CPU per object examined by a StorM search agent.
  SimTime per_object_match_cost = Micros(15);

  /// CPU to handle one incoming result message at the initiator.
  SimTime result_handling_cost = Micros(200);

  /// CPU for a responder to serve one fetched object (mode 2).
  SimTime fetch_per_object_cost = Micros(50);

  /// Modelled size of one mode-2 match descriptor on the wire.
  size_t answer_descriptor_bytes = 64;

  /// CPU to rebuild an agent at a peer site.
  SimTime agent_reconstruct_cost = Millis(4);

  /// CPU to load an agent class on first arrival at a node.
  SimTime agent_class_load_cost = Millis(8);

  /// CPU to clone-and-forward an agent to one neighbour.
  SimTime agent_forward_cost = Micros(300);

  /// Registered byte size of the StorM search agent class.
  size_t search_agent_code_bytes = 16 * 1024;

  // --- failure recovery -------------------------------------------------

  /// Deadline after which a query session finalizes with whatever answers
  /// arrived (results past it are dropped as late). 0 disables deadlines:
  /// sessions stay open forever, as in the lossless model.
  SimTime query_deadline = 0;

  /// Consecutive queries a direct peer may miss (no response by the
  /// deadline) before it is evicted and replaced. Only meaningful when
  /// query_deadline > 0, since otherwise misses are never observed.
  uint32_t peer_failure_threshold = 3;

  /// Resends the LIGLO client performs after a request timeout (0 keeps
  /// single-attempt semantics; see LigloClientOptions::max_retries).
  int liglo_max_retries = 0;

  /// Base backoff delay between LIGLO retries (doubles per attempt).
  SimTime liglo_retry_backoff = Millis(200);

  /// How long the agent runtime's duplicate-drop table remembers an
  /// agent id (lost agents never deregister themselves). 0 = forever.
  SimTime agent_seen_expiry = 0;

  // --- result cache & hot-answer replication (opt-in) -------------------

  /// Enables the per-node query-result cache: searches carry per-responder
  /// IndexEpochs, responders answer repeats with tiny "not-modified"
  /// replies, and the base node re-materializes answers from its cached
  /// slices. Off (the default) keeps the wire format and schedule
  /// bit-identical to a cache-less build.
  bool enable_result_cache = false;

  /// Result-cache byte budget (LRU eviction past it).
  size_t result_cache_bytes = 256 * 1024;

  /// Disables TinyLFU admission: plain LRU (ablation arm).
  bool cache_lru_only = false;

  /// CPU charged for a responder-side cache probe that hits (replacing
  /// the per-object scan cost).
  SimTime cache_probe_cost = Micros(5);

  /// Enables hot-answer replication: responders push the objects behind
  /// frequently served answers to their direct peers, so later queries
  /// are answered at hop 1. Requires enable_result_cache (the frequency
  /// sketch drives promotion).
  bool enable_replication = false;

  /// Sketch frequency a query must reach before its answers replicate.
  uint32_t replica_hot_threshold = 3;

  /// Max distinct hot keys tracked for promotion at once.
  size_t replica_top_k = 4;

  /// Replica lifetime at the receiver; the copy is deleted when it
  /// elapses (churn safety: a stale replica never outlives its TTL,
  /// crashes included). 0 keeps replicas forever.
  SimTime replica_ttl = Seconds(2);

  /// Minimum time between two pushes of the same hot key.
  SimTime replica_cooldown = Millis(500);

  // --- gossip anti-entropy plane (opt-in) -------------------------------

  /// Enables the per-node GossipAgent: seeded rumor-mongering push-pull
  /// rounds disseminating IndexEpoch bumps and replica-lease digests
  /// ahead of queries. Off (the default) constructs no agent, registers
  /// no gossip.* metrics and schedules no timers — gossip-off schedules
  /// stay bit-identical to a gossip-less build.
  bool enable_gossip = false;

  /// Peers contacted per gossip round.
  size_t gossip_fanout = 2;

  /// Interval between gossip rounds while rumors are hot.
  SimTime gossip_interval = Millis(2);

  /// Rounds a rumor stays hot (is re-pushed) before going quiescent.
  uint32_t gossip_hot_rounds = 3;

  /// Seed of the gossip peer-selection stream (mixed per node).
  uint64_t gossip_seed = 1;

  /// Scores replica-push targets by the QoS vector (observed RTT,
  /// answer benefit, failure history, link bandwidth) and pushes to the
  /// best `replica_fanout` peers instead of broadcasting to every direct
  /// neighbor. Off keeps the PR-5 frequency-broadcast behavior.
  bool qos_replica_placement = false;

  /// Replica targets per promotion under QoS placement.
  size_t replica_fanout = 2;

  /// Counts stale cache probes (full replies that arrive for a probed
  /// source whose epoch moved) in core.cache_stale_probes. Off by
  /// default so existing metric snapshots stay byte-identical; counting
  /// never affects scheduling.
  bool count_stale_probes = false;

  // --- index-backed search & content summaries (opt-in) -----------------

  /// Routes the StorM search agent through Storm::IndexSearch (sorted
  /// posting lists with galloping intersection) instead of the full
  /// per-object scan, charging CPU per posting touched. Requires
  /// StormOptions::build_index; an agent landing on an index-less store
  /// falls back to the scan path. Off (the default) keeps schedules
  /// bit-identical to a scan-only build.
  bool use_index_search = false;

  /// CPU charged per posting touched on the index path (the analogue of
  /// per_object_match_cost for the scan path).
  SimTime per_posting_cost = Micros(1);

  /// Enables per-peer content summaries: each node digests its keyword
  /// index into a Bloom-filter summary, pushes it to direct peers at
  /// connect/reconfiguration time (and re-broadcasts when its index
  /// epoch moves), and skips launching search agents toward direct peers
  /// whose summary provably excludes every DNF branch of the query.
  bool enable_content_summaries = false;

  // --- observability ----------------------------------------------------

  /// Metrics sink shared by the node and its agent runtime (not owned;
  /// must outlive the node). nullptr routes increments to no-op handles.
  metrics::Registry* metrics = nullptr;
};

}  // namespace bestpeer::core

#endif  // BESTPEER_CORE_CONFIG_H_
