#ifndef BESTPEER_OBS_TRACE_FRAME_H_
#define BESTPEER_OBS_TRACE_FRAME_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "util/status.h"
#include "util/trace.h"

namespace bestpeer::obs {

/// Message type tag for trace span shipping: every process in a fleet
/// periodically drains its TraceRecorder (SpansSince cursor) and pushes
/// the new spans to the collector process, which groups them by flow and
/// serves `/traces` and `/trace?flow=K`. Travels over any net::Transport
/// like stat frames do (one BPF1 frame on the TCP backend).
constexpr uint32_t kTraceFrameMsgType = 0x42530002;  // "BS" + 2.

/// Payload format version (first field after the magic).
constexpr uint16_t kTraceFrameVersion = 1;
constexpr uint32_t kTraceFrameMagic = 0x31545042;  // "BPT1" in LE order.

/// Decode-side hard limits: a length field beyond these is treated as
/// corruption, not an allocation request (mirrors net::FrameDecoder).
constexpr size_t kTraceFrameMaxSpans = 4096;
constexpr size_t kTraceFrameMaxArgs = 16;
constexpr size_t kTraceFrameMaxNameLen = 256;

/// One push of spans from one process: who sent it, when on the sender's
/// clock (the collector derives the clock offset from this), how many
/// spans the sender's ring has dropped in total, and the spans
/// themselves with sender-clock timestamps.
struct TraceFrame {
  /// The sending process's first local node id.
  uint32_t node = 0xFFFFFFFF;
  /// Microseconds on the sender's clock when the frame was built.
  int64_t sent_at_us = 0;
  /// The sender's TraceRecorder::spans_dropped() at build time.
  uint64_t spans_dropped = 0;
  std::vector<trace::Span> spans;
};

/// Serializes a trace frame (magic, version, node, timestamp, drop
/// counter, spans with name/cat/tid/ts/dur/flow/args).
Bytes EncodeTraceFrame(const TraceFrame& frame);

/// Bounds-checked decode; any truncation, bad magic/version or
/// over-limit length returns InvalidArgument (never UB, never a huge
/// allocation).
Result<TraceFrame> DecodeTraceFrame(const Bytes& payload);

/// Everything the collector's JSON exports need to know about "here and
/// now": the collector clock, the same instant on the wall clock (so
/// bpstitch can reconcile processes with independent monotonic clocks),
/// and which node ids live in this process (so bpstitch can take each
/// span from exactly the process that recorded it).
struct TraceExportContext {
  int64_t now_us = 0;
  int64_t wall_us = 0;
  uint32_t node_base = 0;
  uint32_t node_count = 0;
};

/// Collector-side state for distributed traces: absorbs pushed frames
/// (shifting sender-clock timestamps onto the collector clock via the
/// push timestamp), groups spans by flow, and serves them as JSON.
/// Bounded: when the total span count exceeds the budget, whole oldest
/// flows are forgotten and counted. Single-threaded like everything else
/// on the reactor.
class TraceCollector {
 public:
  explicit TraceCollector(size_t max_spans = 1u << 20);

  /// Ingests one frame received at `received_at_us` on the collector
  /// clock. Every span's ts is shifted by (received_at_us - sent_at_us),
  /// so spans from remote clocks land on the collector's timeline (the
  /// shift is zero when a process drains its own recorder). Flow-0 spans
  /// are not collected — they cannot be stitched to a query.
  void Absorb(TraceFrame frame, int64_t received_at_us);

  /// `/traces`: every collected flow with full span detail, plus the
  /// export context and collector counters.
  std::string ToJson(const TraceExportContext& ctx) const;

  /// `/trace?flow=K`: one flow's spans plus — when the flow has a root
  /// "query" span — a critical-path explain of where its time went.
  /// Unknown flows yield {"flow": K, "spans": []}.
  std::string FlowJson(const TraceExportContext& ctx,
                       FlowId flow) const;

  size_t flow_count() const { return flows_.size(); }
  size_t span_count() const { return span_count_; }
  uint64_t frames_received() const { return frames_received_; }
  /// Sum over senders of their ring-drop counters (latest report each).
  uint64_t sender_spans_dropped() const;
  /// Flows evicted here to stay under the span budget.
  uint64_t flows_forgotten() const { return flows_forgotten_; }

 private:
  void ForgetOldestFlow();

  size_t max_spans_;
  std::map<FlowId, std::vector<trace::Span>> flows_;
  /// Flows in first-seen order — the eviction queue.
  std::deque<FlowId> flow_fifo_;
  size_t span_count_ = 0;
  uint64_t frames_received_ = 0;
  uint64_t flows_forgotten_ = 0;
  std::map<uint32_t, uint64_t> dropped_by_node_;
};

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_TRACE_FRAME_H_
