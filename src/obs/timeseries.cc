#include "obs/timeseries.h"

#include <utility>

#include "obs/json_writer.h"

namespace bestpeer::obs {

std::string TimeSeries::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner(static_cast<size_t>(indent) + 2, ' ');
  std::string out = "{\n";
  out += inner + "\"interval_us\": ";
  AppendJsonNumber(&out, static_cast<double>(interval));
  out += ",\n" + inner + "\"columns\": [\"ts_us\"";
  for (const std::string& c : columns) {
    out += ", \"";
    AppendJsonEscaped(&out, c);
    out += '"';
  }
  out += "],\n" + inner + "\"points\": [";
  for (size_t i = 0; i < timestamps.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += inner + "  [";
    AppendJsonNumber(&out, static_cast<double>(timestamps[i]));
    for (double v : points[i]) {
      out += ", ";
      AppendJsonNumber(&out, v);
    }
    out += ']';
  }
  if (!timestamps.empty()) out += "\n" + inner;
  out += "]\n" + pad + "}";
  return out;
}

TimeSeriesSampler::TimeSeriesSampler(const metrics::Registry* registry,
                                     SimTime interval)
    : registry_(registry), interval_(interval <= 0 ? 1 : interval) {
  series_.interval = interval_;
}

void TimeSeriesSampler::AddDelta(std::string column, std::string metric) {
  columns_.push_back({Column::Mode::kDelta, std::move(metric), nullptr, 0});
  series_.columns.push_back(std::move(column));
}

void TimeSeriesSampler::AddLevel(std::string column, std::string metric) {
  columns_.push_back({Column::Mode::kLevel, std::move(metric), nullptr, 0});
  series_.columns.push_back(std::move(column));
}

void TimeSeriesSampler::AddProbe(std::string column,
                                 std::function<double()> probe) {
  columns_.push_back({Column::Mode::kProbe, "", std::move(probe), 0});
  series_.columns.push_back(std::move(column));
}

void TimeSeriesSampler::AddDefaultColumns() {
  AddDelta("wire_bytes", "net.wire_bytes");
  AddDelta("messages", "net.messages_sent");
  AddDelta("net_queue_wait_us", "net.queue_wait_us");
  AddDelta("cpu_busy_us", "cpu.busy_us");
  AddDelta("fault_drops", "fault.drops");
  AddLevel("inflight_sessions", "core.inflight_sessions");
}

void TimeSeriesSampler::Sample(SimTime now) {
  // Dedupe: Arm() after every query round plus the periodic tick can both
  // land on the same instant; one row per timestamp is enough.
  if (!series_.timestamps.empty() && series_.timestamps.back() == now) {
    return;
  }
  const metrics::Snapshot snapshot = registry_->TakeSnapshot();
  std::vector<double> row;
  row.reserve(columns_.size());
  for (Column& c : columns_) {
    switch (c.mode) {
      case Column::Mode::kDelta: {
        const double v = snapshot.Value(c.metric);
        row.push_back(v - c.last);
        c.last = v;
        break;
      }
      case Column::Mode::kLevel:
        row.push_back(snapshot.Value(c.metric));
        break;
      case Column::Mode::kProbe:
        row.push_back(c.probe ? c.probe() : 0);
        break;
    }
  }
  series_.timestamps.push_back(now);
  series_.points.push_back(std::move(row));
}

TimeSeries TimeSeriesSampler::Take() { return std::move(series_); }

}  // namespace bestpeer::obs
