#include "obs/flight_recorder.h"

#include <cstdio>

#include "obs/json_writer.h"

namespace bestpeer::obs {

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kMsgSend:
      return "msg_send";
    case EventType::kMsgDeliver:
      return "msg_deliver";
    case EventType::kMsgDrop:
      return "msg_drop";
    case EventType::kAgentHop:
      return "agent_hop";
    case EventType::kReconfig:
      return "reconfig";
    case EventType::kSessionFinalize:
      return "session_finalize";
    case EventType::kDeadlineExpire:
      return "deadline_expire";
    case EventType::kLigloRetry:
      return "liglo_retry";
    case EventType::kCrash:
      return "crash";
    case EventType::kRestart:
      return "restart";
    case EventType::kAnomaly:
      return "anomaly";
    case EventType::kCacheHit:
      return "cache_hit";
    case EventType::kCacheMiss:
      return "cache_miss";
    case EventType::kCacheEvict:
      return "cache_evict";
    case EventType::kCacheInvalidate:
      return "cache_invalidate";
    case EventType::kReplicaPush:
      return "replica_push";
    case EventType::kReplicaExpire:
      return "replica_expire";
    case EventType::kTraceSampled:
      return "trace_sampled";
    case EventType::kGossipSend:
      return "gossip_send";
    case EventType::kGossipApply:
      return "gossip_apply";
    case EventType::kLeaseRevoke:
      return "lease_revoke";
  }
  return "unknown";
}

std::string_view DropCauseName(DropCause cause) {
  switch (cause) {
    case DropCause::kNone:
      return "none";
    case DropCause::kFaultLoss:
      return "fault_loss";
    case DropCause::kPartition:
      return "partition";
    case DropCause::kSenderOffline:
      return "sender_offline";
    case DropCause::kReceiverOffline:
      return "receiver_offline";
    case DropCause::kReceiverDied:
      return "receiver_died";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(FlightRecorderOptions options)
    : capacity_(options.capacity == 0 ? 1 : options.capacity),
      auto_dump_path_(std::move(options.auto_dump_path)) {
  // Reserve up front: Record() never allocates afterwards, so an enabled
  // recorder perturbs neither the allocator nor the event schedule.
  ring_.reserve(capacity_);
}

void FlightRecorder::Record(const FlightEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[next_] = event;
  }
  next_ = (next_ + 1) % capacity_;
  ++recorded_;
}

void FlightRecorder::TripAnomaly(SimTime ts, std::string reason) {
  FlightEvent e;
  e.ts = ts;
  e.type = EventType::kAnomaly;
  e.a = anomalies_.size();
  Record(e);
  anomalies_.push_back(std::move(reason));
  if (!auto_dump_path_.empty()) {
    // Best-effort: an unwritable dump path must not abort the run.
    (void)WriteNdjson(auto_dump_path_);
  }
}

void FlightRecorder::RegisterTypeName(uint32_t type, std::string name) {
  type_names_[type] = std::move(name);
}

size_t FlightRecorder::size() const { return ring_.size(); }

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

namespace {

void AppendU64(std::string* out, const char* key, uint64_t v,
               bool leading_comma = true) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", leading_comma ? "," : "",
                key, static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

void FlightRecorder::AppendEventJson(std::string* out,
                                     const FlightEvent& e) const {
  *out += "{\"ts\":";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(e.ts));
  *out += buf;
  *out += ",\"type\":\"";
  *out += EventTypeName(e.type);
  *out += '"';
  if (e.node != 0xFFFFFFFF) AppendU64(out, "node", e.node);
  if (e.peer != 0xFFFFFFFF) AppendU64(out, "peer", e.peer);
  if (e.flow != 0) AppendU64(out, "flow", e.flow);
  if (e.msg_type != 0) {
    *out += ",\"msg\":\"";
    auto it = type_names_.find(e.msg_type);
    if (it != type_names_.end()) {
      AppendJsonEscaped(out, it->second);
    } else {
      std::snprintf(buf, sizeof(buf), "msg:%08x", e.msg_type);
      *out += buf;
    }
    *out += '"';
  }
  if (e.cause != DropCause::kNone) {
    *out += ",\"cause\":\"";
    *out += DropCauseName(e.cause);
    *out += '"';
  }
  AppendU64(out, "a", e.a);
  AppendU64(out, "b", e.b);
  if (e.type == EventType::kAnomaly && e.a < anomalies_.size()) {
    *out += ",\"reason\":\"";
    AppendJsonEscaped(out, anomalies_[e.a]);
    *out += '"';
  }
  *out += '}';
}

std::string FlightRecorder::ToNdjson() const {
  std::string out;
  out += "{\"flight_recorder\":true";
  AppendU64(&out, "capacity", capacity_);
  AppendU64(&out, "recorded", recorded_);
  AppendU64(&out, "dropped", dropped_events());
  out += ",\"anomalies\":[";
  for (size_t i = 0; i < anomalies_.size(); ++i) {
    if (i > 0) out += ',';
    out += '"';
    AppendJsonEscaped(&out, anomalies_[i]);
    out += '"';
  }
  out += "]}\n";
  for (const FlightEvent& e : Events()) {
    AppendEventJson(&out, e);
    out += '\n';
  }
  return out;
}

Status FlightRecorder::WriteNdjson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path);
  }
  const std::string dump = ToNdjson();
  const size_t written = std::fwrite(dump.data(), 1, dump.size(), f);
  std::fclose(f);
  if (written != dump.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

}  // namespace bestpeer::obs
