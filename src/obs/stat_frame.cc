#include "obs/stat_frame.h"

#include <cstring>

#include "obs/json_writer.h"

namespace bestpeer::obs {

namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsDouble(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("stat frame: " + what);
}

}  // namespace

Bytes EncodeStatFrame(const StatFrame& frame) {
  BinaryWriter w;
  w.WriteU32(kStatFrameMagic);
  w.WriteU16(kStatFrameVersion);
  w.WriteU32(frame.node);
  w.WriteI64(frame.sent_at_us);
  w.WriteVarint(frame.snapshot.entries.size());
  for (const metrics::SnapshotEntry& e : frame.snapshot.entries) {
    w.WriteString(e.name);
    w.WriteU8(static_cast<uint8_t>(e.kind));
    w.WriteVarint(e.labels.size());
    for (const auto& [k, v] : e.labels) {
      w.WriteString(k);
      w.WriteString(v);
    }
    w.WriteU64(DoubleBits(e.value));
    w.WriteVarint(e.count);
    w.WriteU64(DoubleBits(e.min));
    w.WriteU64(DoubleBits(e.max));
    w.WriteVarint(e.bounds.size());
    for (double b : e.bounds) w.WriteU64(DoubleBits(b));
    w.WriteVarint(e.buckets.size());
    for (uint64_t b : e.buckets) w.WriteVarint(b);
  }
  return w.Take();
}

Result<StatFrame> DecodeStatFrame(const Bytes& payload) {
  BinaryReader r(payload);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kStatFrameMagic) return Malformed("bad magic");
  auto version = r.ReadU16();
  if (!version.ok()) return version.status();
  if (version.value() != kStatFrameVersion) {
    return Malformed("unknown version");
  }
  StatFrame frame;
  auto node = r.ReadU32();
  if (!node.ok()) return node.status();
  frame.node = node.value();
  auto sent_at = r.ReadI64();
  if (!sent_at.ok()) return sent_at.status();
  frame.sent_at_us = sent_at.value();

  auto entry_count = r.ReadVarint();
  if (!entry_count.ok()) return entry_count.status();
  if (entry_count.value() > kStatFrameMaxEntries) {
    return Malformed("entry count over limit");
  }
  frame.snapshot.entries.reserve(entry_count.value());
  for (uint64_t i = 0; i < entry_count.value(); ++i) {
    metrics::SnapshotEntry e;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    if (name.value().size() > kStatFrameMaxNameLen) {
      return Malformed("name over limit");
    }
    e.name = std::move(name).value();
    auto kind = r.ReadU8();
    if (!kind.ok()) return kind.status();
    if (kind.value() >
        static_cast<uint8_t>(metrics::InstrumentKind::kHistogram)) {
      return Malformed("unknown instrument kind");
    }
    e.kind = static_cast<metrics::InstrumentKind>(kind.value());
    auto label_count = r.ReadVarint();
    if (!label_count.ok()) return label_count.status();
    if (label_count.value() > kStatFrameMaxLabels) {
      return Malformed("label count over limit");
    }
    for (uint64_t l = 0; l < label_count.value(); ++l) {
      auto k = r.ReadString();
      if (!k.ok()) return k.status();
      auto v = r.ReadString();
      if (!v.ok()) return v.status();
      if (k.value().size() > kStatFrameMaxNameLen ||
          v.value().size() > kStatFrameMaxNameLen) {
        return Malformed("label over limit");
      }
      e.labels.emplace_back(std::move(k).value(), std::move(v).value());
    }
    auto value = r.ReadU64();
    if (!value.ok()) return value.status();
    e.value = BitsDouble(value.value());
    auto count = r.ReadVarint();
    if (!count.ok()) return count.status();
    e.count = count.value();
    auto min = r.ReadU64();
    if (!min.ok()) return min.status();
    e.min = BitsDouble(min.value());
    auto max = r.ReadU64();
    if (!max.ok()) return max.status();
    e.max = BitsDouble(max.value());
    auto bound_count = r.ReadVarint();
    if (!bound_count.ok()) return bound_count.status();
    if (bound_count.value() > kStatFrameMaxBuckets) {
      return Malformed("bound count over limit");
    }
    e.bounds.reserve(bound_count.value());
    for (uint64_t b = 0; b < bound_count.value(); ++b) {
      auto bound = r.ReadU64();
      if (!bound.ok()) return bound.status();
      e.bounds.push_back(BitsDouble(bound.value()));
    }
    auto bucket_count = r.ReadVarint();
    if (!bucket_count.ok()) return bucket_count.status();
    if (bucket_count.value() > kStatFrameMaxBuckets + 1) {
      return Malformed("bucket count over limit");
    }
    // A histogram with bucket detail must have bounds+1 buckets; frames
    // without detail carry zero of both.
    if (bucket_count.value() != 0 &&
        bucket_count.value() != bound_count.value() + 1) {
      return Malformed("bucket/bound count mismatch");
    }
    e.buckets.reserve(bucket_count.value());
    for (uint64_t b = 0; b < bucket_count.value(); ++b) {
      auto bucket = r.ReadVarint();
      if (!bucket.ok()) return bucket.status();
      e.buckets.push_back(bucket.value());
    }
    frame.snapshot.entries.push_back(std::move(e));
  }
  if (r.remaining() != 0) return Malformed("trailing bytes");
  return frame;
}

void FleetCollector::Absorb(StatFrame frame, int64_t received_at_us) {
  ++frames_received_;
  auto it = latest_.find(frame.node);
  if (it != latest_.end() &&
      it->second.frame.sent_at_us > frame.sent_at_us) {
    ++stale_dropped_;
    return;
  }
  NodeState state;
  state.frame = std::move(frame);
  state.received_at_us = received_at_us;
  latest_[state.frame.node] = std::move(state);
}

metrics::Snapshot FleetCollector::Rollup() const {
  metrics::Snapshot merged;
  for (const auto& [node, state] : latest_) {
    merged.Merge(state.frame.snapshot);
  }
  return merged;
}

std::string FleetCollector::ToJson(int64_t now_us) const {
  std::string out = "{\n  \"nodes\": ";
  AppendJsonNumber(&out, static_cast<double>(latest_.size()));
  out += ",\n  \"frames\": ";
  AppendJsonNumber(&out, static_cast<double>(frames_received_));
  out += ",\n  \"stale_dropped\": ";
  AppendJsonNumber(&out, static_cast<double>(stale_dropped_));
  out += ",\n  \"per_node\": {";
  bool first = true;
  for (const auto& [node, state] : latest_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    AppendJsonNumber(&out, static_cast<double>(node));
    out += "\": {\"age_us\": ";
    AppendJsonNumber(&out,
                     static_cast<double>(now_us - state.received_at_us));
    out += ", \"metrics\": ";
    out += state.frame.snapshot.ToJson(4);
    out += '}';
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"merged\": ";
  out += Rollup().ToJson(2);
  out += "\n}\n";
  return out;
}

}  // namespace bestpeer::obs
