#include "obs/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace bestpeer::obs {

namespace {

double ThresholdFor(const std::string& metric, const DiffOptions& options) {
  auto it = options.thresholds.find(metric);
  return it == options.thresholds.end() ? options.default_threshold
                                        : it->second;
}

void CompareScalar(const std::string& metric, double base, double cur,
                   const DiffOptions& options, BenchDiff* out) {
  DiffEntry e;
  e.metric = metric;
  e.baseline = base;
  e.current = cur;
  e.rel_change = (cur - base) / std::max(std::fabs(base), 1.0);
  e.threshold = ThresholdFor(metric, options);
  e.regression = std::fabs(cur - base) > options.abs_slack &&
                 std::fabs(e.rel_change) > e.threshold;
  out->entries.push_back(std::move(e));
}

const JsonValue* SectionOrError(const JsonValue& doc, const char* key,
                                const char* which, BenchDiff* out) {
  const JsonValue* v = doc.Find(key);
  if (v == nullptr) {
    out->structure_errors.push_back(std::string(which) + " report has no \"" +
                                    key + "\" section");
  }
  return v;
}

void CompareSummaries(const JsonValue& baseline, const JsonValue& current,
                      const DiffOptions& options, BenchDiff* out) {
  const JsonValue* base = SectionOrError(baseline, "summary", "baseline", out);
  const JsonValue* cur = SectionOrError(current, "summary", "current", out);
  if (base == nullptr || cur == nullptr) return;
  for (const auto& [key, value] : base->AsObject()) {
    if (!value.is_number()) continue;
    const JsonValue* other = cur->Find(key);
    if (other == nullptr || !other->is_number()) {
      out->structure_errors.push_back("summary." + key +
                                      " missing from current report");
      continue;
    }
    CompareScalar("summary." + key, value.AsNumber(), other->AsNumber(),
                  options, out);
  }
}

struct Row {
  std::string label;
  std::vector<double> values;
};

std::vector<Row> ExtractRows(const JsonValue& doc) {
  std::vector<Row> rows;
  const JsonValue* arr = doc.Find("rows");
  if (arr == nullptr || !arr->is_array()) return rows;
  for (const JsonValue& item : arr->AsArray()) {
    Row row;
    const JsonValue* label = item.Find("label");
    if (label != nullptr && label->is_string()) row.label = label->AsString();
    const JsonValue* values = item.Find("values");
    if (values != nullptr && values->is_array()) {
      for (const JsonValue& v : values->AsArray()) {
        row.values.push_back(v.is_number() ? v.AsNumber() : 0);
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::string> ExtractColumns(const JsonValue& doc) {
  std::vector<std::string> columns;
  const JsonValue* arr = doc.Find("columns");
  if (arr == nullptr || !arr->is_array()) return columns;
  for (const JsonValue& v : arr->AsArray()) {
    if (v.is_string()) columns.push_back(v.AsString());
  }
  return columns;
}

void CompareRows(const JsonValue& baseline, const JsonValue& current,
                 const DiffOptions& options, BenchDiff* out) {
  const std::vector<std::string> base_cols = ExtractColumns(baseline);
  const std::vector<std::string> cur_cols = ExtractColumns(current);
  if (base_cols != cur_cols) {
    out->structure_errors.push_back(
        "column sets differ between baseline and current report");
    return;
  }
  const std::vector<Row> base_rows = ExtractRows(baseline);
  const std::vector<Row> cur_rows = ExtractRows(current);
  for (const Row& base : base_rows) {
    const auto it =
        std::find_if(cur_rows.begin(), cur_rows.end(),
                     [&base](const Row& r) { return r.label == base.label; });
    if (it == cur_rows.end()) {
      out->structure_errors.push_back("row \"" + base.label +
                                      "\" missing from current report");
      continue;
    }
    if (it->values.size() != base.values.size()) {
      out->structure_errors.push_back("row \"" + base.label +
                                      "\" has a different value count");
      continue;
    }
    for (size_t i = 0; i < base.values.size(); ++i) {
      // Column 0 of the header is the label column; values[i] lines up
      // with columns[i + 1] when a header is present.
      std::string column = i + 1 < base_cols.size()
                               ? base_cols[i + 1]
                               : "v" + std::to_string(i);
      CompareScalar("rows." + base.label + "." + column, base.values[i],
                    it->values[i], options, out);
    }
  }
  for (const Row& cur : cur_rows) {
    const auto it =
        std::find_if(base_rows.begin(), base_rows.end(),
                     [&cur](const Row& r) { return r.label == cur.label; });
    if (it == base_rows.end()) {
      out->structure_errors.push_back("row \"" + cur.label +
                                      "\" not present in baseline");
    }
  }
}

}  // namespace

size_t BenchDiff::violations() const {
  size_t n = 0;
  for (const DiffEntry& e : entries) {
    if (e.regression) ++n;
  }
  return n;
}

std::string BenchDiff::FormatText(bool verbose) const {
  std::string out;
  char line[256];
  for (const std::string& err : structure_errors) {
    out += "STRUCTURE " + figure + ": " + err + "\n";
  }
  for (const DiffEntry& e : entries) {
    if (!e.regression && !verbose) continue;
    std::snprintf(line, sizeof(line),
                  "%s %s %s: baseline=%.6g current=%.6g (%+.1f%%, limit "
                  "%.0f%%)\n",
                  e.regression ? "FAIL" : "ok  ", figure.c_str(),
                  e.metric.c_str(), e.baseline, e.current, e.rel_change * 100,
                  e.threshold * 100);
    out += line;
  }
  return out;
}

BenchDiff CompareReports(const JsonValue& baseline, const JsonValue& current,
                         const DiffOptions& options) {
  BenchDiff diff;
  const JsonValue* fig = baseline.Find("figure");
  if (fig != nullptr && fig->is_string()) diff.figure = fig->AsString();
  const JsonValue* cur_fig = current.Find("figure");
  if (cur_fig != nullptr && cur_fig->is_string() && fig != nullptr &&
      fig->is_string() && cur_fig->AsString() != fig->AsString()) {
    diff.structure_errors.push_back("figure mismatch: baseline \"" +
                                    fig->AsString() + "\" vs current \"" +
                                    cur_fig->AsString() + "\"");
  }
  CompareSummaries(baseline, current, options, &diff);
  CompareRows(baseline, current, options, &diff);
  return diff;
}

Result<BenchDiff> CompareReportFiles(const std::string& baseline_path,
                                     const std::string& current_path,
                                     const DiffOptions& options) {
  Result<JsonValue> base = ReadJsonFile(baseline_path);
  if (!base.ok()) return base.status();
  Result<JsonValue> cur = ReadJsonFile(current_path);
  if (!cur.ok()) return cur.status();
  return CompareReports(*base, *cur, options);
}

}  // namespace bestpeer::obs
