#ifndef BESTPEER_OBS_TELEMETRY_SERVER_H_
#define BESTPEER_OBS_TELEMETRY_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/reactor.h"
#include "util/result.h"
#include "util/status.h"

namespace bestpeer::obs {

// The live telemetry plane's HTTP side: a minimal HTTP/1.0 server hosted
// on the existing net::Reactor (no extra threads — handlers run on the
// reactor thread, interleaved with message delivery, which is what makes
// it safe for them to read protocol objects), plus a small blocking
// client for bptop and tests. Everything is opt-in: a process that never
// constructs a TelemetryServer pays nothing.

/// One parsed request. Only what the telemetry endpoints need: method,
/// split target, headers.
struct HttpRequest {
  std::string method;   ///< "GET" (anything else is answered 405).
  std::string path;     ///< Target up to '?', e.g. "/flight".
  std::string query;    ///< Raw query string after '?', e.g. "n=16".
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1".
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Value of `key` in a raw query string ("a=1&b=2"); empty when absent.
std::string QueryParam(const std::string& query, std::string_view key);

/// Hard limits the parser enforces before trusting any length: inputs
/// beyond them poison the parser and the connection is closed.
struct HttpParserLimits {
  size_t max_request_line = 4096;
  size_t max_header_bytes = 8192;
  size_t max_headers = 64;
};

/// Incremental HTTP/1.0 request parser for one connection, in the same
/// shape as net::FrameDecoder: Feed() raw bytes, Next() yields a complete
/// request or asks for more; malformed or oversized input poisons the
/// parser — the stream cannot be trusted past the first violation, so
/// the server closes the socket. Request bodies are rejected (the
/// telemetry plane is GET-only); pipelined bytes after the first request
/// are ignored because every response carries `Connection: close`.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpParserLimits limits = {})
      : limits_(limits) {}

  void Feed(const uint8_t* data, size_t len);

  /// True: one request parsed into *out. False: need more bytes.
  /// Error: stream malformed/oversized; no further requests will parse.
  Result<bool> Next(HttpRequest* out);

  bool poisoned() const { return poisoned_; }
  size_t buffered() const { return buf_.size(); }

 private:
  Status Poison(const std::string& reason);

  HttpParserLimits limits_;
  std::string buf_;
  bool poisoned_ = false;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct TelemetryServerOptions {
  /// "host:port" to bind; port 0 lets the kernel pick (read it back via
  /// port()). Loopback by default: the plane is an operator surface, not
  /// a public one.
  std::string address = "127.0.0.1:0";
  HttpParserLimits parser;
  /// A connection idle past this (no complete request, unwritten
  /// response) is closed.
  int64_t conn_timeout_us = 5'000'000;
  /// Accepted connections beyond this are closed immediately.
  size_t max_connections = 64;
};

/// The server. Register handlers, Start(), and every matching GET is
/// answered on the reactor thread. Exact-path routing; unknown paths get
/// 404, non-GET methods 405, parse failures a best-effort 400 then close.
class TelemetryServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `reactor` must outlive the server. Start() may be called before or
  /// after the reactor starts (registration rides Reactor::Post).
  TelemetryServer(net::Reactor* reactor, TelemetryServerOptions options = {});
  ~TelemetryServer();
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  /// Registers the handler for one exact path. Call before Start().
  void AddHandler(std::string path, Handler handler);

  /// Binds and listens (on the calling thread), then registers with the
  /// reactor. Fails on unparseable address or bind/listen errors.
  Status Start();

  /// Closes the listener and every connection. Safe to call whether or
  /// not the reactor is running; idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    uint64_t id = 0;
    int fd = -1;
    HttpRequestParser parser;
    std::string out;       ///< Encoded response awaiting write.
    size_t out_off = 0;
    bool responding = false;  ///< Response queued; close once written.
    explicit Conn(HttpParserLimits limits) : parser(limits) {}
  };

  // All private methods run on the reactor thread.
  void OnAcceptable();
  void OnConnEvent(int fd, uint32_t events);
  void HandleRequest(Conn& conn, const HttpRequest& request);
  void QueueResponse(Conn& conn, const HttpResponse& response);
  void FlushConn(Conn& conn);
  void CloseConn(int fd);
  void ArmConnTimeout(int fd, uint64_t id);

  net::Reactor* reactor_;
  TelemetryServerOptions options_;
  std::map<std::string, Handler> handlers_;
  std::string host_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  bool started_ = false;
  bool stopped_ = false;
  uint64_t next_conn_id_ = 1;
  std::map<int, Conn> conns_;
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> connections_rejected_{0};
};

/// Splits "host:port". Fails on missing/unparseable port.
Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port);

struct HttpGetResult {
  int status = 0;
  std::string body;
};

/// Blocking HTTP/1.0 GET with a deadline — the client side bptop and the
/// tests poll endpoints with (no curl dependency). Reads to EOF.
Result<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                              const std::string& target,
                              int timeout_ms = 2000);

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_TELEMETRY_SERVER_H_
