#ifndef BESTPEER_OBS_TIMESERIES_H_
#define BESTPEER_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::obs {

/// A sampled run: one timestamp column plus N value columns, every row one
/// sim-time sample. This is the `timeseries` section of BENCH_*.json — it
/// gives figures a temporal axis instead of one scalar per config.
struct TimeSeries {
  SimTime interval = 0;
  std::vector<std::string> columns;
  std::vector<SimTime> timestamps;
  /// points[i] aligns with timestamps[i]; points[i].size() == columns.size().
  std::vector<std::vector<double>> points;

  bool empty() const { return timestamps.empty(); }

  /// {"interval_us":..,"columns":[..],"points":[[ts,v..],..]} — each point
  /// row leads with its timestamp.
  std::string ToJson(int indent = 0) const;
};

/// Samples Registry instruments on a fixed sim-time cadence. Counters are
/// reported as per-interval deltas (bytes this interval, not bytes so
/// far); gauges and probes as levels. The sampler itself is passive —
/// SamplerDriver below hooks it into a Simulator.
class TimeSeriesSampler {
 public:
  /// `registry` is not owned and must outlive the sampler.
  TimeSeriesSampler(const metrics::Registry* registry, SimTime interval);
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Adds a column reporting the per-interval delta of metric `name`
  /// (summed over label sets).
  void AddDelta(std::string column, std::string metric);

  /// Adds a column reporting the current value of metric `name`.
  void AddLevel(std::string column, std::string metric);

  /// Adds a column fed by an arbitrary probe (e.g. simulator event count).
  void AddProbe(std::string column, std::function<double()> probe);

  /// Registers the standard column set every experiment wants: wire bytes
  /// and messages per interval, NIC queue wait, CPU busy, fault drops and
  /// the in-flight session level.
  void AddDefaultColumns();

  /// Takes one sample at sim-time `now`.
  void Sample(SimTime now);

  SimTime interval() const { return interval_; }
  size_t sample_count() const { return series_.timestamps.size(); }

  /// Moves the collected series out (the sampler is spent afterwards).
  TimeSeries Take();

 private:
  struct Column {
    enum class Mode { kDelta, kLevel, kProbe } mode;
    std::string metric;
    std::function<double()> probe;
    double last = 0;
  };

  const metrics::Registry* registry_;
  SimTime interval_;
  std::vector<Column> columns_;
  TimeSeries series_;
};

/// Drives a TimeSeriesSampler off a Simulator's virtual clock. Sampling
/// keeps itself alive only while other events are pending, so
/// RunUntilIdle still terminates; call Arm() again after the queue drains
/// (e.g. at the start of every churn round). Header-only on purpose: the
/// obs library stays link-independent of bp_sim.
class SamplerDriver {
 public:
  SamplerDriver(sim::Simulator* sim, TimeSeriesSampler* sampler)
      : sim_(sim), sampler_(sampler) {}
  SamplerDriver(const SamplerDriver&) = delete;
  SamplerDriver& operator=(const SamplerDriver&) = delete;

  /// Samples now and keeps sampling every interval while the simulator
  /// has work queued. Idempotent while armed.
  void Arm() {
    if (armed_) return;
    armed_ = true;
    Tick();
  }

 private:
  void Tick() {
    sampler_->Sample(sim_->now());
    if (sim_->pending() == 0) {
      armed_ = false;
      return;
    }
    sim_->ScheduleAfter(sampler_->interval(), [this]() { Tick(); });
  }

  sim::Simulator* sim_;
  TimeSeriesSampler* sampler_;
  bool armed_ = false;
};

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_TIMESERIES_H_
