#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace bestpeer::obs {

namespace {

void SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

const char* StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

/// Strips one line (up to '\n') from `buf` starting at *pos; the
/// returned view excludes the trailing "\r\n" / "\n". Returns false when
/// no complete line is buffered yet.
bool NextLine(const std::string& buf, size_t* pos, std::string_view* line) {
  const size_t nl = buf.find('\n', *pos);
  if (nl == std::string::npos) return false;
  size_t end = nl;
  if (end > *pos && buf[end - 1] == '\r') --end;
  *line = std::string_view(buf).substr(*pos, end - *pos);
  *pos = nl + 1;
  return true;
}

bool TokenChars(std::string_view s) {
  for (char c : s) {
    if (c <= ' ' || c >= 0x7f) return false;
  }
  return !s.empty();
}

}  // namespace

std::string QueryParam(const std::string& query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    if (eq == std::string_view::npos && pair == key) return std::string();
    pos = amp + 1;
  }
  return std::string();
}

// ---------------------------------------------------------------------------
// HttpRequestParser

void HttpRequestParser::Feed(const uint8_t* data, size_t len) {
  if (poisoned_) return;  // The stream is already condemned; drop bytes.
  buf_.append(reinterpret_cast<const char*>(data), len);
}

Status HttpRequestParser::Poison(const std::string& reason) {
  poisoned_ = true;
  return Status::InvalidArgument("http: " + reason);
}

Result<bool> HttpRequestParser::Next(HttpRequest* out) {
  if (poisoned_) return Status::InvalidArgument("http: parser poisoned");

  // Request line first. Bound the search: if no newline has shown up
  // within max_request_line bytes, the line can never become valid.
  size_t pos = 0;
  std::string_view line;
  if (!NextLine(buf_, &pos, &line)) {
    if (buf_.size() > limits_.max_request_line) {
      return Poison("request line over limit");
    }
    return false;
  }
  if (line.size() > limits_.max_request_line) {
    return Poison("request line over limit");
  }
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    return Poison("malformed request line");
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!TokenChars(method) || !TokenChars(target) ||
      target.front() != '/' || version.rfind("HTTP/", 0) != 0 ||
      version.size() < 8) {
    return Poison("malformed request line");
  }

  // Headers until the blank line, bounded in count and total bytes.
  HttpRequest request;
  request.method = std::string(method);
  request.version = std::string(version);
  const size_t q = target.find('?');
  request.path = std::string(target.substr(0, q));
  if (q != std::string_view::npos) {
    request.query = std::string(target.substr(q + 1));
  }
  const size_t headers_start = pos;
  for (;;) {
    if (pos - headers_start > limits_.max_header_bytes) {
      return Poison("headers over byte limit");
    }
    std::string_view header;
    if (!NextLine(buf_, &pos, &header)) {
      if (buf_.size() - headers_start > limits_.max_header_bytes) {
        return Poison("headers over byte limit");
      }
      return false;  // Blank line not buffered yet.
    }
    if (header.empty()) break;  // End of headers.
    const size_t colon = header.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Poison("malformed header");
    }
    if (request.headers.size() >= limits_.max_headers) {
      return Poison("too many headers");
    }
    std::string_view value = header.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    request.headers.emplace_back(std::string(header.substr(0, colon)),
                                 std::string(value));
  }

  // GET-only plane: a request advertising a body is refused outright
  // rather than leaving payload bytes to be misparsed as a next request.
  for (const auto& [name, value] : request.headers) {
    std::string lower(name);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == "content-length" && value != "0") {
      return Poison("request body not supported");
    }
    if (lower == "transfer-encoding") {
      return Poison("request body not supported");
    }
  }

  buf_.erase(0, pos);  // Anything pipelined past this point is ignored.
  *out = std::move(request);
  return true;
}

// ---------------------------------------------------------------------------
// TelemetryServer

TelemetryServer::TelemetryServer(net::Reactor* reactor,
                                 TelemetryServerOptions options)
    : reactor_(reactor), options_(std::move(options)) {}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::AddHandler(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status ParseHostPort(const std::string& address, std::string* host,
                     uint16_t* port) {
  const size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= address.size()) {
    return Status::InvalidArgument("address must be host:port, got '" +
                                   address + "'");
  }
  char* end = nullptr;
  const long value = std::strtol(address.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || value < 0 || value > 65535) {
    return Status::InvalidArgument("bad port in '" + address + "'");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return Status::OK();
}

Status TelemetryServer::Start() {
  if (started_) return Status::InvalidArgument("telemetry already started");
  uint16_t want_port = 0;
  Status st = ParseHostPort(options_.address, &host_, &want_port);
  if (!st.ok()) return st;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(want_port);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad telemetry host '" + host_ + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal("bind " + options_.address + ": " +
                            std::strerror(err));
  }
  if (::listen(fd, 16) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  SetNonBlocking(fd);
  listen_fd_ = fd;
  started_ = true;
  reactor_->Post([this]() {
    if (stopped_) return;
    reactor_->AddFd(listen_fd_, /*want_read=*/true, /*want_write=*/false,
                    [this](uint32_t) { OnAcceptable(); });
  });
  return Status::OK();
}

void TelemetryServer::Stop() {
  if (!started_ || stopped_) return;
  auto cleanup = [this](bool deregister) {
    if (deregister && listen_fd_ >= 0) reactor_->RemoveFd(listen_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    listen_fd_ = -1;
    for (auto& [fd, conn] : conns_) {
      if (deregister) reactor_->RemoveFd(fd);
      ::close(fd);
    }
    conns_.clear();
  };
  stopped_ = true;
  if (reactor_->running()) {
    reactor_->Run([&]() { cleanup(/*deregister=*/true); });
  } else {
    // The reactor loop is gone; its watch table is moot. Just close.
    cleanup(/*deregister=*/false);
  }
}

void TelemetryServer::OnAcceptable() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    Conn conn(options_.parser);
    conn.fd = fd;
    conn.id = next_conn_id_++;
    const uint64_t id = conn.id;
    conns_.emplace(fd, std::move(conn));
    reactor_->AddFd(fd, /*want_read=*/true, /*want_write=*/false,
                    [this, fd](uint32_t events) { OnConnEvent(fd, events); });
    ArmConnTimeout(fd, id);
  }
}

void TelemetryServer::ArmConnTimeout(int fd, uint64_t id) {
  reactor_->AddTimerAt(reactor_->now_us() + options_.conn_timeout_us,
                       [this, fd, id]() {
                         auto it = conns_.find(fd);
                         // Guard against fd reuse: only the connection the
                         // timer was armed for is eligible.
                         if (it != conns_.end() && it->second.id == id) {
                           CloseConn(fd);
                         }
                       });
}

void TelemetryServer::OnConnEvent(int fd, uint32_t events) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  if ((events & net::Reactor::kError) != 0) {
    CloseConn(fd);
    return;
  }
  if ((events & net::Reactor::kReadable) != 0 && !conn.responding) {
    uint8_t buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        conn.parser.Feed(buf, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF (or hard error) before a complete request: a truncated read.
      CloseConn(fd);
      return;
    }
    HttpRequest request;
    auto parsed = conn.parser.Next(&request);
    if (!parsed.ok()) {
      // Best-effort 400, then close once (if) it flushes.
      HttpResponse bad;
      bad.status = 400;
      bad.body = parsed.status().ToString() + "\n";
      QueueResponse(conn, bad);
      return;
    }
    if (parsed.value()) {
      HandleRequest(conn, request);
      return;
    }
    // Need more bytes; keep reading.
    return;
  }
  if ((events & net::Reactor::kWritable) != 0 && conn.responding) {
    FlushConn(conn);
  }
}

void TelemetryServer::HandleRequest(Conn& conn, const HttpRequest& request) {
  HttpResponse response;
  if (request.method != "GET") {
    response.status = 405;
    response.body = "only GET is served here\n";
  } else {
    auto it = handlers_.find(request.path);
    if (it == handlers_.end()) {
      response.status = 404;
      response.body = "no such endpoint: " + request.path + "\n";
    } else {
      response = it->second(request);
    }
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  QueueResponse(conn, response);
}

void TelemetryServer::QueueResponse(Conn& conn,
                                    const HttpResponse& response) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "HTTP/1.0 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %zu\r\n"
                "Connection: close\r\n"
                "\r\n",
                response.status, StatusText(response.status),
                response.content_type.c_str(), response.body.size());
  conn.out = head;
  conn.out += response.body;
  conn.out_off = 0;
  conn.responding = true;
  // Response in flight: stop reading (pipelined junk stays in the kernel
  // buffer until the close discards it), start writing.
  reactor_->ModFd(conn.fd, /*want_read=*/false, /*want_write=*/true);
  FlushConn(conn);
}

void TelemetryServer::FlushConn(Conn& conn) {
  const int fd = conn.fd;
  while (conn.out_off < conn.out.size()) {
    const ssize_t n = ::write(fd, conn.out.data() + conn.out_off,
                              conn.out.size() - conn.out_off);
    if (n > 0) {
      conn.out_off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(fd);
    return;
  }
  CloseConn(fd);  // HTTP/1.0: one response, then close.
}

void TelemetryServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  reactor_->RemoveFd(fd);
  ::close(fd);
  conns_.erase(it);
}

// ---------------------------------------------------------------------------
// HttpGet

Result<HttpGetResult> HttpGet(const std::string& host, uint16_t port,
                              const std::string& target, int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  SetNonBlocking(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("connect: ") +
                               std::strerror(err));
  }
  pollfd pfd{fd, POLLOUT, 0};
  if (::poll(&pfd, 1, timeout_ms) <= 0) {
    ::close(fd);
    return Status::Unavailable("connect timeout");
  }
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
  if (soerr != 0) {
    ::close(fd);
    return Status::Unavailable(std::string("connect: ") +
                               std::strerror(soerr));
  }

  std::string request = "GET " + target + " HTTP/1.0\r\nHost: " + host +
                        "\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::write(fd, request.data() + sent, request.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pfd.events = POLLOUT;
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        ::close(fd);
        return Status::Unavailable("write timeout");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("write: ") + std::strerror(err));
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<size_t>(n));
      if (raw.size() > 64u * 1024 * 1024) {
        ::close(fd);
        return Status::ResourceExhausted("response over 64 MiB");
      }
      continue;
    }
    if (n == 0) break;  // EOF: HTTP/1.0 end of response.
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        ::close(fd);
        return Status::Unavailable("read timeout");
      }
      continue;
    }
    if (errno == EINTR) continue;
    const int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("read: ") + std::strerror(err));
  }
  ::close(fd);

  const size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed response status line");
  }
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status::Internal("malformed response status line");
  }
  HttpGetResult result;
  result.status = std::atoi(raw.c_str() + sp + 1);
  const size_t body = raw.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::Internal("response has no header terminator");
  }
  result.body = raw.substr(body + 4);
  return result;
}

}  // namespace bestpeer::obs
