#ifndef BESTPEER_OBS_CRITICAL_PATH_H_
#define BESTPEER_OBS_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.h"
#include "util/sim_time.h"
#include "util/trace.h"

namespace bestpeer::obs {

/// Where a microsecond of a query's end-to-end latency went. Every
/// microsecond of [issue, last answer] is attributed to exactly one
/// component, so the components of a query sum to its measured latency.
enum class PathComponent : uint8_t {
  kUplinkQueue,    ///< Waiting behind earlier transmissions on a sender NIC.
  kWire,           ///< NIC serialization (both ends) + propagation + spikes.
  kDownlinkQueue,  ///< Waiting behind earlier receptions on a receiver NIC.
  kCpuQueue,       ///< Waiting for a free CPU thread.
  kScan,           ///< Local store scan (agent execute scan part, dataship).
  kAgentOverhead,  ///< Agent serialize + reconstruct + clone forwarding.
  kHandling,       ///< Result/fetch handling CPU at the endpoints.
  kOther,          ///< Uninstrumented gaps (dispatch, waiting on siblings).
};

constexpr size_t kPathComponentCount = 8;

/// Stable lower_snake_case name used in reports.
std::string_view PathComponentName(PathComponent c);

/// One chain link of a query's critical path, in forward time order.
struct PathHop {
  std::string name;  ///< Span name ("agent.migrate", "result.handle", ...).
  uint32_t node = 0;
  SimTime start = 0;
  SimTime dur = 0;
  PathComponent component = PathComponent::kOther;
};

/// The latency decomposition of one query.
struct QueryBreakdown {
  uint64_t flow = 0;
  uint32_t base_node = 0;
  SimTime start = 0;
  /// Measured end-to-end latency (the query span's duration).
  SimTime total = 0;
  /// Attributed time per PathComponent; sums to `total` exactly.
  std::array<SimTime, kPathComponentCount> components{};
  /// Critical-path chain, oldest hop first.
  std::vector<PathHop> hops;
  /// Flight-recorder drops observed on this flow (0 without a recorder).
  uint64_t drops = 0;

  SimTime ComponentSum() const;
};

/// Aggregate percentile line for one component across all queries.
struct ComponentStats {
  PathComponent component = PathComponent::kOther;
  double mean_us = 0;
  double p50_us = 0;
  double p99_us = 0;
  /// Fraction of summed end-to-end latency attributed to this component.
  double share = 0;
};

struct CriticalPathReport {
  std::vector<QueryBreakdown> queries;
  std::vector<ComponentStats> stats;
  /// Indexes into `queries`, slowest first, at most the requested top-k.
  std::vector<size_t> slowest;

  bool empty() const { return queries.empty(); }

  /// {"queries":N,"components":{...},"top_slowest":[...]} — the
  /// `critical_path` section of BENCH_*.json.
  std::string ToJson(int indent = 0) const;
};

/// Walks each query's spans backwards from its completion, following the
/// chain of latest-ending net/cpu spans, and attributes every interval of
/// [start, completion] to a PathComponent. Net spans split into uplink
/// queue / wire / downlink queue via their up_wait/rx_wait args; cpu
/// spans split off their qwait arg as CPU-queue time. `recorder`
/// (optional) contributes per-flow drop counts.
CriticalPathReport AnalyzeCriticalPaths(const trace::TraceRecorder& trace,
                                        const FlightRecorder* recorder = nullptr,
                                        size_t top_k = 5);

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_CRITICAL_PATH_H_
