#include "obs/critical_path.h"

#include <algorithm>
#include <map>

#include "obs/json_writer.h"
#include "util/stats.h"

namespace bestpeer::obs {

std::string_view PathComponentName(PathComponent c) {
  switch (c) {
    case PathComponent::kUplinkQueue:
      return "uplink_queue";
    case PathComponent::kWire:
      return "wire";
    case PathComponent::kDownlinkQueue:
      return "downlink_queue";
    case PathComponent::kCpuQueue:
      return "cpu_queue";
    case PathComponent::kScan:
      return "scan";
    case PathComponent::kAgentOverhead:
      return "agent_overhead";
    case PathComponent::kHandling:
      return "handling";
    case PathComponent::kOther:
      return "other";
  }
  return "unknown";
}

SimTime QueryBreakdown::ComponentSum() const {
  SimTime sum = 0;
  for (SimTime c : components) sum += c;
  return sum;
}

namespace {

uint64_t ArgOf(const trace::Span& span, std::string_view key) {
  for (const auto& [k, v] : span.args) {
    if (k == key) return v;
  }
  return 0;
}

/// The component a CPU span's busy time belongs to (net spans are split
/// by their queue args instead).
PathComponent ClassifyCpu(const std::string& name) {
  if (name == "agent.forward") return PathComponent::kAgentOverhead;
  if (name == "result.handle") return PathComponent::kHandling;
  if (name.find("scan") != std::string::npos ||
      name.find("serve") != std::string::npos ||
      name == "agent.execute") {
    return PathComponent::kScan;
  }
  return PathComponent::kHandling;
}

struct Walker {
  QueryBreakdown* out;
  SimTime t0;

  void Attribute(PathComponent c, SimTime amount) {
    if (amount <= 0) return;
    out->components[static_cast<size_t>(c)] += amount;
  }

  /// Attributes one chained span's interval [seg_start, seg_end] and
  /// returns the new walk cursor (seg_start, or earlier when the span
  /// queued for a CPU first).
  SimTime Consume(const trace::Span& s, SimTime seg_start, SimTime seg_end) {
    const SimTime seg = seg_end - seg_start;
    PathHop hop;
    hop.name = s.name;
    hop.node = s.tid;
    hop.start = seg_start;
    hop.dur = seg;
    if (s.cat == "net") {
      SimTime up = static_cast<SimTime>(ArgOf(s, "up_wait"));
      SimTime rx = static_cast<SimTime>(ArgOf(s, "rx_wait"));
      up = std::min(up, seg);
      rx = std::min(rx, seg - up);
      Attribute(PathComponent::kUplinkQueue, up);
      Attribute(PathComponent::kDownlinkQueue, rx);
      Attribute(PathComponent::kWire, seg - up - rx);
      hop.component = PathComponent::kWire;
      out->hops.push_back(std::move(hop));
      return seg_start;
    }
    // CPU span. agent.execute carries a setup/scan split; everything else
    // lands whole in its classified bucket.
    PathComponent main = ClassifyCpu(s.name);
    if (s.name == "agent.execute") {
      SimTime setup = static_cast<SimTime>(ArgOf(s, "setup"));
      setup = std::min(setup, seg);
      Attribute(PathComponent::kAgentOverhead, setup);
      Attribute(PathComponent::kScan, seg - setup);
    } else {
      Attribute(main, seg);
    }
    hop.component = main;
    out->hops.push_back(std::move(hop));
    // Time the task spent queued for a free CPU thread extends the chain
    // backwards past the span's start.
    SimTime qwait = static_cast<SimTime>(ArgOf(s, "qwait"));
    if (qwait > 0) {
      SimTime qstart = seg_start - qwait;
      if (qstart < t0) qstart = t0;
      Attribute(PathComponent::kCpuQueue, seg_start - qstart);
      return qstart;
    }
    return seg_start;
  }
};

}  // namespace

CriticalPathReport AnalyzeCriticalPaths(const trace::TraceRecorder& trace,
                                        const FlightRecorder* recorder,
                                        size_t top_k) {
  CriticalPathReport report;

  // Group flow spans; query spans are the roots.
  std::map<uint64_t, std::vector<const trace::Span*>> by_flow;
  std::vector<const trace::Span*> roots;
  trace.ForEachSpan([&](const trace::Span& s) {
    if (s.cat == "query") {
      roots.push_back(&s);
    } else if (s.flow != 0) {
      by_flow[s.flow].push_back(&s);
    }
  });

  std::map<uint64_t, uint64_t> drops_by_flow;
  if (recorder != nullptr) {
    for (const FlightEvent& e : recorder->Events()) {
      if (e.type == EventType::kMsgDrop && e.flow != 0) {
        ++drops_by_flow[e.flow];
      }
    }
  }

  for (const trace::Span* root : roots) {
    QueryBreakdown q;
    q.flow = root->flow;
    q.base_node = root->tid;
    q.start = root->ts;
    q.total = root->dur;

    const SimTime t0 = root->ts;
    const SimTime t_end = root->ts + root->dur;
    auto it = by_flow.find(root->flow);
    std::vector<const trace::Span*> spans =
        it == by_flow.end() ? std::vector<const trace::Span*>{} : it->second;
    // Sorted by end time; the walk consumes them newest-first.
    std::sort(spans.begin(), spans.end(),
              [](const trace::Span* a, const trace::Span* b) {
                if (a->ts + a->dur != b->ts + b->dur) {
                  return a->ts + a->dur < b->ts + b->dur;
                }
                return a->dur < b->dur;
              });

    Walker walker{&q, t0};
    SimTime cur = t_end;
    size_t i = spans.size();
    while (cur > t0) {
      while (i > 0 && spans[i - 1]->ts + spans[i - 1]->dur > cur) --i;
      if (i == 0) {
        walker.Attribute(PathComponent::kOther, cur - t0);
        break;
      }
      const trace::Span* s = spans[--i];
      const SimTime end = s->ts + s->dur;
      if (end <= t0) {
        walker.Attribute(PathComponent::kOther, cur - t0);
        break;
      }
      // Gap between this span's end and the later chain link: time the
      // flow spent outside any instrumented interval.
      walker.Attribute(PathComponent::kOther, cur - end);
      const SimTime seg_start = std::max(s->ts, t0);
      cur = walker.Consume(*s, seg_start, end);
    }
    std::reverse(q.hops.begin(), q.hops.end());
    auto drop_it = drops_by_flow.find(q.flow);
    q.drops = drop_it == drops_by_flow.end() ? 0 : drop_it->second;
    report.queries.push_back(std::move(q));
  }

  // Aggregates.
  double total_sum = 0;
  std::array<Summary, kPathComponentCount> per_component;
  std::array<double, kPathComponentCount> component_sum{};
  for (const QueryBreakdown& q : report.queries) {
    total_sum += static_cast<double>(q.total);
    for (size_t c = 0; c < kPathComponentCount; ++c) {
      per_component[c].Add(static_cast<double>(q.components[c]));
      component_sum[c] += static_cast<double>(q.components[c]);
    }
  }
  for (size_t c = 0; c < kPathComponentCount; ++c) {
    ComponentStats stats;
    stats.component = static_cast<PathComponent>(c);
    stats.mean_us = per_component[c].mean();
    stats.p50_us = per_component[c].Percentile(50);
    stats.p99_us = per_component[c].Percentile(99);
    stats.share = total_sum > 0 ? component_sum[c] / total_sum : 0;
    report.stats.push_back(stats);
  }

  // Top-k slowest queries.
  std::vector<size_t> order(report.queries.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&report](size_t a, size_t b) {
    return report.queries[a].total > report.queries[b].total;
  });
  if (order.size() > top_k) order.resize(top_k);
  report.slowest = std::move(order);
  return report;
}

namespace {

void AppendComponentsJson(std::string* out,
                          const std::array<SimTime, kPathComponentCount>& c) {
  *out += '{';
  bool first = true;
  for (size_t i = 0; i < kPathComponentCount; ++i) {
    if (c[i] == 0) continue;
    if (!first) *out += ", ";
    first = false;
    *out += '"';
    *out += PathComponentName(static_cast<PathComponent>(i));
    *out += "\": ";
    AppendJsonNumber(out, static_cast<double>(c[i]));
  }
  *out += '}';
}

}  // namespace

std::string CriticalPathReport::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  const std::string inner(static_cast<size_t>(indent) + 2, ' ');
  const std::string inner2(static_cast<size_t>(indent) + 4, ' ');
  std::string out = "{\n";
  out += inner + "\"queries\": ";
  AppendJsonNumber(&out, static_cast<double>(queries.size()));
  out += ",\n" + inner + "\"components\": {";
  bool first = true;
  for (const ComponentStats& s : stats) {
    if (s.mean_us == 0 && s.p99_us == 0) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += inner2 + '"';
    out += PathComponentName(s.component);
    out += "\": {\"mean_us\": ";
    AppendJsonNumber(&out, s.mean_us);
    out += ", \"p50_us\": ";
    AppendJsonNumber(&out, s.p50_us);
    out += ", \"p99_us\": ";
    AppendJsonNumber(&out, s.p99_us);
    out += ", \"share\": ";
    AppendJsonNumber(&out, s.share);
    out += '}';
  }
  if (!first) out += "\n" + inner;
  out += "},\n" + inner + "\"top_slowest\": [";
  for (size_t k = 0; k < slowest.size(); ++k) {
    const QueryBreakdown& q = queries[slowest[k]];
    out += k == 0 ? "\n" : ",\n";
    out += inner2 + "{\"flow\": ";
    AppendJsonNumber(&out, static_cast<double>(q.flow));
    out += ", \"node\": ";
    AppendJsonNumber(&out, q.base_node);
    out += ", \"total_us\": ";
    AppendJsonNumber(&out, static_cast<double>(q.total));
    out += ", \"drops\": ";
    AppendJsonNumber(&out, static_cast<double>(q.drops));
    out += ",\n" + inner2 + " \"components\": ";
    AppendComponentsJson(&out, q.components);
    out += ",\n" + inner2 + " \"hops\": [";
    for (size_t h = 0; h < q.hops.size(); ++h) {
      const PathHop& hop = q.hops[h];
      out += h == 0 ? "" : ", ";
      out += "{\"name\": \"";
      AppendJsonEscaped(&out, hop.name);
      out += "\", \"node\": ";
      AppendJsonNumber(&out, hop.node);
      out += ", \"start_us\": ";
      AppendJsonNumber(&out, static_cast<double>(hop.start));
      out += ", \"dur_us\": ";
      AppendJsonNumber(&out, static_cast<double>(hop.dur));
      out += ", \"component\": \"";
      out += PathComponentName(hop.component);
      out += "\"}";
    }
    out += "]}";
  }
  if (!slowest.empty()) out += "\n" + inner;
  out += "]\n" + pad + "}";
  return out;
}

}  // namespace bestpeer::obs
