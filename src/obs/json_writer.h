#ifndef BESTPEER_OBS_JSON_WRITER_H_
#define BESTPEER_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace bestpeer::obs {

/// Appends `s` with JSON string escaping (quotes, backslash, control
/// characters). Shared by every writer in the repo so no emitted string
/// field can break a report's JSON validity.
inline void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

inline std::string JsonEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

/// `s` as a complete JSON string literal, surrounding quotes included.
inline std::string JsonQuoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  AppendJsonEscaped(&out, s);
  out += '"';
  return out;
}

/// Appends a double as a valid JSON number. JSON has no nan/inf, which
/// "%g" happily emits — non-finite values become null instead. Integral
/// values print without a fraction so reports diff cleanly across runs.
inline void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[40];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", v);
  }
  *out += buf;
}

inline std::string JsonNumber(double v) {
  std::string out;
  AppendJsonNumber(&out, v);
  return out;
}

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_JSON_WRITER_H_
