#include "obs/json_reader.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace bestpeer::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::String(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> m) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(m);
  return v;
}

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    BP_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " at offset %zu", pos_);
    return Status::InvalidArgument(what + buf);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        BP_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::String(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      BP_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      BP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::Object(std::move(members));
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      BP_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::Array(std::move(items));
      return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("invalid \\u escape");
              }
            }
            pos_ += 4;
            // UTF-8 encode the BMP code point (reports only emit \u00XX,
            // but accept the full range; surrogate pairs pass through as
            // two 3-byte sequences, fine for diffing purposes).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return Error("malformed number");
    }
    return JsonValue::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  Result<JsonValue> parsed = ParseJson(content);
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace bestpeer::obs
