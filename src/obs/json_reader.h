#ifndef BESTPEER_OBS_JSON_READER_H_
#define BESTPEER_OBS_JSON_READER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace bestpeer::obs {

/// A parsed JSON value. Objects keep insertion order (bench reports are
/// diffed row-by-row, so order matters for error messages).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Number(double n);
  static JsonValue String(std::string s);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// anything else after the value is an error). Depth-limited; returns
/// InvalidArgument with a byte offset on malformed input.
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_JSON_READER_H_
