#ifndef BESTPEER_OBS_FLIGHT_RECORDER_H_
#define BESTPEER_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.h"
#include "util/status.h"

namespace bestpeer::obs {

/// What happened. Every layer that makes a decision a post-mortem would
/// want to see contributes one of these.
enum class EventType : uint8_t {
  kMsgSend,          ///< Message put on the sender's uplink.
  kMsgDeliver,       ///< Message handed to the receiver's handler.
  kMsgDrop,          ///< Message lost; `cause` says why.
  kAgentHop,         ///< Agent clone sent to a peer (a = hops so far).
  kReconfig,         ///< Peer set changed (a = adopted, b = dropped).
  kSessionFinalize,  ///< Query session closed (a = answers, b = responders).
  kDeadlineExpire,   ///< Query deadline fired with the session still open.
  kLigloRetry,       ///< LIGLO request resent (a = request id, b = attempt).
  kCrash,            ///< Scheduled crash took the node offline.
  kRestart,          ///< Crashed node came back.
  kAnomaly,          ///< TripAnomaly marker (see anomalies() for reasons).
  kCacheHit,         ///< Result-cache probe hit (a = key hash, b = epoch).
  kCacheMiss,        ///< Result-cache probe miss (a = key hash, b = epoch).
  kCacheEvict,       ///< Entry evicted for space (a = key hash, b = bytes).
  kCacheInvalidate,  ///< Stale slice dropped (a = key hash, b = epoch).
  kReplicaPush,      ///< Hot answers pushed to a peer (a = objects).
  kReplicaExpire,    ///< Replica TTL fired; copy deleted (a = object id).
  kTraceSampled,     ///< Flow picked up by the distributed tracer — this
                     ///< process will record spans for `flow` (a = 1 when
                     ///< forced by an inbound sampled frame, 0 when decided
                     ///< locally by the head-based hash).
  kGossipSend,       ///< Gossip frame pushed to a peer (a = items, b = round).
  kGossipApply,      ///< Gossiped item applied (a = origin, b = version).
  kLeaseRevoke,      ///< Replica lease revoked on peer loss (a = object id).
};

/// Stable lower_snake_case name used in the NDJSON dump.
std::string_view EventTypeName(EventType type);

/// Why a kMsgDrop happened — the fault-decision cause the ISSUE's "why did
/// recall drop" question needs.
enum class DropCause : uint8_t {
  kNone,             ///< Not a drop.
  kFaultLoss,        ///< Probabilistic in-flight loss.
  kPartition,        ///< Crossed a partition cut.
  kSenderOffline,    ///< Sender was offline at send time.
  kReceiverOffline,  ///< Receiver offline when the message arrived.
  kReceiverDied,     ///< Receiver crashed between arrival and rx completion.
};

std::string_view DropCauseName(DropCause cause);

/// One typed, fixed-size record. Plain data so the ring buffer never
/// allocates per event.
struct FlightEvent {
  SimTime ts = 0;
  EventType type = EventType::kAnomaly;
  DropCause cause = DropCause::kNone;
  /// Network message type tag for kMsg* events (0 otherwise).
  uint32_t msg_type = 0;
  /// Primary node (sender for messages, self for local events).
  uint32_t node = 0xFFFFFFFF;
  /// Counterpart node (receiver / peer / server), or 0xFFFFFFFF.
  uint32_t peer = 0xFFFFFFFF;
  /// Causal id: the query/agent trace flow this event belongs to (0 = none).
  uint64_t flow = 0;
  /// Type-specific payload (message id, answers, request id, ...).
  uint64_t a = 0;
  /// Type-specific payload (wire bytes, responders, attempt, ...).
  uint64_t b = 0;
};

struct FlightRecorderOptions {
  /// Ring capacity in events. Overflow overwrites the oldest events and
  /// counts them in dropped_events().
  size_t capacity = 8192;
  /// When non-empty, TripAnomaly() dumps the ring as NDJSON to this path
  /// (overwritten on every trip, so the file holds the newest state).
  std::string auto_dump_path;
};

/// Bounded, deterministic ring buffer of structured events. Owned by the
/// Simulator next to the trace recorder; disabled (the default) means the
/// pointer is null and instrumented code pays a single pointer test — no
/// allocation, no rng draw, no branch beyond the test.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderOptions options);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one event; overwrites the oldest when full.
  void Record(const FlightEvent& event);

  /// Records a kAnomaly event, remembers `reason`, and — when an
  /// auto-dump path is configured — writes the ring to it.
  void TripAnomaly(SimTime ts, std::string reason);

  /// Registers a printable name for a network message type (mirrors
  /// SimNetwork::RegisterTypeName). Unnamed types dump as "msg:<hex>".
  void RegisterTypeName(uint32_t type, std::string name);

  size_t capacity() const { return capacity_; }
  /// Events currently held (<= capacity).
  size_t size() const;
  /// Total events ever recorded.
  uint64_t recorded() const { return recorded_; }
  /// Events overwritten by ring overflow.
  uint64_t dropped_events() const {
    return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
  }
  const std::vector<std::string>& anomalies() const { return anomalies_; }

  /// Events oldest-to-newest (copies out of the ring).
  std::vector<FlightEvent> Events() const;

  /// One JSON object per line. The first line is a header object carrying
  /// capacity / recorded / dropped / anomaly reasons, so a dump is
  /// self-describing.
  std::string ToNdjson() const;

  Status WriteNdjson(const std::string& path) const;

 private:
  void AppendEventJson(std::string* out, const FlightEvent& e) const;

  size_t capacity_;
  std::string auto_dump_path_;
  std::vector<FlightEvent> ring_;
  size_t next_ = 0;  ///< Ring write cursor.
  uint64_t recorded_ = 0;
  std::vector<std::string> anomalies_;
  std::map<uint32_t, std::string> type_names_;
};

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_FLIGHT_RECORDER_H_
