#include "obs/trace_frame.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/critical_path.h"
#include "obs/json_writer.h"

namespace bestpeer::obs {

namespace {

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("trace frame: " + what);
}

void AppendSpanJson(std::string* out, const trace::Span& s) {
  char buf[96];
  *out += "{\"name\": \"";
  AppendJsonEscaped(out, s.name);
  *out += "\", \"cat\": \"";
  AppendJsonEscaped(out, s.cat);
  std::snprintf(buf, sizeof(buf),
                "\", \"tid\": %u, \"ts\": %" PRId64 ", \"dur\": %" PRId64
                ", \"flow\": %" PRIu64,
                s.tid, s.ts, s.dur, s.flow);
  *out += buf;
  *out += ", \"args\": {";
  bool first = true;
  for (const auto& [key, value] : s.args) {
    if (!first) *out += ", ";
    first = false;
    *out += '"';
    AppendJsonEscaped(out, key);
    std::snprintf(buf, sizeof(buf), "\": %" PRIu64, value);
    *out += buf;
  }
  *out += "}}";
}

void AppendContextJson(std::string* out, const TraceExportContext& ctx) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"mono_us\": %" PRId64 ", \"wall_us\": %" PRId64
                ", \"node_base\": %u, \"local_nodes\": %u",
                ctx.now_us, ctx.wall_us, ctx.node_base, ctx.node_count);
  *out += buf;
}

}  // namespace

Bytes EncodeTraceFrame(const TraceFrame& frame) {
  BinaryWriter w;
  w.WriteU32(kTraceFrameMagic);
  w.WriteU16(kTraceFrameVersion);
  w.WriteU32(frame.node);
  w.WriteI64(frame.sent_at_us);
  w.WriteVarint(frame.spans_dropped);
  w.WriteVarint(frame.spans.size());
  for (const trace::Span& s : frame.spans) {
    w.WriteString(s.name);
    w.WriteString(s.cat);
    w.WriteU32(s.tid);
    w.WriteI64(s.ts);
    w.WriteI64(s.dur);
    w.WriteU64(s.flow);
    w.WriteVarint(s.args.size());
    for (const auto& [key, value] : s.args) {
      w.WriteString(key);
      w.WriteU64(value);
    }
  }
  return w.Take();
}

Result<TraceFrame> DecodeTraceFrame(const Bytes& payload) {
  BinaryReader r(payload);
  auto magic = r.ReadU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kTraceFrameMagic) return Malformed("bad magic");
  auto version = r.ReadU16();
  if (!version.ok()) return version.status();
  if (version.value() != kTraceFrameVersion) {
    return Malformed("unknown version");
  }
  TraceFrame frame;
  auto node = r.ReadU32();
  if (!node.ok()) return node.status();
  frame.node = node.value();
  auto sent_at = r.ReadI64();
  if (!sent_at.ok()) return sent_at.status();
  frame.sent_at_us = sent_at.value();
  auto dropped = r.ReadVarint();
  if (!dropped.ok()) return dropped.status();
  frame.spans_dropped = dropped.value();

  auto span_count = r.ReadVarint();
  if (!span_count.ok()) return span_count.status();
  if (span_count.value() > kTraceFrameMaxSpans) {
    return Malformed("span count over limit");
  }
  frame.spans.reserve(span_count.value());
  for (uint64_t i = 0; i < span_count.value(); ++i) {
    trace::Span s;
    auto name = r.ReadString();
    if (!name.ok()) return name.status();
    if (name.value().size() > kTraceFrameMaxNameLen) {
      return Malformed("name over limit");
    }
    s.name = std::move(name).value();
    auto cat = r.ReadString();
    if (!cat.ok()) return cat.status();
    if (cat.value().size() > kTraceFrameMaxNameLen) {
      return Malformed("category over limit");
    }
    s.cat = std::move(cat).value();
    auto tid = r.ReadU32();
    if (!tid.ok()) return tid.status();
    s.tid = tid.value();
    auto ts = r.ReadI64();
    if (!ts.ok()) return ts.status();
    s.ts = ts.value();
    auto dur = r.ReadI64();
    if (!dur.ok()) return dur.status();
    s.dur = dur.value();
    auto flow = r.ReadU64();
    if (!flow.ok()) return flow.status();
    s.flow = flow.value();
    auto arg_count = r.ReadVarint();
    if (!arg_count.ok()) return arg_count.status();
    if (arg_count.value() > kTraceFrameMaxArgs) {
      return Malformed("arg count over limit");
    }
    s.args.reserve(arg_count.value());
    for (uint64_t a = 0; a < arg_count.value(); ++a) {
      auto key = r.ReadString();
      if (!key.ok()) return key.status();
      if (key.value().size() > kTraceFrameMaxNameLen) {
        return Malformed("arg key over limit");
      }
      auto value = r.ReadU64();
      if (!value.ok()) return value.status();
      s.args.emplace_back(std::move(key).value(), value.value());
    }
    frame.spans.push_back(std::move(s));
  }
  if (r.remaining() != 0) return Malformed("trailing bytes");
  return frame;
}

// ---------------------------------------------------------------------------
// TraceCollector

TraceCollector::TraceCollector(size_t max_spans)
    : max_spans_(max_spans == 0 ? 1 : max_spans) {}

void TraceCollector::Absorb(TraceFrame frame, int64_t received_at_us) {
  ++frames_received_;
  // Keep the newest drop report per sender; the counter is cumulative.
  uint64_t& dropped = dropped_by_node_[frame.node];
  dropped = std::max(dropped, frame.spans_dropped);
  const int64_t offset = received_at_us - frame.sent_at_us;
  for (trace::Span& s : frame.spans) {
    if (s.flow == 0) continue;
    s.ts += offset;
    auto [it, inserted] = flows_.try_emplace(s.flow);
    if (inserted) flow_fifo_.push_back(s.flow);
    it->second.push_back(std::move(s));
    ++span_count_;
  }
  while (span_count_ > max_spans_ && flows_.size() > 1) ForgetOldestFlow();
}

void TraceCollector::ForgetOldestFlow() {
  while (!flow_fifo_.empty()) {
    const FlowId victim = flow_fifo_.front();
    flow_fifo_.pop_front();
    auto it = flows_.find(victim);
    if (it == flows_.end()) continue;  // Already evicted.
    span_count_ -= it->second.size();
    flows_.erase(it);
    ++flows_forgotten_;
    return;
  }
}

uint64_t TraceCollector::sender_spans_dropped() const {
  uint64_t sum = 0;
  for (const auto& [node, dropped] : dropped_by_node_) sum += dropped;
  return sum;
}

std::string TraceCollector::ToJson(const TraceExportContext& ctx) const {
  std::string out = "{\n  ";
  AppendContextJson(&out, ctx);
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\n  \"frames\": %" PRIu64 ", \"spans\": %zu"
                ", \"sender_spans_dropped\": %" PRIu64
                ", \"flows_forgotten\": %" PRIu64,
                frames_received_, span_count_, sender_spans_dropped(),
                flows_forgotten_);
  out += buf;
  out += ",\n  \"flows\": {";
  bool first_flow = true;
  for (const auto& [flow, spans] : flows_) {
    out += first_flow ? "\n" : ",\n";
    first_flow = false;
    std::snprintf(buf, sizeof(buf), "    \"%" PRIu64 "\": [", flow);
    out += buf;
    for (size_t i = 0; i < spans.size(); ++i) {
      out += i == 0 ? "\n      " : ",\n      ";
      AppendSpanJson(&out, spans[i]);
    }
    out += spans.empty() ? "]" : "\n    ]";
  }
  out += first_flow ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string TraceCollector::FlowJson(const TraceExportContext& ctx,
                                     FlowId flow) const {
  std::string out = "{\n  ";
  AppendContextJson(&out, ctx);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\n  \"flow\": %" PRIu64, flow);
  out += buf;
  out += ",\n  \"spans\": [";
  auto it = flows_.find(flow);
  const std::vector<trace::Span>* spans =
      it == flows_.end() ? nullptr : &it->second;
  bool has_query_root = false;
  if (spans != nullptr) {
    for (size_t i = 0; i < spans->size(); ++i) {
      out += i == 0 ? "\n    " : ",\n    ";
      AppendSpanJson(&out, (*spans)[i]);
      if ((*spans)[i].cat == "query") has_query_root = true;
    }
    if (!spans->empty()) out += "\n  ";
  }
  out += "]";
  if (has_query_root) {
    // Replay the flow through the critical-path walker for the explain.
    trace::TraceRecorderOptions options;
    options.ring_capacity = std::max<size_t>(spans->size(), 1);
    trace::TraceRecorder replay(options);
    for (const trace::Span& s : *spans) replay.RecordSpan(s);
    out += ",\n  \"explain\": ";
    out += AnalyzeCriticalPaths(replay, nullptr, 1).ToJson(2);
  }
  out += "\n}\n";
  return out;
}

}  // namespace bestpeer::obs
