#ifndef BESTPEER_OBS_STAT_FRAME_H_
#define BESTPEER_OBS_STAT_FRAME_H_

#include <cstdint>
#include <map>
#include <string>

#include "util/bytes.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/status.h"

namespace bestpeer::obs {

/// Message type tag for fleet stat frames: nodes periodically push a
/// compact serialized metrics snapshot to a collector, which merges the
/// frames (metrics::Snapshot::Merge) and serves the fleet-wide `/fleet`
/// rollup. Travels over any net::Transport like every other protocol
/// message (one BPF1 frame on the TCP backend).
constexpr uint32_t kStatFrameMsgType = 0x42530001;  // "BS" + 1.

/// Payload format version (first byte after the magic).
constexpr uint16_t kStatFrameVersion = 1;
constexpr uint32_t kStatFrameMagic = 0x31535042;  // "BPS1" in LE order.

/// Decode-side hard limits: a length field beyond these is treated as
/// corruption, not an allocation request (mirrors net::FrameDecoder).
constexpr size_t kStatFrameMaxEntries = 4096;
constexpr size_t kStatFrameMaxLabels = 16;
constexpr size_t kStatFrameMaxNameLen = 256;
constexpr size_t kStatFrameMaxBuckets = 256;

/// One node's pushed stats: who it is and its metrics at push time.
struct StatFrame {
  uint32_t node = 0xFFFFFFFF;
  /// Microseconds on the sender's clock when the frame was built.
  int64_t sent_at_us = 0;
  metrics::Snapshot snapshot;
};

/// Serializes a stat frame (magic, version, node, timestamp, entries with
/// kind/labels/value/count/min/max and histogram bucket detail).
Bytes EncodeStatFrame(const StatFrame& frame);

/// Bounds-checked decode; any truncation, bad magic/version or
/// over-limit length returns InvalidArgument (never UB, never a huge
/// allocation).
Result<StatFrame> DecodeStatFrame(const Bytes& payload);

/// Collector-side state for the fleet rollup: remembers the latest frame
/// per node and merges them on demand. Single-threaded like everything
/// else on the reactor; the caller decides where frames come from
/// (a dispatcher handler in bestpeerd).
class FleetCollector {
 public:
  /// Installs/replaces `frame` as node's latest (stale guard: frames
  /// with an older sent_at_us than the stored one are dropped and
  /// counted). `received_at_us` is the collector's clock, used for the
  /// age column in the rollup.
  void Absorb(StatFrame frame, int64_t received_at_us);

  /// Every node's latest snapshot merged into one fleet-wide snapshot.
  metrics::Snapshot Rollup() const;

  /// {"nodes":N,"frames":F,"stale_dropped":S,"per_node":{"<id>":
  ///  {"age_us":..,"metrics":{...}}},"merged":{...}} — the `/fleet`
  /// endpoint body. `now_us` is the collector's current clock.
  std::string ToJson(int64_t now_us) const;

  size_t node_count() const { return latest_.size(); }
  uint64_t frames_received() const { return frames_received_; }
  uint64_t stale_dropped() const { return stale_dropped_; }

 private:
  struct NodeState {
    StatFrame frame;
    int64_t received_at_us = 0;
  };
  std::map<uint32_t, NodeState> latest_;
  uint64_t frames_received_ = 0;
  uint64_t stale_dropped_ = 0;
};

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_STAT_FRAME_H_
