#ifndef BESTPEER_OBS_BENCH_DIFF_H_
#define BESTPEER_OBS_BENCH_DIFF_H_

#include <map>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "util/result.h"

namespace bestpeer::obs {

/// Tuning for a report comparison.
struct DiffOptions {
  /// Maximum allowed relative deviation |cur - base| / max(|base|, 1)
  /// before a metric counts as a regression.
  double default_threshold = 0.10;
  /// Per-metric overrides, keyed the way DiffEntry::metric is spelled
  /// ("summary.wire_bytes", "rows.n=64.latency_us").
  std::map<std::string, double> thresholds;
  /// Absolute slack: deviations at or below this never fail, whatever
  /// the relative change (guards tiny counters where one event is huge
  /// in relative terms).
  double abs_slack = 1e-9;
};

/// One compared scalar.
struct DiffEntry {
  std::string metric;  ///< "summary.wire_bytes", "rows.<label>.<column>".
  double baseline = 0;
  double current = 0;
  double rel_change = 0;  ///< Signed; denominator max(|baseline|, 1).
  double threshold = 0;
  bool regression = false;
};

/// The outcome of diffing one report pair.
struct BenchDiff {
  std::string figure;
  std::vector<DiffEntry> entries;
  /// Structural mismatches (missing rows, column drift) — always fatal.
  std::vector<std::string> structure_errors;

  size_t violations() const;
  bool ok() const { return violations() == 0 && structure_errors.empty(); }

  /// Human-readable table of every violation (or "ok" lines with
  /// `verbose`), one per line, for CI logs.
  std::string FormatText(bool verbose = false) const;
};

/// Compares the `summary` numbers and `rows` table of two parsed
/// BENCH_*.json documents. The `metrics`, `timeseries`, and
/// `critical_path` sections are diagnostic payloads, not gated metrics,
/// and are skipped. Rows are matched by label; a row or column present
/// in the baseline but missing from the current report (or vice versa)
/// is a structural error.
BenchDiff CompareReports(const JsonValue& baseline, const JsonValue& current,
                         const DiffOptions& options = {});

/// Loads both files and compares them.
Result<BenchDiff> CompareReportFiles(const std::string& baseline_path,
                                     const std::string& current_path,
                                     const DiffOptions& options = {});

}  // namespace bestpeer::obs

#endif  // BESTPEER_OBS_BENCH_DIFF_H_
