#include "cache/replica_manager.h"

#include <algorithm>

namespace bestpeer::cache {

ReplicaManager::ReplicaManager(ReplicaManagerOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    promotions_c_ = options_.metrics->GetCounter("cache.replica_promotions");
    replicas_g_ = options_.metrics->GetGauge("cache.replicas_held");
  }
}

bool ReplicaManager::ShouldPromote(const std::string& key,
                                   uint32_t frequency, SimTime now) {
  if (frequency < options_.hot_threshold) return false;
  // Age out keys that have not been promoted in a while so the top-k
  // slots track the *current* hot set.
  const SimTime stale_after = options_.cooldown * 4;
  for (auto it = promoted_.begin(); it != promoted_.end();) {
    if (now - it->second > stale_after) {
      it = promoted_.erase(it);
    } else {
      ++it;
    }
  }
  auto it = promoted_.find(key);
  if (it != promoted_.end()) {
    if (now - it->second < options_.cooldown) return false;
    it->second = now;
  } else {
    if (promoted_.size() >= options_.top_k) return false;
    promoted_.emplace(key, now);
  }
  ++promotions_;
  promotions_c_->Increment();
  return true;
}

double ReplicaManager::Score(const PeerQoS& qos) {
  double health = 1.0 + static_cast<double>(qos.failures);
  double latency = 1.0 + qos.rtt_us / 1000.0;
  return (1.0 + qos.benefit) * qos.bandwidth_bytes_per_us /
         (health * health * latency);
}

std::vector<NodeId> ReplicaManager::SelectTargets(
    const std::vector<std::pair<NodeId, PeerQoS>>& candidates,
    size_t fanout) {
  std::vector<std::pair<double, NodeId>> scored;
  scored.reserve(candidates.size());
  for (const auto& [node, qos] : candidates) {
    scored.emplace_back(Score(qos), node);
  }
  std::sort(scored.begin(), scored.end(),
            [](const std::pair<double, NodeId>& a,
               const std::pair<double, NodeId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::vector<NodeId> targets;
  targets.reserve(std::min(fanout, scored.size()));
  for (const auto& [score, node] : scored) {
    if (targets.size() >= fanout) break;
    targets.push_back(node);
  }
  return targets;
}

uint64_t ReplicaManager::NoteStored(uint64_t object_id, NodeId source) {
  uint64_t generation = ++generation_counter_;
  replicas_[object_id] = Lease{generation, source};
  replicas_g_->Set(static_cast<double>(replicas_.size()));
  return generation;
}

bool ReplicaManager::ShouldExpire(uint64_t object_id,
                                  uint64_t generation) const {
  auto it = replicas_.find(object_id);
  return it != replicas_.end() && it->second.generation == generation;
}

void ReplicaManager::Remove(uint64_t object_id) {
  replicas_.erase(object_id);
  replicas_g_->Set(static_cast<double>(replicas_.size()));
}

std::vector<uint64_t> ReplicaManager::RevokeFrom(NodeId source) {
  std::vector<uint64_t> revoked;
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if (it->second.source == source) {
      revoked.push_back(it->first);
      it = replicas_.erase(it);
    } else {
      ++it;
    }
  }
  if (!revoked.empty()) {
    leases_revoked_ += revoked.size();
    // Lazily registered so revocation-free runs snapshot byte-identically
    // to builds without this counter.
    if (leases_revoked_c_ == nullptr) {
      leases_revoked_c_ = options_.metrics != nullptr
                              ? options_.metrics->GetCounter(
                                    "cache.leases_revoked")
                              : metrics::Counter::Noop();
    }
    leases_revoked_c_->Add(revoked.size());
    replicas_g_->Set(static_cast<double>(replicas_.size()));
  }
  return revoked;
}

}  // namespace bestpeer::cache
