#include "cache/replica_manager.h"

namespace bestpeer::cache {

ReplicaManager::ReplicaManager(ReplicaManagerOptions options)
    : options_(options) {
  if (options_.metrics != nullptr) {
    promotions_c_ = options_.metrics->GetCounter("cache.replica_promotions");
    replicas_g_ = options_.metrics->GetGauge("cache.replicas_held");
  }
}

bool ReplicaManager::ShouldPromote(const std::string& key,
                                   uint32_t frequency, SimTime now) {
  if (frequency < options_.hot_threshold) return false;
  // Age out keys that have not been promoted in a while so the top-k
  // slots track the *current* hot set.
  const SimTime stale_after = options_.cooldown * 4;
  for (auto it = promoted_.begin(); it != promoted_.end();) {
    if (now - it->second > stale_after) {
      it = promoted_.erase(it);
    } else {
      ++it;
    }
  }
  auto it = promoted_.find(key);
  if (it != promoted_.end()) {
    if (now - it->second < options_.cooldown) return false;
    it->second = now;
  } else {
    if (promoted_.size() >= options_.top_k) return false;
    promoted_.emplace(key, now);
  }
  ++promotions_;
  promotions_c_->Increment();
  return true;
}

uint64_t ReplicaManager::NoteStored(uint64_t object_id) {
  uint64_t generation = ++generation_counter_;
  replicas_[object_id] = generation;
  replicas_g_->Set(static_cast<double>(replicas_.size()));
  return generation;
}

bool ReplicaManager::ShouldExpire(uint64_t object_id,
                                  uint64_t generation) const {
  auto it = replicas_.find(object_id);
  return it != replicas_.end() && it->second == generation;
}

void ReplicaManager::Remove(uint64_t object_id) {
  replicas_.erase(object_id);
  replicas_g_->Set(static_cast<double>(replicas_.size()));
}

}  // namespace bestpeer::cache
