#ifndef BESTPEER_CACHE_REPLICA_MANAGER_H_
#define BESTPEER_CACHE_REPLICA_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::cache {

struct ReplicaManagerOptions {
  /// Sketch frequency a query key must reach before its answers are
  /// pushed to neighbors.
  uint32_t hot_threshold = 3;
  /// Maximum distinct hot keys tracked for promotion at once.
  size_t top_k = 4;
  /// Minimum time between two pushes of the same key.
  SimTime cooldown = Millis(500);
  /// Metrics sink (not owned; may be null).
  metrics::Registry* metrics = nullptr;
};

/// Bookkeeping for hot-answer replication, on both sides of a push.
///
/// Source side: ShouldPromote rate-limits pushes — a key is promoted when
/// its sketch frequency crosses `hot_threshold`, at most every `cooldown`,
/// with at most `top_k` keys tracked concurrently (stale keys age out
/// after 4x the cooldown, so early hot keys cannot hog slots forever).
///
/// Receiver side: NoteStored tags each accepted replica with a generation
/// so a rescheduled expiry timer for a *re-pushed* replica cannot delete
/// the fresh copy — only the timer matching the latest generation fires.
class ReplicaManager {
 public:
  explicit ReplicaManager(ReplicaManagerOptions options);
  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  // --- source side ------------------------------------------------------

  /// True when `key` (at sketch frequency `frequency`) should be pushed
  /// to neighbors now. Updates the per-key promotion clock on success.
  bool ShouldPromote(const std::string& key, uint32_t frequency,
                     SimTime now);

  uint64_t promotions() const { return promotions_; }

  // --- receiver side ----------------------------------------------------

  /// Registers a stored replica; returns the generation its expiry timer
  /// must carry.
  uint64_t NoteStored(uint64_t object_id);

  /// True iff the replica is still tracked at exactly `generation` —
  /// i.e. the timer that fires is the latest one armed.
  bool ShouldExpire(uint64_t object_id, uint64_t generation) const;

  /// Forgets a replica (after expiry deletion).
  void Remove(uint64_t object_id);

  bool Tracks(uint64_t object_id) const {
    return replicas_.count(object_id) != 0;
  }
  size_t replica_count() const { return replicas_.size(); }

 private:
  ReplicaManagerOptions options_;
  /// key -> last promotion time.
  std::map<std::string, SimTime> promoted_;
  /// object id -> latest expiry generation.
  std::map<uint64_t, uint64_t> replicas_;
  uint64_t generation_counter_ = 0;
  uint64_t promotions_ = 0;

  metrics::Counter* promotions_c_ = metrics::Counter::Noop();
  metrics::Gauge* replicas_g_ = metrics::Gauge::Noop();
};

}  // namespace bestpeer::cache

#endif  // BESTPEER_CACHE_REPLICA_MANAGER_H_
