#ifndef BESTPEER_CACHE_REPLICA_MANAGER_H_
#define BESTPEER_CACHE_REPLICA_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::cache {

/// QoS vector for one replica-placement candidate, drawn from the
/// telemetry the node already keeps per direct peer.
struct PeerQoS {
  /// Observed round-trip time of the peer's last query response (us);
  /// 0 = never observed (treated as neutral, not as instant).
  double rtt_us = 0;
  /// Accumulated answer-benefit score (the reconfiguration score).
  double benefit = 0;
  /// Consecutive missed query deadlines (health/eviction history).
  uint32_t failures = 0;
  /// Link bandwidth toward the peer in bytes/us.
  double bandwidth_bytes_per_us = 12.5;
};

struct ReplicaManagerOptions {
  /// Sketch frequency a query key must reach before its answers are
  /// pushed to neighbors.
  uint32_t hot_threshold = 3;
  /// Maximum distinct hot keys tracked for promotion at once.
  size_t top_k = 4;
  /// Minimum time between two pushes of the same key.
  SimTime cooldown = Millis(500);
  /// Metrics sink (not owned; may be null).
  metrics::Registry* metrics = nullptr;
};

/// Bookkeeping for hot-answer replication, on both sides of a push.
///
/// Source side: ShouldPromote rate-limits pushes — a key is promoted when
/// its sketch frequency crosses `hot_threshold`, at most every `cooldown`,
/// with at most `top_k` keys tracked concurrently (stale keys age out
/// after 4x the cooldown, so early hot keys cannot hog slots forever).
///
/// Receiver side: NoteStored tags each accepted replica with a generation
/// so a rescheduled expiry timer for a *re-pushed* replica cannot delete
/// the fresh copy — only the timer matching the latest generation fires.
class ReplicaManager {
 public:
  explicit ReplicaManager(ReplicaManagerOptions options);
  ReplicaManager(const ReplicaManager&) = delete;
  ReplicaManager& operator=(const ReplicaManager&) = delete;

  // --- source side ------------------------------------------------------

  /// True when `key` (at sketch frequency `frequency`) should be pushed
  /// to neighbors now. Updates the per-key promotion clock on success.
  bool ShouldPromote(const std::string& key, uint32_t frequency,
                     SimTime now);

  uint64_t promotions() const { return promotions_; }

  /// QoS placement score: higher is a better replica target. The formula
  /// (documented in DESIGN.md §13) favors peers that answered well
  /// (benefit), over fast links (rtt, bandwidth), and penalizes peers
  /// with eviction-track-record (consecutive failures) quadratically:
  ///
  ///   score = (1 + benefit) * bandwidth
  ///           / ((1 + failures)^2 * (1 + rtt_us / 1000))
  static double Score(const PeerQoS& qos);

  /// Picks up to `fanout` replica targets, ordered by Score descending
  /// with node-id-ascending tie-break — fully deterministic, so the same
  /// telemetry always yields the same placement.
  static std::vector<NodeId> SelectTargets(
      const std::vector<std::pair<NodeId, PeerQoS>>& candidates,
      size_t fanout);

  // --- receiver side ----------------------------------------------------

  /// Registers a stored replica pushed by `source`; returns the
  /// generation its expiry timer must carry.
  uint64_t NoteStored(uint64_t object_id, NodeId source = 0);

  /// True iff the replica is still tracked at exactly `generation` —
  /// i.e. the timer that fires is the latest one armed.
  bool ShouldExpire(uint64_t object_id, uint64_t generation) const;

  /// Forgets a replica (after expiry deletion).
  void Remove(uint64_t object_id);

  /// Drops every lease whose pusher was `source` (evicted or
  /// disconnected peer): returns the revoked object ids so the caller
  /// can delete the copies. Counted in cache.leases_revoked.
  std::vector<uint64_t> RevokeFrom(NodeId source);

  bool Tracks(uint64_t object_id) const {
    return replicas_.count(object_id) != 0;
  }
  size_t replica_count() const { return replicas_.size(); }
  uint64_t leases_revoked() const { return leases_revoked_; }

 private:
  struct Lease {
    uint64_t generation = 0;
    NodeId source = 0;
  };

  ReplicaManagerOptions options_;
  /// key -> last promotion time.
  std::map<std::string, SimTime> promoted_;
  /// object id -> latest lease (expiry generation + pushing peer).
  std::map<uint64_t, Lease> replicas_;
  uint64_t generation_counter_ = 0;
  uint64_t promotions_ = 0;
  uint64_t leases_revoked_ = 0;

  metrics::Counter* promotions_c_ = metrics::Counter::Noop();
  metrics::Counter* leases_revoked_c_ = nullptr;  ///< Lazily registered.
  metrics::Gauge* replicas_g_ = metrics::Gauge::Noop();
};

}  // namespace bestpeer::cache

#endif  // BESTPEER_CACHE_REPLICA_MANAGER_H_
