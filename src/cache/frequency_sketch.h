#ifndef BESTPEER_CACHE_FREQUENCY_SKETCH_H_
#define BESTPEER_CACHE_FREQUENCY_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bestpeer::cache {

/// TinyLFU-style count-min sketch: four rows of 4-bit saturating counters
/// tracking approximate access frequency per key hash. After
/// `sample_period` recordings every counter is halved, so estimates decay
/// toward the recent past — a key that was hot an hour ago cannot block
/// admission forever.
class FrequencySketch {
 public:
  /// `counters` is the per-row width, rounded up to a power of two.
  explicit FrequencySketch(size_t counters = 1024);

  /// Counts one access of the key hash.
  void Record(uint64_t hash);

  /// Approximate access count (min over rows; saturates at 15).
  uint32_t Estimate(uint64_t hash) const;

  /// Recordings since construction (aging does not reset this).
  uint64_t recordings() const { return recordings_; }
  /// Times the counters were halved.
  uint64_t agings() const { return agings_; }

 private:
  static constexpr size_t kRows = 4;
  size_t Index(uint64_t hash, size_t row) const;

  std::vector<uint8_t> rows_[kRows];
  size_t mask_;
  uint64_t sample_period_;
  uint64_t since_aging_ = 0;
  uint64_t recordings_ = 0;
  uint64_t agings_ = 0;
};

}  // namespace bestpeer::cache

#endif  // BESTPEER_CACHE_FREQUENCY_SKETCH_H_
