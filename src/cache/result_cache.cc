#include "cache/result_cache.h"

#include <utility>

#include "util/hash.h"

namespace bestpeer::cache {

ResultCache::ResultCache(ResultCacheOptions options)
    : options_(std::move(options)),
      sketch_(options_.byte_budget / 256 + 64) {
  if (options_.metrics != nullptr) {
    metrics::Registry* reg = options_.metrics;
    hits_c_ = reg->GetCounter("cache.hits");
    misses_c_ = reg->GetCounter("cache.misses");
    insertions_c_ = reg->GetCounter("cache.insertions");
    evictions_c_ = reg->GetCounter("cache.evictions");
    invalidations_c_ = reg->GetCounter("cache.invalidations");
    admission_rejected_c_ = reg->GetCounter("cache.admission_rejected");
    bytes_g_ = reg->GetGauge("cache.bytes");
    entries_g_ = reg->GetGauge("cache.entries");
  }
}

void ResultCache::Flight(obs::EventType type, uint64_t a, uint64_t b) {
  if (options_.flight == nullptr) return;
  obs::FlightEvent e;
  e.ts = options_.now ? options_.now() : 0;
  e.type = type;
  e.node = options_.node;
  e.a = a;
  e.b = b;
  options_.flight->Record(e);
}

void ResultCache::RecordAccess(std::string_view key) {
  sketch_.Record(Fnv1a64(key));
}

uint32_t ResultCache::EstimateFrequency(std::string_view key) const {
  return sketch_.Estimate(Fnv1a64(key));
}

size_t ResultCache::SliceBytes(std::string_view key,
                               const CachedSlice& slice) {
  // Accounted size: key text + ids + fixed per-slice overhead for the
  // map node and bookkeeping fields.
  return key.size() + slice.ids.size() * sizeof(uint64_t) + 64;
}

size_t ResultCache::slice_count() const {
  size_t n = 0;
  for (const auto& [key, entry] : entries_) n += entry.slices.size();
  return n;
}

const CachedSlice* ResultCache::ProbeSlice(std::string_view key,
                                           uint64_t source,
                                           uint64_t current_epoch) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    auto slice_it = it->second.slices.find(source);
    if (slice_it != it->second.slices.end()) {
      if (slice_it->second.epoch == current_epoch) {
        ++hits_;
        hits_c_->Increment();
        Touch(it->second);
        Flight(obs::EventType::kCacheHit, Fnv1a64(key), current_epoch);
        return &slice_it->second;
      }
      // Stale: the producer's store mutated since the slice was taken.
      // Dropping here — instead of ever returning it — is the whole
      // invalidation contract.
      it->second.bytes -= slice_it->second.bytes;
      bytes_used_ -= slice_it->second.bytes;
      it->second.slices.erase(slice_it);
      ++invalidations_;
      invalidations_c_->Increment();
      Flight(obs::EventType::kCacheInvalidate, Fnv1a64(key), current_epoch);
      if (it->second.slices.empty()) {
        entries_.erase(it);
        entries_g_->Set(static_cast<double>(entries_.size()));
      }
      bytes_g_->Set(static_cast<double>(bytes_used_));
    }
  }
  ++misses_;
  misses_c_->Increment();
  Flight(obs::EventType::kCacheMiss, Fnv1a64(key), current_epoch);
  return nullptr;
}

bool ResultCache::InsertSlice(std::string_view key, CachedSlice slice) {
  slice.bytes = SliceBytes(key, slice);
  if (slice.bytes > options_.byte_budget) return false;

  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // New key competing for space: TinyLFU admission — only displace the
    // LRU victim when this key is estimated at least as hot.
    if (!options_.lru_only && !entries_.empty() &&
        bytes_used_ + slice.bytes > options_.byte_budget) {
      auto victim = entries_.begin();
      for (auto cand = entries_.begin(); cand != entries_.end(); ++cand) {
        if (cand->second.last_used < victim->second.last_used) victim = cand;
      }
      if (EstimateFrequency(key) < EstimateFrequency(victim->first)) {
        ++admission_rejected_;
        admission_rejected_c_->Increment();
        return false;
      }
    }
    it = entries_.emplace(std::string(key), Entry{}).first;
  }

  Entry& entry = it->second;
  auto [slice_it, inserted] = entry.slices.emplace(slice.source, slice);
  if (!inserted) {
    entry.bytes -= slice_it->second.bytes;
    bytes_used_ -= slice_it->second.bytes;
    slice_it->second = std::move(slice);
  }
  entry.bytes += slice_it->second.bytes;
  bytes_used_ += slice_it->second.bytes;
  Touch(entry);
  ++insertions_;
  insertions_c_->Increment();
  EvictToBudget(it->first);
  bytes_g_->Set(static_cast<double>(bytes_used_));
  entries_g_->Set(static_cast<double>(entries_.size()));
  return true;
}

void ResultCache::EvictToBudget(std::string_view keep) {
  while (bytes_used_ > options_.byte_budget && entries_.size() > 1) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->first == keep) continue;
      if (victim == entries_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == entries_.end()) break;
    bytes_used_ -= victim->second.bytes;
    ++evictions_;
    evictions_c_->Increment();
    Flight(obs::EventType::kCacheEvict, Fnv1a64(victim->first),
           victim->second.bytes);
    entries_.erase(victim);
  }
}

const std::map<uint64_t, CachedSlice>* ResultCache::SlicesFor(
    std::string_view key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  Touch(it->second);
  return &it->second.slices;
}

size_t ResultCache::InvalidateSource(uint64_t source,
                                     uint64_t current_epoch) {
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto slice_it = it->second.slices.find(source);
    if (slice_it != it->second.slices.end() &&
        slice_it->second.epoch < current_epoch) {
      it->second.bytes -= slice_it->second.bytes;
      bytes_used_ -= slice_it->second.bytes;
      it->second.slices.erase(slice_it);
      ++dropped;
      ++invalidations_;
      invalidations_c_->Increment();
      Flight(obs::EventType::kCacheInvalidate, Fnv1a64(it->first),
             current_epoch);
      if (it->second.slices.empty()) {
        it = entries_.erase(it);
        continue;
      }
    }
    ++it;
  }
  if (dropped > 0) {
    bytes_g_->Set(static_cast<double>(bytes_used_));
    entries_g_->Set(static_cast<double>(entries_.size()));
  }
  return dropped;
}

void ResultCache::DropSlice(std::string_view key, uint64_t source) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto slice_it = it->second.slices.find(source);
  if (slice_it == it->second.slices.end()) return;
  it->second.bytes -= slice_it->second.bytes;
  bytes_used_ -= slice_it->second.bytes;
  it->second.slices.erase(slice_it);
  if (it->second.slices.empty()) entries_.erase(it);
  bytes_g_->Set(static_cast<double>(bytes_used_));
  entries_g_->Set(static_cast<double>(entries_.size()));
}

}  // namespace bestpeer::cache
