#include "cache/frequency_sketch.h"

#include "util/hash.h"

namespace bestpeer::cache {

namespace {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FrequencySketch::FrequencySketch(size_t counters) {
  const size_t width = NextPow2(counters < 16 ? 16 : counters);
  mask_ = width - 1;
  for (auto& row : rows_) row.assign(width, 0);
  // The classic TinyLFU sample size: ~10x the width keeps the halving
  // cadence proportional to the working set the sketch can resolve.
  sample_period_ = static_cast<uint64_t>(width) * 10;
}

size_t FrequencySketch::Index(uint64_t hash, size_t row) const {
  // Independent-ish row hashes via the fmix64 finalizer over the seeded
  // key hash; a multiply-shift would do, but Mix64 is already here.
  return static_cast<size_t>(
             Mix64(hash + 0x9E3779B97F4A7C15ULL * (row + 1))) &
         mask_;
}

void FrequencySketch::Record(uint64_t hash) {
  ++recordings_;
  for (size_t row = 0; row < kRows; ++row) {
    uint8_t& c = rows_[row][Index(hash, row)];
    if (c < 15) ++c;
  }
  if (++since_aging_ >= sample_period_) {
    since_aging_ = 0;
    ++agings_;
    for (auto& row : rows_) {
      for (uint8_t& c : row) c >>= 1;
    }
  }
}

uint32_t FrequencySketch::Estimate(uint64_t hash) const {
  uint32_t best = 15;
  for (size_t row = 0; row < kRows; ++row) {
    uint32_t c = rows_[row][Index(hash, row)];
    if (c < best) best = c;
  }
  return best;
}

}  // namespace bestpeer::cache
