#ifndef BESTPEER_CACHE_RESULT_CACHE_H_
#define BESTPEER_CACHE_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "cache/frequency_sketch.h"
#include "obs/flight_recorder.h"
#include "util/metrics.h"
#include "util/sim_time.h"

namespace bestpeer::cache {

struct ResultCacheOptions {
  /// Total accounted bytes the cache may hold; the oldest entries are
  /// evicted past it. Inserts larger than the whole budget are rejected.
  size_t byte_budget = 256 * 1024;
  /// Disables the TinyLFU admission filter: every insert is admitted and
  /// eviction is pure LRU (the ablation arm).
  bool lru_only = false;
  /// Metrics sink (not owned; may be null).
  metrics::Registry* metrics = nullptr;
  /// Flight recorder for cache events (not owned; may be null).
  obs::FlightRecorder* flight = nullptr;
  /// Node id stamped on flight events.
  uint32_t node = 0xFFFFFFFF;
  /// Clock for flight-event timestamps (unset records ts = 0).
  std::function<SimTime()> now;
};

/// The answers one producer node contributed to a query, as seen at
/// `epoch` of that producer's store. Only ids are kept: the base node
/// never stores result content, it records ids into the session — so a
/// slice is enough to materialize a repeat answer.
struct CachedSlice {
  /// Node whose store produced the answers.
  uint64_t source = 0;
  /// The producer's IndexEpoch (storm mutation epoch + 1) at scan time.
  /// A slice is only served while the producer still reports this epoch.
  uint64_t epoch = 0;
  /// Overlay hops the original answer travelled.
  uint16_t hops = 0;
  std::vector<uint64_t> ids;
  /// Accounted size; filled by InsertSlice.
  size_t bytes = 0;
};

/// Per-node query-result cache: entries keyed by the normalized query
/// expression, each holding one slice per producer node. Byte-budgeted
/// LRU with TinyLFU admission — a new key only displaces the LRU victim
/// when the frequency sketch says it is accessed at least as often.
/// Invalidation is lazy and epoch-driven: a probe with a newer producer
/// epoch drops the stale slice instead of serving it.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options);
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Counts one lookup of `key` in the admission sketch. Call once per
  /// query issued/served, before probing.
  void RecordAccess(std::string_view key);

  /// Sketch frequency estimate for `key` (hot-answer promotion signal).
  uint32_t EstimateFrequency(std::string_view key) const;

  /// The slice `source` contributed to `key`, provided it was recorded
  /// at exactly `current_epoch`. A stale slice (any other epoch) is
  /// dropped and counted as an invalidation, never returned. The pointer
  /// is valid until the next non-const call.
  const CachedSlice* ProbeSlice(std::string_view key, uint64_t source,
                                uint64_t current_epoch);

  /// Inserts (or replaces) `source`'s slice under `key`, enforcing
  /// admission and the byte budget. Returns false when the admission
  /// filter or the budget rejected it.
  bool InsertSlice(std::string_view key, CachedSlice slice);

  /// Every slice cached under `key` (nullptr when absent). Touches LRU.
  const std::map<uint64_t, CachedSlice>* SlicesFor(std::string_view key);

  /// Drops one slice (no-op when absent).
  void DropSlice(std::string_view key, uint64_t source);

  /// Drops every cached slice from `source` recorded before
  /// `current_epoch` — the push half of invalidation, driven by a
  /// gossiped epoch bump so the staleness never has to be probe-
  /// discovered. Returns the number of slices dropped (each counted as
  /// an invalidation).
  size_t InvalidateSource(uint64_t source, uint64_t current_epoch);

  // --- stats ------------------------------------------------------------

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t insertions() const { return insertions_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t admission_rejected() const { return admission_rejected_; }
  size_t bytes_used() const { return bytes_used_; }
  size_t entry_count() const { return entries_.size(); }
  size_t slice_count() const;
  const FrequencySketch& sketch() const { return sketch_; }

 private:
  struct Entry {
    std::map<uint64_t, CachedSlice> slices;
    uint64_t last_used = 0;
    size_t bytes = 0;
  };

  static size_t SliceBytes(std::string_view key, const CachedSlice& slice);
  void Touch(Entry& entry) { entry.last_used = ++clock_; }
  /// Evicts LRU entries (never `keep`) until the budget holds again.
  void EvictToBudget(std::string_view keep);
  void RemoveEntryBytes(const Entry& entry);
  void Flight(obs::EventType type, uint64_t a, uint64_t b);

  ResultCacheOptions options_;
  FrequencySketch sketch_;
  std::map<std::string, Entry, std::less<>> entries_;
  uint64_t clock_ = 0;
  size_t bytes_used_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t admission_rejected_ = 0;

  metrics::Counter* hits_c_ = metrics::Counter::Noop();
  metrics::Counter* misses_c_ = metrics::Counter::Noop();
  metrics::Counter* insertions_c_ = metrics::Counter::Noop();
  metrics::Counter* evictions_c_ = metrics::Counter::Noop();
  metrics::Counter* invalidations_c_ = metrics::Counter::Noop();
  metrics::Counter* admission_rejected_c_ = metrics::Counter::Noop();
  metrics::Gauge* bytes_g_ = metrics::Gauge::Noop();
  metrics::Gauge* entries_g_ = metrics::Gauge::Noop();
};

}  // namespace bestpeer::cache

#endif  // BESTPEER_CACHE_RESULT_CACHE_H_
