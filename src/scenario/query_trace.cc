#include "scenario/query_trace.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_reader.h"
#include "obs/json_writer.h"
#include "util/status.h"

namespace bestpeer::scenario {

namespace {

Status TraceError(const std::string& path, size_t line,
                  const std::string& msg) {
  return Status::InvalidArgument("query trace " + path + ":" +
                                 std::to_string(line) + ": " + msg);
}

/// A required integer-valued number member; rejects anything else.
Status GetCount(const obs::JsonValue& obj, const char* key, double max,
                const std::string& path, size_t line, double* out) {
  const obs::JsonValue* v = obj.Find(key);
  if (v == nullptr) return TraceError(path, line, std::string("missing '") + key + "'");
  if (!v->is_number()) {
    return TraceError(path, line, std::string("'") + key + "' must be a number");
  }
  const double n = v->AsNumber();
  if (n < 0 || n > max || n != std::floor(n)) {
    return TraceError(path, line,
                      std::string("'") + key + "' out of range");
  }
  *out = n;
  return Status::OK();
}

Status CheckKnownKeys(const obs::JsonValue& obj,
                      const std::vector<std::string>& known,
                      const std::string& path, size_t line) {
  if (!obj.is_object()) {
    return TraceError(path, line, "expected a JSON object");
  }
  for (const auto& [key, value] : obj.AsObject()) {
    bool ok = false;
    for (const auto& k : known) ok |= k == key;
    if (!ok) return TraceError(path, line, "unknown key '" + key + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteQueryTrace(const QueryTrace& trace, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot write query trace " + path);
  }
  std::fprintf(f, "{\"v\":1,\"scenario\":%s,\"seed\":%llu,\"queries\":%zu}\n",
               obs::JsonQuoted(trace.scenario).c_str(),
               static_cast<unsigned long long>(trace.seed),
               trace.queries.size());
  for (const TracedQuery& q : trace.queries) {
    std::fprintf(f, "{\"at_us\":%lld,\"node\":%zu,\"keyword\":%s}\n",
                 static_cast<long long>(q.at), q.node,
                 obs::JsonQuoted(q.keyword).c_str());
  }
  if (std::fclose(f) != 0) {
    return Status::IoError("short write on query trace " + path);
  }
  return Status::OK();
}

Result<QueryTrace> ReadQueryTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot read query trace " + path);
  QueryTrace trace;
  std::string line;
  size_t line_no = 0;
  size_t expected = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      return TraceError(path, line_no, "empty line");
    }
    BP_ASSIGN_OR_RETURN(obs::JsonValue value, obs::ParseJson(line));
    if (line_no == 1) {
      BP_RETURN_IF_ERROR(CheckKnownKeys(
          value, {"v", "scenario", "seed", "queries"}, path, line_no));
      double version = 0;
      BP_RETURN_IF_ERROR(GetCount(value, "v", 1e9, path, line_no, &version));
      if (version != 1) {
        return TraceError(path, line_no, "unsupported trace version");
      }
      const obs::JsonValue* name = value.Find("scenario");
      if (name == nullptr || !name->is_string()) {
        return TraceError(path, line_no, "'scenario' must be a string");
      }
      trace.scenario = name->AsString();
      double seed = 0;
      BP_RETURN_IF_ERROR(GetCount(value, "seed", 9e15, path, line_no, &seed));
      trace.seed = static_cast<uint64_t>(seed);
      double count = 0;
      BP_RETURN_IF_ERROR(
          GetCount(value, "queries", 1e9, path, line_no, &count));
      expected = static_cast<size_t>(count);
      continue;
    }
    BP_RETURN_IF_ERROR(
        CheckKnownKeys(value, {"at_us", "node", "keyword"}, path, line_no));
    TracedQuery q;
    double at = 0;
    BP_RETURN_IF_ERROR(GetCount(value, "at_us", 9e15, path, line_no, &at));
    q.at = static_cast<SimTime>(at);
    double node = 0;
    BP_RETURN_IF_ERROR(GetCount(value, "node", 1e9, path, line_no, &node));
    q.node = static_cast<size_t>(node);
    const obs::JsonValue* keyword = value.Find("keyword");
    if (keyword == nullptr || !keyword->is_string()) {
      return TraceError(path, line_no, "'keyword' must be a string");
    }
    q.keyword = keyword->AsString();
    if (!trace.queries.empty() && q.at < trace.queries.back().at) {
      return TraceError(path, line_no, "out-of-order at_us");
    }
    trace.queries.push_back(std::move(q));
  }
  if (line_no == 0) return TraceError(path, 1, "missing header line");
  if (trace.queries.size() != expected) {
    return TraceError(path, line_no,
                      "truncated: header promised " +
                          std::to_string(expected) + " queries, got " +
                          std::to_string(trace.queries.size()));
  }
  return trace;
}

}  // namespace bestpeer::scenario
