#include "scenario/arrival.h"

#include <cmath>

namespace bestpeer::scenario {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// The thinning envelope: a constant rate >= RateAt everywhere.
double PeakRate(const ArrivalSpec& spec) {
  switch (spec.process) {
    case ArrivalProcess::kConstant:
    case ArrivalProcess::kPoisson:
      return spec.rate_per_s;
    case ArrivalProcess::kFlash:
      return spec.rate_per_s * spec.multiplier;
    case ArrivalProcess::kDiurnal:
      return spec.rate_per_s * (1.0 + spec.amplitude);
  }
  return spec.rate_per_s;
}

}  // namespace

double RateAt(const ArrivalSpec& spec, double t_ms) {
  switch (spec.process) {
    case ArrivalProcess::kConstant:
    case ArrivalProcess::kPoisson:
      return spec.rate_per_s;
    case ArrivalProcess::kFlash:
      return t_ms >= spec.spike_start_ms && t_ms < spec.spike_end_ms
                 ? spec.rate_per_s * spec.multiplier
                 : spec.rate_per_s;
    case ArrivalProcess::kDiurnal:
      return spec.rate_per_s *
             (1.0 + spec.amplitude * std::sin(kTwoPi * t_ms / spec.period_ms));
  }
  return spec.rate_per_s;
}

double ExpectedArrivals(const ArrivalSpec& spec, double duration_ms) {
  const double d_s = duration_ms / 1e3;
  switch (spec.process) {
    case ArrivalProcess::kConstant:
    case ArrivalProcess::kPoisson:
      return spec.rate_per_s * d_s;
    case ArrivalProcess::kFlash: {
      const double spike_s =
          (spec.spike_end_ms - spec.spike_start_ms) / 1e3;
      return spec.rate_per_s * (d_s - spike_s) +
             spec.rate_per_s * spec.multiplier * spike_s;
    }
    case ArrivalProcess::kDiurnal: {
      // Integral of r*(1 + a*sin(2*pi*t/T)) over [0, d]:
      // r*d + r*a*(T/2*pi)*(1 - cos(2*pi*d/T)), in seconds.
      const double period_s = spec.period_ms / 1e3;
      return spec.rate_per_s * d_s +
             spec.rate_per_s * spec.amplitude * (period_s / kTwoPi) *
                 (1.0 - std::cos(kTwoPi * d_s / period_s));
    }
  }
  return spec.rate_per_s * d_s;
}

std::vector<SimTime> GenerateArrivalTimes(const PhaseSpec& phase,
                                          SimTime phase_start, Rng& rng) {
  const ArrivalSpec& spec = phase.arrival;
  std::vector<SimTime> times;
  if (spec.process == ArrivalProcess::kConstant) {
    // Evenly spaced with no randomness; the first arrival sits one full
    // interval into the phase so back-to-back phases never collide on
    // the boundary instant.
    const double interval_ms = 1e3 / spec.rate_per_s;
    const size_t n = static_cast<size_t>(
        std::floor(phase.duration_ms / interval_ms));
    times.reserve(n);
    for (size_t k = 1; k <= n; ++k) {
      const double at_ms = static_cast<double>(k) * interval_ms;
      if (at_ms >= phase.duration_ms) break;
      times.push_back(phase_start + MsToSimTime(at_ms));
    }
    return times;
  }

  // Nonhomogeneous Poisson by thinning: draw candidates from a
  // homogeneous process at the peak rate, keep each with probability
  // rate(t)/peak. For the homogeneous case the acceptance test is
  // always true but still consumes a draw — an acceptable fixed cost
  // that keeps all three stochastic processes on one code path.
  const double peak = PeakRate(spec);
  double t_ms = 0;
  while (true) {
    t_ms += rng.NextExponential(1e3 / peak);
    if (t_ms >= phase.duration_ms) break;
    if (rng.NextDouble() * peak <= RateAt(spec, t_ms)) {
      times.push_back(phase_start + MsToSimTime(t_ms));
    }
  }
  return times;
}

}  // namespace bestpeer::scenario
