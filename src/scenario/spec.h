#ifndef BESTPEER_SCENARIO_SPEC_H_
#define BESTPEER_SCENARIO_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_reader.h"
#include "util/result.h"
#include "util/sim_time.h"
#include "workload/fault_options.h"

namespace bestpeer::scenario {

/// Spec times are fractional milliseconds; sim time is integer µs.
SimTime MsToSimTime(double ms);

/// One node class of a heterogeneous fleet: how many nodes, their link
/// and CPU profile, and what they store and do. Classes are assigned
/// contiguous node-index ranges in declaration order.
struct NodeClassSpec {
  std::string name;
  size_t count = 0;
  /// NIC bandwidth in Mbit/s; 0 uses the network default (100 Mbit/s).
  double bandwidth_mbps = 0;
  /// Extra one-way propagation latency this class pays per message.
  double extra_latency_ms = 0;
  /// CPU threads per node; 0 uses the network default.
  int cpu_threads = 0;
  size_t objects_per_node = 100;
  size_t matches_per_node = 5;
  /// Whether this class's nodes issue queries.
  bool issues_queries = true;
  /// Adversarial free-rider: queries but serves nothing. Requires
  /// matches_per_node == 0 and issues_queries == true.
  bool free_rider = false;
};

/// Time-varying arrival process of one phase, over phase-relative time.
enum class ArrivalProcess {
  kConstant,  ///< Evenly spaced, no randomness.
  kPoisson,   ///< Homogeneous Poisson at rate_per_s.
  kFlash,     ///< Poisson at rate_per_s, times `multiplier` inside the
              ///< [spike_start_ms, spike_end_ms) window (flash crowd).
  kDiurnal,   ///< Poisson at rate_per_s * (1 + amplitude*sin(2*pi*t/period)).
};

const char* ArrivalProcessName(ArrivalProcess process);

struct ArrivalSpec {
  ArrivalProcess process = ArrivalProcess::kConstant;
  /// Base arrival rate in queries/second of sim time (> 0).
  double rate_per_s = 0;
  /// Flash crowd: rate multiplier (> 1) inside the spike window.
  double multiplier = 1;
  double spike_start_ms = 0;
  double spike_end_ms = 0;
  /// Diurnal: modulation amplitude in [0, 1] and sine period (> 0).
  double amplitude = 0;
  double period_ms = 0;
};

struct PhaseSpec {
  std::string name;
  double duration_ms = 0;  ///< > 0.
  ArrivalSpec arrival;
};

/// One correlated churn wave: at `at_ms`, `fraction` of the target
/// class's online nodes silently go offline; after `down_for_ms` they
/// come back (0 = they stay down for the rest of the run).
struct ChurnWaveSpec {
  double at_ms = 0;
  std::string target_class;
  double fraction = 0;  ///< (0, 1].
  double down_for_ms = 0;
};

struct TopologySpec {
  /// "star", "tree", "line" or "random".
  std::string kind = "tree";
  size_t fanout = 4;      ///< tree only.
  size_t max_degree = 8;  ///< random only.
};

/// A fully validated declarative scenario. Parsing is strict: unknown or
/// duplicate keys, wrong-typed fields and out-of-range values are all
/// fatal, and a failed parse never yields a partial spec.
struct ScenarioSpec {
  std::string name;
  uint64_t seed = 42;
  TopologySpec topology;
  /// Pooled query keywords "needle0".."needle<pool-1>", drawn Zipf-skewed.
  size_t query_pool = 8;
  double query_zipf_skew = 1.1;
  size_t object_size = 512;
  uint16_t ttl = 32;
  size_t max_direct_peers = 8;
  /// "phase": every issuer reconfigures on its last query of each phase;
  /// "off": static peer sets.
  bool reconfigure_each_phase = false;
  std::vector<NodeClassSpec> classes;
  std::vector<PhaseSpec> phases;
  std::vector<ChurnWaveSpec> churn;
  /// Shared fault-injection/recovery knob block (same struct the
  /// experiment and churn drivers consume).
  workload::FaultRecoveryOptions fault;

  size_t TotalNodes() const;
  SimTime TotalDuration() const;
  /// First node index of class `c` (classes own contiguous ranges).
  size_t ClassOffset(size_t c) const;
  /// Index into `classes` for a node, assuming node < TotalNodes().
  size_t ClassOf(size_t node) const;
};

/// Parses and validates a scenario document. Errors name the offending
/// key and context.
Result<ScenarioSpec> ParseScenario(const obs::JsonValue& root);

/// Reads, parses and validates a scenario file.
Result<ScenarioSpec> LoadScenarioFile(const std::string& path);

}  // namespace bestpeer::scenario

#endif  // BESTPEER_SCENARIO_SPEC_H_
