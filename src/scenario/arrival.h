#ifndef BESTPEER_SCENARIO_ARRIVAL_H_
#define BESTPEER_SCENARIO_ARRIVAL_H_

#include <vector>

#include "scenario/spec.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace bestpeer::scenario {

/// Instantaneous arrival rate (queries/second) of `spec` at `t_ms` into
/// the phase. Drives both arrival generation (thinning) and scnlint's
/// resolved-timeline output.
double RateAt(const ArrivalSpec& spec, double t_ms);

/// Expected number of arrivals over a phase of `duration_ms` — the
/// integral of RateAt. Exact (closed-form) for every process.
double ExpectedArrivals(const ArrivalSpec& spec, double duration_ms);

/// Generates the phase's arrival times as absolute sim times, sorted
/// ascending, all in [phase_start, phase_start + duration). kConstant is
/// evenly spaced and draws nothing from `rng`; the stochastic processes
/// are nonhomogeneous Poisson via thinning (Lewis & Shedler), so the
/// draw count itself is deterministic per (spec, rng state).
std::vector<SimTime> GenerateArrivalTimes(const PhaseSpec& phase,
                                          SimTime phase_start, Rng& rng);

}  // namespace bestpeer::scenario

#endif  // BESTPEER_SCENARIO_ARRIVAL_H_
