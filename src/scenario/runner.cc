#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

#include "core/node.h"
#include "core/search_agent.h"
#include "net/sim_transport.h"
#include "scenario/arrival.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "util/logging.h"
#include "util/rng.h"
#include "workload/corpus.h"
#include "workload/topology.h"

namespace bestpeer::scenario {

namespace {

// Each concern draws from its own seeded stream so enabling one never
// perturbs another. Replay skips the arrival and pick streams entirely
// while the churn (and fault) streams stay identical — that is what
// makes a replayed schedule reproduce the generating run exactly.
constexpr uint64_t kTopologyTweak = 0x70507ULL;
constexpr uint64_t kArrivalTweak = 0xA2217ULL;
constexpr uint64_t kPickTweak = 0x91C47ULL;
constexpr uint64_t kChurnTweak = 0xC1927ULL;

workload::Topology BuildTopology(const ScenarioSpec& spec) {
  const size_t n = spec.TotalNodes();
  const TopologySpec& t = spec.topology;
  if (t.kind == "star") return workload::MakeStar(n);
  if (t.kind == "line") return workload::MakeLine(n);
  if (t.kind == "random") {
    Rng rng(spec.seed ^ kTopologyTweak);
    return workload::MakeRandom(n, t.max_degree, rng);
  }
  return workload::MakeTree(n, t.fanout);
}

bool TraceRequested(const ScenarioRunOptions& options) {
  return options.trace || std::getenv("BP_TRACE_OUT") != nullptr;
}

SimTime SampleInterval(const ScenarioRunOptions& options) {
  if (const char* env = std::getenv("BP_SAMPLE_INTERVAL_US")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<SimTime>(v);
  }
  return options.sample_interval;
}

void MaybeEnableFlight(sim::Simulator* simulator,
                       const ScenarioRunOptions& options) {
  size_t capacity = options.flight_capacity;
  if (capacity == 0 && std::getenv("BP_FLIGHT_OUT") != nullptr) {
    capacity = obs::FlightRecorderOptions{}.capacity;
  }
  if (capacity == 0) return;
  obs::FlightRecorderOptions fo;
  fo.capacity = capacity;
  if (const char* out = std::getenv("BP_FLIGHT_OUT")) fo.auto_dump_path = out;
  simulator->EnableFlightRecorder(fo);
}

/// One internal arrival: when, who, what, which phase.
struct Arrival {
  SimTime at = 0;
  size_t node = 0;
  std::string keyword;
  size_t phase = 0;
};

}  // namespace

Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioRunOptions& options) {
  if (spec.classes.empty() || spec.phases.empty()) {
    return Status::InvalidArgument("scenario: spec is empty (not parsed?)");
  }
  if (!(options.store_scale > 0 && options.store_scale <= 100)) {
    return Status::InvalidArgument("scenario: store_scale out of range");
  }
  if (options.replay != nullptr) {
    if (options.replay->scenario != spec.name) {
      return Status::InvalidArgument(
          "scenario: replay trace was recorded for '" +
          options.replay->scenario + "', not '" + spec.name + "'");
    }
    if (options.replay->seed != spec.seed) {
      return Status::InvalidArgument(
          "scenario: replay trace seed mismatch (trace " +
          std::to_string(options.replay->seed) + ", spec " +
          std::to_string(spec.seed) + ")");
    }
  }

  const size_t node_count = spec.TotalNodes();

  // Declared first so instruments outlive every component holding handles.
  metrics::Registry registry;
  sim::Simulator simulator;
  if (TraceRequested(options)) simulator.EnableTracing();
  MaybeEnableFlight(&simulator, options);
  std::unique_ptr<obs::TimeSeriesSampler> sampler;
  std::unique_ptr<obs::SamplerDriver> sampler_driver;
  if (const SimTime interval = SampleInterval(options); interval > 0) {
    sampler = std::make_unique<obs::TimeSeriesSampler>(&registry, interval);
    sampler->AddDefaultColumns();
    sampler_driver =
        std::make_unique<obs::SamplerDriver>(&simulator, sampler.get());
  }
  auto arm_sampler = [&sampler_driver]() {
    if (sampler_driver != nullptr) sampler_driver->Arm();
  };
  // Must precede SimNetwork construction so the network binds the
  // injector (no-op at zero loss — bit-identical schedules).
  spec.fault.EnableOn(&simulator, spec.seed, &registry);
  sim::NetworkOptions net_options;
  net_options.metrics = &registry;
  sim::SimNetwork network(&simulator, net_options);
  net::SimTransportFleet fleet(&network);
  core::SharedInfra infra;

  const workload::Topology topo = BuildTopology(spec);

  // The fleet: per-class CPU threads and link profiles. Class c owns the
  // contiguous node-index range [ClassOffset(c), ClassOffset(c)+count).
  std::vector<NodeId> ids;
  ids.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    const NodeClassSpec& cls = spec.classes[spec.ClassOf(i)];
    const NodeId id = network.AddNode(cls.cpu_threads);
    sim::LinkProfile profile;
    if (cls.bandwidth_mbps > 0) {
      // Mbit/s -> bytes/us: 1 Mbit/s = 1e6/8 bytes/s = 0.125 bytes/us.
      profile.bytes_per_us = cls.bandwidth_mbps / 8.0;
    }
    profile.extra_latency = MsToSimTime(cls.extra_latency_ms);
    if (profile.bytes_per_us > 0 || profile.extra_latency > 0) {
      network.SetLinkProfile(id, profile);
    }
    ids.push_back(id);
  }

  core::BestPeerConfig config;
  config.max_direct_peers = spec.max_direct_peers;
  config.strategy = spec.reconfigure_each_phase ? "maxcount" : "none";
  config.default_ttl = spec.ttl;
  config.metrics = &registry;
  spec.fault.ApplyTo(&config);

  // Pooled keywords: every matching object answers every pooled query.
  std::vector<std::string> tokens;
  tokens.reserve(spec.query_pool);
  for (size_t i = 0; i < spec.query_pool; ++i) {
    tokens.push_back(std::string(workload::CorpusGenerator::kNeedle) +
                     std::to_string(i));
  }

  workload::CorpusGenerator corpus({spec.object_size, 500, 0.8}, spec.seed);
  std::vector<std::unique_ptr<core::BestPeerNode>> nodes;
  nodes.reserve(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    const NodeClassSpec& cls = spec.classes[spec.ClassOf(i)];
    BP_ASSIGN_OR_RETURN(auto node, core::BestPeerNode::Create(
                                       fleet.For(ids[i]), &infra, config));
    storm::StormOptions store;
    store.buffer_frames = 128;
    store.replacement = "lru";
    BP_RETURN_IF_ERROR(node->InitStorage(store));
    // Fast mode scales the haystack, never the needles: match counts are
    // what the committed baselines assert on.
    const size_t objects = std::max(
        cls.matches_per_node,
        static_cast<size_t>(std::llround(
            static_cast<double>(cls.objects_per_node) * options.store_scale)));
    for (size_t o = 0; o < objects; ++o) {
      const bool match = o < cls.matches_per_node;
      BP_RETURN_IF_ERROR(node->ShareObject(
          (static_cast<storm::ObjectId>(i) << 24) | o,
          corpus.MakeObject(match, tokens)));
    }
    nodes.push_back(std::move(node));
  }
  for (const auto& [a, b] : topo.edges) {
    nodes[a]->AddDirectPeerLocal(ids[b]);
    nodes[b]->AddDirectPeerLocal(ids[a]);
  }
  // The StorM search agent ships with the platform; steady state has it
  // resident everywhere.
  for (NodeId id : ids) {
    infra.code_cache.Load(id, core::kSearchAgentClass);
    infra.code_cache.Load(id, core::kComputeAgentClass);
  }

  // Churn waves are pre-scheduled as simulator events so they fire at
  // their declared instants no matter how the arrival loop advances the
  // clock. Victim selection draws from the dedicated churn stream at
  // fire time, in wave-declaration order for equal instants.
  Rng churn_rng(spec.seed ^ kChurnTweak);
  for (const ChurnWaveSpec& wave : spec.churn) {
    size_t class_index = 0;
    for (size_t c = 0; c < spec.classes.size(); ++c) {
      if (spec.classes[c].name == wave.target_class) class_index = c;
    }
    const size_t offset = spec.ClassOffset(class_index);
    const size_t count = spec.classes[class_index].count;
    const SimTime down_for = MsToSimTime(wave.down_for_ms);
    const double fraction = wave.fraction;
    simulator.ScheduleAt(
        MsToSimTime(wave.at_ms),
        [&network, &simulator, &churn_rng, &ids, offset, count, fraction,
         down_for]() {
          std::vector<size_t> online;
          for (size_t i = offset; i < offset + count; ++i) {
            if (network.IsOnline(ids[i])) online.push_back(i);
          }
          churn_rng.Shuffle(online);
          const size_t leave = static_cast<size_t>(std::llround(
              fraction * static_cast<double>(online.size())));
          auto victims = std::make_shared<std::vector<size_t>>(
              online.begin(),
              online.begin() + static_cast<ptrdiff_t>(leave));
          for (size_t v : *victims) network.SetOnline(ids[v], false);
          if (down_for > 0) {
            simulator.ScheduleAfter(down_for, [&network, &ids, victims]() {
              for (size_t v : *victims) network.SetOnline(ids[v], true);
            });
          }
        });
  }

  // The query schedule: generated from the spec's arrival processes, or
  // lifted verbatim from a recorded trace.
  std::vector<size_t> queriers;
  for (size_t i = 0; i < node_count; ++i) {
    if (spec.classes[spec.ClassOf(i)].issues_queries) queriers.push_back(i);
  }
  std::vector<double> phase_start_ms(spec.phases.size(), 0);
  for (size_t p = 1; p < spec.phases.size(); ++p) {
    phase_start_ms[p] =
        phase_start_ms[p - 1] + spec.phases[p - 1].duration_ms;
  }
  auto phase_of = [&](SimTime at) {
    size_t p = 0;
    while (p + 1 < spec.phases.size() &&
           at >= MsToSimTime(phase_start_ms[p + 1])) {
      ++p;
    }
    return p;
  };

  std::vector<Arrival> schedule;
  if (options.replay != nullptr) {
    schedule.reserve(options.replay->queries.size());
    for (const TracedQuery& q : options.replay->queries) {
      if (q.node >= node_count) {
        return Status::InvalidArgument(
            "scenario: replay trace names node " + std::to_string(q.node) +
            " but the spec has only " + std::to_string(node_count));
      }
      if (!spec.classes[spec.ClassOf(q.node)].issues_queries) {
        return Status::InvalidArgument(
            "scenario: replay trace issuer " + std::to_string(q.node) +
            " is in a non-querying class");
      }
      schedule.push_back({q.at, q.node, q.keyword, phase_of(q.at)});
    }
  } else {
    Rng arrival_rng(spec.seed ^ kArrivalTweak);
    Rng pick_rng(spec.seed ^ kPickTweak);
    ZipfSampler zipf(spec.query_pool, spec.query_zipf_skew);
    for (size_t p = 0; p < spec.phases.size(); ++p) {
      const std::vector<SimTime> times = GenerateArrivalTimes(
          spec.phases[p], MsToSimTime(phase_start_ms[p]), arrival_rng);
      for (SimTime at : times) {
        Arrival a;
        a.at = at;
        a.node = queriers[pick_rng.NextBounded(queriers.size())];
        a.keyword = std::string(workload::CorpusGenerator::kNeedle) +
                    std::to_string(zipf.Sample(pick_rng));
        // phase_of, not p: µs rounding can push a time onto the next
        // phase's boundary instant, and replay (which only has the
        // timestamp) must bucket it the same way.
        a.phase = phase_of(at);
        schedule.push_back(std::move(a));
      }
    }
  }

  // Drive the phases. RunUntil (never RunUntilIdle) keeps the clock
  // honest: queries overlap, spill across phase boundaries, and churn
  // events fire exactly when declared.
  ScenarioResult result;
  result.issued.scenario = spec.name;
  result.issued.seed = spec.seed;
  std::vector<std::pair<uint64_t, size_t>> issued_ids;  // (query_id, index)
  size_t ai = 0;
  for (size_t p = 0; p < spec.phases.size(); ++p) {
    const SimTime phase_end =
        MsToSimTime(phase_start_ms[p] + spec.phases[p].duration_ms);
    std::vector<uint64_t> last_query(node_count, 0);
    std::vector<bool> queried(node_count, false);
    while (ai < schedule.size() && schedule[ai].phase == p) {
      const Arrival& a = schedule[ai];
      ++ai;
      simulator.RunUntil(a.at);
      if (!network.IsOnline(ids[a.node])) {
        // The picked issuer is down: the query never happens. Replay
        // schedules only contain issued queries, so hitting this in
        // replay means the trace does not match the spec.
        if (options.replay != nullptr) {
          return Status::InvalidArgument(
              "scenario: replay issuer " + std::to_string(a.node) +
              " is offline at t=" + std::to_string(a.at) +
              "us (trace/spec mismatch)");
        }
        ++result.suppressed_arrivals;
        continue;
      }
      BP_ASSIGN_OR_RETURN(uint64_t query_id,
                          nodes[a.node]->IssueSearch(a.keyword));
      arm_sampler();
      last_query[a.node] = query_id;
      queried[a.node] = true;
      issued_ids.emplace_back(query_id, result.queries.size());
      ScenarioQueryStats stats;
      stats.at = a.at;
      stats.issuer = a.node;
      stats.keyword = a.keyword;
      stats.phase = p;
      result.queries.push_back(std::move(stats));
      result.issued.queries.push_back({a.at, a.node, a.keyword});
    }
    simulator.RunUntil(phase_end);
    if (spec.reconfigure_each_phase) {
      // Every issuer reconfigures on its last query of the phase, in
      // node order — self-configuration as a fleet-wide, phase-aligned
      // sweep. Sessions may still be collecting; SelectPeers ranks on
      // the observations so far.
      for (size_t i = 0; i < node_count; ++i) {
        if (!queried[i] || !network.IsOnline(ids[i])) continue;
        BP_RETURN_IF_ERROR(nodes[i]->Reconfigure(last_query[i]));
      }
    }
  }
  // Drain: in-flight queries finish, pending rejoins fire (no queries
  // remain, so late rejoins change nothing observable).
  arm_sampler();
  simulator.RunUntilIdle();

  for (const auto& [query_id, index] : issued_ids) {
    const core::QuerySession* session =
        nodes[result.queries[index].issuer]->FindSession(query_id);
    if (session == nullptr) {
      return Status::Internal("scenario: query session lost");
    }
    ScenarioQueryStats& stats = result.queries[index];
    stats.answers = session->total_answers();
    stats.unique_answers = session->unique_answers();
    stats.responders = session->responder_count();
    stats.completion = session->completion_time();
  }

  result.phases.resize(spec.phases.size());
  for (size_t p = 0; p < spec.phases.size(); ++p) {
    result.phases[p].name = spec.phases[p].name;
  }
  for (const ScenarioQueryStats& q : result.queries) {
    ScenarioPhaseStats& phase = result.phases[q.phase];
    ++phase.queries;
    phase.answers += q.answers;
    phase.mean_answers += static_cast<double>(q.answers);
    phase.mean_responders += static_cast<double>(q.responders);
    phase.mean_completion_ms += ToMillis(q.completion);
  }
  for (ScenarioPhaseStats& phase : result.phases) {
    if (phase.queries == 0) continue;
    const double n = static_cast<double>(phase.queries);
    phase.mean_answers /= n;
    phase.mean_responders /= n;
    phase.mean_completion_ms /= n;
  }

  result.wire_bytes = network.total_wire_bytes();
  result.metrics = registry.TakeSnapshot();
  result.trace = simulator.shared_trace();
  result.flight = simulator.shared_flight();
  if (sampler != nullptr) result.timeseries = sampler->Take();
  if (result.trace != nullptr) {
    if (const char* out = std::getenv("BP_TRACE_OUT")) {
      Status s = result.trace->WriteChromeJson(out);
      if (!s.ok()) {
        BP_LOG(Warn) << "BP_TRACE_OUT write failed: " << s.ToString();
      }
    }
  }
  if (result.flight != nullptr) {
    if (const char* out = std::getenv("BP_FLIGHT_OUT")) {
      Status s = result.flight->WriteNdjson(out);
      if (!s.ok()) {
        BP_LOG(Warn) << "BP_FLIGHT_OUT write failed: " << s.ToString();
      }
    }
  }
  return result;
}

}  // namespace bestpeer::scenario
