#ifndef BESTPEER_SCENARIO_RUNNER_H_
#define BESTPEER_SCENARIO_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/timeseries.h"
#include "scenario/query_trace.h"
#include "scenario/spec.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/sim_time.h"
#include "util/trace.h"

namespace bestpeer::scenario {

struct ScenarioRunOptions {
  /// Scales every class's objects_per_node (fast mode runs 0.25); the
  /// match counts stay untouched so answer totals are scale-invariant.
  double store_scale = 1.0;
  /// Record per-query trace spans (also forced by BP_TRACE_OUT).
  bool trace = false;
  /// Sim-time sampling cadence (0 = off; BP_SAMPLE_INTERVAL_US overrides).
  SimTime sample_interval = 0;
  /// Flight-recorder ring capacity (0 = off; BP_FLIGHT_OUT enables).
  size_t flight_capacity = 0;
  /// Replay this recorded schedule instead of generating arrivals (must
  /// have been recorded against the same spec name + seed). The churn
  /// and fault streams are untouched by replay, so the sim schedule —
  /// and every per-query answer count — matches the generating run.
  const QueryTrace* replay = nullptr;
};

/// One issued query and what came back.
struct ScenarioQueryStats {
  SimTime at = 0;
  size_t issuer = 0;
  std::string keyword;
  size_t phase = 0;
  size_t answers = 0;
  size_t unique_answers = 0;
  size_t responders = 0;
  SimTime completion = 0;
};

struct ScenarioPhaseStats {
  std::string name;
  size_t queries = 0;
  size_t answers = 0;
  double mean_answers = 0;
  double mean_responders = 0;
  double mean_completion_ms = 0;
};

struct ScenarioResult {
  std::vector<ScenarioQueryStats> queries;
  std::vector<ScenarioPhaseStats> phases;
  uint64_t wire_bytes = 0;
  /// Arrivals skipped because the picked issuer was offline (record mode
  /// only; a replayed schedule contains only queries that were issued).
  size_t suppressed_arrivals = 0;
  /// The replayable schedule of exactly the queries this run issued.
  QueryTrace issued;
  metrics::Snapshot metrics;
  std::shared_ptr<trace::TraceRecorder> trace;
  obs::TimeSeries timeseries;
  std::shared_ptr<obs::FlightRecorder> flight;
};

/// Builds the heterogeneous fleet the spec describes and drives the
/// declared phases against the sim clock: arrivals issue overlapping
/// queries from many nodes, churn waves flip class members offline and
/// back, free-rider classes query without serving. Deterministic per
/// (spec, options): same seed + same spec produce identical results.
Result<ScenarioResult> RunScenario(const ScenarioSpec& spec,
                                   const ScenarioRunOptions& options);

}  // namespace bestpeer::scenario

#endif  // BESTPEER_SCENARIO_RUNNER_H_
