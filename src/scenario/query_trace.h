#ifndef BESTPEER_SCENARIO_QUERY_TRACE_H_
#define BESTPEER_SCENARIO_QUERY_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/sim_time.h"

namespace bestpeer::scenario {

/// One replayable query: issue time, issuing node index and keyword.
struct TracedQuery {
  SimTime at = 0;
  size_t node = 0;
  std::string keyword;
};

/// A recorded query schedule: what a scenario run actually issued
/// (suppressed arrivals — offline issuers — are not recorded). Replaying
/// it against the same spec + seed reproduces the generating run's
/// per-query answer counts exactly, because the churn/fault randomness
/// lives on streams the replay path never touches.
struct QueryTrace {
  std::string scenario;
  uint64_t seed = 0;
  std::vector<TracedQuery> queries;
};

/// NDJSON: a header line {"v":1,"scenario":...,"seed":...,"queries":N}
/// followed by N lines {"at_us":...,"node":...,"keyword":...}.
Status WriteQueryTrace(const QueryTrace& trace, const std::string& path);

/// Strict reader: malformed lines, wrong-typed fields, unknown keys, a
/// version or count mismatch, and out-of-order times are all fatal.
Result<QueryTrace> ReadQueryTrace(const std::string& path);

}  // namespace bestpeer::scenario

#endif  // BESTPEER_SCENARIO_QUERY_TRACE_H_
